# Empty compiler generated dependencies file for bench_e5_scaleout_training.
# This may be replaced when dependencies are built.
