#include "ml/trainer.h"

#include <algorithm>

#include "common/logging.h"

namespace exearth::ml {

Tensor MakeBatch(const raster::Dataset& ds, size_t begin, size_t end,
                 bool as_images, std::vector<int>* labels) {
  EEA_CHECK(begin <= end && end <= ds.samples.size());
  const int n = static_cast<int>(end - begin);
  Tensor batch;
  if (as_images) {
    EEA_CHECK(ds.channels > 0 && ds.patch_height > 0 && ds.patch_width > 0)
        << "dataset has no image shape";
    EEA_CHECK(ds.channels * ds.patch_height * ds.patch_width ==
              ds.feature_dim);
    batch = Tensor({n, ds.channels, ds.patch_height, ds.patch_width});
  } else {
    batch = Tensor({n, ds.feature_dim});
  }
  labels->clear();
  labels->reserve(static_cast<size_t>(n));
  float* p = batch.data();
  for (size_t i = begin; i < end; ++i) {
    const raster::Sample& s = ds.samples[i];
    EEA_CHECK(static_cast<int>(s.features.size()) == ds.feature_dim);
    std::copy(s.features.begin(), s.features.end(),
              p + (i - begin) * static_cast<size_t>(ds.feature_dim));
    labels->push_back(s.label);
  }
  return batch;
}

Trainer::Trainer(Network* network, const TrainOptions& options)
    : network_(network),
      options_(options),
      optimizer_(options.sgd),
      rng_(options.shuffle_seed) {}

EpochStats Trainer::TrainEpoch(raster::Dataset* ds) {
  ds->Shuffle(&rng_);
  EpochStats stats;
  double loss_sum = 0.0;
  int64_t correct = 0;
  int64_t seen = 0;
  const size_t n = ds->samples.size();
  const size_t bs = static_cast<size_t>(options_.batch_size);
  for (size_t begin = 0; begin < n; begin += bs) {
    const size_t end = std::min(n, begin + bs);
    std::vector<int> labels;
    Tensor batch = MakeBatch(*ds, begin, end, options_.as_images, &labels);
    network_->ZeroGrads();
    Tensor logits = network_->Forward(batch, /*training=*/true);
    LossResult loss = SoftmaxCrossEntropy(logits, labels);
    network_->Backward(loss.grad);
    optimizer_.Step(network_->Params(), network_->Grads());
    loss_sum += loss.loss * static_cast<double>(labels.size());
    correct += loss.correct;
    seen += static_cast<int64_t>(labels.size());
    ++stats.steps;
  }
  if (seen > 0) {
    stats.mean_loss = loss_sum / static_cast<double>(seen);
    stats.accuracy = static_cast<double>(correct) / static_cast<double>(seen);
  }
  return stats;
}

std::vector<EpochStats> Trainer::Fit(raster::Dataset* ds) {
  std::vector<EpochStats> out;
  out.reserve(static_cast<size_t>(options_.epochs));
  for (int e = 0; e < options_.epochs; ++e) {
    out.push_back(TrainEpoch(ds));
  }
  return out;
}

ConfusionMatrix Trainer::Evaluate(const raster::Dataset& ds) {
  ConfusionMatrix cm(ds.num_classes);
  std::vector<int> preds = Predict(network_, ds, options_.as_images);
  for (size_t i = 0; i < ds.samples.size(); ++i) {
    cm.Add(ds.samples[i].label, preds[i]);
  }
  return cm;
}

std::vector<int> Predict(Network* network, const raster::Dataset& ds,
                         bool as_images, int batch_size) {
  std::vector<int> preds;
  preds.reserve(ds.samples.size());
  const size_t n = ds.samples.size();
  const size_t bs = static_cast<size_t>(batch_size);
  for (size_t begin = 0; begin < n; begin += bs) {
    const size_t end = std::min(n, begin + bs);
    std::vector<int> labels;
    Tensor batch = MakeBatch(ds, begin, end, as_images, &labels);
    Tensor logits = network->Forward(batch, /*training=*/false);
    const int c = logits.dim(1);
    const float* p = logits.data();
    for (int i = 0; i < logits.dim(0); ++i) {
      const float* row = p + static_cast<int64_t>(i) * c;
      preds.push_back(static_cast<int>(
          std::max_element(row, row + c) - row));
    }
  }
  return preds;
}

}  // namespace exearth::ml
