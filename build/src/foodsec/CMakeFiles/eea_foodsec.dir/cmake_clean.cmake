file(REMOVE_RECURSE
  "CMakeFiles/eea_foodsec.dir/fields.cc.o"
  "CMakeFiles/eea_foodsec.dir/fields.cc.o.d"
  "CMakeFiles/eea_foodsec.dir/pipeline.cc.o"
  "CMakeFiles/eea_foodsec.dir/pipeline.cc.o.d"
  "CMakeFiles/eea_foodsec.dir/timeseries.cc.o"
  "CMakeFiles/eea_foodsec.dir/timeseries.cc.o.d"
  "CMakeFiles/eea_foodsec.dir/water.cc.o"
  "CMakeFiles/eea_foodsec.dir/water.cc.o.d"
  "libeea_foodsec.a"
  "libeea_foodsec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eea_foodsec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
