#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/query_profile.h"
#include "common/rng.h"
#include "common/trace.h"
#include "geo/wkt.h"
#include "strabon/geostore.h"
#include "strabon/workload.h"

namespace exearth::strabon {
namespace {

TEST(GeoStoreTest, AddFeatureEmitsWktTriple) {
  GeoStore store;
  store.AddFeature("http://x/f1", geo::Geometry(geo::Point{1, 2}));
  auto built = store.Build();
  ASSERT_TRUE(built.ok());
  EXPECT_EQ(*built, 1u);
  EXPECT_EQ(store.triples().size(), 1u);
  EXPECT_EQ(store.num_geometries(), 1u);
}

TEST(GeoStoreTest, BuildFailsOnMalformedWkt) {
  GeoStore store;
  store.triples().Add(
      rdf::Term::Iri("f"), rdf::Term::Iri(rdf::vocab::kAsWkt),
      rdf::Term::Literal("NOT A GEOMETRY", rdf::vocab::kWktLiteral));
  EXPECT_FALSE(store.Build().ok());
}

TEST(GeoStoreTest, SpatialSelectPointsIndexedEqualsScan) {
  GeoWorkloadOptions opt;
  opt.num_features = 3000;
  opt.kind = GeoWorkloadOptions::GeometryKind::kPoint;
  opt.world_size = 1000.0;
  opt.seed = 3;
  GeoStore store = MakeGeoWorkload(opt);
  common::Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    geo::Box box = RandomSelectionBox(1000.0, 0.01, &rng);
    auto indexed =
        *store.SpatialSelect(box, SpatialRelation::kIntersects, true);
    auto scanned =
        *store.SpatialSelect(box, SpatialRelation::kIntersects, false);
    EXPECT_EQ(indexed, scanned);
  }
}

TEST(GeoStoreTest, SpatialSelectMultiPolygonsIndexedEqualsScan) {
  GeoWorkloadOptions opt;
  opt.num_features = 500;
  opt.kind = GeoWorkloadOptions::GeometryKind::kMultiPolygon;
  opt.vertices_per_ring = 12;
  opt.world_size = 1000.0;
  opt.feature_size = 30.0;
  opt.seed = 5;
  GeoStore store = MakeGeoWorkload(opt);
  common::Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    geo::Box box = RandomSelectionBox(1000.0, 0.02, &rng);
    auto indexed =
        *store.SpatialSelect(box, SpatialRelation::kIntersects, true);
    auto scanned =
        *store.SpatialSelect(box, SpatialRelation::kIntersects, false);
    EXPECT_EQ(indexed, scanned);
  }
}

TEST(GeoStoreTest, IndexedSelectTestsFarFewerCandidates) {
  GeoWorkloadOptions opt;
  opt.num_features = 20000;
  opt.world_size = 100000.0;
  GeoStore store = MakeGeoWorkload(opt);
  common::Rng rng(1);
  geo::Box box = RandomSelectionBox(opt.world_size, 0.001, &rng);
  SpatialQueryStats indexed_stats, scan_stats;
  ASSERT_TRUE(store
                  .SpatialSelect(box, SpatialRelation::kIntersects, true,
                                 &indexed_stats)
                  .ok());
  uint64_t indexed_tests = indexed_stats.geometry_tests;
  ASSERT_TRUE(store
                  .SpatialSelect(box, SpatialRelation::kIntersects, false,
                                 &scan_stats)
                  .ok());
  uint64_t scan_tests = scan_stats.geometry_tests;
  EXPECT_EQ(scan_tests, 20000u);
  EXPECT_LT(indexed_tests, scan_tests / 50);
}

TEST(GeoStoreTest, WithinAndContainsRelations) {
  GeoStore store;
  // A small square fully inside the query box; a big square containing it.
  auto small = geo::ParseWkt("POLYGON ((10 10, 12 10, 12 12, 10 12, 10 10))");
  auto big = geo::ParseWkt("POLYGON ((0 0, 100 0, 100 100, 0 100, 0 0))");
  ASSERT_TRUE(small.ok() && big.ok());
  store.AddFeature("http://x/small", *small);
  store.AddFeature("http://x/big", *big);
  ASSERT_TRUE(store.Build().ok());
  geo::Box query = geo::Box::Of(5, 5, 20, 20);
  auto within = *store.SpatialSelect(query, SpatialRelation::kWithin, true);
  ASSERT_EQ(within.size(), 1u);
  EXPECT_EQ(store.triples().dict().Decode(within[0]).value, "http://x/small");
  auto contains =
      *store.SpatialSelect(query, SpatialRelation::kContains, true);
  ASSERT_EQ(contains.size(), 1u);
  EXPECT_EQ(store.triples().dict().Decode(contains[0]).value, "http://x/big");
}

TEST(GeoStoreTest, QueryWithSpatialFilterBothPathsAgree) {
  GeoWorkloadOptions opt;
  opt.num_features = 2000;
  opt.world_size = 1000.0;
  opt.with_thematic = true;
  GeoStore store = MakeGeoWorkload(opt);
  rdf::Query q;
  q.where.push_back(rdf::TriplePattern{
      rdf::PatternSlot::Var("s"), rdf::PatternSlot::Iri(rdf::vocab::kRdfType),
      rdf::PatternSlot::Iri("http://extremeearth.eu/ontology#Feature")});
  geo::Box box = geo::Box::Of(100, 100, 300, 300);
  auto pushed = store.QueryWithSpatialFilter(q, "s", box, true);
  auto baseline = store.QueryWithSpatialFilter(q, "s", box, false);
  ASSERT_TRUE(pushed.ok() && baseline.ok());
  ASSERT_FALSE(pushed->empty());
  auto key = [](const rdf::Binding& b) { return b.at("s"); };
  std::set<uint64_t> a, b;
  for (auto& row : *pushed) a.insert(key(row));
  for (auto& row : *baseline) b.insert(key(row));
  EXPECT_EQ(a, b);
}

TEST(GeoStoreTest, EnvelopeFastPathCountedAndEquivalent) {
  GeoWorkloadOptions opt;
  opt.num_features = 5000;
  opt.kind = GeoWorkloadOptions::GeometryKind::kPoint;
  opt.world_size = 1000.0;
  opt.seed = 21;
  GeoStore store = MakeGeoWorkload(opt);
  common::Rng rng(23);
  geo::Box box = RandomSelectionBox(1000.0, 0.05, &rng);
  SpatialQueryStats stats;
  auto indexed = *store.SpatialSelect(box, SpatialRelation::kIntersects, true,
                                      &stats);
  // Point envelopes inside the query box resolve without an exact test.
  EXPECT_GT(stats.envelope_hits, 0u);
  EXPECT_EQ(stats.results, indexed.size());
  EXPECT_GT(stats.nodes_visited, 0u);
  auto scanned =
      *store.SpatialSelect(box, SpatialRelation::kIntersects, false);
  EXPECT_EQ(indexed, scanned);
}

TEST(GeoStoreTest, ParallelSelectMatchesSingleThreadRandomized) {
  GeoWorkloadOptions opt;
  opt.num_features = 4000;
  opt.kind = GeoWorkloadOptions::GeometryKind::kMultiPolygon;
  opt.vertices_per_ring = 10;
  opt.world_size = 1000.0;
  opt.feature_size = 25.0;
  opt.seed = 17;
  GeoStore store = MakeGeoWorkload(opt);
  common::Rng rng(19);
  for (int i = 0; i < 15; ++i) {
    geo::Box box = RandomSelectionBox(1000.0, 0.05, &rng);
    store.set_num_threads(1);
    auto single_idx =
        *store.SpatialSelect(box, SpatialRelation::kIntersects, true);
    auto single_scan =
        *store.SpatialSelect(box, SpatialRelation::kIntersects, false);
    store.set_num_threads(4);
    SpatialQueryStats stats;
    auto parallel_idx = *store.SpatialSelect(box, SpatialRelation::kIntersects,
                                             true, &stats);
    auto parallel_scan = *store.SpatialSelect(box, SpatialRelation::kIntersects,
                                              false);
    EXPECT_EQ(parallel_idx, single_idx) << "query " << i;
    EXPECT_EQ(parallel_scan, single_scan) << "query " << i;
    EXPECT_EQ(stats.results, parallel_idx.size());
  }
  // The scan path has enough candidates to actually fan out.
  store.set_num_threads(4);
  SpatialQueryStats scan_stats;
  ASSERT_TRUE(store
                  .SpatialSelect(geo::Box::Of(0, 0, 1000, 1000),
                                 SpatialRelation::kIntersects, false,
                                 &scan_stats)
                  .ok());
  EXPECT_GT(scan_stats.threads_used, 1u);
}

TEST(GeoStoreTest, ParallelJoinMatchesSingleThread) {
  GeoWorkloadOptions opt;
  opt.num_features = 600;
  opt.kind = GeoWorkloadOptions::GeometryKind::kMultiPolygon;
  opt.vertices_per_ring = 8;
  opt.world_size = 500.0;
  opt.feature_size = 40.0;
  opt.with_thematic = true;
  opt.seed = 29;
  GeoStore store = MakeGeoWorkload(opt);
  const std::string cls = "http://extremeearth.eu/ontology#Feature";
  store.set_num_threads(1);
  auto single_idx =
      *store.SpatialJoin(cls, cls, SpatialRelation::kIntersects, true);
  auto single_nested =
      *store.SpatialJoin(cls, cls, SpatialRelation::kIntersects, false);
  ASSERT_EQ(single_idx, single_nested);
  ASSERT_FALSE(single_idx.empty());
  store.set_num_threads(4);
  SpatialQueryStats stats;
  auto parallel_idx =
      *store.SpatialJoin(cls, cls, SpatialRelation::kIntersects, true, &stats);
  auto parallel_nested =
      *store.SpatialJoin(cls, cls, SpatialRelation::kIntersects, false);
  EXPECT_EQ(parallel_idx, single_idx);
  EXPECT_EQ(parallel_nested, single_nested);
  EXPECT_GT(stats.threads_used, 1u);
  EXPECT_EQ(stats.results, parallel_idx.size());
}

// Exercised under TSan in CI: concurrent queries against one shared store,
// with the store's own pool refining in parallel underneath.
TEST(GeoStoreTest, ConcurrentQueriesAreRaceFree) {
  GeoWorkloadOptions opt;
  opt.num_features = 3000;
  opt.kind = GeoWorkloadOptions::GeometryKind::kPoint;
  opt.world_size = 1000.0;
  opt.seed = 31;
  GeoStore store = MakeGeoWorkload(opt);
  store.set_num_threads(2);
  // Expected answers computed up front, single-threaded.
  std::vector<geo::Box> boxes;
  std::vector<std::vector<uint64_t>> expected;
  common::Rng rng(37);
  for (int i = 0; i < 8; ++i) {
    boxes.push_back(RandomSelectionBox(1000.0, 0.02, &rng));
    expected.push_back(*store.SpatialSelect(boxes.back(),
                                            SpatialRelation::kIntersects,
                                            false));
  }
  std::vector<std::thread> workers;
  std::vector<int> failures(4, 0);
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&, t] {
      for (int round = 0; round < 5; ++round) {
        for (size_t q = 0; q < boxes.size(); ++q) {
          SpatialQueryStats stats;
          auto got = store.SpatialSelect(boxes[q],
                                         SpatialRelation::kIntersects,
                                         (t + round) % 2 == 0, &stats);
          if (!got.ok() || *got != expected[q]) ++failures[t];
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(failures[t], 0) << "thread " << t;
}

TEST(GeoStoreTest, GeometryOf) {
  GeoStore store;
  store.AddFeature("http://x/f", geo::Geometry(geo::Point{5, 6}));
  ASSERT_TRUE(store.Build().ok());
  auto id = store.triples().dict().Lookup(rdf::Term::Iri("http://x/f"));
  ASSERT_TRUE(id.has_value());
  const geo::Geometry* g = store.GeometryOf(*id);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->AsPoint().x, 5);
  EXPECT_EQ(store.GeometryOf(999999), nullptr);
}

TEST(GeoStoreTest, QueryWithSpatialFilterShortCircuitsOnEmptySelection) {
  GeoWorkloadOptions opt;
  opt.num_features = 500;
  opt.world_size = 1000.0;
  opt.with_thematic = true;
  GeoStore store = MakeGeoWorkload(opt);
  rdf::Query q;
  q.where.push_back(rdf::TriplePattern{
      rdf::PatternSlot::Var("s"), rdf::PatternSlot::Iri(rdf::vocab::kRdfType),
      rdf::PatternSlot::Iri("http://extremeearth.eu/ontology#Feature")});
  // A box far outside the world: the pushdown finds no subjects and must
  // skip the BGP entirely, still agreeing with the baseline.
  geo::Box empty_region = geo::Box::Of(5000, 5000, 6000, 6000);
  SpatialQueryStats stats;
  auto pushed = store.QueryWithSpatialFilter(q, "s", empty_region, true,
                                             &stats);
  auto baseline = store.QueryWithSpatialFilter(q, "s", empty_region, false);
  ASSERT_TRUE(pushed.ok() && baseline.ok());
  EXPECT_TRUE(pushed->empty());
  EXPECT_TRUE(baseline->empty());
  EXPECT_EQ(stats.results, 0u);
}

TEST(WorkloadTest, PointWorkloadShape) {
  GeoWorkloadOptions opt;
  opt.num_features = 100;
  opt.with_thematic = true;
  GeoStore store = MakeGeoWorkload(opt);
  // 1 wkt + 1 type + 1 label per feature.
  EXPECT_EQ(store.triples().size(), 300u);
  EXPECT_EQ(store.num_geometries(), 100u);
}

TEST(WorkloadTest, MultiPolygonVertexBudget) {
  GeoWorkloadOptions opt;
  opt.num_features = 10;
  opt.kind = GeoWorkloadOptions::GeometryKind::kMultiPolygon;
  opt.vertices_per_ring = 20;
  opt.polygons_per_multi = 3;
  opt.with_thematic = false;
  GeoStore store = MakeGeoWorkload(opt);
  // Check one geometry's vertex count through the public API.
  auto subjects = *store.SpatialSelect(
      geo::Box::Of(-1e9, -1e9, 1e9, 1e9), SpatialRelation::kIntersects, false);
  ASSERT_EQ(subjects.size(), 10u);
  const geo::Geometry* g = store.GeometryOf(subjects[0]);
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->NumVertices(), 60u);
}

TEST(WorkloadTest, SelectionBoxMatchesSelectivity) {
  common::Rng rng(2);
  geo::Box box = RandomSelectionBox(1000.0, 0.04, &rng);
  EXPECT_NEAR(box.Area() / (1000.0 * 1000.0), 0.04, 1e-9);
  EXPECT_GE(box.min_x, 0);
  EXPECT_LE(box.max_x, 1000.0);
}

TEST(WorkloadTest, RandomPolygonIsSimpleStar) {
  common::Rng rng(3);
  geo::Polygon p = RandomPolygon(50, 50, 20, 16, &rng);
  EXPECT_EQ(p.outer.points.size(), 16u);
  EXPECT_GT(p.Area(), 0.0);
  // Center is inside a star-shaped polygon around it.
  EXPECT_TRUE(p.Contains(geo::Point{50, 50}));
}

// --- Query profiles / slow-query log -----------------------------------

TEST(GeoStoreProfileTest, SpatialSelectProfileMatchesStats) {
  GeoWorkloadOptions opt;
  opt.num_features = 3000;
  opt.world_size = 1000.0;
  opt.seed = 11;
  GeoStore store = MakeGeoWorkload(opt);
  geo::Box box = geo::Box::Of(100, 100, 400, 400);
  SpatialQueryStats stats;
  common::QueryProfile profile;
  auto results =
      *store.SpatialSelect(box, SpatialRelation::kIntersects, true, &stats,
                           &profile);
  EXPECT_EQ(profile.query, "strabon.SpatialSelect");
  EXPECT_GT(profile.total_us, 0.0);
  ASSERT_EQ(profile.operators.size(), 2u);
  EXPECT_EQ(profile.operators[0].name, "index_probe");
  EXPECT_EQ(profile.operators[0].rows_out, stats.candidates);
  EXPECT_EQ(profile.operators[1].name, "refine");
  EXPECT_EQ(profile.operators[1].rows_in, stats.candidates);
  EXPECT_EQ(profile.operators[1].rows_out, results.size());
  EXPECT_EQ(profile.operators[1].envelope_hits, stats.envelope_hits);
  // Operator time is contained in the total.
  double op_total = 0.0;
  for (const auto& op : profile.operators) op_total += op.wall_us;
  EXPECT_LE(op_total, profile.total_us * 1.5);
}

TEST(GeoStoreProfileTest, BaselineScanProfileNamesFullScan) {
  GeoWorkloadOptions opt;
  opt.num_features = 1000;
  opt.world_size = 1000.0;
  GeoStore store = MakeGeoWorkload(opt);
  geo::Box box = geo::Box::Of(0, 0, 500, 500);
  common::QueryProfile profile;
  store.SpatialSelect(box, SpatialRelation::kIntersects, false, nullptr,
                      &profile);
  ASSERT_FALSE(profile.operators.empty());
  EXPECT_EQ(profile.operators[0].name, "full_scan");
  EXPECT_EQ(profile.operators[0].rows_in, store.num_geometries());
}

TEST(GeoStoreProfileTest, ParallelRefineReportsChunksAndThreads) {
  GeoWorkloadOptions opt;
  opt.num_features = 5000;
  opt.world_size = 1000.0;
  GeoStore store = MakeGeoWorkload(opt);
  store.set_num_threads(4);
  geo::Box box = geo::Box::Of(0, 0, 900, 900);  // wide: plenty to refine
  common::QueryProfile profile;
  store.SpatialSelect(box, SpatialRelation::kIntersects, true, nullptr,
                      &profile);
  ASSERT_EQ(profile.operators.size(), 2u);
  EXPECT_GT(profile.operators[1].chunks, 1u);
  EXPECT_EQ(profile.operators[1].threads, 4u);
}

TEST(GeoStoreProfileTest, QueryWithSpatialFilterProfileHasPlanOperators) {
  GeoWorkloadOptions opt;
  opt.num_features = 2000;
  opt.world_size = 1000.0;
  opt.with_thematic = true;
  GeoStore store = MakeGeoWorkload(opt);
  rdf::Query q;
  q.where.push_back(rdf::TriplePattern{
      rdf::PatternSlot::Var("s"), rdf::PatternSlot::Iri(rdf::vocab::kRdfType),
      rdf::PatternSlot::Iri("http://extremeearth.eu/ontology#Feature")});
  geo::Box box = geo::Box::Of(100, 100, 300, 300);
  common::QueryProfile pushed, baseline;
  ASSERT_TRUE(store.QueryWithSpatialFilter(q, "s", box, true, nullptr,
                                           &pushed)
                  .ok());
  ASSERT_TRUE(store.QueryWithSpatialFilter(q, "s", box, false, nullptr,
                                           &baseline)
                  .ok());
  auto names = [](const common::QueryProfile& p) {
    std::vector<std::string> out;
    for (const auto& op : p.operators) out.push_back(op.name);
    return out;
  };
  EXPECT_EQ(names(pushed),
            (std::vector<std::string>{"spatial_select", "bgp",
                                      "subject_filter"}));
  EXPECT_EQ(names(baseline),
            (std::vector<std::string>{"bgp", "geometry_filter"}));
  EXPECT_EQ(pushed.query, "strabon.QueryWithSpatialFilter");
}

TEST(GeoStoreProfileTest, SpatialJoinProfileCountsPairs) {
  GeoWorkloadOptions opt;
  opt.num_features = 400;
  opt.world_size = 200.0;  // dense enough for join hits
  opt.with_thematic = true;
  GeoStore store = MakeGeoWorkload(opt);
  common::QueryProfile profile;
  auto pairs = *store.SpatialJoin(
      "http://extremeearth.eu/ontology#Feature",
      "http://extremeearth.eu/ontology#Feature",
      SpatialRelation::kIntersects, true, nullptr, &profile);
  ASSERT_EQ(profile.operators.size(), 2u);
  EXPECT_EQ(profile.operators[0].name, "members_scan");
  EXPECT_EQ(profile.operators[1].name, "index_probe_join");
  EXPECT_EQ(profile.operators[1].rows_out, pairs.size());
}

TEST(GeoStoreProfileTest, SlowQueryLogCapturesRootQueriesOnly) {
  common::SlowQueryLog& log = common::SlowQueryLog::Default();
  log.Configure(2, 0.0);
  log.Clear();
  GeoWorkloadOptions opt;
  opt.num_features = 2000;
  opt.world_size = 1000.0;
  opt.with_thematic = true;
  GeoStore store = MakeGeoWorkload(opt);
  rdf::Query q;
  q.where.push_back(rdf::TriplePattern{
      rdf::PatternSlot::Var("s"), rdf::PatternSlot::Iri(rdf::vocab::kRdfType),
      rdf::PatternSlot::Iri("http://extremeearth.eu/ontology#Feature")});
  geo::Box box = geo::Box::Of(100, 100, 300, 300);
  ASSERT_TRUE(store.QueryWithSpatialFilter(q, "s", box, true).ok());
  const auto entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 1u);
  // Only the outermost entry point logs; the nested SpatialSelect stays
  // an operator of the outer profile.
  EXPECT_EQ(entries[0].query, "strabon.QueryWithSpatialFilter");
  log.Disable();
  log.Clear();
}

TEST(GeoStoreProfileTest, SlowQueryLogKeepsWorstQueries) {
  common::SlowQueryLog& log = common::SlowQueryLog::Default();
  log.Configure(2, 0.0);
  log.Clear();
  GeoWorkloadOptions opt;
  opt.num_features = 3000;
  opt.world_size = 1000.0;
  GeoStore store = MakeGeoWorkload(opt);
  for (int i = 0; i < 3; ++i) {
    store.SpatialSelect(geo::Box::Of(0, 0, 800, 800),
                        SpatialRelation::kIntersects, true);
  }
  const auto entries = log.Snapshot();
  ASSERT_EQ(entries.size(), 2u);  // 3 queries, capacity 2: worst survive
  EXPECT_GE(entries[0].total_us, entries[1].total_us);
  EXPECT_EQ(entries[0].query, "strabon.SpatialSelect");
  log.Disable();
  log.Clear();
}

TEST(GeoStoreProfileTest, ProfileTotalAgreesWithAggregateTracer) {
  common::Tracer::Default().Reset();
  GeoWorkloadOptions opt;
  opt.num_features = 3000;
  opt.world_size = 1000.0;
  GeoStore store = MakeGeoWorkload(opt);
  common::QueryProfile profile;
  store.SpatialSelect(geo::Box::Of(0, 0, 600, 600),
                      SpatialRelation::kIntersects, true, nullptr, &profile);
  // The aggregate tracer timed the same single request under the path
  // "strabon.SpatialSelect"; its total must agree with the profile.
  // Earlier tests in this process may have left zeroed same-named nodes
  // on other paths, so locate the node that recorded this execution.
  const std::string json = common::Tracer::Default().ToJson();
  const std::string needle = "\"strabon.SpatialSelect\", \"count\": 1, ";
  const size_t name_pos = json.find(needle);
  ASSERT_NE(name_pos, std::string::npos) << json;
  double tracer_us = 0.0;
  ASSERT_EQ(std::sscanf(json.c_str() + name_pos + needle.size(),
                        "\"total_us\": %lf", &tracer_us),
            1)
      << json.substr(name_pos, 120);
  // Same interval measured by two clocks reads: generous tolerance.
  EXPECT_NEAR(tracer_us, profile.total_us,
              0.5 * std::max(tracer_us, profile.total_us) + 50.0);
}

TEST(WorkloadTest, Deterministic) {
  GeoWorkloadOptions opt;
  opt.num_features = 50;
  GeoStore a = MakeGeoWorkload(opt);
  GeoStore b = MakeGeoWorkload(opt);
  geo::Box box = geo::Box::Of(0, 0, 50000, 50000);
  EXPECT_EQ(*a.SpatialSelect(box, SpatialRelation::kIntersects, true),
            *b.SpatialSelect(box, SpatialRelation::kIntersects, true));
}

}  // namespace
}  // namespace exearth::strabon
