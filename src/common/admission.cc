#include "common/admission.h"

#include <algorithm>

#include "common/metrics.h"

namespace exearth::common {

const char* PriorityToString(Priority p) {
  switch (p) {
    case Priority::kInteractive:
      return "interactive";
    case Priority::kBatch:
      return "batch";
    case Priority::kBestEffort:
      return "best_effort";
  }
  return "unknown";
}

AdmissionController::AdmissionController(std::string name,
                                         AdmissionOptions options)
    : name_(std::move(name)), options_([&options] {
        options.max_depth = std::max<size_t>(1, options.max_depth);
        return options;
      }()) {
  auto& reg = MetricsRegistry::Default();
  const std::string prefix = "admission." + name_ + ".";
  admitted_ctr_ = reg.GetCounter(prefix + "admitted");
  shed_ctr_ = reg.GetCounter(prefix + "shed");
  shed_on_age_ctr_ = reg.GetCounter(prefix + "shed_on_age");
  depth_gauge_ = reg.GetGauge(prefix + "queue_depth");
  depth_peak_gauge_ = reg.GetGauge(prefix + "queue_depth_peak");
}

size_t AdmissionController::DepthLimit(Priority priority) const {
  switch (priority) {
    case Priority::kInteractive:
      return options_.max_depth;
    case Priority::kBatch:
      return static_cast<size_t>(static_cast<double>(options_.max_depth) *
                                 options_.batch_fraction);
    case Priority::kBestEffort:
      return static_cast<size_t>(static_cast<double>(options_.max_depth) *
                                 options_.best_effort_fraction);
  }
  return 0;
}

Status AdmissionController::TryAdmit(Priority priority) {
  const size_t limit = DepthLimit(priority);
  // CAS loop: admit only while depth < limit, so concurrent admits can
  // never overshoot the water line.
  size_t depth = depth_.load(std::memory_order_relaxed);
  while (true) {
    if (depth >= limit) {
      shed_ctr_->Increment();
      return Status::ResourceExhausted(
          "admission." + name_ + ": queue full for " +
          PriorityToString(priority) + " (depth " + std::to_string(depth) +
          " >= limit " + std::to_string(limit) + ")");
    }
    if (depth_.compare_exchange_weak(depth, depth + 1,
                                     std::memory_order_relaxed)) {
      break;
    }
  }
  admitted_ctr_->Increment();
  depth_gauge_->Set(static_cast<double>(depth + 1));
  depth_peak_gauge_->Max(static_cast<double>(depth + 1));
  return Status::OK();
}

Status AdmissionController::StartQueued(
    std::chrono::steady_clock::time_point admitted_at) {
  if (options_.max_queue_age_us <= 0) return Status::OK();
  const auto age = std::chrono::duration_cast<std::chrono::microseconds>(
                       std::chrono::steady_clock::now() - admitted_at)
                       .count();
  if (age <= options_.max_queue_age_us) return Status::OK();
  shed_on_age_ctr_->Increment();
  return Status::ResourceExhausted(
      "admission." + name_ + ": queued work aged out (" + std::to_string(age) +
      "us > " + std::to_string(options_.max_queue_age_us) + "us)");
}

void AdmissionController::Finish() {
  const size_t before = depth_.fetch_sub(1, std::memory_order_relaxed);
  depth_gauge_->Set(static_cast<double>(before - 1));
}

uint64_t AdmissionController::admitted() const {
  return admitted_ctr_->value();
}

uint64_t AdmissionController::shed() const { return shed_ctr_->value(); }

}  // namespace exearth::common
