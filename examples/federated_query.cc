// Federated linked-geospatial analytics (paper Challenge C3): three
// autonomous RDF endpoints — a crop layer, an ice layer and an OSM-like
// base layer — federated Semagrow-style, with and without source selection
// and join reordering, plus GeoTriples-style ETL feeding one endpoint and
// JedAI-style interlinking between two of them.
//
// Build & run:  ./build/examples/federated_query

#include <cstdio>

#include "common/string_util.h"
#include "etl/mapping.h"
#include "fed/federation.h"
#include "link/entity_resolution.h"
#include "rdf/query.h"

namespace eea = exearth;

int main() {
  // --- Endpoint 1: crops, materialized from CSV via the mapping engine.
  eea::etl::Table table;
  table.columns = {"id", "crop", "region"};
  for (int i = 0; i < 40; ++i) {
    table.rows.push_back({std::to_string(i),
                          i % 3 == 0 ? "wheat" : "maize",
                          i < 20 ? "north" : "south"});
  }
  eea::etl::TriplesMap mapping;
  mapping.subject = eea::etl::TermMap::Template("http://x/field/{id}");
  mapping.subject_class = "http://x/ontology#Field";
  mapping.predicate_objects.push_back(
      {"http://x/cropType", eea::etl::TermMap::Column("crop")});
  mapping.predicate_objects.push_back(
      {"http://x/region", eea::etl::TermMap::Column("region")});
  eea::rdf::TripleStore crop_store;
  auto etl_stats = eea::etl::ExecuteMapping(table, mapping, &crop_store);
  if (!etl_stats.ok()) {
    std::fprintf(stderr, "ETL: %s\n", etl_stats.status().ToString().c_str());
    return 1;
  }
  std::printf("GeoTriples ETL: %llu rows -> %llu triples\n",
              static_cast<unsigned long long>(etl_stats->rows_processed),
              static_cast<unsigned long long>(etl_stats->triples_generated));

  // --- Endpoint 2: ice observations.
  eea::rdf::TripleStore ice_store;
  for (int i = 0; i < 25; ++i) {
    ice_store.Add(
        eea::rdf::Term::Iri(eea::common::StrFormat("http://x/floe/%d", i)),
        eea::rdf::Term::Iri("http://x/iceClass"),
        eea::rdf::Term::Literal(i % 2 == 0 ? "FirstYearIce" : "OldIce"));
  }

  // --- Endpoint 3: base layer with labels for everything.
  eea::rdf::TripleStore base_store;
  for (int i = 0; i < 40; ++i) {
    base_store.Add(
        eea::rdf::Term::Iri(eea::common::StrFormat("http://x/field/%d", i)),
        eea::rdf::Term::Iri(eea::rdf::vocab::kLabel),
        eea::rdf::Term::Literal(eea::common::StrFormat("parcel %d", i)));
  }

  eea::fed::Endpoint crops("crops", std::move(crop_store));
  eea::fed::Endpoint ice("ice", std::move(ice_store));
  eea::fed::Endpoint base("base", std::move(base_store));
  eea::fed::FederationEngine federation;
  federation.Register(&crops);
  federation.Register(&ice);
  federation.Register(&base);

  // Federated query: labels of all wheat fields (spans two endpoints).
  eea::rdf::Query q;
  q.where.push_back(eea::rdf::TriplePattern{
      eea::rdf::PatternSlot::Var("f"),
      eea::rdf::PatternSlot::Iri(eea::rdf::vocab::kLabel),
      eea::rdf::PatternSlot::Var("label")});
  q.where.push_back(eea::rdf::TriplePattern{
      eea::rdf::PatternSlot::Var("f"),
      eea::rdf::PatternSlot::Iri("http://x/cropType"),
      eea::rdf::PatternSlot::Of(eea::rdf::Term::Literal("wheat"))});

  for (bool optimized : {false, true}) {
    eea::fed::FederationOptions opt;
    opt.source_selection = optimized;
    opt.join_reordering = optimized;
    eea::fed::FederationStats stats;
    auto rows = federation.Execute(q, opt, {}, nullptr, &stats);
    if (!rows.ok()) {
      std::fprintf(stderr, "federation: %s\n",
                   rows.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "federated query (%s): %zu results, %llu subqueries, "
        "%llu endpoints contacted, %llu rows transferred\n",
        optimized ? "Semagrow-optimized" : "naive broadcast", rows->size(),
        static_cast<unsigned long long>(stats.subqueries_sent),
        static_cast<unsigned long long>(stats.endpoints_contacted),
        static_cast<unsigned long long>(stats.rows_transferred));
  }

  // --- Interlinking (JedAI-style): match dirty duplicates across sources.
  eea::link::ErWorkloadOptions er_opt;
  er_opt.num_records = 400;
  eea::link::ErDataset er = eea::link::MakeDirtyErDataset(er_opt);
  auto match = eea::link::JaccardMatcher(0.45);
  auto naive = eea::link::ResolveNaive(er.entities, match);
  eea::link::BlockingOptions bopt;
  auto meta = eea::link::ResolveWithMetaBlocking(er.entities, match, bopt);
  auto mn = eea::link::ComputePairMetrics(naive.matches, er.true_matches);
  auto mm = eea::link::ComputePairMetrics(meta.matches, er.true_matches);
  std::printf(
      "interlinking: naive %llu comparisons (recall %.2f) vs meta-blocking "
      "%llu comparisons (recall %.2f)\n",
      static_cast<unsigned long long>(naive.comparisons), mn.recall,
      static_cast<unsigned long long>(meta.comparisons), mm.recall);
  return 0;
}
