// Minimal leveled logging and CHECK macros.
//
// Logging goes to stderr. The level can be raised globally to silence
// benchmarks; CHECK failures always abort. The level and output format
// are also picked up from the environment the first time logging is
// touched (or explicitly via InitLoggingFromEnv()):
//
//   EXEARTH_LOG_LEVEL = DEBUG | INFO | WARN | WARNING | ERROR | 0..3
//   EXEARTH_LOG_JSON  = 1 | true    one JSON object per line, stamped
//                                   with the active trace_id so log lines
//                                   correlate with Chrome trace exports
//
// EEA_CHECK always runs; EEA_DCHECK compiles to a NullStream in NDEBUG
// builds (condition and message are never evaluated), so debug-only
// invariants cost nothing on release hot paths.

#ifndef EXEARTH_COMMON_LOGGING_H_
#define EXEARTH_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace exearth::common {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level actually emitted. Defaults to kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Applies EXEARTH_LOG_LEVEL / EXEARTH_LOG_JSON from the environment.
/// Runs at most once per process; also triggered lazily by the first log
/// statement, so calling it is only needed to control *when* (e.g. before
/// programmatic SetLogLevel overrides).
void InitLoggingFromEnv();

/// Structured output: one JSON object per line
///   {"ts_us": ..., "level": "INFO", "src": "file.cc:42",
///    "trace_id": ..., "msg": "..."}
/// instead of the human-readable "[LEVEL file:line] msg" prefix.
void SetJsonLogging(bool enabled);
bool JsonLoggingEnabled();

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when a log statement is compiled out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace exearth::common

#define EEA_LOG(level)                                             \
  ::exearth::common::internal_logging::LogMessage(                 \
      ::exearth::common::LogLevel::k##level, __FILE__, __LINE__)   \
      .stream()

#define EEA_CHECK(cond)                                                 \
  if (!(cond))                                                          \
  ::exearth::common::internal_logging::LogMessage(                      \
      ::exearth::common::LogLevel::kError, __FILE__, __LINE__, true)    \
          .stream()                                                     \
      << "Check failed: " #cond " "

#define EEA_CHECK_OK(expr)                                              \
  do {                                                                  \
    ::exearth::common::Status _eea_chk = (expr);                        \
    EEA_CHECK(_eea_chk.ok()) << _eea_chk.ToString();                    \
  } while (false)

#ifdef NDEBUG
// Dead code: `cond` is parsed (so its variables stay "used") but the
// short-circuit guarantees it is never evaluated, and the optimizer
// removes the whole statement including the streamed message.
#define EEA_DCHECK(cond)                          \
  while (false && static_cast<bool>(cond))        \
  ::exearth::common::internal_logging::NullStream()
#else
#define EEA_DCHECK(cond) EEA_CHECK(cond)
#endif

#endif  // EXEARTH_COMMON_LOGGING_H_
