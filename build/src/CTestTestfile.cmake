# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("geo")
subdirs("raster")
subdirs("sim")
subdirs("kv")
subdirs("dfs")
subdirs("ml")
subdirs("rdf")
subdirs("strabon")
subdirs("etl")
subdirs("link")
subdirs("fed")
subdirs("catalog")
subdirs("foodsec")
subdirs("polar")
subdirs("platform")
