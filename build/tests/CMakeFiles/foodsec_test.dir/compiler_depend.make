# Empty compiler generated dependencies file for foodsec_test.
# This may be replaced when dependencies are built.
