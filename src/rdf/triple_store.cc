#include "rdf/triple_store.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace exearth::rdf {

namespace {

// Orderings for the three permutations.
struct SpoLess {
  bool operator()(const TripleId& a, const TripleId& b) const {
    if (a.s != b.s) return a.s < b.s;
    if (a.p != b.p) return a.p < b.p;
    return a.o < b.o;
  }
};
struct PosLess {
  bool operator()(const TripleId& a, const TripleId& b) const {
    if (a.p != b.p) return a.p < b.p;
    if (a.o != b.o) return a.o < b.o;
    return a.s < b.s;
  }
};
struct OspLess {
  bool operator()(const TripleId& a, const TripleId& b) const {
    if (a.o != b.o) return a.o < b.o;
    if (a.s != b.s) return a.s < b.s;
    return a.p < b.p;
  }
};

// Equal-range over a sorted permutation for the bound prefix of `pattern`.
// Key ordering: k1 (major), k2 (minor). k2 may only be bound if k1 is.
template <typename Less, typename Key1, typename Key2>
std::pair<const TripleId*, const TripleId*> PrefixRange(
    const std::vector<TripleId>& index, std::optional<uint64_t> k1,
    std::optional<uint64_t> k2, Key1 key1, Key2 key2) {
  const TripleId* begin = index.data();
  const TripleId* end = index.data() + index.size();
  if (!k1.has_value()) return {begin, end};
  // Binary search on the first key.
  auto lo1 = std::lower_bound(begin, end, *k1, [&](const TripleId& t,
                                                   uint64_t v) {
    return key1(t) < v;
  });
  auto hi1 = std::upper_bound(lo1, end, *k1, [&](uint64_t v,
                                                 const TripleId& t) {
    return v < key1(t);
  });
  if (!k2.has_value()) return {lo1, hi1};
  auto lo2 = std::lower_bound(lo1, hi1, *k2, [&](const TripleId& t,
                                                 uint64_t v) {
    return key2(t) < v;
  });
  auto hi2 = std::upper_bound(lo2, hi1, *k2, [&](uint64_t v,
                                                 const TripleId& t) {
    return v < key2(t);
  });
  return {lo2, hi2};
}

}  // namespace

void TripleStore::Add(const Term& s, const Term& p, const Term& o) {
  AddIds(dict_.Encode(s), dict_.Encode(p), dict_.Encode(o));
}

void TripleStore::AddIds(uint64_t s, uint64_t p, uint64_t o) {
  EEA_DCHECK(s != Dictionary::kInvalidId && p != Dictionary::kInvalidId &&
             o != Dictionary::kInvalidId);
  spo_.push_back(TripleId{s, p, o});
  built_ = false;
}

void TripleStore::Build() {
  if (built_) return;
  std::sort(spo_.begin(), spo_.end(), SpoLess{});
  spo_.erase(std::unique(spo_.begin(), spo_.end()), spo_.end());
  pos_ = spo_;
  std::sort(pos_.begin(), pos_.end(), PosLess{});
  osp_ = spo_;
  std::sort(osp_.begin(), osp_.end(), OspLess{});
  built_ = true;
}

TripleStore::Index TripleStore::ChooseIndex(const IdPattern& q) const {
  // Pick the permutation whose sort order matches the bound slots as a
  // prefix: s -> SPO, p -> POS, o -> OSP; s+p -> SPO, p+o -> POS, o+s -> OSP.
  if (q.s.has_value()) {
    return Index::kSpo;  // covers s, s+p, s+p+o, s+o (partially)
  }
  if (q.p.has_value()) return Index::kPos;
  if (q.o.has_value()) return Index::kOsp;
  return Index::kSpo;  // full scan
}

void TripleStore::Scan(
    const IdPattern& q,
    const std::function<bool(const TripleId&)>& visitor) const {
  EEA_CHECK(built_) << "Scan on unbuilt TripleStore";
  const TripleId* begin = nullptr;
  const TripleId* end = nullptr;
  Index index = ChooseIndex(q);
  switch (index) {
    case Index::kSpo: {
      auto range = PrefixRange<SpoLess>(
          spo_, q.s, q.s.has_value() ? q.p : std::nullopt,
          [](const TripleId& t) { return t.s; },
          [](const TripleId& t) { return t.p; });
      begin = range.first;
      end = range.second;
      break;
    }
    case Index::kPos: {
      auto range = PrefixRange<PosLess>(
          pos_, q.p, q.o,
          [](const TripleId& t) { return t.p; },
          [](const TripleId& t) { return t.o; });
      begin = range.first;
      end = range.second;
      break;
    }
    case Index::kOsp: {
      auto range = PrefixRange<OspLess>(
          osp_, q.o, q.s,
          [](const TripleId& t) { return t.o; },
          [](const TripleId& t) { return t.s; });
      begin = range.first;
      end = range.second;
      break;
    }
  }
  for (const TripleId* t = begin; t != end; ++t) {
    // Residual filters for slots not covered by the index prefix.
    if (q.s.has_value() && t->s != *q.s) continue;
    if (q.p.has_value() && t->p != *q.p) continue;
    if (q.o.has_value() && t->o != *q.o) continue;
    if (!visitor(*t)) return;
  }
}

std::vector<TripleId> TripleStore::Match(const IdPattern& pattern) const {
  std::vector<TripleId> out;
  Scan(pattern, [&](const TripleId& t) {
    out.push_back(t);
    return true;
  });
  return out;
}

uint64_t TripleStore::Count(const IdPattern& q) const {
  EEA_CHECK(built_) << "Count on unbuilt TripleStore";
  // Fully-bound prefix cases can be answered from range widths.
  const bool s = q.s.has_value();
  const bool p = q.p.has_value();
  const bool o = q.o.has_value();
  if (!s && !p && !o) return spo_.size();
  // For prefix-matching combinations, use the range; count residuals
  // otherwise.
  uint64_t count = 0;
  Scan(q, [&](const TripleId&) {
    ++count;
    return true;
  });
  return count;
}

std::vector<std::pair<uint64_t, uint64_t>> TripleStore::PredicateStats()
    const {
  EEA_CHECK(built_) << "PredicateStats on unbuilt TripleStore";
  std::vector<std::pair<uint64_t, uint64_t>> out;
  size_t i = 0;
  while (i < pos_.size()) {
    size_t j = i;
    while (j < pos_.size() && pos_[j].p == pos_[i].p) ++j;
    out.emplace_back(pos_[i].p, static_cast<uint64_t>(j - i));
    i = j;
  }
  return out;
}

bool TripleStore::Contains(uint64_t s, uint64_t p, uint64_t o) const {
  bool found = false;
  Scan(IdPattern{s, p, o}, [&](const TripleId&) {
    found = true;
    return false;
  });
  return found;
}

}  // namespace exearth::rdf
