// Admission control and load shedding for per-subsystem work queues.
//
// An AdmissionController fronts one subsystem's queue (federation queries,
// scheduler ready set, ingestion backlog, thread-pool submissions). Work
// asks to enter with a priority class; the controller admits it while the
// queue has room for that class and sheds it with ResourceExhausted
// otherwise. Shedding at the door is the whole point: a request that
// would only time out in line is cheap to reject *now* and expensive to
// reject after it has held a worker for its full deadline.
//
// Priority classes carve the queue into nested water lines — interactive
// work may fill the whole queue, batch work only the first
// batch_fraction of it, best-effort work only the first
// best_effort_fraction. Under overload the low classes shed first while
// interactive traffic still gets through (fractions floor to whole
// slots, so a tiny queue can leave a low class with zero slots — that is
// strictness, not a bug).
//
// Queued work can additionally be shed at *dequeue* when it sat in line
// longer than max_queue_age_us (work older than a typical client timeout
// is doomed; running it is pure waste). ThreadPool::TrySubmit wires this
// in; see thread_pool.h.
//
//   AdmissionController ctrl("fed", {.max_depth = 64});
//   Status s = ctrl.TryAdmit(Priority::kInteractive);
//   if (!s.ok()) return s;          // shed: ResourceExhausted
//   AdmissionTicket ticket(&ctrl);  // releases the slot on scope exit
//   ... do the work ...
//
// Observable per controller: admission.<name>.queue_depth (gauge),
// .queue_depth_peak (gauge, high-water), .admitted / .shed /
// .shed_on_age (counters). All methods are thread-safe; the hot path is
// a couple of relaxed atomics.

#ifndef EXEARTH_COMMON_ADMISSION_H_
#define EXEARTH_COMMON_ADMISSION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace exearth::common {

class Counter;
class Gauge;

/// Priority class of a piece of work; lower classes shed earlier.
enum class Priority {
  kInteractive = 0,  // user-facing queries; shed last
  kBatch = 1,        // bulk analytics, reprocessing
  kBestEffort = 2,   // prefetch, speculative work; shed first
};

const char* PriorityToString(Priority p);

struct AdmissionOptions {
  /// Total queue slots (interactive water line). Must be >= 1.
  size_t max_depth = 256;
  /// Fractions of max_depth available to lower classes (floored).
  double batch_fraction = 0.75;
  double best_effort_fraction = 0.5;
  /// If > 0, work admitted longer than this ago is shed at StartQueued()
  /// instead of run. 0 disables age shedding.
  int64_t max_queue_age_us = 0;
};

/// Bounded-admission gate for one subsystem. `name` keys the metrics.
class AdmissionController {
 public:
  AdmissionController(std::string name, AdmissionOptions options);

  /// Admits or sheds: OK reserves one queue slot (release it with
  /// Finish(), or let an AdmissionTicket do it); ResourceExhausted means
  /// the queue is full for this priority class and the work was shed.
  Status TryAdmit(Priority priority);

  /// Age check at the moment queued work starts running: OK to proceed,
  /// or ResourceExhausted when the work sat in line past
  /// max_queue_age_us. A shed here still holds its slot until Finish().
  Status StartQueued(std::chrono::steady_clock::time_point admitted_at);

  /// Releases one admitted slot.
  void Finish();

  size_t depth() const { return depth_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  const AdmissionOptions& options() const { return options_; }

  /// Queue slots available to `priority` (its water line).
  size_t DepthLimit(Priority priority) const;

  uint64_t admitted() const;
  uint64_t shed() const;

 private:
  const std::string name_;
  const AdmissionOptions options_;
  std::atomic<size_t> depth_{0};
  Counter* admitted_ctr_;
  Counter* shed_ctr_;
  Counter* shed_on_age_ctr_;
  Gauge* depth_gauge_;
  Gauge* depth_peak_gauge_;
};

/// RAII slot release for a successful TryAdmit.
class AdmissionTicket {
 public:
  AdmissionTicket() = default;
  explicit AdmissionTicket(AdmissionController* ctrl) : ctrl_(ctrl) {}
  AdmissionTicket(AdmissionTicket&& other) noexcept : ctrl_(other.ctrl_) {
    other.ctrl_ = nullptr;
  }
  AdmissionTicket& operator=(AdmissionTicket&& other) noexcept {
    if (this != &other) {
      Release();
      ctrl_ = other.ctrl_;
      other.ctrl_ = nullptr;
    }
    return *this;
  }
  AdmissionTicket(const AdmissionTicket&) = delete;
  AdmissionTicket& operator=(const AdmissionTicket&) = delete;
  ~AdmissionTicket() { Release(); }

  void Release() {
    if (ctrl_) {
      ctrl_->Finish();
      ctrl_ = nullptr;
    }
  }

 private:
  AdmissionController* ctrl_ = nullptr;
};

}  // namespace exearth::common

#endif  // EXEARTH_COMMON_ADMISSION_H_
