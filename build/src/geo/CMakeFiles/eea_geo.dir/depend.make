# Empty dependencies file for eea_geo.
# This may be replaced when dependencies are built.
