// The A2 end-to-end pipeline: simulate Arctic SAR scenes, train a sea-ice
// classifier, classify wall-to-wall, aggregate to 1 km chart products
// (concentration, WMO stage of development, lead fraction), detect
// icebergs, and publish observations into the semantic catalogue.

#ifndef EXEARTH_POLAR_PIPELINE_H_
#define EXEARTH_POLAR_PIPELINE_H_

#include <cstdint>
#include <vector>

#include "catalog/catalogue.h"
#include "common/result.h"
#include "ml/metrics.h"
#include "ml/network.h"
#include "polar/ice_products.h"
#include "polar/icebergs.h"
#include "raster/landcover.h"
#include "raster/sentinel.h"

namespace exearth::polar {

inline constexpr char kIcebergClassIri[] =
    "http://extremeearth.eu/ontology#Iceberg";

struct PolarOptions {
  int width = 200;          // pixels
  int height = 200;
  double pixel_size = 40.0; // Sentinel-1 EW-ish
  int ice_patches = 40;     // Voronoi patches of the true ice map
  int classifier_patch = 4; // classification window (pixels)
  int training_samples = 4000;
  int epochs = 5;
  double learning_rate = 0.05;
  int chart_cell_pixels = 25;  // 25 x 40 m = 1 km cells
  int injected_icebergs = 12;
  uint64_t seed = 1;
};

struct PolarReport {
  raster::ClassMap true_ice{0, 0};
  raster::ClassMap predicted_ice{0, 0};
  double ice_accuracy = 0.0;
  ml::ConfusionMatrix ice_confusion{raster::kNumIceClasses};
  IceChart chart;
  /// Per-cell ridge fraction aligned with the chart grid (WMO "fraction
  /// of ridges").
  raster::Raster ridge_fraction;
  std::vector<Iceberg> icebergs;
  std::vector<geo::Point> true_iceberg_positions;
  double iceberg_recall = 0.0;
  size_t pcdss_bytes = 0;
  double pcdss_transfer_seconds = 0.0;  // over a 2400 bps link
};

/// Runs the pipeline. If `catalogue` is non-null, the scene metadata is
/// ingested and each detected iceberg becomes a knowledge observation
/// (catalogue->Build() is called).
common::Result<PolarReport> RunPolarPipeline(
    const PolarOptions& options, catalog::SemanticCatalogue* catalogue);

/// Wall-to-wall patch classification of a SAR scene (exposed for benches):
/// slides a `patch` window with stride `patch` and writes the predicted
/// class into every covered pixel.
raster::ClassMap ClassifyIcePixels(
    const raster::SentinelProduct& sar_scene, ml::Network* network, int patch,
    const std::vector<std::pair<float, float>>& standardization);

}  // namespace exearth::polar

#endif  // EXEARTH_POLAR_PIPELINE_H_
