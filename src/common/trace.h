// RAII trace spans recording nested timing trees.
//
// A TraceSpan marks a named scope; nested spans on the same thread become
// children of the enclosing span. Timings are *aggregated by path*: every
// execution of the same name-path accumulates into one node (count +
// total time), so the tree stays bounded no matter how many times a hot
// path runs. Trees from all threads merge by path on export.
//
//   void HandleQuery() {
//     common::TraceSpan span("strabon.SpatialSelect");
//     ...
//     { common::TraceSpan probe("index_probe"); ... }
//   }
//
// Hot-path cost: two steady_clock reads plus relaxed atomic adds. The
// tracer mutex is taken only the first time a thread sees a new path and
// during export/reset.

#ifndef EXEARTH_COMMON_TRACE_H_
#define EXEARTH_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

namespace exearth::common {

class Tracer;

namespace trace_internal {

/// One aggregated node of the span tree. count/total_ns are written by the
/// owning thread and read during export, hence atomic.
struct TraceNode {
  explicit TraceNode(std::string n) : name(std::move(n)) {}
  std::string name;
  std::atomic<uint64_t> count{0};
  std::atomic<uint64_t> total_ns{0};
  // Structure mutations (insert) and export traversals are serialized by
  // the tracer mutex; the owning thread may read lock-free.
  std::map<std::string, std::unique_ptr<TraceNode>> children;
};

/// Per-thread span state; registers with the tracer on first span and
/// merges its tree into the tracer's retired tree at thread exit.
struct ThreadTraceState {
  explicit ThreadTraceState(Tracer* tracer);
  ~ThreadTraceState();
  Tracer* tracer;
  TraceNode root{"root"};
  TraceNode* current = &root;
};

}  // namespace trace_internal

/// Process-wide collector of aggregated span trees.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The tracer TraceSpan records into (never destroyed).
  static Tracer& Default();

  /// JSON tree merged across all threads (live and exited):
  ///   {"name": "root", "count": N, "total_us": T, "children": [...]}
  std::string ToJson() const;

  /// Drops all recorded timings. Spans still open on other threads keep
  /// recording into their (now zeroed) nodes.
  void Reset();

 private:
  friend struct trace_internal::ThreadTraceState;
  friend class TraceSpan;

  void RegisterThread(trace_internal::ThreadTraceState* state);
  void RetireThread(trace_internal::ThreadTraceState* state);
  /// Finds or creates `parent`'s child named `name` (locks only on create).
  trace_internal::TraceNode* Child(trace_internal::TraceNode* parent,
                                   const char* name);

  mutable std::mutex mu_;
  std::set<trace_internal::ThreadTraceState*> live_;
  trace_internal::TraceNode retired_{"root"};
};

/// RAII scope: charges its wall-clock lifetime to the node at the current
/// thread's span path. `name` must outlive the span (string literals).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan();

 private:
  trace_internal::ThreadTraceState* state_;
  trace_internal::TraceNode* parent_;
  trace_internal::TraceNode* node_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace exearth::common

#endif  // EXEARTH_COMMON_TRACE_H_
