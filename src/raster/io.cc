#include "raster/io.h"

#include <cstring>
#include <type_traits>

namespace exearth::raster {

using common::Result;
using common::Status;

namespace {

constexpr uint32_t kVersion = 1;
constexpr char kRasterMagic[4] = {'E', 'E', 'A', 'R'};
constexpr char kProductMagic[4] = {'E', 'E', 'A', 'P'};

// Little-endian raw writers/readers over a std::string buffer.
template <typename T>
void Put(std::string* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const char* p = reinterpret_cast<const char*>(&value);
  out->append(p, sizeof(T));
}

template <typename T>
bool Get(std::string_view in, size_t* pos, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (*pos + sizeof(T) > in.size()) return false;
  std::memcpy(value, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

void PutString(std::string* out, const std::string& s) {
  Put<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool GetString(std::string_view in, size_t* pos, std::string* s) {
  uint32_t len = 0;
  if (!Get(in, pos, &len)) return false;
  if (*pos + len > in.size()) return false;
  s->assign(in.data() + *pos, len);
  *pos += len;
  return true;
}

}  // namespace

std::string SerializeRaster(const Raster& raster) {
  std::string out;
  out.reserve(16 + raster.NumValues() * sizeof(float));
  out.append(kRasterMagic, 4);
  Put<uint32_t>(&out, kVersion);
  Put<int32_t>(&out, raster.width());
  Put<int32_t>(&out, raster.height());
  Put<int32_t>(&out, raster.bands());
  Put<double>(&out, raster.transform().origin_x);
  Put<double>(&out, raster.transform().origin_y);
  Put<double>(&out, raster.transform().pixel_size);
  out.append(reinterpret_cast<const char*>(raster.data().data()),
             raster.data().size() * sizeof(float));
  return out;
}

Result<Raster> DeserializeRaster(std::string_view bytes) {
  size_t pos = 0;
  if (bytes.size() < 4 || std::memcmp(bytes.data(), kRasterMagic, 4) != 0) {
    return Status::InvalidArgument("not an EEAR raster blob");
  }
  pos = 4;
  uint32_t version = 0;
  int32_t w = 0;
  int32_t h = 0;
  int32_t bands = 0;
  GeoTransform t;
  if (!Get(bytes, &pos, &version) || version != kVersion ||
      !Get(bytes, &pos, &w) || !Get(bytes, &pos, &h) ||
      !Get(bytes, &pos, &bands) || !Get(bytes, &pos, &t.origin_x) ||
      !Get(bytes, &pos, &t.origin_y) || !Get(bytes, &pos, &t.pixel_size)) {
    return Status::InvalidArgument("truncated raster header");
  }
  if (w < 0 || h < 0 || bands < 0) {
    return Status::InvalidArgument("negative raster dimensions");
  }
  const size_t values = static_cast<size_t>(w) * static_cast<size_t>(h) *
                        static_cast<size_t>(bands);
  if (pos + values * sizeof(float) != bytes.size()) {
    return Status::InvalidArgument("raster payload size mismatch");
  }
  Raster out(w, h, bands, t);
  std::memcpy(out.data().data(), bytes.data() + pos, values * sizeof(float));
  return out;
}

std::string SerializeProduct(const SentinelProduct& product) {
  std::string out;
  out.append(kProductMagic, 4);
  Put<uint32_t>(&out, kVersion);
  const SceneMetadata& md = product.metadata;
  PutString(&out, md.product_id);
  Put<uint8_t>(&out, static_cast<uint8_t>(md.mission));
  Put<int32_t>(&out, md.year);
  Put<int32_t>(&out, md.day_of_year);
  Put<double>(&out, md.footprint.min_x);
  Put<double>(&out, md.footprint.min_y);
  Put<double>(&out, md.footprint.max_x);
  Put<double>(&out, md.footprint.max_y);
  Put<double>(&out, md.cloud_cover);
  Put<uint64_t>(&out, md.size_bytes);
  PutString(&out, SerializeRaster(product.raster));
  const bool has_mask = !product.cloud_mask.empty();
  Put<uint8_t>(&out, has_mask ? 1 : 0);
  if (has_mask) {
    Put<int32_t>(&out, product.cloud_mask.width());
    Put<int32_t>(&out, product.cloud_mask.height());
    out.append(reinterpret_cast<const char*>(product.cloud_mask.data().data()),
               product.cloud_mask.data().size());
  }
  return out;
}

Result<SentinelProduct> DeserializeProduct(std::string_view bytes) {
  if (bytes.size() < 4 || std::memcmp(bytes.data(), kProductMagic, 4) != 0) {
    return Status::InvalidArgument("not an EEAP product blob");
  }
  size_t pos = 4;
  uint32_t version = 0;
  if (!Get(bytes, &pos, &version) || version != kVersion) {
    return Status::InvalidArgument("unsupported product version");
  }
  SentinelProduct product;
  SceneMetadata& md = product.metadata;
  uint8_t mission = 0;
  if (!GetString(bytes, &pos, &md.product_id) ||
      !Get(bytes, &pos, &mission) || !Get(bytes, &pos, &md.year) ||
      !Get(bytes, &pos, &md.day_of_year) ||
      !Get(bytes, &pos, &md.footprint.min_x) ||
      !Get(bytes, &pos, &md.footprint.min_y) ||
      !Get(bytes, &pos, &md.footprint.max_x) ||
      !Get(bytes, &pos, &md.footprint.max_y) ||
      !Get(bytes, &pos, &md.cloud_cover) ||
      !Get(bytes, &pos, &md.size_bytes)) {
    return Status::InvalidArgument("truncated product metadata");
  }
  md.mission = static_cast<Mission>(mission);
  std::string raster_blob;
  if (!GetString(bytes, &pos, &raster_blob)) {
    return Status::InvalidArgument("truncated raster blob");
  }
  EEA_ASSIGN_OR_RETURN(product.raster, DeserializeRaster(raster_blob));
  uint8_t has_mask = 0;
  if (!Get(bytes, &pos, &has_mask)) {
    return Status::InvalidArgument("truncated mask flag");
  }
  if (has_mask) {
    int32_t mw = 0;
    int32_t mh = 0;
    if (!Get(bytes, &pos, &mw) || !Get(bytes, &pos, &mh) || mw < 0 ||
        mh < 0) {
      return Status::InvalidArgument("truncated mask header");
    }
    const size_t n = static_cast<size_t>(mw) * static_cast<size_t>(mh);
    if (pos + n > bytes.size()) {
      return Status::InvalidArgument("truncated mask payload");
    }
    product.cloud_mask = Grid<uint8_t>(mw, mh);
    std::memcpy(product.cloud_mask.data().data(), bytes.data() + pos, n);
    pos += n;
  }
  if (pos != bytes.size()) {
    return Status::InvalidArgument("trailing bytes in product blob");
  }
  return product;
}

}  // namespace exearth::raster
