file(REMOVE_RECURSE
  "libeea_raster.a"
)
