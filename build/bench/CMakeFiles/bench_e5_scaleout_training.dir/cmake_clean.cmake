file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_scaleout_training.dir/bench_e5_scaleout_training.cc.o"
  "CMakeFiles/bench_e5_scaleout_training.dir/bench_e5_scaleout_training.cc.o.d"
  "bench_e5_scaleout_training"
  "bench_e5_scaleout_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_scaleout_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
