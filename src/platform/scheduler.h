// Elastic job scheduling on the simulated cluster (Challenge C5): jobs with
// dependencies and compute demands scheduled onto cluster nodes through the
// discrete-event clock; reports per-job times and the makespan.

#ifndef EXEARTH_PLATFORM_SCHEDULER_H_
#define EXEARTH_PLATFORM_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "sim/cluster.h"
#include "sim/event_queue.h"

namespace exearth::platform {

/// A unit of platform work (a processing-chain stage).
struct JobSpec {
  std::string name;
  double compute_seconds = 1.0;  // node-seconds of work
  std::vector<int> dependencies; // indexes of jobs that must finish first
};

struct JobResult {
  std::string name;
  double start_time = 0.0;
  double end_time = 0.0;
  int node = -1;
  /// Execution attempts made (0 = never ran: a dependency was
  /// quarantined, so this job was poisoned and skipped).
  int attempts = 0;
  /// True if the job did not complete (quarantined, poisoned, shed, or
  /// cancelled).
  bool failed = false;
  /// Shed at enqueue: the ready queue was at max_ready_queue_depth.
  bool shed = false;
  /// Skipped because the request was cancelled / out of deadline.
  bool cancelled = false;
};

struct ScheduleResult {
  std::vector<JobResult> jobs;
  double makespan_seconds = 0.0;
  /// Mean node busy fraction over the makespan.
  double utilization = 0.0;
  /// Re-attempts after `platform.scheduler.task` faults. Each failed
  /// attempt still burns its node time, so retries extend the makespan.
  uint64_t tasks_retried = 0;
  /// Jobs dropped: retry budget exhausted, or poisoned by a quarantined
  /// dependency (JobResult::attempts == 0 distinguishes the latter).
  uint64_t tasks_quarantined = 0;
  /// Jobs shed at enqueue because the ready queue was full
  /// (max_ready_queue_depth); their dependents are poisoned.
  uint64_t tasks_shed = 0;
  /// Jobs skipped after the request was cancelled or ran out of deadline.
  uint64_t tasks_cancelled = 0;
  /// OK for a run-to-completion schedule; Cancelled/DeadlineExceeded when
  /// the run stopped early (the per-job results are then partial: every
  /// unstarted job is marked cancelled). Reported here rather than as the
  /// function's error so the completed prefix is not thrown away.
  common::Status interrupted;
};

struct ScheduleOptions {
  /// Re-attempts after a failed task execution before the task is
  /// quarantined and its dependents are poisoned.
  int max_task_retries = 3;
  /// Bound on the ready queue (admission control): a job becoming ready
  /// while the queue holds this many entries is shed (JobResult::shed)
  /// and its dependents are poisoned. 0 = unbounded.
  size_t max_ready_queue_depth = 0;
};

/// List-schedules the DAG onto `cluster.num_nodes()` nodes (earliest-
/// available node, dependency-respecting). Fails on cyclic or out-of-range
/// dependencies. Each execution attempt passes the
/// `platform.scheduler.task` injection point; failed attempts are retried
/// per `options` and a job that exhausts its budget is quarantined,
/// transitively poisoning its dependents (reported per job, not as an
/// error — a degraded schedule is still a schedule).
common::Result<ScheduleResult> ScheduleJobs(const std::vector<JobSpec>& jobs,
                                            const sim::Cluster& cluster,
                                            const ScheduleOptions& options);
common::Result<ScheduleResult> ScheduleJobs(const std::vector<JobSpec>& jobs,
                                            const sim::Cluster& cluster);

}  // namespace exearth::platform

#endif  // EXEARTH_PLATFORM_SCHEDULER_H_
