// E18 — durable paged storage (ROADMAP item 1): the cost of surviving a
// restart. Three rows:
//
//   * cold-vs-warm indexed selection: the frozen R-tree is opened from a
//     DiskStorageManager-backed buffer pool (--page_cache_mb sizes it)
//     and queried; cold drops the pool first (every page is a storage
//     read), warm reuses it (pool hits). The gap is the page cache's
//     contribution.
//   * recovery time: a WAL-backed KvStore is populated, a crash is
//     injected mid-commit at the storage.wal.fsync fault point, and the
//     row measures reopening the store — superblock + checkpoint load +
//     WAL replay — until the namespace is queryable again.
//   * result hash: deterministic fingerprint across the whole layer
//     (in-memory vs on-disk index results must match, recovered KV rows
//     hashed in), exported as gauge bench.e18.result_hash for the CI
//     determinism gate (two runs at the same seed must produce the same
//     gauge).

#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_flags.h"
#include "common/fault.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "kv/kvstore.h"
#include "storage/buffer_pool.h"
#include "storage/storage_manager.h"
#include "storage/wal.h"
#include "strabon/geostore.h"
#include "strabon/workload.h"

namespace {

using exearth::common::Rng;
using exearth::common::StrFormat;
using exearth::storage::BufferPool;
using exearth::storage::DiskStorageManager;
using exearth::storage::PageId;
using exearth::storage::Wal;
using exearth::strabon::GeoStore;
using exearth::strabon::GeoWorkloadOptions;
using exearth::strabon::RandomSelectionBox;
using exearth::strabon::SpatialRelation;

// Scratch directory for one benchmark row's storage + wal files,
// removed on destruction.
struct TempStorageDir {
  explicit TempStorageDir(const char* tag) {
    char tmpl[] = "/tmp/eea_e18_XXXXXX";
    char* dir = ::mkdtemp(tmpl);
    EEA_CHECK(dir != nullptr) << "mkdtemp failed for " << tag;
    path = dir;
  }
  ~TempStorageDir() {
    for (const char* f : {"/pages", "/wal", "/wal.tmp"}) {
      ::unlink((path + f).c_str());
    }
    ::rmdir(path.c_str());
  }
  std::string Pages() const { return path + "/pages"; }
  std::string WalPath() const { return path + "/wal"; }
  std::string path;
};

// --page_cache_mb (default 4 MiB) as a frame count.
size_t PoolCapacityPages() {
  const uint64_t mb = exearth::bench::PageCacheMbFlag();
  return static_cast<size_t>((mb == 0 ? 4 : mb) * 1024 * 1024 /
                             exearth::storage::kPageSize);
}

GeoStore& CachedPointStore(int64_t num_features) {
  static std::map<int64_t, std::unique_ptr<GeoStore>>* cache =
      new std::map<int64_t, std::unique_ptr<GeoStore>>();
  auto it = cache->find(num_features);
  if (it == cache->end()) {
    GeoWorkloadOptions opt;
    opt.num_features = num_features;
    opt.kind = GeoWorkloadOptions::GeometryKind::kPoint;
    opt.with_thematic = false;
    opt.seed = 11;
    it = cache
             ->emplace(num_features, std::make_unique<GeoStore>(
                                         exearth::strabon::MakeGeoWorkload(opt)))
             .first;
  }
  return *it->second;
}

// Cold vs warm open-and-query of the on-disk frozen index. The measured
// unit is LoadFrozenIndex (page-chain read through the buffer pool) plus
// a fixed batch of 8 seeded selections; `cold` drops the pool between
// iterations so every page fault goes to storage.
void BM_E18IndexedSelect(benchmark::State& state) {
  const int64_t num_features = state.range(0);
  const bool cold = state.range(1) != 0;
  GeoStore& store = CachedPointStore(num_features);
  TempStorageDir dir("select");
  auto storage_r = DiskStorageManager::Open(dir.Pages());
  EEA_CHECK_OK(storage_r.status());
  std::unique_ptr<DiskStorageManager> storage = std::move(storage_r).value();
  BufferPool pool(storage.get(), PoolCapacityPages());
  PageId head = exearth::storage::kInvalidPageId;
  EEA_CHECK_OK(store.FreezeIndexTo(&pool, &head));
  EEA_CHECK_OK(pool.FlushAll());
  EEA_CHECK_OK(storage->Sync());
  EEA_CHECK_OK(pool.DropAll());
  // Pre-warm the pool for the warm row so even a single iteration
  // measures cache hits, not the first-touch faults.
  if (!cold) EEA_CHECK_OK(store.LoadFrozenIndex(&pool, head));

  uint64_t results = 0;
  uint64_t queries = 0;
  for (auto _ : state) {
    if (cold) EEA_CHECK_OK(pool.DropAll());
    EEA_CHECK_OK(store.LoadFrozenIndex(&pool, head));
    Rng rng(99);
    for (int q = 0; q < 8; ++q) {
      auto box = RandomSelectionBox(100000.0, 0.001, &rng);
      auto hits = *store.SpatialSelect(box, SpatialRelation::kIntersects,
                                       /*use_index=*/true);
      benchmark::DoNotOptimize(hits);
      results += hits.size();
      ++queries;
    }
  }
  const auto stats = pool.stats();
  state.counters["features"] = static_cast<double>(num_features);
  state.counters["index_pages"] = static_cast<double>(storage->page_count());
  state.counters["pool_pages"] = static_cast<double>(pool.capacity());
  state.counters["pool_hits"] = static_cast<double>(stats.hits);
  state.counters["pool_misses"] = static_cast<double>(stats.misses);
  state.counters["pool_evictions"] = static_cast<double>(stats.evictions);
  state.counters["mean_results"] =
      static_cast<double>(results) / static_cast<double>(queries);
}

// Writes `txns` single-row transactions into a durable store, then
// injects a crash (storage.wal.fsync) into one extra commit.
void PopulateAndCrash(const TempStorageDir& dir, int txns) {
  auto storage = std::move(DiskStorageManager::Open(dir.Pages()).value());
  auto wal = std::move(Wal::Open(dir.WalPath()).value());
  BufferPool pool(storage.get(), PoolCapacityPages());
  exearth::kv::KvStore store(8);
  EEA_CHECK_OK(store.AttachDurability(&pool, wal.get()));
  for (int i = 0; i < txns; ++i) {
    EEA_CHECK_OK(store.Put(StrFormat("row%06d", i),
                           StrFormat("value-%d-%d", i, i * 7)));
    // Checkpoint halfway so recovery exercises both the checkpoint-image
    // load and the WAL replay of the second half.
    if (i == txns / 2) EEA_CHECK_OK(store.Checkpoint());
  }
  auto& injector = exearth::common::FaultInjector::Default();
  injector.Reset();
  exearth::common::FaultRule rule;
  rule.fail_calls = {1};
  rule.code = exearth::common::StatusCode::kUnavailable;
  injector.Program("storage.wal.fsync", rule);
  // This commit's fsync is killed: unacknowledged, must not survive.
  EEA_CHECK(!store.Put("crashed-row", "must-not-survive").ok());
  injector.Reset();
}

void BM_E18Recovery(benchmark::State& state) {
  const int txns = static_cast<int>(state.range(0));
  TempStorageDir dir("recovery");
  PopulateAndCrash(dir, txns);
  uint64_t recovered_txns = 0;
  uint64_t recovered_rows = 0;
  size_t keys = 0;
  for (auto _ : state) {
    // Measured: full reopen — superblock validation, checkpoint-image
    // load, WAL torn-tail scan and replay to the last committed txn.
    auto storage = std::move(DiskStorageManager::Open(dir.Pages()).value());
    auto wal = std::move(Wal::Open(dir.WalPath()).value());
    BufferPool pool(storage.get(), PoolCapacityPages());
    exearth::kv::KvStore store(8);
    EEA_CHECK_OK(store.AttachDurability(&pool, wal.get()));
    benchmark::DoNotOptimize(store.Size());
    const auto dstats = store.durability_stats();
    recovered_txns = dstats.recovered_txns;
    recovered_rows = dstats.recovered_rows;
    keys = store.Size();
    EEA_CHECK(keys == static_cast<size_t>(txns))
        << "expected " << txns << " recovered rows, got " << keys;
  }
  state.counters["txns"] = static_cast<double>(txns);
  state.counters["recovered_txns"] = static_cast<double>(recovered_txns);
  state.counters["recovered_rows"] = static_cast<double>(recovered_rows);
  state.counters["recovered_keys"] = static_cast<double>(keys);
}

// Deterministic fingerprint across the storage layer, one fixed
// iteration: (a) 16 seeded selections on the in-memory index, (b) the
// same selections after a FreezeTo/OpenFrozen round trip through a pool
// smaller than the index (forced eviction) — must match (a) exactly —
// and (c) the full recovered KV contents after a crash-interrupted
// commit. Exported as gauge bench.e18.result_hash; CI runs the binary
// twice and asserts the gauges agree.
void BM_E18ResultHash(benchmark::State& state) {
  uint64_t hash = 0;
  for (auto _ : state) {
    hash = 0xcbf29ce484222325ULL;
    auto mix = [&hash](uint64_t v) {
      hash ^= v;
      hash *= 0x100000001b3ULL;
    };

    GeoStore& store = CachedPointStore(20000);
    std::vector<std::vector<uint64_t>> memory_results;
    {
      Rng rng(1234);
      for (int q = 0; q < 16; ++q) {
        auto box = RandomSelectionBox(100000.0, 0.005, &rng);
        memory_results.push_back(*store.SpatialSelect(
            box, SpatialRelation::kIntersects, /*use_index=*/true));
      }
    }
    TempStorageDir dir("hash");
    auto storage = std::move(DiskStorageManager::Open(dir.Pages()).value());
    // 64 pages — far smaller than the index, so the round trip evicts.
    BufferPool pool(storage.get(), 64);
    PageId head = exearth::storage::kInvalidPageId;
    EEA_CHECK_OK(store.FreezeIndexTo(&pool, &head));
    EEA_CHECK_OK(pool.DropAll());
    EEA_CHECK_OK(store.LoadFrozenIndex(&pool, head));
    {
      Rng rng(1234);
      for (int q = 0; q < 16; ++q) {
        auto box = RandomSelectionBox(100000.0, 0.005, &rng);
        auto hits = *store.SpatialSelect(box, SpatialRelation::kIntersects,
                                         /*use_index=*/true);
        EEA_CHECK(hits == memory_results[static_cast<size_t>(q)])
            << "disk-backed index diverged from memory at query " << q;
        for (uint64_t id : hits) mix(id);
      }
    }

    TempStorageDir kv_dir("hash_kv");
    PopulateAndCrash(kv_dir, 200);
    {
      auto kv_storage =
          std::move(DiskStorageManager::Open(kv_dir.Pages()).value());
      auto wal = std::move(Wal::Open(kv_dir.WalPath()).value());
      BufferPool kv_pool(kv_storage.get(), 64);
      exearth::kv::KvStore kv(8);
      EEA_CHECK_OK(kv.AttachDurability(&kv_pool, wal.get()));
      for (const auto& [key, value] : kv.ScanPrefix("")) {
        mix(exearth::common::Fnv1a(key));
        mix(exearth::common::Fnv1a(value));
      }
    }
    benchmark::DoNotOptimize(hash);
  }
  // Mask to 32 bits: gauges are doubles (52-bit exact mantissa).
  exearth::common::MetricsRegistry::Default()
      .GetGauge("bench.e18.result_hash")
      ->Set(static_cast<double>(hash & 0xffffffffULL));
}

}  // namespace

BENCHMARK(BM_E18ResultHash)->Iterations(1);

BENCHMARK(BM_E18IndexedSelect)
    ->ArgNames({"features", "cold"})
    ->Args({50000, 1})
    ->Args({50000, 0})
    ->Args({200000, 1})
    ->Args({200000, 0})
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_E18Recovery)
    ->ArgNames({"txns"})
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// main() comes from bench_main.cc (adds --smoke, --page_cache_mb and the
// metrics-snapshot JSON dump).
