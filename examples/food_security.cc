// Food Security application (paper Challenge A1): a full watershed run —
// crop classification from a year of simulated Sentinel-2, field-boundary
// extraction, 10 m water-availability and irrigation maps, and linked-data
// publication plus example queries a farmer-facing app would issue.
//
// Build & run:  ./build/examples/food_security

#include <cstdio>

#include "foodsec/pipeline.h"
#include "geo/wkt.h"
#include "rdf/query.h"

namespace eea = exearth;

int main() {
  eea::foodsec::FoodSecurityOptions options;
  options.width = 96;
  options.height = 96;
  options.num_parcels = 35;
  options.training_samples = 2500;
  options.epochs = 6;
  options.cloud_probability = 0.2;

  eea::strabon::GeoStore linked_data;
  auto report = eea::foodsec::RunFoodSecurityPipeline(options, &linked_data);
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  std::printf("=== Food Security pipeline (A1) ===\n");
  std::printf("crop classification accuracy: %.3f\n%s\n",
              report->crop_accuracy,
              report->crop_confusion
                  .ToString({"Wheat", "Maize", "Barley", "Rapeseed",
                             "SugarBeet", "Potato", "Grassland", "Fallow"})
                  .c_str());
  std::printf("fields extracted: %zu\n", report->fields.size());
  double total_area = 0;
  for (const auto& f : report->fields) total_area += f.area_ha;
  std::printf("total field area: %.1f ha\n", total_area);

  auto avail = report->water.availability.ComputeStats(0);
  auto irrig = report->water.irrigation_mm.ComputeStats(0);
  std::printf("water availability (season mean soil-water fraction): "
              "mean=%.2f min=%.2f max=%.2f\n",
              avail.mean, avail.min, avail.max);
  std::printf("irrigation requirement: mean=%.0f mm/yr, max=%.0f mm/yr\n",
              irrig.mean, irrig.max);

  // Farmer query 1 (thematic): areas of all wheat fields.
  eea::rdf::QueryEngine engine(&linked_data.triples());
  eea::rdf::Query q;
  q.where.push_back(eea::rdf::TriplePattern{
      eea::rdf::PatternSlot::Var("f"),
      eea::rdf::PatternSlot::Iri("http://extremeearth.eu/ontology#cropType"),
      eea::rdf::PatternSlot::Of(eea::rdf::Term::Literal("Wheat"))});
  q.where.push_back(eea::rdf::TriplePattern{
      eea::rdf::PatternSlot::Var("f"),
      eea::rdf::PatternSlot::Iri("http://extremeearth.eu/ontology#areaHa"),
      eea::rdf::PatternSlot::Var("area")});
  auto rows = engine.Execute(q);
  if (rows.ok()) {
    std::printf("wheat fields in the linked-data layer: %zu\n", rows->size());
  }

  // Farmer query 2 (spatial): fields in the north-west quarter.
  eea::geo::Box extent = report->water.availability.Extent();
  eea::geo::Box nw = eea::geo::Box::Of(
      extent.min_x, (extent.min_y + extent.max_y) / 2,
      (extent.min_x + extent.max_x) / 2, extent.max_y);
  auto hits = *linked_data.SpatialSelect(
      nw, eea::strabon::SpatialRelation::kIntersects, true);
  std::printf("fields intersecting the NW quarter %s: %zu\n",
              eea::geo::ToWkt(nw).c_str(), hits.size());
  return 0;
}
