#include <gtest/gtest.h>

#include "common/string_util.h"
#include "platform/ingestion.h"
#include "platform/platform.h"
#include "platform/scheduler.h"
#include "raster/landcover.h"

namespace exearth::platform {
namespace {

sim::Cluster MakeCluster(int nodes) {
  return sim::Cluster(nodes, sim::NodeSpec{}, sim::NetworkSpec{});
}

// --- Scheduler ------------------------------------------------------------

TEST(SchedulerTest, IndependentJobsRunInParallel) {
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back(JobSpec{common::StrFormat("job%d", i), 10.0, {}});
  }
  auto result = ScheduleJobs(jobs, MakeCluster(8));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->makespan_seconds, 10.0);
  EXPECT_NEAR(result->utilization, 1.0, 1e-9);
  auto serial = ScheduleJobs(jobs, MakeCluster(1));
  ASSERT_TRUE(serial.ok());
  EXPECT_DOUBLE_EQ(serial->makespan_seconds, 80.0);
}

TEST(SchedulerTest, DependenciesRespected) {
  // A diamond: 0 -> {1, 2} -> 3.
  std::vector<JobSpec> jobs = {
      {"ingest", 5.0, {}},
      {"classify", 10.0, {0}},
      {"water", 7.0, {0}},
      {"publish", 2.0, {1, 2}},
  };
  auto result = ScheduleJobs(jobs, MakeCluster(4));
  ASSERT_TRUE(result.ok());
  const auto& r = result->jobs;
  EXPECT_GE(r[1].start_time, r[0].end_time);
  EXPECT_GE(r[2].start_time, r[0].end_time);
  EXPECT_GE(r[3].start_time, std::max(r[1].end_time, r[2].end_time));
  EXPECT_DOUBLE_EQ(result->makespan_seconds, 5.0 + 10.0 + 2.0);
}

TEST(SchedulerTest, RejectsCycles) {
  std::vector<JobSpec> cyclic = {{"a", 1.0, {1}}, {"b", 1.0, {0}}};
  EXPECT_FALSE(ScheduleJobs(cyclic, MakeCluster(2)).ok());
  std::vector<JobSpec> self = {{"a", 1.0, {0}}};
  EXPECT_FALSE(ScheduleJobs(self, MakeCluster(2)).ok());
  std::vector<JobSpec> oob = {{"a", 1.0, {5}}};
  EXPECT_FALSE(ScheduleJobs(oob, MakeCluster(2)).ok());
}

TEST(SchedulerTest, EmptyJobs) {
  auto result = ScheduleJobs({}, MakeCluster(2));
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->makespan_seconds, 0.0);
}

TEST(SchedulerTest, MoreNodesShortenMakespan) {
  std::vector<JobSpec> jobs;
  for (int i = 0; i < 32; ++i) {
    jobs.push_back(JobSpec{common::StrFormat("j%d", i), 1.0, {}});
  }
  double prev = 1e18;
  for (int nodes : {1, 4, 16}) {
    auto result = ScheduleJobs(jobs, MakeCluster(nodes));
    ASSERT_TRUE(result.ok());
    EXPECT_LT(result->makespan_seconds, prev);
    prev = result->makespan_seconds;
  }
}

// --- Ingestion (E14 model) -----------------------------------------------

TEST(IngestionTest, FiveVsShapes) {
  IngestionOptions opt;
  opt.days = 1.0;
  opt.seed = 3;
  auto report = SimulateIngestion(opt);
  ASSERT_TRUE(report.ok());
  // ~1500 products x ~4 GB ~ 6 TB/day generated.
  EXPECT_NEAR(report->ingested_gb, 6000.0, 1500.0);
  // Dissemination amplification ~ 17x.
  EXPECT_NEAR(report->disseminated_gb / report->ingested_gb, 17.0, 4.0);
  // Derived information ~ 45% of ingest.
  EXPECT_NEAR(report->derived_information_gb / report->ingested_gb, 0.45,
              0.02);
  EXPECT_EQ(report->products_ingested, report->products_processed);
}

TEST(IngestionTest, UnderProvisionedProcessingBacklogs) {
  IngestionOptions fast;
  fast.processing_gb_per_day = 100000.0;
  IngestionOptions slow = fast;
  slow.processing_gb_per_day = 3000.0;  // < 6 TB/day arrival
  auto fr = SimulateIngestion(fast);
  auto sr = SimulateIngestion(slow);
  ASSERT_TRUE(fr.ok() && sr.ok());
  EXPECT_GT(sr->max_processing_backlog_gb, fr->max_processing_backlog_gb);
  EXPECT_GT(sr->processing_drain_time_days, 1.5);
  EXPECT_LT(fr->processing_drain_time_days, 1.2);
}

TEST(IngestionTest, Validation) {
  IngestionOptions bad;
  bad.products_per_day = 0;
  EXPECT_FALSE(SimulateIngestion(bad).ok());
}

TEST(IngestionTest, Deterministic) {
  IngestionOptions opt;
  opt.seed = 42;
  auto a = SimulateIngestion(opt);
  auto b = SimulateIngestion(opt);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->products_ingested, b->products_ingested);
  EXPECT_DOUBLE_EQ(a->ingested_gb, b->ingested_gb);
}

// --- Platform facade --------------------------------------------------------

TEST(PlatformTest, RegisterProductsAndSearch) {
  PlatformOptions opt;
  opt.storage.kv_partitions = 4;
  ExtremeEarthPlatform platform(opt);
  for (int i = 0; i < 10; ++i) {
    raster::SceneMetadata md;
    md.product_id = common::StrFormat("S2_TEST_%03d", i);
    md.mission = i % 2 == 0 ? raster::Mission::kSentinel2
                            : raster::Mission::kSentinel1;
    md.year = 2019;
    md.day_of_year = 100 + i;
    md.footprint = geo::Box::Of(i * 10.0, 0, i * 10.0 + 10, 10);
    md.size_bytes = 1 << 20;
    ASSERT_TRUE(platform.RegisterProduct(md).ok());
  }
  ASSERT_TRUE(platform.BuildCatalogue().ok());
  EXPECT_EQ(platform.num_products(), 10u);
  // Files landed in the archive.
  auto s2 = platform.filesystem().List("/products/S2");
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(s2->size(), 5u);
  // Catalogue searchable.
  catalog::SearchRequest req;
  req.mission = raster::Mission::kSentinel1;
  EXPECT_EQ(platform.catalogue().Search(req).size(), 5u);
  // Duplicate registration fails cleanly.
  raster::SceneMetadata dup;
  dup.product_id = "S2_TEST_000";
  dup.mission = raster::Mission::kSentinel2;
  EXPECT_TRUE(platform.RegisterProduct(dup).IsAlreadyExists());
}

TEST(PlatformTest, ProductDataRoundTripThroughArchive) {
  PlatformOptions opt;
  // Large files go through the block path; keep blocks small to exercise it.
  opt.storage.inline_threshold_bytes = 4 * 1024;
  opt.storage.block_size_bytes = 64 * 1024;
  ExtremeEarthPlatform platform(opt);
  exearth::common::Rng rng(8);
  exearth::raster::ClassMapOptions mopt;
  mopt.width = 32;
  mopt.height = 32;
  exearth::raster::ClassMap map = exearth::raster::GenerateClassMap(mopt, &rng);
  exearth::raster::SentinelSimulator sim({}, 9);
  auto product = sim.SimulateS2(map, 77);
  ASSERT_TRUE(platform.RegisterProductWithData(product).ok());
  auto back = platform.LoadProduct(product.metadata.product_id,
                                   exearth::raster::Mission::kSentinel2);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->raster.data(), product.raster.data());
  EXPECT_EQ(back->metadata.day_of_year, 77);
  // Missing product fails cleanly.
  EXPECT_FALSE(
      platform.LoadProduct("nope", exearth::raster::Mission::kSentinel2)
          .ok());
}

TEST(PlatformTest, RunChain) {
  PlatformOptions opt;
  opt.compute_nodes = 4;
  ExtremeEarthPlatform platform(opt);
  std::vector<JobSpec> chain = {
      {"preprocess", 4.0, {}},
      {"classify", 8.0, {0}},
      {"aggregate", 2.0, {1}},
  };
  auto result = platform.RunChain(chain);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->makespan_seconds, 14.0);
}

}  // namespace
}  // namespace exearth::platform
