# Empty compiler generated dependencies file for eea_polar.
# This may be replaced when dependencies are built.
