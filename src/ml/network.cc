#include "ml/network.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace exearth::ml {

Tensor Network::Forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& layer : layers_) {
    x = layer->Forward(x, training);
  }
  return x;
}

void Network::Backward(const Tensor& grad_loss) {
  Tensor g = grad_loss;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->Backward(g);
  }
}

std::vector<Tensor*> Network::Params() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->Params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Network::Grads() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* g : layer->Grads()) out.push_back(g);
  }
  return out;
}

void Network::ZeroGrads() {
  for (Tensor* g : Grads()) g->FillZero();
}

int64_t Network::NumParams() {
  int64_t n = 0;
  for (Tensor* p : Params()) n += p->size();
  return n;
}

double Network::FlopsPerSample() const {
  double flops = 0.0;
  for (const auto& layer : layers_) flops += layer->FlopsPerSample();
  return flops;
}

void Network::CopyParamsFrom(Network& other) {
  auto dst = Params();
  auto src = other.Params();
  EEA_CHECK(dst.size() == src.size());
  for (size_t i = 0; i < dst.size(); ++i) {
    EEA_CHECK(dst[i]->size() == src[i]->size());
    std::copy(src[i]->data(), src[i]->data() + src[i]->size(),
              dst[i]->data());
  }
}

LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int>& labels) {
  EEA_CHECK(logits.ndim() == 2);
  const int n = logits.dim(0);
  const int c = logits.dim(1);
  EEA_CHECK(static_cast<size_t>(n) == labels.size());
  LossResult result;
  result.grad = Tensor({n, c});
  const float* pl = logits.data();
  float* pg = result.grad.data();
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    const float* row = pl + static_cast<int64_t>(i) * c;
    float* grow = pg + static_cast<int64_t>(i) * c;
    float maxv = row[0];
    int argmax = 0;
    for (int j = 1; j < c; ++j) {
      if (row[j] > maxv) {
        maxv = row[j];
        argmax = j;
      }
    }
    double denom = 0.0;
    for (int j = 0; j < c; ++j) denom += std::exp(row[j] - maxv);
    const int label = labels[static_cast<size_t>(i)];
    EEA_CHECK(label >= 0 && label < c);
    const double logprob = (row[label] - maxv) - std::log(denom);
    total -= logprob;
    if (argmax == label) ++result.correct;
    // grad = (softmax - onehot)/N.
    for (int j = 0; j < c; ++j) {
      double p = std::exp(row[j] - maxv) / denom;
      grow[j] = static_cast<float>((p - (j == label ? 1.0 : 0.0)) / n);
    }
  }
  result.loss = total / n;
  return result;
}

Tensor Softmax(const Tensor& logits) {
  EEA_CHECK(logits.ndim() == 2);
  Tensor out = logits;
  const int n = logits.dim(0);
  const int c = logits.dim(1);
  float* p = out.data();
  for (int i = 0; i < n; ++i) {
    float* row = p + static_cast<int64_t>(i) * c;
    float maxv = *std::max_element(row, row + c);
    double denom = 0.0;
    for (int j = 0; j < c; ++j) denom += std::exp(row[j] - maxv);
    for (int j = 0; j < c; ++j) {
      row[j] = static_cast<float>(std::exp(row[j] - maxv) / denom);
    }
  }
  return out;
}

std::string SerializeWeights(Network& network) {
  std::string out = "EEAW";
  auto params = network.Params();
  uint32_t count = static_cast<uint32_t>(params.size());
  out.append(reinterpret_cast<const char*>(&count), sizeof(count));
  for (Tensor* p : params) {
    int64_t n = p->size();
    out.append(reinterpret_cast<const char*>(&n), sizeof(n));
    out.append(reinterpret_cast<const char*>(p->data()),
               static_cast<size_t>(n) * sizeof(float));
  }
  return out;
}

common::Status LoadWeights(std::string_view bytes, Network* network) {
  using common::Status;
  if (bytes.size() < 8 || bytes.substr(0, 4) != "EEAW") {
    return Status::InvalidArgument("not an EEAW weight blob");
  }
  size_t pos = 4;
  uint32_t count = 0;
  std::memcpy(&count, bytes.data() + pos, sizeof(count));
  pos += sizeof(count);
  auto params = network->Params();
  if (count != params.size()) {
    return Status::InvalidArgument("parameter count mismatch");
  }
  for (Tensor* p : params) {
    int64_t n = 0;
    if (pos + sizeof(n) > bytes.size()) {
      return Status::InvalidArgument("truncated weight blob");
    }
    std::memcpy(&n, bytes.data() + pos, sizeof(n));
    pos += sizeof(n);
    if (n != p->size()) {
      return Status::InvalidArgument("parameter shape mismatch");
    }
    const size_t payload = static_cast<size_t>(n) * sizeof(float);
    if (pos + payload > bytes.size()) {
      return Status::InvalidArgument("truncated weight blob");
    }
    std::memcpy(p->data(), bytes.data() + pos, payload);
    pos += payload;
  }
  if (pos != bytes.size()) {
    return Status::InvalidArgument("trailing bytes in weight blob");
  }
  return Status::OK();
}

Network BuildMlp(int input_dim, const std::vector<int>& hidden,
                 int num_classes, uint64_t seed) {
  common::Rng rng(seed);
  Network net;
  int in = input_dim;
  for (int h : hidden) {
    net.Add(std::make_unique<DenseLayer>(in, h, &rng));
    net.Add(std::make_unique<ReluLayer>());
    in = h;
  }
  net.Add(std::make_unique<DenseLayer>(in, num_classes, &rng));
  return net;
}

Network BuildCnn(int channels, int height, int width, int base_filters,
                 int num_classes, uint64_t seed) {
  EEA_CHECK(height % 4 == 0 && width % 4 == 0)
      << "BuildCnn needs H,W divisible by 4";
  common::Rng rng(seed);
  Network net;
  net.Add(std::make_unique<Conv2dLayer>(channels, base_filters, 3, 1, &rng));
  net.Add(std::make_unique<ReluLayer>());
  net.Add(std::make_unique<MaxPool2dLayer>());
  net.Add(std::make_unique<Conv2dLayer>(base_filters, base_filters * 2, 3, 1,
                                        &rng));
  net.Add(std::make_unique<ReluLayer>());
  net.Add(std::make_unique<MaxPool2dLayer>());
  net.Add(std::make_unique<FlattenLayer>());
  const int flat = base_filters * 2 * (height / 4) * (width / 4);
  net.Add(std::make_unique<DenseLayer>(flat, num_classes, &rng));
  return net;
}

}  // namespace exearth::ml
