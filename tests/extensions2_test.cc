#include <set>
// Tests for the second extension batch: filesystem rename / recursive
// remove / disk usage, ridge fractions, elastic autoscaling, and the
// Strabon spatial join.

#include <gtest/gtest.h>

#include <memory>

#include "common/string_util.h"
#include "dfs/hdfs_baseline.h"
#include "dfs/hopsfs.h"
#include "geo/wkt.h"
#include "platform/autoscale.h"
#include "polar/ice_products.h"
#include "strabon/geostore.h"

namespace exearth {
namespace {

// --- Filesystem ops (parameterized over both implementations) ---------------

class FsOpsTest : public testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    if (std::string(GetParam()) == "hopsfs") {
      dfs::HopsFsCluster::Options opt;
      opt.kv_partitions = 4;
      opt.inline_threshold_bytes = 1024;
      cluster_ = std::make_unique<dfs::HopsFsCluster>(opt);
      fs_ = std::make_unique<dfs::HopsFsNameNode>(cluster_.get());
    } else {
      fs_ = std::make_unique<dfs::SingleNameNodeFs>();
    }
    ASSERT_TRUE(fs_->Mkdir("/data").ok());
    ASSERT_TRUE(fs_->Mkdir("/data/sub").ok());
    ASSERT_TRUE(fs_->Create("/data/a", 3, "aaa").ok());
    ASSERT_TRUE(fs_->Create("/data/sub/b", 5, "bbbbb").ok());
  }

  std::unique_ptr<dfs::HopsFsCluster> cluster_;
  std::unique_ptr<dfs::FileSystem> fs_;
};

TEST_P(FsOpsTest, RenameFile) {
  ASSERT_TRUE(fs_->Rename("/data/a", "/data/renamed").ok());
  EXPECT_TRUE(fs_->GetFileInfo("/data/a").status().IsNotFound());
  auto read = fs_->ReadFile("/data/renamed");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "aaa");
}

TEST_P(FsOpsTest, RenameMovesSubtree) {
  ASSERT_TRUE(fs_->Mkdir("/elsewhere").ok());
  ASSERT_TRUE(fs_->Rename("/data/sub", "/elsewhere/moved").ok());
  auto read = fs_->ReadFile("/elsewhere/moved/b");
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_EQ(*read, "bbbbb");
  EXPECT_TRUE(fs_->GetFileInfo("/data/sub").status().IsNotFound());
}

TEST_P(FsOpsTest, RenameErrors) {
  EXPECT_TRUE(fs_->Rename("/missing", "/x").IsNotFound());
  EXPECT_TRUE(fs_->Rename("/data/a", "/data/sub/b").IsAlreadyExists());
  // Directory into itself.
  EXPECT_FALSE(fs_->Rename("/data", "/data/sub/inner").ok());
}

TEST_P(FsOpsTest, RemoveRecursive) {
  ASSERT_TRUE(fs_->RemoveRecursive("/data").ok());
  EXPECT_TRUE(fs_->GetFileInfo("/data").status().IsNotFound());
  EXPECT_TRUE(fs_->GetFileInfo("/data/sub/b").status().IsNotFound());
  EXPECT_TRUE(fs_->RemoveRecursive("/data").IsNotFound());
}

TEST_P(FsOpsTest, RemoveRecursiveOnFile) {
  ASSERT_TRUE(fs_->RemoveRecursive("/data/a").ok());
  EXPECT_TRUE(fs_->GetFileInfo("/data/a").status().IsNotFound());
  // The rest survives.
  EXPECT_TRUE(fs_->ReadFile("/data/sub/b").ok());
}

TEST_P(FsOpsTest, DiskUsage) {
  auto du = fs_->DiskUsage("/data");
  ASSERT_TRUE(du.ok());
  EXPECT_EQ(*du, 8u);  // 3 + 5
  auto file_du = fs_->DiskUsage("/data/sub/b");
  ASSERT_TRUE(file_du.ok());
  EXPECT_EQ(*file_du, 5u);
  ASSERT_TRUE(fs_->Mkdir("/empty").ok());
  EXPECT_EQ(*fs_->DiskUsage("/empty"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Implementations, FsOpsTest,
                         testing::Values("hopsfs", "single"),
                         [](const testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

TEST(HopsFsRowsTest, RemoveRecursiveCleansAllRows) {
  dfs::HopsFsCluster::Options opt;
  opt.kv_partitions = 4;
  opt.inline_threshold_bytes = 2;
  opt.block_size_bytes = 2;
  dfs::HopsFsCluster cluster(opt);
  dfs::HopsFsNameNode nn(&cluster);
  const size_t base_rows = cluster.store().Size();
  ASSERT_TRUE(nn.Mkdir("/t").ok());
  ASSERT_TRUE(nn.Mkdir("/t/d").ok());
  ASSERT_TRUE(nn.Create("/t/d/big", 6, "xxxxxx").ok());  // 3 block rows
  ASSERT_TRUE(nn.RemoveRecursive("/t").ok());
  EXPECT_EQ(cluster.store().Size(), base_rows);
}

// --- Ridge fraction -----------------------------------------------------

TEST(RidgeTest, InjectedRidgesRaiseFraction) {
  raster::ClassMap ice(64, 64);
  ice.Fill(static_cast<uint8_t>(raster::IceClass::kFirstYearIce));
  raster::SentinelSimulator::Options opt;
  opt.pixel_size = 40.0;
  raster::SentinelSimulator sim(opt, 31);
  auto smooth = sim.SimulateS1Ice(ice, 60);
  auto ridged = smooth;  // copy, then deform
  int64_t painted = polar::InjectRidges(&ridged, ice, 6, 8.0, 32);
  ASSERT_GT(painted, 50);
  auto f_smooth = polar::RidgeFraction(ice, smooth, 16);
  auto f_ridged = polar::RidgeFraction(ice, ridged, 16);
  ASSERT_TRUE(f_smooth.ok() && f_ridged.ok());
  EXPECT_GT(f_ridged->ComputeStats(0).mean,
            f_smooth->ComputeStats(0).mean * 1.5);
}

TEST(RidgeTest, OpenWaterCellsAreZero) {
  raster::ClassMap water(32, 32);
  water.Fill(static_cast<uint8_t>(raster::IceClass::kOpenWater));
  raster::SentinelSimulator sim({}, 33);
  auto scene = sim.SimulateS1Ice(water, 60);
  auto f = polar::RidgeFraction(water, scene, 8);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f->ComputeStats(0).max, 0.0f);
}

TEST(RidgeTest, Validation) {
  raster::ClassMap ice(32, 32);
  raster::SentinelSimulator sim({}, 34);
  auto scene = sim.SimulateS1Ice(ice, 60);
  EXPECT_FALSE(polar::RidgeFraction(ice, scene, 5).ok());   // 32 % 5 != 0
  raster::ClassMap wrong(16, 16);
  EXPECT_FALSE(polar::RidgeFraction(wrong, scene, 8).ok());
}

// --- Autoscaling ----------------------------------------------------------

TEST(AutoscaleTest, ElasticBeatsMinimalFixedOnLatency) {
  platform::AutoscaleOptions elastic;
  elastic.min_nodes = 1;
  elastic.max_nodes = 32;
  elastic.seed = 5;
  auto e = platform::SimulateAutoscaling(elastic);
  ASSERT_TRUE(e.ok()) << e.status();

  platform::AutoscaleOptions fixed_small = elastic;
  fixed_small.max_nodes = fixed_small.min_nodes = 2;  // under-provisioned
  auto f = platform::SimulateAutoscaling(fixed_small);
  ASSERT_TRUE(f.ok());

  EXPECT_EQ(e->scenes_processed, f->scenes_processed);
  EXPECT_LT(e->mean_latency_hours, f->mean_latency_hours / 2);
}

TEST(AutoscaleTest, ElasticCheaperThanPeakFixed) {
  platform::AutoscaleOptions elastic;
  elastic.min_nodes = 1;
  elastic.max_nodes = 32;
  elastic.seed = 7;
  auto e = platform::SimulateAutoscaling(elastic);
  ASSERT_TRUE(e.ok());
  // Fixed provisioning at the elastic run's peak: same latency class but
  // pays for the peak around the clock.
  platform::AutoscaleOptions fixed_peak = elastic;
  fixed_peak.min_nodes = fixed_peak.max_nodes = std::max(1, e->peak_nodes);
  auto f = platform::SimulateAutoscaling(fixed_peak);
  ASSERT_TRUE(f.ok());
  EXPECT_LT(e->node_hours_used, f->node_hours_used);
}

TEST(AutoscaleTest, ProcessesEverythingAndScalesWithinBounds) {
  platform::AutoscaleOptions opt;
  opt.min_nodes = 2;
  opt.max_nodes = 8;
  opt.horizon_hours = 24;
  opt.seed = 9;
  auto r = platform::SimulateAutoscaling(opt);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->scenes_processed, 100u);
  EXPECT_GE(r->peak_nodes, 2);
  EXPECT_LE(r->peak_nodes, 8);
  EXPECT_GT(r->mean_latency_hours, 0.0);
  EXPECT_GT(r->node_hours_used, 0.0);
}

TEST(AutoscaleTest, Validation) {
  platform::AutoscaleOptions bad;
  bad.min_nodes = 4;
  bad.max_nodes = 2;
  EXPECT_FALSE(platform::SimulateAutoscaling(bad).ok());
  platform::AutoscaleOptions zero;
  zero.scenes_per_hour = 0;
  EXPECT_FALSE(platform::SimulateAutoscaling(zero).ok());
}

// --- Spatial join ------------------------------------------------------------

TEST(SpatialJoinTest, FieldsIntersectingRivers) {
  strabon::GeoStore store;
  const char* field_cls = "http://x/ontology#Field";
  const char* river_cls = "http://x/ontology#River";
  // Fields: unit squares along the x axis. River: a long thin rectangle
  // crossing fields 2..4.
  for (int i = 0; i < 8; ++i) {
    std::string iri = common::StrFormat("http://x/field/%d", i);
    auto poly = geo::ParseWkt(common::StrFormat(
        "POLYGON ((%d 0, %d 0, %d 1, %d 1, %d 0))", i * 2, i * 2 + 1,
        i * 2 + 1, i * 2, i * 2));
    ASSERT_TRUE(poly.ok());
    store.AddFeature(iri, *poly);
    store.triples().Add(rdf::Term::Iri(iri),
                        rdf::Term::Iri(rdf::vocab::kRdfType),
                        rdf::Term::Iri(field_cls));
  }
  auto river = geo::ParseWkt(
      "POLYGON ((3.5 -1, 9.5 -1, 9.5 2, 3.5 2, 3.5 -1))");
  ASSERT_TRUE(river.ok());
  store.AddFeature("http://x/river/0", *river);
  store.triples().Add(rdf::Term::Iri("http://x/river/0"),
                      rdf::Term::Iri(rdf::vocab::kRdfType),
                      rdf::Term::Iri(river_cls));
  ASSERT_TRUE(store.Build().ok());

  auto indexed = *store.SpatialJoin(field_cls, river_cls,
                                    strabon::SpatialRelation::kIntersects,
                                    true);
  auto nested = *store.SpatialJoin(field_cls, river_cls,
                                   strabon::SpatialRelation::kIntersects,
                                   false);
  EXPECT_EQ(indexed, nested);
  // Fields 2, 3, 4 overlap the river's x-range [3.5, 9.5]:
  // field i covers [2i, 2i+1] -> i=2 [4,5], i=3 [6,7], i=4 [8,9].
  ASSERT_EQ(indexed.size(), 3u);
  std::set<std::string> names;
  for (auto& [a, b] : indexed) {
    names.insert(store.triples().dict().Decode(a).value);
    EXPECT_EQ(store.triples().dict().Decode(b).value, "http://x/river/0");
  }
  EXPECT_TRUE(names.count("http://x/field/2"));
  EXPECT_TRUE(names.count("http://x/field/3"));
  EXPECT_TRUE(names.count("http://x/field/4"));
}

TEST(SpatialJoinTest, ContainsAndWithin) {
  strabon::GeoStore store;
  auto big = geo::ParseWkt("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))");
  auto small = geo::ParseWkt("POLYGON ((2 2, 3 2, 3 3, 2 3, 2 2))");
  ASSERT_TRUE(big.ok() && small.ok());
  store.AddFeature("http://x/region", *big);
  store.triples().Add(rdf::Term::Iri("http://x/region"),
                      rdf::Term::Iri(rdf::vocab::kRdfType),
                      rdf::Term::Iri("http://x/Region"));
  store.AddFeature("http://x/parcel", *small);
  store.triples().Add(rdf::Term::Iri("http://x/parcel"),
                      rdf::Term::Iri(rdf::vocab::kRdfType),
                      rdf::Term::Iri("http://x/Parcel"));
  ASSERT_TRUE(store.Build().ok());
  auto contains = *store.SpatialJoin("http://x/Region", "http://x/Parcel",
                                     strabon::SpatialRelation::kContains,
                                     true);
  ASSERT_EQ(contains.size(), 1u);
  auto within = *store.SpatialJoin("http://x/Parcel", "http://x/Region",
                                   strabon::SpatialRelation::kWithin, true);
  ASSERT_EQ(within.size(), 1u);
  // Unknown classes: empty.
  EXPECT_TRUE(store
                  .SpatialJoin("http://x/Nope", "http://x/Region",
                               strabon::SpatialRelation::kIntersects, true)
                  ->empty());
}

}  // namespace
}  // namespace exearth
