file(REMOVE_RECURSE
  "libeea_kv.a"
)
