# Empty compiler generated dependencies file for bench_e1_spatial_selection.
# This may be replaced when dependencies are built.
