#include "sim/cluster.h"

#include <cmath>

#include "common/logging.h"

namespace exearth::sim {

Cluster::Cluster(int num_nodes, NodeSpec node, NetworkSpec network)
    : num_nodes_(num_nodes), node_(node), network_(network) {
  EEA_CHECK(num_nodes >= 1);
  EEA_CHECK(node.gpus >= 1);
  EEA_CHECK(node.gpu.flops > 0);
  EEA_CHECK(network.latency_s >= 0);
  EEA_CHECK(network.bandwidth_bytes_s > 0);
}

double Cluster::PointToPointTime(uint64_t bytes) const {
  return network_.latency_s +
         static_cast<double>(bytes) / network_.bandwidth_bytes_s;
}

double Cluster::RingAllReduceTime(uint64_t bytes, int participants) const {
  EEA_CHECK(participants >= 1);
  if (participants == 1) return 0.0;
  const double p = participants;
  const double n = static_cast<double>(bytes);
  // Reduce-scatter + all-gather: 2(p-1) steps, each moving n/p per link.
  return 2.0 * (p - 1.0) * network_.latency_s +
         2.0 * n * (p - 1.0) / (p * network_.bandwidth_bytes_s);
}

double Cluster::ParameterServerTime(uint64_t bytes, int workers,
                                    int servers) const {
  EEA_CHECK(workers >= 1);
  EEA_CHECK(servers >= 1);
  if (workers == 1 && servers >= 1) {
    // Single worker still pays push + pull.
    return 2.0 * PointToPointTime(bytes);
  }
  // Each server shard holds bytes/servers of the model and receives that
  // much from every worker (push) and sends it back (pull). The server link
  // serializes the w transfers.
  const double shard = static_cast<double>(bytes) / servers;
  const double push =
      network_.latency_s + workers * shard / network_.bandwidth_bytes_s;
  const double pull =
      network_.latency_s + workers * shard / network_.bandwidth_bytes_s;
  return push + pull;
}

double Cluster::BroadcastTime(uint64_t bytes, int participants) const {
  EEA_CHECK(participants >= 1);
  if (participants == 1) return 0.0;
  const double rounds = std::ceil(std::log2(static_cast<double>(participants)));
  return rounds * PointToPointTime(bytes);
}

double Cluster::GpuComputeTime(double flops) const {
  return flops / node_.gpu.flops;
}

}  // namespace exearth::sim
