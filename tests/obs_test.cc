// Observability-layer acceptance tests (obs:: + the serving hooks):
//
//   * Prometheus exposition: sanitized names, escaped label values,
//     cumulative histogram buckets, and a post-mangling name collision
//     dropping the later family instead of emitting a duplicate;
//   * hostile metric names cannot break either exporter (registry ToJson
//     stays parseable ASCII, /metrics stays legal exposition);
//   * WindowedSampler under an injected clock: exact window rates,
//     warm-up baselines, windowed percentiles — no sleeps anywhere;
//   * SloTracker burn-rate arithmetic on a virtual timeline, including
//     window expiry;
//   * SlowQueryLog keeps exactly the worst-N under concurrent inserts;
//   * HttpServer over real loopback sockets: routing, query decoding,
//     HEAD, 404/405/400, graceful Stop;
//   * AdminServer end to end: /healthz flips 200 -> 503 when a probe
//     (e.g. the broker after BeginShutdown) starts failing, /tenantz
//     lists registered tenants, /metrics carries the SLO burn family.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/query_profile.h"
#include "common/trace.h"
#include "common/windowed.h"
#include "geo/geometry.h"
#include "obs/admin.h"
#include "obs/http.h"
#include "obs/prometheus.h"
#include "serve/admin_hooks.h"
#include "serve/broker.h"
#include "serve/slo.h"
#include "strabon/geostore.h"

namespace {

namespace eea = exearth;
using eea::common::MetricsRegistry;
using eea::common::WindowedOptions;
using eea::common::WindowedSampler;
using eea::obs::AdminServer;
using eea::obs::AdminServerOptions;
using eea::obs::HttpRequest;
using eea::obs::HttpResponse;
using eea::obs::HttpServer;
using eea::obs::HttpServerOptions;

// --- raw HTTP client --------------------------------------------------------

// Sends `raw` to 127.0.0.1:port and returns everything until the server
// closes (the server speaks Connection: close, so EOF ends the
// response).
std::string RawRequest(uint16_t port, const std::string& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return out;
}

std::string Get(uint16_t port, const std::string& path) {
  return RawRequest(port, "GET " + path + " HTTP/1.1\r\nHost: x\r\n\r\n");
}

int StatusOf(const std::string& response) {
  // "HTTP/1.1 NNN ..."
  if (response.size() < 12) return -1;
  return std::atoi(response.c_str() + 9);
}

std::string BodyOf(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

// --- Prometheus exposition --------------------------------------------------

TEST(Prometheus, SanitizeMetricName) {
  EXPECT_EQ(eea::obs::SanitizeMetricName("serve.cache.hits"),
            "serve_cache_hits");
  EXPECT_EQ(eea::obs::SanitizeMetricName("ok_name:sub"), "ok_name:sub");
  EXPECT_EQ(eea::obs::SanitizeMetricName("9lives"), "_9lives");
  EXPECT_EQ(eea::obs::SanitizeMetricName(""), "_");
  EXPECT_EQ(eea::obs::SanitizeMetricName("a{b} c\"d\ne"), "a_b__c_d_e");
}

TEST(Prometheus, SanitizeLabelName) {
  // ':' is legal in metric names but not label names.
  EXPECT_EQ(eea::obs::SanitizeLabelName("a:b"), "a_b");
  EXPECT_EQ(eea::obs::SanitizeLabelName("tenant"), "tenant");
}

TEST(Prometheus, EscapeLabelValue) {
  EXPECT_EQ(eea::obs::EscapeLabelValue("a\"b\\c\nd"),
            "a\\\"b\\\\c\\nd");
  EXPECT_EQ(eea::obs::EscapeLabelValue("plain"), "plain");
}

TEST(Prometheus, RenderCumulativeHistogram) {
  MetricsRegistry reg;
  reg.GetCounter("req.total")->Increment(3);
  reg.GetGauge("queue.depth")->Set(2.5);
  auto* h = reg.GetHistogram("lat.us", {1.0, 10.0, 100.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(50.0);
  h->Observe(5000.0);
  const std::string text = eea::obs::RenderPrometheus(reg);

  EXPECT_NE(text.find("# TYPE req_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("req_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_us histogram\n"), std::string::npos);
  // Buckets are cumulative (each le includes everything below), the +Inf
  // bucket equals _count.
  EXPECT_NE(text.find("lat_us_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"10\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"100\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_count 4\n"), std::string::npos);
  EXPECT_NE(text.find("lat_us_sum "), std::string::npos);
}

TEST(Prometheus, HostileNamesAndCollisions) {
  MetricsRegistry reg;
  // Both mangle to "a_b": the later family (registry order is sorted, so
  // "a.b" < "a_b") is dropped with a comment, not emitted twice.
  reg.GetCounter("a.b")->Increment(1);
  reg.GetCounter("a_b")->Increment(2);
  // A thoroughly hostile registration must not corrupt the exposition.
  reg.GetCounter("evil\"name\nwith spaces{}")->Increment(7);
  const std::string text = eea::obs::RenderPrometheus(reg);

  size_t count = 0;
  for (size_t pos = 0;
       (pos = text.find("# TYPE a_b counter", pos)) != std::string::npos;
       ++pos) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
  EXPECT_NE(text.find("collides"), std::string::npos);
  EXPECT_NE(text.find("evil_name_with_spaces__ 7\n"), std::string::npos);
  // Every non-comment line is "name[{labels}] value" with a legal name.
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.empty() || line[0] == '#') continue;
    const char c = line[0];
    EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                c == '_' || c == ':')
        << "bad exposition line: " << line;
  }
}

TEST(Prometheus, RegistryToJsonSurvivesHostileNames) {
  MetricsRegistry reg;
  reg.GetCounter(std::string("evil\"name\x01\n\\") + "\xff")->Increment(1);
  const std::string json = reg.ToJson();
  // Raw control bytes / quotes / backslashes must not reach the
  // document; everything is escaped to plain ASCII.
  EXPECT_EQ(json.find('\x01'), std::string::npos);
  EXPECT_EQ(json.find('\xff'), std::string::npos);
  EXPECT_NE(json.find("\\u0001"), std::string::npos);
  EXPECT_NE(json.find("\\u00ff"), std::string::npos);
  EXPECT_NE(json.find("\\\"name"), std::string::npos);
}

// --- windowed sampler (fake clock, no sleeps) -------------------------------

constexpr int64_t kSec = 1'000'000;

TEST(Windowed, ExactRateOnceWindowIsCovered) {
  MetricsRegistry reg;
  WindowedOptions opt;
  opt.sample_period_us = kSec;
  opt.windows_us = {10 * kSec, 60 * kSec};
  WindowedSampler sampler(&reg, opt);
  auto* c = reg.GetCounter("reqs");
  for (int t = 0; t <= 20; ++t) {
    sampler.SampleOnce(t * kSec);
    c->Increment(100);  // 100 events between consecutive samples
  }
  // Ring covers > 10s: the baseline sits exactly 10 samples back.
  EXPECT_DOUBLE_EQ(sampler.Rate("reqs", 10 * kSec), 100.0);
  EXPECT_DOUBLE_EQ(sampler.Rate("unknown.counter", 10 * kSec), 0.0);
}

TEST(Windowed, WarmupUsesOldestSampleAsBaseline) {
  MetricsRegistry reg;
  WindowedOptions opt;
  opt.sample_period_us = kSec;
  opt.windows_us = {10 * kSec};
  WindowedSampler sampler(&reg, opt);
  auto* c = reg.GetCounter("reqs");
  sampler.SampleOnce(0);
  EXPECT_DOUBLE_EQ(sampler.Rate("reqs", 10 * kSec), 0.0);  // 1 sample
  c->Increment(50);
  sampler.SampleOnce(1 * kSec);
  // Only 1s of the 10s window exists yet; the oldest sample is the
  // approximate baseline, so the rate reflects the covered second. The
  // derived gauge must be published from the second sample on (a fresh
  // process must not wait a full window to report rates).
  EXPECT_DOUBLE_EQ(sampler.Rate("reqs", 10 * kSec), 50.0);
  EXPECT_DOUBLE_EQ(reg.GetGauge("reqs.rate10s")->value(), 50.0);
}

TEST(Windowed, NonIncreasingTimestampsIgnored) {
  MetricsRegistry reg;
  WindowedOptions opt;
  opt.sample_period_us = kSec;
  WindowedSampler sampler(&reg, opt);
  sampler.SampleOnce(5 * kSec);
  sampler.SampleOnce(5 * kSec);
  sampler.SampleOnce(3 * kSec);
  EXPECT_EQ(sampler.num_samples(), 1u);
}

TEST(Windowed, HistogramWindowPercentilesAreSliding) {
  MetricsRegistry reg;
  WindowedOptions opt;
  opt.sample_period_us = kSec;
  opt.windows_us = {2 * kSec};
  WindowedSampler sampler(&reg, opt);
  auto* h = reg.GetHistogram("lat", {10.0, 100.0, 1000.0});
  // Seconds 0-1: slow traffic. Seconds 2-4: fast traffic only.
  sampler.SampleOnce(0);
  for (int i = 0; i < 100; ++i) h->Observe(500.0);
  sampler.SampleOnce(1 * kSec);
  sampler.SampleOnce(2 * kSec);
  for (int i = 0; i < 100; ++i) h->Observe(5.0);
  sampler.SampleOnce(3 * kSec);
  sampler.SampleOnce(4 * kSec);
  WindowedSampler::WindowView view;
  ASSERT_TRUE(sampler.HistogramWindow("lat", 2 * kSec, &view));
  // The trailing 2s contain only the fast observations — a lifetime
  // histogram would still be dominated by the slow burst.
  EXPECT_EQ(view.count, 100u);
  EXPECT_DOUBLE_EQ(view.rate, 50.0);
  EXPECT_LE(view.p99, 10.0);
}

TEST(Windowed, DerivedGaugeNamePredicate) {
  EXPECT_TRUE(WindowedSampler::IsDerivedGaugeName("reqs.rate10s"));
  EXPECT_TRUE(WindowedSampler::IsDerivedGaugeName("a.b.lat.p99_1m"));
  EXPECT_TRUE(WindowedSampler::IsDerivedGaugeName("x.p50_90s"));
  EXPECT_FALSE(WindowedSampler::IsDerivedGaugeName("reqs.rate"));
  EXPECT_FALSE(WindowedSampler::IsDerivedGaugeName("rate10s"));
  EXPECT_FALSE(WindowedSampler::IsDerivedGaugeName("x.rate10x"));
  EXPECT_FALSE(WindowedSampler::IsDerivedGaugeName("serve.cache.hits"));
}

// --- SLO tracker ------------------------------------------------------------

TEST(Slo, BurnRatesOnVirtualTimeline) {
  eea::serve::SloTarget target;
  target.availability = 0.99;           // 1% error budget
  target.latency_threshold_us = 1000.0;
  target.latency_goal = 0.9;            // 10% slow budget
  target.window_us = 10 * kSec;
  eea::serve::SloTracker slo(target);
  for (int i = 0; i < 100; ++i) {
    const bool ok = i >= 2;                    // 2 errors
    const double lat = i < 22 ? 2000.0 : 10.0;  // 20 ok-but-slow
    slo.Record("t", ok, lat, 1 * kSec);
  }
  const auto burns = slo.Evaluate(2 * kSec);
  ASSERT_EQ(burns.size(), 1u);
  EXPECT_EQ(burns[0].tenant, "t");
  EXPECT_EQ(burns[0].total, 100u);
  EXPECT_EQ(burns[0].errors, 2u);
  EXPECT_EQ(burns[0].slow, 20u);
  // 2% errors against a 1% budget; 20% slow against a 10% budget.
  EXPECT_NEAR(burns[0].availability_burn, 2.0, 1e-9);
  EXPECT_NEAR(burns[0].latency_burn, 2.0, 1e-9);

  // The same traffic evaluated past the window has burned nothing.
  const auto later = slo.Evaluate(30 * kSec);
  ASSERT_EQ(later.size(), 1u);
  EXPECT_EQ(later[0].total, 0u);
  EXPECT_DOUBLE_EQ(later[0].availability_burn, 0.0);
}

TEST(Slo, PrometheusFamilyEscapesTenantNames) {
  eea::serve::SloTracker slo;
  slo.Record("ten\"ant", true, 1.0, 0);
  const std::string text = slo.PrometheusText(1);
  EXPECT_NE(text.find("# TYPE serve_slo_burn_rate gauge"),
            std::string::npos);
  EXPECT_NE(text.find("serve_slo_burn_rate{tenant=\"ten\\\"ant\","
                      "slo=\"availability\"}"),
            std::string::npos);
}

// --- slow-query log under concurrency ---------------------------------------

TEST(SlowQueryLogConcurrency, KeepsExactlyTheWorstN) {
  eea::common::SlowQueryLog log;
  log.Configure(32, 0.0);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 250;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        eea::common::QueryProfile p;
        p.query = "q";
        p.trace_id = static_cast<uint64_t>(t * kPerThread + i);
        // Unique totals so "the worst 32" is a well-defined set.
        p.total_us = static_cast<double>(t * kPerThread + i);
        log.Record(std::move(p));
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto snap = log.Snapshot();
  ASSERT_EQ(snap.size(), 32u);
  const double kTotal = kThreads * kPerThread;
  for (size_t i = 0; i < snap.size(); ++i) {
    // Worst first, descending, and exactly the global top 32.
    EXPECT_DOUBLE_EQ(snap[i].total_us, kTotal - 1.0 - static_cast<double>(i));
  }
}

// --- HTTP server ------------------------------------------------------------

class HttpServerTest : public ::testing::Test {
 protected:
  void StartServer() {
    server_ = std::make_unique<HttpServer>(HttpServerOptions{});
    server_->Handle("/hello", [](const HttpRequest& req) {
      HttpResponse resp;
      resp.body = "hi " + req.QueryOr("name", "world");
      return resp;
    });
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_TRUE(server_->running());
    ASSERT_GT(server_->port(), 0);
  }
  std::unique_ptr<HttpServer> server_;
};

TEST_F(HttpServerTest, RoutesAndDecodesQuery) {
  StartServer();
  const std::string ok = Get(server_->port(), "/hello");
  EXPECT_EQ(StatusOf(ok), 200);
  EXPECT_EQ(BodyOf(ok), "hi world");
  // %XX and '+' decode in query values.
  const std::string q = Get(server_->port(), "/hello?name=a%20b+c");
  EXPECT_EQ(BodyOf(q), "hi a b c");
}

TEST_F(HttpServerTest, ErrorPaths) {
  StartServer();
  EXPECT_EQ(StatusOf(Get(server_->port(), "/nope")), 404);
  EXPECT_EQ(StatusOf(RawRequest(server_->port(),
                                "POST /hello HTTP/1.1\r\n\r\n")),
            405);
  EXPECT_EQ(StatusOf(RawRequest(server_->port(), "garbage\r\n\r\n")), 400);
}

TEST_F(HttpServerTest, HeadOmitsBodyButKeepsLength) {
  StartServer();
  const std::string head = RawRequest(
      server_->port(), "HEAD /hello HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(StatusOf(head), 200);
  EXPECT_NE(head.find("Content-Length: 8"), std::string::npos);
  EXPECT_EQ(BodyOf(head), "");
}

TEST_F(HttpServerTest, StopIsGracefulAndIdempotent) {
  StartServer();
  const uint16_t port = server_->port();
  EXPECT_EQ(StatusOf(Get(port, "/hello")), 200);
  server_->Stop();
  EXPECT_FALSE(server_->running());
  server_->Stop();  // second call is a no-op
}

// --- admin server -----------------------------------------------------------

TEST(AdminServer, HealthzFlipsWhenProbeFails) {
  std::atomic<bool> healthy{true};
  AdminServer admin;
  admin.AddReadinessProbe("flippable", [&healthy] {
    return healthy.load() ? eea::common::Status::OK()
                          : eea::common::Status::Unavailable("draining");
  });
  ASSERT_TRUE(admin.Start().ok());
  const std::string up = Get(admin.port(), "/healthz");
  EXPECT_EQ(StatusOf(up), 200);
  EXPECT_NE(BodyOf(up).find("ok"), std::string::npos);
  healthy.store(false);
  const std::string down = Get(admin.port(), "/healthz");
  EXPECT_EQ(StatusOf(down), 503);
  EXPECT_NE(BodyOf(down).find("flippable"), std::string::npos);
  admin.Stop();
}

TEST(AdminServer, CoreEndpointsServe) {
  AdminServer admin;
  admin.AddStatusLine("custom.line", [] { return std::string("42"); });
  ASSERT_TRUE(admin.Start().ok());
  const uint16_t port = admin.port();
  EXPECT_NE(BodyOf(Get(port, "/")).find("/metrics"), std::string::npos);
  const std::string metrics = Get(port, "/metrics");
  EXPECT_EQ(StatusOf(metrics), 200);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(BodyOf(metrics).find("# TYPE"), std::string::npos);
  const std::string statusz = BodyOf(Get(port, "/statusz"));
  EXPECT_NE(statusz.find("uptime"), std::string::npos);
  EXPECT_NE(statusz.find("custom.line:"), std::string::npos);
  EXPECT_NE(statusz.find("42"), std::string::npos);
  EXPECT_EQ(StatusOf(Get(port, "/slowqueryz")), 200);
  EXPECT_EQ(StatusOf(Get(port, "/tracez")), 200);
  // trace_id validation only applies when the recorder is on (a disabled
  // recorder short-circuits with a hint instead).
  eea::common::EventRecorder::Default().set_enabled(true);
  EXPECT_EQ(StatusOf(Get(port, "/tracez?trace_id=bogus")), 400);
  eea::common::EventRecorder::Default().set_enabled(false);
  admin.Stop();
}

TEST(AdminServer, ServeHooksWireTenantzAndBrokerProbe) {
  eea::strabon::GeoStore store;
  for (int i = 0; i < 16; ++i) {
    store.AddFeature("http://x/p" + std::to_string(i),
                     eea::geo::Geometry(
                         eea::geo::Point{static_cast<double>(i), 0.0}));
  }
  ASSERT_TRUE(store.Build().ok());
  eea::serve::QueryBroker broker;
  broker.set_store(&store);
  eea::serve::TenantOptions topt;
  topt.quota_rps = 1e9;
  topt.quota_burst = 1e6;
  const auto alpha = broker.RegisterTenant("alpha", topt);
  eea::serve::SloTracker slo;
  broker.set_slo_tracker(&slo);
  std::vector<eea::serve::Offered> wave;
  wave.push_back({alpha, eea::serve::Request::SpatialSelect(
                             eea::geo::Box{0.0, -1.0, 20.0, 1.0})});
  const auto responses = broker.ExecuteWave(wave, kSec);
  ASSERT_EQ(responses.size(), 1u);
  ASSERT_TRUE(responses[0].status.ok());

  AdminServer admin;
  eea::serve::RegisterServeAdminHooks(&admin, &broker, &slo,
                                      [] { return 2 * kSec; });
  ASSERT_TRUE(admin.Start().ok());
  const uint16_t port = admin.port();

  const std::string tenantz = BodyOf(Get(port, "/tenantz"));
  EXPECT_NE(tenantz.find("alpha"), std::string::npos);
  const std::string metrics = BodyOf(Get(port, "/metrics"));
  EXPECT_NE(metrics.find("serve_slo_burn_rate{tenant=\"alpha\""),
            std::string::npos);
  EXPECT_EQ(StatusOf(Get(port, "/healthz")), 200);

  // Draining: the broker readiness probe must flip /healthz to 503 so a
  // load balancer stops sending traffic before the process exits.
  broker.BeginShutdown();
  const std::string draining = Get(port, "/healthz");
  EXPECT_EQ(StatusOf(draining), 503);
  EXPECT_NE(draining.find("serve.broker"), std::string::npos);
  admin.Stop();
}

}  // namespace
