# Empty dependencies file for eea_fed.
# This may be replaced when dependencies are built.
