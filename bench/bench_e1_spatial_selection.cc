// E1 — Strabon-style rectangular spatial selections over point datasets
// (paper §1): the paper claims Strabon answers rectangle selections over
// point data "in a few seconds" up to ~100 GB and that competitors
// (GraphDB) behave similarly, with both degrading beyond that. The
// mechanism is index pushdown vs scan: this bench sweeps dataset size x
// {indexed, full-scan} at fixed 0.1% selectivity.
//
// Expected shape: indexed latency grows ~logarithmically (stays
// interactive), the scan baseline grows linearly with dataset size.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_flags.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "strabon/workload.h"

namespace {

using exearth::common::Rng;
using exearth::strabon::GeoStore;
using exearth::strabon::GeoWorkloadOptions;
using exearth::strabon::RandomSelectionBox;
using exearth::strabon::SpatialRelation;

// Stores are expensive to build; cache them across benchmark runs.
GeoStore& CachedPointStore(int64_t num_features) {
  static std::map<int64_t, std::unique_ptr<GeoStore>>* cache =
      new std::map<int64_t, std::unique_ptr<GeoStore>>();
  auto it = cache->find(num_features);
  if (it == cache->end()) {
    GeoWorkloadOptions opt;
    opt.num_features = num_features;
    opt.kind = GeoWorkloadOptions::GeometryKind::kPoint;
    opt.with_thematic = false;
    opt.seed = 11;
    it = cache
             ->emplace(num_features,
                       std::make_unique<GeoStore>(
                           exearth::strabon::MakeGeoWorkload(opt)))
             .first;
  }
  return *it->second;
}

void BM_SpatialSelection(benchmark::State& state) {
  const int64_t num_features = state.range(0);
  const bool use_index = state.range(1) != 0;
  const int threads =
      exearth::bench::EffectiveThreads(static_cast<int>(state.range(2)));
  GeoStore& store = CachedPointStore(num_features);
  store.set_num_threads(static_cast<size_t>(threads));
  Rng rng(99);
  uint64_t results = 0;
  uint64_t tests = 0;
  uint64_t queries = 0;
  exearth::strabon::SpatialQueryStats stats;
  for (auto _ : state) {
    auto box = RandomSelectionBox(100000.0, 0.001, &rng);
    auto hits = *store.SpatialSelect(box, SpatialRelation::kIntersects,
                                     use_index, &stats);
    benchmark::DoNotOptimize(hits);
    results += hits.size();
    tests += stats.geometry_tests;
    ++queries;
  }
  store.set_num_threads(1);
  state.counters["features"] = static_cast<double>(num_features);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["mean_results"] =
      static_cast<double>(results) / static_cast<double>(queries);
  state.counters["geom_tests_per_query"] =
      static_cast<double>(tests) / static_cast<double>(queries);
}

// Deterministic result fingerprint for the cross-variant SIMD gate: a
// FIXED set of 32 seeded selections (cycling the three relations) over
// the 100k point store, hashed in sorted-result order and exported as
// gauge bench.e1.result_hash. CI runs this under --simd=scalar and
// --simd=avx2 and asserts the gauges are identical — the "byte-identical
// kernels" claim, checked on every push. One fixed iteration, so the
// hash never depends on benchmark timing.
void BM_SpatialSelectionResultHash(benchmark::State& state) {
  GeoStore& store = CachedPointStore(100000);
  store.set_num_threads(1);
  uint64_t hash = 0;
  for (auto _ : state) {
    hash = 0xcbf29ce484222325ULL;
    Rng rng(1234);
    for (int q = 0; q < 32; ++q) {
      auto box = RandomSelectionBox(100000.0, 0.005, &rng);
      const auto relation = static_cast<SpatialRelation>(q % 3);
      auto hits = *store.SpatialSelect(box, relation, /*use_index=*/true);
      for (uint64_t id : hits) {
        hash ^= id;
        hash *= 0x100000001b3ULL;
      }
    }
    benchmark::DoNotOptimize(hash);
  }
  // Mask to 32 bits: gauges are doubles, and 52 mantissa bits would
  // silently round a full 64-bit hash.
  exearth::common::MetricsRegistry::Default()
      .GetGauge("bench.e1.result_hash")
      ->Set(static_cast<double>(hash & 0xffffffffULL));
}

}  // namespace

BENCHMARK(BM_SpatialSelectionResultHash)->Iterations(1);

BENCHMARK(BM_SpatialSelection)
    ->ArgNames({"features", "indexed", "threads"})
    ->Args({10000, 1, 1})
    ->Args({10000, 0, 1})
    ->Args({30000, 1, 1})
    ->Args({30000, 0, 1})
    ->Args({100000, 1, 1})
    ->Args({100000, 0, 1})
    ->Args({100000, 0, 4})
    ->Args({300000, 1, 1})
    ->Args({300000, 1, 4})
    ->Args({300000, 0, 1})
    ->Args({300000, 0, 4})
    ->Unit(benchmark::kMicrosecond);

// main() comes from bench_main.cc (adds --smoke and the
// metrics-snapshot JSON dump).
