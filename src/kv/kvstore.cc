#include "kv/kvstore.h"

#include <algorithm>

#include "common/logging.h"
#include "common/string_util.h"

namespace exearth::kv {

using common::Result;
using common::Status;

// --- Transaction -----------------------------------------------------------

Transaction::~Transaction() {
  if (!finished_) Abort();
}

int Transaction::PartitionsTouched() const {
  std::unordered_set<int> parts;
  for (const std::string& key : locked_) {
    parts.insert(store_->PartitionOf(key));
  }
  return static_cast<int>(parts.size());
}

Status Transaction::LockRow(const std::string& key) {
  if (locked_.count(key)) return Status::OK();
  KvStore::Partition& part = store_->PartitionFor(key);
  std::lock_guard<std::mutex> guard(part.mu);
  auto [it, inserted] = part.locks.try_emplace(key, id_);
  if (!inserted && it->second != id_) {
    return Status::Aborted(
        common::StrFormat("row lock conflict on '%s'", key.c_str()));
  }
  locked_.insert(key);
  return Status::OK();
}

Result<std::string> Transaction::Get(const std::string& key) {
  EEA_CHECK(!finished_) << "Get on finished transaction";
  store_->gets_.fetch_add(1, std::memory_order_relaxed);
  Status lock = LockRow(key);
  if (!lock.ok()) {
    store_->aborts_.fetch_add(1, std::memory_order_relaxed);
    return lock;
  }
  auto w = writes_.find(key);
  if (w != writes_.end()) {
    if (!w->second.has_value()) return Status::NotFound(key);
    return *w->second;
  }
  KvStore::Partition& part = store_->PartitionFor(key);
  std::lock_guard<std::mutex> guard(part.mu);
  auto it = part.rows.find(key);
  if (it == part.rows.end()) return Status::NotFound(key);
  return it->second;
}

Result<std::string> Transaction::GetCommitted(const std::string& key) {
  EEA_CHECK(!finished_) << "GetCommitted on finished transaction";
  store_->gets_.fetch_add(1, std::memory_order_relaxed);
  auto w = writes_.find(key);
  if (w != writes_.end()) {
    if (!w->second.has_value()) return Status::NotFound(key);
    return *w->second;
  }
  KvStore::Partition& part = store_->PartitionFor(key);
  std::lock_guard<std::mutex> guard(part.mu);
  auto it = part.rows.find(key);
  if (it == part.rows.end()) return Status::NotFound(key);
  return it->second;
}

Result<bool> Transaction::Exists(const std::string& key) {
  Result<std::string> r = Get(key);
  if (r.ok()) return true;
  if (r.status().IsNotFound()) return false;
  return r.status();
}

Status Transaction::Put(const std::string& key, std::string value) {
  EEA_CHECK(!finished_) << "Put on finished transaction";
  store_->puts_.fetch_add(1, std::memory_order_relaxed);
  Status lock = LockRow(key);
  if (!lock.ok()) {
    store_->aborts_.fetch_add(1, std::memory_order_relaxed);
    return lock;
  }
  writes_[key] = std::move(value);
  return Status::OK();
}

Status Transaction::Delete(const std::string& key) {
  EEA_CHECK(!finished_) << "Delete on finished transaction";
  Status lock = LockRow(key);
  if (!lock.ok()) {
    store_->aborts_.fetch_add(1, std::memory_order_relaxed);
    return lock;
  }
  writes_[key] = std::nullopt;
  return Status::OK();
}

Status Transaction::Commit() {
  EEA_CHECK(!finished_) << "Commit on finished transaction";
  const int partitions = PartitionsTouched();
  // Apply writes partition by partition. Because every written row is
  // exclusively locked by this transaction, applying without a global lock
  // is atomic with respect to other transactions (they cannot observe or
  // touch these rows until the locks are released below).
  for (const auto& [key, value] : writes_) {
    KvStore::Partition& part = store_->PartitionFor(key);
    std::lock_guard<std::mutex> guard(part.mu);
    if (value.has_value()) {
      part.rows[key] = *value;
    } else {
      part.rows.erase(key);
    }
  }
  // Release locks.
  for (const std::string& key : locked_) {
    KvStore::Partition& part = store_->PartitionFor(key);
    std::lock_guard<std::mutex> guard(part.mu);
    auto it = part.locks.find(key);
    if (it != part.locks.end() && it->second == id_) part.locks.erase(it);
  }
  finished_ = true;
  store_->commits_.fetch_add(1, std::memory_order_relaxed);
  if (partitions <= 1) {
    store_->single_partition_commits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    store_->multi_partition_commits_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

void Transaction::Abort() {
  if (finished_) return;
  for (const std::string& key : locked_) {
    KvStore::Partition& part = store_->PartitionFor(key);
    std::lock_guard<std::mutex> guard(part.mu);
    auto it = part.locks.find(key);
    if (it != part.locks.end() && it->second == id_) part.locks.erase(it);
  }
  writes_.clear();
  locked_.clear();
  finished_ = true;
}

// --- KvStore -----------------------------------------------------------------

KvStore::KvStore(int num_partitions) {
  EEA_CHECK(num_partitions >= 1);
  partitions_.reserve(static_cast<size_t>(num_partitions));
  for (int i = 0; i < num_partitions; ++i) {
    partitions_.push_back(std::make_unique<Partition>());
  }
}

int KvStore::PartitionOf(const std::string& key) const {
  return static_cast<int>(common::Fnv1a(key) % partitions_.size());
}

std::unique_ptr<Transaction> KvStore::Begin() {
  uint64_t id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Transaction>(new Transaction(this, id));
}

Status KvStore::Put(const std::string& key, std::string value) {
  auto txn = Begin();
  EEA_RETURN_NOT_OK(txn->Put(key, std::move(value)));
  return txn->Commit();
}

Result<std::string> KvStore::Get(const std::string& key) {
  auto txn = Begin();
  Result<std::string> r = txn->Get(key);
  if (r.ok()) {
    Status s = txn->Commit();
    if (!s.ok()) return s;
  }
  return r;
}

Status KvStore::Delete(const std::string& key) {
  auto txn = Begin();
  EEA_RETURN_NOT_OK(txn->Delete(key));
  return txn->Commit();
}

std::vector<std::pair<std::string, std::string>> KvStore::ScanPrefix(
    const std::string& prefix, size_t limit) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& part : partitions_) {
    std::lock_guard<std::mutex> guard(part->mu);
    auto it = part->rows.lower_bound(prefix);
    for (; it != part->rows.end(); ++it) {
      if (!common::StartsWith(it->first, prefix)) break;
      out.push_back(*it);
    }
  }
  std::sort(out.begin(), out.end());
  if (limit > 0 && out.size() > limit) out.resize(limit);
  return out;
}

size_t KvStore::Size() const {
  size_t n = 0;
  for (const auto& part : partitions_) {
    std::lock_guard<std::mutex> guard(part->mu);
    n += part->rows.size();
  }
  return n;
}

StoreStats KvStore::stats() const {
  StoreStats s;
  s.commits = commits_.load(std::memory_order_relaxed);
  s.aborts = aborts_.load(std::memory_order_relaxed);
  s.single_partition_commits =
      single_partition_commits_.load(std::memory_order_relaxed);
  s.multi_partition_commits =
      multi_partition_commits_.load(std::memory_order_relaxed);
  s.gets = gets_.load(std::memory_order_relaxed);
  s.puts = puts_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace exearth::kv
