file(REMOVE_RECURSE
  "CMakeFiles/eea_rdf.dir/ntriples.cc.o"
  "CMakeFiles/eea_rdf.dir/ntriples.cc.o.d"
  "CMakeFiles/eea_rdf.dir/query.cc.o"
  "CMakeFiles/eea_rdf.dir/query.cc.o.d"
  "CMakeFiles/eea_rdf.dir/term.cc.o"
  "CMakeFiles/eea_rdf.dir/term.cc.o.d"
  "CMakeFiles/eea_rdf.dir/triple_store.cc.o"
  "CMakeFiles/eea_rdf.dir/triple_store.cc.o.d"
  "libeea_rdf.a"
  "libeea_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eea_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
