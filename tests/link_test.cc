#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "link/entity_resolution.h"
#include "geo/wkt.h"
#include "link/spatial_links.h"
#include "strabon/workload.h"

namespace exearth::link {
namespace {

// --- Workload -----------------------------------------------------------

TEST(ErWorkloadTest, GeneratesDuplicatesWithGroundTruth) {
  ErWorkloadOptions opt;
  opt.num_records = 200;
  opt.duplicate_probability = 0.5;
  ErDataset ds = MakeDirtyErDataset(opt);
  EXPECT_GE(ds.entities.size(), 200u);
  EXPECT_GT(ds.true_matches.size(), 50u);
  EXPECT_LT(ds.true_matches.size(), 160u);
  // Ids unique.
  std::set<int64_t> ids;
  for (const Entity& e : ds.entities) ids.insert(e.id);
  EXPECT_EQ(ids.size(), ds.entities.size());
}

TEST(ErWorkloadTest, Deterministic) {
  ErWorkloadOptions opt;
  opt.num_records = 50;
  ErDataset a = MakeDirtyErDataset(opt);
  ErDataset b = MakeDirtyErDataset(opt);
  ASSERT_EQ(a.entities.size(), b.entities.size());
  for (size_t i = 0; i < a.entities.size(); ++i) {
    EXPECT_EQ(a.entities[i].tokens, b.entities[i].tokens);
  }
}

TEST(JaccardTest, Values) {
  Entity a{0, {"x", "y", "z"}};
  Entity b{1, {"x", "y", "w"}};
  EXPECT_NEAR(Jaccard(a, b), 2.0 / 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(Jaccard(a, a), 1.0);
  Entity empty{2, {}};
  EXPECT_DOUBLE_EQ(Jaccard(empty, empty), 0.0);
  // Duplicate tokens count once.
  Entity c{3, {"x", "x", "y"}};
  EXPECT_NEAR(Jaccard(a, c), 2.0 / 3.0, 1e-9);
}

// --- Resolution ---------------------------------------------------------

class ResolutionTest : public testing::Test {
 protected:
  ResolutionTest() {
    ErWorkloadOptions opt;
    opt.num_records = 300;
    opt.duplicate_probability = 0.5;
    opt.noise = 0.15;
    ds_ = MakeDirtyErDataset(opt);
    match_ = JaccardMatcher(0.45);
  }
  ErDataset ds_;
  MatchFn match_;
};

TEST_F(ResolutionTest, NaiveHasHighRecall) {
  ResolutionResult r = ResolveNaive(ds_.entities, match_);
  PairMetrics m = ComputePairMetrics(r.matches, ds_.true_matches);
  EXPECT_GT(m.recall, 0.9);
  const uint64_t n = ds_.entities.size();
  EXPECT_EQ(r.comparisons, n * (n - 1) / 2);
}

TEST_F(ResolutionTest, TokenBlockingCutsComparisonsKeepsRecall) {
  ResolutionResult naive = ResolveNaive(ds_.entities, match_);
  BlockingOptions opt;
  ResolutionResult blocked =
      ResolveWithTokenBlocking(ds_.entities, match_, opt);
  PairMetrics m = ComputePairMetrics(blocked.matches, ds_.true_matches);
  PairMetrics mn = ComputePairMetrics(naive.matches, ds_.true_matches);
  EXPECT_LT(blocked.comparisons, naive.comparisons / 2);
  EXPECT_GE(m.recall, mn.recall - 0.05);
}

TEST_F(ResolutionTest, MetaBlockingCutsComparisonsFurther) {
  BlockingOptions opt;
  ResolutionResult blocked =
      ResolveWithTokenBlocking(ds_.entities, match_, opt);
  ResolutionResult meta = ResolveWithMetaBlocking(ds_.entities, match_, opt);
  EXPECT_LT(meta.comparisons, blocked.comparisons);
  PairMetrics mb = ComputePairMetrics(blocked.matches, ds_.true_matches);
  PairMetrics mm = ComputePairMetrics(meta.matches, ds_.true_matches);
  // Pruning may cost a little recall but not much.
  EXPECT_GE(mm.recall, mb.recall - 0.1);
  EXPECT_GT(mm.recall, 0.75);
}

TEST_F(ResolutionTest, ParallelMetaBlockingMatchesSequential) {
  BlockingOptions seq;
  seq.num_threads = 1;
  BlockingOptions par;
  par.num_threads = 4;
  ResolutionResult a = ResolveWithMetaBlocking(ds_.entities, match_, seq);
  ResolutionResult b = ResolveWithMetaBlocking(ds_.entities, match_, par);
  auto sorted = [](std::vector<std::pair<int64_t, int64_t>> v) {
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(sorted(a.matches), sorted(b.matches));
  EXPECT_EQ(a.candidate_pairs, b.candidate_pairs);
}

TEST_F(ResolutionTest, JaccardSchemeAlsoWorks) {
  BlockingOptions opt;
  opt.scheme = WeightScheme::kJaccard;
  ResolutionResult meta = ResolveWithMetaBlocking(ds_.entities, match_, opt);
  PairMetrics m = ComputePairMetrics(meta.matches, ds_.true_matches);
  EXPECT_GT(m.recall, 0.7);
}

TEST(ResolutionEdgeTest, EmptyAndSingleton) {
  MatchFn match = JaccardMatcher(0.5);
  ResolutionResult r = ResolveNaive({}, match);
  EXPECT_TRUE(r.matches.empty());
  std::vector<Entity> one = {{0, {"a"}}};
  r = ResolveWithMetaBlocking(one, match, BlockingOptions{});
  EXPECT_TRUE(r.matches.empty());
  EXPECT_EQ(r.comparisons, 0u);
}

TEST(PairMetricsTest, Computation) {
  std::vector<std::pair<int64_t, int64_t>> truth = {{1, 2}, {3, 4}};
  std::vector<std::pair<int64_t, int64_t>> found = {{1, 2}, {5, 6}};
  PairMetrics m = ComputePairMetrics(found, truth);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  PairMetrics empty = ComputePairMetrics({}, {});
  EXPECT_DOUBLE_EQ(empty.recall, 1.0);
  EXPECT_DOUBLE_EQ(empty.precision, 1.0);
}

// --- Spatial links ------------------------------------------------------

std::vector<geo::Geometry> RandomPolygons(int n, double world, double size,
                                          uint64_t seed) {
  common::Rng rng(seed);
  std::vector<geo::Geometry> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    double cx = rng.UniformDouble(0, world);
    double cy = rng.UniformDouble(0, world);
    out.push_back(geo::Geometry(
        strabon::RandomPolygon(cx, cy, size, 8, &rng)));
  }
  return out;
}

TEST(SpatialLinksTest, IndexedMatchesNestedLoopIntersects) {
  auto a = RandomPolygons(150, 500, 40, 1);
  auto b = RandomPolygons(150, 500, 40, 2);
  SpatialLinkOptions opt;
  opt.use_index = true;
  auto indexed = DiscoverSpatialLinks(a, b, opt);
  opt.use_index = false;
  auto nested = DiscoverSpatialLinks(a, b, opt);
  EXPECT_EQ(indexed.links, nested.links);
  EXPECT_FALSE(indexed.links.empty());
  EXPECT_LT(indexed.exact_tests, nested.exact_tests);
}

TEST(SpatialLinksTest, WithinDistance) {
  std::vector<geo::Geometry> a = {geo::Geometry(geo::Point{0, 0})};
  std::vector<geo::Geometry> b = {geo::Geometry(geo::Point{3, 4}),
                                  geo::Geometry(geo::Point{30, 40})};
  SpatialLinkOptions opt;
  opt.relation = SpatialLinkRelation::kWithinDistance;
  opt.distance = 5.0;
  for (bool use_index : {true, false}) {
    opt.use_index = use_index;
    auto r = DiscoverSpatialLinks(a, b, opt);
    ASSERT_EQ(r.links.size(), 1u) << "use_index=" << use_index;
    EXPECT_EQ(r.links[0], (std::pair<size_t, size_t>{0, 0}));
  }
}

TEST(SpatialLinksTest, Contains) {
  auto big = geo::ParseWkt("POLYGON ((0 0, 100 0, 100 100, 0 100, 0 0))");
  auto small = geo::ParseWkt("POLYGON ((10 10, 20 10, 20 20, 10 20, 10 10))");
  auto outside = geo::ParseWkt(
      "POLYGON ((200 200, 210 200, 210 210, 200 210, 200 200))");
  ASSERT_TRUE(big.ok() && small.ok() && outside.ok());
  std::vector<geo::Geometry> a = {*big};
  std::vector<geo::Geometry> b = {*small, *outside};
  SpatialLinkOptions opt;
  opt.relation = SpatialLinkRelation::kContains;
  for (bool use_index : {true, false}) {
    opt.use_index = use_index;
    auto r = DiscoverSpatialLinks(a, b, opt);
    ASSERT_EQ(r.links.size(), 1u);
    EXPECT_EQ(r.links[0].second, 0u);
  }
}

TEST(SpatialLinksTest, EmptyInputs) {
  SpatialLinkOptions opt;
  auto r = DiscoverSpatialLinks({}, {}, opt);
  EXPECT_TRUE(r.links.empty());
  auto r2 = DiscoverSpatialLinks(RandomPolygons(5, 100, 10, 3), {}, opt);
  EXPECT_TRUE(r2.links.empty());
}

TEST(SpatialLinksTest, ParallelMatchesSingleThread) {
  auto a = RandomPolygons(200, 500, 40, 5);
  auto b = RandomPolygons(200, 500, 40, 6);
  SpatialLinkOptions opt;
  for (bool use_index : {true, false}) {
    opt.use_index = use_index;
    opt.num_threads = 1;
    auto single = DiscoverSpatialLinks(a, b, opt);
    opt.num_threads = 4;
    auto parallel = DiscoverSpatialLinks(a, b, opt);
    EXPECT_EQ(parallel.links, single.links) << "use_index=" << use_index;
    EXPECT_EQ(parallel.exact_tests, single.exact_tests);
    EXPECT_EQ(parallel.candidate_pairs, single.candidate_pairs);
  }
}

TEST(SpatialLinksTest, RelationNames) {
  EXPECT_STREQ(SpatialLinkRelationName(SpatialLinkRelation::kIntersects),
               "intersects");
  EXPECT_STREQ(SpatialLinkRelationName(SpatialLinkRelation::kContains),
               "contains");
}

}  // namespace
}  // namespace exearth::link
