# Empty dependencies file for bench_e14_five_vs.
# This may be replaced when dependencies are built.
