#include "polar/pipeline.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"
#include "ml/network.h"
#include "ml/trainer.h"
#include "raster/dataset.h"

namespace exearth::polar {

using common::Result;
using common::Status;

raster::ClassMap ClassifyIcePixels(
    const raster::SentinelProduct& sar_scene, ml::Network* network, int patch,
    const std::vector<std::pair<float, float>>& standardization) {
  const raster::Raster& r = sar_scene.raster;
  const int w = r.width();
  const int h = r.height();
  raster::ClassMap out(w, h);
  const int feature_dim = r.bands() * patch * patch;
  EEA_CHECK(standardization.size() == static_cast<size_t>(feature_dim));
  // Batch one row of windows at a time.
  const int windows_x = w / patch;
  ml::Tensor batch({windows_x, feature_dim});
  for (int wy = 0; wy + patch <= h; wy += patch) {
    float* p = batch.data();
    for (int wx = 0; wx < windows_x; ++wx) {
      int x0 = wx * patch;
      size_t idx = static_cast<size_t>(wx) * feature_dim;
      for (int b = 0; b < r.bands(); ++b) {
        for (int y = wy; y < wy + patch; ++y) {
          for (int x = x0; x < x0 + patch; ++x) {
            float v = 10.0f * std::log10(std::max(1e-6f, r.Get(b, x, y)));
            auto [mean, stddev] =
                standardization[idx % static_cast<size_t>(feature_dim)];
            p[idx] = (v - mean) / stddev;
            ++idx;
          }
        }
      }
    }
    ml::Tensor logits = network->Forward(batch, /*training=*/false);
    const int c = logits.dim(1);
    for (int wx = 0; wx < windows_x; ++wx) {
      const float* row = logits.data() + static_cast<int64_t>(wx) * c;
      uint8_t best = static_cast<uint8_t>(
          std::max_element(row, row + c) - row);
      for (int y = wy; y < wy + patch; ++y) {
        for (int x = wx * patch; x < (wx + 1) * patch; ++x) {
          out.at(x, y) = best;
        }
      }
    }
  }
  return out;
}

Result<PolarReport> RunPolarPipeline(const PolarOptions& options,
                                     catalog::SemanticCatalogue* catalogue) {
  if (options.width % options.classifier_patch != 0 ||
      options.height % options.classifier_patch != 0) {
    return Status::InvalidArgument("patch must divide scene dimensions");
  }
  common::Rng rng(options.seed);
  PolarReport report;

  // 1. Ground-truth ice map (floes/leads structure via Voronoi patches),
  //    skewed toward first-year ice with open-water leads.
  raster::ClassMapOptions map_opt;
  map_opt.width = options.width;
  map_opt.height = options.height;
  map_opt.num_classes = raster::kNumIceClasses;
  map_opt.num_patches = options.ice_patches;
  map_opt.class_weights = {2.0, 1.0, 1.5, 2.5, 1.5};
  report.true_ice = raster::GenerateClassMap(map_opt, &rng);

  // 2. SAR acquisition.
  raster::SentinelSimulator::Options sim_opt;
  sim_opt.pixel_size = options.pixel_size;
  raster::SentinelSimulator sim(sim_opt, options.seed + 1);
  raster::SentinelProduct scene = sim.SimulateS1Ice(report.true_ice, 60);

  // 3. Inject icebergs into open water (they are part of the real scene
  //    the classifier sees).
  report.true_iceberg_positions =
      InjectIcebergs(&scene, report.true_ice, options.injected_icebergs,
                     /*brightness_db=*/-2.0, options.seed + 2);

  // 4. Train the ice classifier on a second, independent scene (so
  //    training pixels are not the evaluation pixels).
  raster::SentinelProduct train_scene =
      sim.SimulateS1Ice(report.true_ice, 61);
  EEA_ASSIGN_OR_RETURN(
      raster::Dataset train,
      raster::MakeIceDataset(train_scene, report.true_ice,
                             options.classifier_patch,
                             options.classifier_patch));
  common::Rng shuffle_rng(options.seed + 3);
  train.Shuffle(&shuffle_rng);
  if (static_cast<int>(train.size()) > options.training_samples) {
    train.samples.resize(static_cast<size_t>(options.training_samples));
  }
  auto standardization = train.Standardize();
  ml::Network net = ml::BuildMlp(train.feature_dim, {32},
                                 raster::kNumIceClasses, options.seed + 4);
  ml::TrainOptions topt;
  topt.epochs = options.epochs;
  topt.batch_size = 32;
  topt.sgd.learning_rate = options.learning_rate;
  ml::Trainer trainer(&net, topt);
  trainer.Fit(&train);

  // 5. Wall-to-wall classification of the operational scene.
  report.predicted_ice = ClassifyIcePixels(scene, &net,
                                           options.classifier_patch,
                                           standardization);
  int64_t correct = 0;
  for (int y = 0; y < options.height; ++y) {
    for (int x = 0; x < options.width; ++x) {
      int truth = report.true_ice.at(x, y);
      int pred = report.predicted_ice.at(x, y);
      report.ice_confusion.Add(truth, pred);
      if (truth == pred) ++correct;
    }
  }
  report.ice_accuracy =
      static_cast<double>(correct) /
      (static_cast<double>(options.width) * options.height);

  // 6. Chart products at <= 1 km, including the ridge fraction.
  EEA_ASSIGN_OR_RETURN(report.chart,
                       MakeIceChart(report.predicted_ice,
                                    scene.raster.transform(),
                                    options.chart_cell_pixels));
  EEA_ASSIGN_OR_RETURN(report.ridge_fraction,
                       RidgeFraction(report.predicted_ice, scene,
                                     options.chart_cell_pixels));

  // 7. Iceberg detection on the operational scene. The water mask is the
  //    majority-filtered predicted map: a bright berg flips its own
  //    classification window to "ice", and the filter suppresses such
  //    isolated islands so the detector still scans them as water.
  raster::ClassMap detection_mask = MajorityFilter(
      report.predicted_ice, options.classifier_patch, raster::kNumIceClasses);
  report.icebergs =
      DetectIcebergs(scene, detection_mask, IcebergDetectionOptions{});
  // Recall vs injected truth (within 3 pixels).
  int found = 0;
  for (const geo::Point& truth : report.true_iceberg_positions) {
    for (const Iceberg& berg : report.icebergs) {
      if (geo::Distance(truth, berg.position) <=
          3.0 * options.pixel_size) {
        ++found;
        break;
      }
    }
  }
  report.iceberg_recall =
      report.true_iceberg_positions.empty()
          ? 1.0
          : static_cast<double>(found) /
                static_cast<double>(report.true_iceberg_positions.size());

  // 8. PCDSS product for ship delivery.
  std::vector<uint8_t> payload = EncodePcdss(report.chart);
  report.pcdss_bytes = payload.size();
  report.pcdss_transfer_seconds = TransferSeconds(payload.size(), 2400.0);

  // 9. Catalogue publication.
  if (catalogue != nullptr) {
    catalogue->Ingest(scene.metadata);
    for (const Iceberg& berg : report.icebergs) {
      catalogue->AddObservation(
          common::StrFormat("http://extremeearth.eu/iceberg/%s/%d",
                            scene.metadata.product_id.c_str(), berg.id),
          kIcebergClassIri, geo::Geometry(berg.position),
          scene.metadata.product_id, scene.metadata.year,
          scene.metadata.day_of_year);
    }
    EEA_RETURN_NOT_OK(catalogue->Build());
  }
  return report;
}

}  // namespace exearth::polar
