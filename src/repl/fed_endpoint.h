// Follower replicas as federation read endpoints.
//
// The federation mediator already knows how to retry failed remote
// calls, route them through per-endpoint circuit breakers, and return
// partial answers when sources stay down. ReplicaReadEndpoint plugs a
// replica of the sharded store into exactly that machinery: one
// endpoint per (shard, replica), answering key/value rows under a
// synthetic predicate from the replica's *applied* state (follower
// reads may lag the leader by design).
//
// Registering one endpoint per shard — each backed by a follower —
// gives the mediator a scatter view of the whole keyspace (shards are
// disjoint), offloading reads from leaders; a crashed follower surfaces
// through the standard `fed.endpoint.call:<name>` fault boundary, so
// breakers open and `partial_ok` queries degrade gracefully, listing
// the lost replica in FederationStats::degraded_sources.
//
// Pattern vocabulary (term-level, like any federated source):
//   ?k <urn:eea:repl#row> ?v   — every (key, value) row of the shard,
//                                keys and values bound as plain literals
//   "some-key" ^ as subject    — point lookup of one key
// Constant objects filter on the value; other predicates answer empty.

#ifndef EXEARTH_REPL_FED_ENDPOINT_H_
#define EXEARTH_REPL_FED_ENDPOINT_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "fed/federation.h"
#include "rdf/query.h"
#include "rdf/term.h"
#include "repl/replicated_store.h"

namespace exearth::repl {

/// The synthetic predicate replica endpoints advertise.
inline constexpr char kRowPredicate[] = "urn:eea:repl#row";

class ReplicaReadEndpoint final : public fed::Endpoint {
 public:
  /// Serves shard `shard` of `store` from replica `replica`'s applied
  /// state. Named "repl-s<shard>r<replica>"; the store must outlive the
  /// endpoint. The advertised cardinality is estimated at construction.
  ReplicaReadEndpoint(const ReplicatedKvStore* store, int shard,
                      int replica);

  common::Result<std::vector<std::map<std::string, rdf::Term>>>
  ExecutePattern(const rdf::TriplePattern& pattern) const override;

  int shard() const { return shard_; }
  int replica() const { return replica_; }

 private:
  const ReplicatedKvStore* store_;
  int shard_;
  int replica_;
};

}  // namespace exearth::repl

#endif  // EXEARTH_REPL_FED_ENDPOINT_H_
