file(REMOVE_RECURSE
  "libeea_etl.a"
)
