// Process-wide metrics: lock-cheap counters, gauges and fixed-bucket
// latency histograms, collected in a named registry with JSON export.
//
// Design goals (see README "Observability"):
//   - Hot-path cost is one relaxed atomic RMW per event. Registration
//     (name -> metric lookup) takes a mutex, so callers cache the returned
//     pointer, typically in a function-local static:
//
//       static common::Counter* queries =
//           common::MetricsRegistry::Default().GetCounter("sub.queries");
//       queries->Increment();
//
//   - Metric pointers are stable for the registry's lifetime; Reset()
//     zeroes values in place without invalidating pointers.
//   - Snapshots are taken concurrently with updates; per-metric values are
//     exact, cross-metric consistency is best-effort (no stop-the-world).

#ifndef EXEARTH_COMMON_METRICS_H_
#define EXEARTH_COMMON_METRICS_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace exearth::common {

/// Monotonically increasing event count.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A value that can go up and down (queue depths, cache sizes, ...).
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta);
  /// Set(v) if v is greater than the current value (tracks high-water
  /// marks, e.g. peak queue depth).
  void Max(double v);
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Bucket i counts observations in
/// (bounds[i-1], bounds[i]]; one extra overflow bucket counts observations
/// above the last bound. Percentiles are estimated by linear interpolation
/// inside the bucket holding the requested rank (the overflow bucket
/// interpolates up to the maximum observed value).
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> bounds);

  /// 24 exponential bounds from 1us doubling to ~8.4s — the default scale
  /// for latency histograms recorded in microseconds.
  static std::vector<double> DefaultLatencyBoundsUs();
  /// `count` bounds: start, start*factor, start*factor^2, ...
  static std::vector<double> ExponentialBounds(double start, double factor,
                                               size_t count);

  void Observe(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const;
  /// Estimated value at percentile `p` in [0, 100]; 0 when empty.
  double Percentile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  /// Count in bucket i (i == bounds().size() is the overflow bucket).
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Named metric registry. Get* registers on first use and returns the same
/// pointer for the same name thereafter; pointers stay valid until the
/// registry is destroyed.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (never destroyed).
  static MetricsRegistry& Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  /// `bounds` applies only on first registration; empty means
  /// DefaultLatencyBoundsUs().
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bounds = {});

  /// JSON snapshot:
  ///   {"counters": {...}, "gauges": {...},
  ///    "histograms": {name: {count, sum, min, max, p50, p95, p99,
  ///                          buckets: [{le, count}, ...]}}}
  /// Metric names are JSON-escaped (hostile names — quotes, control
  /// bytes, non-ASCII — cannot break the document; see JsonEscape).
  std::string ToJson() const;

  /// Point-in-time values of every registered metric, for exporters that
  /// need iteration (the Prometheus renderer, the windowed sampler).
  /// Per-metric values are exact; cross-metric consistency is best-effort,
  /// like ToJson(). Entries are sorted by name.
  struct HistogramSample {
    std::string name;
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::vector<double> bounds;     // bucket upper bounds
    std::vector<uint64_t> buckets;  // bounds.size() + 1 (overflow last)
  };
  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramSample> histograms;
  };
  Snapshot TakeSnapshot() const;

  /// Zeroes every registered metric in place (pointers stay valid).
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// RAII timer that records elapsed wall-clock microseconds into a
/// histogram on destruction.
class ScopedLatencyTimer {
 public:
  explicit ScopedLatencyTimer(Histogram* hist)
      : hist_(hist), start_(std::chrono::steady_clock::now()) {}
  ScopedLatencyTimer(const ScopedLatencyTimer&) = delete;
  ScopedLatencyTimer& operator=(const ScopedLatencyTimer&) = delete;
  ~ScopedLatencyTimer() {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
    hist_->Observe(static_cast<double>(ns) / 1000.0);
  }

 private:
  Histogram* hist_;
  std::chrono::steady_clock::time_point start_;
};

/// Escapes a string for inclusion in a JSON string literal (quotes not
/// included). Shared by the metrics and trace exporters. Output is pure
/// ASCII: control bytes AND bytes >= 0x7f are \u-escaped, so hostile
/// metric names (embedded quotes, newlines, invalid UTF-8) can never
/// produce a malformed document.
std::string JsonEscape(const std::string& s);

}  // namespace exearth::common

#endif  // EXEARTH_COMMON_METRICS_H_
