// Fixed-size thread pool with a parallel-for helper.
//
// Used by the multi-core experiments (meta-blocking E9, KV shards) and by
// data-parallel training.

#ifndef EXEARTH_COMMON_THREAD_POOL_H_
#define EXEARTH_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/admission.h"
#include "common/result.h"
#include "common/status.h"

namespace exearth::common {

/// A fixed pool of worker threads executing submitted closures FIFO.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return threads_.size(); }

  /// Enqueues `fn` for execution; the returned future completes when it
  /// ran. The submitter's TraceContext *and* RequestContext are captured
  /// at enqueue and adopted by the worker for the task's duration, so
  /// request-scoped spans recorded inside `fn` attach to the originating
  /// request and `fn` observes that request's deadline/cancellation.
  std::future<void> Submit(std::function<void()> fn);

  /// Installs an admission gate on TrySubmit. Not owned; must outlive the
  /// pool (or be cleared with nullptr). Plain Submit stays ungated: it
  /// carries the pool's own fan-out chunks (ParallelFor), which must
  /// never be shed mid-query.
  void set_admission_controller(AdmissionController* ctrl) {
    admission_.store(ctrl, std::memory_order_release);
  }
  AdmissionController* admission_controller() const {
    return admission_.load(std::memory_order_acquire);
  }

  /// Admission-controlled Submit. Sheds at enqueue when the controller's
  /// queue is full for `priority` (returns ResourceExhausted, `fn` is
  /// dropped without running), and at dequeue when the task aged out in
  /// line (the future then yields ResourceExhausted and `fn` does not
  /// run). On success the future yields `fn`'s OK once it ran. With no
  /// controller installed this is Submit with a Status future.
  Result<std::future<Status>> TrySubmit(std::function<void()> fn,
                                        Priority priority);

  /// Runs fn(i) for i in [0, n), partitioned across the pool, and blocks
  /// until all iterations finished.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::packaged_task<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::atomic<AdmissionController*> admission_{nullptr};
};

}  // namespace exearth::common

#endif  // EXEARTH_COMMON_THREAD_POOL_H_
