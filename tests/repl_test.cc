// Replication suite (`repl` label; CI runs it under asan+ubsan and
// tsan). Covers the sharded replicated store end to end:
//
//   1. Placement: the seeded consistent-hash ring is deterministic
//      across store instances and spreads keys over every shard.
//   2. The quorum commit path: follower convergence, channel drops and
//      corrupted batches (follower_rejects via the shared frame scan),
//      lag + catch-up accounting, quorum failures stepping leaders down.
//   3. The failover laws, in-process and across a durable restart:
//      zero lost acknowledged writes, unacknowledged transactions stay
//      invisible, and the whole drill is byte-identical when rerun at
//      the same seed (state hash, stats, election terms).
//   4. The integrations: HopsFS metadata over the sharded store with
//      per-shard inode-id ranges, follower replicas as federation read
//      endpoints (partial_ok + degraded_sources), and the /shardz +
//      Prometheus admin surface.

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/status.h"
#include "common/string_util.h"
#include "dfs/hopsfs.h"
#include "fed/federation.h"
#include "kv/meta_store.h"
#include "rdf/query.h"
#include "rdf/term.h"
#include "repl/admin_hooks.h"
#include "repl/fed_endpoint.h"
#include "repl/replicated_store.h"

namespace exearth::repl {
namespace {

using common::FaultInjector;
using common::FaultRule;
using common::Status;
using common::StatusCode;

class TempDir {
 public:
  TempDir() {
    char tmpl[] = "/tmp/eea_repl_test_XXXXXX";
    char* dir = mkdtemp(tmpl);
    EXPECT_NE(dir, nullptr);
    path_ = dir;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// FNV-1a over the sorted full contents — the recovered-state fingerprint
// the determinism assertions compare.
uint64_t ContentHash(const kv::MetaStore& store) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const std::string& s) {
    for (unsigned char c : s) {
      h ^= c;
      h *= 1099511628211ull;
    }
    h ^= 0xff;
    h *= 1099511628211ull;
  };
  for (const auto& [key, value] : store.ScanPrefix("")) {
    mix(key);
    mix(value);
  }
  return h;
}

// Every test runs against a clean process-wide fault injector.
class ReplTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Default().Reset();
    FaultInjector::Default().set_seed(42);
  }
  void TearDown() override { FaultInjector::Default().Reset(); }
};

std::unique_ptr<ReplicatedKvStore> OpenOrDie(const ReplOptions& options) {
  auto store = ReplicatedKvStore::Open(options);
  EXPECT_TRUE(store.ok()) << store.status().message();
  return std::move(*store);
}

TEST_F(ReplTest, RingPlacementIsDeterministicAndCoversAllShards) {
  ReplOptions opt;
  opt.num_shards = 4;
  opt.followers_per_shard = 0;
  opt.write_quorum = 0;
  auto a = OpenOrDie(opt);
  auto b = OpenOrDie(opt);
  std::set<int> hit;
  for (int i = 0; i < 512; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const int shard = a->ShardOf(key);
    EXPECT_EQ(shard, b->ShardOf(key)) << key;
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 4);
    hit.insert(shard);
  }
  EXPECT_EQ(hit.size(), 4u) << "512 keys left a shard empty";
}

TEST_F(ReplTest, PutGetDeleteScanAcrossShards) {
  ReplOptions opt;
  opt.num_shards = 4;
  opt.followers_per_shard = 2;
  auto store = OpenOrDie(opt);
  for (int i = 0; i < 100; ++i) {
    const std::string k = common::StrFormat("row%03d", i);
    ASSERT_TRUE(store->Put(k, "v" + std::to_string(i)).ok());
  }
  EXPECT_EQ(store->Size(), 100u);
  auto got = store->Get("row042");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v42");
  // The merged scan is globally sorted despite per-shard storage.
  auto rows = store->ScanPrefix("row");
  ASSERT_EQ(rows.size(), 100u);
  for (size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].first, rows[i].first);
  }
  auto limited = store->ScanPrefix("row", 7);
  EXPECT_EQ(limited.size(), 7u);
  ASSERT_TRUE(store->Delete("row042").ok());
  EXPECT_TRUE(store->Get("row042").status().IsNotFound());
  EXPECT_EQ(store->Size(), 99u);
  EXPECT_TRUE(store->CheckReady().ok());
  EXPECT_EQ(store->repl_stats().commits_acked, 101u);
  EXPECT_EQ(store->repl_stats().elections, 0u);
}

TEST_F(ReplTest, TransactionsAreAtomicAcrossShards) {
  ReplOptions opt;
  opt.num_shards = 4;
  opt.followers_per_shard = 1;
  auto store = OpenOrDie(opt);
  auto txn = store->Begin();
  for (int i = 0; i < 16; ++i) {
    const std::string k = common::StrFormat("multi%02d", i);
    ASSERT_TRUE(txn->Put(k, "x").ok());
    // Read-your-writes inside the transaction.
    auto mine = txn->Get(k);
    ASSERT_TRUE(mine.ok());
    EXPECT_EQ(*mine, "x");
  }
  auto exists = txn->Exists("multi00");
  ASSERT_TRUE(exists.ok());
  EXPECT_TRUE(*exists);
  ASSERT_TRUE(txn->Commit().ok());
  EXPECT_EQ(store->ScanPrefix("multi").size(), 16u);

  auto aborted = store->Begin();
  ASSERT_TRUE(aborted->Put("multi99", "x").ok());
  aborted->Abort();
  EXPECT_TRUE(store->Get("multi99").status().IsNotFound());
}

TEST_F(ReplTest, FollowersConvergeWithLeader) {
  ReplOptions opt;
  opt.num_shards = 2;
  opt.followers_per_shard = 2;
  auto store = OpenOrDie(opt);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(store->Put("c" + std::to_string(i), "v").ok());
  }
  for (int s = 0; s < 2; ++s) {
    auto leader_rows = store->ScanReplicaPrefix(s, 0, "");
    ASSERT_TRUE(leader_rows.ok());
    for (int r = 1; r < 3; ++r) {
      auto rows = store->ScanReplicaPrefix(s, r, "");
      ASSERT_TRUE(rows.ok());
      EXPECT_EQ(*rows, *leader_rows) << "shard " << s << " replica " << r;
    }
  }
  for (const ShardStatus& shard : store->StatusSnapshot()) {
    EXPECT_EQ(shard.leader, 0);
    for (const ReplicaStatus& r : shard.replicas) {
      EXPECT_EQ(r.lag_frames, 0u);
      EXPECT_EQ(r.durable_lsn, r.applied_lsn);
    }
  }
}

TEST_F(ReplTest, DurableStoreRecoversAcrossReopen) {
  TempDir dir;
  ReplOptions opt;
  opt.num_shards = 2;
  opt.followers_per_shard = 1;
  opt.data_dir = dir.path();
  uint64_t hash = 0;
  {
    auto store = OpenOrDie(opt);
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(
          store->Put(common::StrFormat("d%03d", i), "payload" +
                     std::to_string(i)).ok());
    }
    ASSERT_TRUE(store->Delete("d005").ok());
    hash = ContentHash(*store);
  }
  auto store = OpenOrDie(opt);
  EXPECT_EQ(store->Size(), 39u);
  EXPECT_TRUE(store->Get("d005").status().IsNotFound());
  auto got = store->Get("d017");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "payload17");
  EXPECT_EQ(ContentHash(*store), hash);
  // Recovery leader selection is not a failover election.
  EXPECT_EQ(store->repl_stats().elections, 0u);
}

TEST_F(ReplTest, ChannelDropCausesLagThenCatchup) {
  ReplOptions opt;
  opt.num_shards = 1;
  opt.followers_per_shard = 2;
  opt.write_quorum = 1;
  auto store = OpenOrDie(opt);
  // Drop the first shipped batch (follower 1 of commit #1); follower 2
  // still acks, so the commit is acknowledged.
  FaultRule rule;
  rule.fail_calls = {1};
  FaultInjector::Default().Program("repl.channel.send", rule);
  ASSERT_TRUE(store->Put("k1", "v1").ok());
  ReplStats stats = store->repl_stats();
  EXPECT_EQ(stats.commits_acked, 1u);
  EXPECT_EQ(stats.channel_drops, 1u);
  auto snap = store->StatusSnapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].replicas[1].lag_frames, 2u);  // put + commit marker
  EXPECT_EQ(snap[0].replicas[2].lag_frames, 0u);
  // The lagging follower misses k1 entirely.
  EXPECT_TRUE(store->ReadReplica(0, 1, "k1").status().IsNotFound());
  // The next commit ships the whole missing suffix: catch-up.
  ASSERT_TRUE(store->Put("k2", "v2").ok());
  stats = store->repl_stats();
  EXPECT_EQ(stats.catchup_records, 2u);
  snap = store->StatusSnapshot();
  for (const ReplicaStatus& r : snap[0].replicas) {
    EXPECT_EQ(r.lag_frames, 0u);
  }
  auto caught_up = store->ReadReplica(0, 1, "k1");
  ASSERT_TRUE(caught_up.ok());
  EXPECT_EQ(*caught_up, "v1");
}

TEST_F(ReplTest, CorruptedChannelBatchIsRejectedByFrameScan) {
  ReplOptions opt;
  opt.num_shards = 1;
  opt.followers_per_shard = 2;
  opt.write_quorum = 1;
  auto store = OpenOrDie(opt);
  // An `io` channel fault delivers corrupted bytes: the follower's
  // Wal::ValidatePrefix scan must reject the whole batch (no partial
  // or garbage apply), which counts a follower_reject, not a drop.
  FaultRule rule;
  rule.fail_calls = {1};
  rule.code = StatusCode::kIOError;
  FaultInjector::Default().Program("repl.channel.send", rule);
  ASSERT_TRUE(store->Put("k1", "v1").ok());
  ReplStats stats = store->repl_stats();
  EXPECT_EQ(stats.commits_acked, 1u);
  EXPECT_EQ(stats.follower_rejects, 1u);
  EXPECT_EQ(stats.channel_drops, 0u);
  EXPECT_TRUE(store->ReadReplica(0, 1, "k1").status().IsNotFound());
  // Clean channel again: the reject heals exactly like a drop.
  ASSERT_TRUE(store->Put("k2", "v2").ok());
  auto healed = store->ReadReplica(0, 1, "k1");
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(*healed, "v1");
}

TEST_F(ReplTest, QuorumFailureRefusesCommitAndStepsLeaderDown) {
  ReplOptions opt;
  opt.num_shards = 1;
  opt.followers_per_shard = 1;
  opt.write_quorum = 1;
  auto store = OpenOrDie(opt);
  ASSERT_TRUE(store->Put("pre", "v").ok());
  // Every batch to the only follower is dropped: no quorum is possible.
  FaultRule rule;
  rule.probability = 1.0;
  FaultInjector::Default().Program("repl.channel.send", rule);
  Status s = store->Put("k1", "v1");
  EXPECT_TRUE(s.IsUnavailable()) << s.message();
  ReplStats stats = store->repl_stats();
  EXPECT_EQ(stats.quorum_failures, 1u);
  EXPECT_GE(stats.elections, 1u);
  // The unacknowledged write is invisible on the surviving replica.
  EXPECT_TRUE(store->Get("k1").status().IsNotFound());
  auto pre = store->Get("pre");
  ASSERT_TRUE(pre.ok());
  // The shard is now below quorum (one live replica, zero followers).
  EXPECT_FALSE(store->CheckReady().ok());
}

TEST_F(ReplTest, FollowerApplyLagDoesNotVoidAckAndPromotionApplies) {
  ReplOptions opt;
  opt.num_shards = 1;
  opt.followers_per_shard = 1;
  opt.write_quorum = 1;
  auto store = OpenOrDie(opt);
  // The follower durably appends (the ack) but its in-memory apply is
  // delayed: replication lag in applied_lsn only.
  FaultRule rule;
  rule.fail_calls = {1};
  FaultInjector::Default().Program("repl.follower.apply", rule);
  ASSERT_TRUE(store->Put("k1", "v1").ok());
  auto snap = store->StatusSnapshot();
  EXPECT_EQ(snap[0].replicas[1].durable_lsn, 2u);
  EXPECT_EQ(snap[0].replicas[1].applied_lsn, 0u);
  EXPECT_EQ(snap[0].replicas[1].lag_frames, 0u);  // durably caught up
  EXPECT_TRUE(store->ReadReplica(0, 1, "k1").status().IsNotFound());
  // Promotion drains the apply queue: the acked write is served by the
  // new leader even though it was never applied as a follower.
  store->CrashReplica(0, 0);
  auto got = store->Get("k1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v1");
  EXPECT_EQ(store->repl_stats().elections, 1u);
}

TEST_F(ReplTest, CrashingAFollowerKeepsServingCrashingAllGoesDark) {
  ReplOptions opt;
  opt.num_shards = 1;
  opt.followers_per_shard = 2;
  opt.write_quorum = 1;
  auto store = OpenOrDie(opt);
  ASSERT_TRUE(store->Put("k", "v").ok());
  store->CrashReplica(0, 2);
  ASSERT_TRUE(store->Put("k2", "v").ok());  // one follower is enough
  EXPECT_TRUE(store->ReadReplica(0, 2, "k").status().IsUnavailable());
  store->CrashReplica(0, 1);
  // Quorum needs one follower ack; none are left.
  EXPECT_TRUE(store->Put("k3", "v").IsUnavailable());
  store->CrashReplica(0, 0);
  EXPECT_TRUE(store->Get("k").status().IsUnavailable());
  EXPECT_TRUE(store->Begin()->Put("k4", "v").IsUnavailable());
}

// The deterministic kill-the-leader drill: one full run of the chaos
// scenario the CI determinism gate replays twice. Returns everything
// the laws quantify over.
struct DrillOutcome {
  std::vector<std::string> acked;    // keys whose commit returned OK
  std::vector<std::string> refused;  // keys refused Unavailable mid-crash
  uint64_t recovered_hash = 0;       // state hash after restart
  ReplStats stats;                   // counters before the restart
  std::vector<uint64_t> election_terms;
};

DrillOutcome RunLeaderKillDrill(const std::string& dir, uint64_t seed,
                                uint64_t crash_at_commit) {
  FaultInjector::Default().Reset();
  FaultInjector::Default().set_seed(seed);
  FaultRule rule;
  rule.fail_calls = {crash_at_commit};
  FaultInjector::Default().Program("repl.leader.crash", rule);

  ReplOptions opt;
  opt.num_shards = 2;
  opt.followers_per_shard = 2;
  opt.write_quorum = 1;
  opt.data_dir = dir;
  opt.election_seed = seed;
  DrillOutcome out;
  {
    auto store = OpenOrDie(opt);
    for (int i = 0; i < 40; ++i) {
      const std::string key = common::StrFormat("drill%03d", i);
      Status s = store->Put(key, "value-" + std::to_string(i));
      if (s.ok()) {
        out.acked.push_back(key);
      } else {
        EXPECT_TRUE(s.IsUnavailable()) << s.message();
        out.refused.push_back(key);
      }
    }
    out.stats = store->repl_stats();
    for (const ShardStatus& shard : store->StatusSnapshot()) {
      out.election_terms.push_back(shard.election_term);
      // The crashed node's WAL dies with it: permanent node loss. Remove
      // it before the restart below, exactly like the failover drill in
      // bench_e19 (otherwise recovery would resurrect the dead leader's
      // unshipped — unacknowledged — tail).
      for (const ReplicaStatus& r : shard.replicas) {
        if (r.down) {
          std::filesystem::remove(common::StrFormat(
              "%s/shard%03d_replica%02d.wal", dir.c_str(), r.shard,
              r.replica));
        }
      }
    }
  }
  FaultInjector::Default().Reset();
  auto recovered = OpenOrDie(opt);
  for (const std::string& key : out.acked) {
    EXPECT_TRUE(recovered->Get(key).ok())
        << key << ": acknowledged write lost across failover + restart";
  }
  for (const std::string& key : out.refused) {
    EXPECT_TRUE(recovered->Get(key).status().IsNotFound())
        << key << ": unacknowledged write became visible";
  }
  out.recovered_hash = ContentHash(*recovered);
  return out;
}

TEST_F(ReplTest, LeaderKillDrillLosesNoAckedWritesAndIsDeterministic) {
  const uint64_t kSeed = 42;
  const uint64_t kCrashAtCommit = 17;
  TempDir dir_a;
  DrillOutcome a = RunLeaderKillDrill(dir_a.path(), kSeed, kCrashAtCommit);
  // The injected kill really happened, cost exactly one commit, and
  // triggered exactly one failover.
  EXPECT_EQ(a.refused.size(), 1u);
  EXPECT_EQ(a.acked.size(), 39u);
  EXPECT_EQ(a.stats.leader_crashes, 1u);
  EXPECT_EQ(a.stats.elections, 1u);
  EXPECT_EQ(a.stats.commits_acked, 39u);

  // Byte-identical rerun at the same seed: same acks, same refusals,
  // same recovered state, same counters, same election terms.
  TempDir dir_b;
  DrillOutcome b = RunLeaderKillDrill(dir_b.path(), kSeed, kCrashAtCommit);
  EXPECT_EQ(a.acked, b.acked);
  EXPECT_EQ(a.refused, b.refused);
  EXPECT_EQ(a.recovered_hash, b.recovered_hash);
  EXPECT_EQ(a.election_terms, b.election_terms);
  EXPECT_EQ(a.stats.commits_acked, b.stats.commits_acked);
  EXPECT_EQ(a.stats.quorum_failures, b.stats.quorum_failures);
  EXPECT_EQ(a.stats.elections, b.stats.elections);
  EXPECT_EQ(a.stats.leader_crashes, b.stats.leader_crashes);
  EXPECT_EQ(a.stats.channel_drops, b.stats.channel_drops);
  EXPECT_EQ(a.stats.follower_rejects, b.stats.follower_rejects);
  EXPECT_EQ(a.stats.catchup_records, b.stats.catchup_records);
  EXPECT_EQ(a.stats.frames_shipped, b.stats.frames_shipped);

  // A different seed still loses nothing but stamps different terms.
  TempDir dir_c;
  DrillOutcome c = RunLeaderKillDrill(dir_c.path(), kSeed + 1,
                                      kCrashAtCommit);
  EXPECT_EQ(c.stats.leader_crashes, 1u);
  EXPECT_NE(a.election_terms, c.election_terms);
}

TEST_F(ReplTest, HopsFsRunsOnShardedStoreWithPerShardInodeRanges) {
  ReplOptions opt;
  opt.num_shards = 4;
  opt.followers_per_shard = 1;
  auto store = OpenOrDie(opt);
  dfs::HopsFsCluster cluster(dfs::HopsFsCluster::Options{}, store.get(),
                             opt.num_shards);
  dfs::HopsFsNameNode nn(&cluster);
  ASSERT_TRUE(nn.Mkdir("/data").ok());
  std::set<int64_t> ids;
  std::set<int64_t> ranges;
  for (int i = 0; i < 12; ++i) {
    const std::string path = common::StrFormat("/data/f%02d", i);
    ASSERT_TRUE(nn.Create(path, 64, std::string(64, 'x')).ok());
    auto info = nn.GetFileInfo(path);
    ASSERT_TRUE(info.ok());
    EXPECT_TRUE(ids.insert(info->inode_id).second) << "duplicate inode id";
    ranges.insert((info->inode_id - 2) / dfs::HopsFsCluster::kIdShardRange);
  }
  // Round-robin allocation spreads ids across every shard's range.
  EXPECT_EQ(ranges.size(), 4u);
  auto listing = nn.List("/data");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 12u);
  auto content = nn.ReadFile("/data/f03");
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content->size(), 64u);
  ASSERT_TRUE(nn.Rename("/data/f03", "/data/g03").ok());
  EXPECT_TRUE(nn.GetFileInfo("/data/f03").status().IsNotFound());
  ASSERT_TRUE(nn.Remove("/data/g03").ok());
  auto du = nn.DiskUsage("/data");
  ASSERT_TRUE(du.ok());
  EXPECT_EQ(*du, 64u * 11);
  ASSERT_TRUE(nn.RemoveRecursive("/data").ok());
  EXPECT_TRUE(nn.GetFileInfo("/data").status().IsNotFound());
}

TEST_F(ReplTest, HopsFsOnReplicatedStoreSurvivesRestartWithoutIdCollisions) {
  TempDir dir;
  ReplOptions opt;
  opt.num_shards = 2;
  opt.followers_per_shard = 1;
  opt.data_dir = dir.path();
  std::set<int64_t> ids;
  {
    auto store = OpenOrDie(opt);
    dfs::HopsFsCluster cluster(dfs::HopsFsCluster::Options{}, store.get(),
                               opt.num_shards);
    dfs::HopsFsNameNode nn(&cluster);
    ASSERT_TRUE(nn.Mkdir("/a").ok());
    for (int i = 0; i < 8; ++i) {
      const std::string path = common::StrFormat("/a/f%02d", i);
      ASSERT_TRUE(nn.Create(path, 8, "12345678").ok());
      auto info = nn.GetFileInfo(path);
      ASSERT_TRUE(info.ok());
      ASSERT_TRUE(ids.insert(info->inode_id).second);
    }
  }
  // Reopen the replicated store from its WALs; the new cluster must see
  // the old namespace and resume every shard's id range past it.
  auto store = OpenOrDie(opt);
  dfs::HopsFsCluster cluster(dfs::HopsFsCluster::Options{}, store.get(),
                             opt.num_shards);
  dfs::HopsFsNameNode nn(&cluster);
  auto listing = nn.List("/a");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 8u);
  auto old = nn.ReadFile("/a/f00");
  ASSERT_TRUE(old.ok());
  EXPECT_EQ(*old, "12345678");
  for (int i = 8; i < 16; ++i) {
    const std::string path = common::StrFormat("/a/f%02d", i);
    ASSERT_TRUE(nn.Create(path, 8, "abcdefgh").ok());
    auto info = nn.GetFileInfo(path);
    ASSERT_TRUE(info.ok());
    EXPECT_TRUE(ids.insert(info->inode_id).second)
        << path << ": resumed allocator re-issued inode id "
        << info->inode_id;
  }
}

TEST_F(ReplTest, FollowerReplicasServeFederatedReads) {
  ReplOptions opt;
  opt.num_shards = 2;
  opt.followers_per_shard = 1;
  auto store = OpenOrDie(opt);
  for (int i = 0; i < 24; ++i) {
    ASSERT_TRUE(
        store->Put(common::StrFormat("fk%02d", i), "fv" +
                   std::to_string(i)).ok());
  }
  // One endpoint per shard, each backed by the shard's follower: a
  // disjoint scatter view of the keyspace that never touches a leader.
  ReplicaReadEndpoint e0(store.get(), 0, 1);
  ReplicaReadEndpoint e1(store.get(), 1, 1);
  EXPECT_EQ(e0.name(), "repl-s0r1");
  EXPECT_TRUE(e0.Advertises(kRowPredicate));
  fed::FederationEngine fed;
  fed.Register(&e0);
  fed.Register(&e1);

  rdf::Query query;
  query.where.push_back(rdf::TriplePattern{
      rdf::PatternSlot::Var("k"), rdf::PatternSlot::Iri(kRowPredicate),
      rdf::PatternSlot::Var("v")});
  fed::FederationOptions fopt;
  fed::FederationStats stats;
  auto rows = fed.Execute(query, fopt, {}, nullptr, &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 24u);
  EXPECT_EQ(stats.endpoints_contacted, 2u);
  std::set<std::string> keys;
  for (const fed::FedBinding& row : *rows) {
    keys.insert(row.at("k").value);
    EXPECT_EQ(row.at("v").value.substr(0, 2), "fv");
  }
  EXPECT_EQ(keys.size(), 24u);

  // Point lookup: constant subject resolves on exactly one shard.
  rdf::Query point;
  point.where.push_back(rdf::TriplePattern{
      rdf::PatternSlot::Of(rdf::Term::Literal("fk07")),
      rdf::PatternSlot::Iri(kRowPredicate), rdf::PatternSlot::Var("v")});
  auto one = fed.Execute(point, fopt, {}, nullptr, &stats);
  ASSERT_TRUE(one.ok());
  ASSERT_EQ(one->size(), 1u);
  EXPECT_EQ(one->at(0).at("v").value, "fv7");

  // A crashed follower flows through the standard partial_ok machinery:
  // the query survives on the surviving shard and names the lost source.
  store->CrashReplica(0, 1);
  fopt.partial_ok = true;
  fed::FederationStats degraded;
  auto partial = fed.Execute(query, fopt, {}, nullptr, &degraded);
  ASSERT_TRUE(partial.ok());
  EXPECT_LT(partial->size(), 24u);
  EXPECT_TRUE(degraded.partial);
  ASSERT_EQ(degraded.degraded_sources.size(), 1u);
  EXPECT_EQ(degraded.degraded_sources[0], "repl-s0r1");
}

TEST_F(ReplTest, ShardzAndPrometheusExposeRolesLagAndElections) {
  ReplOptions opt;
  opt.num_shards = 2;
  opt.followers_per_shard = 1;
  auto store = OpenOrDie(opt);
  ASSERT_TRUE(store->Put("k1", "v1").ok());
  store->CrashReplica(1, 0);  // force one election for the counter

  const std::string shardz = ShardzText(*store);
  EXPECT_NE(shardz.find("shards: 2"), std::string::npos) << shardz;
  EXPECT_NE(shardz.find("leader"), std::string::npos);
  EXPECT_NE(shardz.find("follower"), std::string::npos);
  EXPECT_NE(shardz.find("down"), std::string::npos);
  EXPECT_NE(shardz.find("elections: 1"), std::string::npos);

  const std::string prom = ReplPrometheusText(*store);
  EXPECT_NE(prom.find("# TYPE repl_lag_frames gauge"), std::string::npos);
  EXPECT_NE(prom.find("repl_lag_frames{shard=\"0\",replica=\"1\"} 0"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("# TYPE repl_elections_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("repl_elections_total{shard=\"1\"} 1"),
            std::string::npos)
      << prom;
}

}  // namespace
}  // namespace exearth::repl
