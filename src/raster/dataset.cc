#include "raster/dataset.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace exearth::raster {

using common::Result;
using common::Status;

void Dataset::Shuffle(common::Rng* rng) {
  for (size_t i = samples.size(); i > 1; --i) {
    size_t j = rng->Uniform(i);
    std::swap(samples[i - 1], samples[j]);
  }
}

std::pair<Dataset, Dataset> Dataset::Split(double train_fraction) const {
  Dataset train;
  Dataset test;
  train.feature_dim = test.feature_dim = feature_dim;
  train.num_classes = test.num_classes = num_classes;
  train.channels = test.channels = channels;
  train.patch_height = test.patch_height = patch_height;
  train.patch_width = test.patch_width = patch_width;
  const size_t cut = static_cast<size_t>(
      std::clamp(train_fraction, 0.0, 1.0) * static_cast<double>(samples.size()));
  train.samples.assign(samples.begin(), samples.begin() + cut);
  test.samples.assign(samples.begin() + cut, samples.end());
  return {std::move(train), std::move(test)};
}

std::vector<int64_t> Dataset::LabelHistogram() const {
  std::vector<int64_t> hist(static_cast<size_t>(num_classes), 0);
  for (const Sample& s : samples) {
    if (s.label >= 0 && s.label < num_classes) ++hist[static_cast<size_t>(s.label)];
  }
  return hist;
}

std::vector<std::pair<float, float>> Dataset::Standardize() {
  std::vector<std::pair<float, float>> stats(
      static_cast<size_t>(feature_dim), {0.0f, 1.0f});
  if (samples.empty()) return stats;
  std::vector<double> sum(static_cast<size_t>(feature_dim), 0.0);
  std::vector<double> sum2(static_cast<size_t>(feature_dim), 0.0);
  for (const Sample& s : samples) {
    for (int d = 0; d < feature_dim; ++d) {
      sum[static_cast<size_t>(d)] += s.features[static_cast<size_t>(d)];
      sum2[static_cast<size_t>(d)] +=
          static_cast<double>(s.features[static_cast<size_t>(d)]) *
          s.features[static_cast<size_t>(d)];
    }
  }
  const double n = static_cast<double>(samples.size());
  for (int d = 0; d < feature_dim; ++d) {
    double mean = sum[static_cast<size_t>(d)] / n;
    double var = sum2[static_cast<size_t>(d)] / n - mean * mean;
    double stddev = std::sqrt(std::max(1e-12, var));
    stats[static_cast<size_t>(d)] = {static_cast<float>(mean),
                                     static_cast<float>(stddev)};
  }
  ApplyStandardization(stats);
  return stats;
}

void Dataset::ApplyStandardization(
    const std::vector<std::pair<float, float>>& stats) {
  EEA_CHECK(static_cast<int>(stats.size()) == feature_dim);
  for (Sample& s : samples) {
    for (int d = 0; d < feature_dim; ++d) {
      auto [mean, stddev] = stats[static_cast<size_t>(d)];
      s.features[static_cast<size_t>(d)] =
          (s.features[static_cast<size_t>(d)] - mean) / stddev;
    }
  }
}

Dataset MakeEurosatLike(const EurosatOptions& options, uint64_t seed) {
  common::Rng rng(seed);
  Dataset ds;
  ds.num_classes = kNumLandCoverClasses;
  ds.channels = kS2Bands;
  ds.patch_height = options.patch_size;
  ds.patch_width = options.patch_size;
  ds.feature_dim = kS2Bands * options.patch_size * options.patch_size;
  ds.samples.reserve(static_cast<size_t>(options.num_samples));
  const int p = options.patch_size;
  for (int i = 0; i < options.num_samples; ++i) {
    auto main_cls = static_cast<LandCoverClass>(rng.Uniform(kNumLandCoverClasses));
    auto second_cls =
        static_cast<LandCoverClass>(rng.Uniform(kNumLandCoverClasses));
    const auto& main_sig = LandCoverSignature(main_cls);
    const auto& second_sig = LandCoverSignature(second_cls);
    // A random half-plane through the patch separates the main class from
    // the contaminating class (field edge / road / shoreline structure).
    bool mixed = rng.Bernoulli(options.mixed_fraction);
    double nx = rng.Gaussian(0, 1);
    double ny = rng.Gaussian(0, 1);
    double norm = std::sqrt(nx * nx + ny * ny) + 1e-9;
    nx /= norm;
    ny /= norm;
    // Offset so the contamination covers < 50% of the patch.
    double offset = rng.UniformDouble(0.15, 0.45) * p;
    Sample s;
    s.label = static_cast<int>(main_cls);
    s.features.resize(static_cast<size_t>(ds.feature_dim));
    for (int b = 0; b < kS2Bands; ++b) {
      for (int y = 0; y < p; ++y) {
        for (int x = 0; x < p; ++x) {
          double proj = nx * (x - p / 2.0) + ny * (y - p / 2.0);
          bool in_second = mixed && proj > offset;
          float base = in_second ? second_sig[static_cast<size_t>(b)]
                                 : main_sig[static_cast<size_t>(b)];
          float v = base +
                    static_cast<float>(rng.Gaussian(0, options.noise_stddev));
          s.features[static_cast<size_t>(b) * p * p +
                     static_cast<size_t>(y) * p + x] = std::max(0.0f, v);
        }
      }
    }
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

Result<Dataset> MakePatchDataset(const SentinelProduct& product,
                                 const ClassMap& labels, int num_classes,
                                 int patch_size, int stride) {
  const Raster& r = product.raster;
  if (labels.width() != r.width() || labels.height() != r.height()) {
    return Status::InvalidArgument("label map size != raster size");
  }
  if (patch_size <= 0 || stride <= 0) {
    return Status::InvalidArgument("patch_size and stride must be positive");
  }
  Dataset ds;
  ds.num_classes = num_classes;
  ds.channels = r.bands();
  ds.patch_height = patch_size;
  ds.patch_width = patch_size;
  ds.feature_dim = r.bands() * patch_size * patch_size;
  const bool has_mask = !product.cloud_mask.empty();
  std::vector<int> counts(static_cast<size_t>(num_classes));
  for (int y0 = 0; y0 + patch_size <= r.height(); y0 += stride) {
    for (int x0 = 0; x0 + patch_size <= r.width(); x0 += stride) {
      // Skip cloud-contaminated patches.
      bool cloudy = false;
      std::fill(counts.begin(), counts.end(), 0);
      for (int y = y0; y < y0 + patch_size && !cloudy; ++y) {
        for (int x = x0; x < x0 + patch_size; ++x) {
          if (has_mask && product.cloud_mask.at(x, y)) {
            cloudy = true;
            break;
          }
          uint8_t cls = labels.at(x, y);
          if (cls < num_classes) ++counts[cls];
        }
      }
      if (cloudy) continue;
      int best = 0;
      for (int c = 1; c < num_classes; ++c) {
        if (counts[static_cast<size_t>(c)] > counts[static_cast<size_t>(best)])
          best = c;
      }
      Sample s;
      s.label = best;
      s.features.resize(static_cast<size_t>(ds.feature_dim));
      size_t idx = 0;
      for (int b = 0; b < r.bands(); ++b) {
        for (int y = y0; y < y0 + patch_size; ++y) {
          for (int x = x0; x < x0 + patch_size; ++x) {
            s.features[idx++] = r.Get(b, x, y);
          }
        }
      }
      ds.samples.push_back(std::move(s));
    }
  }
  return ds;
}

Result<Dataset> MakeCropTimeSeriesDataset(
    const std::vector<SentinelProduct>& scenes, const ClassMap& crops,
    int max_samples, uint64_t seed) {
  if (scenes.empty()) return Status::InvalidArgument("no scenes");
  for (const SentinelProduct& p : scenes) {
    if (p.raster.width() != crops.width() ||
        p.raster.height() != crops.height()) {
      return Status::InvalidArgument("scene size != crop map size");
    }
    if (p.raster.bands() != kS2Bands) {
      return Status::InvalidArgument("crop time series needs S2 scenes");
    }
  }
  // Bands: B04 = red (index 3), B08 = NIR (index 7).
  constexpr int kRed = 3;
  constexpr int kNir = 7;
  common::Rng rng(seed);
  Dataset ds;
  ds.num_classes = kNumCropTypes;
  ds.feature_dim = static_cast<int>(scenes.size()) * 3;
  const int64_t total =
      static_cast<int64_t>(crops.width()) * crops.height();
  const int64_t want = std::min<int64_t>(max_samples, total);
  ds.samples.reserve(static_cast<size_t>(want));
  for (int64_t i = 0; i < want; ++i) {
    int x = static_cast<int>(rng.Uniform(static_cast<uint64_t>(crops.width())));
    int y =
        static_cast<int>(rng.Uniform(static_cast<uint64_t>(crops.height())));
    Sample s;
    s.label = crops.at(x, y);
    s.features.reserve(static_cast<size_t>(ds.feature_dim));
    for (const SentinelProduct& p : scenes) {
      if (!p.cloud_mask.empty() && p.cloud_mask.at(x, y)) {
        // Cloudy observation: fill with the neutral value (gap in the
        // series); real pipelines interpolate, the classifier must cope.
        s.features.push_back(0.0f);
        s.features.push_back(0.0f);
        s.features.push_back(0.0f);
        continue;
      }
      float red = p.raster.Get(kRed, x, y);
      float nir = p.raster.Get(kNir, x, y);
      float denom = nir + red;
      float ndvi = denom == 0.0f ? 0.0f : (nir - red) / denom;
      s.features.push_back(ndvi);
      s.features.push_back(nir);
      s.features.push_back(red);
    }
    ds.samples.push_back(std::move(s));
  }
  return ds;
}

Result<Dataset> MakeIceDataset(const SentinelProduct& sar_scene,
                               const ClassMap& ice, int patch_size,
                               int stride) {
  const Raster& r = sar_scene.raster;
  if (r.bands() != kS1Bands) {
    return Status::InvalidArgument("ice dataset needs a 2-band SAR scene");
  }
  EEA_ASSIGN_OR_RETURN(
      Dataset ds,
      MakePatchDataset(sar_scene, ice, kNumIceClasses, patch_size, stride));
  // SAR intensities are log-normal-ish; classify in dB space.
  for (Sample& s : ds.samples) {
    for (float& v : s.features) {
      v = 10.0f * std::log10(std::max(1e-6f, v));
    }
  }
  return ds;
}

}  // namespace exearth::raster
