// Property-based test sweeps (parameterized gtest): cross-cutting
// invariants checked over randomized inputs at multiple scales/seeds.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <tuple>

#include "common/fault.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "dfs/hopsfs.h"
#include "fed/federation.h"
#include "geo/geometry.h"
#include "geo/rtree.h"
#include "geo/wkt.h"
#include "kv/kvstore.h"
#include "link/entity_resolution.h"
#include "raster/dataset.h"
#include "rdf/triple_store.h"
#include "strabon/workload.h"

namespace exearth {
namespace {

// --- Geometry predicate invariants -----------------------------------------

// Generates a random geometry of any type.
geo::Geometry RandomGeometry(common::Rng* rng) {
  const double world = 100.0;
  switch (rng->Uniform(4)) {
    case 0:
      return geo::Geometry(geo::Point{rng->UniformDouble(0, world),
                                      rng->UniformDouble(0, world)});
    case 1: {
      geo::LineString ls;
      int n = static_cast<int>(rng->UniformInt(2, 6));
      for (int i = 0; i < n; ++i) {
        ls.points.push_back(geo::Point{rng->UniformDouble(0, world),
                                       rng->UniformDouble(0, world)});
      }
      return geo::Geometry(std::move(ls));
    }
    case 2: {
      return geo::Geometry(strabon::RandomPolygon(
          rng->UniformDouble(0, world), rng->UniformDouble(0, world),
          rng->UniformDouble(5, 30), static_cast<int>(rng->UniformInt(3, 10)),
          rng));
    }
    default: {
      geo::MultiPolygon mp;
      int parts = static_cast<int>(rng->UniformInt(1, 3));
      for (int i = 0; i < parts; ++i) {
        mp.polygons.push_back(strabon::RandomPolygon(
            rng->UniformDouble(0, world), rng->UniformDouble(0, world),
            rng->UniformDouble(5, 20),
            static_cast<int>(rng->UniformInt(3, 8)), rng));
      }
      return geo::Geometry(std::move(mp));
    }
  }
}

class GeometryPropertyTest : public testing::TestWithParam<uint64_t> {};

TEST_P(GeometryPropertyTest, PredicateConsistency) {
  common::Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    geo::Geometry a = RandomGeometry(&rng);
    geo::Geometry b = RandomGeometry(&rng);
    const bool inter = geo::Intersects(a, b);
    // Symmetry.
    EXPECT_EQ(inter, geo::Intersects(b, a));
    // Disjoint is the complement.
    EXPECT_EQ(geo::Disjoint(a, b), !inter);
    // Distance symmetry and compatibility with intersection.
    const double dab = geo::Distance(a, b);
    EXPECT_NEAR(dab, geo::Distance(b, a), 1e-9);
    if (inter) {
      EXPECT_NEAR(dab, 0.0, 1e-9);
    } else {
      EXPECT_GT(dab, 0.0);
    }
    // WithinDistance is monotone in the bound.
    if (geo::WithinDistance(a, b, 1.0)) {
      EXPECT_TRUE(geo::WithinDistance(a, b, 2.0));
    }
    // Contains implies Intersects and Within flips the arguments.
    if (geo::Contains(a, b)) {
      EXPECT_TRUE(inter);
      EXPECT_TRUE(geo::Within(b, a));
    }
    // Envelope containment is necessary for containment.
    if (geo::Contains(a, b)) {
      EXPECT_TRUE(a.Envelope().Contains(b.Envelope()));
    }
    // Everything is contained in (and intersects) itself.
    EXPECT_TRUE(geo::Intersects(a, a));
    // Distance to envelope is a lower bound on geometry distance.
    EXPECT_LE(a.Envelope().Distance(b.Envelope()), dab + 1e-9);
  }
}

TEST_P(GeometryPropertyTest, WktRoundTripPreservesShape) {
  common::Rng rng(GetParam() + 1000);
  for (int trial = 0; trial < 40; ++trial) {
    geo::Geometry g = RandomGeometry(&rng);
    auto parsed = geo::ParseWkt(geo::ToWkt(g));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(parsed->type(), g.type());
    EXPECT_EQ(parsed->NumVertices(), g.NumVertices());
    // 6-decimal serialization keeps area within a small tolerance.
    EXPECT_NEAR(parsed->Area(), g.Area(), 1e-3 * std::max(1.0, g.Area()));
    geo::Box e1 = g.Envelope();
    geo::Box e2 = parsed->Envelope();
    EXPECT_NEAR(e1.min_x, e2.min_x, 1e-5);
    EXPECT_NEAR(e1.max_y, e2.max_y, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeometryPropertyTest,
                         testing::Values(1, 2, 3, 4, 5));

// --- R-tree: insertion and bulk load agree with brute force -----------------

class RTreePropertyTest
    : public testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(RTreePropertyTest, InsertAndBulkLoadAgree) {
  auto [n, seed] = GetParam();
  common::Rng rng(seed);
  std::vector<geo::RTree::Entry> entries;
  geo::RTree incremental;
  for (int i = 0; i < n; ++i) {
    double x = rng.UniformDouble(0, 1000);
    double y = rng.UniformDouble(0, 1000);
    double w = rng.UniformDouble(0, 10);
    geo::Box b = geo::Box::Of(x, y, x + w, y + w);
    entries.push_back({b, i});
    incremental.Insert(b, i);
  }
  geo::RTree bulk = geo::RTree::BulkLoad(entries);
  for (int q = 0; q < 25; ++q) {
    double x = rng.UniformDouble(0, 900);
    double y = rng.UniformDouble(0, 900);
    geo::Box query = geo::Box::Of(x, y, x + 80, y + 80);
    auto a = incremental.Query(query);
    auto b = bulk.Query(query);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
    // And both match brute force.
    std::vector<int64_t> expected;
    for (const auto& e : entries) {
      if (e.box.Intersects(query)) expected.push_back(e.id);
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(a, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RTreePropertyTest,
    testing::Combine(testing::Values(10, 100, 1000, 5000),
                     testing::Values(uint64_t{7}, uint64_t{8})));

// --- KV store: linearizable counter under varying partitions ----------------

class KvPropertyTest : public testing::TestWithParam<int> {};

TEST_P(KvPropertyTest, ReadModifyWriteNeverLosesUpdates) {
  const int partitions = GetParam();
  kv::KvStore store(partitions);
  ASSERT_TRUE(store.Put("c", "0").ok());
  constexpr int kThreads = 3;
  constexpr int kIncrements = 120;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store] {
      for (int i = 0; i < kIncrements; ++i) {
        while (true) {
          auto txn = store.Begin();
          auto v = txn->Get("c");
          if (!v.ok()) {
            txn->Abort();
            continue;
          }
          int64_t n = 0;
          ASSERT_TRUE(common::ParseInt64(*v, &n));
          if (!txn->Put("c", std::to_string(n + 1)).ok()) {
            txn->Abort();
            continue;
          }
          if (txn->Commit().ok()) break;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(*store.Get("c"), std::to_string(kThreads * kIncrements));
}

TEST_P(KvPropertyTest, ScanPrefixSeesAllCommitted) {
  const int partitions = GetParam();
  kv::KvStore store(partitions);
  std::set<std::string> expected;
  common::Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    std::string key = common::StrFormat("scan/%03d", i);
    ASSERT_TRUE(store.Put(key, "v").ok());
    expected.insert(key);
  }
  auto rows = store.ScanPrefix("scan/");
  ASSERT_EQ(rows.size(), expected.size());
  EXPECT_TRUE(std::is_sorted(rows.begin(), rows.end()));
  for (const auto& [k, v] : rows) EXPECT_TRUE(expected.count(k));
}

INSTANTIATE_TEST_SUITE_P(Partitions, KvPropertyTest,
                         testing::Values(1, 2, 8, 32));

// --- TripleStore: Count == Match.size() over random patterns ----------------

class TripleStorePropertyTest : public testing::TestWithParam<int> {};

TEST_P(TripleStorePropertyTest, CountMatchesMaterialization) {
  const int n = GetParam();
  rdf::TripleStore store;
  common::Rng rng(n);
  const int subjects = std::max(2, n / 10);
  const int predicates = 5;
  const int objects = std::max(2, n / 20);
  for (int i = 0; i < n; ++i) {
    store.Add(
        rdf::Term::Iri(common::StrFormat(
            "s%llu", (unsigned long long)rng.Uniform(subjects))),
        rdf::Term::Iri(common::StrFormat(
            "p%llu", (unsigned long long)rng.Uniform(predicates))),
        rdf::Term::Iri(common::StrFormat(
            "o%llu", (unsigned long long)rng.Uniform(objects))));
  }
  store.Build();
  // All eight bound/unbound combinations on random constants.
  for (int trial = 0; trial < 40; ++trial) {
    rdf::IdPattern q;
    if (rng.Bernoulli(0.5)) {
      auto id = store.dict().Lookup(rdf::Term::Iri(common::StrFormat(
          "s%llu", (unsigned long long)rng.Uniform(subjects))));
      if (id) q.s = *id;
    }
    if (rng.Bernoulli(0.5)) {
      auto id = store.dict().Lookup(rdf::Term::Iri(common::StrFormat(
          "p%llu", (unsigned long long)rng.Uniform(predicates))));
      if (id) q.p = *id;
    }
    if (rng.Bernoulli(0.5)) {
      auto id = store.dict().Lookup(rdf::Term::Iri(common::StrFormat(
          "o%llu", (unsigned long long)rng.Uniform(objects))));
      if (id) q.o = *id;
    }
    auto matches = store.Match(q);
    EXPECT_EQ(store.Count(q), matches.size());
    // Every match satisfies the pattern.
    for (const auto& t : matches) {
      if (q.s) EXPECT_EQ(t.s, *q.s);
      if (q.p) EXPECT_EQ(t.p, *q.p);
      if (q.o) EXPECT_EQ(t.o, *q.o);
    }
  }
  // Predicate stats sum to the store size.
  uint64_t sum = 0;
  for (auto& [p, c] : store.PredicateStats()) sum += c;
  EXPECT_EQ(sum, store.size());
}

INSTANTIATE_TEST_SUITE_P(Sizes, TripleStorePropertyTest,
                         testing::Values(50, 500, 5000));

// --- Meta-blocking: candidates are always a subset of token blocking --------

class BlockingPropertyTest
    : public testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(BlockingPropertyTest, PruningOnlyRemovesCandidates) {
  auto [records, noise] = GetParam();
  link::ErWorkloadOptions opt;
  opt.num_records = records;
  opt.noise = noise;
  opt.seed = 5;
  link::ErDataset ds = link::MakeDirtyErDataset(opt);
  auto match = link::JaccardMatcher(0.45);
  link::BlockingOptions bopt;
  auto token = link::ResolveWithTokenBlocking(ds.entities, match, bopt);
  auto meta = link::ResolveWithMetaBlocking(ds.entities, match, bopt);
  EXPECT_LE(meta.candidate_pairs, token.candidate_pairs);
  // Meta-blocking's matches are a subset of token blocking's.
  std::set<std::pair<int64_t, int64_t>> token_set(token.matches.begin(),
                                                  token.matches.end());
  for (const auto& pair : meta.matches) {
    EXPECT_TRUE(token_set.count(pair));
  }
  // Both stay well below the quadratic comparison count.
  const uint64_t n = ds.entities.size();
  EXPECT_LT(token.comparisons, n * (n - 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, BlockingPropertyTest,
    testing::Combine(testing::Values(200, 600),
                     testing::Values(0.1, 0.25)));

// --- Dataset invariants -------------------------------------------------

class DatasetPropertyTest : public testing::TestWithParam<int> {};

TEST_P(DatasetPropertyTest, SplitPreservesSamples) {
  raster::EurosatOptions opt;
  opt.num_samples = GetParam();
  opt.patch_size = 2;
  raster::Dataset ds = raster::MakeEurosatLike(opt, 3);
  common::Rng rng(4);
  ds.Shuffle(&rng);
  auto [train, test] = ds.Split(0.7);
  EXPECT_EQ(train.size() + test.size(), ds.size());
  auto h = ds.LabelHistogram();
  auto ht = train.LabelHistogram();
  auto hv = test.LabelHistogram();
  for (size_t c = 0; c < h.size(); ++c) {
    EXPECT_EQ(h[c], ht[c] + hv[c]);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, DatasetPropertyTest,
                         testing::Values(10, 100, 1000));

// --- Fault-schedule invariants (ctest label: faults) ------------------------

// Guard: the process-wide injector must not leak rules between tests.
class FaultScheduleTest
    : public testing::TestWithParam<std::tuple<int, uint64_t>> {
 protected:
  void SetUp() override { common::FaultInjector::Default().Reset(); }
  void TearDown() override { common::FaultInjector::Default().Reset(); }
};

// A randomized concurrent HopsFS workload under injected commit
// conflicts: whatever mix of successes and exhausted-retry failures the
// schedule produces, no create may be lost (reported OK but absent) or
// duplicated (reported failed but present / listed twice).
TEST_P(FaultScheduleTest, HopsFsWorkloadLosesNoOperations) {
  const auto [threads, seed] = GetParam();
  auto& inj = common::FaultInjector::Default();
  inj.set_seed(seed);
  ASSERT_TRUE(inj.ProgramSpec("dfs.txn.commit:0.2=aborted").ok());

  dfs::HopsFsCluster::Options opt;
  opt.max_txn_retries = 4;
  opt.retry_initial_backoff_us = 1;
  opt.retry_max_backoff_us = 8;
  opt.retry_seed = seed;
  dfs::HopsFsCluster cluster(opt);
  dfs::HopsFsNameNode nn(&cluster);
  ASSERT_TRUE(nn.Mkdir("/d").ok());

  const int files_per_thread = 40;
  std::vector<std::vector<bool>> created(
      static_cast<size_t>(threads),
      std::vector<bool>(files_per_thread, false));
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      common::Rng rng(seed * 1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < files_per_thread; ++i) {
        const std::string path = common::StrFormat("/d/t%d_f%d", t, i);
        const auto size = rng.UniformInt(1, 64);
        const common::Status s =
            nn.Create(path, static_cast<uint64_t>(size),
                      std::string(static_cast<size_t>(size), 'x'));
        if (s.ok()) {
          created[static_cast<size_t>(t)][static_cast<size_t>(i)] = true;
        } else {
          EXPECT_TRUE(s.IsAborted()) << path << ": " << s;
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  const uint64_t retries_seen = cluster.txn_retries();
  inj.Reset();  // verification reads must not be fault-injected

  auto listed = nn.List("/d");
  ASSERT_TRUE(listed.ok());
  const std::set<std::string> names(listed->begin(), listed->end());
  EXPECT_EQ(names.size(), listed->size());  // no duplicates
  size_t expected = 0;
  for (int t = 0; t < threads; ++t) {
    for (int i = 0; i < files_per_thread; ++i) {
      const std::string name = common::StrFormat("t%d_f%d", t, i);
      if (created[static_cast<size_t>(t)][static_cast<size_t>(i)]) {
        ++expected;
        EXPECT_TRUE(names.count(name)) << "lost: " << name;
        EXPECT_TRUE(nn.GetFileInfo("/d/" + name).ok());
      } else {
        EXPECT_FALSE(names.count(name)) << "ghost: " << name;
      }
    }
  }
  EXPECT_EQ(names.size(), expected);
  // With a 20% conflict rate over ~hundreds of commits the schedule
  // certainly retried somewhere (deterministic per seed).
  EXPECT_GT(retries_seen, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, FaultScheduleTest,
    testing::Combine(testing::Values(1, 4),
                     testing::Values(uint64_t{7}, uint64_t{23})));

// Parallel and serial federation execution see the same per-endpoint
// fault schedule (decisions are a pure function of seed, point name and
// per-point call number), so they must return identical rows and stats.
class FederationFaultEquivalenceTest
    : public testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override { common::FaultInjector::Default().Reset(); }
  void TearDown() override { common::FaultInjector::Default().Reset(); }
};

TEST_P(FederationFaultEquivalenceTest, ParallelMatchesSerialUnderFaults) {
  const uint64_t seed = GetParam();
  common::Rng rng(seed);
  std::vector<std::unique_ptr<fed::Endpoint>> endpoints;
  fed::FederationEngine engine;
  // A handful of endpoints sharing one predicate so a broadcast query
  // fans out to all of them.
  const int num_endpoints = 5;
  for (int e = 0; e < num_endpoints; ++e) {
    rdf::TripleStore store;
    const int rows = static_cast<int>(rng.UniformInt(5, 40));
    for (int i = 0; i < rows; ++i) {
      store.Add(rdf::Term::Iri(common::StrFormat("http://x/e%d/%d", e, i)),
                rdf::Term::Iri(rdf::vocab::kLabel),
                rdf::Term::Literal(common::StrFormat("label %d/%d", e, i)));
    }
    endpoints.push_back(std::make_unique<fed::Endpoint>(
        common::StrFormat("ep%d", e), std::move(store)));
    engine.Register(endpoints.back().get());
  }
  rdf::Query q;
  q.where.push_back(rdf::TriplePattern{rdf::PatternSlot::Var("s"),
                                       rdf::PatternSlot::Iri(rdf::vocab::kLabel),
                                       rdf::PatternSlot::Var("label")});
  fed::FederationOptions opt;
  opt.source_selection = false;  // broadcast
  opt.partial_ok = true;
  opt.retry.max_attempts = 3;
  opt.retry.initial_backoff_us = 1;
  opt.retry.max_backoff_us = 8;
  opt.retry_seed = seed;

  auto run = [&](size_t threads) {
    auto& inj = common::FaultInjector::Default();
    inj.Reset();
    inj.set_seed(seed);
    EXPECT_TRUE(inj.ProgramSpec("fed.endpoint.call:0.35").ok());
    engine.set_num_threads(threads);
    fed::FederationStats stats;
    auto rows = engine.Execute(q, opt, {}, nullptr, &stats);
    EXPECT_TRUE(rows.ok()) << rows.status();
    // Serialize rows so result sets compare order-independently (Term
    // has no operator<).
    std::vector<std::string> sorted;
    for (const auto& row : *rows) {
      std::string line;
      for (const auto& [var, term] : row) {
        line += var + "=" + term.ToString() + ";";
      }
      sorted.push_back(std::move(line));
    }
    std::sort(sorted.begin(), sorted.end());
    return std::make_pair(std::move(sorted), stats);
  };
  const auto [serial_rows, serial_stats] = run(1);
  const auto [parallel_rows, parallel_stats] = run(4);
  EXPECT_EQ(serial_rows, parallel_rows);
  EXPECT_EQ(serial_stats.endpoint_failures, parallel_stats.endpoint_failures);
  EXPECT_EQ(serial_stats.retries, parallel_stats.retries);
  EXPECT_EQ(serial_stats.endpoints_skipped, parallel_stats.endpoints_skipped);
  EXPECT_EQ(serial_stats.degraded_sources, parallel_stats.degraded_sources);
  EXPECT_EQ(serial_stats.partial, parallel_stats.partial);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FederationFaultEquivalenceTest,
                         testing::Values(uint64_t{1}, uint64_t{13},
                                         uint64_t{99}));

}  // namespace
}  // namespace exearth
