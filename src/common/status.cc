#include "common/status.h"

namespace exearth::common {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace exearth::common
