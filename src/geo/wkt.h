// Well-Known Text (WKT) reading and writing for the geometry types in
// geo/geometry.h. Supports POINT, LINESTRING, POLYGON, MULTIPOLYGON.
//
// WKT is the literal serialization used by stSPARQL/GeoSPARQL geometry
// literals (strabon module) and by the GeoTriples mapping engine.

#ifndef EXEARTH_GEO_WKT_H_
#define EXEARTH_GEO_WKT_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "geo/geometry.h"

namespace exearth::geo {

/// Parses a WKT string into a Geometry. Returns InvalidArgument on
/// malformed input. Accepts optional whitespace per the OGC grammar.
common::Result<Geometry> ParseWkt(std::string_view wkt);

/// Serializes a geometry as WKT with up to 6 decimal digits per coordinate.
std::string ToWkt(const Geometry& g);
std::string ToWkt(const Point& p);
std::string ToWkt(const Box& b);  // as a POLYGON

}  // namespace exearth::geo

#endif  // EXEARTH_GEO_WKT_H_
