file(REMOVE_RECURSE
  "CMakeFiles/eea_common.dir/logging.cc.o"
  "CMakeFiles/eea_common.dir/logging.cc.o.d"
  "CMakeFiles/eea_common.dir/status.cc.o"
  "CMakeFiles/eea_common.dir/status.cc.o.d"
  "CMakeFiles/eea_common.dir/string_util.cc.o"
  "CMakeFiles/eea_common.dir/string_util.cc.o.d"
  "CMakeFiles/eea_common.dir/thread_pool.cc.o"
  "CMakeFiles/eea_common.dir/thread_pool.cc.o.d"
  "libeea_common.a"
  "libeea_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eea_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
