# Empty compiler generated dependencies file for eea_rdf.
# This may be replaced when dependencies are built.
