file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_small_files.dir/bench_e4_small_files.cc.o"
  "CMakeFiles/bench_e4_small_files.dir/bench_e4_small_files.cc.o.d"
  "bench_e4_small_files"
  "bench_e4_small_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_small_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
