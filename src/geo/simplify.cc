#include "geo/simplify.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace exearth::geo {

namespace {

// Recursive Douglas-Peucker over points[begin..end] (inclusive anchors).
void DouglasPeucker(const std::vector<Point>& points, size_t begin,
                    size_t end, double tolerance, std::vector<bool>* keep) {
  if (end <= begin + 1) return;
  double worst = -1.0;
  size_t worst_idx = begin;
  for (size_t i = begin + 1; i < end; ++i) {
    double d = PointSegmentDistance(points[i], points[begin], points[end]);
    if (d > worst) {
      worst = d;
      worst_idx = i;
    }
  }
  if (worst > tolerance) {
    (*keep)[worst_idx] = true;
    DouglasPeucker(points, begin, worst_idx, tolerance, keep);
    DouglasPeucker(points, worst_idx, end, tolerance, keep);
  }
}

double Cross(const Point& o, const Point& a, const Point& b) {
  return (a.x - o.x) * (b.y - o.y) - (a.y - o.y) * (b.x - o.x);
}

}  // namespace

LineString Simplify(const LineString& line, double tolerance) {
  const auto& pts = line.points;
  if (pts.size() <= 2) return line;
  std::vector<bool> keep(pts.size(), false);
  keep.front() = keep.back() = true;
  DouglasPeucker(pts, 0, pts.size() - 1, tolerance, &keep);
  LineString out;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (keep[i]) out.points.push_back(pts[i]);
  }
  return out;
}

Ring Simplify(const Ring& ring, double tolerance) {
  const auto& pts = ring.points;
  if (pts.size() <= 3) return ring;
  // Anchor on the two farthest-apart vertices so the split halves are
  // well-conditioned, then run DP on each arc.
  size_t a = 0;
  size_t b = 1;
  double best = -1.0;
  for (size_t i = 0; i < pts.size(); ++i) {
    for (size_t j = i + 1; j < pts.size(); ++j) {
      double d = Distance(pts[i], pts[j]);
      if (d > best) {
        best = d;
        a = i;
        b = j;
      }
    }
  }
  // Rotate so `a` is index 0; b becomes b-a.
  std::vector<Point> rotated;
  rotated.reserve(pts.size() + 1);
  for (size_t i = 0; i < pts.size(); ++i) {
    rotated.push_back(pts[(a + i) % pts.size()]);
  }
  rotated.push_back(rotated[0]);  // close for the second arc
  const size_t mid = (b + pts.size() - a) % pts.size();
  std::vector<bool> keep(rotated.size(), false);
  keep[0] = keep[mid] = true;
  DouglasPeucker(rotated, 0, mid, tolerance, &keep);
  DouglasPeucker(rotated, mid, rotated.size() - 1, tolerance, &keep);
  Ring out;
  for (size_t i = 0; i + 1 < rotated.size(); ++i) {  // drop closing vertex
    if (keep[i]) out.points.push_back(rotated[i]);
  }
  if (out.points.size() < 3) return ring;  // refuse to degenerate
  return out;
}

Polygon Simplify(const Polygon& polygon, double tolerance) {
  Polygon out;
  out.outer = Simplify(polygon.outer, tolerance);
  for (const Ring& hole : polygon.holes) {
    Ring simplified = Simplify(hole, tolerance);
    if (simplified.points.size() >= 3) {
      out.holes.push_back(std::move(simplified));
    }
  }
  return out;
}

Ring ConvexHull(std::vector<Point> points) {
  std::sort(points.begin(), points.end(), [](const Point& a, const Point& b) {
    if (a.x != b.x) return a.x < b.x;
    return a.y < b.y;
  });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  Ring hull;
  const size_t n = points.size();
  if (n < 3) {
    hull.points = std::move(points);
    return hull;
  }
  std::vector<Point> h(2 * n);
  size_t k = 0;
  // Lower hull.
  for (size_t i = 0; i < n; ++i) {
    while (k >= 2 && Cross(h[k - 2], h[k - 1], points[i]) <= 0) --k;
    h[k++] = points[i];
  }
  // Upper hull.
  const size_t lower = k + 1;
  for (size_t i = n - 1; i-- > 0;) {
    while (k >= lower && Cross(h[k - 2], h[k - 1], points[i]) <= 0) --k;
    h[k++] = points[i];
  }
  h.resize(k - 1);  // last point equals the first
  hull.points = std::move(h);
  return hull;
}

}  // namespace exearth::geo
