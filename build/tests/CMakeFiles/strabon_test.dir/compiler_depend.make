# Empty compiler generated dependencies file for strabon_test.
# This may be replaced when dependencies are built.
