#include "polar/ice_products.h"

#include <algorithm>
#include <cstring>
#include <cmath>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace exearth::polar {

using common::Result;
using common::Status;

Result<IceChart> MakeIceChart(const raster::ClassMap& pixel_classes,
                              const raster::GeoTransform& transform,
                              int cell_pixels) {
  const int w = pixel_classes.width();
  const int h = pixel_classes.height();
  if (cell_pixels <= 0 || w % cell_pixels != 0 || h % cell_pixels != 0) {
    return Status::InvalidArgument(common::StrFormat(
        "cell_pixels %d does not divide %dx%d", cell_pixels, w, h));
  }
  const int cw = w / cell_pixels;
  const int ch = h / cell_pixels;
  raster::GeoTransform cell_transform = transform;
  cell_transform.pixel_size = transform.pixel_size * cell_pixels;
  IceChart chart;
  chart.cell_pixels = cell_pixels;
  chart.concentration = raster::Raster(cw, ch, 1, cell_transform);
  chart.lead_fraction = raster::Raster(cw, ch, 1, cell_transform);
  chart.dominant = raster::ClassMap(cw, ch);
  std::vector<int> counts(raster::kNumIceClasses);
  for (int cy = 0; cy < ch; ++cy) {
    for (int cx = 0; cx < cw; ++cx) {
      std::fill(counts.begin(), counts.end(), 0);
      for (int dy = 0; dy < cell_pixels; ++dy) {
        for (int dx = 0; dx < cell_pixels; ++dx) {
          uint8_t cls = pixel_classes.at(cx * cell_pixels + dx,
                                         cy * cell_pixels + dy);
          if (cls < raster::kNumIceClasses) ++counts[cls];
        }
      }
      const int total = cell_pixels * cell_pixels;
      const int water = counts[static_cast<int>(raster::IceClass::kOpenWater)];
      const int ice = total - water;
      chart.concentration.Set(0, cx, cy,
                              static_cast<float>(ice) / total);
      // Dominant *ice* class (ignoring water) when there is ice; water
      // cells keep kOpenWater.
      int best = static_cast<int>(raster::IceClass::kOpenWater);
      if (ice > 0) {
        best = 1;
        for (int c = 2; c < raster::kNumIceClasses; ++c) {
          if (counts[c] > counts[best]) best = c;
        }
      }
      chart.dominant.at(cx, cy) = static_cast<uint8_t>(best);
      // Leads: open water inside ice-covered cells (> 50% ice).
      float leads = 0.0f;
      if (ice * 2 > total) {
        leads = static_cast<float>(water) / total;
      }
      chart.lead_fraction.Set(0, cx, cy, leads);
    }
  }
  return chart;
}

std::vector<double> StageOfDevelopmentFractions(const IceChart& chart) {
  std::vector<double> fractions(raster::kNumIceClasses, 0.0);
  const auto& map = chart.dominant;
  if (map.size() == 0) return fractions;
  for (uint8_t v : map.data()) {
    if (v < raster::kNumIceClasses) fractions[v] += 1.0;
  }
  for (double& f : fractions) f /= static_cast<double>(map.size());
  return fractions;
}

raster::ClassMap MajorityFilter(const raster::ClassMap& map, int radius,
                                int num_classes) {
  EEA_CHECK(radius >= 0 && num_classes > 0);
  const int w = map.width();
  const int h = map.height();
  raster::ClassMap out(w, h);
  std::vector<int> counts(static_cast<size_t>(num_classes));
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      std::fill(counts.begin(), counts.end(), 0);
      for (int dy = -radius; dy <= radius; ++dy) {
        for (int dx = -radius; dx <= radius; ++dx) {
          uint8_t v = map.at_clamped(x + dx, y + dy);
          if (v < num_classes) ++counts[v];
        }
      }
      int best = 0;
      for (int c = 1; c < num_classes; ++c) {
        if (counts[static_cast<size_t>(c)] > counts[static_cast<size_t>(best)])
          best = c;
      }
      out.at(x, y) = static_cast<uint8_t>(best);
    }
  }
  return out;
}

namespace {

// Payload layout:
//   u16 width, u16 height, u8 cell_pixels,
//   f64 origin_x, f64 origin_y, f64 pixel_size,
//   RLE stream of (count u8, value u8) where value packs
//   (concentration_tenths << 4) | dominant_class.
void PutU16(std::vector<uint8_t>* out, uint16_t v) {
  out->push_back(static_cast<uint8_t>(v & 0xff));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

uint16_t GetU16(const std::vector<uint8_t>& in, size_t* pos) {
  uint16_t v = static_cast<uint16_t>(in[*pos] | (in[*pos + 1] << 8));
  *pos += 2;
  return v;
}

void PutF64(std::vector<uint8_t>* out, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(bits >> (8 * i)));
  }
}

double GetF64(const std::vector<uint8_t>& in, size_t* pos) {
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(in[*pos + static_cast<size_t>(i)])
            << (8 * i);
  }
  *pos += 8;
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

uint8_t PackCell(float concentration, uint8_t dominant) {
  int tenths = static_cast<int>(std::lround(concentration * 10.0f));
  tenths = std::clamp(tenths, 0, 10);
  // 4 bits hold 0..10; dominant class fits in 4 bits (5 classes).
  return static_cast<uint8_t>((tenths << 4) | (dominant & 0x0f));
}

}  // namespace

std::vector<uint8_t> EncodePcdss(const IceChart& chart) {
  std::vector<uint8_t> out;
  const int w = chart.concentration.width();
  const int h = chart.concentration.height();
  PutU16(&out, static_cast<uint16_t>(w));
  PutU16(&out, static_cast<uint16_t>(h));
  out.push_back(static_cast<uint8_t>(chart.cell_pixels));
  const raster::GeoTransform& t = chart.concentration.transform();
  PutF64(&out, t.origin_x);
  PutF64(&out, t.origin_y);
  PutF64(&out, t.pixel_size);
  // RLE over row-major cells.
  uint8_t run_value = 0;
  int run_len = 0;
  auto flush = [&] {
    while (run_len > 0) {
      int chunk = std::min(run_len, 255);
      out.push_back(static_cast<uint8_t>(chunk));
      out.push_back(run_value);
      run_len -= chunk;
    }
  };
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      uint8_t v = PackCell(chart.concentration.Get(0, x, y),
                           chart.dominant.at(x, y));
      if (run_len > 0 && v == run_value) {
        ++run_len;
      } else {
        flush();
        run_value = v;
        run_len = 1;
      }
    }
  }
  flush();
  return out;
}

Result<IceChart> DecodePcdss(const std::vector<uint8_t>& payload) {
  if (payload.size() < 5 + 24) {
    return Status::InvalidArgument("PCDSS payload too short");
  }
  size_t pos = 0;
  const int w = GetU16(payload, &pos);
  const int h = GetU16(payload, &pos);
  const int cell_pixels = payload[pos++];
  raster::GeoTransform t;
  t.origin_x = GetF64(payload, &pos);
  t.origin_y = GetF64(payload, &pos);
  t.pixel_size = GetF64(payload, &pos);
  IceChart chart;
  chart.cell_pixels = cell_pixels;
  chart.concentration = raster::Raster(w, h, 1, t);
  chart.lead_fraction = raster::Raster(w, h, 1, t);
  chart.dominant = raster::ClassMap(w, h);
  int64_t cell = 0;
  const int64_t total = static_cast<int64_t>(w) * h;
  while (pos + 1 < payload.size() + 1 && pos + 2 <= payload.size()) {
    int count = payload[pos];
    uint8_t value = payload[pos + 1];
    pos += 2;
    for (int i = 0; i < count; ++i) {
      if (cell >= total) {
        return Status::InvalidArgument("PCDSS payload overflows grid");
      }
      int x = static_cast<int>(cell % w);
      int y = static_cast<int>(cell / w);
      chart.concentration.Set(0, x, y, static_cast<float>(value >> 4) / 10.0f);
      chart.dominant.at(x, y) = static_cast<uint8_t>(value & 0x0f);
      ++cell;
    }
  }
  if (cell != total) {
    return Status::InvalidArgument("PCDSS payload truncated");
  }
  return chart;
}

double TransferSeconds(size_t payload_bytes, double bits_per_second) {
  EEA_CHECK(bits_per_second > 0);
  return static_cast<double>(payload_bytes) * 8.0 / bits_per_second;
}


Result<raster::Raster> RidgeFraction(const raster::ClassMap& pixel_classes,
                                     const raster::SentinelProduct& sar_scene,
                                     int cell_pixels, double threshold_db) {
  const raster::Raster& r = sar_scene.raster;
  const int w = pixel_classes.width();
  const int h = pixel_classes.height();
  if (r.width() != w || r.height() != h || r.bands() < 1) {
    return Status::InvalidArgument("SAR scene does not match the class map");
  }
  if (cell_pixels <= 0 || w % cell_pixels != 0 || h % cell_pixels != 0) {
    return Status::InvalidArgument("cell_pixels must divide the scene");
  }
  const int cw = w / cell_pixels;
  const int ch = h / cell_pixels;
  raster::GeoTransform t = r.transform();
  t.pixel_size *= cell_pixels;
  raster::Raster out(cw, ch, 1, t);
  const uint8_t water = static_cast<uint8_t>(raster::IceClass::kOpenWater);
  const double factor = std::pow(10.0, threshold_db / 10.0);
  std::vector<float> ice_values;
  for (int cy = 0; cy < ch; ++cy) {
    for (int cx = 0; cx < cw; ++cx) {
      // The threshold is relative to the cell *median*: medians are robust
      // to the very bright outliers we are trying to detect, unlike means.
      ice_values.clear();
      for (int dy = 0; dy < cell_pixels; ++dy) {
        for (int dx = 0; dx < cell_pixels; ++dx) {
          int x = cx * cell_pixels + dx;
          int y = cy * cell_pixels + dy;
          if (pixel_classes.at(x, y) == water) continue;
          ice_values.push_back(r.Get(0, x, y));
        }
      }
      if (ice_values.empty()) {
        out.Set(0, cx, cy, 0.0f);
        continue;
      }
      auto mid = ice_values.begin() +
                 static_cast<ptrdiff_t>(ice_values.size() / 2);
      std::nth_element(ice_values.begin(), mid, ice_values.end());
      const double threshold = static_cast<double>(*mid) * factor;
      int64_t ridged = 0;
      for (float v : ice_values) {
        if (v > threshold) ++ridged;
      }
      out.Set(0, cx, cy, static_cast<float>(ridged) /
                             static_cast<float>(ice_values.size()));
    }
  }
  return out;
}

int64_t InjectRidges(raster::SentinelProduct* sar_scene,
                     const raster::ClassMap& ice_map, int count,
                     double brightness_boost_db, uint64_t seed) {
  common::Rng rng(seed);
  raster::Raster& r = sar_scene->raster;
  const int w = r.width();
  const int h = r.height();
  const uint8_t water = static_cast<uint8_t>(raster::IceClass::kOpenWater);
  const float boost =
      static_cast<float>(std::pow(10.0, brightness_boost_db / 10.0));
  int64_t painted = 0;
  for (int i = 0; i < count; ++i) {
    // A random line segment; only its ice pixels get brightened.
    double x = rng.UniformDouble(0, w);
    double y = rng.UniformDouble(0, h);
    double angle = rng.UniformDouble(0, 2 * M_PI);
    double len = rng.UniformDouble(0.1, 0.3) * std::min(w, h);
    const int steps = static_cast<int>(len);
    for (int s = 0; s < steps; ++s) {
      int px = static_cast<int>(x + std::cos(angle) * s);
      int py = static_cast<int>(y + std::sin(angle) * s);
      if (px < 0 || px >= w || py < 0 || py >= h) break;
      if (ice_map.at(px, py) == water) continue;
      for (int b = 0; b < r.bands(); ++b) {
        r.Set(b, px, py, r.Get(b, px, py) * boost);
      }
      ++painted;
    }
  }
  return painted;
}

}  // namespace exearth::polar
