#include "storage/page_chain.h"

#include <cstring>

namespace exearth::storage {

using common::Result;
using common::Status;

// --- PageChainWriter ---------------------------------------------------------

Status PageChainWriter::EnsurePage() {
  if (cur_.valid() && cur_used_ < kChainDataPerPage) return Status::OK();
  EEA_ASSIGN_OR_RETURN(PageHandle next, pool_->New());
  StoreU32(next.payload(), kInvalidPageId);
  StoreU16(next.payload() + 4, 0);
  next.MarkDirty();
  if (cur_.valid()) {
    // Seal the filled page: link it to the new tail.
    StoreU32(cur_.payload(), next.id());
    StoreU16(cur_.payload() + 4, static_cast<uint16_t>(cur_used_));
    cur_.MarkDirty();
  } else {
    head_ = next.id();
  }
  cur_ = std::move(next);  // unpins the filled page
  cur_used_ = 0;
  return Status::OK();
}

Status PageChainWriter::Write(const void* data, size_t len) {
  if (finished_) return Status::FailedPrecondition("chain already finished");
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    EEA_RETURN_NOT_OK(EnsurePage());
    const size_t room = kChainDataPerPage - cur_used_;
    const size_t n = len < room ? len : room;
    std::memcpy(cur_.payload() + kChainHeaderSize + cur_used_, p, n);
    cur_used_ += n;
    p += n;
    len -= n;
    bytes_written_ += n;
  }
  if (cur_.valid()) cur_.MarkDirty();
  return Status::OK();
}

Status PageChainWriter::WriteU32(uint32_t v) {
  char buf[4];
  StoreU32(buf, v);
  return Write(buf, sizeof(buf));
}

Status PageChainWriter::WriteU64(uint64_t v) {
  char buf[8];
  StoreU64(buf, v);
  return Write(buf, sizeof(buf));
}

Status PageChainWriter::WriteF64(double v) {
  char buf[8];
  StoreF64(buf, v);
  return Write(buf, sizeof(buf));
}

Status PageChainWriter::WriteString(const std::string& s) {
  EEA_RETURN_NOT_OK(WriteU32(static_cast<uint32_t>(s.size())));
  return Write(s.data(), s.size());
}

Result<PageId> PageChainWriter::Finish() {
  if (finished_) return Status::FailedPrecondition("chain already finished");
  finished_ = true;
  if (cur_.valid()) {
    StoreU16(cur_.payload() + 4, static_cast<uint16_t>(cur_used_));
    cur_.MarkDirty();
    cur_.Release();
  }
  return head_;
}

// --- PageChainReader ---------------------------------------------------------

Status PageChainReader::EnsurePage() {
  if (cur_.valid() && cur_off_ < cur_used_) return Status::OK();
  if (cur_.valid() && next_ == kInvalidPageId) {
    return Status::OutOfRange("read past end of page chain");
  }
  if (next_ == kInvalidPageId) {
    return Status::OutOfRange("read from empty page chain");
  }
  EEA_ASSIGN_OR_RETURN(PageHandle page, pool_->Fetch(next_));
  next_ = LoadU32(page.payload());
  cur_used_ = LoadU16(page.payload() + 4);
  cur_off_ = 0;
  cur_ = std::move(page);
  return Status::OK();
}

Status PageChainReader::Read(void* out, size_t len) {
  char* p = static_cast<char*>(out);
  while (len > 0) {
    EEA_RETURN_NOT_OK(EnsurePage());
    const size_t avail = cur_used_ - cur_off_;
    const size_t n = len < avail ? len : avail;
    std::memcpy(p, cur_.payload() + kChainHeaderSize + cur_off_, n);
    cur_off_ += n;
    p += n;
    len -= n;
  }
  return Status::OK();
}

Result<uint32_t> PageChainReader::ReadU32() {
  char buf[4];
  EEA_RETURN_NOT_OK(Read(buf, sizeof(buf)));
  return LoadU32(buf);
}

Result<uint64_t> PageChainReader::ReadU64() {
  char buf[8];
  EEA_RETURN_NOT_OK(Read(buf, sizeof(buf)));
  return LoadU64(buf);
}

Result<double> PageChainReader::ReadF64() {
  char buf[8];
  EEA_RETURN_NOT_OK(Read(buf, sizeof(buf)));
  return LoadF64(buf);
}

Result<std::string> PageChainReader::ReadString() {
  EEA_ASSIGN_OR_RETURN(uint32_t len, ReadU32());
  std::string s(len, '\0');
  EEA_RETURN_NOT_OK(Read(s.data(), len));
  return s;
}

bool PageChainReader::AtEnd() {
  if (next_ != kInvalidPageId) return false;
  return !cur_.valid() || cur_off_ >= cur_used_;
}

// --- FreeChain ---------------------------------------------------------------

Status FreeChain(BufferPool* pool, PageId head) {
  PageId id = head;
  while (id != kInvalidPageId) {
    PageId next;
    {
      EEA_ASSIGN_OR_RETURN(PageHandle page, pool->Fetch(id));
      next = LoadU32(page.payload());
    }
    EEA_RETURN_NOT_OK(pool->FreePage(id));
    id = next;
  }
  return Status::OK();
}

}  // namespace exearth::storage
