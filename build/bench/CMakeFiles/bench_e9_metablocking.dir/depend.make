# Empty dependencies file for bench_e9_metablocking.
# This may be replaced when dependencies are built.
