#include "common/query_profile.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/string_util.h"

namespace exearth::common {

namespace {

thread_local int g_profile_depth = 0;

std::string OperatorToJson(const OperatorProfile& op) {
  return StrFormat(
      "{\"name\": \"%s\", \"wall_us\": %.3f, \"rows_in\": %llu, "
      "\"rows_out\": %llu, \"envelope_hits\": %llu, \"chunks\": %llu, "
      "\"threads\": %llu}",
      JsonEscape(op.name).c_str(), op.wall_us,
      static_cast<unsigned long long>(op.rows_in),
      static_cast<unsigned long long>(op.rows_out),
      static_cast<unsigned long long>(op.envelope_hits),
      static_cast<unsigned long long>(op.chunks),
      static_cast<unsigned long long>(op.threads));
}

}  // namespace

std::string QueryProfile::ToJson() const {
  std::string out = StrFormat(
      "{\"query\": \"%s\", \"trace_id\": %llu, \"total_us\": %.3f, "
      "\"status\": \"%s\", \"operators\": [",
      JsonEscape(query).c_str(),
      static_cast<unsigned long long>(trace_id), total_us,
      JsonEscape(status.empty() ? "OK" : status).c_str());
  for (size_t i = 0; i < operators.size(); ++i) {
    if (i > 0) out += ", ";
    out += OperatorToJson(operators[i]);
  }
  out += "]}";
  return out;
}

std::string QueryProfile::ToText() const {
  std::string out =
      StrFormat("%s  (trace %llu, total %.1f us%s%s)\n", query.c_str(),
                static_cast<unsigned long long>(trace_id), total_us,
                status.empty() ? "" : ", ", status.c_str());
  for (const OperatorProfile& op : operators) {
    out += StrFormat("  %-28s wall=%.1fus rows=%llu->%llu", op.name.c_str(),
                     op.wall_us, static_cast<unsigned long long>(op.rows_in),
                     static_cast<unsigned long long>(op.rows_out));
    if (op.envelope_hits > 0) {
      out += StrFormat(" envelope_hits=%llu",
                       static_cast<unsigned long long>(op.envelope_hits));
    }
    if (op.chunks > 1) {
      out += StrFormat(" chunks=%llu",
                       static_cast<unsigned long long>(op.chunks));
    }
    if (op.threads > 1) {
      out += StrFormat(" threads=%llu",
                       static_cast<unsigned long long>(op.threads));
    }
    out += "\n";
  }
  return out;
}

ProfileScope::ProfileScope() : root_(g_profile_depth == 0) {
  ++g_profile_depth;
}

ProfileScope::~ProfileScope() { --g_profile_depth; }

SlowQueryLog& SlowQueryLog::Default() {
  static SlowQueryLog* log = new SlowQueryLog();  // never freed
  return *log;
}

void SlowQueryLog::Configure(size_t capacity, double threshold_us) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<size_t>(1, capacity);
  threshold_us_ = threshold_us;
  if (entries_.size() > capacity_) entries_.resize(capacity_);
  enabled_.store(true, std::memory_order_relaxed);
}

void SlowQueryLog::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

double SlowQueryLog::threshold_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threshold_us_;
}

size_t SlowQueryLog::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void SlowQueryLog::Record(QueryProfile profile) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (profile.total_us < threshold_us_) return;
  if (entries_.size() == capacity_ &&
      profile.total_us <= entries_.back().total_us) {
    return;
  }
  auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), profile,
      [](const QueryProfile& a, const QueryProfile& b) {
        return a.total_us > b.total_us;
      });
  entries_.insert(pos, std::move(profile));
  if (entries_.size() > capacity_) entries_.pop_back();
}

std::vector<QueryProfile> SlowQueryLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

std::string SlowQueryLog::ToJson() const {
  const std::vector<QueryProfile> entries = Snapshot();
  std::string out = "[";
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) out += ",\n ";
    out += entries[i].ToJson();
  }
  out += "]";
  return out;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

}  // namespace exearth::common
