# Empty compiler generated dependencies file for polar_ice.
# This may be replaced when dependencies are built.
