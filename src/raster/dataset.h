// Labelled training datasets for the C1 classifiers and the C2 dataset-
// generation tooling.
//
// A Dataset is a flat feature-vector + label collection; the ml module
// consumes it directly. Generators cover:
//  * MakeEurosatLike — the EuroSAT shape (13 bands, 10 classes, N samples),
//    the benchmark the paper cites as the largest available (27,000 images);
//  * MakePatchDataset — sliding-window patches from a simulated scene with
//    labels from the class map (the "leverage cartographic products" path);
//  * MakeCropTimeSeriesDataset — per-pixel multi-temporal features from a
//    year of Sentinel-2 acquisitions over a crop map (A1);
//  * MakeIceDataset — SAR patch features over an ice map (A2).

#ifndef EXEARTH_RASTER_DATASET_H_
#define EXEARTH_RASTER_DATASET_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "raster/landcover.h"
#include "raster/raster.h"
#include "raster/sentinel.h"

namespace exearth::raster {

/// One labelled sample.
struct Sample {
  std::vector<float> features;
  int label = 0;
};

/// A labelled dataset with a fixed feature dimension.
struct Dataset {
  std::vector<Sample> samples;
  int feature_dim = 0;
  int num_classes = 0;
  /// For image-shaped features: channels/height/width (0 if not image-like).
  int channels = 0;
  int patch_height = 0;
  int patch_width = 0;

  size_t size() const { return samples.size(); }

  /// In-place Fisher-Yates shuffle.
  void Shuffle(common::Rng* rng);

  /// Splits into (train, test) with `train_fraction` going to train.
  std::pair<Dataset, Dataset> Split(double train_fraction) const;

  /// Per-class sample counts.
  std::vector<int64_t> LabelHistogram() const;

  /// Standardizes features to zero mean / unit variance computed on this
  /// dataset; returns the per-dimension (mean, stddev) used.
  std::vector<std::pair<float, float>> Standardize();
  /// Applies a previously computed standardization (from the train split).
  void ApplyStandardization(
      const std::vector<std::pair<float, float>>& stats);
};

/// Options for the EuroSAT-like generator.
struct EurosatOptions {
  int num_samples = 27000;   // EuroSAT's published size
  int patch_size = 8;        // pixels per side (EuroSAT uses 64; smaller
                             // patches keep the laptop-scale benches fast)
  double noise_stddev = 0.03;
  /// Fraction of each patch covered by a second "contaminating" class,
  /// making the task realistically non-trivial.
  double mixed_fraction = 0.3;
};

/// Generates an EuroSAT-shaped dataset: 13-band patches, 10 classes.
Dataset MakeEurosatLike(const EurosatOptions& options, uint64_t seed);

/// Extracts patch_size x patch_size windows every `stride` pixels from the
/// product; the label is the majority class of the window in `labels`.
/// Cloudy patches (any masked pixel) are skipped.
common::Result<Dataset> MakePatchDataset(const SentinelProduct& product,
                                         const ClassMap& labels,
                                         int num_classes, int patch_size,
                                         int stride);

/// Per-pixel multi-temporal crop features: for each sampled pixel the
/// feature vector concatenates [NDVI, NIR, Red] at each acquisition date.
/// `scenes` must all cover the same grid as `crops`.
common::Result<Dataset> MakeCropTimeSeriesDataset(
    const std::vector<SentinelProduct>& scenes, const ClassMap& crops,
    int max_samples, uint64_t seed);

/// SAR ice-classification patches: features are dB-scaled VV/VH windows.
common::Result<Dataset> MakeIceDataset(const SentinelProduct& sar_scene,
                                       const ClassMap& ice, int patch_size,
                                       int stride);

}  // namespace exearth::raster

#endif  // EXEARTH_RASTER_DATASET_H_
