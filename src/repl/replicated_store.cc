#include "repl/replicated_store.h"

#include <algorithm>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <utility>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "storage/wal.h"

namespace exearth::repl {

using common::Result;
using common::Status;
using common::StatusCode;
using common::StrFormat;
using storage::Wal;
using storage::WalRecord;
using storage::WalRecordType;

namespace {

// Last-write-wins per key, key-sorted so the WAL order (and therefore
// every replica's log) is deterministic.
using WriteSet = std::map<std::string, std::optional<std::string>>;

struct ReplMetrics {
  common::Counter* commits_acked;
  common::Counter* quorum_failures;
  common::Counter* elections;
  common::Counter* leader_crashes;
  common::Counter* channel_drops;
  common::Counter* follower_rejects;
  common::Counter* catchup_records;
  common::Counter* frames_shipped;

  static const ReplMetrics& Get() {
    static ReplMetrics m = [] {
      auto& reg = common::MetricsRegistry::Default();
      return ReplMetrics{
          reg.GetCounter("repl.commits_acked"),
          reg.GetCounter("repl.quorum_failures"),
          reg.GetCounter("repl.elections"),
          reg.GetCounter("repl.leader_crashes"),
          reg.GetCounter("repl.channel_drops"),
          reg.GetCounter("repl.follower_rejects"),
          reg.GetCounter("repl.catchup_records"),
          reg.GetCounter("repl.frames_shipped"),
      };
    }();
    return m;
  }
};

// Applies `records` (a log slice) to `store`: data records of committed
// transactions are applied in log order (2PL guarantees per-key record
// order equals commit order), records of transactions whose commit
// marker is absent land in `leftover` (if non-null) to wait for it.
// `applied_lsn` advances to the last commit marker seen.
void ApplyRecords(const std::vector<WalRecord>& records, kv::KvStore* store,
                  uint64_t* applied_lsn, std::vector<WalRecord>* leftover) {
  std::set<uint64_t> committed;
  for (const WalRecord& rec : records) {
    if (rec.type == WalRecordType::kCommit) committed.insert(rec.txn_id);
  }
  for (const WalRecord& rec : records) {
    switch (rec.type) {
      case WalRecordType::kPut:
      case WalRecordType::kDelete:
        if (committed.count(rec.txn_id) > 0) {
          if (rec.type == WalRecordType::kPut) {
            (void)!store->Put(rec.key, rec.value).ok();
          } else {
            (void)!store->Delete(rec.key).ok();
          }
        } else if (leftover != nullptr) {
          leftover->push_back(rec);
        }
        break;
      case WalRecordType::kCommit:
        if (rec.lsn > *applied_lsn) *applied_lsn = rec.lsn;
        break;
      case WalRecordType::kCheckpoint:
        break;
    }
  }
}

// Ring placement hash: FNV-1a alone clusters badly for short strings
// with shared prefixes (vnode names, "key-<n>" workloads) because its
// high bits avalanche poorly — a splitmix64-style finalizer spreads
// them before the 64-bit ring ordering is taken.
uint64_t PlacementHash(const std::string& s) {
  uint64_t z = common::Fnv1a(s);
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

}  // namespace

// ------------------------------------------------------------- ShardGroup

/// One shard's replica group: leader + K followers, each with its own
/// WAL and in-memory store. All mutation runs under mu_ — replication
/// within a shard is serialized; throughput scales across shards.
class ShardGroup {
 public:
  ShardGroup(int shard_id, const ReplOptions& options)
      : shard_id_(shard_id),
        options_(options),
        rng_(options.election_seed +
             0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(shard_id + 1)) {}

  /// Creates (or recovers) every replica. With a data_dir each WAL is
  /// replayed; the replica with the highest durable LSN becomes leader
  /// (recovery selection — not counted as a failover election).
  Status Open() {
    std::lock_guard<std::mutex> lock(mu_);
    const int n = options_.followers_per_shard + 1;
    std::vector<std::vector<WalRecord>> recovered(
        static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
      Replica r;
      r.id = i;
      r.store = std::make_unique<kv::KvStore>(options_.kv_partitions);
      if (!options_.data_dir.empty()) {
        const std::string path = StrFormat(
            "%s/shard%03d_replica%02d.wal", options_.data_dir.c_str(),
            shard_id_, i);
        auto wal = Wal::Open(path);
        if (!wal.ok()) return wal.status();
        r.wal = std::move(*wal);
        auto& recs = recovered[static_cast<size_t>(i)];
        EEA_RETURN_NOT_OK(r.wal->Replay([&recs](const WalRecord& rec) {
          recs.push_back(rec);
          return Status::OK();
        }));
        ApplyRecords(recs, r.store.get(), &r.applied_lsn, nullptr);
        r.durable_lsn = r.wal->next_lsn() - 1;
      }
      replicas_.push_back(std::move(r));
    }
    leader_ = 0;
    for (int i = 1; i < n; ++i) {
      if (replicas_[static_cast<size_t>(i)].durable_lsn >
          replicas_[static_cast<size_t>(leader_)].durable_lsn) {
        leader_ = i;
      }
    }
    log_ = std::move(recovered[static_cast<size_t>(leader_)]);
    mem_next_lsn_ =
        replicas_[static_cast<size_t>(leader_)].durable_lsn + 1;
    return Status::OK();
  }

  /// The quorum-replicated commit path; see the header's protocol doc.
  /// `expected_leader` guards against an election between the caller's
  /// Begin() and this commit (Aborted => retry the whole transaction).
  Status Replicate(uint64_t txn_id, const WriteSet& writes,
                   int expected_leader) {
    std::lock_guard<std::mutex> lock(mu_);
    EEA_RETURN_NOT_OK(EnsureLeaderLocked());
    if (leader_ != expected_leader) {
      return Status::Aborted("repl: leader changed mid-transaction; retry");
    }
    Replica& leader = replicas_[static_cast<size_t>(leader_)];
    // 1. Leader-local durable append: data records + commit marker,
    //    one group fsync.
    std::vector<WalRecord> batch;
    batch.reserve(writes.size() + 1);
    uint64_t cursor = mem_next_lsn_;
    Status append = Status::OK();
    for (const auto& [key, value] : writes) {
      WalRecord rec;
      rec.type = value.has_value() ? WalRecordType::kPut
                                   : WalRecordType::kDelete;
      rec.txn_id = txn_id;
      rec.key = key;
      rec.value = value.value_or("");
      append = LeaderAppendLocked(&leader, &cursor, &rec);
      if (!append.ok()) break;
      batch.push_back(std::move(rec));
    }
    if (append.ok()) {
      WalRecord marker;
      marker.type = WalRecordType::kCommit;
      marker.txn_id = txn_id;
      append = LeaderAppendLocked(&leader, &cursor, &marker);
      if (append.ok()) batch.push_back(std::move(marker));
    }
    if (append.ok() && leader.wal != nullptr) append = leader.wal->Sync();
    if (!append.ok()) {
      // The leader lost its log mid-commit (an injected storage.wal.*
      // fault or a real IO error): that node is gone. Nothing was
      // shipped, so the transaction is invisible everywhere.
      ++stats_.leader_crashes;
      ReplMetrics::Get().leader_crashes->Increment();
      DownLocked(leader_);
      ElectLocked();
      return Status::Unavailable("repl: leader lost its wal mid-commit: " +
                                 append.message());
    }
    leader.durable_lsn = batch.back().lsn;
    // 2. The canonical mid-commit kill: durable on the leader, shipped
    //    to nobody. The dead leader's WAL is never reconsidered, so the
    //    transaction stays invisible (unacked => invisible).
    Status crash = common::fault::MaybeFail("repl.leader.crash");
    if (!crash.ok()) {
      ++stats_.leader_crashes;
      ReplMetrics::Get().leader_crashes->Increment();
      DownLocked(leader_);
      ElectLocked();
      return Status::Unavailable(
          "repl: leader crashed mid-commit (injected)");
    }
    // 3. The batch enters the shard log (catch-up source).
    for (const WalRecord& rec : batch) log_.push_back(rec);
    mem_next_lsn_ = batch.back().lsn + 1;
    // 4. Ship to every live follower; a lagging follower receives the
    //    whole suffix it is missing in one batch.
    int acks = 0;
    for (Replica& f : replicas_) {
      if (f.id == leader_ || f.down) continue;
      if (ShipSuffixLocked(&f, batch.size())) ++acks;
    }
    const int quorum =
        std::min(options_.write_quorum, options_.followers_per_shard);
    if (acks < quorum) {
      ++stats_.quorum_failures;
      ReplMetrics::Get().quorum_failures->Increment();
      DownLocked(leader_);
      ElectLocked();
      return Status::Unavailable(
          StrFormat("repl: shard %d write quorum not reached (%d/%d acks)",
                    shard_id_, acks, quorum));
    }
    ++stats_.commits_acked;
    ReplMetrics::Get().commits_acked->Increment();
    // The caller applies the writes to the leader store right after
    // (its kv transaction still holds the row locks).
    leader.applied_lsn = leader.durable_lsn;
    return Status::OK();
  }

  /// Current leader's store (runs a pending election if the leader is
  /// down). nullptr + *idx == -1 when the shard has no live replica.
  kv::KvStore* LeaderStore(int* idx) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!EnsureLeaderLocked().ok()) {
      *idx = -1;
      return nullptr;
    }
    *idx = leader_;
    return replicas_[static_cast<size_t>(leader_)].store.get();
  }

  Result<std::string> LeaderGet(const std::string& key) {
    std::lock_guard<std::mutex> lock(mu_);
    EEA_RETURN_NOT_OK(EnsureLeaderLocked());
    return replicas_[static_cast<size_t>(leader_)].store->Get(key);
  }

  std::vector<std::pair<std::string, std::string>> LeaderScan(
      const std::string& prefix, size_t limit) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!EnsureLeaderLocked().ok()) return {};
    return replicas_[static_cast<size_t>(leader_)].store->ScanPrefix(prefix,
                                                                     limit);
  }

  size_t LeaderSize() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!EnsureLeaderLocked().ok()) return 0;
    return replicas_[static_cast<size_t>(leader_)].store->Size();
  }

  Result<std::string> ReadReplica(int replica, const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    EEA_RETURN_NOT_OK(CheckReplicaLocked(replica));
    return replicas_[static_cast<size_t>(replica)].store->Get(key);
  }

  Result<std::vector<std::pair<std::string, std::string>>> ScanReplica(
      int replica, const std::string& prefix, size_t limit) const {
    std::lock_guard<std::mutex> lock(mu_);
    EEA_RETURN_NOT_OK(CheckReplicaLocked(replica));
    return replicas_[static_cast<size_t>(replica)].store->ScanPrefix(prefix,
                                                                     limit);
  }

  void Crash(int replica) {
    std::lock_guard<std::mutex> lock(mu_);
    if (replica < 0 || replica >= static_cast<int>(replicas_.size())) return;
    if (replicas_[static_cast<size_t>(replica)].down) return;
    DownLocked(replica);
    if (replica == leader_) ElectLocked();
  }

  ShardStatus Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    ShardStatus out;
    out.shard = shard_id_;
    out.leader =
        (leader_ >= 0 && !replicas_[static_cast<size_t>(leader_)].down)
            ? leader_
            : -1;
    out.leader_lsn =
        out.leader >= 0
            ? replicas_[static_cast<size_t>(out.leader)].durable_lsn
            : 0;
    out.elections = elections_;
    out.election_term = election_term_;
    for (const Replica& r : replicas_) {
      ReplicaStatus rs;
      rs.shard = shard_id_;
      rs.replica = r.id;
      rs.is_leader = (r.id == out.leader);
      rs.down = r.down;
      rs.durable_lsn = r.durable_lsn;
      rs.applied_lsn = r.applied_lsn;
      rs.lag_frames = out.leader_lsn > r.durable_lsn
                          ? out.leader_lsn - r.durable_lsn
                          : 0;
      out.replicas.push_back(rs);
    }
    return out;
  }

  ReplStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    ReplStats s = stats_;
    s.elections = elections_;
    return s;
  }

  Status CheckReady() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (leader_ < 0 || replicas_[static_cast<size_t>(leader_)].down) {
      return Status::Unavailable(
          StrFormat("repl: shard %d has no live leader", shard_id_));
    }
    int live_followers = 0;
    for (const Replica& r : replicas_) {
      if (!r.down && r.id != leader_) ++live_followers;
    }
    const int quorum =
        std::min(options_.write_quorum, options_.followers_per_shard);
    if (live_followers < quorum) {
      return Status::Unavailable(StrFormat(
          "repl: shard %d has %d live followers, quorum needs %d",
          shard_id_, live_followers, quorum));
    }
    return Status::OK();
  }

 private:
  struct Replica {
    int id = 0;
    bool down = false;
    std::unique_ptr<Wal> wal;  // null in volatile mode
    std::unique_ptr<kv::KvStore> store;
    uint64_t durable_lsn = 0;
    uint64_t applied_lsn = 0;
    // Durably appended but not yet applied (repl.follower.apply lag).
    std::vector<WalRecord> apply_queue;
  };

  Status CheckReplicaLocked(int replica) const {
    if (replica < 0 || replica >= static_cast<int>(replicas_.size())) {
      return Status::InvalidArgument(
          StrFormat("repl: shard %d has no replica %d", shard_id_, replica));
    }
    if (replicas_[static_cast<size_t>(replica)].down) {
      return Status::Unavailable(StrFormat(
          "repl: shard %d replica %d is down", shard_id_, replica));
    }
    return Status::OK();
  }

  Status LeaderAppendLocked(Replica* leader, uint64_t* cursor,
                            WalRecord* rec) {
    if (leader->wal != nullptr) {
      auto lsn = leader->wal->Append(rec->type, rec->txn_id, rec->key,
                                     rec->value);
      if (!lsn.ok()) return lsn.status();
      rec->lsn = *lsn;
    } else {
      rec->lsn = (*cursor)++;
    }
    return Status::OK();
  }

  void DownLocked(int idx) {
    replicas_[static_cast<size_t>(idx)].down = true;
  }

  Status EnsureLeaderLocked() {
    if (leader_ >= 0 && !replicas_[static_cast<size_t>(leader_)].down) {
      return Status::OK();
    }
    ElectLocked();
    if (leader_ < 0) {
      return Status::Unavailable(
          StrFormat("repl: shard %d has no live replicas", shard_id_));
    }
    return Status::OK();
  }

  // Deterministic failover: highest durable LSN wins, ties by lowest
  // replica id; the seeded rng stamps a reproducible term nonce. The
  // winner applies its pending batches (promotion) and its log becomes
  // the shard log.
  void ElectLocked() {
    int winner = -1;
    for (const Replica& r : replicas_) {
      if (r.down) continue;
      if (winner < 0 ||
          r.durable_lsn > replicas_[static_cast<size_t>(winner)].durable_lsn) {
        winner = r.id;
      }
    }
    leader_ = winner;
    if (winner < 0) return;
    ++elections_;
    ReplMetrics::Get().elections->Increment();
    election_term_ = rng_.Next();
    Replica& w = replicas_[static_cast<size_t>(winner)];
    DrainApplyLocked(&w);
    // The new leader's log is authoritative: drop bookkeeping for
    // records no surviving replica holds (the dead leader's unshipped
    // tail — exactly the unacked writes that must stay invisible).
    if (log_.size() > w.durable_lsn) {
      log_.resize(static_cast<size_t>(w.durable_lsn));
    }
    mem_next_lsn_ = w.durable_lsn + 1;
  }

  // Ships the log suffix the follower is missing over the in-process
  // channel; returns true when the follower durably appended it (the
  // ack). `new_records` is the size of the just-committed batch, so
  // anything beyond it counts as catch-up traffic.
  bool ShipSuffixLocked(Replica* f, size_t new_records) {
    if (f->durable_lsn >= log_.size()) return true;  // already caught up
    std::vector<WalRecord> suffix(
        log_.begin() + static_cast<ptrdiff_t>(f->durable_lsn), log_.end());
    std::string bytes;
    for (const WalRecord& rec : suffix) {
      bytes += Wal::EncodeRecordFrame(rec);
    }
    // The channel fault boundary: `io` corrupts the bytes in flight
    // (the follower's shared frame scan must reject them), any other
    // code drops the batch on the floor (the follower just lags).
    Status fault = common::fault::MaybeFail("repl.channel.send");
    if (!fault.ok()) {
      if (fault.code() == StatusCode::kIOError) {
        bytes[bytes.size() / 2] ^= 0x5a;
      } else {
        ++stats_.channel_drops;
        ReplMetrics::Get().channel_drops->Increment();
        return false;
      }
    }
    // --- Follower side of the channel -----------------------------------
    // Verify with the same scanner a restarting primary uses, and
    // require the batch to start exactly at the next LSN so this log
    // stays a strict prefix of the leader's (the election invariant).
    size_t valid = 0;
    std::vector<WalRecord> records;
    Status scan = Wal::ValidatePrefix(bytes, &valid, &records);
    if (!scan.ok() || valid != bytes.size() || records.empty() ||
        records.front().lsn != f->durable_lsn + 1) {
      ++stats_.follower_rejects;
      ReplMetrics::Get().follower_rejects->Increment();
      return false;
    }
    if (f->wal != nullptr) {
      for (const WalRecord& rec : records) {
        auto lsn = f->wal->Append(rec.type, rec.txn_id, rec.key, rec.value);
        if (!lsn.ok()) {
          DownLocked(f->id);  // follower lost its wal: node loss
          return false;
        }
      }
      if (!f->wal->Sync().ok()) {
        DownLocked(f->id);
        return false;
      }
    }
    f->durable_lsn = records.back().lsn;  // the ack point
    stats_.frames_shipped += records.size();
    ReplMetrics::Get().frames_shipped->Increment(records.size());
    if (records.size() > new_records) {
      const uint64_t catchup = records.size() - new_records;
      stats_.catchup_records += catchup;
      ReplMetrics::Get().catchup_records->Increment(catchup);
    }
    for (WalRecord& rec : records) f->apply_queue.push_back(std::move(rec));
    // Applying to the in-memory store can lag behind the durable append
    // without voiding the ack; the queue drains on the next batch or on
    // promotion.
    Status apply = common::fault::MaybeFail("repl.follower.apply");
    if (apply.ok()) DrainApplyLocked(f);
    return true;
  }

  void DrainApplyLocked(Replica* r) {
    if (r->apply_queue.empty()) return;
    std::vector<WalRecord> leftover;
    ApplyRecords(r->apply_queue, r->store.get(), &r->applied_lsn, &leftover);
    r->apply_queue.swap(leftover);
  }

  const int shard_id_;
  const ReplOptions options_;
  common::Rng rng_;

  mutable std::mutex mu_;
  std::vector<Replica> replicas_;
  int leader_ = -1;
  uint64_t elections_ = 0;
  uint64_t election_term_ = 0;
  // Next LSN in volatile mode (durable mode asks the leader's WAL).
  uint64_t mem_next_lsn_ = 1;
  // The shard's replicated log; log_[i].lsn == i + 1. Never compacted
  // (see header) — the catch-up source for lagging followers.
  std::vector<WalRecord> log_;
  ReplStats stats_;  // elections tracked separately in elections_
};

// -------------------------------------------------------- ReplTransaction

/// A cross-shard transaction: per touched shard, a strict-2PL
/// kv::Transaction on that shard's leader store (reads, row locks,
/// read-your-writes) plus a key-sorted write set for replication.
class ReplTransaction final : public kv::MetaTransaction {
 public:
  ReplTransaction(ReplicatedKvStore* store, uint64_t id)
      : store_(store), id_(id) {}

  ~ReplTransaction() override {
    if (!finished_) Abort();
  }

  Result<std::string> Get(const std::string& key) override {
    Handle* h = nullptr;
    EEA_RETURN_NOT_OK(HandleFor(key, &h));
    return h->txn->Get(key);
  }

  Result<std::string> GetCommitted(const std::string& key) override {
    Handle* h = nullptr;
    EEA_RETURN_NOT_OK(HandleFor(key, &h));
    return h->txn->GetCommitted(key);
  }

  Status Put(const std::string& key, std::string value) override {
    Handle* h = nullptr;
    EEA_RETURN_NOT_OK(HandleFor(key, &h));
    EEA_RETURN_NOT_OK(h->txn->Put(key, value));
    h->writes[key] = std::move(value);
    return Status::OK();
  }

  Status Delete(const std::string& key) override {
    Handle* h = nullptr;
    EEA_RETURN_NOT_OK(HandleFor(key, &h));
    EEA_RETURN_NOT_OK(h->txn->Delete(key));
    h->writes[key] = std::nullopt;
    return Status::OK();
  }

  Result<bool> Exists(const std::string& key) override {
    Handle* h = nullptr;
    EEA_RETURN_NOT_OK(HandleFor(key, &h));
    return h->txn->Exists(key);
  }

  // Shard-by-shard commit in shard-id order. Before the first shard
  // acks, any failure aborts everything (the transaction is invisible
  // everywhere). After the first ack the transaction is past its commit
  // point: remaining shards are driven to completion against freshly
  // elected leaders, so a mid-commit leader kill cannot strand a
  // half-visible multi-shard transaction.
  Status Commit() override {
    finished_ = true;
    bool past_commit_point = false;
    for (auto it = handles_.begin(); it != handles_.end(); ++it) {
      Handle& h = it->second;
      if (h.writes.empty()) {
        (void)!h.txn->Commit().ok();  // read-only: release row locks
        continue;
      }
      Status s = store_->shards_[static_cast<size_t>(it->first)]->Replicate(
          id_, h.writes, h.leader);
      if (s.ok()) {
        // Quorum reached; apply to the leader store under our row locks.
        (void)!h.txn->Commit().ok();
        past_commit_point = true;
        continue;
      }
      if (!past_commit_point) {
        for (auto jt = it; jt != handles_.end(); ++jt) jt->second.txn->Abort();
        return s;
      }
      h.txn->Abort();
      EEA_RETURN_NOT_OK(RetryShardCommit(it->first, h.writes));
    }
    return Status::OK();
  }

  void Abort() override {
    finished_ = true;
    for (auto& [sid, h] : handles_) h.txn->Abort();
  }

 private:
  struct Handle {
    std::unique_ptr<kv::MetaTransaction> txn;
    int leader = -1;  // leader index observed at Begin (guards commits)
    WriteSet writes;
  };

  Status HandleFor(const std::string& key, Handle** out) {
    const int sid = store_->ShardOf(key);
    auto it = handles_.find(sid);
    if (it == handles_.end()) {
      int leader = -1;
      kv::KvStore* ls =
          store_->shards_[static_cast<size_t>(sid)]->LeaderStore(&leader);
      if (ls == nullptr) {
        return Status::Unavailable(
            StrFormat("repl: shard %d has no live replicas", sid));
      }
      Handle h;
      h.txn = ls->Begin();
      h.leader = leader;
      it = handles_.emplace(sid, std::move(h)).first;
    }
    *out = &it->second;
    return Status::OK();
  }

  // Past-commit-point completion of one shard: re-acquire locks on the
  // current leader, replicate, apply. Loops over elections and lock
  // conflicts; fails only if the shard loses every replica.
  Status RetryShardCommit(int sid, const WriteSet& writes) {
    ShardGroup* shard = store_->shards_[static_cast<size_t>(sid)].get();
    for (int attempt = 0; attempt < 64; ++attempt) {
      int leader = -1;
      kv::KvStore* ls = shard->LeaderStore(&leader);
      if (ls == nullptr) {
        return Status::Unavailable(StrFormat(
            "repl: shard %d lost all replicas mid multi-shard commit "
            "(commit is partial)",
            sid));
      }
      auto txn = ls->Begin();
      bool conflict = false;
      for (const auto& [key, value] : writes) {
        Status s = value.has_value() ? txn->Put(key, *value)
                                     : txn->Delete(key);
        if (!s.ok()) {
          txn->Abort();
          conflict = true;
          break;
        }
      }
      if (conflict) continue;
      Status s = shard->Replicate(id_, writes, leader);
      if (s.ok()) {
        (void)!txn->Commit().ok();
        return Status::OK();
      }
      txn->Abort();
      if (s.code() != StatusCode::kAborted &&
          s.code() != StatusCode::kUnavailable) {
        return s;
      }
    }
    return Status::Internal(StrFormat(
        "repl: shard %d commit did not complete after retries", sid));
  }

  ReplicatedKvStore* store_;
  uint64_t id_;
  bool finished_ = false;
  std::map<int, Handle> handles_;  // ordered: commits run in shard order
};

// ------------------------------------------------------ ReplicatedKvStore

ReplicatedKvStore::ReplicatedKvStore(const ReplOptions& options)
    : options_(options) {}

ReplicatedKvStore::~ReplicatedKvStore() = default;

Result<std::unique_ptr<ReplicatedKvStore>> ReplicatedKvStore::Open(
    const ReplOptions& options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("repl: num_shards must be >= 1");
  }
  if (options.followers_per_shard < 0 || options.write_quorum < 0) {
    return Status::InvalidArgument(
        "repl: followers_per_shard and write_quorum must be >= 0");
  }
  if (options.ring_vnodes < 1) {
    return Status::InvalidArgument("repl: ring_vnodes must be >= 1");
  }
  if (!options.data_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options.data_dir, ec);
    if (ec) {
      return Status::IOError("repl: cannot create data_dir " +
                             options.data_dir + ": " + ec.message());
    }
  }
  auto store =
      std::unique_ptr<ReplicatedKvStore>(new ReplicatedKvStore(options));
  // Seeded vnode ring: placement depends only on (shard, vnode) names,
  // so it is stable across runs and processes.
  std::vector<std::pair<uint64_t, int>> ring;
  ring.reserve(static_cast<size_t>(options.num_shards) *
               static_cast<size_t>(options.ring_vnodes));
  for (int s = 0; s < options.num_shards; ++s) {
    for (int v = 0; v < options.ring_vnodes; ++v) {
      ring.emplace_back(
          PlacementHash(StrFormat("eea-repl-shard-%d-vnode-%d", s, v)), s);
    }
  }
  std::sort(ring.begin(), ring.end());
  for (const auto& [hash, shard] : ring) {
    store->ring_hash_.push_back(hash);
    store->ring_shard_.push_back(shard);
  }
  for (int s = 0; s < options.num_shards; ++s) {
    store->shards_.push_back(std::make_unique<ShardGroup>(s, options));
    EEA_RETURN_NOT_OK(store->shards_.back()->Open());
  }
  return store;
}

int ReplicatedKvStore::ShardOf(const std::string& key) const {
  const uint64_t h = PlacementHash(key);
  auto it = std::upper_bound(ring_hash_.begin(), ring_hash_.end(), h);
  const size_t idx = it == ring_hash_.end()
                         ? 0  // wrap around the ring
                         : static_cast<size_t>(it - ring_hash_.begin());
  return ring_shard_[idx];
}

std::unique_ptr<kv::MetaTransaction> ReplicatedKvStore::Begin() {
  return std::make_unique<ReplTransaction>(
      this, next_txn_id_.fetch_add(1, std::memory_order_relaxed));
}

Status ReplicatedKvStore::Put(const std::string& key, std::string value) {
  auto txn = Begin();
  EEA_RETURN_NOT_OK(txn->Put(key, std::move(value)));
  return txn->Commit();
}

Result<std::string> ReplicatedKvStore::Get(const std::string& key) {
  return shards_[static_cast<size_t>(ShardOf(key))]->LeaderGet(key);
}

Status ReplicatedKvStore::Delete(const std::string& key) {
  auto txn = Begin();
  EEA_RETURN_NOT_OK(txn->Delete(key));
  return txn->Commit();
}

std::vector<std::pair<std::string, std::string>>
ReplicatedKvStore::ScanPrefix(const std::string& prefix,
                              size_t limit) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& shard : shards_) {
    auto rows = shard->LeaderScan(prefix, 0);
    out.insert(out.end(), std::make_move_iterator(rows.begin()),
               std::make_move_iterator(rows.end()));
  }
  std::sort(out.begin(), out.end());
  if (limit > 0 && out.size() > limit) out.resize(limit);
  return out;
}

size_t ReplicatedKvStore::Size() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->LeaderSize();
  return total;
}

Result<std::string> ReplicatedKvStore::ReadReplica(
    int shard, int replica, const std::string& key) const {
  if (shard < 0 || shard >= num_shards()) {
    return Status::InvalidArgument(StrFormat("repl: no shard %d", shard));
  }
  return shards_[static_cast<size_t>(shard)]->ReadReplica(replica, key);
}

Result<std::vector<std::pair<std::string, std::string>>>
ReplicatedKvStore::ScanReplicaPrefix(int shard, int replica,
                                     const std::string& prefix,
                                     size_t limit) const {
  if (shard < 0 || shard >= num_shards()) {
    return Status::InvalidArgument(StrFormat("repl: no shard %d", shard));
  }
  return shards_[static_cast<size_t>(shard)]->ScanReplica(replica, prefix,
                                                          limit);
}

std::vector<ShardStatus> ReplicatedKvStore::StatusSnapshot() const {
  std::vector<ShardStatus> out;
  out.reserve(shards_.size());
  for (const auto& shard : shards_) out.push_back(shard->Snapshot());
  return out;
}

ReplStats ReplicatedKvStore::repl_stats() const {
  ReplStats total;
  for (const auto& shard : shards_) {
    const ReplStats s = shard->stats();
    total.commits_acked += s.commits_acked;
    total.quorum_failures += s.quorum_failures;
    total.elections += s.elections;
    total.leader_crashes += s.leader_crashes;
    total.channel_drops += s.channel_drops;
    total.follower_rejects += s.follower_rejects;
    total.catchup_records += s.catchup_records;
    total.frames_shipped += s.frames_shipped;
  }
  return total;
}

Status ReplicatedKvStore::CheckReady() const {
  for (const auto& shard : shards_) {
    EEA_RETURN_NOT_OK(shard->CheckReady());
  }
  return Status::OK();
}

void ReplicatedKvStore::CrashReplica(int shard, int replica) {
  if (shard < 0 || shard >= num_shards()) return;
  shards_[static_cast<size_t>(shard)]->Crash(replica);
}

kv::KvStore* ReplicatedKvStore::leader_store(int shard) {
  if (shard < 0 || shard >= num_shards()) return nullptr;
  int idx = -1;
  return shards_[static_cast<size_t>(shard)]->LeaderStore(&idx);
}

}  // namespace exearth::repl
