// profile_report — offline viewer for the observability artifacts the
// bench binaries write.
//
//   profile_report trace.json            flame tree of a Chrome trace
//                                        (--trace_out= output)
//   profile_report e1.metrics.json       slow-query profiles of a metrics
//                                        snapshot ("slow_queries" key)
//   profile_report a.json b.json ...     any mix; each file is detected
//                                        by its top-level keys
//
// The flame tree groups span events by trace_id, nests them by
// parent_span_id and prints one line per span with its wall time and the
// thread it ran on — the terminal version of loading the file in
// chrome://tracing. Slow-query profiles print as EXPLAIN ANALYZE-style
// operator tables, worst request first.
//
// Self-contained: a minimal recursive-descent JSON reader (objects,
// arrays, strings, numbers, literals) is embedded so the tool needs
// nothing beyond eea_common.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/string_util.h"

namespace {

using exearth::common::StrFormat;

// ---------------------------------------------------------------------------
// Minimal JSON value + parser.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  double NumberOr(const std::string& key, double fallback) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
  }
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const {
    const JsonValue* v = Find(key);
    return v != nullptr && v->kind == Kind::kString ? v->string_value
                                                    : fallback;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    pos_ = 0;
    if (!ParseValue(out)) {
      *error = StrFormat("JSON parse error at byte %zu", pos_);
      return false;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      *error = StrFormat("trailing bytes after JSON value at %zu", pos_);
      return false;
    }
    return true;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseValue(JsonValue* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string_value);
      case 't':
      case 'f':
        return ParseLiteral(out);
      case 'n':
        return ParseLiteral(out);
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return false;
    out->kind = JsonValue::Kind::kObject;
    if (Consume('}')) return true;
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return false;
    out->kind = JsonValue::Kind::kArray;
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'u': {
          // Decode \uXXXX as a code point; non-ASCII renders as '?'
          // (names in our traces are ASCII, this is belt-and-braces).
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          out->push_back(code < 0x80 ? static_cast<char>(code) : '?');
          break;
        }
        default:
          return false;
      }
    }
    return false;
  }

  bool ParseLiteral(JsonValue* out) {
    auto matches = [&](const char* lit) {
      const size_t n = std::string(lit).size();
      if (text_.compare(pos_, n, lit) != 0) return false;
      pos_ += n;
      return true;
    };
    if (matches("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = true;
      return true;
    }
    if (matches("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->bool_value = false;
      return true;
    }
    if (matches("null")) {
      out->kind = JsonValue::Kind::kNull;
      return true;
    }
    return false;
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(text_.substr(start, pos_ - start).c_str(),
                              nullptr);
    return true;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Flame tree from Chrome trace events.

struct Span {
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
  uint64_t tid = 0;
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
  std::vector<size_t> children;
};

void PrintSpanTree(const std::vector<Span>& spans, size_t idx, int depth) {
  const Span& s = spans[idx];
  std::printf("  %*s%-*s %12.1f us  [tid %llu]\n", 2 * depth, "",
              std::max(1, 44 - 2 * depth), s.name.c_str(), s.dur_us,
              static_cast<unsigned long long>(s.tid));
  for (size_t child : spans[idx].children) {
    PrintSpanTree(spans, child, depth + 1);
  }
}

void ReportTrace(const JsonValue& root) {
  const JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || events->kind != JsonValue::Kind::kArray) return;
  std::vector<Span> spans;
  spans.reserve(events->array.size());
  for (const JsonValue& e : events->array) {
    if (e.kind != JsonValue::Kind::kObject) continue;
    if (e.StringOr("ph", "X") != "X") continue;
    Span s;
    s.name = e.StringOr("name", "?");
    s.ts_us = e.NumberOr("ts", 0.0);
    s.dur_us = e.NumberOr("dur", 0.0);
    s.tid = static_cast<uint64_t>(e.NumberOr("tid", 0.0));
    if (const JsonValue* args = e.Find("args")) {
      s.trace_id = static_cast<uint64_t>(args->NumberOr("trace_id", 0.0));
      s.span_id = static_cast<uint64_t>(args->NumberOr("span_id", 0.0));
      s.parent_span_id =
          static_cast<uint64_t>(args->NumberOr("parent_span_id", 0.0));
    }
    spans.push_back(std::move(s));
  }
  // Link children; spans whose parent was dropped from a full ring render
  // as roots of their trace.
  std::map<uint64_t, size_t> by_span_id;
  for (size_t i = 0; i < spans.size(); ++i) by_span_id[spans[i].span_id] = i;
  std::map<uint64_t, std::vector<size_t>> roots_by_trace;
  std::map<uint64_t, double> trace_total;
  std::map<uint64_t, size_t> trace_spans;
  for (size_t i = 0; i < spans.size(); ++i) {
    auto parent = by_span_id.find(spans[i].parent_span_id);
    if (spans[i].parent_span_id != 0 && parent != by_span_id.end()) {
      spans[parent->second].children.push_back(i);
    } else {
      roots_by_trace[spans[i].trace_id].push_back(i);
      trace_total[spans[i].trace_id] += spans[i].dur_us;
    }
    trace_spans[spans[i].trace_id] += 1;
  }
  for (auto& [trace_id, indices] : roots_by_trace) {
    // Children in start order within each parent.
    (void)trace_id;
    std::sort(indices.begin(), indices.end(), [&](size_t a, size_t b) {
      return spans[a].ts_us < spans[b].ts_us;
    });
  }
  // Slowest trace first.
  std::vector<uint64_t> order;
  for (const auto& [trace_id, total] : trace_total) order.push_back(trace_id);
  std::sort(order.begin(), order.end(), [&](uint64_t a, uint64_t b) {
    return trace_total[a] > trace_total[b];
  });
  std::printf("%zu trace(s), %zu span event(s)\n\n", order.size(),
              spans.size());
  for (uint64_t trace_id : order) {
    std::printf("trace %llu  (%zu spans, %.1f us)\n",
                static_cast<unsigned long long>(trace_id),
                trace_spans[trace_id], trace_total[trace_id]);
    for (size_t root : roots_by_trace[trace_id]) {
      PrintSpanTree(spans, root, 1);
    }
    std::printf("\n");
  }
}

// ---------------------------------------------------------------------------
// Slow-query profiles from a metrics snapshot.

void ReportSlowQueries(const JsonValue& root) {
  const JsonValue* slow = root.Find("slow_queries");
  if (slow == nullptr || slow->kind != JsonValue::Kind::kArray) return;
  std::printf("%zu slow quer%s (worst first)\n\n", slow->array.size(),
              slow->array.size() == 1 ? "y" : "ies");
  for (const JsonValue& q : slow->array) {
    if (q.kind != JsonValue::Kind::kObject) continue;
    std::printf("%s  total %.1f us  (trace %llu)\n",
                q.StringOr("query", "?").c_str(), q.NumberOr("total_us", 0.0),
                static_cast<unsigned long long>(q.NumberOr("trace_id", 0.0)));
    const JsonValue* ops = q.Find("operators");
    if (ops == nullptr || ops->kind != JsonValue::Kind::kArray) continue;
    std::printf("  %-42s %12s %10s %10s %10s %7s %7s\n", "operator",
                "wall_us", "rows_in", "rows_out", "env_hits", "chunks",
                "threads");
    for (const JsonValue& op : ops->array) {
      std::printf(
          "  %-42s %12.1f %10.0f %10.0f %10.0f %7.0f %7.0f\n",
          op.StringOr("name", "?").c_str(), op.NumberOr("wall_us", 0.0),
          op.NumberOr("rows_in", 0.0), op.NumberOr("rows_out", 0.0),
          op.NumberOr("envelope_hits", 0.0), op.NumberOr("chunks", 1.0),
          op.NumberOr("threads", 1.0));
    }
    std::printf("\n");
  }
}

int ReportFile(const char* path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "profile_report: cannot open %s\n", path);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  JsonValue root;
  std::string error;
  if (!JsonParser(buf.str()).Parse(&root, &error)) {
    std::fprintf(stderr, "profile_report: %s: %s\n", path, error.c_str());
    return 1;
  }
  if (root.kind != JsonValue::Kind::kObject) {
    std::fprintf(stderr, "profile_report: %s: expected a JSON object\n", path);
    return 1;
  }
  const bool has_trace = root.Find("traceEvents") != nullptr;
  const bool has_slow = root.Find("slow_queries") != nullptr;
  if (!has_trace && !has_slow) {
    std::fprintf(stderr,
                 "profile_report: %s has neither \"traceEvents\" nor "
                 "\"slow_queries\"\n",
                 path);
    return 1;
  }
  std::printf("== %s ==\n", path);
  if (has_trace) ReportTrace(root);
  if (has_slow) ReportSlowQueries(root);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <trace.json | snapshot.metrics.json>...\n"
                 "Renders Chrome trace exports (--trace_out=) as a text "
                 "flame tree and\nmetrics snapshots' slow-query logs as "
                 "EXPLAIN ANALYZE tables.\n",
                 argv[0]);
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    rc |= ReportFile(argv[i]);
  }
  return rc;
}
