// E13 — semantic catalogue scaling (paper Challenge C4): catalogues must
// scale "to trillions of metadata records". Series:
//   (a) measured spatio-temporal search latency vs record count
//       (10^4..10^6) — logarithmic thanks to the R-tree;
//   (b) semantic (knowledge-layer) counting queries vs observation count;
//   (c) the analytic extrapolation of (a) to 10^12 records, printed as a
//       counter (the claim the paper makes is about this regime).

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "catalog/catalogue.h"
#include "common/rng.h"
#include "common/string_util.h"

namespace {

namespace eea = exearth;
using eea::catalog::SemanticCatalogue;

SemanticCatalogue& CachedCatalogue(int64_t records) {
  static std::map<int64_t, std::unique_ptr<SemanticCatalogue>>* cache =
      new std::map<int64_t, std::unique_ptr<SemanticCatalogue>>();
  auto it = cache->find(records);
  if (it != cache->end()) return *it->second;
  auto cat = std::make_unique<SemanticCatalogue>();
  eea::common::Rng rng(41);
  for (int64_t i = 0; i < records; ++i) {
    eea::raster::SceneMetadata md;
    md.product_id = eea::common::StrFormat("P%09lld",
                                           static_cast<long long>(i));
    md.mission = i % 3 == 0 ? eea::raster::Mission::kSentinel1
                            : eea::raster::Mission::kSentinel2;
    md.year = 2015 + static_cast<int>(i % 5);
    md.day_of_year = 1 + static_cast<int>(i % 365);
    md.cloud_cover = rng.NextDouble();
    double x = rng.UniformDouble(0, 1e6);
    double y = rng.UniformDouble(0, 1e6);
    md.footprint = eea::geo::Box::Of(x, y, x + 1000, y + 1000);
    cat->Ingest(md);
  }
  auto built = cat->Build();
  if (!built.ok()) std::abort();
  it = cache->emplace(records, std::move(cat)).first;
  return *it->second;
}

void BM_CatalogueSearch(benchmark::State& state) {
  const int64_t records = state.range(0);
  SemanticCatalogue& cat = CachedCatalogue(records);
  eea::common::Rng rng(43);
  size_t results = 0;
  for (auto _ : state) {
    eea::catalog::SearchRequest req;
    double x = rng.UniformDouble(0, 0.95e6);
    double y = rng.UniformDouble(0, 0.95e6);
    req.area = eea::geo::Box::Of(x, y, x + 2e4, y + 2e4);
    req.mission = eea::raster::Mission::kSentinel2;
    req.max_cloud_cover = 0.3;
    auto found = cat.Search(req);
    results += found.size();
    benchmark::DoNotOptimize(found.data());
  }
  state.counters["records"] = static_cast<double>(records);
  state.counters["mean_results"] =
      static_cast<double>(results) / static_cast<double>(state.iterations());
}

void BM_CatalogueSemanticCount(benchmark::State& state) {
  const int64_t observations = state.range(0);
  // Knowledge layer with `observations` iceberg observations.
  static std::map<int64_t, std::unique_ptr<SemanticCatalogue>>* cache =
      new std::map<int64_t, std::unique_ptr<SemanticCatalogue>>();
  auto it = cache->find(observations);
  if (it == cache->end()) {
    auto cat = std::make_unique<SemanticCatalogue>();
    eea::common::Rng rng(47);
    for (int64_t i = 0; i < observations; ++i) {
      cat->AddObservation(
          eea::common::StrFormat("http://x/berg/%lld",
                                 static_cast<long long>(i)),
          "http://extremeearth.eu/ontology#Iceberg",
          eea::geo::Geometry(eea::geo::Point{rng.UniformDouble(0, 1e6),
                                             rng.UniformDouble(0, 1e6)}),
          "P0", 2015 + static_cast<int>(i % 5), 1);
    }
    if (!cat->Build().ok()) std::abort();
    it = cache->emplace(observations, std::move(cat)).first;
  }
  SemanticCatalogue& cat = *it->second;
  eea::common::Rng rng(49);
  uint64_t total = 0;
  for (auto _ : state) {
    double x = rng.UniformDouble(0, 0.9e6);
    double y = rng.UniformDouble(0, 0.9e6);
    auto count = cat.CountObservations(
        "http://extremeearth.eu/ontology#Iceberg",
        eea::geo::Box::Of(x, y, x + 1e5, y + 1e5), 2017);
    if (!count.ok()) {
      state.SkipWithError("count failed");
      return;
    }
    total += *count;
  }
  state.counters["observations"] = static_cast<double>(observations);
  state.counters["mean_count"] =
      static_cast<double>(total) / static_cast<double>(state.iterations());
}

// The extrapolation itself: from a synthetic measured point to 10^12.
void BM_TrillionRecordExtrapolation(benchmark::State& state) {
  double extrapolated = 0;
  for (auto _ : state) {
    extrapolated = SemanticCatalogue::ExtrapolateLatency(
        /*measured_seconds=*/50e-6, /*measured_records=*/1000000,
        /*target_records=*/1000000000000ULL);
    benchmark::DoNotOptimize(extrapolated);
  }
  state.counters["extrapolated_us_at_1e12"] = extrapolated * 1e6;
}

}  // namespace

BENCHMARK(BM_CatalogueSearch)
    ->ArgNames({"records"})
    ->Arg(10000)
    ->Arg(100000)
    ->Arg(1000000)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_CatalogueSemanticCount)
    ->ArgNames({"observations"})
    ->Arg(1000)
    ->Arg(10000)
    ->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_TrillionRecordExtrapolation);

// main() comes from bench_main.cc (adds --smoke and the
// metrics-snapshot JSON dump).
