#include "fed/federation.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <set>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace exearth::fed {

using common::Result;
using common::Status;

namespace {

// Cached handles for the mediator's fan-out hot path.
struct FedMetrics {
  common::Counter* queries;
  common::Counter* subqueries;
  common::Counter* rows_transferred;
  common::Histogram* query_latency_us;
  common::Histogram* endpoint_call_latency_us;

  static const FedMetrics& Get() {
    static FedMetrics m = [] {
      auto& reg = common::MetricsRegistry::Default();
      return FedMetrics{
          reg.GetCounter("fed.queries"),
          reg.GetCounter("fed.subqueries"),
          reg.GetCounter("fed.rows_transferred"),
          reg.GetHistogram("fed.query_latency_us"),
          reg.GetHistogram("fed.endpoint_call_latency_us"),
      };
    }();
    return m;
  }
};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

Endpoint::Endpoint(std::string name, rdf::TripleStore store)
    : name_(std::move(name)),
      trace_label_("endpoint:" + name_),
      store_(std::move(store)) {
  store_.Build();
  for (const auto& [pred_id, count] : store_.PredicateStats()) {
    const rdf::Term& term = store_.dict().Decode(pred_id);
    summary_[term.value] = count;
  }
}

std::vector<std::map<std::string, rdf::Term>> Endpoint::ExecutePattern(
    const rdf::TriplePattern& pattern) const {
  calls_served_.fetch_add(1, std::memory_order_relaxed);
  rdf::QueryEngine engine(&store_);
  rdf::Query q;
  q.where.push_back(pattern);
  auto rows = engine.Execute(q);
  std::vector<std::map<std::string, rdf::Term>> out;
  if (!rows.ok()) return out;
  out.reserve(rows->size());
  for (const rdf::Binding& b : *rows) {
    std::map<std::string, rdf::Term> row;
    for (const auto& [var, id] : b) {
      row.emplace(var, store_.dict().Decode(id));
    }
    out.push_back(std::move(row));
  }
  return out;
}

void FederationEngine::Register(const Endpoint* endpoint) {
  endpoints_.push_back(endpoint);
}

void FederationEngine::set_num_threads(size_t n) {
  num_threads_ = std::max<size_t>(1, n);
  if (num_threads_ > 1) {
    if (pool_ == nullptr || pool_->num_threads() != num_threads_) {
      pool_ = std::make_unique<common::ThreadPool>(num_threads_);
    }
  } else {
    pool_.reset();
  }
}

std::vector<const Endpoint*> FederationEngine::SelectSources(
    const rdf::TriplePattern& pattern,
    const FederationOptions& options) const {
  if (!options.source_selection || pattern.p.is_var ||
      !pattern.p.term.IsIri()) {
    return endpoints_;
  }
  std::vector<const Endpoint*> out;
  for (const Endpoint* e : endpoints_) {
    if (e->Advertises(pattern.p.term.value)) out.push_back(e);
  }
  return out;
}

uint64_t FederationEngine::EstimateCardinality(
    const rdf::TriplePattern& pattern,
    const FederationOptions& options) const {
  uint64_t total = 0;
  for (const Endpoint* e : SelectSources(pattern, options)) {
    if (!pattern.p.is_var && pattern.p.term.IsIri()) {
      auto it = e->summary().find(pattern.p.term.value);
      if (it != e->summary().end()) total += it->second;
    } else {
      for (const auto& [pred, count] : e->summary()) total += count;
    }
  }
  // Bound subject/object slots make the pattern more selective; halve the
  // estimate per bound slot (a crude but standard heuristic).
  if (!pattern.s.is_var) total /= 2;
  if (!pattern.o.is_var) total /= 2;
  return total;
}

namespace {

// Variables of a pattern.
std::vector<std::string> PatternVars(const rdf::TriplePattern& p) {
  std::vector<std::string> vars;
  for (const rdf::PatternSlot* slot : {&p.s, &p.p, &p.o}) {
    if (slot->is_var) vars.push_back(slot->var);
  }
  return vars;
}

// Substitutes variables bound in `row` into `pattern` as constants.
rdf::TriplePattern BindPattern(const rdf::TriplePattern& pattern,
                               const FedBinding& row) {
  rdf::TriplePattern out = pattern;
  for (rdf::PatternSlot* slot : {&out.s, &out.p, &out.o}) {
    if (!slot->is_var) continue;
    auto it = row.find(slot->var);
    if (it != row.end()) {
      slot->is_var = false;
      slot->term = it->second;
      slot->var.clear();
    }
  }
  return out;
}

// Key for memoizing identical bound subqueries.
std::string PatternKey(const rdf::TriplePattern& p) {
  auto slot_key = [](const rdf::PatternSlot& s) {
    if (s.is_var) return "?" + s.var;
    return s.term.ToString();
  };
  return slot_key(p.s) + " " + slot_key(p.p) + " " + slot_key(p.o);
}

}  // namespace

Result<std::vector<FedBinding>> FederationEngine::Execute(
    const rdf::Query& query, const FederationOptions& options,
    const std::vector<FedFilter>& filters,
    common::QueryProfile* profile) const {
  const FedMetrics& metrics = FedMetrics::Get();
  common::TraceRequest req("fed.Execute");
  common::ProfileScope pscope;
  const bool profiling =
      profile != nullptr ||
      (pscope.is_root() && common::SlowQueryLog::Default().enabled());
  const auto query_start = std::chrono::steady_clock::now();
  common::ScopedLatencyTimer query_timer(metrics.query_latency_us);
  metrics.queries->Increment();
  stats_ = FederationStats{};
  if (query.where.empty()) {
    return Status::InvalidArgument("empty basic graph pattern");
  }
  if (endpoints_.empty()) {
    return Status::FailedPrecondition("no endpoints registered");
  }

  // Join order.
  std::vector<size_t> order(query.where.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (options.join_reordering) {
    // Greedy: smallest-estimate connected pattern next.
    std::vector<uint64_t> est(query.where.size());
    for (size_t i = 0; i < query.where.size(); ++i) {
      est[i] = EstimateCardinality(query.where[i], options);
    }
    std::vector<bool> used(query.where.size(), false);
    std::set<std::string> bound;
    std::vector<size_t> greedy;
    for (size_t step = 0; step < query.where.size(); ++step) {
      size_t best = query.where.size();
      uint64_t best_est = std::numeric_limits<uint64_t>::max();
      bool best_connected = false;
      for (size_t i = 0; i < query.where.size(); ++i) {
        if (used[i]) continue;
        bool connected = step == 0;
        for (const std::string& v : PatternVars(query.where[i])) {
          if (bound.count(v)) connected = true;
        }
        if ((connected && !best_connected) ||
            (connected == best_connected && est[i] < best_est)) {
          best = i;
          best_est = est[i];
          best_connected = connected;
        }
      }
      used[best] = true;
      greedy.push_back(best);
      for (const std::string& v : PatternVars(query.where[best])) {
        bound.insert(v);
      }
    }
    order = std::move(greedy);
  }

  std::set<const Endpoint*> contacted;
  // Memo of bound-pattern results within this query execution.
  std::unordered_map<std::string, std::vector<FedBinding>> memo;

  auto fetch = [&](const rdf::TriplePattern& pattern)
      -> const std::vector<FedBinding>& {
    const std::string key = PatternKey(pattern);
    auto it = memo.find(key);
    if (it != memo.end()) return it->second;
    const std::vector<const Endpoint*> sources =
        SelectSources(pattern, options);
    // Per-source result slots: the fan-out runs on the pool (one task per
    // endpoint) but the merge below walks slots in SelectSources order, so
    // results are deterministic regardless of completion order.
    std::vector<std::vector<FedBinding>> slots(sources.size());
    auto call_one = [&](size_t i) {
      // Per-source fan-out latency: one observation per remote call.
      common::TraceSpan call_span(sources[i]->trace_label());
      common::ScopedLatencyTimer call_timer(metrics.endpoint_call_latency_us);
      slots[i] = sources[i]->ExecutePattern(pattern);
    };
    if (pool_ != nullptr && sources.size() > 1) {
      std::vector<std::future<void>> pending;
      pending.reserve(sources.size());
      for (size_t i = 0; i < sources.size(); ++i) {
        pending.push_back(pool_->Submit([&call_one, i] { call_one(i); }));
      }
      for (auto& f : pending) f.get();
    } else {
      for (size_t i = 0; i < sources.size(); ++i) call_one(i);
    }
    std::vector<FedBinding> rows;
    for (size_t i = 0; i < sources.size(); ++i) {
      ++stats_.subqueries_sent;
      metrics.subqueries->Increment();
      contacted.insert(sources[i]);
      stats_.rows_transferred += slots[i].size();
      metrics.rows_transferred->Increment(slots[i].size());
      for (auto& row : slots[i]) rows.push_back(std::move(row));
    }
    return memo.emplace(key, std::move(rows)).first->second;
  };

  common::QueryProfile prof;
  std::vector<FedBinding> current = {FedBinding{}};
  for (size_t oi : order) {
    const rdf::TriplePattern& pattern = query.where[oi];
    const auto step_start = std::chrono::steady_clock::now();
    const uint64_t subqueries_before = stats_.subqueries_sent;
    const size_t rows_in = current.size();
    std::vector<FedBinding> next;
    for (const FedBinding& row : current) {
      rdf::TriplePattern bound_pattern = BindPattern(pattern, row);
      for (const FedBinding& fetched : fetch(bound_pattern)) {
        FedBinding merged = row;
        bool ok = true;
        for (const auto& [var, term] : fetched) {
          auto it = merged.find(var);
          if (it == merged.end()) {
            merged.emplace(var, term);
          } else if (!(it->second == term)) {
            ok = false;
            break;
          }
        }
        if (ok) next.push_back(std::move(merged));
      }
    }
    current = std::move(next);
    if (profiling) {
      common::OperatorProfile op;
      op.name = "join " + PatternKey(pattern);
      op.wall_us = SecondsSince(step_start) * 1e6;
      op.rows_in = rows_in;
      op.rows_out = current.size();
      op.chunks = stats_.subqueries_sent - subqueries_before;
      op.threads = pool_ != nullptr ? num_threads_ : 1;
      prof.operators.push_back(std::move(op));
    }
    if (current.empty()) break;
  }

  // Term-level filters.
  if (!filters.empty()) {
    const auto filter_start = std::chrono::steady_clock::now();
    const size_t rows_in = current.size();
    std::vector<FedBinding> kept;
    for (FedBinding& row : current) {
      bool ok = true;
      for (const FedFilter& f : filters) {
        if (!f(row)) {
          ok = false;
          break;
        }
      }
      if (ok) kept.push_back(std::move(row));
    }
    current = std::move(kept);
    if (profiling) {
      common::OperatorProfile op;
      op.name = "filter";
      op.wall_us = SecondsSince(filter_start) * 1e6;
      op.rows_in = rows_in;
      op.rows_out = current.size();
      prof.operators.push_back(std::move(op));
    }
  }

  const size_t rows_before_project = current.size();
  if (query.limit > 0 && current.size() > query.limit) {
    current.resize(query.limit);
  }
  if (!query.select.empty()) {
    for (FedBinding& row : current) {
      FedBinding projected;
      for (const std::string& v : query.select) {
        auto it = row.find(v);
        if (it != row.end()) projected.insert(*it);
      }
      row = std::move(projected);
    }
  }
  stats_.endpoints_contacted = contacted.size();
  stats_.results = current.size();
  if (profiling) {
    if (query.limit > 0 || !query.select.empty()) {
      common::OperatorProfile op;
      op.name = "project_limit";
      op.rows_in = rows_before_project;
      op.rows_out = current.size();
      prof.operators.push_back(std::move(op));
    }
    prof.query = "fed.Execute";
    prof.trace_id = req.trace_id();
    prof.total_us = SecondsSince(query_start) * 1e6;
    if (profile != nullptr) *profile = prof;
    if (pscope.is_root()) {
      common::SlowQueryLog::Default().Record(std::move(prof));
    }
  }
  return current;
}

}  // namespace exearth::fed
