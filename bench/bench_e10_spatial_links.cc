// E10 — scalable discovery of geospatial relations (paper Challenge C3,
// Silk [21] + the JedAI extension): find all intersects/within-distance
// links between two geometry collections. Series: set size x {R-tree join,
// nested loop} x relation.
//
// Expected shape: the nested loop is O(n*m) exact tests; the indexed join
// tests only envelope-overlapping candidates, opening a widening gap.

#include <benchmark/benchmark.h>

#include <map>

#include "bench_flags.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "link/spatial_links.h"
#include "link/temporal_links.h"
#include "strabon/workload.h"

namespace {

namespace eea = exearth;

std::vector<eea::geo::Geometry>& CachedPolygons(int n, uint64_t seed) {
  static std::map<std::pair<int, uint64_t>,
                  std::vector<eea::geo::Geometry>>* cache =
      new std::map<std::pair<int, uint64_t>, std::vector<eea::geo::Geometry>>();
  auto key = std::make_pair(n, seed);
  auto it = cache->find(key);
  if (it == cache->end()) {
    eea::common::Rng rng(seed);
    std::vector<eea::geo::Geometry> geoms;
    geoms.reserve(static_cast<size_t>(n));
    const double world = 10000.0;
    for (int i = 0; i < n; ++i) {
      double cx = rng.UniformDouble(0, world);
      double cy = rng.UniformDouble(0, world);
      geoms.push_back(eea::geo::Geometry(
          eea::strabon::RandomPolygon(cx, cy, 60.0, 10, &rng)));
    }
    it = cache->emplace(key, std::move(geoms)).first;
  }
  return it->second;
}

void BM_SpatialLinkDiscovery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool use_index = state.range(1) != 0;
  const bool distance_join = state.range(2) != 0;
  const int threads =
      exearth::bench::EffectiveThreads(static_cast<int>(state.range(3)));
  auto& a = CachedPolygons(n, 31);
  auto& b = CachedPolygons(n, 37);
  eea::link::SpatialLinkOptions opt;
  opt.use_index = use_index;
  opt.num_threads = static_cast<size_t>(threads);
  if (distance_join) {
    opt.relation = eea::link::SpatialLinkRelation::kWithinDistance;
    opt.distance = 50.0;
  }
  uint64_t links = 0;
  uint64_t tests = 0;
  for (auto _ : state) {
    auto result = eea::link::DiscoverSpatialLinks(a, b, opt);
    links = result.links.size();
    tests = result.exact_tests;
    benchmark::DoNotOptimize(result.links.data());
  }
  state.counters["links"] = static_cast<double>(links);
  state.counters["exact_tests"] = static_cast<double>(tests);
  state.counters["pairs"] = static_cast<double>(n) * n;
  state.counters["threads"] = static_cast<double>(threads);
}

// The paper also cites the *temporal* extension of Silk: Allen-relation
// link discovery between interval sets (acquisition windows, seasons).
void BM_TemporalLinkDiscovery(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const bool use_index = state.range(1) != 0;
  eea::common::Rng rng(41);
  std::vector<eea::link::Interval> a;
  std::vector<eea::link::Interval> b;
  for (int i = 0; i < n; ++i) {
    double s0 = rng.UniformDouble(0, 3650);
    a.push_back({s0, s0 + rng.UniformDouble(0, 30)});
    double s1 = rng.UniformDouble(0, 3650);
    b.push_back({s1, s1 + rng.UniformDouble(0, 30)});
  }
  eea::link::TemporalLinkOptions opt;
  opt.relation = eea::link::TemporalRelation::kOverlaps;
  opt.use_index = use_index;
  uint64_t links = 0;
  uint64_t tests = 0;
  for (auto _ : state) {
    auto result = eea::link::DiscoverTemporalLinks(a, b, opt);
    links = result.links.size();
    tests = result.exact_tests;
    benchmark::DoNotOptimize(result.links.data());
  }
  state.counters["links"] = static_cast<double>(links);
  state.counters["exact_tests"] = static_cast<double>(tests);
}

// Deterministic result fingerprint for the cross-variant SIMD gate:
// indexed link discovery across all three relations over the cached 500
// polygon sets, link pairs hashed in sorted order and exported as gauge
// bench.e10.result_hash (exercises the link-side batched envelope
// screen; see bench_e1 for the scheme).
void BM_SpatialLinkResultHash(benchmark::State& state) {
  auto& a = CachedPolygons(500, 31);
  auto& b = CachedPolygons(500, 37);
  uint64_t hash = 0;
  for (auto _ : state) {
    hash = 0xcbf29ce484222325ULL;
    for (int r = 0; r < 3; ++r) {
      eea::link::SpatialLinkOptions opt;
      opt.relation = static_cast<eea::link::SpatialLinkRelation>(r);
      opt.distance = 50.0;
      opt.use_index = true;
      auto result = eea::link::DiscoverSpatialLinks(a, b, opt);
      for (const auto& [i, j] : result.links) {
        hash ^= (static_cast<uint64_t>(i) << 32) | j;
        hash *= 0x100000001b3ULL;
      }
    }
    benchmark::DoNotOptimize(hash);
  }
  eea::common::MetricsRegistry::Default()
      .GetGauge("bench.e10.result_hash")
      ->Set(static_cast<double>(hash & 0xffffffffULL));
}

}  // namespace

BENCHMARK(BM_SpatialLinkResultHash)->Iterations(1);

BENCHMARK(BM_SpatialLinkDiscovery)
    ->ArgNames({"n", "indexed", "distance", "threads"})
    ->Args({500, 1, 0, 1})
    ->Args({500, 0, 0, 1})
    ->Args({2000, 1, 0, 1})
    ->Args({2000, 0, 0, 1})
    ->Args({8000, 1, 0, 1})
    ->Args({8000, 0, 0, 1})
    ->Args({8000, 1, 0, 4})
    ->Args({2000, 1, 1, 1})
    ->Args({2000, 0, 1, 1})
    ->Args({2000, 1, 1, 4})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_TemporalLinkDiscovery)
    ->ArgNames({"n", "indexed"})
    ->Args({2000, 1})
    ->Args({2000, 0})
    ->Args({10000, 1})
    ->Args({10000, 0})
    ->Unit(benchmark::kMillisecond);

// main() comes from bench_main.cc (adds --smoke and the
// metrics-snapshot JSON dump).
