// Shared flags for the bench_e* binaries, parsed by bench_main.cc before
// google-benchmark sees argv.
//
//   --smoke                     fast CI mode: minimal measurement time,
//                               one repetition
//   --metrics_out=<path>        metrics snapshot destination (default:
//                               <binary>.metrics.json next to argv[0])
//   --trace_out=<path>          enable the span EventRecorder and write a
//                               Chrome trace_event JSON (load it in
//                               chrome://tracing or Perfetto)
//   --threads=N                 worker-thread override for the parallel
//                               query paths; N >= 1. Benchmark rows whose
//                               `threads` argument is > 1 use this value
//                               instead when set; rows with threads=1 stay
//                               single-threaded so the baseline column
//                               survives. Recorded in the metrics JSON
//                               snapshot ("config": {"threads": N}).
//   --slowlog=N                 enable the slow-query log, keeping the N
//                               worst requests; N >= 1
//   --slowlog_threshold_us=T    only log requests at or above T
//                               microseconds (default 0 = everything)
//   --fault_spec=SPEC           program the process-wide FaultInjector
//                               before the benchmarks run (see
//                               common/fault.h for the grammar, e.g.
//                               "endpoint:0.3" = 30% endpoint failures);
//                               recorded in the metrics JSON config
//   --fault_seed=N              seed for the injector's deterministic
//                               decisions (default 1); the same
//                               (spec, seed) pair reproduces the exact
//                               fault sequence, so two runs diff clean.
//                               Negative or overflowing values are
//                               rejected with a usage message, and the
//                               --fault_spec grammar is validated at
//                               parse time (typos fail before any
//                               benchmark runs)
//   --deadline_us=N             per-query deadline in microseconds for
//                               benchmark rows that honor it (e.g. the
//                               E16 overload rows); 0/absent = none.
//                               Recorded in the metrics JSON config
//   --seed=N                    master seed for benchmark rows with a
//                               seeded stochastic workload (e.g. the E17
//                               serving load generator); the same seed
//                               reproduces the exact offered request
//                               stream. Default 42. Recorded in the
//                               metrics JSON config so determinism gates
//                               can diff it
//   --admin_port=N              start the embedded admin HTTP server
//                               (obs::AdminServer — /metrics /healthz
//                               /statusz /slowqueryz /tracez) on
//                               127.0.0.1:N for the duration of the run;
//                               N=0 picks an ephemeral port (printed).
//                               Implies windowed-metrics sampling so
//                               /metrics carries *_rate10s gauges
//   --metrics_interval_ms=N     sample the registry every N ms and
//                               append one windowed JSON line per sample
//                               to <metrics_out>l (".json" -> ".jsonl"),
//                               so long runs leave a rate/percentile
//                               timeline, not just a final snapshot
//   --page_cache_mb=N           buffer-pool capacity for benchmark rows
//                               that exercise the paged storage layer
//                               (E18); MiB, N >= 1 (0/absent = the row's
//                               default, 4 MiB). Recorded in the metrics
//                               JSON config ("page_cache_mb")
//   --simd=scalar|avx2          pin the geo::simd kernel variant for the
//                               run (default: runtime CPU dispatch; see
//                               README "Performance"). --simd=avx2 fails
//                               if the binary/CPU lacks the AVX2 kernels.
//                               The variant actually active is recorded
//                               in the metrics JSON config ("simd"), so
//                               cross-variant gates can assert both what
//                               ran and that results match
//
// Unknown --flags (other than --benchmark_*) are rejected with a usage
// message so typos fail loudly instead of silently running a default
// configuration.

#ifndef EXEARTH_BENCH_BENCH_FLAGS_H_
#define EXEARTH_BENCH_BENCH_FLAGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace exearth::bench {

/// Parsed values of the shared bench flags.
struct BenchFlags {
  bool smoke = false;
  std::string metrics_out;
  std::string trace_out;
  int threads = 0;  // 0 = flag not given
  int slowlog = 0;  // 0 = slow-query log disabled
  double slowlog_threshold_us = 0.0;
  std::string fault_spec;   // empty = no faults
  uint64_t fault_seed = 1;  // injector seed when fault_spec is given
  uint64_t deadline_us = 0;  // 0 = no per-query deadline
  uint64_t seed = 42;        // master seed for seeded workload rows
  std::string simd;          // "" = runtime dispatch, else scalar|avx2
  int admin_port = -1;       // -1 = no admin server; 0 = ephemeral port
  int64_t metrics_interval_ms = 0;  // 0 = no periodic windowed snapshots
  uint64_t page_cache_mb = 0;  // 0 = row default (4 MiB)
};

/// Parses and strips the exearth flags from argv. argv[0] and every
/// google-benchmark argument (--benchmark_*) land in `passthrough`.
/// Returns false on a malformed value (e.g. --threads=0) or an unknown
/// --flag, with a one-line description in `error`; the caller should
/// print it with BenchUsage() and exit non-zero. Side effect on success:
/// the global threads override is set for EffectiveThreads().
bool ParseBenchFlags(int argc, char** argv, BenchFlags* flags,
                     std::vector<std::string>* passthrough,
                     std::string* error);

/// Usage text listing the shared bench flags.
std::string BenchUsage(const char* argv0);

/// Value of --threads, or 0 when the flag was not given.
int ThreadsFlag();
void SetThreadsFlag(int n);

/// Value of --deadline_us, or 0 when the flag was not given. Benchmark
/// rows that honor deadlines read this to build their RequestContext.
uint64_t DeadlineUsFlag();
void SetDeadlineUsFlag(uint64_t us);

/// Value of --seed (default 42). Benchmark rows with seeded stochastic
/// workloads (E17 serving load) read this as their master seed.
uint64_t SeedFlag();
void SetSeedFlag(uint64_t seed);

/// Value of --page_cache_mb, or 0 when the flag was not given. Storage
/// benchmark rows (E18) size their BufferPool from this.
uint64_t PageCacheMbFlag();
void SetPageCacheMbFlag(uint64_t mb);

/// The thread count a benchmark row should actually run with: the row's
/// own `threads` argument, overridden by --threads for parallel rows.
inline int EffectiveThreads(int row_threads) {
  return row_threads > 1 && ThreadsFlag() > 0 ? ThreadsFlag() : row_threads;
}

}  // namespace exearth::bench

#endif  // EXEARTH_BENCH_BENCH_FLAGS_H_
