#include "storage/storage_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fault.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace exearth::storage {

using common::Result;
using common::Status;

namespace {

// Shared metric handles for the page IO path.
struct PageMetrics {
  common::Counter* reads;
  common::Counter* writes;
  common::Counter* allocs;
  common::Counter* frees;

  static const PageMetrics& Get() {
    static PageMetrics m = [] {
      auto& reg = common::MetricsRegistry::Default();
      return PageMetrics{
          reg.GetCounter("storage.page.reads"),
          reg.GetCounter("storage.page.writes"),
          reg.GetCounter("storage.page.allocs"),
          reg.GetCounter("storage.page.frees"),
      };
    }();
    return m;
  }
};

Status Errno(const char* op, const std::string& path) {
  return Status::IOError(common::StrFormat("%s(%s): %s", op, path.c_str(),
                                           std::strerror(errno)));
}

// Superblock payload layout (little-endian, after the 16-byte page
// header). Pinned by the golden-format test; changes require bumping
// kStorageFormatVersion.
constexpr uint64_t kSuperMagic = 0x31524F5453414545ull;  // "EEASTOR1"
constexpr size_t kSuperMagicOff = kPageHeaderSize;       // u64
constexpr size_t kSuperVersionOff = kSuperMagicOff + 8;  // u32
constexpr size_t kSuperPageCountOff = kSuperVersionOff + 4;   // u32
constexpr size_t kSuperFreeHeadOff = kSuperPageCountOff + 4;  // u32
constexpr size_t kSuperFreeCountOff = kSuperFreeHeadOff + 4;  // u32
constexpr size_t kSuperMetaLenOff = kSuperFreeCountOff + 4;   // u32
constexpr size_t kSuperMetaOff = kSuperMetaLenOff + 4;        // bytes

}  // namespace

// --- MemoryStorageManager ----------------------------------------------------

Result<PageId> MemoryStorageManager::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  PageMetrics::Get().allocs->Increment();
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    free_[id] = false;
    return id;
  }
  if (pages_.empty()) {
    // Index 0 is reserved (the superblock slot on disk); keep ids aligned
    // across managers so golden fixtures and tests transfer.
    pages_.push_back(nullptr);
    free_.push_back(false);
  }
  PageId id = static_cast<PageId>(pages_.size());
  pages_.push_back(std::make_unique<char[]>(kPageSize));
  free_.push_back(false);
  return id;
}

Status MemoryStorageManager::FreePage(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id >= pages_.size() || pages_[id] == nullptr || free_[id]) {
    return Status::InvalidArgument(
        common::StrFormat("FreePage: bad page id %u", id));
  }
  PageMetrics::Get().frees->Increment();
  free_[id] = true;
  free_list_.push_back(id);
  return Status::OK();
}

Status MemoryStorageManager::ReadPage(PageId id, char* buf) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id >= pages_.size() || pages_[id] == nullptr || free_[id]) {
    return Status::IOError(common::StrFormat("ReadPage: bad page id %u", id));
  }
  PageMetrics::Get().reads->Increment();
  std::memcpy(buf, pages_[id].get(), kPageSize);
  if (!VerifyPage(buf, id)) {
    return Status::IOError(
        common::StrFormat("ReadPage: checksum mismatch on page %u", id));
  }
  return Status::OK();
}

Status MemoryStorageManager::WritePage(PageId id, char* buf, uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id >= pages_.size() || pages_[id] == nullptr || free_[id]) {
    return Status::IOError(common::StrFormat("WritePage: bad page id %u", id));
  }
  EEA_RETURN_NOT_OK(common::fault::MaybeFail("storage.page.write"));
  PageMetrics::Get().writes->Increment();
  SealPage(buf, id, lsn);
  std::memcpy(pages_[id].get(), buf, kPageSize);
  return Status::OK();
}

Result<std::string> MemoryStorageManager::ReadMeta() {
  std::lock_guard<std::mutex> lock(mu_);
  return meta_;
}

Status MemoryStorageManager::WriteMeta(const std::string& meta) {
  std::lock_guard<std::mutex> lock(mu_);
  if (meta.size() > kMaxMetaBytes) {
    return Status::InvalidArgument("WriteMeta: metadata too large");
  }
  meta_ = meta;
  return Status::OK();
}

uint32_t MemoryStorageManager::page_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<uint32_t>(pages_.size());
}

uint32_t MemoryStorageManager::free_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<uint32_t>(free_list_.size());
}

// --- DiskStorageManager ------------------------------------------------------

DiskStorageManager::DiskStorageManager(std::string path, int fd)
    : path_(std::move(path)), fd_(fd) {}

DiskStorageManager::~DiskStorageManager() {
  if (fd_ >= 0) {
    // Best-effort persistence of the allocator state on clean shutdown; a
    // crash (no destructor) just leaks unreferenced pages.
    {
      std::lock_guard<std::mutex> lock(mu_);
      WriteSuperblockLocked();
    }
    ::fsync(fd_);
    ::close(fd_);
  }
}

Result<std::unique_ptr<DiskStorageManager>> DiskStorageManager::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return Errno("open", path);
  auto mgr = std::unique_ptr<DiskStorageManager>(
      new DiskStorageManager(path, fd));
  struct stat st;
  if (::fstat(fd, &st) != 0) return Errno("fstat", path);
  std::lock_guard<std::mutex> lock(mgr->mu_);
  if (st.st_size == 0) {
    // Fresh file: write the v1 superblock.
    EEA_RETURN_NOT_OK(mgr->WriteSuperblockLocked());
    if (::fsync(fd) != 0) return Errno("fsync", path);
  } else {
    EEA_RETURN_NOT_OK(mgr->ReadSuperblockLocked());
  }
  return mgr;
}

Status DiskStorageManager::WriteSuperblockLocked() {
  char page[kPageSize];
  std::memset(page, 0, kPageSize);
  StoreU64(page + kSuperMagicOff, kSuperMagic);
  StoreU32(page + kSuperVersionOff, kStorageFormatVersion);
  StoreU32(page + kSuperPageCountOff, page_count_);
  StoreU32(page + kSuperFreeHeadOff, free_head_);
  StoreU32(page + kSuperFreeCountOff, free_count_);
  StoreU32(page + kSuperMetaLenOff, static_cast<uint32_t>(meta_.size()));
  std::memcpy(page + kSuperMetaOff, meta_.data(), meta_.size());
  SealPage(page, 0, 0);
  PageMetrics::Get().writes->Increment();
  if (::pwrite(fd_, page, kPageSize, 0) != static_cast<ssize_t>(kPageSize)) {
    return Errno("pwrite", path_);
  }
  return Status::OK();
}

Status DiskStorageManager::ReadSuperblockLocked() {
  char page[kPageSize];
  if (::pread(fd_, page, kPageSize, 0) != static_cast<ssize_t>(kPageSize)) {
    return Status::IOError("superblock: short read from " + path_);
  }
  if (!VerifyPage(page, 0)) {
    return Status::IOError("superblock: checksum mismatch in " + path_);
  }
  if (LoadU64(page + kSuperMagicOff) != kSuperMagic) {
    return Status::IOError(path_ + " is not an exearth storage file");
  }
  const uint32_t version = LoadU32(page + kSuperVersionOff);
  if (version != kStorageFormatVersion) {
    return Status::IOError(common::StrFormat(
        "%s: storage format version mismatch: file has v%u, this reader "
        "supports v%u — refusing to open (format changes must ship a "
        "migration, see tests/storage_recovery_test.cc golden fixture)",
        path_.c_str(), version, kStorageFormatVersion));
  }
  page_count_ = LoadU32(page + kSuperPageCountOff);
  free_head_ = LoadU32(page + kSuperFreeHeadOff);
  free_count_ = LoadU32(page + kSuperFreeCountOff);
  const uint32_t meta_len = LoadU32(page + kSuperMetaLenOff);
  if (meta_len > kMaxMetaBytes) {
    return Status::IOError("superblock: corrupt metadata length in " + path_);
  }
  meta_.assign(page + kSuperMetaOff, meta_len);
  return Status::OK();
}

Result<PageId> DiskStorageManager::AllocatePage() {
  std::lock_guard<std::mutex> lock(mu_);
  PageMetrics::Get().allocs->Increment();
  if (free_head_ != kInvalidPageId) {
    // Pop the free-list head; a free page's payload stores the next id.
    PageId id = free_head_;
    char page[kPageSize];
    if (::pread(fd_, page, kPageSize,
                static_cast<off_t>(id) * kPageSize) !=
        static_cast<ssize_t>(kPageSize)) {
      return Errno("pread", path_);
    }
    if (!VerifyPage(page, id)) {
      return Status::IOError(
          common::StrFormat("free list: checksum mismatch on page %u", id));
    }
    free_head_ = LoadU32(page + kPageHeaderSize);
    --free_count_;
    return id;
  }
  return static_cast<PageId>(page_count_++);
}

Status DiskStorageManager::FreePage(PageId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id >= page_count_) {
    return Status::InvalidArgument(
        common::StrFormat("FreePage: bad page id %u", id));
  }
  PageMetrics::Get().frees->Increment();
  // Chain onto the free list: the freed page's payload holds the old head.
  char page[kPageSize];
  std::memset(page, 0, kPageSize);
  StoreU32(page + kPageHeaderSize, free_head_);
  EEA_RETURN_NOT_OK(WritePageLocked(id, page, 0));
  free_head_ = id;
  ++free_count_;
  return Status::OK();
}

Status DiskStorageManager::ReadPage(PageId id, char* buf) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id >= page_count_) {
    return Status::IOError(common::StrFormat("ReadPage: bad page id %u", id));
  }
  PageMetrics::Get().reads->Increment();
  const ssize_t n =
      ::pread(fd_, buf, kPageSize, static_cast<off_t>(id) * kPageSize);
  if (n != static_cast<ssize_t>(kPageSize)) {
    // A page allocated but never written reads short at EOF: surface it as
    // the same torn-page IOError the CRC would give.
    return Status::IOError(
        common::StrFormat("ReadPage: short read on page %u", id));
  }
  if (!VerifyPage(buf, id)) {
    return Status::IOError(
        common::StrFormat("ReadPage: checksum mismatch on page %u", id));
  }
  return Status::OK();
}

Status DiskStorageManager::WritePageLocked(PageId id, char* buf,
                                           uint64_t lsn) {
  // The chaos suite kills checkpoint page writes here ("crash during
  // write-back"); a triggered fault leaves the on-disk page untouched.
  EEA_RETURN_NOT_OK(common::fault::MaybeFail("storage.page.write"));
  PageMetrics::Get().writes->Increment();
  SealPage(buf, id, lsn);
  if (::pwrite(fd_, buf, kPageSize, static_cast<off_t>(id) * kPageSize) !=
      static_cast<ssize_t>(kPageSize)) {
    return Errno("pwrite", path_);
  }
  return Status::OK();
}

Status DiskStorageManager::WritePage(PageId id, char* buf, uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id == 0 || id >= page_count_) {
    return Status::IOError(common::StrFormat("WritePage: bad page id %u", id));
  }
  return WritePageLocked(id, buf, lsn);
}

Status DiskStorageManager::Sync() {
  std::lock_guard<std::mutex> lock(mu_);
  EEA_RETURN_NOT_OK(WriteSuperblockLocked());
  if (::fsync(fd_) != 0) return Errno("fsync", path_);
  return Status::OK();
}

Result<std::string> DiskStorageManager::ReadMeta() {
  std::lock_guard<std::mutex> lock(mu_);
  return meta_;
}

Status DiskStorageManager::WriteMeta(const std::string& meta) {
  std::lock_guard<std::mutex> lock(mu_);
  if (meta.size() > kMaxMetaBytes) {
    return Status::InvalidArgument("WriteMeta: metadata too large");
  }
  const std::string saved = meta_;
  meta_ = meta;
  // The meta slot is the checkpoint commit point: write-through + fsync.
  Status s = WriteSuperblockLocked();
  if (s.ok() && ::fsync(fd_) != 0) s = Errno("fsync", path_);
  if (!s.ok()) meta_ = saved;
  return s;
}

uint32_t DiskStorageManager::page_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return page_count_;
}

uint32_t DiskStorageManager::free_pages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return free_count_;
}

}  // namespace exearth::storage
