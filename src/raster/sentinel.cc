#include "raster/sentinel.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace exearth::raster {

namespace {

// Reflectance signatures, bands ordered B01, B02(Blue), B03(Green), B04(Red),
// B05, B06, B07 (red edge), B08 (NIR), B8A, B09, B10, B11, B12 (SWIR).
// Values are plausible top-of-canopy reflectances; what matters for the
// experiments is that classes are separable but overlapping.
constexpr std::array<std::array<float, kS2Bands>, kNumLandCoverClasses>
    kSignatures = {{
        // AnnualCrop: strong red edge / NIR when green.
        {{0.08f, 0.07f, 0.09f, 0.07f, 0.14f, 0.30f, 0.36f, 0.38f, 0.40f,
          0.12f, 0.02f, 0.22f, 0.12f}},
        // Forest: high NIR, low red, low SWIR.
        {{0.06f, 0.04f, 0.06f, 0.04f, 0.09f, 0.24f, 0.30f, 0.32f, 0.33f,
          0.10f, 0.01f, 0.14f, 0.07f}},
        // HerbaceousVegetation.
        {{0.07f, 0.06f, 0.08f, 0.06f, 0.12f, 0.24f, 0.29f, 0.31f, 0.32f,
          0.11f, 0.02f, 0.20f, 0.11f}},
        // Highway: asphalt, flat spectrum.
        {{0.11f, 0.11f, 0.12f, 0.13f, 0.14f, 0.15f, 0.16f, 0.16f, 0.17f,
          0.08f, 0.02f, 0.18f, 0.16f}},
        // Industrial: bright flat.
        {{0.16f, 0.17f, 0.18f, 0.19f, 0.20f, 0.21f, 0.22f, 0.23f, 0.23f,
          0.10f, 0.02f, 0.24f, 0.22f}},
        // Pasture.
        {{0.07f, 0.06f, 0.09f, 0.07f, 0.13f, 0.26f, 0.30f, 0.32f, 0.33f,
          0.11f, 0.02f, 0.21f, 0.12f}},
        // PermanentCrop (orchards/vineyards): mixed soil+canopy.
        {{0.08f, 0.07f, 0.09f, 0.08f, 0.13f, 0.22f, 0.26f, 0.28f, 0.29f,
          0.10f, 0.02f, 0.23f, 0.14f}},
        // Residential.
        {{0.13f, 0.13f, 0.14f, 0.15f, 0.16f, 0.17f, 0.18f, 0.19f, 0.19f,
          0.09f, 0.02f, 0.20f, 0.18f}},
        // River: water with sediment.
        {{0.08f, 0.07f, 0.06f, 0.05f, 0.04f, 0.03f, 0.03f, 0.02f, 0.02f,
          0.01f, 0.01f, 0.01f, 0.01f}},
        // SeaLake: clear water.
        {{0.06f, 0.05f, 0.04f, 0.03f, 0.02f, 0.02f, 0.01f, 0.01f, 0.01f,
          0.01f, 0.01f, 0.01f, 0.01f}},
    }};

// Bands that carry the vegetation signal (red edge, NIR) and respond to
// phenology; the rest are structural.
constexpr std::array<float, kS2Bands> kVegetationResponse = {
    0.0f, 0.0f, 0.1f, -0.5f, 0.2f, 0.8f, 1.0f, 1.0f, 1.0f,
    0.1f, 0.0f, 0.3f, 0.2f};

bool IsVegetated(LandCoverClass c) {
  switch (c) {
    case LandCoverClass::kAnnualCrop:
    case LandCoverClass::kForest:
    case LandCoverClass::kHerbaceousVegetation:
    case LandCoverClass::kPasture:
    case LandCoverClass::kPermanentCrop:
      return true;
    default:
      return false;
  }
}

// Generic land-cover seasonality (strongest for annual crops, none for
// built-up and water).
double LandCoverSeasonality(LandCoverClass c, int day_of_year) {
  if (!IsVegetated(c)) return 1.0;
  double amplitude = 0.0;
  switch (c) {
    case LandCoverClass::kAnnualCrop:
      amplitude = 0.6;
      break;
    case LandCoverClass::kPasture:
    case LandCoverClass::kHerbaceousVegetation:
      amplitude = 0.35;
      break;
    case LandCoverClass::kPermanentCrop:
      amplitude = 0.25;
      break;
    case LandCoverClass::kForest:
      amplitude = 0.15;
      break;
    default:
      break;
  }
  // Peak around day 180 (northern-hemisphere summer).
  double phase = std::sin(2.0 * M_PI * (day_of_year - 90) / 365.0);
  return 1.0 - amplitude * 0.5 * (1.0 - phase);
}

float DbToLinear(float db) { return std::pow(10.0f, db / 10.0f); }

}  // namespace

const std::array<float, kS2Bands>& LandCoverSignature(LandCoverClass c) {
  return kSignatures[static_cast<size_t>(c)];
}

std::array<float, kS1Bands> LandCoverBackscatter(LandCoverClass c) {
  // sigma0 in dB (VV, VH), converted to linear power.
  float vv_db = -10.0f;
  float vh_db = -17.0f;
  switch (c) {
    case LandCoverClass::kForest:
      vv_db = -8.5f;
      vh_db = -13.5f;  // volume scattering raises cross-pol
      break;
    case LandCoverClass::kResidential:
    case LandCoverClass::kIndustrial:
      vv_db = -5.0f;
      vh_db = -11.0f;  // double bounce
      break;
    case LandCoverClass::kRiver:
    case LandCoverClass::kSeaLake:
      vv_db = -18.0f;
      vh_db = -26.0f;  // specular water
      break;
    case LandCoverClass::kAnnualCrop:
    case LandCoverClass::kPermanentCrop:
      vv_db = -11.0f;
      vh_db = -17.0f;
      break;
    case LandCoverClass::kPasture:
    case LandCoverClass::kHerbaceousVegetation:
      vv_db = -12.0f;
      vh_db = -18.5f;
      break;
    case LandCoverClass::kHighway:
      vv_db = -14.0f;
      vh_db = -22.0f;
      break;
  }
  return {DbToLinear(vv_db), DbToLinear(vh_db)};
}

std::array<float, kS1Bands> IceBackscatter(IceClass c) {
  float vv_db = -20.0f;
  float vh_db = -28.0f;
  switch (c) {
    case IceClass::kOpenWater:
      vv_db = -20.0f;
      vh_db = -28.0f;
      break;
    case IceClass::kNewIce:
      vv_db = -17.0f;
      vh_db = -25.0f;
      break;
    case IceClass::kYoungIce:
      vv_db = -14.0f;
      vh_db = -22.0f;
      break;
    case IceClass::kFirstYearIce:
      vv_db = -11.0f;
      vh_db = -18.0f;
      break;
    case IceClass::kOldIce:
      vv_db = -8.0f;
      vh_db = -14.0f;  // deformed multi-year ice is bright, esp. cross-pol
      break;
  }
  return {DbToLinear(vv_db), DbToLinear(vh_db)};
}

double CropPhenology(CropType crop, int day_of_year) {
  // Gaussian-ish green-up around a crop-specific peak day.
  double peak = 180.0;
  double width = 60.0;
  double amplitude = 1.0;
  switch (crop) {
    case CropType::kWheat:
      peak = 150;
      width = 55;
      break;
    case CropType::kBarley:
      peak = 140;
      width = 50;
      break;
    case CropType::kRapeseed:
      peak = 125;
      width = 45;
      break;
    case CropType::kMaize:
      peak = 210;
      width = 55;
      break;
    case CropType::kSugarBeet:
      peak = 220;
      width = 70;
      break;
    case CropType::kPotato:
      peak = 195;
      width = 50;
      break;
    case CropType::kGrassland:
      // Persistent cover with mild seasonality.
      return 0.55 + 0.25 * std::sin(2.0 * M_PI * (day_of_year - 90) / 365.0);
    case CropType::kFallow:
      return 0.12;
  }
  double d = (day_of_year - peak) / width;
  return amplitude * std::exp(-d * d);
}

SentinelSimulator::SentinelSimulator(const Options& options, uint64_t seed)
    : options_(options), rng_(seed) {}

SceneMetadata SentinelSimulator::MakeMetadata(Mission mission, int day_of_year,
                                              int width, int height,
                                              uint64_t bytes) {
  SceneMetadata md;
  md.mission = mission;
  md.day_of_year = day_of_year;
  md.product_id = common::StrFormat(
      "S%d_EEA_%04d%03d_%06lld", mission == Mission::kSentinel1 ? 1 : 2,
      md.year, day_of_year, static_cast<long long>(product_counter_++));
  md.footprint = geo::Box::Of(
      options_.origin_x, options_.origin_y - height * options_.pixel_size,
      options_.origin_x + width * options_.pixel_size, options_.origin_y);
  md.size_bytes = bytes;
  return md;
}

SentinelProduct SentinelSimulator::SimulateS2(const ClassMap& land_cover,
                                              int day_of_year) {
  const int w = land_cover.width();
  const int h = land_cover.height();
  GeoTransform t{options_.origin_x, options_.origin_y, options_.pixel_size};
  SentinelProduct product;
  product.raster = Raster(w, h, kS2Bands, t);
  common::Rng rng = rng_.Fork();
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      auto cls = static_cast<LandCoverClass>(land_cover.at(x, y));
      const auto& sig = LandCoverSignature(cls);
      double season = LandCoverSeasonality(cls, day_of_year);
      for (int b = 0; b < kS2Bands; ++b) {
        // Seasonality scales the vegetation-responsive bands around their
        // base value; red reflectance moves opposite to greenness.
        float base = sig[static_cast<size_t>(b)];
        float response = kVegetationResponse[static_cast<size_t>(b)];
        float value = base;
        if (IsVegetated(cls) && response != 0.0f) {
          value = base * static_cast<float>(
                             1.0 + response * (season - 1.0));
        }
        value += static_cast<float>(rng.Gaussian(0.0, options_.noise_stddev));
        product.raster.Set(b, x, y, std::max(0.0f, value));
      }
    }
  }
  product.cloud_mask = Grid<uint8_t>(w, h, 0);
  product.metadata = MakeMetadata(Mission::kSentinel2, day_of_year, w, h,
                                  product.raster.ByteSize());
  AddClouds(&product);
  return product;
}

SentinelProduct SentinelSimulator::SimulateCropS2(const ClassMap& crops,
                                                  int day_of_year) {
  const int w = crops.width();
  const int h = crops.height();
  GeoTransform t{options_.origin_x, options_.origin_y, options_.pixel_size};
  SentinelProduct product;
  product.raster = Raster(w, h, kS2Bands, t);
  common::Rng rng = rng_.Fork();
  // Crop pixels interpolate between a bare-soil and a full-canopy signature
  // according to the crop's phenology at this date.
  const std::array<float, kS2Bands> kSoil = {
      0.11f, 0.10f, 0.12f, 0.14f, 0.17f, 0.19f, 0.20f, 0.21f, 0.22f,
      0.09f, 0.02f, 0.28f, 0.24f};
  const auto& canopy = LandCoverSignature(LandCoverClass::kAnnualCrop);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      auto crop = static_cast<CropType>(crops.at(x, y));
      double g = CropPhenology(crop, day_of_year);
      for (int b = 0; b < kS2Bands; ++b) {
        float soil = kSoil[static_cast<size_t>(b)];
        float green = canopy[static_cast<size_t>(b)];
        float value = static_cast<float>(soil + g * (green - soil));
        value += static_cast<float>(rng.Gaussian(0.0, options_.noise_stddev));
        product.raster.Set(b, x, y, std::max(0.0f, value));
      }
    }
  }
  product.cloud_mask = Grid<uint8_t>(w, h, 0);
  product.metadata = MakeMetadata(Mission::kSentinel2, day_of_year, w, h,
                                  product.raster.ByteSize());
  AddClouds(&product);
  return product;
}

SentinelProduct SentinelSimulator::MakeSar(const ClassMap& map,
                                           int day_of_year, bool ice_classes) {
  const int w = map.width();
  const int h = map.height();
  GeoTransform t{options_.origin_x, options_.origin_y, options_.pixel_size};
  SentinelProduct product;
  product.raster = Raster(w, h, kS1Bands, t);
  common::Rng rng = rng_.Fork();
  const double looks = options_.sar_looks;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      std::array<float, kS1Bands> mean =
          ice_classes
              ? IceBackscatter(static_cast<IceClass>(map.at(x, y)))
              : LandCoverBackscatter(static_cast<LandCoverClass>(map.at(x, y)));
      for (int b = 0; b < kS1Bands; ++b) {
        // Multi-look speckle: intensity ~ mean * Gamma(L, 1/L).
        double speckle = rng.Gamma(looks, 1.0 / looks);
        product.raster.Set(b, x, y,
                           static_cast<float>(mean[static_cast<size_t>(b)] *
                                              speckle));
      }
    }
  }
  product.metadata = MakeMetadata(Mission::kSentinel1, day_of_year, w, h,
                                  product.raster.ByteSize());
  return product;
}

SentinelProduct SentinelSimulator::SimulateS1(const ClassMap& land_cover,
                                              int day_of_year) {
  return MakeSar(land_cover, day_of_year, /*ice_classes=*/false);
}

SentinelProduct SentinelSimulator::SimulateS1Ice(const ClassMap& ice,
                                                 int day_of_year) {
  return MakeSar(ice, day_of_year, /*ice_classes=*/true);
}

void SentinelSimulator::AddClouds(SentinelProduct* product) {
  if (!rng_.Bernoulli(options_.cloud_probability)) return;
  const int w = product->raster.width();
  const int h = product->raster.height();
  common::Rng rng = rng_.Fork();
  // A few elliptical cloud blobs up to roughly the target fraction.
  double target = rng.UniformDouble(0.2, 1.8) * options_.mean_cloud_fraction;
  int64_t cloudy = 0;
  const int64_t total = static_cast<int64_t>(w) * h;
  int attempts = 0;
  while (cloudy < static_cast<int64_t>(target * total) && attempts < 64) {
    ++attempts;
    double cx = rng.UniformDouble(0, w);
    double cy = rng.UniformDouble(0, h);
    double rx = rng.UniformDouble(0.05, 0.25) * w;
    double ry = rng.UniformDouble(0.05, 0.25) * h;
    int x0 = std::max(0, static_cast<int>(cx - rx));
    int x1 = std::min(w - 1, static_cast<int>(cx + rx));
    int y0 = std::max(0, static_cast<int>(cy - ry));
    int y1 = std::min(h - 1, static_cast<int>(cy + ry));
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) {
        double dx = (x - cx) / rx;
        double dy = (y - cy) / ry;
        if (dx * dx + dy * dy > 1.0) continue;
        if (product->cloud_mask.at(x, y)) continue;
        product->cloud_mask.at(x, y) = 1;
        ++cloudy;
        for (int b = 0; b < product->raster.bands(); ++b) {
          product->raster.Set(
              b, x, y,
              0.85f + static_cast<float>(rng.Gaussian(0.0, 0.03)));
        }
      }
    }
  }
  product->metadata.cloud_cover =
      static_cast<double>(cloudy) / static_cast<double>(total);
}

}  // namespace exearth::raster
