// RDF terms and the dictionary encoding that maps terms to dense ids.
//
// The triple store (rdf/triple_store.h) operates purely on ids; the
// dictionary is the only place term strings live. This is the standard
// Strabon/virtuoso-style design the paper's C3 systems assume.

#ifndef EXEARTH_RDF_TERM_H_
#define EXEARTH_RDF_TERM_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace exearth::rdf {

enum class TermType : uint8_t { kIri = 0, kLiteral = 1, kBlank = 2 };

/// An RDF term. Literals may carry a datatype IRI (e.g. geo:wktLiteral).
struct Term {
  TermType type = TermType::kIri;
  std::string value;     // IRI string, literal lexical form, or blank label
  std::string datatype;  // literal datatype IRI ("" = plain literal)

  static Term Iri(std::string iri) {
    return Term{TermType::kIri, std::move(iri), ""};
  }
  static Term Literal(std::string value, std::string datatype = "") {
    return Term{TermType::kLiteral, std::move(value), std::move(datatype)};
  }
  static Term Blank(std::string label) {
    return Term{TermType::kBlank, std::move(label), ""};
  }

  bool IsIri() const { return type == TermType::kIri; }
  bool IsLiteral() const { return type == TermType::kLiteral; }

  /// N-Triples-style rendering: <iri>, "lit"^^<dt>, _:label.
  std::string ToString() const;

  friend bool operator==(const Term& a, const Term& b) {
    return a.type == b.type && a.value == b.value && a.datatype == b.datatype;
  }
};

/// Well-known vocabulary IRIs used across the stack.
namespace vocab {
inline constexpr char kRdfType[] =
    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
inline constexpr char kAsWkt[] = "http://www.opengis.net/ont/geosparql#asWKT";
inline constexpr char kHasGeometry[] =
    "http://www.opengis.net/ont/geosparql#hasGeometry";
inline constexpr char kWktLiteral[] =
    "http://www.opengis.net/ont/geosparql#wktLiteral";
inline constexpr char kXsdDouble[] = "http://www.w3.org/2001/XMLSchema#double";
inline constexpr char kXsdInteger[] =
    "http://www.w3.org/2001/XMLSchema#integer";
inline constexpr char kLabel[] = "http://www.w3.org/2000/01/rdf-schema#label";
}  // namespace vocab

/// Bidirectional term <-> id map. Ids are dense, starting at 1 (0 is
/// reserved as "invalid"). Not thread-safe for writes.
class Dictionary {
 public:
  static constexpr uint64_t kInvalidId = 0;

  /// Interns `term`, returning its id (existing or new).
  uint64_t Encode(const Term& term);

  /// Id of `term` if already interned.
  std::optional<uint64_t> Lookup(const Term& term) const;

  /// The term for `id`. id must be valid.
  const Term& Decode(uint64_t id) const;

  size_t size() const { return terms_.size(); }

 private:
  static std::string KeyOf(const Term& term);

  std::vector<Term> terms_;                       // id - 1 -> term
  std::unordered_map<std::string, uint64_t> ids_; // encoded key -> id
};

}  // namespace exearth::rdf

#endif  // EXEARTH_RDF_TERM_H_
