// Multi-tenant query serving layer (ROADMAP item 1): the system's front
// door. A QueryBroker accepts a stream of concurrent typed requests
// (SpatialSelect / SpatialJoin / federated BGP) from many tenants and
// pushes each through a fixed pipeline:
//
//   quota -> admission -> cache -> batch -> execute -> cache fill
//
//   * quota      — per-tenant token bucket (rate + burst) over a caller-
//                  supplied or injected clock; a tenant over its quota is
//                  shed with ResourceExhausted before touching any queue.
//   * admission  — the PR-5 AdmissionController ("admission.serve.*"): a
//                  broker-wide bounded queue with priority water lines;
//                  the tenant's priority class decides who sheds first
//                  under overload.
//   * cache      — LRU result cache keyed by (tenant, query fingerprint).
//                  Entries record the backing store's data_epoch() at fill
//                  time; a GeoStore ingest bumps the epoch, so stale
//                  entries invalidate themselves at next lookup (no stale
//                  reads, ever). Tenants never share entries.
//   * batch      — cross-request batching: concurrent SpatialSelects
//                  against the same frozen R-tree are grouped and answered
//                  by ONE shared traversal (GeoStore::SpatialSelectBatch)
//                  with per-request result demux. Under the threaded
//                  Execute() API groups form leader/follower style inside
//                  a small window; under the deterministic ExecuteWave()
//                  API the whole wave is grouped at once.
//   * execute    — runs under the tenant's deadline (ScopedRequestContext)
//                  and a "serve.request" trace span; federated requests
//                  route to the FederationEngine with the tenant's
//                  priority.
//
// Fairness: ExecuteWave services admitted requests in weighted round-
// robin order across tenants (weight w gets up to w consecutive slots per
// cycle), so a tenant flooding 10x its share cannot starve another
// tenant's queue position — the victim's k-th request is serviced within
// (total_weight / its_weight) * k + total_weight slots regardless of how
// much the hog offers. Response::service_slot exposes the position for
// tests and the load generator.
//
// Two entry points:
//   * Execute(tenant, request)            — thread-safe, call it from any
//     number of client threads; selects join in-flight batch groups.
//   * ExecuteWave(offered, now_us)        — closed-loop wave of requests
//     at one virtual timestamp, fully deterministic (same wave + same
//     now_us => byte-identical responses and counters); this is what the
//     load generator and the seeded CI gate drive.
//
// Observable: serve.requests / serve.ok / serve.errors, serve.quota.shed,
// admission.serve.* (from the controller), serve.cache.{hits,misses,
// invalidated,evicted}, serve.batch.{groups,batched_requests},
// serve.request_latency_us.

#ifndef EXEARTH_SERVE_BROKER_H_
#define EXEARTH_SERVE_BROKER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/admission.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "fed/federation.h"
#include "geo/geometry.h"
#include "rdf/query.h"
#include "strabon/geostore.h"

namespace exearth::serve {

/// What a request asks for.
enum class RequestType {
  kSpatialSelect = 0,
  kSpatialJoin = 1,
  kFederated = 2,
};

const char* RequestTypeToString(RequestType t);

/// A typed serving request. Use the factories; Fingerprint() gives the
/// cache/batch identity of the request content (tenant is keyed
/// separately — two tenants issuing the same query never share a cache
/// entry).
struct Request {
  RequestType type = RequestType::kSpatialSelect;
  // kSpatialSelect
  geo::Box box;
  strabon::SpatialRelation relation = strabon::SpatialRelation::kIntersects;
  // kSpatialJoin
  std::string class_a, class_b;
  // kFederated (query.filters are ignored, as in FederationEngine).
  rdf::Query fed_query;

  static Request SpatialSelect(
      const geo::Box& box,
      strabon::SpatialRelation rel = strabon::SpatialRelation::kIntersects);
  static Request SpatialJoin(
      std::string class_a, std::string class_b,
      strabon::SpatialRelation rel = strabon::SpatialRelation::kIntersects);
  static Request Federated(rdf::Query query);

  /// Deterministic content hash (FNV-1a over a canonical encoding).
  uint64_t Fingerprint() const;
};

/// Which pipeline stage shed a rejected request (both stages reject with
/// ResourceExhausted; this disambiguates them for accounting).
enum class ShedStage {
  kNone = 0,
  kQuota = 1,      // tenant token bucket
  kAdmission = 2,  // broker-wide admission queue
};

/// Outcome of one request. Exactly one of ids/pairs/rows is populated on
/// success, matching the request type.
struct Response {
  common::Status status;
  ShedStage shed = ShedStage::kNone;
  std::vector<uint64_t> ids;                         // kSpatialSelect
  std::vector<std::pair<uint64_t, uint64_t>> pairs;  // kSpatialJoin
  std::vector<fed::FedBinding> rows;                 // kFederated

  bool cache_hit = false;
  /// Served by a shared-traversal batch group of this many members
  /// (1 = executed alone).
  uint64_t batch_size = 1;
  /// Order-independent hash of the result content (0 on error).
  uint64_t result_hash = 0;
  /// Service position assigned by the weighted-fair scheduler
  /// (ExecuteWave only; 0 under threaded Execute).
  uint64_t service_slot = 0;
  /// Wall-clock service time of the executing unit, microseconds.
  double latency_us = 0.0;
};

/// Per-tenant serving contract.
struct TenantOptions {
  /// Token-bucket refill rate, requests per second of (virtual) time.
  double quota_rps = 1000.0;
  /// Bucket capacity: how far above the steady rate a burst may go.
  double quota_burst = 100.0;
  /// Weighted-fair share; a tenant with weight w gets up to w consecutive
  /// service slots per round-robin cycle. Must be >= 1.
  uint32_t weight = 1;
  /// Admission priority class (lower classes shed first under overload).
  common::Priority priority = common::Priority::kInteractive;
  /// Per-request deadline; 0 = none.
  int64_t deadline_us = 0;
};

using TenantId = uint32_t;

struct BrokerOptions {
  /// Broker-wide admission queue ("admission.serve.*" metrics).
  common::AdmissionOptions admission{.max_depth = 1024};
  /// Group concurrent SpatialSelects into shared traversals. Off = every
  /// request traverses alone (the ablation baseline).
  bool enable_batching = true;
  /// Largest batch group.
  size_t max_batch = 64;
  /// How long a threaded Execute() leader waits for followers before
  /// closing its group. 0 = close immediately (groups only form when
  /// requests are already waiting).
  int64_t batch_window_us = 200;
  /// Result-cache entries across all tenants; 0 disables caching.
  size_t cache_capacity = 4096;
  /// Worker threads for executing independent units of one wave in
  /// parallel (each unit may itself parallelize inside GeoStore). <= 1
  /// executes units inline.
  size_t num_threads = 1;
  /// Template options for broker-routed federated queries (priority is
  /// overridden per tenant).
  fed::FederationOptions fed_options;
};

/// One offered request of a wave: which tenant wants what.
struct Offered {
  TenantId tenant = 0;
  Request request;
};

/// Point-in-time accounting for one tenant (the /tenantz table).
struct TenantStats {
  std::string name;
  uint32_t weight = 1;
  common::Priority priority = common::Priority::kInteractive;
  double quota_rps = 0.0;
  uint64_t offered = 0;         // requests this tenant presented
  uint64_t ok = 0;              // served successfully (cache hits included)
  uint64_t errors = 0;          // failed, sheds excluded
  uint64_t quota_shed = 0;      // rejected by the tenant token bucket
  uint64_t admission_shed = 0;  // rejected by the broker admission queue
  uint64_t cache_hits = 0;
  uint64_t batched = 0;  // served by a shared-traversal group (size > 1)
};

class SloTracker;

/// The serving front door. Thread-safe after configuration: Register*
/// and set_* calls must happen before serving starts.
class QueryBroker {
 public:
  explicit QueryBroker(BrokerOptions options = {});
  ~QueryBroker();

  QueryBroker(const QueryBroker&) = delete;
  QueryBroker& operator=(const QueryBroker&) = delete;

  /// Backends (not owned; either may be null if the workload never routes
  /// to it).
  void set_store(const strabon::GeoStore* store) { store_ = store; }
  void set_federation(const fed::FederationEngine* engine) { fed_ = engine; }

  /// Registers a tenant; the returned id names it in Execute calls.
  TenantId RegisterTenant(std::string name, TenantOptions options);
  size_t num_tenants() const { return tenants_.size(); }
  const std::string& tenant_name(TenantId id) const;

  /// Clock for the threaded Execute() path's token buckets, microseconds.
  /// Defaults to steady_clock; tests inject a virtual clock for
  /// deterministic quota behavior.
  void set_clock(std::function<int64_t()> now_us);

  /// Serves one request on the calling thread (thread-safe). SpatialSelects
  /// may join an in-flight batch group and be answered by its shared
  /// traversal.
  Response Execute(TenantId tenant, const Request& request);

  /// Serves a closed wave of concurrent requests at virtual time `now_us`:
  /// quota + admission + cache in weighted-fair service order, batch
  /// grouping across the whole wave, unit execution (parallel across
  /// options.num_threads), cache fill in service order. Deterministic:
  /// responses and every serve.* counter depend only on (wave, now_us,
  /// broker state).
  std::vector<Response> ExecuteWave(const std::vector<Offered>& offered,
                                    int64_t now_us);

  /// Epoch the next federated cache entry will be tagged with; bump it
  /// when federation endpoints ingest new data so cached federated
  /// results invalidate (GeoStore-backed entries track
  /// store->data_epoch() automatically).
  void BumpFederatedEpoch() {
    fed_epoch_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Entries currently cached (stale entries count until evicted).
  size_t cache_size() const;

  const BrokerOptions& options() const { return options_; }
  common::AdmissionController* admission() { return &admission_; }

  /// Attaches an SLO tracker (not owned): every finished or shed request
  /// is Record()ed under the tenant's name with the serving clock (the
  /// wave's virtual now_us under ExecuteWave — deterministic counts).
  void set_slo_tracker(SloTracker* tracker) { slo_ = tracker; }

  /// Per-tenant accounting snapshot, registration order (the /tenantz
  /// admin page).
  std::vector<TenantStats> TenantStatsSnapshot() const;

  /// Starts draining: every subsequent request is answered Unavailable
  /// and CheckReady() fails, so /healthz flips to 503 and load balancers
  /// route away while in-flight work finishes.
  void BeginShutdown() {
    shutting_down_.store(true, std::memory_order_release);
  }
  bool shutting_down() const {
    return shutting_down_.load(std::memory_order_acquire);
  }

  /// Readiness probe: OK when the broker can serve (at least one backend
  /// registered and not shutting down).
  common::Status CheckReady() const;

 private:
  // Deterministic token bucket over caller-supplied microsecond time.
  struct TokenBucket {
    double tokens;
    double capacity;
    double per_us;
    int64_t last_us = -1;
    bool TryTake(int64_t now_us);
  };

  struct Tenant {
    std::string name;
    TenantOptions options;
    TokenBucket bucket;
    std::mutex mu;  // guards bucket
    // Accounting for /tenantz (relaxed; read via TenantStatsSnapshot).
    std::atomic<uint64_t> offered{0};
    std::atomic<uint64_t> ok{0};
    std::atomic<uint64_t> errors{0};
    std::atomic<uint64_t> quota_shed{0};
    std::atomic<uint64_t> admission_shed{0};
    std::atomic<uint64_t> cache_hits{0};
    std::atomic<uint64_t> batched{0};
  };

  struct CacheKey {
    TenantId tenant;
    uint64_t fingerprint;
    bool operator==(const CacheKey& o) const {
      return tenant == o.tenant && fingerprint == o.fingerprint;
    }
  };
  struct CacheKeyHash {
    size_t operator()(const CacheKey& k) const {
      return static_cast<size_t>(k.fingerprint ^
                                 (static_cast<uint64_t>(k.tenant) *
                                  0x9e3779b97f4a7c15ULL));
    }
  };
  struct CacheEntry {
    CacheKey key;
    RequestType type;
    uint64_t epoch;
    std::vector<uint64_t> ids;
    std::vector<std::pair<uint64_t, uint64_t>> pairs;
    std::vector<fed::FedBinding> rows;
    uint64_t result_hash = 0;
  };

  // In-flight leader/follower batch group for threaded Execute().
  struct BatchGroup {
    std::vector<const Request*> requests;
    std::vector<Response*> responses;
    bool closed = false;
    bool done = false;
  };

  Tenant* tenant(TenantId id);
  uint64_t EpochFor(RequestType type) const;

  /// Cache lookup; fills `out` and returns true on a fresh hit. Counts
  /// hits/misses/invalidations.
  bool CacheGet(const CacheKey& key, RequestType type, Response* out);
  void CachePut(const CacheKey& key, RequestType type, const Response& resp);

  /// Runs one request against its backend (no quota/admission/cache);
  /// fills results + hash. Installs the tenant deadline and trace span.
  void ExecuteSingle(const Tenant& t, const Request& request, Response* out);

  /// Executes a closed select batch group via one shared traversal and
  /// demuxes into the members' responses.
  void ExecuteSelectGroup(const std::vector<const Request*>& requests,
                          const std::vector<Response*>& responses);

  /// Threaded-path select batching: join or lead a group.
  void ExecuteSelectBatched(const Tenant& t, const Request& request,
                            Response* out);

  BrokerOptions options_;
  const strabon::GeoStore* store_ = nullptr;
  const fed::FederationEngine* fed_ = nullptr;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  common::AdmissionController admission_;
  std::function<int64_t()> now_us_;
  std::atomic<uint64_t> fed_epoch_{0};
  std::atomic<bool> shutting_down_{false};
  SloTracker* slo_ = nullptr;

  // LRU cache: map -> list iterators, most-recent at front.
  mutable std::mutex cache_mu_;
  std::list<CacheEntry> cache_lru_;
  std::unordered_map<CacheKey, std::list<CacheEntry>::iterator, CacheKeyHash>
      cache_index_;

  // Threaded-path batcher.
  std::mutex batch_mu_;
  std::condition_variable batch_cv_;
  std::shared_ptr<BatchGroup> open_group_;

  std::unique_ptr<common::ThreadPool> pool_;
};

}  // namespace exearth::serve

#endif  // EXEARTH_SERVE_BROKER_H_
