#include <gtest/gtest.h>

#include "catalog/catalogue.h"
#include "common/string_util.h"

namespace exearth::catalog {
namespace {

raster::SceneMetadata MakeProduct(int i, raster::Mission mission, int year,
                                  int doy, double cloud, double x0,
                                  double y0) {
  raster::SceneMetadata md;
  md.product_id = common::StrFormat("P%05d", i);
  md.mission = mission;
  md.year = year;
  md.day_of_year = doy;
  md.cloud_cover = cloud;
  md.footprint = geo::Box::Of(x0, y0, x0 + 100, y0 + 100);
  md.size_bytes = 1000;
  return md;
}

class CatalogueTest : public testing::Test {
 protected:
  void SetUp() override {
    // A 10x10 grid of S2 products in 2017 plus some S1 in 2018.
    int id = 0;
    for (int gy = 0; gy < 10; ++gy) {
      for (int gx = 0; gx < 10; ++gx) {
        cat_.Ingest(MakeProduct(id, raster::Mission::kSentinel2, 2017,
                                100 + id % 200, (id % 10) / 10.0, gx * 100,
                                gy * 100));
        ++id;
      }
    }
    for (int i = 0; i < 20; ++i) {
      cat_.Ingest(MakeProduct(1000 + i, raster::Mission::kSentinel1, 2018,
                              50 + i, 0.0, i * 100, 0));
    }
    ASSERT_TRUE(cat_.Build().ok());
  }

  SemanticCatalogue cat_;
};

TEST_F(CatalogueTest, CountsProducts) {
  EXPECT_EQ(cat_.num_products(), 120u);
}

TEST_F(CatalogueTest, AreaSearch) {
  SearchRequest req;
  req.area = geo::Box::Of(0, 250, 150, 350);  // rows gy=2..3, gx=0..1 region
  auto results = cat_.Search(req);
  // Footprints are 100x100 at grid positions; the box intersects gx in
  // {0,1}, gy in {2,3} -> at least 4 S2 products.
  EXPECT_GE(results.size(), 4u);
  for (const auto& md : results) {
    EXPECT_TRUE(md.footprint.Intersects(*req.area));
  }
}

TEST_F(CatalogueTest, AttributeFilters) {
  SearchRequest req;
  req.mission = raster::Mission::kSentinel1;
  auto s1 = cat_.Search(req);
  EXPECT_EQ(s1.size(), 20u);
  req.year = 2017;
  EXPECT_TRUE(cat_.Search(req).empty());  // no S1 in 2017
  SearchRequest cloud;
  cloud.mission = raster::Mission::kSentinel2;
  cloud.max_cloud_cover = 0.15;
  for (const auto& md : cat_.Search(cloud)) {
    EXPECT_LE(md.cloud_cover, 0.15);
  }
}

TEST_F(CatalogueTest, TimeWindow) {
  SearchRequest req;
  req.year = 2018;
  req.day_from = 55;
  req.day_to = 60;
  auto results = cat_.Search(req);
  EXPECT_EQ(results.size(), 6u);
  for (const auto& md : results) {
    EXPECT_GE(md.day_of_year, 55);
    EXPECT_LE(md.day_of_year, 60);
  }
}

TEST_F(CatalogueTest, LimitAndStats) {
  SearchRequest req;
  req.limit = 7;
  SearchStats stats;
  auto results = cat_.Search(req, &stats);
  EXPECT_EQ(results.size(), 7u);
  EXPECT_EQ(stats.results, 7u);
  EXPECT_GE(stats.candidates, 7u);
}

TEST_F(CatalogueTest, AreaSearchPrunesCandidates) {
  SearchRequest narrow;
  narrow.area = geo::Box::Of(0, 0, 50, 50);
  SearchStats stats;
  cat_.Search(narrow, &stats);
  EXPECT_LT(stats.candidates, 20u);
}

TEST(CatalogueKnowledgeTest, IcebergCountQuery) {
  // The paper's flagship: "how many icebergs were embedded in the ice
  // barrier at its maximum extent in 2017?".
  SemanticCatalogue cat;
  cat.Ingest(MakeProduct(0, raster::Mission::kSentinel1, 2017, 80, 0, 0, 0));
  const char* iceberg = "http://extremeearth.eu/ontology#Iceberg";
  // 5 icebergs inside the barrier region in 2017, 2 outside, 1 in 2018.
  for (int i = 0; i < 5; ++i) {
    cat.AddObservation(
        common::StrFormat("http://x/berg/%d", i), iceberg,
        geo::Geometry(geo::Point{10.0 + i, 10.0}), "P00000", 2017, 80);
  }
  for (int i = 5; i < 7; ++i) {
    cat.AddObservation(
        common::StrFormat("http://x/berg/%d", i), iceberg,
        geo::Geometry(geo::Point{500.0 + i, 500.0}), "P00000", 2017, 80);
  }
  cat.AddObservation("http://x/berg/7", iceberg,
                     geo::Geometry(geo::Point{11.0, 11.0}), "P00000", 2018,
                     80);
  ASSERT_TRUE(cat.Build().ok());
  geo::Box barrier = geo::Box::Of(0, 0, 100, 100);
  auto in_2017 = cat.CountObservations(iceberg, barrier, 2017);
  ASSERT_TRUE(in_2017.ok()) << in_2017.status();
  EXPECT_EQ(*in_2017, 5u);
  auto any_year = cat.CountObservations(iceberg, barrier, std::nullopt);
  ASSERT_TRUE(any_year.ok());
  EXPECT_EQ(*any_year, 6u);
  auto other_class = cat.CountObservations("http://x/Other", barrier, 2017);
  ASSERT_TRUE(other_class.ok());
  EXPECT_EQ(*other_class, 0u);
}

TEST(CatalogueKnowledgeTest, ObservationTriples) {
  SemanticCatalogue cat;
  cat.AddObservation("http://x/berg/0",
                     "http://extremeearth.eu/ontology#Iceberg",
                     geo::Geometry(geo::Point{1, 2}), "PROD1", 2019, 42);
  ASSERT_TRUE(cat.Build().ok());
  // geometry + type + observedIn + year + day = 5 triples.
  EXPECT_EQ(cat.knowledge().triples().size(), 5u);
}

TEST(CatalogueScalingTest, ExtrapolationIsLogarithmic) {
  // Measured 1 ms at 1M records -> at 1 trillion records the R-tree is
  // only ~2x deeper, not 1e6x slower.
  double t = SemanticCatalogue::ExtrapolateLatency(1e-3, 1000000,
                                                   1000000000000ULL);
  EXPECT_GT(t, 1e-3);
  EXPECT_LT(t, 3e-3);
}

TEST(CatalogueEmptyTest, BuildAndSearchEmpty) {
  SemanticCatalogue cat;
  ASSERT_TRUE(cat.Build().ok());
  SearchRequest req;
  EXPECT_TRUE(cat.Search(req).empty());
}

}  // namespace
}  // namespace exearth::catalog
