// Streaming byte reader/writer over a singly linked chain of pages.
//
// Both the KV checkpoint image and the frozen R-tree arena are byte
// streams larger than one page (HopsFS inline files alone reach 64 KiB,
// dwarfing the 4080-byte payload). A PageChain stores such a stream
// across pages allocated from a BufferPool, each page's payload laid out
// as:
//
//   [u32 next_page_id][u16 used_bytes][data ...]
//
// with next == kInvalidPageId on the tail. The head page id is what
// consumers persist (in the superblock meta slot) to find the stream
// again. FreeChain walks and releases a chain — used when a checkpoint
// replaces its predecessor.

#ifndef EXEARTH_STORAGE_PAGE_CHAIN_H_
#define EXEARTH_STORAGE_PAGE_CHAIN_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/buffer_pool.h"

namespace exearth::storage {

inline constexpr size_t kChainHeaderSize = 6;  // u32 next + u16 used
inline constexpr size_t kChainDataPerPage =
    kPagePayloadSize - kChainHeaderSize;

/// Appends bytes across a growing chain of pages. Write() any number of
/// times, then Finish() to seal the tail and get the head page id. All
/// pages are written through the pool (MarkDirty) with the given LSN.
class PageChainWriter {
 public:
  PageChainWriter(BufferPool* pool, uint64_t lsn) : pool_(pool), lsn_(lsn) {}

  common::Status Write(const void* data, size_t len);
  common::Status WriteU32(uint32_t v);
  common::Status WriteU64(uint64_t v);
  common::Status WriteF64(double v);
  common::Status WriteString(const std::string& s);  // u32 len + bytes

  /// Seals the tail page and returns the head page id (kInvalidPageId
  /// for an empty chain — nothing was written).
  common::Result<PageId> Finish();

  uint64_t bytes_written() const { return bytes_written_; }

 private:
  common::Status EnsurePage();

  BufferPool* pool_;
  uint64_t lsn_;
  PageId head_ = kInvalidPageId;
  PageHandle cur_;
  size_t cur_used_ = 0;
  uint64_t bytes_written_ = 0;
  bool finished_ = false;
};

/// Sequentially reads a chain written by PageChainWriter. Each page is
/// pinned only while being consumed, so chains larger than the pool read
/// fine (with evictions).
class PageChainReader {
 public:
  PageChainReader(BufferPool* pool, PageId head)
      : pool_(pool), next_(head) {}

  common::Status Read(void* out, size_t len);
  common::Result<uint32_t> ReadU32();
  common::Result<uint64_t> ReadU64();
  common::Result<double> ReadF64();
  common::Result<std::string> ReadString();

  /// True once every byte of the chain has been consumed.
  bool AtEnd();

 private:
  common::Status EnsurePage();

  BufferPool* pool_;
  PageId next_;
  PageHandle cur_;
  size_t cur_used_ = 0;
  size_t cur_off_ = 0;
};

/// Frees every page of the chain starting at `head` (no-op for
/// kInvalidPageId).
common::Status FreeChain(BufferPool* pool, PageId head);

}  // namespace exearth::storage

#endif  // EXEARTH_STORAGE_PAGE_CHAIN_H_
