// Multi-temporal preprocessing for the A1 pipeline: gap filling of
// cloud-contaminated observations and temporal smoothing of vegetation-
// index series. Real crop-monitoring chains (and PROMET's inputs) depend
// on continuous NDVI trajectories; Sentinel-2 delivers gappy ones.

#ifndef EXEARTH_FOODSEC_TIMESERIES_H_
#define EXEARTH_FOODSEC_TIMESERIES_H_

#include <vector>

#include "common/result.h"
#include "raster/raster.h"
#include "raster/sentinel.h"

namespace exearth::foodsec {

/// Linearly interpolates invalid entries between their nearest valid
/// neighbours; leading/trailing gaps take the nearest valid value.
/// Returns the number of entries filled (0 if no entry is valid).
int FillGaps(std::vector<float>* values, const std::vector<bool>& valid);

/// Centered moving average with an odd window (edges use the available
/// part of the window). window <= 1 returns the input.
std::vector<float> MovingAverage(const std::vector<float>& values,
                                 int window);

/// Builds a per-date NDVI stack from S2 scenes with cloud gaps filled
/// per-pixel (linear in time) and optionally smoothed. All scenes must
/// share the grid; needs >= 1 scene with 13 bands.
common::Result<std::vector<raster::Raster>> GapFilledNdviStack(
    const std::vector<raster::SentinelProduct>& scenes, int smooth_window);

}  // namespace exearth::foodsec

#endif  // EXEARTH_FOODSEC_TIMESERIES_H_
