
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/raster/dataset.cc" "src/raster/CMakeFiles/eea_raster.dir/dataset.cc.o" "gcc" "src/raster/CMakeFiles/eea_raster.dir/dataset.cc.o.d"
  "/root/repo/src/raster/io.cc" "src/raster/CMakeFiles/eea_raster.dir/io.cc.o" "gcc" "src/raster/CMakeFiles/eea_raster.dir/io.cc.o.d"
  "/root/repo/src/raster/landcover.cc" "src/raster/CMakeFiles/eea_raster.dir/landcover.cc.o" "gcc" "src/raster/CMakeFiles/eea_raster.dir/landcover.cc.o.d"
  "/root/repo/src/raster/raster.cc" "src/raster/CMakeFiles/eea_raster.dir/raster.cc.o" "gcc" "src/raster/CMakeFiles/eea_raster.dir/raster.cc.o.d"
  "/root/repo/src/raster/sentinel.cc" "src/raster/CMakeFiles/eea_raster.dir/sentinel.cc.o" "gcc" "src/raster/CMakeFiles/eea_raster.dir/sentinel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eea_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/eea_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
