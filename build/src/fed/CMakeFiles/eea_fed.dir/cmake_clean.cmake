file(REMOVE_RECURSE
  "CMakeFiles/eea_fed.dir/federation.cc.o"
  "CMakeFiles/eea_fed.dir/federation.cc.o.d"
  "libeea_fed.a"
  "libeea_fed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eea_fed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
