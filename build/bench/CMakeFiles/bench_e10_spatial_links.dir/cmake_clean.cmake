file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_spatial_links.dir/bench_e10_spatial_links.cc.o"
  "CMakeFiles/bench_e10_spatial_links.dir/bench_e10_spatial_links.cc.o.d"
  "bench_e10_spatial_links"
  "bench_e10_spatial_links.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_spatial_links.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
