// The ExtremeEarth platform facade (Challenge C5): one object wiring the
// HOPS-style storage layer, the semantic catalogue, and the simulated
// compute cluster together, with product registration and processing-chain
// execution as the integration points the applications (A1/A2) use.

#ifndef EXEARTH_PLATFORM_PLATFORM_H_
#define EXEARTH_PLATFORM_PLATFORM_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalogue.h"
#include "common/result.h"
#include "dfs/hopsfs.h"
#include "platform/scheduler.h"
#include "raster/io.h"
#include "raster/sentinel.h"
#include "sim/cluster.h"

namespace exearth::platform {

struct PlatformOptions {
  dfs::HopsFsCluster::Options storage;
  int compute_nodes = 8;
  sim::NodeSpec node;
  sim::NetworkSpec network;
};

/// The integrated platform.
class ExtremeEarthPlatform {
 public:
  explicit ExtremeEarthPlatform(const PlatformOptions& options);

  dfs::HopsFsNameNode& filesystem() { return namenode_; }
  catalog::SemanticCatalogue& catalogue() { return catalogue_; }
  const sim::Cluster& cluster() const { return cluster_; }

  /// Registers a product: stores its metadata record in the catalogue and
  /// creates its archive entry in the filesystem (under
  /// /products/<mission>/<id>). Data bytes are accounted, not copied.
  common::Status RegisterProduct(const raster::SceneMetadata& metadata);

  /// Registers a product *with its pixels*: the serialized product blob is
  /// written into the HopsFS-sim archive and can be read back with
  /// LoadProduct. For full scenes this stores megabytes per product.
  common::Status RegisterProductWithData(
      const raster::SentinelProduct& product);

  /// Reads a product (stored with data) back from the archive.
  common::Result<raster::SentinelProduct> LoadProduct(
      const std::string& product_id, raster::Mission mission);

  /// Finalizes the catalogue indexes after a batch of registrations.
  common::Status BuildCatalogue() { return catalogue_.Build(); }

  /// Runs a processing chain on the cluster.
  common::Result<ScheduleResult> RunChain(const std::vector<JobSpec>& jobs) {
    return ScheduleJobs(jobs, cluster_);
  }

  /// Number of products registered so far.
  size_t num_products() const { return catalogue_.num_products(); }

  /// Readiness probe for the admin /healthz endpoint: the storage
  /// namespace answers metadata transactions.
  common::Status CheckReady() { return namenode_.CheckReady(); }

 private:
  dfs::HopsFsCluster storage_;
  dfs::HopsFsNameNode namenode_;
  catalog::SemanticCatalogue catalogue_;
  sim::Cluster cluster_;
};

}  // namespace exearth::platform

#endif  // EXEARTH_PLATFORM_PLATFORM_H_
