// Sharded, replicated metadata store (ROADMAP item 3).
//
// The paper's HopsFS result rests on a replicated, partitioned NewSQL
// store under the namenode; this module reproduces that shape in
// process. Keys are placed on N shards by consistent hashing (a seeded
// vnode ring, so placement is stable and deterministic). Each shard is a
// replica group: one leader plus K followers, every replica owning its
// own WAL file (PR 9's redo log) and an in-memory kv::KvStore rebuilt
// from that log on open.
//
// Commit protocol (per shard, serialized by the shard mutex):
//   1. the leader appends the transaction's Put/Delete records plus a
//      Commit marker to its own WAL and group-fsyncs them;
//   2. `repl.leader.crash` fault point: a triggered fault kills the
//      leader *after* its local durable append but *before* anything is
//      shipped — the canonical mid-commit crash;
//   3. the encoded frame batch is shipped to each follower over an
//      in-process channel (`repl.channel.send` fault point: `io` faults
//      corrupt the bytes, others drop the batch). A follower verifies
//      the batch with Wal::ValidatePrefix — the same frame scanner a
//      restarting primary uses — rejects it unless it starts exactly at
//      its next LSN (so every follower log is a strict prefix of the
//      leader's log), then durably appends + fsyncs it: that is the ack.
//      `repl.follower.apply` can delay the in-memory apply, leaving the
//      batch durable-but-unapplied (replication lag in applied LSN);
//   4. the commit is acknowledged only once >= write_quorum followers
//      acked; on a quorum miss the leader steps down and the commit
//      returns Unavailable (unacknowledged).
//
// Failover: when a leader dies (injected crash, poisoned WAL, or
// CrashReplica), a deterministic election picks the live replica with
// the highest durable LSN, ties broken by lowest replica id; a seeded
// Rng stamps each election with a reproducible term nonce. Because
// follower logs are strict prefixes of the leader's log, the max-LSN
// winner contains every quorum-acked write — an acked write survives
// any single-node crash by construction — while a commit the crashed
// leader never shipped exists on no surviving node and stays invisible.
// A crashed replica is a permanent node loss (its WAL is never
// reconsidered); lagging followers are caught up from the shard's
// in-memory log on the next ship.
//
// Cross-shard transactions commit shard-by-shard in shard-id order:
// before the first shard acks, any failure aborts the whole transaction
// (nothing durable anywhere); after the first ack the transaction is
// past its commit point and the remaining shards are retried against
// freshly elected leaders until they land, so a multi-shard commit is
// either fully invisible or fully applied even across a mid-commit
// leader kill. (If a later shard has lost *all* replicas the commit is
// stuck partial and reported Unavailable — with K >= 1 and single-node
// crashes this cannot happen.)
//
// Logs are never checkpointed here: recovery replays a replica's full
// WAL (log compaction is future work; see README "Replication").

#ifndef EXEARTH_REPL_REPLICATED_STORE_H_
#define EXEARTH_REPL_REPLICATED_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "kv/kvstore.h"
#include "kv/meta_store.h"

namespace exearth::repl {

struct ReplOptions {
  /// Number of shards (replica groups).
  int num_shards = 1;
  /// Followers per shard; the replica group size is 1 + this.
  int followers_per_shard = 2;
  /// Follower acks (durable appends of the whole commit batch) required
  /// before a commit is acknowledged; clamped to followers_per_shard.
  /// With the default 1, an acked write is durable on two nodes and
  /// survives any single-node crash. 0 (only meaningful with zero
  /// followers) degenerates to single-node durability.
  int write_quorum = 1;
  /// Partitions of each replica's in-memory kv::KvStore.
  int kv_partitions = 4;
  /// Virtual nodes per shard on the consistent-hash ring.
  int ring_vnodes = 16;
  /// Directory for per-replica WAL files (created if missing). Empty =
  /// volatile mode: the full protocol runs (channels, quorum, elections)
  /// but nothing touches disk — for tools and smoke tests.
  std::string data_dir;
  /// Seed for the election-term nonce stream (the winner rule itself is
  /// deterministic; the nonce makes each election traceable).
  uint64_t election_seed = 42;
};

/// One replica's view in a status snapshot.
struct ReplicaStatus {
  int shard = 0;
  int replica = 0;
  bool is_leader = false;
  bool down = false;
  uint64_t durable_lsn = 0;  // highest LSN durably appended
  uint64_t applied_lsn = 0;  // highest LSN applied to the in-memory store
  uint64_t lag_frames = 0;   // leader durable LSN - this durable LSN
};

struct ShardStatus {
  int shard = 0;
  int leader = -1;  // replica id, -1 when every replica is down
  uint64_t leader_lsn = 0;
  uint64_t elections = 0;       // failovers since open
  uint64_t election_term = 0;   // seeded nonce of the latest election
  std::vector<ReplicaStatus> replicas;
};

/// Monotonic counters, mirrored into the global MetricsRegistry under
/// `repl.*` (the determinism gate diffs these byte-for-byte).
struct ReplStats {
  uint64_t commits_acked = 0;
  uint64_t quorum_failures = 0;   // commits refused for lack of acks
  uint64_t elections = 0;         // failover elections across shards
  uint64_t leader_crashes = 0;    // injected leader kills
  uint64_t channel_drops = 0;     // batches dropped by repl.channel.send
  uint64_t follower_rejects = 0;  // batches failing ValidatePrefix/LSN
  uint64_t catchup_records = 0;   // records re-shipped to lagging followers
  uint64_t frames_shipped = 0;    // records durably appended on followers
};

class ShardGroup;

/// The sharded, replicated store. Implements kv::MetaStore, so
/// dfs::HopsFsCluster runs on it unchanged. Thread-safe; per-shard
/// commits are serialized by the shard mutex.
class ReplicatedKvStore final : public kv::MetaStore {
 public:
  /// Opens (or recovers) a store. With a data_dir, each replica's WAL is
  /// replayed: committed transactions become visible, the replica with
  /// the highest durable LSN (ties: lowest id) becomes leader.
  static common::Result<std::unique_ptr<ReplicatedKvStore>> Open(
      const ReplOptions& options);

  ~ReplicatedKvStore() override;
  ReplicatedKvStore(const ReplicatedKvStore&) = delete;
  ReplicatedKvStore& operator=(const ReplicatedKvStore&) = delete;

  // --- kv::MetaStore -----------------------------------------------------
  std::unique_ptr<kv::MetaTransaction> Begin() override;
  common::Status Put(const std::string& key, std::string value) override;
  common::Result<std::string> Get(const std::string& key) override;
  common::Status Delete(const std::string& key) override;
  std::vector<std::pair<std::string, std::string>> ScanPrefix(
      const std::string& prefix, size_t limit = 0) const override;
  size_t Size() const override;

  // --- Sharding ----------------------------------------------------------
  /// Shard a key lives on (consistent-hash ring lookup).
  int ShardOf(const std::string& key) const;
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int replicas_per_shard() const { return options_.followers_per_shard + 1; }
  const ReplOptions& options() const { return options_; }

  // --- Follower reads ----------------------------------------------------
  /// Reads a key from a specific replica's store (leader or follower).
  /// Follower reads see the replica's *applied* state, which may lag the
  /// leader; NotFound if absent, Unavailable if the replica is down.
  common::Result<std::string> ReadReplica(int shard, int replica,
                                          const std::string& key) const;
  /// Prefix scan against a specific replica's applied state.
  common::Result<std::vector<std::pair<std::string, std::string>>>
  ScanReplicaPrefix(int shard, int replica, const std::string& prefix,
                    size_t limit = 0) const;

  // --- Introspection / ops ----------------------------------------------
  std::vector<ShardStatus> StatusSnapshot() const;
  ReplStats repl_stats() const;
  /// Readiness: every shard has a live leader and enough live followers
  /// to reach its write quorum.
  common::Status CheckReady() const;
  /// Permanently removes a replica (simulated node loss). Killing a
  /// leader triggers an immediate election. Drills and the blackout
  /// bench use this alongside the `repl.*` fault points.
  void CrashReplica(int shard, int replica);
  /// The current leader's in-memory store for a shard (test hook; may
  /// run a pending election, nullptr if the shard has no live replica).
  kv::KvStore* leader_store(int shard);

 private:
  friend class ReplTransaction;
  explicit ReplicatedKvStore(const ReplOptions& options);

  ReplOptions options_;
  // Consistent-hash ring: sorted vnode hashes + the shard each maps to.
  std::vector<uint64_t> ring_hash_;
  std::vector<int> ring_shard_;
  std::vector<std::unique_ptr<ShardGroup>> shards_;
  std::atomic<uint64_t> next_txn_id_{1};
};

}  // namespace exearth::repl

#endif  // EXEARTH_REPL_REPLICATED_STORE_H_
