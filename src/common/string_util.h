// Small string helpers shared across modules (CSV/WKT parsing, report
// formatting). Kept deliberately minimal; no locale dependence.

#ifndef EXEARTH_COMMON_STRING_UTIL_H_
#define EXEARTH_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace exearth::common {

/// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lower-cases ASCII letters.
std::string ToLower(std::string_view s);

/// Parses a double; returns false on malformed or trailing input.
bool ParseDouble(std::string_view s, double* out);
/// Parses a signed 64-bit integer; returns false on malformed input.
bool ParseInt64(std::string_view s, int64_t* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Human-readable byte count, e.g. "1.5 MiB".
std::string HumanBytes(uint64_t bytes);

/// FNV-1a 64-bit hash; stable across platforms (used for dictionary and
/// blocking keys).
uint64_t Fnv1a(std::string_view s);

}  // namespace exearth::common

#endif  // EXEARTH_COMMON_STRING_UTIL_H_
