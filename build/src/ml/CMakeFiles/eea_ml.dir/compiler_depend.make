# Empty compiler generated dependencies file for eea_ml.
# This may be replaced when dependencies are built.
