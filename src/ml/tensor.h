// A minimal dense float32 tensor for the deep-learning substrate (C1).
//
// Shapes are explicit vectors of dims; storage is contiguous row-major.
// This is deliberately a small, boring tensor: the experiments need correct
// gradients and honest FLOP accounting, not a full autograd framework.

#ifndef EXEARTH_ML_TENSOR_H_
#define EXEARTH_ML_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"

namespace exearth::ml {

/// Dense row-major float tensor.
class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<int> shape);

  static Tensor Zeros(std::vector<int> shape) { return Tensor(std::move(shape)); }
  /// He-normal initialization with fan_in; the standard conv/dense init.
  static Tensor HeNormal(std::vector<int> shape, int fan_in,
                         common::Rng* rng);

  const std::vector<int>& shape() const { return shape_; }
  int ndim() const { return static_cast<int>(shape_.size()); }
  int dim(int i) const { return shape_[static_cast<size_t>(i)]; }
  int64_t size() const { return static_cast<int64_t>(data_.size()); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  float& operator[](int64_t i) { return data_[static_cast<size_t>(i)]; }
  float operator[](int64_t i) const { return data_[static_cast<size_t>(i)]; }

  /// Reinterprets the buffer with a new shape of equal element count.
  void Reshape(std::vector<int> shape);

  void FillZero();
  void Fill(float v);

  /// this += other (elementwise; equal sizes).
  void Add(const Tensor& other);
  /// this *= s.
  void Scale(float s);

  /// Sum of squares of all elements (for gradient-norm diagnostics).
  double SquaredNorm() const;

  std::string ShapeString() const;

 private:
  std::vector<int> shape_;
  std::vector<float> data_;
};

/// C = A(m,k) * B(k,n). C must be preallocated to (m,n).
void MatMul(const Tensor& a, const Tensor& b, Tensor* c);
/// C = A^T(k,m -> m,k pattern) — computes C(k,n) = A(m,k)^T * B(m,n).
void MatMulTransA(const Tensor& a, const Tensor& b, Tensor* c);
/// C(m,k) = A(m,n) * B(k,n)^T.
void MatMulTransB(const Tensor& a, const Tensor& b, Tensor* c);

}  // namespace exearth::ml

#endif  // EXEARTH_ML_TENSOR_H_
