// Page-granular storage managers behind the buffer pool (ROADMAP item 1,
// DESIGN.md — the durable layer under the NewSQL KV store and the frozen
// R-tree).
//
// IStorageManager is the narrow waist: allocate / free / read / write
// fixed 4 KiB pages plus a small superblock metadata slot consumers use as
// their atomic commit point (the KV checkpoint root lives there). Two
// implementations:
//
//   MemoryStorageManager — pages in a vector; the reference model for the
//       torture tests and the zero-IO configuration.
//   DiskStorageManager   — one file, page i at byte offset i * 4096.
//       Page 0 is the superblock: magic, format version, page count, the
//       free-list head and the metadata slot. Freed pages are chained into
//       a free list (each free page's payload stores the next free id), so
//       files do not grow monotonically. Every page carries a CRC32
//       header (see page.h); a torn or corrupted page fails ReadPage with
//       IOError instead of propagating garbage.
//
// Durability contract (DiskStorageManager): WritePage only buffers in the
// OS; Sync() persists pages AND the superblock (fsync). WriteMeta()
// writes the superblock and fsyncs immediately — it is the atomic commit
// point checkpoints rely on. A crash between WritePage and Sync can lose
// or tear pages; consumers order their writes so that nothing durable
// references them until after the meta flip (write pages -> Sync ->
// WriteMeta). Pages allocated but not yet referenced by the superblock at
// a crash are leaked until the next successful checkpoint rewrites the
// chain — an accepted cost, never a correctness issue.
//
// Fault injection: DiskStorageManager::WritePage is the registered
// `storage.page.write` point (see common/fault.h); chaos tests kill
// checkpoint writes there.
//
// Thread safety: both managers serialize on an internal mutex. The buffer
// pool is the intended (single) caller; the mutex makes direct test /
// tool access safe too.

#ifndef EXEARTH_STORAGE_STORAGE_MANAGER_H_
#define EXEARTH_STORAGE_STORAGE_MANAGER_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"

namespace exearth::storage {

/// Current on-disk format version. Bump deliberately: the golden-format
/// test (tests/storage_recovery_test.cc) pins the v1 layout bit-for-bit,
/// and DiskStorageManager::Open refuses files from other versions with an
/// explicit message.
inline constexpr uint32_t kStorageFormatVersion = 1;

/// Max bytes of consumer metadata in the superblock slot.
inline constexpr size_t kMaxMetaBytes = 512;

class IStorageManager {
 public:
  virtual ~IStorageManager() = default;

  /// Allocates a page (reusing freed pages first). The page's contents
  /// are unspecified until the first WritePage.
  virtual common::Result<PageId> AllocatePage() = 0;

  /// Returns `id` to the free list.
  virtual common::Status FreePage(PageId id) = 0;

  /// Reads the full page image (kPageSize bytes) into `buf`, verifying
  /// the CRC32 header; IOError on checksum or page-id mismatch.
  virtual common::Status ReadPage(PageId id, char* buf) = 0;

  /// Seals (id + lsn + CRC stamped into the header of `buf`) and writes
  /// the full page image. `buf` must hold kPageSize bytes and is modified
  /// in place by the seal.
  virtual common::Status WritePage(PageId id, char* buf, uint64_t lsn) = 0;

  /// Persists all buffered page writes and the superblock.
  virtual common::Status Sync() = 0;

  /// Consumer metadata slot in the superblock (<= kMaxMetaBytes). Reads
  /// return the last successfully written value (empty for a fresh file);
  /// writes are persisted immediately (superblock write + fsync) — the
  /// atomic commit point for checkpoints.
  virtual common::Result<std::string> ReadMeta() = 0;
  virtual common::Status WriteMeta(const std::string& meta) = 0;

  /// Pages ever allocated (includes the superblock for disk files).
  virtual uint32_t page_count() const = 0;
  /// Pages currently on the free list.
  virtual uint32_t free_pages() const = 0;

  virtual const char* name() const = 0;
};

/// In-memory pages; same interface and failure modes minus durability.
class MemoryStorageManager : public IStorageManager {
 public:
  MemoryStorageManager() = default;

  common::Result<PageId> AllocatePage() override;
  common::Status FreePage(PageId id) override;
  common::Status ReadPage(PageId id, char* buf) override;
  common::Status WritePage(PageId id, char* buf, uint64_t lsn) override;
  common::Status Sync() override { return common::Status::OK(); }
  common::Result<std::string> ReadMeta() override;
  common::Status WriteMeta(const std::string& meta) override;
  uint32_t page_count() const override;
  uint32_t free_pages() const override;
  const char* name() const override { return "memory"; }

 private:
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<char[]>> pages_;  // index 0 unused
  std::vector<bool> free_;
  std::vector<PageId> free_list_;
  std::string meta_;
};

/// File-backed pages with a checksummed superblock.
class DiskStorageManager : public IStorageManager {
 public:
  /// Opens (or creates) the storage file at `path`. An existing file's
  /// superblock is validated: bad magic / CRC is IOError, and a format
  /// version other than kStorageFormatVersion fails with an explicit
  /// "format version mismatch" message so readers never misparse a future
  /// layout.
  static common::Result<std::unique_ptr<DiskStorageManager>> Open(
      const std::string& path);

  ~DiskStorageManager() override;
  DiskStorageManager(const DiskStorageManager&) = delete;
  DiskStorageManager& operator=(const DiskStorageManager&) = delete;

  common::Result<PageId> AllocatePage() override;
  common::Status FreePage(PageId id) override;
  common::Status ReadPage(PageId id, char* buf) override;
  common::Status WritePage(PageId id, char* buf, uint64_t lsn) override;
  common::Status Sync() override;
  common::Result<std::string> ReadMeta() override;
  common::Status WriteMeta(const std::string& meta) override;
  uint32_t page_count() const override;
  uint32_t free_pages() const override;
  const char* name() const override { return "disk"; }

  const std::string& path() const { return path_; }

 private:
  DiskStorageManager(std::string path, int fd);

  common::Status WriteSuperblockLocked();
  common::Status ReadSuperblockLocked();
  common::Status WritePageLocked(PageId id, char* buf, uint64_t lsn);

  std::string path_;
  int fd_ = -1;
  mutable std::mutex mu_;
  // Superblock state (mirrored in memory; persisted by Sync/WriteMeta).
  uint32_t page_count_ = 1;  // page 0 is the superblock
  PageId free_head_ = kInvalidPageId;
  uint32_t free_count_ = 0;
  std::string meta_;
};

}  // namespace exearth::storage

#endif  // EXEARTH_STORAGE_STORAGE_MANAGER_H_
