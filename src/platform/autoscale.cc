#include "platform/autoscale.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "sim/event_queue.h"

namespace exearth::platform {

using common::Result;
using common::Status;

Result<AutoscaleReport> SimulateAutoscaling(const AutoscaleOptions& options) {
  if (options.min_nodes < 1 || options.max_nodes < options.min_nodes) {
    return Status::InvalidArgument("need 1 <= min_nodes <= max_nodes");
  }
  if (options.scenes_per_hour <= 0 || options.hours_per_scene <= 0 ||
      options.horizon_hours <= 0) {
    return Status::InvalidArgument("rates and horizon must be positive");
  }

  common::Rng rng(options.seed);
  sim::EventQueue clock;
  AutoscaleReport report;

  struct Scene {
    double arrival = 0.0;
  };
  std::deque<Scene> queue;
  // Per-node: time the node becomes free (< now = idle).
  std::vector<double> node_free(static_cast<size_t>(options.min_nodes), 0.0);
  double node_hours = 0.0;
  double node_integral = 0.0;  // for mean_nodes
  double last_account = 0.0;
  double total_latency = 0.0;

  auto account = [&](double now) {
    const double dt = now - last_account;
    node_hours += dt * static_cast<double>(node_free.size());
    node_integral += dt * static_cast<double>(node_free.size());
    last_account = now;
  };

  // Dispatch queued scenes onto free nodes.
  std::function<void()> dispatch = [&] {
    const double now = clock.now();
    while (!queue.empty()) {
      auto it = std::min_element(node_free.begin(), node_free.end());
      if (*it > now) break;  // no free node right now
      Scene scene = queue.front();
      queue.pop_front();
      const double end = now + options.hours_per_scene;
      *it = end;
      clock.ScheduleAt(end, [&, scene, end] {
        ++report.scenes_processed;
        const double latency = end - scene.arrival;
        total_latency += latency;
        report.max_latency_hours = std::max(report.max_latency_hours, latency);
        dispatch();
      });
    }
    report.max_backlog = std::max(report.max_backlog,
                                  static_cast<uint64_t>(queue.size()));
  };

  // Satellite passes: bursts of scenes.
  const double scenes_per_pass =
      options.scenes_per_hour * options.pass_interval_hours;
  double t = 0.0;
  while (t < options.horizon_hours) {
    t += rng.Exponential(1.0 / options.pass_interval_hours);
    if (t >= options.horizon_hours) break;
    const int64_t burst = rng.Poisson(scenes_per_pass);
    clock.ScheduleAt(t, [&, t, burst] {
      for (int64_t i = 0; i < burst; ++i) queue.push_back(Scene{t});
      dispatch();
    });
  }

  // Controller ticks.
  std::function<void()> control = [&] {
    const double now = clock.now();
    account(now);
    const double per_node = static_cast<double>(queue.size()) /
                            static_cast<double>(node_free.size());
    if (per_node > options.scale_up_backlog &&
        static_cast<int>(node_free.size()) < options.max_nodes) {
      // Add nodes proportionally to the excess backlog.
      int add = std::max<int>(
          1, static_cast<int>(per_node / options.scale_up_backlog));
      while (add-- > 0 &&
             static_cast<int>(node_free.size()) < options.max_nodes) {
        node_free.push_back(now);
      }
      dispatch();
    } else if (static_cast<int>(node_free.size()) > options.min_nodes) {
      // Retire one node that has been idle long enough.
      for (size_t i = 0; i < node_free.size(); ++i) {
        if (node_free[i] + options.scale_down_idle_hours <= now) {
          node_free.erase(node_free.begin() + static_cast<ptrdiff_t>(i));
          break;
        }
      }
    }
    report.peak_nodes =
        std::max(report.peak_nodes, static_cast<int>(node_free.size()));
    if (now + options.control_interval_hours < options.horizon_hours * 2) {
      // Keep controlling until the queue drains after the horizon.
      if (!queue.empty() || now < options.horizon_hours) {
        clock.ScheduleAfter(options.control_interval_hours, control);
      }
    }
  };
  clock.ScheduleAt(0.0, control);

  clock.Run();
  account(clock.now());
  if (report.scenes_processed > 0) {
    report.mean_latency_hours =
        total_latency / static_cast<double>(report.scenes_processed);
  }
  report.node_hours_used = node_hours;
  report.mean_nodes = clock.now() > 0 ? node_integral / clock.now() : 0;
  report.peak_nodes =
      std::max(report.peak_nodes, static_cast<int>(node_free.size()));
  return report;
}

}  // namespace exearth::platform
