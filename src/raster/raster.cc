#include "raster/raster.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace exearth::raster {

using common::Result;
using common::Status;

Raster::Raster(int width, int height, int bands, GeoTransform transform)
    : width_(width), height_(height), bands_(bands), transform_(transform) {
  EEA_CHECK(width >= 0 && height >= 0 && bands >= 0);
  data_.assign(static_cast<size_t>(width) * height * bands, 0.0f);
}

geo::Box Raster::Extent() const {
  return geo::Box::Of(transform_.origin_x,
                      transform_.origin_y - height_ * transform_.pixel_size,
                      transform_.origin_x + width_ * transform_.pixel_size,
                      transform_.origin_y);
}

Raster::BandStats Raster::ComputeStats(int band) const {
  BandStats stats;
  const float* p = BandData(band);
  const size_t n = BandSize();
  if (n == 0) return stats;
  double sum = 0;
  double sum2 = 0;
  float mn = p[0];
  float mx = p[0];
  for (size_t i = 0; i < n; ++i) {
    sum += p[i];
    sum2 += static_cast<double>(p[i]) * p[i];
    mn = std::min(mn, p[i]);
    mx = std::max(mx, p[i]);
  }
  stats.mean = static_cast<float>(sum / n);
  double var = sum2 / n - static_cast<double>(stats.mean) * stats.mean;
  stats.stddev = static_cast<float>(std::sqrt(std::max(0.0, var)));
  stats.min = mn;
  stats.max = mx;
  return stats;
}

std::vector<float> Raster::PixelVector(int x, int y) const {
  std::vector<float> v(bands_);
  for (int b = 0; b < bands_; ++b) v[b] = Get(b, x, y);
  return v;
}

Result<Raster> Raster::ExtractPatch(int x0, int y0, int w, int h) const {
  if (x0 < 0 || y0 < 0 || w <= 0 || h <= 0 || x0 + w > width_ ||
      y0 + h > height_) {
    return Status::OutOfRange(common::StrFormat(
        "patch [%d,%d %dx%d] outside raster %dx%d", x0, y0, w, h, width_,
        height_));
  }
  GeoTransform t = transform_;
  t.origin_x += x0 * t.pixel_size;
  t.origin_y -= y0 * t.pixel_size;
  Raster out(w, h, bands_, t);
  for (int b = 0; b < bands_; ++b) {
    for (int y = 0; y < h; ++y) {
      const float* src = BandData(b) + static_cast<size_t>(y0 + y) * width_ + x0;
      float* dst = out.BandData(b) + static_cast<size_t>(y) * w;
      std::copy(src, src + w, dst);
    }
  }
  return out;
}

Raster Raster::ResampleNearest(int new_width, int new_height) const {
  GeoTransform t = transform_;
  if (new_width > 0) {
    t.pixel_size = transform_.pixel_size * width_ / new_width;
  }
  Raster out(new_width, new_height, bands_, t);
  for (int b = 0; b < bands_; ++b) {
    for (int y = 0; y < new_height; ++y) {
      int sy = std::min(height_ - 1, y * height_ / new_height);
      for (int x = 0; x < new_width; ++x) {
        int sx = std::min(width_ - 1, x * width_ / new_width);
        out.Set(b, x, y, Get(b, sx, sy));
      }
    }
  }
  return out;
}

Result<Raster> Raster::DownsampleMean(int factor) const {
  if (factor <= 0 || width_ % factor != 0 || height_ % factor != 0) {
    return Status::InvalidArgument(common::StrFormat(
        "factor %d does not divide %dx%d", factor, width_, height_));
  }
  const int nw = width_ / factor;
  const int nh = height_ / factor;
  GeoTransform t = transform_;
  t.pixel_size *= factor;
  Raster out(nw, nh, bands_, t);
  const double inv = 1.0 / (static_cast<double>(factor) * factor);
  for (int b = 0; b < bands_; ++b) {
    for (int y = 0; y < nh; ++y) {
      for (int x = 0; x < nw; ++x) {
        double sum = 0;
        for (int dy = 0; dy < factor; ++dy) {
          for (int dx = 0; dx < factor; ++dx) {
            sum += Get(b, x * factor + dx, y * factor + dy);
          }
        }
        out.Set(b, x, y, static_cast<float>(sum * inv));
      }
    }
  }
  return out;
}

Result<Raster> NormalizedDifference(const Raster& r, int band_a, int band_b) {
  if (band_a < 0 || band_a >= r.bands() || band_b < 0 || band_b >= r.bands()) {
    return Status::InvalidArgument("band index out of range");
  }
  Raster out(r.width(), r.height(), 1, r.transform());
  const float* a = r.BandData(band_a);
  const float* b = r.BandData(band_b);
  float* o = out.BandData(0);
  const size_t n = r.BandSize();
  for (size_t i = 0; i < n; ++i) {
    float denom = a[i] + b[i];
    o[i] = denom == 0.0f ? 0.0f : (a[i] - b[i]) / denom;
  }
  return out;
}

}  // namespace exearth::raster
