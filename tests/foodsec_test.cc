#include <gtest/gtest.h>

#include <cmath>

#include "foodsec/fields.h"
#include "foodsec/pipeline.h"
#include "foodsec/water.h"
#include "rdf/query.h"

namespace exearth::foodsec {
namespace {

// --- Field extraction -----------------------------------------------------

raster::ClassMap QuadrantMap(int size) {
  // Four quadrants with distinct crops.
  raster::ClassMap map(size, size);
  for (int y = 0; y < size; ++y) {
    for (int x = 0; x < size; ++x) {
      uint8_t crop = static_cast<uint8_t>((x < size / 2 ? 0 : 1) +
                                          (y < size / 2 ? 0 : 2));
      map.at(x, y) = crop;
    }
  }
  return map;
}

TEST(FieldsTest, ExtractsQuadrants) {
  raster::ClassMap map = QuadrantMap(16);
  raster::GeoTransform t{0, 160, 10.0};
  auto fields = ExtractFields(map, t, FieldExtractionOptions{});
  ASSERT_EQ(fields.size(), 4u);
  for (const Field& f : fields) {
    EXPECT_EQ(f.pixels, 64);
    // 64 pixels x 100 m2 = 6400 m2 = 0.64 ha.
    EXPECT_NEAR(f.area_ha, 0.64, 1e-9);
  }
  // Crops distinct.
  std::set<int> crops;
  for (const Field& f : fields) crops.insert(static_cast<int>(f.crop));
  EXPECT_EQ(crops.size(), 4u);
}

TEST(FieldsTest, MinPixelsFilters) {
  raster::ClassMap map(8, 8);
  map.Fill(0);
  map.at(7, 7) = 3;  // single-pixel speck
  raster::GeoTransform t{0, 80, 10.0};
  FieldExtractionOptions opt;
  opt.min_pixels = 4;
  auto fields = ExtractFields(map, t, opt);
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0].pixels, 63);
  opt.min_pixels = 1;
  EXPECT_EQ(ExtractFields(map, t, opt).size(), 2u);
}

TEST(FieldsTest, CentroidAndBounds) {
  raster::ClassMap map(4, 4);
  map.Fill(2);
  raster::GeoTransform t{100, 140, 10.0};
  auto fields = ExtractFields(map, t, FieldExtractionOptions{});
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_NEAR(fields[0].centroid.x, 120.0, 1e-9);
  EXPECT_NEAR(fields[0].centroid.y, 120.0, 1e-9);
  EXPECT_NEAR(fields[0].bounds.min_x, 100.0, 1e-9);
  EXPECT_NEAR(fields[0].bounds.max_y, 140.0, 1e-9);
}

TEST(FieldsTest, PublishAsLinkedData) {
  raster::ClassMap map = QuadrantMap(8);
  raster::GeoTransform t{0, 80, 10.0};
  auto fields = ExtractFields(map, t, FieldExtractionOptions{});
  strabon::GeoStore store;
  size_t triples = PublishFields(fields, "http://x", &store);
  EXPECT_EQ(triples, fields.size() * 4);
  ASSERT_TRUE(store.Build().ok());
  // Spatial query: fields intersecting the lower-left quadrant.
  auto hits = *store.SpatialSelect(geo::Box::Of(0, 0, 35, 35),
                                   strabon::SpatialRelation::kIntersects,
                                   true);
  EXPECT_GE(hits.size(), 1u);
  // Thematic query: crop type per field.
  rdf::QueryEngine engine(&store.triples());
  rdf::Query q;
  q.where.push_back(rdf::TriplePattern{
      rdf::PatternSlot::Var("f"),
      rdf::PatternSlot::Iri("http://extremeearth.eu/ontology#cropType"),
      rdf::PatternSlot::Var("crop")});
  auto rows = engine.Execute(q);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), fields.size());
}

// --- Water model -----------------------------------------------------------

TEST(WeatherTest, SynthesisIsSeasonalAndDeterministic) {
  auto a = SynthesizeWeather(7);
  auto b = SynthesizeWeather(7);
  ASSERT_EQ(a.size(), 365u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].tmax_c, b[i].tmax_c);
    EXPECT_GE(a[i].tmax_c, a[i].tmin_c);
    EXPECT_GE(a[i].precip_mm, 0.0);
  }
  // Summer warmer than winter on average.
  double summer = 0;
  double winter = 0;
  for (int d = 180; d < 210; ++d) summer += a[static_cast<size_t>(d)].tmax_c;
  for (int d = 0; d < 30; ++d) winter += a[static_cast<size_t>(d)].tmax_c;
  EXPECT_GT(summer / 30, winter / 30 + 5);
}

TEST(WaterTest, Et0PositiveAndSeasonal) {
  WeatherDay summer{15, 28, 0};
  WeatherDay winter{-2, 4, 0};
  double et_summer = ReferenceEvapotranspiration(summer, 190);
  double et_winter = ReferenceEvapotranspiration(winter, 10);
  EXPECT_GT(et_summer, et_winter);
  EXPECT_GT(et_summer, 2.0);
  EXPECT_GE(et_winter, 0.0);
}

TEST(WaterTest, KcFollowsPhenology) {
  // Wheat peaks before maize.
  EXPECT_GT(CropCoefficient(raster::CropType::kWheat, 150),
            CropCoefficient(raster::CropType::kMaize, 150));
  EXPECT_GT(CropCoefficient(raster::CropType::kMaize, 210),
            CropCoefficient(raster::CropType::kWheat, 210));
  // Fallow stays near the bare-soil coefficient.
  EXPECT_LT(CropCoefficient(raster::CropType::kFallow, 180), 0.45);
}

TEST(WaterTest, ProductsShapeAndRanges) {
  raster::ClassMap crops(16, 16);
  crops.Fill(static_cast<uint8_t>(raster::CropType::kMaize));
  raster::GeoTransform t{0, 160, 10.0};
  auto weather = SynthesizeWeather(3);
  WaterBalanceOptions opt;
  auto products = ComputeWaterProducts(crops, t, weather, opt);
  ASSERT_TRUE(products.ok()) << products.status();
  EXPECT_EQ(products->availability.width(), 16);
  EXPECT_EQ(products->irrigation_mm.bands(), 1);
  auto stats = products->availability.ComputeStats(0);
  EXPECT_GE(stats.min, 0.0f);
  EXPECT_LE(stats.max, 1.0f);
  EXPECT_GT(products->irrigation_mm.ComputeStats(0).mean, 0.0f);
}

TEST(WaterTest, ThirstyCropNeedsMoreIrrigation) {
  raster::GeoTransform t{0, 80, 10.0};
  auto weather = SynthesizeWeather(5);
  WaterBalanceOptions opt;
  opt.capacity_variability = 0.0;  // isolate the crop effect
  raster::ClassMap maize(8, 8);
  maize.Fill(static_cast<uint8_t>(raster::CropType::kMaize));
  raster::ClassMap fallow(8, 8);
  fallow.Fill(static_cast<uint8_t>(raster::CropType::kFallow));
  auto m = ComputeWaterProducts(maize, t, weather, opt);
  auto f = ComputeWaterProducts(fallow, t, weather, opt);
  ASSERT_TRUE(m.ok() && f.ok());
  EXPECT_GT(m->irrigation_mm.ComputeStats(0).mean,
            f->irrigation_mm.ComputeStats(0).mean);
  // Fallow keeps soil wetter.
  EXPECT_GT(f->availability.ComputeStats(0).mean,
            m->availability.ComputeStats(0).mean);
}

TEST(WaterTest, Validation) {
  raster::ClassMap crops(4, 4);
  raster::GeoTransform t;
  WaterBalanceOptions opt;
  EXPECT_FALSE(ComputeWaterProducts(crops, t, {}, opt).ok());
  auto weather = SynthesizeWeather(1);
  opt.soil_capacity_mm = 0;
  EXPECT_FALSE(ComputeWaterProducts(crops, t, weather, opt).ok());
}

// --- Full pipeline ----------------------------------------------------------

TEST(FoodSecPipelineTest, EndToEnd) {
  FoodSecurityOptions opt;
  opt.width = 48;
  opt.height = 48;
  opt.num_parcels = 12;
  opt.training_samples = 1200;
  opt.epochs = 5;
  opt.cloud_probability = 0.0;
  strabon::GeoStore linked;
  auto report = RunFoodSecurityPipeline(opt, &linked);
  ASSERT_TRUE(report.ok()) << report.status();
  // The classifier must do far better than chance (1/8).
  EXPECT_GT(report->crop_accuracy, 0.55) << report->crop_confusion.ToString();
  EXPECT_FALSE(report->fields.empty());
  EXPECT_GT(report->triples_published, 0u);
  EXPECT_EQ(report->water.availability.width(), 48);
  // Published linked data is queryable.
  auto hits = *linked.SpatialSelect(
      geo::Box::Of(0, 0, 1e9, 1e9), strabon::SpatialRelation::kIntersects,
      true);
  EXPECT_EQ(hits.size(), report->fields.size());
}

TEST(FoodSecPipelineTest, ValidatesOptions) {
  FoodSecurityOptions opt;
  opt.acquisition_days.clear();
  EXPECT_FALSE(RunFoodSecurityPipeline(opt, nullptr).ok());
}

}  // namespace
}  // namespace exearth::foodsec
