// Classification metrics: confusion matrix, accuracy, macro F1.

#ifndef EXEARTH_ML_METRICS_H_
#define EXEARTH_ML_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace exearth::ml {

/// Square confusion matrix, rows = true class, cols = predicted class.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  void Add(int true_label, int predicted);
  int64_t count(int true_label, int predicted) const;
  int64_t total() const { return total_; }
  int num_classes() const { return num_classes_; }

  double Accuracy() const;
  /// Recall for one class (0 if the class never occurs).
  double Recall(int cls) const;
  double Precision(int cls) const;
  double F1(int cls) const;
  /// Unweighted mean of per-class F1.
  double MacroF1() const;

  /// Multi-line printable table with per-class recall.
  std::string ToString(const std::vector<std::string>& class_names = {}) const;

 private:
  int num_classes_;
  int64_t total_ = 0;
  std::vector<int64_t> cells_;  // row-major
};

}  // namespace exearth::ml

#endif  // EXEARTH_ML_METRICS_H_
