
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/distributed.cc" "src/ml/CMakeFiles/eea_ml.dir/distributed.cc.o" "gcc" "src/ml/CMakeFiles/eea_ml.dir/distributed.cc.o.d"
  "/root/repo/src/ml/layers.cc" "src/ml/CMakeFiles/eea_ml.dir/layers.cc.o" "gcc" "src/ml/CMakeFiles/eea_ml.dir/layers.cc.o.d"
  "/root/repo/src/ml/metrics.cc" "src/ml/CMakeFiles/eea_ml.dir/metrics.cc.o" "gcc" "src/ml/CMakeFiles/eea_ml.dir/metrics.cc.o.d"
  "/root/repo/src/ml/network.cc" "src/ml/CMakeFiles/eea_ml.dir/network.cc.o" "gcc" "src/ml/CMakeFiles/eea_ml.dir/network.cc.o.d"
  "/root/repo/src/ml/optimizer.cc" "src/ml/CMakeFiles/eea_ml.dir/optimizer.cc.o" "gcc" "src/ml/CMakeFiles/eea_ml.dir/optimizer.cc.o.d"
  "/root/repo/src/ml/tensor.cc" "src/ml/CMakeFiles/eea_ml.dir/tensor.cc.o" "gcc" "src/ml/CMakeFiles/eea_ml.dir/tensor.cc.o.d"
  "/root/repo/src/ml/trainer.cc" "src/ml/CMakeFiles/eea_ml.dir/trainer.cc.o" "gcc" "src/ml/CMakeFiles/eea_ml.dir/trainer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eea_common.dir/DependInfo.cmake"
  "/root/repo/build/src/raster/CMakeFiles/eea_raster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eea_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/eea_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
