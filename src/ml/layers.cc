#include "ml/layers.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace exearth::ml {

// --- Dense -------------------------------------------------------------

DenseLayer::DenseLayer(int in_features, int out_features, common::Rng* rng)
    : in_features_(in_features),
      out_features_(out_features),
      weight_(Tensor::HeNormal({in_features, out_features}, in_features, rng)),
      bias_(Tensor::Zeros({out_features})),
      dweight_(Tensor::Zeros({in_features, out_features})),
      dbias_(Tensor::Zeros({out_features})) {}

Tensor DenseLayer::Forward(const Tensor& input, bool training) {
  EEA_CHECK(input.ndim() == 2 && input.dim(1) == in_features_)
      << "Dense expects [N," << in_features_ << "], got "
      << input.ShapeString();
  if (training) input_cache_ = input;
  const int n = input.dim(0);
  Tensor out({n, out_features_});
  MatMul(input, weight_, &out);
  float* po = out.data();
  const float* pb = bias_.data();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < out_features_; ++j) {
      po[static_cast<int64_t>(i) * out_features_ + j] += pb[j];
    }
  }
  return out;
}

Tensor DenseLayer::Backward(const Tensor& grad_output) {
  const int n = grad_output.dim(0);
  EEA_CHECK(grad_output.dim(1) == out_features_);
  EEA_CHECK(input_cache_.dim(0) == n) << "Backward without Forward";
  // dW += X^T * dY ; db += sum(dY) ; dX = dY * W^T.
  Tensor dw({in_features_, out_features_});
  MatMulTransA(input_cache_, grad_output, &dw);
  dweight_.Add(dw);
  const float* pg = grad_output.data();
  float* pdb = dbias_.data();
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < out_features_; ++j) {
      pdb[j] += pg[static_cast<int64_t>(i) * out_features_ + j];
    }
  }
  Tensor dx({n, in_features_});
  MatMulTransB(grad_output, weight_, &dx);
  return dx;
}

// --- ReLU --------------------------------------------------------------

Tensor ReluLayer::Forward(const Tensor& input, bool training) {
  if (training) input_cache_ = input;
  Tensor out = input;
  float* p = out.data();
  for (int64_t i = 0; i < out.size(); ++i) p[i] = std::max(0.0f, p[i]);
  return out;
}

Tensor ReluLayer::Backward(const Tensor& grad_output) {
  EEA_CHECK(grad_output.size() == input_cache_.size());
  Tensor dx = grad_output;
  float* p = dx.data();
  const float* in = input_cache_.data();
  for (int64_t i = 0; i < dx.size(); ++i) {
    if (in[i] <= 0.0f) p[i] = 0.0f;
  }
  return dx;
}

// --- Conv2d -------------------------------------------------------------

Conv2dLayer::Conv2dLayer(int in_channels, int out_channels, int kernel,
                         int padding, common::Rng* rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      padding_(padding),
      weight_(Tensor::HeNormal({out_channels, in_channels, kernel, kernel},
                               in_channels * kernel * kernel, rng)),
      bias_(Tensor::Zeros({out_channels})),
      dweight_(Tensor::Zeros({out_channels, in_channels, kernel, kernel})),
      dbias_(Tensor::Zeros({out_channels})) {}

double Conv2dLayer::FlopsPerSample() const {
  // 2 * k^2 * Cin * Cout per output pixel; uses the last seen output size.
  return 2.0 * kernel_ * kernel_ * in_channels_ * out_channels_ *
         std::max(1, out_h_) * std::max(1, out_w_);
}

Tensor Conv2dLayer::Forward(const Tensor& input, bool training) {
  EEA_CHECK(input.ndim() == 4 && input.dim(1) == in_channels_)
      << "Conv2d expects NCHW with C=" << in_channels_ << ", got "
      << input.ShapeString();
  const int n = input.dim(0);
  const int h = input.dim(2);
  const int w = input.dim(3);
  const int oh = h + 2 * padding_ - kernel_ + 1;
  const int ow = w + 2 * padding_ - kernel_ + 1;
  EEA_CHECK(oh > 0 && ow > 0) << "kernel larger than padded input";
  out_h_ = oh;
  out_w_ = ow;
  if (training) input_cache_ = input;
  Tensor out({n, out_channels_, oh, ow});
  const float* pin = input.data();
  const float* pw = weight_.data();
  float* po = out.data();
  const int64_t in_chw = static_cast<int64_t>(in_channels_) * h * w;
  const int64_t out_chw = static_cast<int64_t>(out_channels_) * oh * ow;
  for (int img = 0; img < n; ++img) {
    for (int oc = 0; oc < out_channels_; ++oc) {
      const float b = bias_[oc];
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          double acc = b;
          for (int ic = 0; ic < in_channels_; ++ic) {
            for (int ky = 0; ky < kernel_; ++ky) {
              const int iy = oy + ky - padding_;
              if (iy < 0 || iy >= h) continue;
              for (int kx = 0; kx < kernel_; ++kx) {
                const int ix = ox + kx - padding_;
                if (ix < 0 || ix >= w) continue;
                acc += pin[img * in_chw +
                           (static_cast<int64_t>(ic) * h + iy) * w + ix] *
                       pw[((static_cast<int64_t>(oc) * in_channels_ + ic) *
                               kernel_ +
                           ky) *
                              kernel_ +
                          kx];
              }
            }
          }
          po[img * out_chw + (static_cast<int64_t>(oc) * oh + oy) * ow + ox] =
              static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

Tensor Conv2dLayer::Backward(const Tensor& grad_output) {
  const Tensor& input = input_cache_;
  EEA_CHECK(input.ndim() == 4) << "Backward without Forward";
  const int n = input.dim(0);
  const int h = input.dim(2);
  const int w = input.dim(3);
  const int oh = grad_output.dim(2);
  const int ow = grad_output.dim(3);
  Tensor dx({n, in_channels_, h, w});
  const float* pin = input.data();
  const float* pg = grad_output.data();
  const float* pw = weight_.data();
  float* pdx = dx.data();
  float* pdw = dweight_.data();
  float* pdb = dbias_.data();
  const int64_t in_chw = static_cast<int64_t>(in_channels_) * h * w;
  const int64_t out_chw = static_cast<int64_t>(out_channels_) * oh * ow;
  for (int img = 0; img < n; ++img) {
    for (int oc = 0; oc < out_channels_; ++oc) {
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          const float g =
              pg[img * out_chw + (static_cast<int64_t>(oc) * oh + oy) * ow +
                 ox];
          if (g == 0.0f) continue;
          pdb[oc] += g;
          for (int ic = 0; ic < in_channels_; ++ic) {
            for (int ky = 0; ky < kernel_; ++ky) {
              const int iy = oy + ky - padding_;
              if (iy < 0 || iy >= h) continue;
              for (int kx = 0; kx < kernel_; ++kx) {
                const int ix = ox + kx - padding_;
                if (ix < 0 || ix >= w) continue;
                const int64_t in_idx =
                    img * in_chw + (static_cast<int64_t>(ic) * h + iy) * w +
                    ix;
                const int64_t w_idx =
                    ((static_cast<int64_t>(oc) * in_channels_ + ic) * kernel_ +
                     ky) *
                        kernel_ +
                    kx;
                pdw[w_idx] += g * pin[in_idx];
                pdx[in_idx] += g * pw[w_idx];
              }
            }
          }
        }
      }
    }
  }
  return dx;
}

// --- MaxPool2d -----------------------------------------------------------

Tensor MaxPool2dLayer::Forward(const Tensor& input, bool training) {
  EEA_CHECK(input.ndim() == 4) << "MaxPool2d expects NCHW";
  const int n = input.dim(0);
  const int c = input.dim(1);
  const int h = input.dim(2);
  const int w = input.dim(3);
  EEA_CHECK(h % 2 == 0 && w % 2 == 0) << "MaxPool2d needs even H,W";
  const int oh = h / 2;
  const int ow = w / 2;
  in_shape_ = input.shape();
  Tensor out({n, c, oh, ow});
  argmax_.assign(static_cast<size_t>(out.size()), 0);
  const float* pin = input.data();
  float* po = out.data();
  int64_t oidx = 0;
  for (int img = 0; img < n; ++img) {
    for (int ch = 0; ch < c; ++ch) {
      const int64_t base =
          (static_cast<int64_t>(img) * c + ch) * h * w;
      for (int oy = 0; oy < oh; ++oy) {
        for (int ox = 0; ox < ow; ++ox) {
          float best = -std::numeric_limits<float>::infinity();
          int64_t best_idx = 0;
          for (int dy = 0; dy < 2; ++dy) {
            for (int dx = 0; dx < 2; ++dx) {
              const int64_t idx =
                  base + static_cast<int64_t>(oy * 2 + dy) * w + ox * 2 + dx;
              if (pin[idx] > best) {
                best = pin[idx];
                best_idx = idx;
              }
            }
          }
          po[oidx] = best;
          argmax_[static_cast<size_t>(oidx)] = static_cast<int>(best_idx);
          ++oidx;
        }
      }
    }
  }
  (void)training;
  return out;
}

Tensor MaxPool2dLayer::Backward(const Tensor& grad_output) {
  Tensor dx(in_shape_);
  const float* pg = grad_output.data();
  float* pdx = dx.data();
  EEA_CHECK(static_cast<size_t>(grad_output.size()) == argmax_.size());
  for (int64_t i = 0; i < grad_output.size(); ++i) {
    pdx[argmax_[static_cast<size_t>(i)]] += pg[i];
  }
  return dx;
}

// --- Flatten ----------------------------------------------------------------

Tensor FlattenLayer::Forward(const Tensor& input, bool training) {
  (void)training;
  in_shape_ = input.shape();
  Tensor out = input;
  const int n = input.dim(0);
  out.Reshape({n, static_cast<int>(input.size() / n)});
  return out;
}

Tensor FlattenLayer::Backward(const Tensor& grad_output) {
  Tensor dx = grad_output;
  dx.Reshape(in_shape_);
  return dx;
}

// --- Dropout ----------------------------------------------------------------

Tensor DropoutLayer::Forward(const Tensor& input, bool training) {
  if (!training || rate_ <= 0.0) {
    mask_.clear();
    return input;
  }
  Tensor out = input;
  mask_.resize(static_cast<size_t>(input.size()));
  const float keep = static_cast<float>(1.0 - rate_);
  float* p = out.data();
  for (int64_t i = 0; i < out.size(); ++i) {
    if (rng_.Bernoulli(rate_)) {
      mask_[static_cast<size_t>(i)] = 0.0f;
      p[i] = 0.0f;
    } else {
      mask_[static_cast<size_t>(i)] = 1.0f / keep;
      p[i] *= 1.0f / keep;
    }
  }
  return out;
}

Tensor DropoutLayer::Backward(const Tensor& grad_output) {
  if (mask_.empty()) return grad_output;
  Tensor dx = grad_output;
  float* p = dx.data();
  for (int64_t i = 0; i < dx.size(); ++i) {
    p[i] *= mask_[static_cast<size_t>(i)];
  }
  return dx;
}

}  // namespace exearth::ml
