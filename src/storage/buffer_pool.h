// BufferPool — the page cache between consumers (KV checkpoints, the
// frozen R-tree) and an IStorageManager (ROADMAP item 1).
//
// Frames hold one page image each. Fetch pins the frame (LRU-evicting an
// unpinned frame if the pool is full, writing it back first when dirty);
// the returned PageHandle unpins on destruction. New allocates a fresh
// page and returns it pinned and dirty. Only unpinned frames are eviction
// candidates — a pinned page's bytes are stable for the handle's
// lifetime.
//
// Metrics: storage.bufferpool.hits / misses / evictions / writebacks.
//
// Invariants (enforced by CheckInvariants(), called by the torture test's
// debug hook after every operation batch):
//   - every frame's pin count is >= 0;
//   - a pinned frame is never on the LRU list (so never evictable);
//   - frames_ holds at most `capacity` frames;
//   - every dirty eviction went through WritePage (writebacks counter).
//
// Thread safety: one mutex serializes the pool's tables. Page *contents*
// of a pinned frame may be mutated by its single writer without the pool
// lock; the pool never touches a pinned frame's bytes.

#ifndef EXEARTH_STORAGE_BUFFER_POOL_H_
#define EXEARTH_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"
#include "storage/storage_manager.h"

namespace exearth::storage {

class BufferPool;

/// RAII pin on a buffer-pool frame. Movable, not copyable; unpins on
/// destruction. `data()` is the kPageSize page image (header included);
/// `payload()` skips the header. Call MarkDirty after mutating so the
/// pool writes the frame back before eviction.
class PageHandle {
 public:
  PageHandle() = default;
  PageHandle(PageHandle&& other) noexcept { *this = std::move(other); }
  PageHandle& operator=(PageHandle&& other) noexcept;
  PageHandle(const PageHandle&) = delete;
  PageHandle& operator=(const PageHandle&) = delete;
  ~PageHandle() { Release(); }

  bool valid() const { return pool_ != nullptr; }
  PageId id() const { return id_; }
  char* data() const { return data_; }
  char* payload() const { return data_ + kPageHeaderSize; }
  void MarkDirty();

  /// Explicit early unpin (idempotent).
  void Release();

 private:
  friend class BufferPool;
  PageHandle(BufferPool* pool, PageId id, char* data)
      : pool_(pool), id_(id), data_(data) {}

  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  char* data_ = nullptr;
};

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  size_t cached_pages = 0;
  size_t pinned_pages = 0;
};

class BufferPool {
 public:
  /// `capacity` is the max number of resident frames (>= 1). The pool
  /// does not own `storage`; it must outlive the pool.
  BufferPool(IStorageManager* storage, size_t capacity);
  ~BufferPool();
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Allocates a new page and returns it pinned, zero-filled and dirty.
  common::Result<PageHandle> New();

  /// Pins page `id`, reading it from storage on a miss.
  common::Result<PageHandle> Fetch(PageId id);

  /// Returns `id` to the storage free list. The page must not be pinned;
  /// a cached frame is dropped without write-back.
  common::Status FreePage(PageId id);

  /// Writes back every dirty frame (does not evict, does not fsync).
  common::Status FlushAll();

  /// FlushAll + drop every unpinned frame. Errors if any frame is still
  /// pinned. Benches use this to measure a cold cache.
  common::Status DropAll();

  IStorageManager* storage() const { return storage_; }
  size_t capacity() const { return capacity_; }
  BufferPoolStats stats() const;

  /// Debug validation hook: verifies the pool invariants (header comment)
  /// and returns InternalError naming the first violation. The torture
  /// test calls this after every operation batch.
  common::Status CheckInvariants() const;

 private:
  friend class PageHandle;

  struct Frame {
    PageId id = kInvalidPageId;
    int pins = 0;
    bool dirty = false;
    uint64_t lsn = 0;  // stamped into the header on write-back
    std::list<PageId>::iterator lru_pos{};
    bool in_lru = false;
    std::unique_ptr<char[]> data;  // heap: stable across table rehash
  };

  void Unpin(PageId id);
  void MarkDirty(PageId id);
  // Ensures room for one more frame, evicting the LRU unpinned frame if
  // needed. Returns Unavailable when every frame is pinned.
  common::Status EvictForSpaceLocked();
  common::Status WriteBackLocked(Frame* f);

  IStorageManager* storage_;
  const size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<PageId, std::unique_ptr<Frame>> frames_;
  std::list<PageId> lru_;  // front = most recent; only unpinned frames
  BufferPoolStats stats_;
};

}  // namespace exearth::storage

#endif  // EXEARTH_STORAGE_BUFFER_POOL_H_
