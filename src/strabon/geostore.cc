#include "strabon/geostore.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <optional>

#include "common/deadline.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "geo/wkt.h"

namespace exearth::strabon {

using common::Result;
using common::Status;

namespace simd = geo::simd;

namespace {

// Cached metric handles (registration locks; increments are relaxed
// atomics — see common/metrics.h).
struct GeoStoreMetrics {
  common::Counter* queries;
  common::Counter* results;
  common::Counter* index_probes;
  common::Counter* select_traversals;
  common::Counter* batch_queries;
  common::Counter* envelope_hits;
  common::Counter* parallel_chunks;
  common::Counter* deadline_exceeded;
  common::Counter* cancelled;
  common::Counter* memory_budget_exceeded;
  common::Counter* chunks_cancelled;
  common::Gauge* num_threads;
  common::Gauge* parallel_speedup;
  common::Histogram* query_latency_us;
  common::Histogram* probe_latency_us;
  common::Histogram* result_cardinality;
  common::Histogram* chunk_candidates;

  static const GeoStoreMetrics& Get() {
    static GeoStoreMetrics m = [] {
      auto& reg = common::MetricsRegistry::Default();
      return GeoStoreMetrics{
          reg.GetCounter("strabon.geostore.queries"),
          reg.GetCounter("strabon.geostore.results"),
          reg.GetCounter("strabon.geostore.index_probes"),
          reg.GetCounter("strabon.geostore.select_traversals"),
          reg.GetCounter("strabon.geostore.batch_queries"),
          reg.GetCounter("strabon.geostore.envelope_hits"),
          reg.GetCounter("strabon.geostore.parallel_chunks"),
          reg.GetCounter("strabon.geostore.deadline_exceeded"),
          reg.GetCounter("strabon.geostore.cancelled"),
          reg.GetCounter("strabon.geostore.memory_budget_exceeded"),
          reg.GetCounter("strabon.geostore.chunks_cancelled"),
          reg.GetGauge("strabon.geostore.num_threads"),
          reg.GetGauge("strabon.geostore.parallel_speedup"),
          reg.GetHistogram("strabon.geostore.query_latency_us"),
          reg.GetHistogram("strabon.geostore.index_probe_latency_us"),
          reg.GetHistogram(
              "strabon.geostore.result_cardinality",
              common::Histogram::ExponentialBounds(1.0, 4.0, 16)),
          reg.GetHistogram(
              "strabon.geostore.chunk_candidates",
              common::Histogram::ExponentialBounds(1.0, 4.0, 16)),
      };
    }();
    return m;
  }
};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Folds a worker-local stats object into the query-wide one (results is
// set by the caller from the merged output).
void MergeStats(const SpatialQueryStats& in, SpatialQueryStats* out) {
  out->candidates += in.candidates;
  out->geometry_tests += in.geometry_tests;
  out->envelope_hits += in.envelope_hits;
  out->nodes_visited += in.nodes_visited;
  out->chunks_cancelled += in.chunks_cancelled;
}

// Shared abort channel for one query's chunk workers: the first trigger
// (deadline, cancellation, or memory budget) wins, every other worker
// sees the flag on its next item and stops. Polling the flag is one
// relaxed load per item; the clock is only read every kPollStride items.
constexpr size_t kPollStride = 64;

struct QueryAbort {
  std::atomic<int> reason{0};  // 0 = none, else a StatusCode

  bool triggered() const {
    return reason.load(std::memory_order_relaxed) != 0;
  }
  void Trigger(common::StatusCode code) {
    int expected = 0;
    reason.compare_exchange_strong(expected, static_cast<int>(code),
                                   std::memory_order_relaxed);
  }
  common::Status ToStatus(const char* who) const {
    const auto code =
        static_cast<common::StatusCode>(reason.load(std::memory_order_relaxed));
    switch (code) {
      case common::StatusCode::kCancelled:
        return common::Status::Cancelled(std::string(who) +
                                         ": request cancelled");
      case common::StatusCode::kResourceExhausted:
        return common::Status::ResourceExhausted(
            std::string(who) + ": per-query memory budget exceeded");
      default:
        return common::Status::DeadlineExceeded(
            std::string(who) + ": request deadline exceeded");
    }
  }
};

// Bumps the right abort counter and the chunks_cancelled total after a
// query stopped early.
void CountAbort(const GeoStoreMetrics& metrics, const common::Status& status,
                uint64_t chunks_cancelled) {
  if (status.IsCancelled()) {
    metrics.cancelled->Increment();
  } else if (status.IsResourceExhausted()) {
    metrics.memory_budget_exceeded->Increment();
  } else {
    metrics.deadline_exceeded->Increment();
  }
  metrics.chunks_cancelled->Increment(chunks_cancelled);
}

// Refinement candidates are dense arena indices with the relation's
// envelope fast-path verdict precomputed into the top bit. The index
// probe (and the scan path's block screen) settles that verdict with
// batched kernel calls over *contiguous* SoA envelope slices — at the
// R-tree leaf, where the entries' envelopes are already streaming
// through cache. The refinement loop then never touches the envelope
// columns at random candidate indices (a four-cache-line gather per
// candidate that costs more than the batched compare saves). Build()
// checks the arena stays below 2^31 entries so the bit is free.
constexpr uint32_t kFastBit = 0x80000000u;

// Everything a SpatialSelect/SpatialSelectBatch refinement chunk worker
// needs, hoisted once per query: the rect polygon for kContains (built
// once instead of per candidate) and the cooperative-abort machinery.
struct RefineJob {
  const std::vector<uint32_t>* candidates;  // arena index | kFastBit
  geo::Box query;
  SpatialRelation relation;
  const geo::Geometry* contains_rect = nullptr;  // only for kContains
  const std::vector<geo::Geometry>* geoms;
  const std::vector<uint64_t>* subjects;
  bool guarded;
  const common::RequestContext* rctx;
  const char* who;
  QueryAbort* abort;
  uint64_t budget;                      // 0 = unlimited
  std::atomic<uint64_t>* bytes_used;    // may be null when budget == 0
};

// Refines candidates [begin, end) into `local`. The envelope predicate
// was settled by the probe and rides in each candidate's kFastBit;
// per-relation semantics are identical to EvalRelationAt:
//   kIntersects: bit set = query box contains envelope -> envelope hit,
//                match without an exact test; else exact Intersects.
//   kContains  : bit set = envelope contains the query box; a clear bit
//                is an envelope-decided "no match"; else exact Contains
//                against the hoisted rect polygon.
//   kWithin    : the bit IS the answer (hit counted on true).
void RefineChunkRange(const RefineJob& job, size_t begin, size_t end,
                      std::vector<uint64_t>* local,
                      SpatialQueryStats* lstats) {
  const std::vector<uint32_t>& cand = *job.candidates;
  for (size_t i = begin; i < end; ++i) {
    if (job.guarded && ((i - begin) % kPollStride) == 0) {
      if (job.abort->triggered()) {
        lstats->chunks_cancelled = 1;
        return;
      }
      Status s = job.rctx->Check(job.who);
      if (!s.ok()) {
        job.abort->Trigger(s.code());
        lstats->chunks_cancelled = 1;
        return;
      }
    }
    const size_t idx = cand[i] & ~kFastBit;
    const bool bit = (cand[i] & kFastBit) != 0;
    ++lstats->geometry_tests;
    bool match = false;
    switch (job.relation) {
      case SpatialRelation::kIntersects:
        if (bit) {
          ++lstats->envelope_hits;
          match = true;
        } else {
          match = geo::Intersects((*job.geoms)[idx], job.query);
        }
        break;
      case SpatialRelation::kContains:
        if (!bit) {
          ++lstats->envelope_hits;
        } else {
          match = geo::Contains((*job.geoms)[idx], *job.contains_rect);
        }
        break;
      case SpatialRelation::kWithin:
        if (bit) ++lstats->envelope_hits;
        match = bit;
        break;
    }
    if (match) {
      local->push_back((*job.subjects)[idx]);
      if (job.budget > 0) {
        const uint64_t now_used =
            job.bytes_used->fetch_add(sizeof(uint64_t),
                                      std::memory_order_relaxed) +
            sizeof(uint64_t);
        if (now_used > job.budget) {
          job.abort->Trigger(common::StatusCode::kResourceExhausted);
          lstats->chunks_cancelled = 1;
          return;
        }
      }
    }
  }
}

// The rect polygon a kContains refinement tests against, built once per
// query instead of once per candidate.
std::optional<geo::Geometry> ContainsRectFor(const geo::Box& query,
                                             SpatialRelation relation) {
  if (relation != SpatialRelation::kContains) return std::nullopt;
  geo::Polygon rect;
  rect.outer.points = {geo::Point{query.min_x, query.min_y},
                       geo::Point{query.max_x, query.min_y},
                       geo::Point{query.max_x, query.max_y},
                       geo::Point{query.min_x, query.max_y}};
  return geo::Geometry(std::move(rect));
}

}  // namespace

void GeoStore::AddFeature(const std::string& subject_iri,
                          const geo::Geometry& geom) {
  store_.Add(rdf::Term::Iri(subject_iri),
             rdf::Term::Iri(rdf::vocab::kAsWkt),
             rdf::Term::Literal(geo::ToWkt(geom), rdf::vocab::kWktLiteral));
  ++data_epoch_;  // ingest: any cached query result may now be stale
}

Result<size_t> GeoStore::Build() {
  store_.Build();
  geom_subjects_.clear();
  geoms_.clear();
  env_cols_.Clear();
  auto aswkt = store_.dict().Lookup(rdf::Term::Iri(rdf::vocab::kAsWkt));
  if (aswkt.has_value()) {
    Status parse_error;
    std::vector<std::pair<uint64_t, geo::Geometry>> parsed;
    store_.Scan(rdf::IdPattern{std::nullopt, *aswkt, std::nullopt},
                [&](const rdf::TripleId& t) {
                  const rdf::Term& lit = store_.dict().Decode(t.o);
                  auto geom = geo::ParseWkt(lit.value);
                  if (!geom.ok()) {
                    parse_error = geom.status();
                    return false;
                  }
                  parsed.emplace_back(t.s, std::move(*geom));
                  return true;
                });
    if (!parse_error.ok()) return parse_error;
    // Dense arena: subjects sorted so lookup is a binary search and the
    // R-tree can address geometries by index. The refinement paths pack
    // the envelope fast-path verdict into bit 31 of the index (kFastBit),
    // which caps the arena at 2^31 entries.
    EEA_CHECK(parsed.size() < (uint64_t{1} << 31))
        << "geometry arena exceeds the kFastBit index range";
    std::sort(parsed.begin(), parsed.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    geom_subjects_.reserve(parsed.size());
    geoms_.reserve(parsed.size());
    env_cols_.Reserve(parsed.size());
    std::vector<geo::RTree::Entry> entries;
    entries.reserve(parsed.size());
    for (auto& [subject, geom] : parsed) {
      const auto idx = static_cast<int64_t>(geoms_.size());
      const geo::Box env = geom.Envelope();
      geom_subjects_.push_back(subject);
      env_cols_.PushBack(env);
      geoms_.push_back(std::move(geom));
      entries.push_back({env, idx});
    }
    rtree_ = geo::RTree::BulkLoad(std::move(entries));
  } else {
    rtree_ = geo::RTree::BulkLoad({});
  }
  spatial_built_ = true;
  ++data_epoch_;
  return geom_subjects_.size();
}

common::Status GeoStore::FreezeIndexTo(storage::BufferPool* pool,
                                       storage::PageId* head) const {
  if (!spatial_built_) {
    return common::Status::FailedPrecondition(
        "FreezeIndexTo: spatial index not built (call Build())");
  }
  return rtree_.FreezeTo(pool, head);
}

common::Status GeoStore::LoadFrozenIndex(storage::BufferPool* pool,
                                         storage::PageId head) {
  if (!spatial_built_) {
    return common::Status::FailedPrecondition(
        "LoadFrozenIndex: geometry arena not built (call Build())");
  }
  EEA_ASSIGN_OR_RETURN(geo::RTree loaded, geo::RTree::OpenFrozen(pool, head));
  if (loaded.size() != geom_subjects_.size()) {
    return common::Status::InvalidArgument(common::StrFormat(
        "LoadFrozenIndex: frozen index has %zu entries but the geometry "
        "arena has %zu — index and dataset are out of sync",
        loaded.size(), geom_subjects_.size()));
  }
  rtree_ = std::move(loaded);
  return common::Status::OK();
}

void GeoStore::set_num_threads(size_t n) {
  num_threads_ = std::max<size_t>(1, n);
  if (num_threads_ > 1) {
    if (pool_ == nullptr || pool_->num_threads() != num_threads_) {
      pool_ = std::make_unique<common::ThreadPool>(num_threads_);
    }
  } else {
    pool_.reset();
  }
  GeoStoreMetrics::Get().num_threads->Set(static_cast<double>(num_threads_));
}

size_t GeoStore::IndexOf(uint64_t subject_id) const {
  auto it = std::lower_bound(geom_subjects_.begin(), geom_subjects_.end(),
                             subject_id);
  if (it == geom_subjects_.end() || *it != subject_id) return kNpos;
  return static_cast<size_t>(it - geom_subjects_.begin());
}

bool GeoStore::EvalRelationAt(size_t idx, const geo::Box& query,
                              SpatialRelation relation,
                              SpatialQueryStats* stats) const {
  ++stats->geometry_tests;
  const geo::Box env = env_cols_.At(idx);
  switch (relation) {
    case SpatialRelation::kIntersects:
      // Envelope fully inside the query box: the geometry is too, so it
      // certainly intersects — skip the exact test.
      if (query.Contains(env)) {
        ++stats->envelope_hits;
        return true;
      }
      return geo::Intersects(geoms_[idx], query);
    case SpatialRelation::kContains: {
      // The feature can only contain the query rectangle if its envelope
      // does.
      if (!env.Contains(query)) {
        ++stats->envelope_hits;
        return false;
      }
      geo::Polygon rect;
      rect.outer.points = {geo::Point{query.min_x, query.min_y},
                           geo::Point{query.max_x, query.min_y},
                           geo::Point{query.max_x, query.max_y},
                           geo::Point{query.min_x, query.max_y}};
      return geo::Contains(geoms_[idx], geo::Geometry(std::move(rect)));
    }
    case SpatialRelation::kWithin:
      // Envelope inside the box <=> geometry inside the box.
      if (query.Contains(env)) ++stats->envelope_hits;
      return query.Contains(env);
  }
  return false;
}

size_t GeoStore::RunChunked(
    size_t n, const std::function<void(size_t, size_t, size_t)>& fn) const {
  // Below this size the fork/join overhead dominates any refinement win.
  constexpr size_t kMinItemsPerChunk = 64;
  size_t chunks = 1;
  if (pool_ != nullptr && num_threads_ > 1) {
    chunks = std::min(num_threads_, (n + kMinItemsPerChunk - 1) /
                                        kMinItemsPerChunk);
  }
  if (chunks <= 1) {
    fn(0, 0, n);
    return 1;
  }
  const size_t chunk_size = (n + chunks - 1) / chunks;
  pool_->ParallelFor(chunks, [&](size_t c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(begin + chunk_size, n);
    if (begin < end) fn(c, begin, end);
  });
  // The parallel_chunks counter bump lives at the call sites (which hold
  // the cached metrics handle) so this hot path does no registry access.
  return chunks;
}

Result<std::vector<uint64_t>> GeoStore::SpatialSelect(
    const geo::Box& query, SpatialRelation relation, bool use_index,
    SpatialQueryStats* stats_out, common::QueryProfile* profile_out) const {
  EEA_CHECK(spatial_built_) << "SpatialSelect before Build()";
  const GeoStoreMetrics& metrics = GeoStoreMetrics::Get();
  common::TraceRequest req("strabon.SpatialSelect");
  common::ProfileScope pscope;
  const bool profiling =
      profile_out != nullptr ||
      (pscope.is_root() && common::SlowQueryLog::Default().enabled());
  const auto query_start = std::chrono::steady_clock::now();
  common::ScopedLatencyTimer query_timer(metrics.query_latency_us);
  metrics.queries->Increment();
  SpatialQueryStats stats;
  std::vector<uint64_t> out;

  // Cooperative-abort machinery: skip all polling when the request is
  // unconstrained and no memory budget is set (the common fast path).
  const common::RequestContext rctx = common::CurrentRequestContext();
  const uint64_t budget = memory_budget_bytes_;
  const bool guarded = !rctx.unconstrained() || budget > 0;
  QueryAbort abort;
  std::atomic<uint64_t> bytes_used{0};
  {
    Status entry = rctx.Check("strabon.SpatialSelect");
    if (!entry.ok()) {
      CountAbort(metrics, entry, 0);
      if (stats_out != nullptr) *stats_out = stats;
      if (profiling) {
        common::QueryProfile prof;
        prof.query = "strabon.SpatialSelect";
        prof.trace_id = req.trace_id();
        prof.total_us = SecondsSince(query_start) * 1e6;
        prof.status = common::StatusCodeToString(entry.code());
        if (profile_out != nullptr) *profile_out = prof;
        if (pscope.is_root()) {
          common::SlowQueryLog::Default().Record(std::move(prof));
        }
      }
      return entry;
    }
  }

  // Candidate set: dense arena indices, each carrying the relation's
  // envelope fast-path verdict in kFastBit (see RefineChunkRange).
  std::vector<uint32_t> candidates;
  const auto probe_start = std::chrono::steady_clock::now();
  const simd::KernelTable& kern = simd::Kernels();
  if (use_index) {
    common::TraceSpan probe_span("index_probe");
    common::ScopedLatencyTimer probe_timer(metrics.probe_latency_us);
    metrics.index_probes->Increment();
    metrics.select_traversals->Increment();
    geo::RTree::TraversalStats tstats;
    const simd::EnvelopeColumns& eenv = rtree_.entry_envelopes();
    rtree_.VisitLeavesWith(
        query,
        [&](const geo::RTree::Entry* es, uint32_t first, uint16_t count,
            uint64_t hits) {
          // Both envelope predicates are settled here, while the leaf's
          // SoA slice is hot: the traversal mask answers "intersects",
          // and one more kernel call over the same slice answers the
          // relation's fast-path predicate.
          const simd::EnvelopeSpan slice = eenv.Slice(first, count);
          const uint64_t fast =
              relation == SpatialRelation::kContains
                  ? kern.envelope_contains_query(query, slice)
                  : kern.query_contains_envelope(query, slice);
          uint64_t m = hits;
          while (m != 0) {
            const int i = std::countr_zero(m);
            m &= m - 1;
            candidates.push_back(static_cast<uint32_t>(es[i].id) |
                                 (((fast >> i) & 1) != 0 ? kFastBit : 0u));
          }
          return true;
        },
        &tstats);
    stats.nodes_visited = tstats.nodes_visited;
  } else {
    // Baseline: test every geometry (full scan, the GraphDB stand-in).
    // The envelope verdicts stream sequentially through env_cols_, one
    // batched kernel call per kBatchMax features — no gather.
    candidates.resize(geoms_.size());
    for (uint32_t i = 0; i < candidates.size(); ++i) candidates[i] = i;
    for (size_t base = 0; base < candidates.size(); base += simd::kBatchMax) {
      const size_t n = std::min(simd::kBatchMax, candidates.size() - base);
      const simd::EnvelopeSpan slice = env_cols_.Slice(base, n);
      uint64_t fast = relation == SpatialRelation::kContains
                          ? kern.envelope_contains_query(query, slice)
                          : kern.query_contains_envelope(query, slice);
      while (fast != 0) {
        const int i = std::countr_zero(fast);
        fast &= fast - 1;
        candidates[base + static_cast<size_t>(i)] |= kFastBit;
      }
    }
  }
  stats.candidates = candidates.size();
  const double probe_secs = SecondsSince(probe_start);

  // Refinement, partitioned across the pool: thread-local result vectors
  // and stats, merged in chunk order (final order fixed by the sort).
  // Each worker batch-tests envelopes kRefineBlock candidates at a time
  // through the geo::simd kernels (see RefineChunkRange).
  const auto refine_start = std::chrono::steady_clock::now();
  std::vector<std::vector<uint64_t>> chunk_out;
  std::vector<SpatialQueryStats> chunk_stats;
  std::vector<double> chunk_secs;
  const size_t max_chunks = std::max<size_t>(1, num_threads_);
  chunk_out.resize(max_chunks);
  chunk_stats.resize(max_chunks);
  chunk_secs.assign(max_chunks, 0.0);
  const std::optional<geo::Geometry> rect = ContainsRectFor(query, relation);
  RefineJob job;
  job.candidates = &candidates;
  job.query = query;
  job.relation = relation;
  job.contains_rect = rect.has_value() ? &*rect : nullptr;
  job.geoms = &geoms_;
  job.subjects = &geom_subjects_;
  job.guarded = guarded;
  job.rctx = &rctx;
  job.who = "strabon.SpatialSelect";
  job.abort = &abort;
  job.budget = budget;
  job.bytes_used = &bytes_used;
  const size_t used =
      RunChunked(candidates.size(), [&](size_t c, size_t begin, size_t end) {
        const auto t0 = std::chrono::steady_clock::now();
        RefineChunkRange(job, begin, end, &chunk_out[c], &chunk_stats[c]);
        metrics.chunk_candidates->Observe(static_cast<double>(end - begin));
        chunk_secs[c] = SecondsSince(t0);
      });
  if (used > 1) metrics.parallel_chunks->Increment(used);
  stats.threads_used = used;
  for (size_t c = 0; c < used; ++c) {
    MergeStats(chunk_stats[c], &stats);
    out.insert(out.end(), chunk_out[c].begin(), chunk_out[c].end());
  }
  if (used > 1) {
    const double wall = SecondsSince(refine_start);
    double busy = 0.0;
    for (size_t c = 0; c < used; ++c) busy += chunk_secs[c];
    if (wall > 0.0) metrics.parallel_speedup->Set(busy / wall);
  }

  // A triggered abort discards the (partial) result set but keeps the
  // partial-work accounting: stats, counters, and the profile all record
  // how far the query got before it was stopped.
  Status abort_status;
  if (abort.triggered()) {
    abort_status = abort.ToStatus("strabon.SpatialSelect");
    CountAbort(metrics, abort_status, stats.chunks_cancelled);
  } else {
    std::sort(out.begin(), out.end());
    stats.results = out.size();
    metrics.results->Increment(out.size());
    metrics.envelope_hits->Increment(stats.envelope_hits);
    metrics.result_cardinality->Observe(static_cast<double>(out.size()));
  }
  if (stats_out != nullptr) *stats_out = stats;
  if (profiling) {
    common::QueryProfile prof;
    prof.query = "strabon.SpatialSelect";
    prof.trace_id = req.trace_id();
    prof.total_us = SecondsSince(query_start) * 1e6;
    if (!abort_status.ok()) {
      prof.status = common::StatusCodeToString(abort_status.code());
    }
    common::OperatorProfile probe_op;
    probe_op.name = use_index ? "index_probe" : "full_scan";
    probe_op.wall_us = probe_secs * 1e6;
    probe_op.rows_in = geoms_.size();
    probe_op.rows_out = stats.candidates;
    prof.operators.push_back(std::move(probe_op));
    common::OperatorProfile refine_op;
    refine_op.name = "refine";
    refine_op.wall_us = SecondsSince(refine_start) * 1e6;
    refine_op.rows_in = stats.candidates;
    refine_op.rows_out = stats.results;
    refine_op.envelope_hits = stats.envelope_hits;
    refine_op.chunks = used;
    refine_op.threads = used > 1 ? num_threads_ : 1;
    prof.operators.push_back(std::move(refine_op));
    if (profile_out != nullptr) *profile_out = prof;
    if (pscope.is_root()) {
      common::SlowQueryLog::Default().Record(std::move(prof));
    }
  }
  if (!abort_status.ok()) return abort_status;
  return out;
}

Result<std::vector<std::vector<uint64_t>>> GeoStore::SpatialSelectBatch(
    const std::vector<BatchSelectQuery>& queries,
    SpatialQueryStats* stats_out) const {
  EEA_CHECK(spatial_built_) << "SpatialSelectBatch before Build()";
  const GeoStoreMetrics& metrics = GeoStoreMetrics::Get();
  common::TraceRequest req("strabon.SpatialSelectBatch");
  common::ScopedLatencyTimer query_timer(metrics.query_latency_us);
  metrics.queries->Increment();
  metrics.batch_queries->Increment(queries.size());
  SpatialQueryStats stats;
  std::vector<std::vector<uint64_t>> out(queries.size());
  if (queries.empty()) {
    if (stats_out != nullptr) *stats_out = stats;
    return out;
  }
  const common::RequestContext rctx = common::CurrentRequestContext();
  EEA_RETURN_NOT_OK(rctx.Check("strabon.SpatialSelectBatch"));

  // Deduplicate identical (box, relation) members: N identical concurrent
  // selections refine once and fan the result out. Batches are broker-
  // sized (tens to a few hundred members), so the linear scan is cheap.
  auto same = [](const BatchSelectQuery& a, const BatchSelectQuery& b) {
    return a.relation == b.relation && a.box.min_x == b.box.min_x &&
           a.box.min_y == b.box.min_y && a.box.max_x == b.box.max_x &&
           a.box.max_y == b.box.max_y;
  };
  std::vector<BatchSelectQuery> unique;
  std::vector<size_t> unique_of(queries.size());
  unique.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    size_t u = unique.size();
    for (size_t j = 0; j < unique.size(); ++j) {
      if (same(unique[j], queries[i])) {
        u = j;
        break;
      }
    }
    if (u == unique.size()) unique.push_back(queries[i]);
    unique_of[i] = u;
  }

  // ONE shared traversal over the union of the query boxes, demuxing each
  // touched leaf to the members whose own box it intersects. Candidates
  // per unique query are exactly the entries that query's own traversal
  // would have collected: a member's intersection mask over a leaf slice
  // is a subset of the union-box hit mask (member box inside ubox), so
  // testing the member's box directly both demuxes and prunes. Only the
  // candidate order differs from a solo traversal, which the final sort
  // erases. The relation's envelope fast-path verdict rides along in
  // kFastBit exactly as in the single-query probe.
  geo::Box ubox = unique[0].box;
  for (size_t j = 1; j < unique.size(); ++j) {
    ubox.min_x = std::min(ubox.min_x, unique[j].box.min_x);
    ubox.min_y = std::min(ubox.min_y, unique[j].box.min_y);
    ubox.max_x = std::max(ubox.max_x, unique[j].box.max_x);
    ubox.max_y = std::max(ubox.max_y, unique[j].box.max_y);
  }
  const simd::KernelTable& kern = simd::Kernels();
  std::vector<std::vector<uint32_t>> cand(unique.size());
  {
    common::TraceSpan probe_span("batch_index_probe");
    common::ScopedLatencyTimer probe_timer(metrics.probe_latency_us);
    metrics.index_probes->Increment();
    metrics.select_traversals->Increment();
    geo::RTree::TraversalStats tstats;
    const simd::EnvelopeColumns& eenv = rtree_.entry_envelopes();
    rtree_.VisitLeavesWith(
        ubox,
        [&](const geo::RTree::Entry* es, uint32_t first, uint16_t count,
            uint64_t /*union_hits*/) {
          const simd::EnvelopeSpan slice = eenv.Slice(first, count);
          for (size_t j = 0; j < unique.size(); ++j) {
            uint64_t m = kern.envelope_intersects(unique[j].box, slice);
            if (m == 0) continue;
            const uint64_t fast =
                unique[j].relation == SpatialRelation::kContains
                    ? kern.envelope_contains_query(unique[j].box, slice)
                    : kern.query_contains_envelope(unique[j].box, slice);
            while (m != 0) {
              const int i = std::countr_zero(m);
              m &= m - 1;
              cand[j].push_back(static_cast<uint32_t>(es[i].id) |
                                (((fast >> i) & 1) != 0 ? kFastBit : 0u));
            }
          }
          return true;
        },
        &tstats);
    stats.nodes_visited = tstats.nodes_visited;
  }

  // Per-unique-query refinement (chunked across the pool exactly like the
  // single-query path); results land in every member slot that mapped to
  // the unique query. A fired deadline/cancel aborts the whole batch.
  std::vector<std::vector<uint64_t>> unique_out(unique.size());
  const bool guarded = !rctx.unconstrained();
  for (size_t j = 0; j < unique.size(); ++j) {
    const std::vector<uint32_t>& cs = cand[j];
    stats.candidates += cs.size();
    const size_t max_chunks = std::max<size_t>(1, num_threads_);
    std::vector<std::vector<uint64_t>> chunk_out(max_chunks);
    std::vector<SpatialQueryStats> chunk_stats(max_chunks);
    QueryAbort abort;
    const std::optional<geo::Geometry> rect =
        ContainsRectFor(unique[j].box, unique[j].relation);
    RefineJob job;
    job.candidates = &cs;
    job.query = unique[j].box;
    job.relation = unique[j].relation;
    job.contains_rect = rect.has_value() ? &*rect : nullptr;
    job.geoms = &geoms_;
    job.subjects = &geom_subjects_;
    job.guarded = guarded;
    job.rctx = &rctx;
    job.who = "strabon.SpatialSelectBatch";
    job.abort = &abort;
    job.budget = 0;  // the batch path has no per-member memory budget
    job.bytes_used = nullptr;
    const size_t used =
        RunChunked(cs.size(), [&](size_t c, size_t begin, size_t end) {
          RefineChunkRange(job, begin, end, &chunk_out[c], &chunk_stats[c]);
        });
    if (used > 1) metrics.parallel_chunks->Increment(used);
    stats.threads_used = std::max<uint64_t>(stats.threads_used, used);
    std::vector<uint64_t>& merged = unique_out[j];
    for (size_t c = 0; c < used; ++c) {
      MergeStats(chunk_stats[c], &stats);
      merged.insert(merged.end(), chunk_out[c].begin(), chunk_out[c].end());
    }
    if (abort.triggered()) {
      Status abort_status = abort.ToStatus("strabon.SpatialSelectBatch");
      CountAbort(metrics, abort_status, stats.chunks_cancelled);
      if (stats_out != nullptr) *stats_out = stats;
      return abort_status;
    }
    std::sort(merged.begin(), merged.end());
    stats.results += merged.size();
  }
  for (size_t i = 0; i < queries.size(); ++i) out[i] = unique_out[unique_of[i]];
  metrics.results->Increment(stats.results);
  metrics.envelope_hits->Increment(stats.envelope_hits);
  if (stats_out != nullptr) *stats_out = stats;
  return out;
}

Result<std::vector<rdf::Binding>> GeoStore::QueryWithSpatialFilter(
    const rdf::Query& query, const std::string& subject_var,
    const geo::Box& query_box, bool use_index,
    SpatialQueryStats* stats_out, common::QueryProfile* profile_out) const {
  EEA_CHECK(spatial_built_) << "spatial query before Build()";
  const GeoStoreMetrics& metrics = GeoStoreMetrics::Get();
  common::TraceRequest req("strabon.QueryWithSpatialFilter");
  common::ProfileScope pscope;
  const bool profiling =
      profile_out != nullptr ||
      (pscope.is_root() && common::SlowQueryLog::Default().enabled());
  const auto query_start = std::chrono::steady_clock::now();
  common::ScopedLatencyTimer query_timer(metrics.query_latency_us);
  metrics.queries->Increment();
  common::QueryProfile prof;
  prof.query = "strabon.QueryWithSpatialFilter";
  prof.trace_id = req.trace_id();
  auto finish_profile = [&] {
    if (!profiling) return;
    prof.total_us = SecondsSince(query_start) * 1e6;
    if (profile_out != nullptr) *profile_out = prof;
    if (pscope.is_root()) {
      common::SlowQueryLog::Default().Record(std::move(prof));
    }
  };
  auto add_op = [&](const char* name, double secs, uint64_t rows_in,
                    uint64_t rows_out) -> common::OperatorProfile* {
    if (!profiling) return nullptr;
    common::OperatorProfile op;
    op.name = name;
    op.wall_us = secs * 1e6;
    op.rows_in = rows_in;
    op.rows_out = rows_out;
    prof.operators.push_back(std::move(op));
    return &prof.operators.back();
  };
  const common::RequestContext rctx = common::CurrentRequestContext();
  {
    Status entry = rctx.Check("strabon.QueryWithSpatialFilter");
    if (!entry.ok()) {
      CountAbort(metrics, entry, 0);
      prof.status = common::StatusCodeToString(entry.code());
      finish_profile();
      return entry;
    }
  }
  rdf::QueryEngine engine(&store_);
  if (use_index) {
    // Pushdown: compute the spatial candidates first, then restrict the
    // BGP results to them (semantically identical to post-filtering).
    SpatialQueryStats stats;
    const auto select_start = std::chrono::steady_clock::now();
    auto subjects_result =
        SpatialSelect(query_box, SpatialRelation::kIntersects, true, &stats);
    if (!subjects_result.ok()) {
      if (stats_out != nullptr) *stats_out = stats;
      prof.status =
          common::StatusCodeToString(subjects_result.status().code());
      finish_profile();
      return subjects_result.status();
    }
    std::vector<uint64_t> subjects = std::move(*subjects_result);
    if (common::OperatorProfile* op =
            add_op("spatial_select", SecondsSince(select_start),
                   geoms_.size(), subjects.size())) {
      op->envelope_hits = stats.envelope_hits;
      op->chunks = stats.threads_used;
      op->threads = stats.threads_used > 1 ? num_threads_ : 1;
    }
    if (stats_out != nullptr) *stats_out = stats;
    // No subject survives the spatial constraint: skip the BGP entirely.
    if (subjects.empty()) {
      finish_profile();
      return std::vector<rdf::Binding>{};
    }
    std::vector<rdf::Binding> out;
    const auto bgp_start = std::chrono::steady_clock::now();
    EEA_ASSIGN_OR_RETURN(std::vector<rdf::Binding> rows,
                         engine.Execute(query));
    add_op("bgp", SecondsSince(bgp_start), 0, rows.size());
    const auto filter_start = std::chrono::steady_clock::now();
    for (rdf::Binding& b : rows) {
      auto it = b.find(subject_var);
      if (it == b.end()) continue;
      if (std::binary_search(subjects.begin(), subjects.end(), it->second)) {
        out.push_back(std::move(b));
      }
    }
    add_op("subject_filter", SecondsSince(filter_start), rows.size(),
           out.size());
    finish_profile();
    return out;
  }
  // Baseline: evaluate the BGP, then test each binding's geometry.
  SpatialQueryStats stats;
  const auto bgp_start = std::chrono::steady_clock::now();
  EEA_ASSIGN_OR_RETURN(std::vector<rdf::Binding> rows, engine.Execute(query));
  add_op("bgp", SecondsSince(bgp_start), 0, rows.size());
  std::vector<rdf::Binding> out;
  const auto filter_start = std::chrono::steady_clock::now();
  const bool guarded = !rctx.unconstrained();
  for (size_t i = 0; i < rows.size(); ++i) {
    if (guarded && (i % kPollStride) == 0) {
      Status s = rctx.Check("strabon.QueryWithSpatialFilter");
      if (!s.ok()) {
        CountAbort(metrics, s, 1);
        if (stats_out != nullptr) *stats_out = stats;
        prof.status = common::StatusCodeToString(s.code());
        finish_profile();
        return s;
      }
    }
    rdf::Binding& b = rows[i];
    auto it = b.find(subject_var);
    if (it == b.end()) continue;
    const size_t idx = IndexOf(it->second);
    if (idx == kNpos) continue;
    ++stats.candidates;
    if (EvalRelationAt(idx, query_box, SpatialRelation::kIntersects, &stats)) {
      out.push_back(std::move(b));
    }
  }
  if (common::OperatorProfile* op = add_op(
          "geometry_filter", SecondsSince(filter_start), rows.size(),
          out.size())) {
    op->envelope_hits = stats.envelope_hits;
  }
  stats.results = out.size();
  if (stats_out != nullptr) *stats_out = stats;
  finish_profile();
  return out;
}

namespace {

// True when the relation between two concrete geometries holds.
bool EvalGeomRelation(const geo::Geometry& a, const geo::Geometry& b,
                      SpatialRelation relation) {
  switch (relation) {
    case SpatialRelation::kIntersects:
      return geo::Intersects(a, b);
    case SpatialRelation::kContains:
      return geo::Contains(a, b);
    case SpatialRelation::kWithin:
      return geo::Within(a, b);
  }
  return false;
}

}  // namespace

Result<std::vector<std::pair<uint64_t, uint64_t>>> GeoStore::SpatialJoin(
    const std::string& class_a_iri, const std::string& class_b_iri,
    SpatialRelation relation, bool use_index,
    SpatialQueryStats* stats_out, common::QueryProfile* profile_out) const {
  EEA_CHECK(spatial_built_) << "SpatialJoin before Build()";
  const GeoStoreMetrics& metrics = GeoStoreMetrics::Get();
  common::TraceRequest req("strabon.SpatialJoin");
  common::ProfileScope pscope;
  const bool profiling =
      profile_out != nullptr ||
      (pscope.is_root() && common::SlowQueryLog::Default().enabled());
  const auto query_start = std::chrono::steady_clock::now();
  common::ScopedLatencyTimer query_timer(metrics.query_latency_us);
  metrics.queries->Increment();
  SpatialQueryStats stats;
  // Cooperative abort: joins are the runaway-memory risk (output is
  // quadratic in the worst case), so the per-query byte budget is
  // enforced here on every emitted pair, alongside deadline/cancel polls.
  const common::RequestContext rctx = common::CurrentRequestContext();
  const uint64_t budget = memory_budget_bytes_;
  const bool guarded = !rctx.unconstrained() || budget > 0;
  QueryAbort abort;
  std::atomic<uint64_t> bytes_used{0};
  {
    Status entry = rctx.Check("strabon.SpatialJoin");
    if (!entry.ok()) {
      CountAbort(metrics, entry, 0);
      if (stats_out != nullptr) *stats_out = stats;
      if (profiling) {
        common::QueryProfile prof;
        prof.query = "strabon.SpatialJoin";
        prof.trace_id = req.trace_id();
        prof.total_us = SecondsSince(query_start) * 1e6;
        prof.status = common::StatusCodeToString(entry.code());
        if (profile_out != nullptr) *profile_out = prof;
        if (pscope.is_root()) {
          common::SlowQueryLog::Default().Record(std::move(prof));
        }
      }
      return entry;
    }
  }
  // Members of a class that carry geometry, as dense arena indices.
  auto members_of = [&](const std::string& class_iri) {
    std::vector<uint32_t> out;
    auto type_id = store_.dict().Lookup(rdf::Term::Iri(rdf::vocab::kRdfType));
    auto class_id = store_.dict().Lookup(rdf::Term::Iri(class_iri));
    if (!type_id || !class_id) return out;
    store_.Scan(rdf::IdPattern{std::nullopt, *type_id, *class_id},
                [&](const rdf::TripleId& t) {
                  const size_t idx = IndexOf(t.s);
                  if (idx != kNpos) out.push_back(static_cast<uint32_t>(idx));
                  return true;
                });
    std::sort(out.begin(), out.end());
    return out;
  };
  const auto members_start = std::chrono::steady_clock::now();
  const std::vector<uint32_t> as = members_of(class_a_iri);
  const std::vector<uint32_t> bs = members_of(class_b_iri);
  const double members_secs = SecondsSince(members_start);

  // Probe loop over `as`, partitioned across the pool; each worker probes
  // with thread-local output and stats, merged in chunk order before the
  // final deterministic sort.
  const auto probe_start = std::chrono::steady_clock::now();
  using Pairs = std::vector<std::pair<uint64_t, uint64_t>>;
  const size_t max_chunks = std::max<size_t>(1, num_threads_);
  std::vector<Pairs> chunk_out(max_chunks);
  std::vector<SpatialQueryStats> chunk_stats(max_chunks);
  std::vector<double> chunk_secs(max_chunks, 0.0);
  size_t used = 1;
  if (use_index) {
    // Probe the shared R-tree with each a-envelope; restrict hits to B
    // members via binary search on the sorted dense indices. The envelope
    // screen — the same check the exact predicate would start with, so a
    // screen reject is an envelope-decided "false" counted as an envelope
    // hit — is settled at each R-tree leaf with one kernel call over the
    // leaf's contiguous SoA slice, and rides into the candidate buffer as
    // kFastBit; only survivors pay the exact test.
    const simd::KernelTable& kern = simd::Kernels();
    const simd::EnvelopeColumns& eenv = rtree_.entry_envelopes();
    used = RunChunked(as.size(), [&](size_t c, size_t begin, size_t end) {
      const auto t0 = std::chrono::steady_clock::now();
      Pairs& local = chunk_out[c];
      SpatialQueryStats& lstats = chunk_stats[c];
      geo::RTree::TraversalStats tstats;
      std::vector<uint32_t> buf;  // b-candidates of one probe, reused
      bool stopped = false;
      for (size_t i = begin; i < end; ++i) {
        if (guarded) {
          if (abort.triggered()) {
            stopped = true;
            break;
          }
          if (((i - begin) % kPollStride) == 0) {
            Status s = rctx.Check("strabon.SpatialJoin");
            if (!s.ok()) {
              abort.Trigger(s.code());
              stopped = true;
              break;
            }
          }
        }
        const uint32_t a = as[i];
        const geo::Geometry& ga = geoms_[a];
        const geo::Box abox = env_cols_.At(a);
        buf.clear();
        rtree_.VisitLeavesWith(
            abox,
            [&](const geo::RTree::Entry* es, uint32_t first, uint16_t count,
                uint64_t hits) {
              // The relation holds only if the envelopes do: Intersects
              // needs overlapping envelopes (the traversal mask itself),
              // Contains needs a's envelope to cover b's, Within the
              // reverse — exactly the pre-checks inside
              // geo::Intersects/Contains/Within.
              uint64_t screen = hits;
              switch (relation) {
                case SpatialRelation::kIntersects:
                  break;
                case SpatialRelation::kContains:
                  screen = kern.query_contains_envelope(
                      abox, eenv.Slice(first, count));
                  break;
                case SpatialRelation::kWithin:
                  screen = kern.envelope_contains_query(
                      abox, eenv.Slice(first, count));
                  break;
              }
              uint64_t m = hits;
              while (m != 0) {
                const int k = std::countr_zero(m);
                m &= m - 1;
                const auto b = static_cast<uint32_t>(es[k].id);
                if (b == a) continue;
                if (!std::binary_search(bs.begin(), bs.end(), b)) continue;
                buf.push_back(b |
                              (((screen >> k) & 1) != 0 ? kFastBit : 0u));
              }
              return true;
            },
            &tstats);
        for (size_t t = 0; t < buf.size(); ++t) {
          const uint32_t b = buf[t] & ~kFastBit;
          ++lstats.candidates;
          ++lstats.geometry_tests;
          bool match = false;
          if ((buf[t] & kFastBit) == 0) {
            ++lstats.envelope_hits;  // envelope screen decided "false"
          } else {
            match = EvalGeomRelation(ga, geoms_[b], relation);
          }
          if (match) {
            local.emplace_back(geom_subjects_[a], geom_subjects_[b]);
            if (budget > 0) {
              const uint64_t now_used =
                  bytes_used.fetch_add(sizeof(local[0]),
                                       std::memory_order_relaxed) +
                  sizeof(local[0]);
              if (now_used > budget) {
                abort.Trigger(common::StatusCode::kResourceExhausted);
                stopped = true;
                break;
              }
            }
          }
        }
        if (stopped) break;
      }
      if (stopped) lstats.chunks_cancelled = 1;
      lstats.nodes_visited += tstats.nodes_visited;
      chunk_secs[c] = SecondsSince(t0);
    });
  } else {
    used = RunChunked(as.size(), [&](size_t c, size_t begin, size_t end) {
      const auto t0 = std::chrono::steady_clock::now();
      Pairs& local = chunk_out[c];
      SpatialQueryStats& lstats = chunk_stats[c];
      bool stopped = false;
      for (size_t i = begin; i < end && !stopped; ++i) {
        if (guarded) {
          if (abort.triggered()) {
            stopped = true;
            break;
          }
          if (((i - begin) % kPollStride) == 0) {
            Status s = rctx.Check("strabon.SpatialJoin");
            if (!s.ok()) {
              abort.Trigger(s.code());
              stopped = true;
              break;
            }
          }
        }
        const uint32_t a = as[i];
        const geo::Geometry& ga = geoms_[a];
        for (uint32_t b : bs) {
          if (a == b) continue;
          // The inner loop dominates the baseline join, so the poll
          // rides the candidate count: one clock read per kPollStride
          // geometry tests.
          if (guarded && (lstats.candidates % kPollStride) == 0) {
            if (abort.triggered()) {
              stopped = true;
              break;
            }
            Status s = rctx.Check("strabon.SpatialJoin");
            if (!s.ok()) {
              abort.Trigger(s.code());
              stopped = true;
              break;
            }
          }
          ++lstats.candidates;
          ++lstats.geometry_tests;
          if (EvalGeomRelation(ga, geoms_[b], relation)) {
            local.emplace_back(geom_subjects_[a], geom_subjects_[b]);
            if (budget > 0) {
              const uint64_t now_used =
                  bytes_used.fetch_add(sizeof(local[0]),
                                       std::memory_order_relaxed) +
                  sizeof(local[0]);
              if (now_used > budget) {
                abort.Trigger(common::StatusCode::kResourceExhausted);
                stopped = true;
                break;
              }
            }
          }
        }
      }
      if (stopped) lstats.chunks_cancelled = 1;
      chunk_secs[c] = SecondsSince(t0);
    });
  }
  if (used > 1) metrics.parallel_chunks->Increment(used);
  stats.threads_used = used;
  Pairs out;
  for (size_t c = 0; c < used; ++c) {
    MergeStats(chunk_stats[c], &stats);
    out.insert(out.end(), chunk_out[c].begin(), chunk_out[c].end());
  }
  if (used > 1) {
    const double wall = SecondsSince(probe_start);
    double busy = 0.0;
    for (size_t c = 0; c < used; ++c) busy += chunk_secs[c];
    if (wall > 0.0) metrics.parallel_speedup->Set(busy / wall);
  }
  Status abort_status;
  if (abort.triggered()) {
    abort_status = abort.ToStatus("strabon.SpatialJoin");
    CountAbort(metrics, abort_status, stats.chunks_cancelled);
  } else {
    std::sort(out.begin(), out.end());
    stats.results = out.size();
    metrics.results->Increment(out.size());
    metrics.envelope_hits->Increment(stats.envelope_hits);
    metrics.result_cardinality->Observe(static_cast<double>(out.size()));
  }
  if (stats_out != nullptr) *stats_out = stats;
  if (profiling) {
    common::QueryProfile prof;
    prof.query = "strabon.SpatialJoin";
    prof.trace_id = req.trace_id();
    prof.total_us = SecondsSince(query_start) * 1e6;
    if (!abort_status.ok()) {
      prof.status = common::StatusCodeToString(abort_status.code());
    }
    common::OperatorProfile members_op;
    members_op.name = "members_scan";
    members_op.wall_us = members_secs * 1e6;
    members_op.rows_out = as.size() + bs.size();
    prof.operators.push_back(std::move(members_op));
    common::OperatorProfile probe_op;
    probe_op.name = use_index ? "index_probe_join" : "nested_loop_join";
    probe_op.wall_us = SecondsSince(probe_start) * 1e6;
    probe_op.rows_in = as.size();
    probe_op.rows_out = stats.results;
    probe_op.envelope_hits = stats.envelope_hits;
    probe_op.chunks = used;
    probe_op.threads = used > 1 ? num_threads_ : 1;
    prof.operators.push_back(std::move(probe_op));
    if (profile_out != nullptr) *profile_out = prof;
    if (pscope.is_root()) {
      common::SlowQueryLog::Default().Record(std::move(prof));
    }
  }
  if (!abort_status.ok()) return abort_status;
  return out;
}

const geo::Geometry* GeoStore::GeometryOf(uint64_t subject_id) const {
  const size_t idx = IndexOf(subject_id);
  return idx == kNpos ? nullptr : &geoms_[idx];
}

}  // namespace exearth::strabon
