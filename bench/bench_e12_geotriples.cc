// E12 — GeoTriples transformation throughput (paper Challenge C3, ref
// [16]): re-engineering GeoTriples for scale means the mapping engine must
// turn large tabular/vector inputs into RDF fast. Series: input rows x
// mapping complexity (columns mapped), with and without WKT validation.
//
// Expected shape: linear in rows x mapped-columns; WKT validation adds a
// constant per-geometry cost.

#include <benchmark/benchmark.h>

#include <map>

#include "common/string_util.h"
#include "etl/mapping.h"
#include "etl/table.h"
#include "rdf/triple_store.h"

namespace {

namespace eea = exearth;
using eea::common::StrFormat;

eea::etl::Table& CachedTable(int rows) {
  static std::map<int, eea::etl::Table>* cache =
      new std::map<int, eea::etl::Table>();
  auto it = cache->find(rows);
  if (it == cache->end()) {
    eea::etl::Table table;
    table.columns = {"id", "crop", "area", "region", "owner", "wkt"};
    table.rows.reserve(static_cast<size_t>(rows));
    for (int i = 0; i < rows; ++i) {
      double x = (i % 1000) * 10.0;
      double y = (i / 1000) * 10.0;
      table.rows.push_back(
          {std::to_string(i), i % 2 ? "wheat" : "maize",
           StrFormat("%.2f", 1.0 + i % 50),
           StrFormat("region%d", i % 20), StrFormat("owner%d", i % 500),
           StrFormat("POLYGON ((%.1f %.1f, %.1f %.1f, %.1f %.1f, %.1f %.1f))",
                     x, y, x + 9, y, x + 9, y + 9, x, y)});
    }
    it = cache->emplace(rows, std::move(table)).first;
  }
  return it->second;
}

eea::etl::TriplesMap MakeMapping(int mapped_columns) {
  eea::etl::TriplesMap map;
  map.subject = eea::etl::TermMap::Template("http://x/field/{id}");
  map.subject_class = "http://x/ontology#Field";
  const char* columns[] = {"crop", "area", "region", "owner"};
  for (int c = 0; c < mapped_columns && c < 4; ++c) {
    map.predicate_objects.push_back(
        {StrFormat("http://x/ontology#%s", columns[c]),
         eea::etl::TermMap::Column(columns[c])});
  }
  map.wkt_column = "wkt";
  return map;
}

void BM_GeoTriplesMapping(benchmark::State& state) {
  const int rows = static_cast<int>(state.range(0));
  const int mapped_columns = static_cast<int>(state.range(1));
  const bool validate = state.range(2) != 0;
  eea::etl::Table& table = CachedTable(rows);
  eea::etl::TriplesMap map = MakeMapping(mapped_columns);
  uint64_t triples = 0;
  for (auto _ : state) {
    eea::rdf::TripleStore store;
    auto stats = eea::etl::ExecuteMapping(table, map, &store, validate);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().ToString().c_str());
      return;
    }
    triples = stats->triples_generated;
    benchmark::DoNotOptimize(store.size());
  }
  state.counters["rows"] = rows;
  state.counters["triples"] = static_cast<double>(triples);
  state.counters["rows_per_s"] = benchmark::Counter(
      static_cast<double>(rows) * state.iterations(),
      benchmark::Counter::kIsRate);
  state.counters["triples_per_s"] = benchmark::Counter(
      static_cast<double>(triples) * state.iterations(),
      benchmark::Counter::kIsRate);
}

}  // namespace

BENCHMARK(BM_GeoTriplesMapping)
    ->ArgNames({"rows", "columns", "validate"})
    ->Args({10000, 2, 1})
    ->Args({30000, 2, 1})
    ->Args({100000, 2, 1})
    ->Args({100000, 4, 1})
    ->Args({100000, 2, 0})
    ->Unit(benchmark::kMillisecond);

// main() comes from bench_main.cc (adds --smoke and the
// metrics-snapshot JSON dump).
