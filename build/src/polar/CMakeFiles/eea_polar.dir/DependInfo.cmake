
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/polar/drift.cc" "src/polar/CMakeFiles/eea_polar.dir/drift.cc.o" "gcc" "src/polar/CMakeFiles/eea_polar.dir/drift.cc.o.d"
  "/root/repo/src/polar/ice_products.cc" "src/polar/CMakeFiles/eea_polar.dir/ice_products.cc.o" "gcc" "src/polar/CMakeFiles/eea_polar.dir/ice_products.cc.o.d"
  "/root/repo/src/polar/icebergs.cc" "src/polar/CMakeFiles/eea_polar.dir/icebergs.cc.o" "gcc" "src/polar/CMakeFiles/eea_polar.dir/icebergs.cc.o.d"
  "/root/repo/src/polar/pipeline.cc" "src/polar/CMakeFiles/eea_polar.dir/pipeline.cc.o" "gcc" "src/polar/CMakeFiles/eea_polar.dir/pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eea_common.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/eea_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/eea_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/eea_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/raster/CMakeFiles/eea_raster.dir/DependInfo.cmake"
  "/root/repo/build/src/strabon/CMakeFiles/eea_strabon.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/eea_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eea_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
