#include "geo/rtree.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/logging.h"
#include "common/string_util.h"
#include "storage/page_chain.h"

namespace exearth::geo {

struct RTree::Node {
  bool is_leaf = true;
  Box box;  // covers all children / entries
  std::vector<Entry> entries;                  // when leaf
  std::vector<std::unique_ptr<Node>> children; // when internal

  void RecomputeBox() {
    box = Box{};
    if (is_leaf) {
      for (const Entry& e : entries) box.ExpandToInclude(e.box);
    } else {
      for (const auto& c : children) box.ExpandToInclude(c->box);
    }
  }
};

RTree::RTree() : root_(std::make_unique<Node>()) {}
RTree::~RTree() = default;
RTree::RTree(RTree&&) noexcept = default;
RTree& RTree::operator=(RTree&&) noexcept = default;

namespace {

using Node = RTree::Node;

// Chooses the child whose box needs least enlargement to include `box`.
Node* ChooseSubtree(Node* node, const Box& box) {
  Node* best = nullptr;
  double best_enlargement = std::numeric_limits<double>::max();
  double best_area = std::numeric_limits<double>::max();
  for (const auto& c : node->children) {
    double enlargement = c->box.EnlargementToInclude(box);
    double area = c->box.Area();
    if (enlargement < best_enlargement ||
        (enlargement == best_enlargement && area < best_area)) {
      best = c.get();
      best_enlargement = enlargement;
      best_area = area;
    }
  }
  return best;
}

// Quadratic split of an overfull leaf's entries into two groups.
template <typename T, typename BoxOf>
std::pair<std::vector<T>, std::vector<T>> QuadraticSplit(std::vector<T> items,
                                                         BoxOf box_of) {
  // Pick the pair of seeds wasting the most area together.
  size_t seed_a = 0;
  size_t seed_b = 1;
  double worst = -1.0;
  for (size_t i = 0; i < items.size(); ++i) {
    for (size_t j = i + 1; j < items.size(); ++j) {
      Box merged = box_of(items[i]);
      merged.ExpandToInclude(box_of(items[j]));
      double waste =
          merged.Area() - box_of(items[i]).Area() - box_of(items[j]).Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }
  std::vector<T> group_a;
  std::vector<T> group_b;
  Box box_a = box_of(items[seed_a]);
  Box box_b = box_of(items[seed_b]);
  group_a.push_back(std::move(items[seed_a]));
  group_b.push_back(std::move(items[seed_b]));
  std::vector<T> rest;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i != seed_a && i != seed_b) rest.push_back(std::move(items[i]));
  }
  const size_t min_fill = RTree::kMinEntries;
  for (auto& item : rest) {
    const size_t remaining =
        rest.size() - (group_a.size() + group_b.size() - 2);
    // Force-assign when one group must take everything left to reach the
    // minimum fill.
    if (group_a.size() + remaining <= min_fill) {
      box_a.ExpandToInclude(box_of(item));
      group_a.push_back(std::move(item));
      continue;
    }
    if (group_b.size() + remaining <= min_fill) {
      box_b.ExpandToInclude(box_of(item));
      group_b.push_back(std::move(item));
      continue;
    }
    double da = box_a.EnlargementToInclude(box_of(item));
    double db = box_b.EnlargementToInclude(box_of(item));
    if (da < db || (da == db && group_a.size() <= group_b.size())) {
      box_a.ExpandToInclude(box_of(item));
      group_a.push_back(std::move(item));
    } else {
      box_b.ExpandToInclude(box_of(item));
      group_b.push_back(std::move(item));
    }
  }
  return {std::move(group_a), std::move(group_b)};
}

// Splits an overfull node, returning the new sibling.
std::unique_ptr<Node> SplitNode(Node* node) {
  auto sibling = std::make_unique<Node>();
  sibling->is_leaf = node->is_leaf;
  if (node->is_leaf) {
    auto [a, b] = QuadraticSplit(std::move(node->entries),
                                 [](const RTree::Entry& e) { return e.box; });
    node->entries = std::move(a);
    sibling->entries = std::move(b);
  } else {
    auto [a, b] =
        QuadraticSplit(std::move(node->children),
                       [](const std::unique_ptr<Node>& c) { return c->box; });
    node->children = std::move(a);
    sibling->children = std::move(b);
  }
  node->RecomputeBox();
  sibling->RecomputeBox();
  return sibling;
}

// Inserts into the subtree; returns a new sibling if `node` split.
std::unique_ptr<Node> InsertInto(Node* node, const Box& box, int64_t id) {
  node->box.ExpandToInclude(box);
  if (node->is_leaf) {
    node->entries.push_back(RTree::Entry{box, id});
    if (node->entries.size() > RTree::kMaxEntries) return SplitNode(node);
    return nullptr;
  }
  Node* child = ChooseSubtree(node, box);
  std::unique_ptr<Node> new_child = InsertInto(child, box, id);
  if (new_child != nullptr) {
    node->children.push_back(std::move(new_child));
    if (node->children.size() > RTree::kMaxEntries) return SplitNode(node);
  }
  return nullptr;
}

int HeightOf(const Node* node) {
  if (node->is_leaf) return 1;
  return 1 + HeightOf(node->children[0].get());
}

}  // namespace

void RTree::Insert(const Box& box, int64_t id) {
  // Writes go to the incremental tree; the frozen arena is stale until the
  // next Freeze().
  frozen_ = false;
  flat_nodes_.clear();
  flat_entries_.clear();
  node_env_.Clear();
  entry_env_.Clear();
  std::unique_ptr<Node> sibling = InsertInto(root_.get(), box, id);
  if (sibling != nullptr) {
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(sibling));
    new_root->RecomputeBox();
    root_ = std::move(new_root);
  }
  ++size_;
}

RTree RTree::BulkLoad(std::vector<Entry> entries) {
  RTree tree;
  tree.size_ = entries.size();
  if (entries.empty()) return tree;

  // Sort-Tile-Recursive: sort by x center, slice into vertical strips, sort
  // each strip by y center, pack runs of kMaxEntries into leaves; then
  // repeat one level up until a single root remains.
  const size_t leaf_cap = kMaxEntries;
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.box.Center().x < b.box.Center().x;
  });
  const size_t n = entries.size();
  const size_t num_leaves = (n + leaf_cap - 1) / leaf_cap;
  const size_t strips =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const size_t strip_size = (n + strips - 1) / strips;

  std::vector<std::unique_ptr<Node>> level;
  for (size_t s = 0; s < strips; ++s) {
    size_t begin = s * strip_size;
    if (begin >= n) break;
    size_t end = std::min(begin + strip_size, n);
    std::sort(entries.begin() + begin, entries.begin() + end,
              [](const Entry& a, const Entry& b) {
                return a.box.Center().y < b.box.Center().y;
              });
    for (size_t i = begin; i < end; i += leaf_cap) {
      auto leaf = std::make_unique<Node>();
      leaf->is_leaf = true;
      size_t leaf_end = std::min(i + leaf_cap, end);
      leaf->entries.assign(entries.begin() + i, entries.begin() + leaf_end);
      leaf->RecomputeBox();
      level.push_back(std::move(leaf));
    }
  }

  while (level.size() > 1) {
    std::vector<std::unique_ptr<Node>> next;
    std::sort(level.begin(), level.end(),
              [](const std::unique_ptr<Node>& a, const std::unique_ptr<Node>& b) {
                return a->box.Center().x < b->box.Center().x;
              });
    const size_t m = level.size();
    const size_t num_parents = (m + kMaxEntries - 1) / kMaxEntries;
    const size_t pstrips = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(num_parents))));
    const size_t pstrip_size = (m + pstrips - 1) / pstrips;
    for (size_t s = 0; s < pstrips; ++s) {
      size_t begin = s * pstrip_size;
      if (begin >= m) break;
      size_t end = std::min(begin + pstrip_size, m);
      std::sort(level.begin() + begin, level.begin() + end,
                [](const std::unique_ptr<Node>& a,
                   const std::unique_ptr<Node>& b) {
                  return a->box.Center().y < b->box.Center().y;
                });
      for (size_t i = begin; i < end; i += kMaxEntries) {
        auto parent = std::make_unique<Node>();
        parent->is_leaf = false;
        size_t pend = std::min(i + static_cast<size_t>(kMaxEntries), end);
        for (size_t j = i; j < pend; ++j) {
          parent->children.push_back(std::move(level[j]));
        }
        parent->RecomputeBox();
        next.push_back(std::move(parent));
      }
    }
    level = std::move(next);
  }
  tree.root_ = std::move(level[0]);
  tree.Freeze();
  return tree;
}

void RTree::Freeze() {
  if (frozen_) return;
  flat_nodes_.clear();
  flat_entries_.clear();
  node_env_.Clear();
  entry_env_.Clear();
  if (size_ > 0) {
    // Breadth-first layout: when a node is processed its children are
    // appended consecutively, so one (first, count) pair addresses them
    // and sibling subtrees stay adjacent in memory.
    std::vector<const Node*> bfs = {root_.get()};
    flat_nodes_.reserve(size_ / kMinEntries + 2);
    flat_entries_.reserve(size_);
    entry_env_.Reserve(size_);
    for (size_t i = 0; i < bfs.size(); ++i) {
      const Node* n = bfs[i];
      FlatNode fn;
      fn.box = n->box;
      fn.leaf = n->is_leaf ? 1 : 0;
      if (n->is_leaf) {
        fn.first = static_cast<uint32_t>(flat_entries_.size());
        fn.count = static_cast<uint16_t>(n->entries.size());
        flat_entries_.insert(flat_entries_.end(), n->entries.begin(),
                             n->entries.end());
        for (const Entry& e : n->entries) entry_env_.PushBack(e.box);
      } else {
        fn.first = static_cast<uint32_t>(bfs.size());
        fn.count = static_cast<uint16_t>(n->children.size());
        for (const auto& c : n->children) bfs.push_back(c.get());
      }
      flat_nodes_.push_back(fn);
      node_env_.PushBack(fn.box);
    }
  }
  frozen_ = true;
}

namespace {

// On-disk frozen-tree stream (through a PageChain). Little-endian,
// pinned by the golden fixture alongside the page/WAL formats.
constexpr uint64_t kFrozenMagic = 0x3145525452414545ull;  // "EEARTRE1"
constexpr uint32_t kFrozenVersion = 1;

common::Status WriteBox(storage::PageChainWriter* w, const Box& b) {
  EEA_RETURN_NOT_OK(w->WriteF64(b.min_x));
  EEA_RETURN_NOT_OK(w->WriteF64(b.min_y));
  EEA_RETURN_NOT_OK(w->WriteF64(b.max_x));
  return w->WriteF64(b.max_y);
}

common::Status ReadBox(storage::PageChainReader* r, Box* b) {
  EEA_ASSIGN_OR_RETURN(b->min_x, r->ReadF64());
  EEA_ASSIGN_OR_RETURN(b->min_y, r->ReadF64());
  EEA_ASSIGN_OR_RETURN(b->max_x, r->ReadF64());
  EEA_ASSIGN_OR_RETURN(b->max_y, r->ReadF64());
  return common::Status::OK();
}

// Rebuilds the pointer tree for flat node `idx` (children of internal
// nodes are the contiguous [first, first+count) flat range).
std::unique_ptr<Node> RebuildNode(const std::vector<RTree::FlatNode>& nodes,
                                  const std::vector<RTree::Entry>& entries,
                                  uint32_t idx) {
  const RTree::FlatNode& fn = nodes[idx];
  auto node = std::make_unique<Node>();
  node->box = fn.box;
  node->is_leaf = fn.leaf != 0;
  if (node->is_leaf) {
    node->entries.assign(entries.begin() + fn.first,
                         entries.begin() + fn.first + fn.count);
  } else {
    node->children.reserve(fn.count);
    for (uint16_t c = 0; c < fn.count; ++c) {
      node->children.push_back(RebuildNode(nodes, entries, fn.first + c));
    }
  }
  return node;
}

}  // namespace

common::Status RTree::FreezeTo(storage::BufferPool* pool,
                               storage::PageId* head) const {
  if (!frozen_) {
    return common::Status::FailedPrecondition(
        "FreezeTo requires a frozen tree (call Freeze() first)");
  }
  storage::PageChainWriter w(pool, /*lsn=*/0);
  EEA_RETURN_NOT_OK(w.WriteU64(kFrozenMagic));
  EEA_RETURN_NOT_OK(w.WriteU32(kFrozenVersion));
  EEA_RETURN_NOT_OK(w.WriteU64(size_));
  EEA_RETURN_NOT_OK(w.WriteU64(flat_nodes_.size()));
  EEA_RETURN_NOT_OK(w.WriteU64(flat_entries_.size()));
  for (const FlatNode& fn : flat_nodes_) {
    EEA_RETURN_NOT_OK(WriteBox(&w, fn.box));
    EEA_RETURN_NOT_OK(w.WriteU32(fn.first));
    EEA_RETURN_NOT_OK(w.WriteU32(static_cast<uint32_t>(fn.count) |
                                 (static_cast<uint32_t>(fn.leaf) << 16)));
  }
  for (const Entry& e : flat_entries_) {
    EEA_RETURN_NOT_OK(WriteBox(&w, e.box));
    EEA_RETURN_NOT_OK(w.WriteU64(std::bit_cast<uint64_t>(e.id)));
  }
  EEA_ASSIGN_OR_RETURN(*head, w.Finish());
  return common::Status::OK();
}

common::Result<RTree> RTree::OpenFrozen(storage::BufferPool* pool,
                                        storage::PageId head) {
  storage::PageChainReader r(pool, head);
  EEA_ASSIGN_OR_RETURN(uint64_t magic, r.ReadU64());
  if (magic != kFrozenMagic) {
    return common::Status::IOError(
        "OpenFrozen: page chain is not a frozen r-tree");
  }
  EEA_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kFrozenVersion) {
    return common::Status::IOError(common::StrFormat(
        "OpenFrozen: frozen r-tree format version mismatch: file has v%u, "
        "this reader supports v%u",
        version, kFrozenVersion));
  }
  EEA_ASSIGN_OR_RETURN(uint64_t size, r.ReadU64());
  EEA_ASSIGN_OR_RETURN(uint64_t node_count, r.ReadU64());
  EEA_ASSIGN_OR_RETURN(uint64_t entry_count, r.ReadU64());
  RTree tree;
  tree.size_ = size;
  tree.flat_nodes_.reserve(node_count);
  tree.flat_entries_.reserve(entry_count);
  tree.entry_env_.Reserve(entry_count);
  for (uint64_t i = 0; i < node_count; ++i) {
    FlatNode fn;
    EEA_RETURN_NOT_OK(ReadBox(&r, &fn.box));
    EEA_ASSIGN_OR_RETURN(fn.first, r.ReadU32());
    EEA_ASSIGN_OR_RETURN(uint32_t packed, r.ReadU32());
    fn.count = static_cast<uint16_t>(packed & 0xffffu);
    fn.leaf = static_cast<uint16_t>(packed >> 16);
    tree.flat_nodes_.push_back(fn);
    tree.node_env_.PushBack(fn.box);
  }
  for (uint64_t i = 0; i < entry_count; ++i) {
    Entry e;
    EEA_RETURN_NOT_OK(ReadBox(&r, &e.box));
    EEA_ASSIGN_OR_RETURN(uint64_t id, r.ReadU64());
    e.id = std::bit_cast<int64_t>(id);
    tree.flat_entries_.push_back(e);
    tree.entry_env_.PushBack(e.box);
  }
  // Sanity: flat ranges must stay inside the arrays before traversal or
  // the pointer-tree rebuild dereferences them.
  for (const FlatNode& fn : tree.flat_nodes_) {
    const uint64_t limit = fn.leaf != 0 ? entry_count : node_count;
    if (static_cast<uint64_t>(fn.first) + fn.count > limit) {
      return common::Status::IOError(
          "OpenFrozen: corrupt frozen r-tree (node range out of bounds)");
    }
  }
  if (!tree.flat_nodes_.empty()) {
    tree.root_ = RebuildNode(tree.flat_nodes_, tree.flat_entries_, 0);
  }
  tree.frozen_ = true;
  return tree;
}

int RTree::Height() const { return HeightOf(root_.get()); }

void RTree::VisitPointerTree(const Box& query,
                             const std::function<bool(const Entry&)>& visitor,
                             TraversalStats* stats) const {
  size_t visited = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++visited;
    if (!node->box.Intersects(query)) continue;
    if (node->is_leaf) {
      for (const Entry& e : node->entries) {
        if (e.box.Intersects(query)) {
          if (!visitor(e)) {
            if (stats != nullptr) stats->nodes_visited += visited;
            return;
          }
        }
      }
    } else {
      for (const auto& c : node->children) {
        if (c->box.Intersects(query)) stack.push_back(c.get());
      }
    }
  }
  if (stats != nullptr) stats->nodes_visited += visited;
}

void RTree::Visit(const Box& query,
                  const std::function<bool(const Entry&)>& visitor) const {
  TraversalStats stats;
  VisitWith(query, visitor, &stats);
  last_nodes_visited_ = stats.nodes_visited;
}

std::vector<int64_t> RTree::Query(const Box& query) const {
  std::vector<int64_t> out;
  TraversalStats stats;
  VisitWith(
      query,
      [&](const Entry& e) {
        out.push_back(e.id);
        return true;
      },
      &stats);
  last_nodes_visited_ = stats.nodes_visited;
  return out;
}

std::vector<RTree::Entry> RTree::Nearest(const Point& p, size_t k) const {
  // Best-first search over nodes ordered by box distance.
  struct QueueItem {
    double dist;
    const Node* node;
    const Entry* entry;  // non-null for entry items
    bool operator>(const QueueItem& other) const { return dist > other.dist; }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> pq;
  pq.push({root_->box.Distance(p), root_.get(), nullptr});
  std::vector<Entry> out;
  while (!pq.empty() && out.size() < k) {
    QueueItem item = pq.top();
    pq.pop();
    if (item.entry != nullptr) {
      out.push_back(*item.entry);
      continue;
    }
    const Node* node = item.node;
    if (node->is_leaf) {
      for (const Entry& e : node->entries) {
        pq.push({e.box.Distance(p), nullptr, &e});
      }
    } else {
      for (const auto& c : node->children) {
        pq.push({c->box.Distance(p), c.get(), nullptr});
      }
    }
  }
  return out;
}

}  // namespace exearth::geo
