# Empty compiler generated dependencies file for bench_e6_training_datasets.
# This may be replaced when dependencies are built.
