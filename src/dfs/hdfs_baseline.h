// Single-namenode baseline (the HDFS architecture HopsFS improves on): the
// whole namespace lives in one in-memory tree guarded by one global lock,
// so metadata throughput cannot scale with client parallelism. E3 plots
// this against HopsFS-sim.

#ifndef EXEARTH_DFS_HDFS_BASELINE_H_
#define EXEARTH_DFS_HDFS_BASELINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "dfs/filesystem.h"

namespace exearth::dfs {

/// Global-lock single-namenode filesystem. Thread-safe (by serializing).
class SingleNameNodeFs : public FileSystem {
 public:
  SingleNameNodeFs();

  common::Status Mkdir(const std::string& path) override;
  common::Status Create(const std::string& path, uint64_t size_bytes,
                        const std::string& data) override;
  common::Result<FileInfo> GetFileInfo(const std::string& path) override;
  common::Result<std::vector<std::string>> List(
      const std::string& path) override;
  common::Status Remove(const std::string& path) override;
  common::Result<std::string> ReadFile(const std::string& path) override;
  common::Status Rename(const std::string& from,
                        const std::string& to) override;
  common::Status RemoveRecursive(const std::string& path) override;
  common::Result<uint64_t> DiskUsage(const std::string& path) override;

 private:
  struct Node {
    int64_t id = 0;
    bool is_directory = false;
    uint64_t size = 0;
    std::string data;
    std::map<std::string, std::unique_ptr<Node>> children;
  };

  // Requires mu_ held. Returns nullptr if not found.
  Node* Resolve(const std::vector<std::string>& parts);
  // Requires mu_ held. Resolves all but the last component.
  common::Result<Node*> ResolveParent(const std::string& path,
                                      std::string* leaf);

  std::mutex mu_;
  Node root_;
  int64_t next_id_ = 2;
};

}  // namespace exearth::dfs

#endif  // EXEARTH_DFS_HDFS_BASELINE_H_
