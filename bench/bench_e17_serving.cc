// E17 — multi-tenant serving under load (paper §6 "thousands of
// concurrent users"): the serve::QueryBroker front door driven by the
// closed/open-loop load generator at 10k–1M simulated users with Zipfian
// tenant skew. Reports throughput and p50/p95/p99 tail latency, plus the
// deterministic request/shed/cache/batch counters the serving-load CI
// gate diffs across two seeded runs.
//
// Expected shape: the result cache absorbs the Zipf head (hit ratio grows
// with skew), cross-request batching collapses concurrent selects into
// far fewer R-tree traversals than requests served, and per-tenant quotas
// shed the hot tenant first while the tail stays within its share.
//
// Every row runs FIXED iterations over a workload derived from --seed, so
// every serve.* / strabon.geostore.* counter and the bench.e17.* hash
// gauges in the metrics JSON are byte-identical across runs with the same
// seed (CI runs the binary twice and diffs to prove it). Wall-clock
// latency percentiles live in benchmark counters only — they are for
// humans, not for the gate.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench_flags.h"
#include "common/metrics.h"
#include "serve/broker.h"
#include "serve/loadgen.h"
#include "strabon/workload.h"

namespace {

namespace eea = exearth;
using eea::serve::ArrivalMode;
using eea::serve::BrokerOptions;
using eea::serve::LoadGenOptions;
using eea::serve::LoadGenReport;
using eea::serve::QueryBroker;
using eea::serve::Request;
using eea::serve::TenantId;
using eea::serve::TenantOptions;

constexpr double kWorldSize = 1000.0;

eea::strabon::GeoStore& ServingStore() {
  static eea::strabon::GeoStore* store = [] {
    eea::strabon::GeoWorkloadOptions opt;
    opt.num_features = 20000;
    opt.kind = eea::strabon::GeoWorkloadOptions::GeometryKind::kPoint;
    opt.with_thematic = false;
    opt.world_size = kWorldSize;
    opt.seed = 17;
    return new eea::strabon::GeoStore(eea::strabon::MakeGeoWorkload(opt));
  }();
  return *store;
}

// A tenant population with skewed contracts: tenant 0 is the heavy
// interactive tenant (big share, big quota), the rest alternate batch /
// best-effort with small shares, so quota shed and priority shed both
// have someone to bite.
std::vector<TenantId> RegisterTenants(QueryBroker* broker, int n) {
  std::vector<TenantId> ids;
  ids.reserve(n);
  for (int i = 0; i < n; ++i) {
    TenantOptions t;
    if (i == 0) {
      t.weight = 4;
      t.quota_rps = 20000.0;
      t.quota_burst = 200.0;
      t.priority = eea::common::Priority::kInteractive;
    } else {
      t.weight = (i % 3 == 1) ? 2 : 1;
      t.quota_rps = 4000.0;
      t.quota_burst = 50.0;
      t.priority = (i % 2 == 0) ? eea::common::Priority::kBestEffort
                                : eea::common::Priority::kBatch;
    }
    ids.push_back(broker->RegisterTenant("tenant" + std::to_string(i), t));
  }
  return ids;
}

void ReportRun(benchmark::State& state, const LoadGenReport& r) {
  state.counters["offered"] = static_cast<double>(r.offered);
  state.counters["ok"] = static_cast<double>(r.ok);
  state.counters["errors"] = static_cast<double>(r.errors);
  state.counters["quota_shed"] = static_cast<double>(r.quota_shed);
  state.counters["admission_shed"] = static_cast<double>(r.admission_shed);
  state.counters["cache_hits"] = static_cast<double>(r.cache_hits);
  state.counters["batched"] = static_cast<double>(r.batched_requests);
  state.counters["throughput_rps"] = r.throughput_rps;
  state.counters["p50_us"] = r.p50_us;
  state.counters["p95_us"] = r.p95_us;
  state.counters["p99_us"] = r.p99_us;
}

// Closed loop: `concurrency` simulated in-flight users per wave, waves on
// a virtual millisecond clock (so token buckets refill deterministically).
void BM_ServingClosedLoop(benchmark::State& state) {
  const uint64_t users = static_cast<uint64_t>(state.range(0));
  const int tenants = static_cast<int>(state.range(1));
  const size_t concurrency = static_cast<size_t>(state.range(2));
  const int threads =
      eea::bench::EffectiveThreads(static_cast<int>(state.range(3)));

  uint64_t result_hash = 0;
  LoadGenReport report;
  for (auto _ : state) {
    BrokerOptions opt;
    opt.admission.max_depth = 48;  // < concurrency: admission shed is real
    opt.num_threads = static_cast<size_t>(threads);
    QueryBroker broker(opt);
    broker.set_store(&ServingStore());
    std::vector<TenantId> ids = RegisterTenants(&broker, tenants);

    LoadGenOptions load;
    load.seed = eea::bench::SeedFlag();
    load.mode = ArrivalMode::kClosed;
    load.concurrency = concurrency;
    load.waves = 20;
    load.wave_virtual_us = 1000;
    load.num_users = users;
    load.world = {0.0, 0.0, kWorldSize, kWorldSize};
    load.box_extent = 25.0;
    report = eea::serve::RunLoadGen(&broker, ids, load);
    result_hash += report.result_hash;
    benchmark::DoNotOptimize(report.ok);
  }
  ReportRun(state, report);
  // Mask to 32 bits: metrics gauges are doubles, and 52 mantissa bits
  // would silently round a full 64-bit hash.
  eea::common::MetricsRegistry::Default()
      .GetGauge("bench.e17.result_hash")
      ->Set(static_cast<double>(result_hash & 0xffffffffULL));
}

// Open loop: Poisson arrivals on the virtual clock; arrivals sharing a
// tick are concurrently in flight.
void BM_ServingOpenLoop(benchmark::State& state) {
  const uint64_t users = static_cast<uint64_t>(state.range(0));
  const int tenants = static_cast<int>(state.range(1));

  uint64_t result_hash = 0;
  LoadGenReport report;
  for (auto _ : state) {
    BrokerOptions opt;
    opt.admission.max_depth = 48;
    QueryBroker broker(opt);
    broker.set_store(&ServingStore());
    std::vector<TenantId> ids = RegisterTenants(&broker, tenants);

    LoadGenOptions load;
    load.seed = eea::bench::SeedFlag();
    load.mode = ArrivalMode::kOpen;
    load.arrival_rps = 100000.0;
    load.total_requests = 4000;
    load.tick_us = 500;
    load.num_users = users;
    load.world = {0.0, 0.0, kWorldSize, kWorldSize};
    load.box_extent = 25.0;
    report = eea::serve::RunLoadGen(&broker, ids, load);
    result_hash += report.result_hash;
    benchmark::DoNotOptimize(report.ok);
  }
  ReportRun(state, report);
  eea::common::MetricsRegistry::Default()
      .GetGauge("bench.e17.open.result_hash")
      ->Set(static_cast<double>(result_hash & 0xffffffffULL));
}

// The batching ablation the acceptance gate checks: >= 64 concurrent
// SpatialSelects against the same frozen R-tree, batched vs unbatched
// (caching off so every request actually executes). Batched mode must
// traverse measurably fewer times than it serves requests, with
// byte-identical per-request results.
void BM_ServingBatchEffect(benchmark::State& state) {
  const size_t kRequests = 64;
  auto* traversals = eea::common::MetricsRegistry::Default().GetCounter(
      "strabon.geostore.select_traversals");

  uint64_t batched_traversals = 0;
  uint64_t unbatched_traversals = 0;
  bool identical = true;
  for (auto _ : state) {
    // Same offered wave both modes: 64 selects over 8 distinct boxes.
    std::vector<eea::serve::Offered> wave;
    {
      eea::common::Rng rng(eea::bench::SeedFlag());
      std::vector<eea::geo::Box> boxes;
      for (int i = 0; i < 8; ++i) {
        double x = rng.UniformDouble(0.0, kWorldSize - 50.0);
        double y = rng.UniformDouble(0.0, kWorldSize - 50.0);
        boxes.push_back(eea::geo::Box{x, y, x + 50.0, y + 50.0});
      }
      for (size_t i = 0; i < kRequests; ++i) {
        wave.push_back(
            {0, Request::SpatialSelect(boxes[i % boxes.size()])});
      }
    }
    auto run_mode = [&](bool batching, uint64_t* traversal_delta) {
      BrokerOptions opt;
      opt.enable_batching = batching;
      opt.cache_capacity = 0;  // every request must execute
      QueryBroker broker(opt);
      broker.set_store(&ServingStore());
      TenantOptions t;
      t.quota_rps = 1e9;  // no shed: this row isolates the batching effect
      t.quota_burst = 1e6;
      broker.RegisterTenant("ablation", t);
      uint64_t before = traversals->value();
      auto responses = broker.ExecuteWave(wave, 1000);
      *traversal_delta += traversals->value() - before;
      return responses;
    };
    uint64_t bt = 0, ut = 0;
    auto batched = run_mode(true, &bt);
    auto unbatched = run_mode(false, &ut);
    batched_traversals += bt;
    unbatched_traversals += ut;
    for (size_t i = 0; i < kRequests; ++i) {
      if (batched[i].ids != unbatched[i].ids) identical = false;
    }
    benchmark::DoNotOptimize(batched.data());
  }
  state.counters["requests"] = static_cast<double>(kRequests);
  state.counters["traversals_batched"] =
      static_cast<double>(batched_traversals);
  state.counters["traversals_unbatched"] =
      static_cast<double>(unbatched_traversals);
  state.counters["identical"] = identical ? 1.0 : 0.0;
  // The CI gate asserts on these gauges: batched mode must traverse fewer
  // times than it serves requests, and results must match unbatched.
  auto& reg = eea::common::MetricsRegistry::Default();
  reg.GetGauge("bench.e17.batch.requests")
      ->Set(static_cast<double>(kRequests));
  reg.GetGauge("bench.e17.batch.traversals")
      ->Set(static_cast<double>(batched_traversals));
  reg.GetGauge("bench.e17.batch.traversals_unbatched")
      ->Set(static_cast<double>(unbatched_traversals));
  reg.GetGauge("bench.e17.batch.identical")->Set(identical ? 1.0 : 0.0);
}

}  // namespace

BENCHMARK(BM_ServingClosedLoop)
    ->ArgNames({"users", "tenants", "concurrency", "threads"})
    ->Args({10000, 4, 64, 1})
    ->Args({100000, 16, 64, 1})
    ->Args({1000000, 16, 256, 1})
    ->Args({1000000, 16, 256, 4})
    ->Iterations(1)  // fixed: keeps serve.* counters reproducible
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_ServingOpenLoop)
    ->ArgNames({"users", "tenants"})
    ->Args({100000, 8})
    ->Iterations(1)  // fixed: keeps serve.* counters reproducible
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_ServingBatchEffect)
    ->Iterations(1)  // fixed: keeps traversal counters reproducible
    ->Unit(benchmark::kMillisecond);

// main() comes from bench_main.cc (adds --smoke, --seed and the
// metrics-snapshot JSON dump).
