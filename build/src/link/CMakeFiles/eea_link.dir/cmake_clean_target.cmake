file(REMOVE_RECURSE
  "libeea_link.a"
)
