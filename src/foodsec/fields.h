// Field-boundary extraction from a crop-type map (Challenge A1): connected
// components of same-crop pixels become fields with georeferenced
// boundaries, areas and crop labels — the "field boundaries and crop types
// as linked data" layer the paper asks for.

#ifndef EXEARTH_FOODSEC_FIELDS_H_
#define EXEARTH_FOODSEC_FIELDS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geo/geometry.h"
#include "raster/landcover.h"
#include "raster/raster.h"
#include "rdf/triple_store.h"
#include "strabon/geostore.h"

namespace exearth::foodsec {

/// One extracted field.
struct Field {
  int id = 0;
  raster::CropType crop = raster::CropType::kFallow;
  int64_t pixels = 0;
  double area_ha = 0.0;       // from pixel size
  geo::Box bounds;            // world-space bounding box
  geo::Point centroid;        // world-space centroid
};

struct FieldExtractionOptions {
  /// Components smaller than this many pixels are discarded (noise).
  int64_t min_pixels = 4;
};

/// 4-connected components of equal crop label.
std::vector<Field> ExtractFields(const raster::ClassMap& crop_map,
                                 const raster::GeoTransform& transform,
                                 const FieldExtractionOptions& options);

/// Publishes fields as linked data into a GeoStore: each field gets an IRI,
/// rdf:type Field, crop type, area and its bounding-box geometry. Returns
/// the number of triples added (caller Build()s the store).
size_t PublishFields(const std::vector<Field>& fields,
                     const std::string& iri_prefix,
                     strabon::GeoStore* store);

}  // namespace exearth::foodsec

#endif  // EXEARTH_FOODSEC_FIELDS_H_
