#include "serve/broker.h"

#include <algorithm>
#include <chrono>
#include <deque>

#include "common/deadline.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/stopwatch.h"
#include "common/trace.h"
#include "serve/slo.h"

namespace exearth::serve {

using common::Status;

namespace {

// Cached metric handles (see common/metrics.h: registration locks,
// increments are relaxed atomics).
struct ServeMetrics {
  common::Counter* requests;
  common::Counter* ok;
  common::Counter* errors;
  common::Counter* quota_shed;
  common::Counter* cache_hits;
  common::Counter* cache_misses;
  common::Counter* cache_invalidated;
  common::Counter* cache_evicted;
  common::Counter* batch_groups;
  common::Counter* batch_batched_requests;
  common::Gauge* tenants;
  common::Gauge* batch_max_size;
  common::Histogram* request_latency_us;

  static const ServeMetrics& Get() {
    static ServeMetrics m = [] {
      auto& reg = common::MetricsRegistry::Default();
      return ServeMetrics{
          reg.GetCounter("serve.requests"),
          reg.GetCounter("serve.ok"),
          reg.GetCounter("serve.errors"),
          reg.GetCounter("serve.quota.shed"),
          reg.GetCounter("serve.cache.hits"),
          reg.GetCounter("serve.cache.misses"),
          reg.GetCounter("serve.cache.invalidated"),
          reg.GetCounter("serve.cache.evicted"),
          reg.GetCounter("serve.batch.groups"),
          reg.GetCounter("serve.batch.batched_requests"),
          reg.GetGauge("serve.tenants"),
          reg.GetGauge("serve.batch.max_size"),
          reg.GetHistogram("serve.request_latency_us"),
      };
    }();
    return m;
  }
};

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t FnvBytes(uint64_t h, const void* data, size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

uint64_t FnvU64(uint64_t h, uint64_t v) { return FnvBytes(h, &v, sizeof(v)); }

uint64_t FnvDouble(uint64_t h, double v) { return FnvBytes(h, &v, sizeof(v)); }

uint64_t FnvString(uint64_t h, const std::string& s) {
  h = FnvU64(h, s.size());
  return FnvBytes(h, s.data(), s.size());
}

uint64_t HashIds(const std::vector<uint64_t>& ids) {
  uint64_t h = kFnvOffset;
  for (uint64_t id : ids) h = FnvU64(h, id);
  return h;
}

uint64_t HashPairs(const std::vector<std::pair<uint64_t, uint64_t>>& ps) {
  uint64_t h = kFnvOffset;
  for (const auto& [a, b] : ps) h = FnvU64(FnvU64(h, a), b);
  return h;
}

// Order-independent: federated row order is deterministic per engine, but
// summing per-row hashes keeps the value stable across merge orders too.
uint64_t HashRows(const std::vector<fed::FedBinding>& rows) {
  uint64_t total = 0;
  for (const auto& row : rows) {
    uint64_t h = kFnvOffset;
    for (const auto& [var, term] : row) {
      h = FnvString(h, var);
      h = FnvString(h, term.ToString());
    }
    total += h;
  }
  return total;
}

}  // namespace

const char* RequestTypeToString(RequestType t) {
  switch (t) {
    case RequestType::kSpatialSelect:
      return "spatial_select";
    case RequestType::kSpatialJoin:
      return "spatial_join";
    case RequestType::kFederated:
      return "federated";
  }
  return "unknown";
}

Request Request::SpatialSelect(const geo::Box& box,
                               strabon::SpatialRelation rel) {
  Request r;
  r.type = RequestType::kSpatialSelect;
  r.box = box;
  r.relation = rel;
  return r;
}

Request Request::SpatialJoin(std::string class_a, std::string class_b,
                             strabon::SpatialRelation rel) {
  Request r;
  r.type = RequestType::kSpatialJoin;
  r.class_a = std::move(class_a);
  r.class_b = std::move(class_b);
  r.relation = rel;
  return r;
}

Request Request::Federated(rdf::Query query) {
  Request r;
  r.type = RequestType::kFederated;
  r.fed_query = std::move(query);
  return r;
}

uint64_t Request::Fingerprint() const {
  uint64_t h = kFnvOffset;
  h = FnvU64(h, static_cast<uint64_t>(type));
  switch (type) {
    case RequestType::kSpatialSelect:
      h = FnvDouble(h, box.min_x);
      h = FnvDouble(h, box.min_y);
      h = FnvDouble(h, box.max_x);
      h = FnvDouble(h, box.max_y);
      h = FnvU64(h, static_cast<uint64_t>(relation));
      break;
    case RequestType::kSpatialJoin:
      h = FnvString(h, class_a);
      h = FnvString(h, class_b);
      h = FnvU64(h, static_cast<uint64_t>(relation));
      break;
    case RequestType::kFederated: {
      // Canonical encoding of the BGP (filters are opaque and ignored by
      // the federation engine; see fed/federation.h).
      h = FnvU64(h, fed_query.where.size());
      auto slot = [&](const rdf::PatternSlot& s) {
        h = FnvU64(h, s.is_var ? 1 : 0);
        if (s.is_var) {
          h = FnvString(h, s.var);
        } else {
          h = FnvString(h, s.term.ToString());
        }
      };
      for (const rdf::TriplePattern& p : fed_query.where) {
        slot(p.s);
        slot(p.p);
        slot(p.o);
      }
      for (const std::string& v : fed_query.select) h = FnvString(h, v);
      h = FnvU64(h, fed_query.limit);
      break;
    }
  }
  return h;
}

bool QueryBroker::TokenBucket::TryTake(int64_t now_us) {
  if (last_us < 0) last_us = now_us;
  if (now_us > last_us) {
    tokens = std::min(capacity,
                      tokens + static_cast<double>(now_us - last_us) * per_us);
    last_us = now_us;
  }
  if (tokens >= 1.0) {
    tokens -= 1.0;
    return true;
  }
  return false;
}

QueryBroker::QueryBroker(BrokerOptions options)
    : options_(std::move(options)),
      admission_("serve", options_.admission),
      now_us_([] {
        return std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
            .count();
      }) {
  if (options_.num_threads > 1) {
    pool_ = std::make_unique<common::ThreadPool>(options_.num_threads);
  }
}

QueryBroker::~QueryBroker() = default;

TenantId QueryBroker::RegisterTenant(std::string name, TenantOptions options) {
  EEA_CHECK(options.weight >= 1) << "tenant weight must be >= 1";
  auto t = std::make_unique<Tenant>();
  t->name = std::move(name);
  t->options = options;
  t->bucket.capacity = std::max(1.0, options.quota_burst);
  t->bucket.tokens = t->bucket.capacity;
  t->bucket.per_us = options.quota_rps / 1e6;
  tenants_.push_back(std::move(t));
  ServeMetrics::Get().tenants->Set(static_cast<double>(tenants_.size()));
  return static_cast<TenantId>(tenants_.size() - 1);
}

const std::string& QueryBroker::tenant_name(TenantId id) const {
  static const std::string kUnknown = "<unknown>";
  return id < tenants_.size() ? tenants_[id]->name : kUnknown;
}

void QueryBroker::set_clock(std::function<int64_t()> now_us) {
  now_us_ = std::move(now_us);
}

QueryBroker::Tenant* QueryBroker::tenant(TenantId id) {
  return id < tenants_.size() ? tenants_[id].get() : nullptr;
}

std::vector<TenantStats> QueryBroker::TenantStatsSnapshot() const {
  std::vector<TenantStats> out;
  out.reserve(tenants_.size());
  for (const auto& t : tenants_) {
    TenantStats s;
    s.name = t->name;
    s.weight = t->options.weight;
    s.priority = t->options.priority;
    s.quota_rps = t->options.quota_rps;
    s.offered = t->offered.load(std::memory_order_relaxed);
    s.ok = t->ok.load(std::memory_order_relaxed);
    s.errors = t->errors.load(std::memory_order_relaxed);
    s.quota_shed = t->quota_shed.load(std::memory_order_relaxed);
    s.admission_shed = t->admission_shed.load(std::memory_order_relaxed);
    s.cache_hits = t->cache_hits.load(std::memory_order_relaxed);
    s.batched = t->batched.load(std::memory_order_relaxed);
    out.push_back(std::move(s));
  }
  return out;
}

common::Status QueryBroker::CheckReady() const {
  if (shutting_down()) {
    return Status::Unavailable("serve: broker shutting down");
  }
  if (store_ == nullptr && fed_ == nullptr) {
    return Status::FailedPrecondition("serve: no backend registered");
  }
  return Status::OK();
}

uint64_t QueryBroker::EpochFor(RequestType type) const {
  if (type == RequestType::kFederated) {
    return fed_epoch_.load(std::memory_order_relaxed);
  }
  return store_ != nullptr ? store_->data_epoch() : 0;
}

size_t QueryBroker::cache_size() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_lru_.size();
}

bool QueryBroker::CacheGet(const CacheKey& key, RequestType type,
                           Response* out) {
  if (options_.cache_capacity == 0) return false;
  const ServeMetrics& metrics = ServeMetrics::Get();
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_index_.find(key);
  if (it == cache_index_.end()) {
    metrics.cache_misses->Increment();
    return false;
  }
  if (it->second->epoch != EpochFor(type)) {
    // Ingest moved the data epoch since this entry was filled: the entry
    // is stale, drop it so the request recomputes against fresh data.
    cache_lru_.erase(it->second);
    cache_index_.erase(it);
    metrics.cache_invalidated->Increment();
    metrics.cache_misses->Increment();
    return false;
  }
  cache_lru_.splice(cache_lru_.begin(), cache_lru_, it->second);
  const CacheEntry& e = *it->second;
  out->status = Status::OK();
  out->ids = e.ids;
  out->pairs = e.pairs;
  out->rows = e.rows;
  out->result_hash = e.result_hash;
  out->cache_hit = true;
  metrics.cache_hits->Increment();
  return true;
}

void QueryBroker::CachePut(const CacheKey& key, RequestType type,
                           const Response& resp) {
  if (options_.cache_capacity == 0 || !resp.status.ok()) return;
  const ServeMetrics& metrics = ServeMetrics::Get();
  std::lock_guard<std::mutex> lock(cache_mu_);
  auto it = cache_index_.find(key);
  if (it != cache_index_.end()) {
    cache_lru_.erase(it->second);
    cache_index_.erase(it);
  }
  cache_lru_.push_front(CacheEntry{key, type, EpochFor(type), resp.ids,
                                   resp.pairs, resp.rows, resp.result_hash});
  cache_index_[key] = cache_lru_.begin();
  while (cache_lru_.size() > options_.cache_capacity) {
    cache_index_.erase(cache_lru_.back().key);
    cache_lru_.pop_back();
    metrics.cache_evicted->Increment();
  }
}

void QueryBroker::ExecuteSingle(const Tenant& t, const Request& request,
                                Response* out) {
  common::RequestContext rctx;
  if (t.options.deadline_us > 0) {
    rctx.deadline = common::Deadline::FromNowUs(t.options.deadline_us);
  }
  common::ScopedRequestContext scope(rctx);
  common::TraceRequest req("serve.request");
  switch (request.type) {
    case RequestType::kSpatialSelect: {
      if (store_ == nullptr) {
        out->status = Status::FailedPrecondition("serve: no GeoStore backend");
        return;
      }
      auto res = store_->SpatialSelect(request.box, request.relation,
                                       /*use_index=*/true);
      if (!res.ok()) {
        out->status = res.status();
        return;
      }
      out->ids = std::move(*res);
      out->result_hash = HashIds(out->ids);
      break;
    }
    case RequestType::kSpatialJoin: {
      if (store_ == nullptr) {
        out->status = Status::FailedPrecondition("serve: no GeoStore backend");
        return;
      }
      auto res = store_->SpatialJoin(request.class_a, request.class_b,
                                     request.relation, /*use_index=*/true);
      if (!res.ok()) {
        out->status = res.status();
        return;
      }
      out->pairs = std::move(*res);
      out->result_hash = HashPairs(out->pairs);
      break;
    }
    case RequestType::kFederated: {
      if (fed_ == nullptr) {
        out->status =
            Status::FailedPrecondition("serve: no federation backend");
        return;
      }
      fed::FederationOptions opt = options_.fed_options;
      opt.priority = t.options.priority;
      auto res = fed_->Execute(request.fed_query, opt);
      if (!res.ok()) {
        out->status = res.status();
        return;
      }
      out->rows = std::move(*res);
      out->result_hash = HashRows(out->rows);
      break;
    }
  }
  out->status = Status::OK();
}

void QueryBroker::ExecuteSelectGroup(
    const std::vector<const Request*>& requests,
    const std::vector<Response*>& responses) {
  const ServeMetrics& metrics = ServeMetrics::Get();
  const size_t n = requests.size();
  common::TraceRequest req("serve.batch");
  std::vector<strabon::BatchSelectQuery> queries(n);
  for (size_t i = 0; i < n; ++i) {
    queries[i] = {requests[i]->box, requests[i]->relation};
  }
  auto res = store_->SpatialSelectBatch(queries);
  if (!res.ok()) {
    for (Response* r : responses) r->status = res.status();
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    responses[i]->ids = std::move((*res)[i]);
    responses[i]->result_hash = HashIds(responses[i]->ids);
    responses[i]->batch_size = n;
    responses[i]->status = Status::OK();
  }
  if (n > 1) {
    metrics.batch_groups->Increment();
    metrics.batch_batched_requests->Increment(n);
    metrics.batch_max_size->Max(static_cast<double>(n));
  }
}

void QueryBroker::ExecuteSelectBatched(const Tenant& t, const Request& request,
                                       Response* out) {
  std::shared_ptr<BatchGroup> group;
  {
    std::unique_lock<std::mutex> lock(batch_mu_);
    if (open_group_ != nullptr && !open_group_->closed &&
        open_group_->requests.size() < options_.max_batch) {
      // Follower: join the in-flight group and wait for its leader.
      group = open_group_;
      group->requests.push_back(&request);
      group->responses.push_back(out);
      if (group->requests.size() >= options_.max_batch) {
        group->closed = true;
        open_group_ = nullptr;
        batch_cv_.notify_all();  // wake the leader early
      }
      batch_cv_.wait(lock, [&] { return group->done; });
      return;
    }
    // Leader: open a group, give followers a window to pile in.
    group = std::make_shared<BatchGroup>();
    group->requests.push_back(&request);
    group->responses.push_back(out);
    open_group_ = group;
    if (options_.batch_window_us > 0) {
      batch_cv_.wait_for(lock,
                         std::chrono::microseconds(options_.batch_window_us),
                         [&] { return group->closed; });
    }
    if (!group->closed) {
      group->closed = true;
      if (open_group_ == group) open_group_ = nullptr;
    }
  }
  {
    // The leader's deadline bounds the shared traversal (deadlines are
    // honored at batch granularity; followers inherit the group outcome).
    common::RequestContext rctx;
    if (t.options.deadline_us > 0) {
      rctx.deadline = common::Deadline::FromNowUs(t.options.deadline_us);
    }
    common::ScopedRequestContext scope(rctx);
    ExecuteSelectGroup(group->requests, group->responses);
  }
  {
    std::lock_guard<std::mutex> lock(batch_mu_);
    group->done = true;
  }
  batch_cv_.notify_all();
}

Response QueryBroker::Execute(TenantId tenant_id, const Request& request) {
  const ServeMetrics& metrics = ServeMetrics::Get();
  metrics.requests->Increment();
  common::Stopwatch sw;
  const int64_t now = now_us_();
  Response resp;
  Tenant* t = tenant(tenant_id);
  if (t == nullptr) {
    resp.status = Status::InvalidArgument("serve: unknown tenant");
    metrics.errors->Increment();
    return resp;
  }
  t->offered.fetch_add(1, std::memory_order_relaxed);
  if (shutting_down()) {
    resp.status = Status::Unavailable("serve: broker shutting down");
    t->errors.fetch_add(1, std::memory_order_relaxed);
    metrics.errors->Increment();
    if (slo_ != nullptr) slo_->Record(t->name, false, 0.0, now);
    return resp;
  }
  {
    std::lock_guard<std::mutex> lock(t->mu);
    if (!t->bucket.TryTake(now)) {
      resp.status = Status::ResourceExhausted(
          "serve: tenant '" + t->name + "' over quota");
      resp.shed = ShedStage::kQuota;
      metrics.quota_shed->Increment();
      t->quota_shed.fetch_add(1, std::memory_order_relaxed);
      if (slo_ != nullptr) slo_->Record(t->name, false, 0.0, now);
      return resp;
    }
  }
  Status admitted = admission_.TryAdmit(t->options.priority);
  if (!admitted.ok()) {
    resp.status = admitted;  // the controller counted the shed
    resp.shed = ShedStage::kAdmission;
    t->admission_shed.fetch_add(1, std::memory_order_relaxed);
    if (slo_ != nullptr) slo_->Record(t->name, false, 0.0, now);
    return resp;
  }
  common::AdmissionTicket ticket(&admission_);
  const CacheKey key{tenant_id, request.Fingerprint()};
  if (CacheGet(key, request.type, &resp)) {
    resp.latency_us = sw.ElapsedMicros();
    metrics.request_latency_us->Observe(resp.latency_us);
    metrics.ok->Increment();
    t->cache_hits.fetch_add(1, std::memory_order_relaxed);
    t->ok.fetch_add(1, std::memory_order_relaxed);
    if (slo_ != nullptr) slo_->Record(t->name, true, resp.latency_us, now);
    return resp;
  }
  if (request.type == RequestType::kSpatialSelect &&
      options_.enable_batching && store_ != nullptr) {
    ExecuteSelectBatched(*t, request, &resp);
  } else {
    ExecuteSingle(*t, request, &resp);
  }
  resp.latency_us = sw.ElapsedMicros();
  metrics.request_latency_us->Observe(resp.latency_us);
  if (resp.status.ok()) {
    CachePut(key, request.type, resp);
    metrics.ok->Increment();
    t->ok.fetch_add(1, std::memory_order_relaxed);
    if (resp.batch_size > 1) {
      t->batched.fetch_add(1, std::memory_order_relaxed);
    }
  } else {
    metrics.errors->Increment();
    t->errors.fetch_add(1, std::memory_order_relaxed);
  }
  if (slo_ != nullptr) {
    slo_->Record(t->name, resp.status.ok(), resp.latency_us, now);
  }
  return resp;
}

std::vector<Response> QueryBroker::ExecuteWave(
    const std::vector<Offered>& offered, int64_t now_us) {
  const ServeMetrics& metrics = ServeMetrics::Get();
  const size_t n = offered.size();
  metrics.requests->Increment(n);
  std::vector<Response> responses(n);
  if (n == 0) return responses;

  if (shutting_down()) {
    for (size_t i = 0; i < n; ++i) {
      responses[i].status =
          Status::Unavailable("serve: broker shutting down");
      metrics.errors->Increment();
      Tenant* t = tenant(offered[i].tenant);
      if (t != nullptr) {
        t->offered.fetch_add(1, std::memory_order_relaxed);
        t->errors.fetch_add(1, std::memory_order_relaxed);
        if (slo_ != nullptr) slo_->Record(t->name, false, 0.0, now_us);
      }
    }
    return responses;
  }

  // 1. Weighted round-robin service order across the wave's tenants
  // (first-appearance tenant order; weight w => up to w consecutive slots
  // per cycle). Deterministic.
  std::vector<size_t> order;
  order.reserve(n);
  {
    std::vector<TenantId> seq;
    std::unordered_map<TenantId, std::deque<size_t>> queues;
    for (size_t i = 0; i < n; ++i) {
      auto [it, inserted] = queues.try_emplace(offered[i].tenant);
      if (inserted) seq.push_back(offered[i].tenant);
      it->second.push_back(i);
    }
    size_t remaining = n;
    while (remaining > 0) {
      for (TenantId tid : seq) {
        std::deque<size_t>& q = queues[tid];
        const Tenant* t =
            tid < tenants_.size() ? tenants_[tid].get() : nullptr;
        const uint32_t w = t != nullptr ? t->options.weight : 1;
        for (uint32_t k = 0; k < w && !q.empty(); ++k) {
          order.push_back(q.front());
          q.pop_front();
          --remaining;
        }
      }
    }
  }

  // 2. Quota -> admission -> cache, in service order. Cache hits within
  // the wave see the state before the wave executes (identical concurrent
  // misses are then answered by one shared traversal below).
  std::vector<common::AdmissionTicket> tickets(n);
  std::vector<char> execute(n, 0);
  std::vector<CacheKey> keys(n);
  for (size_t slot = 0; slot < order.size(); ++slot) {
    const size_t i = order[slot];
    Response& resp = responses[i];
    resp.service_slot = slot;
    Tenant* t = tenant(offered[i].tenant);
    if (t == nullptr) {
      resp.status = Status::InvalidArgument("serve: unknown tenant");
      metrics.errors->Increment();
      continue;
    }
    t->offered.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(t->mu);
      if (!t->bucket.TryTake(now_us)) {
        resp.status = Status::ResourceExhausted(
            "serve: tenant '" + t->name + "' over quota");
        resp.shed = ShedStage::kQuota;
        metrics.quota_shed->Increment();
        t->quota_shed.fetch_add(1, std::memory_order_relaxed);
        if (slo_ != nullptr) slo_->Record(t->name, false, 0.0, now_us);
        continue;
      }
    }
    Status admitted = admission_.TryAdmit(t->options.priority);
    if (!admitted.ok()) {
      resp.status = admitted;
      resp.shed = ShedStage::kAdmission;
      t->admission_shed.fetch_add(1, std::memory_order_relaxed);
      if (slo_ != nullptr) slo_->Record(t->name, false, 0.0, now_us);
      continue;
    }
    tickets[i] = common::AdmissionTicket(&admission_);
    keys[i] = CacheKey{offered[i].tenant, offered[i].request.Fingerprint()};
    if (CacheGet(keys[i], offered[i].request.type, &resp)) {
      tickets[i].Release();
      metrics.ok->Increment();
      t->cache_hits.fetch_add(1, std::memory_order_relaxed);
      t->ok.fetch_add(1, std::memory_order_relaxed);
      if (slo_ != nullptr) slo_->Record(t->name, true, 0.0, now_us);
      continue;
    }
    execute[i] = 1;
  }

  // 3. Group the wave's executable SpatialSelects into shared-traversal
  // batches (service order, groups of <= max_batch); joins and federated
  // queries execute as singleton units.
  struct Unit {
    std::vector<size_t> members;  // wave indices
    bool is_select_group = false;
  };
  std::vector<Unit> units;
  {
    Unit* open_select = nullptr;
    for (size_t slot = 0; slot < order.size(); ++slot) {
      const size_t i = order[slot];
      if (!execute[i]) continue;
      const Request& req = offered[i].request;
      if (options_.enable_batching && store_ != nullptr &&
          req.type == RequestType::kSpatialSelect) {
        if (open_select == nullptr ||
            open_select->members.size() >= options_.max_batch) {
          units.push_back(Unit{{}, true});
          open_select = &units.back();
        }
        open_select->members.push_back(i);
      } else {
        units.push_back(Unit{{i}, false});
      }
    }
  }

  // 4. Execute the units — independent, so in parallel across the broker
  // pool when configured. Each unit stamps its members with its own wall
  // time.
  auto run_unit = [&](size_t u) {
    const Unit& unit = units[u];
    common::Stopwatch sw;
    if (unit.is_select_group) {
      std::vector<const Request*> reqs;
      std::vector<Response*> resps;
      reqs.reserve(unit.members.size());
      resps.reserve(unit.members.size());
      for (size_t i : unit.members) {
        reqs.push_back(&offered[i].request);
        resps.push_back(&responses[i]);
      }
      ExecuteSelectGroup(reqs, resps);
    } else {
      const size_t i = unit.members[0];
      ExecuteSingle(*tenants_[offered[i].tenant].get(), offered[i].request,
                    &responses[i]);
    }
    const double us = sw.ElapsedMicros();
    for (size_t i : unit.members) responses[i].latency_us = us;
  };
  if (pool_ != nullptr && units.size() > 1) {
    pool_->ParallelFor(units.size(), run_unit);
  } else {
    for (size_t u = 0; u < units.size(); ++u) run_unit(u);
  }

  // 5. Account + fill the cache in service order (deterministic LRU), and
  // release the admission slots.
  for (size_t slot = 0; slot < order.size(); ++slot) {
    const size_t i = order[slot];
    if (!execute[i]) continue;
    Response& resp = responses[i];
    metrics.request_latency_us->Observe(resp.latency_us);
    Tenant* t = tenant(offered[i].tenant);
    if (resp.status.ok()) {
      CachePut(keys[i], offered[i].request.type, resp);
      metrics.ok->Increment();
      t->ok.fetch_add(1, std::memory_order_relaxed);
      if (resp.batch_size > 1) {
        t->batched.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      metrics.errors->Increment();
      t->errors.fetch_add(1, std::memory_order_relaxed);
    }
    if (slo_ != nullptr) {
      slo_->Record(t->name, resp.status.ok(), resp.latency_us, now_us);
    }
    tickets[i].Release();
  }
  return responses;
}

}  // namespace exearth::serve
