#include "foodsec/pipeline.h"

#include <algorithm>

#include "common/logging.h"
#include "ml/network.h"
#include "ml/trainer.h"
#include "raster/dataset.h"

namespace exearth::foodsec {

using common::Result;
using common::Status;

namespace {

// Per-pixel multi-temporal features, matching MakeCropTimeSeriesDataset:
// [NDVI, NIR, Red] per acquisition.
std::vector<float> PixelFeatures(
    const std::vector<raster::SentinelProduct>& scenes, int x, int y) {
  constexpr int kRed = 3;
  constexpr int kNir = 7;
  std::vector<float> f;
  f.reserve(scenes.size() * 3);
  for (const raster::SentinelProduct& p : scenes) {
    if (!p.cloud_mask.empty() && p.cloud_mask.at(x, y)) {
      f.push_back(0.0f);
      f.push_back(0.0f);
      f.push_back(0.0f);
      continue;
    }
    float red = p.raster.Get(kRed, x, y);
    float nir = p.raster.Get(kNir, x, y);
    float denom = nir + red;
    f.push_back(denom == 0.0f ? 0.0f : (nir - red) / denom);
    f.push_back(nir);
    f.push_back(red);
  }
  return f;
}

}  // namespace

raster::ClassMap ClassifyCropPixels(
    const std::vector<raster::SentinelProduct>& scenes, ml::Network* network,
    const std::vector<std::pair<float, float>>& standardization) {
  EEA_CHECK(!scenes.empty());
  const int w = scenes[0].raster.width();
  const int h = scenes[0].raster.height();
  raster::ClassMap out(w, h);
  const int feature_dim = static_cast<int>(scenes.size()) * 3;
  EEA_CHECK(standardization.size() == static_cast<size_t>(feature_dim));
  // Classify in row batches to keep tensors reasonably sized.
  ml::Tensor batch({w, feature_dim});
  for (int y = 0; y < h; ++y) {
    float* p = batch.data();
    for (int x = 0; x < w; ++x) {
      std::vector<float> f = PixelFeatures(scenes, x, y);
      for (int d = 0; d < feature_dim; ++d) {
        auto [mean, stddev] = standardization[static_cast<size_t>(d)];
        p[static_cast<int64_t>(x) * feature_dim + d] =
            (f[static_cast<size_t>(d)] - mean) / stddev;
      }
    }
    ml::Tensor logits = network->Forward(batch, /*training=*/false);
    const int c = logits.dim(1);
    for (int x = 0; x < w; ++x) {
      const float* row = logits.data() + static_cast<int64_t>(x) * c;
      int best = static_cast<int>(std::max_element(row, row + c) - row);
      out.at(x, y) = static_cast<uint8_t>(best);
    }
  }
  return out;
}

Result<FoodSecurityReport> RunFoodSecurityPipeline(
    const FoodSecurityOptions& options, strabon::GeoStore* linked_data) {
  if (options.acquisition_days.empty()) {
    return Status::InvalidArgument("need at least one acquisition day");
  }
  common::Rng rng(options.seed);
  FoodSecurityReport report;

  // 1. Ground truth: a parcelized crop map.
  raster::ClassMapOptions map_opt;
  map_opt.width = options.width;
  map_opt.height = options.height;
  map_opt.num_classes = raster::kNumCropTypes;
  map_opt.num_patches = options.num_parcels;
  report.true_crops = raster::GenerateClassMap(map_opt, &rng);

  // 2. A year of Sentinel-2 acquisitions.
  raster::SentinelSimulator::Options sim_opt;
  sim_opt.pixel_size = options.pixel_size;
  sim_opt.cloud_probability = options.cloud_probability;
  raster::SentinelSimulator sim(sim_opt, options.seed + 1);
  std::vector<raster::SentinelProduct> scenes;
  scenes.reserve(options.acquisition_days.size());
  for (int day : options.acquisition_days) {
    scenes.push_back(sim.SimulateCropS2(report.true_crops, day));
  }

  // 3. Train the multi-temporal crop classifier (C1).
  EEA_ASSIGN_OR_RETURN(
      raster::Dataset train,
      raster::MakeCropTimeSeriesDataset(scenes, report.true_crops,
                                        options.training_samples,
                                        options.seed + 2));
  auto standardization = train.Standardize();
  ml::Network net = ml::BuildMlp(train.feature_dim, {48, 32},
                                 raster::kNumCropTypes, options.seed + 3);
  ml::TrainOptions topt;
  topt.epochs = options.epochs;
  topt.batch_size = 32;
  topt.sgd.learning_rate = options.learning_rate;
  topt.shuffle_seed = options.seed + 4;
  ml::Trainer trainer(&net, topt);
  trainer.Fit(&train);

  // 4. Wall-to-wall classification -> predicted crop map.
  report.predicted_crops = ClassifyCropPixels(scenes, &net, standardization);
  int64_t correct = 0;
  for (int y = 0; y < options.height; ++y) {
    for (int x = 0; x < options.width; ++x) {
      int truth = report.true_crops.at(x, y);
      int pred = report.predicted_crops.at(x, y);
      report.crop_confusion.Add(truth, pred);
      if (truth == pred) ++correct;
    }
  }
  report.crop_accuracy = static_cast<double>(correct) /
                         (static_cast<double>(options.width) * options.height);

  // 5. Field boundaries from the predicted map.
  const raster::GeoTransform& transform = scenes[0].raster.transform();
  report.fields = ExtractFields(report.predicted_crops, transform,
                                FieldExtractionOptions{});

  // 6. Water availability and irrigation products.
  std::vector<WeatherDay> weather = SynthesizeWeather(options.seed + 5);
  WaterBalanceOptions wopt;
  wopt.seed = options.seed + 6;
  EEA_ASSIGN_OR_RETURN(report.water,
                       ComputeWaterProducts(report.predicted_crops, transform,
                                            weather, wopt));

  // 7. Publish fields as linked data.
  if (linked_data != nullptr) {
    report.triples_published =
        PublishFields(report.fields, "http://extremeearth.eu/foodsec",
                      linked_data);
    auto built = linked_data->Build();
    if (!built.ok()) return built.status();
  }
  return report;
}

}  // namespace exearth::foodsec
