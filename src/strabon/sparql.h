// A textual stSPARQL/GeoSPARQL query subset for the Strabon layer: the
// query language surface users of the original system write. Supported
// grammar (whitespace-insensitive):
//
//   query   := prefix* 'SELECT' ('*' | ?var+) 'WHERE' '{' clause* '}'
//              ('LIMIT' INT)?
//   prefix  := 'PREFIX' pname ':' '<' iri '>'
//   clause  := pattern '.' | filter ('.'?)
//   pattern := term term term
//   term    := ?var | '<'iri'>' | pname ':' local | literal
//   literal := '"' chars '"' ('^^' ('<'iri'>' | pname':'local))?
//   filter  := 'FILTER' '(' geof ')' | 'FILTER' '(' ?var cmp NUMBER ')'
//   geof    := ('geof:sfIntersects'|'strdf:intersects')
//              '(' ?var ',' literal ')'     -- literal is a WKT geometry
//   cmp     := '<' | '<=' | '>' | '>=' | '=' | '!='
//
// The spatial FILTER compiles to an indexed GeoStore constraint on the
// *feature variable*; thematic FILTERs compile to rdf::Query filters.

#ifndef EXEARTH_STRABON_SPARQL_H_
#define EXEARTH_STRABON_SPARQL_H_

#include <optional>
#include <string>
#include <string_view>

#include "common/result.h"
#include "geo/geometry.h"
#include "rdf/query.h"
#include "strabon/geostore.h"

namespace exearth::strabon {

/// A parsed query: the BGP/filters plus at most one spatial constraint.
struct ParsedQuery {
  rdf::Query query;
  /// Spatial constraint: the named variable's feature geometry must
  /// intersect `window` (the envelope of the FILTER's WKT geometry).
  struct SpatialConstraint {
    std::string variable;
    geo::Geometry geometry;
  };
  std::optional<SpatialConstraint> spatial;
};

/// Parses the SPARQL text. InvalidArgument with position info on errors.
common::Result<ParsedQuery> ParseSparql(std::string_view text);

/// Parses and executes against a GeoStore (spatial constraint pushed into
/// the R-tree when present).
common::Result<std::vector<rdf::Binding>> ExecuteSparql(
    const GeoStore& store, std::string_view text);

}  // namespace exearth::strabon

#endif  // EXEARTH_STRABON_SPARQL_H_
