file(REMOVE_RECURSE
  "libeea_sim.a"
)
