// Synthetic geospatial-RDF workload generation for E1/E2: point and
// multipolygon feature sets with thematic triples, plus selection-box
// sampling at a target selectivity.

#ifndef EXEARTH_STRABON_WORKLOAD_H_
#define EXEARTH_STRABON_WORKLOAD_H_

#include <cstdint>

#include "common/rng.h"
#include "strabon/geostore.h"

namespace exearth::strabon {

struct GeoWorkloadOptions {
  enum class GeometryKind { kPoint, kMultiPolygon };

  int64_t num_features = 10000;
  GeometryKind kind = GeometryKind::kPoint;
  /// Vertices per polygon ring (multipolygons only).
  int vertices_per_ring = 8;
  /// Parts per multipolygon.
  int polygons_per_multi = 2;
  /// Mean feature diameter in world units (multipolygons only).
  double feature_size = 50.0;
  /// Features are uniform in [0, world_size)^2.
  double world_size = 100000.0;
  /// Also emit rdf:type and rdfs:label triples per feature.
  bool with_thematic = true;
  uint64_t seed = 7;
};

/// Builds and Build()s a GeoStore with the synthetic feature set.
GeoStore MakeGeoWorkload(const GeoWorkloadOptions& options);

/// A random query rectangle covering `selectivity` of the world's area.
geo::Box RandomSelectionBox(double world_size, double selectivity,
                            common::Rng* rng);

/// A random (possibly concave) polygon with `vertices` vertices around a
/// center, radius ~ size/2 (star-shaped, so it is simple/non-intersecting).
geo::Polygon RandomPolygon(double cx, double cy, double size, int vertices,
                           common::Rng* rng);

}  // namespace exearth::strabon

#endif  // EXEARTH_STRABON_WORKLOAD_H_
