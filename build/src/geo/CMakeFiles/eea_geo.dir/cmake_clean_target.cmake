file(REMOVE_RECURSE
  "libeea_geo.a"
)
