file(REMOVE_RECURSE
  "CMakeFiles/strabon_test.dir/strabon_test.cc.o"
  "CMakeFiles/strabon_test.dir/strabon_test.cc.o.d"
  "strabon_test"
  "strabon_test.pdb"
  "strabon_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strabon_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
