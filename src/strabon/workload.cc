#include "strabon/workload.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace exearth::strabon {

geo::Polygon RandomPolygon(double cx, double cy, double size, int vertices,
                           common::Rng* rng) {
  EEA_CHECK(vertices >= 3);
  geo::Polygon poly;
  poly.outer.points.reserve(static_cast<size_t>(vertices));
  // Star-shaped: angles sorted, radii jittered — always a simple polygon.
  for (int i = 0; i < vertices; ++i) {
    double angle = 2.0 * M_PI * i / vertices;
    double radius = size * 0.5 * rng->UniformDouble(0.5, 1.0);
    poly.outer.points.push_back(geo::Point{cx + radius * std::cos(angle),
                                           cy + radius * std::sin(angle)});
  }
  return poly;
}

GeoStore MakeGeoWorkload(const GeoWorkloadOptions& options) {
  common::Rng rng(options.seed);
  GeoStore store;
  const rdf::Term type_pred = rdf::Term::Iri(rdf::vocab::kRdfType);
  const rdf::Term label_pred = rdf::Term::Iri(rdf::vocab::kLabel);
  const rdf::Term feature_class =
      rdf::Term::Iri("http://extremeearth.eu/ontology#Feature");
  for (int64_t i = 0; i < options.num_features; ++i) {
    const std::string iri = common::StrFormat(
        "http://extremeearth.eu/feature/%lld", static_cast<long long>(i));
    double cx = rng.UniformDouble(0, options.world_size);
    double cy = rng.UniformDouble(0, options.world_size);
    if (options.kind == GeoWorkloadOptions::GeometryKind::kPoint) {
      store.AddFeature(iri, geo::Geometry(geo::Point{cx, cy}));
    } else {
      geo::MultiPolygon mp;
      for (int part = 0; part < options.polygons_per_multi; ++part) {
        double px = cx + rng.Gaussian(0, options.feature_size);
        double py = cy + rng.Gaussian(0, options.feature_size);
        mp.polygons.push_back(RandomPolygon(px, py, options.feature_size,
                                            options.vertices_per_ring, &rng));
      }
      store.AddFeature(iri, geo::Geometry(std::move(mp)));
    }
    if (options.with_thematic) {
      store.triples().Add(rdf::Term::Iri(iri), type_pred, feature_class);
      store.triples().Add(
          rdf::Term::Iri(iri), label_pred,
          rdf::Term::Literal(common::StrFormat(
              "feature %lld", static_cast<long long>(i))));
    }
  }
  auto built = store.Build();
  EEA_CHECK(built.ok()) << built.status();
  return store;
}

geo::Box RandomSelectionBox(double world_size, double selectivity,
                            common::Rng* rng) {
  EEA_CHECK(selectivity > 0 && selectivity <= 1.0);
  const double side = world_size * std::sqrt(selectivity);
  const double max_origin = std::max(0.0, world_size - side);
  double x = rng->UniformDouble(0, max_origin == 0 ? 1e-9 : max_origin);
  double y = rng->UniformDouble(0, max_origin == 0 ? 1e-9 : max_origin);
  return geo::Box::Of(x, y, x + side, y + side);
}

}  // namespace exearth::strabon
