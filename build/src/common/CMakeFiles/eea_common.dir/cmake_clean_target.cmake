file(REMOVE_RECURSE
  "libeea_common.a"
)
