// EXPLAIN ANALYZE-style per-query profiles and the bounded slow-query
// log.
//
// Query entry points (strabon::GeoStore, fed::FederationEngine) fill a
// QueryProfile — one OperatorProfile per executed operator with wall
// time and in/out cardinalities — and hand it to the caller and/or the
// process-wide SlowQueryLog. The log keeps the N worst requests at or
// above a latency threshold, so "which requests were slow, and where did
// they spend it" survives without unbounded memory.
//
// Profiles are only materialized when a caller asked for one or the
// slow-query log is enabled; otherwise the query paths skip all string
// and vector work (one relaxed load per query).

#ifndef EXEARTH_COMMON_QUERY_PROFILE_H_
#define EXEARTH_COMMON_QUERY_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace exearth::common {

/// One operator of an executed query plan.
struct OperatorProfile {
  std::string name;
  double wall_us = 0.0;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  /// Candidates resolved by envelope containment alone (spatial paths).
  uint64_t envelope_hits = 0;
  /// Parallel chunks the operator split into, or remote subqueries it
  /// issued (federation).
  uint64_t chunks = 1;
  uint64_t threads = 1;
};

/// Execution profile of one request, returned alongside its results.
struct QueryProfile {
  std::string query;      // entry-point name, e.g. "strabon.SpatialSelect"
  uint64_t trace_id = 0;  // links to the Chrome trace / JSON log lines
  double total_us = 0.0;
  /// How the request ended when not OK: "DeadlineExceeded", "Cancelled",
  /// "ResourceExhausted" (shed), ... Empty for successful requests, so
  /// shed and aborted work is visible in profiles and the slow-query log.
  std::string status;
  std::vector<OperatorProfile> operators;

  std::string ToJson() const;
  /// Human-readable plan table (EXPLAIN ANALYZE style).
  std::string ToText() const;
};

/// Marks "a profiled query is executing on this thread". Entry points
/// create one; is_root() tells nested entry points (e.g. the
/// SpatialSelect inside QueryWithSpatialFilter) to leave slow-query
/// logging to the outermost request.
class ProfileScope {
 public:
  ProfileScope();
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;
  ~ProfileScope();

  bool is_root() const { return root_; }

 private:
  bool root_;
};

/// Bounded ring of the worst requests: keeps the `capacity` profiles with
/// the highest total_us among those at or above `threshold_us`. Disabled
/// (and free on the hot path) until Configure() is called. Thread-safe.
class SlowQueryLog {
 public:
  /// The process-wide log (never destroyed).
  static SlowQueryLog& Default();

  SlowQueryLog() = default;
  SlowQueryLog(const SlowQueryLog&) = delete;
  SlowQueryLog& operator=(const SlowQueryLog&) = delete;

  /// Enables the log: keep the `capacity` worst profiles with
  /// total_us >= threshold_us. Existing entries are kept (re-trimmed to
  /// the new capacity).
  void Configure(size_t capacity, double threshold_us);
  void Disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  double threshold_us() const;
  size_t capacity() const;

  /// Admits `profile` if it qualifies; drops it otherwise.
  void Record(QueryProfile profile);

  /// Current entries, worst (highest total_us) first.
  std::vector<QueryProfile> Snapshot() const;

  /// JSON array of the entries, worst first.
  std::string ToJson() const;

  /// Drops all entries; configuration survives.
  void Clear();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  size_t capacity_ = 0;
  double threshold_us_ = 0.0;
  std::vector<QueryProfile> entries_;  // sorted by total_us descending
};

}  // namespace exearth::common

#endif  // EXEARTH_COMMON_QUERY_PROFILE_H_
