// Multi-band georeferenced rasters: the in-memory representation of a
// (synthetic) Sentinel product, of classification outputs and of the
// water-availability / ice-concentration map products.

#ifndef EXEARTH_RASTER_RASTER_H_
#define EXEARTH_RASTER_RASTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geo/geometry.h"

namespace exearth::raster {

/// Affine georeferencing for north-up rasters with square pixels: world
/// coordinates of the top-left corner plus the pixel size in world units.
struct GeoTransform {
  double origin_x = 0.0;  // world x of the left edge of pixel (0,0)
  double origin_y = 0.0;  // world y of the TOP edge of pixel (0,0)
  double pixel_size = 1.0;

  /// World coordinates of the center of pixel (x, y). y grows downward in
  /// pixel space, upward in world space.
  geo::Point PixelCenter(int x, int y) const {
    return geo::Point{origin_x + (x + 0.5) * pixel_size,
                      origin_y - (y + 0.5) * pixel_size};
  }

  /// Pixel containing world point `p` (may be out of raster bounds).
  void WorldToPixel(const geo::Point& p, int* x, int* y) const {
    *x = static_cast<int>((p.x - origin_x) / pixel_size);
    *y = static_cast<int>((origin_y - p.y) / pixel_size);
  }
};

/// A dense float32 raster with one or more bands (band-sequential layout).
class Raster {
 public:
  Raster() = default;
  Raster(int width, int height, int bands, GeoTransform transform = {});

  int width() const { return width_; }
  int height() const { return height_; }
  int bands() const { return bands_; }
  const GeoTransform& transform() const { return transform_; }

  /// Size of one band in pixels.
  size_t BandSize() const {
    return static_cast<size_t>(width_) * static_cast<size_t>(height_);
  }
  /// Total number of float values (bands * width * height).
  size_t NumValues() const { return data_.size(); }
  /// Approximate in-memory footprint in bytes.
  size_t ByteSize() const { return data_.size() * sizeof(float); }

  bool InBounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  float Get(int band, int x, int y) const {
    return data_[Index(band, x, y)];
  }
  void Set(int band, int x, int y, float v) { data_[Index(band, x, y)] = v; }

  /// Pointer to the start of a band's pixel block.
  float* BandData(int band) { return data_.data() + band * BandSize(); }
  const float* BandData(int band) const {
    return data_.data() + band * BandSize();
  }

  /// World-space extent covered by the raster.
  geo::Box Extent() const;

  /// Per-band mean and standard deviation.
  struct BandStats {
    float mean = 0;
    float stddev = 0;
    float min = 0;
    float max = 0;
  };
  BandStats ComputeStats(int band) const;

  /// All band values at one pixel, band order.
  std::vector<float> PixelVector(int x, int y) const;

  /// Copies a window [x0, x0+w) x [y0, y0+h) of all bands into a new raster.
  /// Fails if the window leaves the raster.
  common::Result<Raster> ExtractPatch(int x0, int y0, int w, int h) const;

  /// Nearest-neighbour resampling to a new size (all bands).
  Raster ResampleNearest(int new_width, int new_height) const;

  /// Block-average downsampling by an integer factor; the natural way to
  /// produce 1 km ice products from 40 m SAR pixels. Fails unless `factor`
  /// divides both dimensions.
  common::Result<Raster> DownsampleMean(int factor) const;

  const std::vector<float>& data() const { return data_; }
  std::vector<float>& data() { return data_; }

 private:
  size_t Index(int band, int x, int y) const {
    return band * BandSize() + static_cast<size_t>(y) * width_ + x;
  }

  int width_ = 0;
  int height_ = 0;
  int bands_ = 0;
  GeoTransform transform_;
  std::vector<float> data_;
};

/// Normalized difference of two bands: (a - b) / (a + b), 0 where a+b == 0.
/// With a = NIR, b = Red this is NDVI; with a = Green, b = NIR, NDWI.
common::Result<Raster> NormalizedDifference(const Raster& r, int band_a,
                                            int band_b);

}  // namespace exearth::raster

#endif  // EXEARTH_RASTER_RASTER_H_
