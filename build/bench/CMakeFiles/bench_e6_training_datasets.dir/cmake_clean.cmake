file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_training_datasets.dir/bench_e6_training_datasets.cc.o"
  "CMakeFiles/bench_e6_training_datasets.dir/bench_e6_training_datasets.cc.o.d"
  "bench_e6_training_datasets"
  "bench_e6_training_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_training_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
