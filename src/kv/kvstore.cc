#include "kv/kvstore.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "common/string_util.h"
#include "storage/buffer_pool.h"
#include "storage/page_chain.h"
#include "storage/wal.h"

namespace exearth::kv {

using common::Result;
using common::Status;

namespace {

// Superblock meta slot contents naming the live checkpoint. Pinned by the
// golden-format test.
constexpr char kMetaPrefix[] = "kvckpt1";

std::string EncodeCheckpointMeta(storage::PageId head, uint64_t lsn) {
  return common::StrFormat("%s %u %llu", kMetaPrefix, head,
                           static_cast<unsigned long long>(lsn));
}

Status DecodeCheckpointMeta(const std::string& meta, storage::PageId* head,
                            uint64_t* lsn) {
  unsigned int h = 0;
  unsigned long long l = 0;
  char tag[16] = {0};
  if (std::sscanf(meta.c_str(), "%15s %u %llu", tag, &h, &l) != 3 ||
      std::string(tag) != kMetaPrefix) {
    return Status::IOError("unrecognized checkpoint metadata: " + meta);
  }
  *head = static_cast<storage::PageId>(h);
  *lsn = l;
  return Status::OK();
}

}  // namespace

// --- Transaction -----------------------------------------------------------

Transaction::~Transaction() {
  if (!finished_) Abort();
}

int Transaction::PartitionsTouched() const {
  std::unordered_set<int> parts;
  for (const std::string& key : locked_) {
    parts.insert(store_->PartitionOf(key));
  }
  return static_cast<int>(parts.size());
}

Status Transaction::LockRow(const std::string& key) {
  if (locked_.count(key)) return Status::OK();
  KvStore::Partition& part = store_->PartitionFor(key);
  std::lock_guard<std::mutex> guard(part.mu);
  auto [it, inserted] = part.locks.try_emplace(key, id_);
  if (!inserted && it->second != id_) {
    return Status::Aborted(
        common::StrFormat("row lock conflict on '%s'", key.c_str()));
  }
  locked_.insert(key);
  return Status::OK();
}

Result<std::string> Transaction::Get(const std::string& key) {
  EEA_CHECK(!finished_) << "Get on finished transaction";
  store_->gets_.fetch_add(1, std::memory_order_relaxed);
  Status lock = LockRow(key);
  if (!lock.ok()) {
    store_->aborts_.fetch_add(1, std::memory_order_relaxed);
    return lock;
  }
  auto w = writes_.find(key);
  if (w != writes_.end()) {
    if (!w->second.has_value()) return Status::NotFound(key);
    return *w->second;
  }
  KvStore::Partition& part = store_->PartitionFor(key);
  std::lock_guard<std::mutex> guard(part.mu);
  auto it = part.rows.find(key);
  if (it == part.rows.end()) return Status::NotFound(key);
  return it->second;
}

Result<std::string> Transaction::GetCommitted(const std::string& key) {
  EEA_CHECK(!finished_) << "GetCommitted on finished transaction";
  store_->gets_.fetch_add(1, std::memory_order_relaxed);
  auto w = writes_.find(key);
  if (w != writes_.end()) {
    if (!w->second.has_value()) return Status::NotFound(key);
    return *w->second;
  }
  KvStore::Partition& part = store_->PartitionFor(key);
  std::lock_guard<std::mutex> guard(part.mu);
  auto it = part.rows.find(key);
  if (it == part.rows.end()) return Status::NotFound(key);
  return it->second;
}

Result<bool> Transaction::Exists(const std::string& key) {
  Result<std::string> r = Get(key);
  if (r.ok()) return true;
  if (r.status().IsNotFound()) return false;
  return r.status();
}

Status Transaction::Put(const std::string& key, std::string value) {
  EEA_CHECK(!finished_) << "Put on finished transaction";
  store_->puts_.fetch_add(1, std::memory_order_relaxed);
  Status lock = LockRow(key);
  if (!lock.ok()) {
    store_->aborts_.fetch_add(1, std::memory_order_relaxed);
    return lock;
  }
  writes_[key] = std::move(value);
  return Status::OK();
}

Status Transaction::Delete(const std::string& key) {
  EEA_CHECK(!finished_) << "Delete on finished transaction";
  Status lock = LockRow(key);
  if (!lock.ok()) {
    store_->aborts_.fetch_add(1, std::memory_order_relaxed);
    return lock;
  }
  writes_[key] = std::nullopt;
  return Status::OK();
}

Status Transaction::Commit() {
  EEA_CHECK(!finished_) << "Commit on finished transaction";
  const int partitions = PartitionsTouched();
  // When durable, hold the commit lock (shared) across both the WAL
  // write and the in-memory apply below, so a checkpoint (exclusive)
  // never cuts between a transaction's fsynced marker and its rows.
  std::shared_lock<std::shared_mutex> commit_guard;
  if (store_->durable()) {
    commit_guard = std::shared_lock<std::shared_mutex>(store_->commit_mu_);
    if (!writes_.empty()) {
      // WAL-before-apply: the commit is acknowledged only once its
      // marker is fsynced. On failure the transaction aborts — locks
      // released, nothing applied, so the interrupted commit is
      // invisible both here and after recovery.
      Status s = store_->CommitDurable(id_, writes_);
      if (!s.ok()) {
        commit_guard.unlock();
        store_->aborts_.fetch_add(1, std::memory_order_relaxed);
        Abort();
        return s;
      }
    }
  }
  // Apply writes partition by partition. Because every written row is
  // exclusively locked by this transaction, applying without a global lock
  // is atomic with respect to other transactions (they cannot observe or
  // touch these rows until the locks are released below).
  for (const auto& [key, value] : writes_) {
    KvStore::Partition& part = store_->PartitionFor(key);
    std::lock_guard<std::mutex> guard(part.mu);
    if (value.has_value()) {
      part.rows[key] = *value;
    } else {
      part.rows.erase(key);
    }
  }
  // Release locks.
  for (const std::string& key : locked_) {
    KvStore::Partition& part = store_->PartitionFor(key);
    std::lock_guard<std::mutex> guard(part.mu);
    auto it = part.locks.find(key);
    if (it != part.locks.end() && it->second == id_) part.locks.erase(it);
  }
  finished_ = true;
  store_->commits_.fetch_add(1, std::memory_order_relaxed);
  if (partitions <= 1) {
    store_->single_partition_commits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    store_->multi_partition_commits_.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

void Transaction::Abort() {
  if (finished_) return;
  for (const std::string& key : locked_) {
    KvStore::Partition& part = store_->PartitionFor(key);
    std::lock_guard<std::mutex> guard(part.mu);
    auto it = part.locks.find(key);
    if (it != part.locks.end() && it->second == id_) part.locks.erase(it);
  }
  writes_.clear();
  locked_.clear();
  finished_ = true;
}

// --- KvStore -----------------------------------------------------------------

KvStore::KvStore(int num_partitions) {
  EEA_CHECK(num_partitions >= 1);
  partitions_.reserve(static_cast<size_t>(num_partitions));
  for (int i = 0; i < num_partitions; ++i) {
    partitions_.push_back(std::make_unique<Partition>());
  }
}

int KvStore::PartitionOf(const std::string& key) const {
  return static_cast<int>(common::Fnv1a(key) % partitions_.size());
}

std::unique_ptr<Transaction> KvStore::Begin() {
  uint64_t id = next_txn_id_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Transaction>(new Transaction(this, id));
}

Status KvStore::Put(const std::string& key, std::string value) {
  auto txn = Begin();
  EEA_RETURN_NOT_OK(txn->Put(key, std::move(value)));
  return txn->Commit();
}

Result<std::string> KvStore::Get(const std::string& key) {
  auto txn = Begin();
  Result<std::string> r = txn->Get(key);
  if (r.ok()) {
    Status s = txn->Commit();
    if (!s.ok()) return s;
  }
  return r;
}

Status KvStore::Delete(const std::string& key) {
  auto txn = Begin();
  EEA_RETURN_NOT_OK(txn->Delete(key));
  return txn->Commit();
}

std::vector<std::pair<std::string, std::string>> KvStore::ScanPrefix(
    const std::string& prefix, size_t limit) const {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& part : partitions_) {
    std::lock_guard<std::mutex> guard(part->mu);
    auto it = part->rows.lower_bound(prefix);
    for (; it != part->rows.end(); ++it) {
      if (!common::StartsWith(it->first, prefix)) break;
      out.push_back(*it);
    }
  }
  std::sort(out.begin(), out.end());
  if (limit > 0 && out.size() > limit) out.resize(limit);
  return out;
}

size_t KvStore::Size() const {
  size_t n = 0;
  for (const auto& part : partitions_) {
    std::lock_guard<std::mutex> guard(part->mu);
    n += part->rows.size();
  }
  return n;
}

// --- Durability --------------------------------------------------------------

Status KvStore::CommitDurable(
    uint64_t txn_id,
    const std::unordered_map<std::string, std::optional<std::string>>&
        writes) {
  // Sort by key so the WAL byte stream is a pure function of the
  // transaction's contents — the chaos tests byte-compare recovery state
  // across seeded runs.
  std::vector<const std::pair<const std::string, std::optional<std::string>>*>
      sorted;
  sorted.reserve(writes.size());
  for (const auto& kv : writes) sorted.push_back(&kv);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto* a, const auto* b) { return a->first < b->first; });
  for (const auto* kv : sorted) {
    const auto type = kv->second.has_value() ? storage::WalRecordType::kPut
                                             : storage::WalRecordType::kDelete;
    EEA_RETURN_NOT_OK(
        wal_->Append(type, txn_id, kv->first,
                     kv->second.has_value() ? *kv->second : std::string())
            .status());
  }
  EEA_RETURN_NOT_OK(
      wal_->Append(storage::WalRecordType::kCommit, txn_id, "", "").status());
  EEA_RETURN_NOT_OK(wal_->Sync());
  wal_commits_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status KvStore::AttachDurability(storage::BufferPool* pool,
                                 storage::Wal* wal) {
  EEA_CHECK(pool != nullptr && wal != nullptr);
  EEA_CHECK(wal_ == nullptr) << "durability already attached";
  std::unique_lock<std::shared_mutex> guard(commit_mu_);
  pool_ = pool;

  // 1. Load the last checkpoint image (if any) named by the meta slot.
  uint64_t ckpt_lsn = 0;
  EEA_ASSIGN_OR_RETURN(std::string meta, pool->storage()->ReadMeta());
  if (!meta.empty()) {
    storage::PageId head = storage::kInvalidPageId;
    EEA_RETURN_NOT_OK(DecodeCheckpointMeta(meta, &head, &ckpt_lsn));
    storage::PageChainReader reader(pool, head);
    EEA_ASSIGN_OR_RETURN(uint64_t row_count, reader.ReadU64());
    for (uint64_t i = 0; i < row_count; ++i) {
      EEA_ASSIGN_OR_RETURN(std::string key, reader.ReadString());
      EEA_ASSIGN_OR_RETURN(std::string value, reader.ReadString());
      Partition& part = PartitionFor(key);
      std::lock_guard<std::mutex> plock(part.mu);
      part.rows[key] = std::move(value);
    }
    recovered_rows_.store(row_count, std::memory_order_relaxed);
    last_checkpoint_lsn_.store(ckpt_lsn, std::memory_order_relaxed);
  }

  // 2. Replay the WAL: only transactions whose commit marker survived
  // become visible. The meta checkpoint LSN is the authoritative floor —
  // a crash after the meta flip but before the WAL truncation leaves old
  // records in the log, and replaying them must be skipped (they are
  // already inside the checkpoint image). Replay is idempotent anyway
  // (pure redo of full-row images), so the floor is an optimization and
  // a determinism guarantee, not a correctness requirement.
  std::unordered_map<uint64_t,
                     std::vector<std::pair<std::string,
                                           std::optional<std::string>>>>
      pending;
  uint64_t replayed_txns = 0;
  EEA_RETURN_NOT_OK(wal->Replay([&](const storage::WalRecord& rec) {
    if (rec.lsn <= ckpt_lsn) return Status::OK();
    switch (rec.type) {
      case storage::WalRecordType::kPut:
        pending[rec.txn_id].emplace_back(rec.key, rec.value);
        break;
      case storage::WalRecordType::kDelete:
        pending[rec.txn_id].emplace_back(rec.key, std::nullopt);
        break;
      case storage::WalRecordType::kCommit: {
        auto it = pending.find(rec.txn_id);
        if (it != pending.end()) {
          for (auto& [key, value] : it->second) {
            Partition& part = PartitionFor(key);
            std::lock_guard<std::mutex> plock(part.mu);
            if (value.has_value()) {
              part.rows[key] = std::move(*value);
            } else {
              part.rows.erase(key);
            }
          }
          pending.erase(it);
          ++replayed_txns;
        }
        break;
      }
      case storage::WalRecordType::kCheckpoint:
        break;  // filtered out by Wal::Replay already
    }
    return Status::OK();
  }));
  // Records in `pending` belong to transactions without a commit marker
  // (the crash hit mid-commit): dropped, exactly as if never written.
  recovered_txns_.store(replayed_txns, std::memory_order_relaxed);
  wal_ = wal;  // last: commits turn durable only once recovery finished
  return Status::OK();
}

Status KvStore::Checkpoint() {
  EEA_CHECK(wal_ != nullptr) << "Checkpoint without AttachDurability";
  // Exclusive: no commit is between its WAL marker and its in-memory
  // apply while we cut, so the image + LSN floor form a consistent pair.
  std::unique_lock<std::shared_mutex> guard(commit_mu_);
  const uint64_t ckpt_lsn = wal_->next_lsn() - 1;

  // Remember the previous image so its pages can be freed after the flip.
  storage::PageId old_head = storage::kInvalidPageId;
  uint64_t old_lsn = 0;
  EEA_ASSIGN_OR_RETURN(std::string old_meta, pool_->storage()->ReadMeta());
  if (!old_meta.empty()) {
    EEA_RETURN_NOT_OK(DecodeCheckpointMeta(old_meta, &old_head, &old_lsn));
  }

  // Serialize every row, globally key-sorted for a deterministic image.
  std::vector<std::pair<std::string, std::string>> rows;
  for (const auto& part : partitions_) {
    std::lock_guard<std::mutex> plock(part->mu);
    for (const auto& kv : part->rows) rows.push_back(kv);
  }
  std::sort(rows.begin(), rows.end());
  storage::PageChainWriter writer(pool_, ckpt_lsn);
  EEA_RETURN_NOT_OK(writer.WriteU64(rows.size()));
  for (const auto& [key, value] : rows) {
    EEA_RETURN_NOT_OK(writer.WriteString(key));
    EEA_RETURN_NOT_OK(writer.WriteString(value));
  }
  EEA_ASSIGN_OR_RETURN(storage::PageId head, writer.Finish());
  if (head == storage::kInvalidPageId) {
    // Empty store: write a chain holding just the zero row count so the
    // meta slot always names a readable image.
    storage::PageChainWriter empty_writer(pool_, ckpt_lsn);
    EEA_RETURN_NOT_OK(empty_writer.WriteU64(0));
    EEA_ASSIGN_OR_RETURN(head, empty_writer.Finish());
  }

  // Durability order: pages -> fsync -> meta flip (the atomic commit
  // point) -> free old image -> truncate WAL. A crash anywhere in this
  // sequence recovers: before the flip the old image + full WAL win;
  // after it the new image wins and stale WAL records sit at or below
  // the LSN floor.
  EEA_RETURN_NOT_OK(pool_->FlushAll());
  EEA_RETURN_NOT_OK(pool_->storage()->Sync());
  EEA_RETURN_NOT_OK(
      pool_->storage()->WriteMeta(EncodeCheckpointMeta(head, ckpt_lsn)));
  if (old_head != storage::kInvalidPageId) {
    EEA_RETURN_NOT_OK(storage::FreeChain(pool_, old_head));
  }
  EEA_RETURN_NOT_OK(wal_->Checkpoint(ckpt_lsn));
  checkpoints_.fetch_add(1, std::memory_order_relaxed);
  last_checkpoint_lsn_.store(ckpt_lsn, std::memory_order_relaxed);
  return Status::OK();
}

DurabilityStats KvStore::durability_stats() const {
  DurabilityStats s;
  s.wal_commits = wal_commits_.load(std::memory_order_relaxed);
  s.checkpoints = checkpoints_.load(std::memory_order_relaxed);
  s.last_checkpoint_lsn =
      last_checkpoint_lsn_.load(std::memory_order_relaxed);
  s.recovered_txns = recovered_txns_.load(std::memory_order_relaxed);
  s.recovered_rows = recovered_rows_.load(std::memory_order_relaxed);
  return s;
}

StoreStats KvStore::stats() const {
  StoreStats s;
  s.commits = commits_.load(std::memory_order_relaxed);
  s.aborts = aborts_.load(std::memory_order_relaxed);
  s.single_partition_commits =
      single_partition_commits_.load(std::memory_order_relaxed);
  s.multi_partition_commits =
      multi_partition_commits_.load(std::memory_order_relaxed);
  s.gets = gets_.load(std::memory_order_relaxed);
  s.puts = puts_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace exearth::kv
