# Empty dependencies file for eea_etl.
# This may be replaced when dependencies are built.
