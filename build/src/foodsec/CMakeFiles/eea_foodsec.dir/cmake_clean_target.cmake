file(REMOVE_RECURSE
  "libeea_foodsec.a"
)
