// E2 — geometry-complexity degradation (paper §1): "if the complexity of
// geometries in the dataset increases (i.e., we have multi-polygons), not
// even the aforementioned performance can be achieved for both Strabon and
// GraphDB". Sweep: vertices-per-ring x {indexed, full-scan} at fixed
// dataset size and selectivity.
//
// Expected shape: both paths slow down with vertex count (exact tests cost
// more), the scan baseline catastrophically (it exact-tests everything);
// compare against E1's point numbers to see the multipolygon penalty.

#include <benchmark/benchmark.h>

#include <map>
#include <memory>

#include "bench_flags.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "strabon/workload.h"

namespace {

using exearth::common::Rng;
using exearth::strabon::GeoStore;
using exearth::strabon::GeoWorkloadOptions;
using exearth::strabon::RandomSelectionBox;
using exearth::strabon::SpatialRelation;

GeoStore& CachedMultiPolygonStore(int vertices) {
  static std::map<int, std::unique_ptr<GeoStore>>* cache =
      new std::map<int, std::unique_ptr<GeoStore>>();
  auto it = cache->find(vertices);
  if (it == cache->end()) {
    GeoWorkloadOptions opt;
    opt.num_features = 20000;
    opt.kind = GeoWorkloadOptions::GeometryKind::kMultiPolygon;
    opt.vertices_per_ring = vertices;
    opt.polygons_per_multi = 2;
    opt.feature_size = 60.0;
    opt.with_thematic = false;
    opt.seed = 13;
    it = cache
             ->emplace(vertices, std::make_unique<GeoStore>(
                                     exearth::strabon::MakeGeoWorkload(opt)))
             .first;
  }
  return *it->second;
}

void BM_MultiPolygonSelection(benchmark::State& state) {
  const int vertices = static_cast<int>(state.range(0));
  const bool use_index = state.range(1) != 0;
  const int threads =
      exearth::bench::EffectiveThreads(static_cast<int>(state.range(2)));
  GeoStore& store = CachedMultiPolygonStore(vertices);
  store.set_num_threads(static_cast<size_t>(threads));
  Rng rng(101);
  uint64_t results = 0;
  uint64_t queries = 0;
  for (auto _ : state) {
    auto box = RandomSelectionBox(100000.0, 0.001, &rng);
    auto hits =
        *store.SpatialSelect(box, SpatialRelation::kIntersects, use_index);
    benchmark::DoNotOptimize(hits);
    results += hits.size();
    ++queries;
  }
  store.set_num_threads(1);
  state.counters["vertices_per_ring"] = vertices;
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["mean_results"] =
      static_cast<double>(results) / static_cast<double>(queries);
}

// Deterministic result fingerprint for the cross-variant SIMD gate over
// the complex-geometry store (128-vertex multipolygons exercise the
// point-in-ring and refinement kernels, not just envelope screens).
// Exported as gauge bench.e2.result_hash; see bench_e1 for the scheme.
void BM_MultiPolygonResultHash(benchmark::State& state) {
  GeoStore& store = CachedMultiPolygonStore(128);
  store.set_num_threads(1);
  uint64_t hash = 0;
  for (auto _ : state) {
    hash = 0xcbf29ce484222325ULL;
    Rng rng(4321);
    for (int q = 0; q < 32; ++q) {
      auto box = RandomSelectionBox(100000.0, 0.005, &rng);
      const auto relation = static_cast<SpatialRelation>(q % 3);
      auto hits = *store.SpatialSelect(box, relation, /*use_index=*/true);
      for (uint64_t id : hits) {
        hash ^= id;
        hash *= 0x100000001b3ULL;
      }
    }
    benchmark::DoNotOptimize(hash);
  }
  exearth::common::MetricsRegistry::Default()
      .GetGauge("bench.e2.result_hash")
      ->Set(static_cast<double>(hash & 0xffffffffULL));
}

}  // namespace

BENCHMARK(BM_MultiPolygonResultHash)->Iterations(1);

BENCHMARK(BM_MultiPolygonSelection)
    ->ArgNames({"vertices", "indexed", "threads"})
    ->Args({8, 1, 1})
    ->Args({8, 0, 1})
    ->Args({32, 1, 1})
    ->Args({32, 0, 1})
    ->Args({128, 1, 1})
    ->Args({128, 0, 1})
    ->Args({128, 0, 4})
    ->Unit(benchmark::kMicrosecond);

// main() comes from bench_main.cc (adds --smoke and the
// metrics-snapshot JSON dump).
