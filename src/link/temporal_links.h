// Temporal link discovery (Challenge C3: the paper cites the
// "geospatial/temporal extensions of Silk" [21]): finding Allen-interval
// relations between two sets of time intervals (product acquisition
// windows, ice-season extents, crop growing periods). An interval-index
// (sorted endpoints + binary search) path is compared against the naive
// nested loop, mirroring the spatial module.

#ifndef EXEARTH_LINK_TEMPORAL_LINKS_H_
#define EXEARTH_LINK_TEMPORAL_LINKS_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace exearth::link {

/// A half-open-free closed interval [start, end], start <= end.
struct Interval {
  double start = 0.0;
  double end = 0.0;
};

/// The Allen relations supported for discovery (the symmetric closure of
/// the full 13 is reachable by swapping the argument sets).
enum class TemporalRelation {
  kBefore,    // a.end < b.start
  kMeets,     // a.end == b.start
  kOverlaps,  // a and b share at least one instant
  kDuring,    // b.start <= a.start && a.end <= b.end (a within b)
  kStarts,    // a.start == b.start
  kFinishes,  // a.end == b.end
  kEquals,    // identical endpoints
};

const char* TemporalRelationName(TemporalRelation r);

/// True if `a` stands in `relation` to `b`.
bool EvalTemporalRelation(const Interval& a, const Interval& b,
                          TemporalRelation relation);

struct TemporalLinkOptions {
  TemporalRelation relation = TemporalRelation::kOverlaps;
  /// Use the sorted interval index (vs nested loop). Identical results.
  bool use_index = true;
};

struct TemporalLinkResult {
  std::vector<std::pair<size_t, size_t>> links;  // (index in a, index in b)
  uint64_t exact_tests = 0;
};

/// Finds all (a_i, b_j) with a_i `relation` b_j.
TemporalLinkResult DiscoverTemporalLinks(const std::vector<Interval>& a,
                                         const std::vector<Interval>& b,
                                         const TemporalLinkOptions& options);

}  // namespace exearth::link

#endif  // EXEARTH_LINK_TEMPORAL_LINKS_H_
