file(REMOVE_RECURSE
  "libeea_strabon.a"
)
