#include "link/spatial_links.h"

#include <algorithm>
#include <functional>

#include "common/thread_pool.h"
#include "common/trace.h"
#include "geo/rtree.h"

namespace exearth::link {

const char* SpatialLinkRelationName(SpatialLinkRelation r) {
  switch (r) {
    case SpatialLinkRelation::kIntersects:
      return "intersects";
    case SpatialLinkRelation::kContains:
      return "contains";
    case SpatialLinkRelation::kWithinDistance:
      return "withinDistance";
  }
  return "unknown";
}

namespace {

bool ExactTest(const geo::Geometry& ga, const geo::Geometry& gb,
               const SpatialLinkOptions& options) {
  switch (options.relation) {
    case SpatialLinkRelation::kIntersects:
      return geo::Intersects(ga, gb);
    case SpatialLinkRelation::kContains:
      return geo::Contains(ga, gb);
    case SpatialLinkRelation::kWithinDistance:
      return geo::WithinDistance(ga, gb, options.distance);
  }
  return false;
}

// Runs fn(chunk, begin, end) over [0, n) split across `threads` workers
// (inline when threads <= 1 or n is small); returns chunks used.
size_t RunChunked(size_t n, size_t threads,
                  const std::function<void(size_t, size_t, size_t)>& fn) {
  constexpr size_t kMinItemsPerChunk = 16;
  size_t chunks = 1;
  if (threads > 1) {
    chunks = std::min(threads, (n + kMinItemsPerChunk - 1) / kMinItemsPerChunk);
  }
  if (chunks <= 1) {
    fn(0, 0, n);
    return 1;
  }
  const size_t chunk_size = (n + chunks - 1) / chunks;
  common::ThreadPool pool(chunks);
  pool.ParallelFor(chunks, [&](size_t c) {
    const size_t begin = c * chunk_size;
    const size_t end = std::min(begin + chunk_size, n);
    if (begin < end) fn(c, begin, end);
  });
  return chunks;
}

}  // namespace

SpatialLinkResult DiscoverSpatialLinks(const std::vector<geo::Geometry>& a,
                                       const std::vector<geo::Geometry>& b,
                                       const SpatialLinkOptions& options) {
  common::TraceRequest req("link.DiscoverSpatialLinks");
  SpatialLinkResult result;
  // Worker-local accumulators, merged in chunk order below.
  struct Local {
    std::vector<std::pair<size_t, size_t>> links;
    uint64_t candidate_pairs = 0;
    uint64_t exact_tests = 0;
  };
  const size_t max_chunks = std::max<size_t>(1, options.num_threads);
  std::vector<Local> locals(max_chunks);
  size_t used = 1;
  if (!options.use_index) {
    used = RunChunked(a.size(), options.num_threads,
                      [&](size_t c, size_t begin, size_t end) {
                        Local& local = locals[c];
                        for (size_t i = begin; i < end; ++i) {
                          for (size_t j = 0; j < b.size(); ++j) {
                            ++local.candidate_pairs;
                            ++local.exact_tests;
                            if (ExactTest(a[i], b[j], options)) {
                              local.links.emplace_back(i, j);
                            }
                          }
                        }
                      });
  } else {
    // Index side B; probe each A envelope (buffered for distance joins).
    std::vector<geo::RTree::Entry> entries;
    entries.reserve(b.size());
    for (size_t j = 0; j < b.size(); ++j) {
      entries.push_back({b[j].Envelope(), static_cast<int64_t>(j)});
    }
    geo::RTree tree = geo::RTree::BulkLoad(std::move(entries));
    const double margin =
        options.relation == SpatialLinkRelation::kWithinDistance
            ? options.distance
            : 0.0;
    used = RunChunked(
        a.size(), options.num_threads, [&](size_t c, size_t begin, size_t end) {
          Local& local = locals[c];
          for (size_t i = begin; i < end; ++i) {
            geo::Box probe = a[i].Envelope().Buffered(margin);
            tree.VisitWith(probe, [&](const geo::RTree::Entry& e) {
              ++local.candidate_pairs;
              ++local.exact_tests;
              const size_t j = static_cast<size_t>(e.id);
              if (ExactTest(a[i], b[j], options)) {
                local.links.emplace_back(i, j);
              }
              return true;
            });
          }
        });
  }
  for (size_t c = 0; c < used; ++c) {
    result.candidate_pairs += locals[c].candidate_pairs;
    result.exact_tests += locals[c].exact_tests;
    result.links.insert(result.links.end(), locals[c].links.begin(),
                        locals[c].links.end());
  }
  std::sort(result.links.begin(), result.links.end());
  return result;
}

}  // namespace exearth::link
