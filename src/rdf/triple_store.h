// In-memory triple store with dictionary encoding and three sorted
// permutation indexes (SPO, POS, OSP), supporting pattern scans with exact
// range cardinalities. The design Strabon layers over a DBMS, reproduced
// natively (DESIGN.md §6).

#ifndef EXEARTH_RDF_TRIPLE_STORE_H_
#define EXEARTH_RDF_TRIPLE_STORE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "rdf/term.h"

namespace exearth::rdf {

/// A triple of term ids.
struct TripleId {
  uint64_t s = 0;
  uint64_t p = 0;
  uint64_t o = 0;

  friend bool operator==(const TripleId& a, const TripleId& b) {
    return a.s == b.s && a.p == b.p && a.o == b.o;
  }
};

/// A triple pattern over ids: unset slots are wildcards.
struct IdPattern {
  std::optional<uint64_t> s;
  std::optional<uint64_t> p;
  std::optional<uint64_t> o;
};

/// Append-then-Build triple store. Adds are buffered; Build() (re)sorts the
/// three indexes. Scans require a built store; Add invalidates it.
class TripleStore {
 public:
  TripleStore() = default;

  TripleStore(const TripleStore&) = delete;
  TripleStore& operator=(const TripleStore&) = delete;
  TripleStore(TripleStore&&) = default;
  TripleStore& operator=(TripleStore&&) = default;

  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

  /// Adds a triple of terms (interning them).
  void Add(const Term& s, const Term& p, const Term& o);
  /// Adds a triple of existing ids.
  void AddIds(uint64_t s, uint64_t p, uint64_t o);

  /// Sorts the permutation indexes and deduplicates. Idempotent.
  void Build();
  bool built() const { return built_; }

  size_t size() const { return spo_.size(); }

  /// Visits triples matching `pattern` (requires built()). Return false
  /// from the visitor to stop.
  void Scan(const IdPattern& pattern,
            const std::function<bool(const TripleId&)>& visitor) const;

  /// All matches as a vector.
  std::vector<TripleId> Match(const IdPattern& pattern) const;

  /// Exact number of matching triples, via index ranges (O(log n)) for
  /// prefix-bound patterns; falls back to a scan count otherwise.
  uint64_t Count(const IdPattern& pattern) const;

  /// Distinct predicate ids with their triple counts (for federation
  /// source selection). Requires built().
  std::vector<std::pair<uint64_t, uint64_t>> PredicateStats() const;

  /// Convenience: true if the store contains the exact triple.
  bool Contains(uint64_t s, uint64_t p, uint64_t o) const;

 private:
  // Returns [begin, end) of the index range matching the bound prefix of
  // `pattern` in the best index, plus which permutation was chosen.
  enum class Index { kSpo, kPos, kOsp };
  Index ChooseIndex(const IdPattern& pattern) const;

  Dictionary dict_;
  std::vector<TripleId> spo_;
  std::vector<TripleId> pos_;
  std::vector<TripleId> osp_;
  bool built_ = false;
};

}  // namespace exearth::rdf

#endif  // EXEARTH_RDF_TRIPLE_STORE_H_
