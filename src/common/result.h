// Result<T>: a value-or-Status, the return type of fallible functions that
// produce a value. Mirrors arrow::Result.

#ifndef EXEARTH_COMMON_RESULT_H_
#define EXEARTH_COMMON_RESULT_H_

#include <cstdlib>
#include <iostream>
#include <optional>
#include <utility>

#include "common/status.h"

namespace exearth::common {

/// Holds either a T (success) or an error Status.
///
/// A Result must never be constructed from an OK status; that would be a
/// success with no value. Doing so aborts the process (it is a programming
/// error, not a runtime condition).
template <typename T>
class Result {
 public:
  /// Success.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Failure. `status` must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.ok()) {
      std::cerr << "Result constructed from OK status" << std::endl;
      std::abort();
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// The held value. Must only be called when ok().
  const T& value() const& {
    DieIfError();
    return *value_;
  }
  T& value() & {
    DieIfError();
    return *value_;
  }
  T&& value() && {
    DieIfError();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `alternative` if this Result is an error.
  T ValueOr(T alternative) const {
    return ok() ? *value_ : std::move(alternative);
  }

 private:
  void DieIfError() const {
    if (!ok()) {
      std::cerr << "Result::value() on error: " << status_.ToString()
                << std::endl;
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

}  // namespace exearth::common

/// Assigns the value of a Result expression to `lhs`, or returns its error
/// Status from the enclosing function.
#define EEA_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

#define EEA_CONCAT_IMPL(a, b) a##b
#define EEA_CONCAT(a, b) EEA_CONCAT_IMPL(a, b)

#define EEA_ASSIGN_OR_RETURN(lhs, expr) \
  EEA_ASSIGN_OR_RETURN_IMPL(EEA_CONCAT(_eea_result_, __LINE__), lhs, expr)

#endif  // EXEARTH_COMMON_RESULT_H_
