# Empty dependencies file for bench_e13_catalogue.
# This may be replaced when dependencies are built.
