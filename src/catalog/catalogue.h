// Semantic catalogue for Copernicus products (Challenge C4, experiment
// E13).
//
// Two layers:
//  * a product layer — spatio-temporal metadata records (one per Sentinel
//    product) indexed by an R-tree over footprints plus attribute filters;
//  * a knowledge layer — an RDF GeoStore holding content extracted from
//    the products (ice observations, detected icebergs, crop fields...),
//    linked back to product IRIs.
//
// This is what lets the catalogue answer the paper's flagship example,
// "how many icebergs were embedded in the ice barrier at its maximum
// extent in 2017?", which a metadata-only catalogue cannot.

#ifndef EXEARTH_CATALOG_CATALOGUE_H_
#define EXEARTH_CATALOG_CATALOGUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "geo/rtree.h"
#include "raster/sentinel.h"
#include "strabon/geostore.h"

namespace exearth::catalog {

/// A metadata search request (the classic draw-a-box catalogue query).
struct SearchRequest {
  std::optional<geo::Box> area;
  std::optional<int> year;
  std::optional<int> day_from;  // inclusive, 1..365
  std::optional<int> day_to;    // inclusive
  std::optional<raster::Mission> mission;
  std::optional<double> max_cloud_cover;
  size_t limit = 0;  // 0 = unlimited
};

struct SearchStats {
  uint64_t candidates = 0;  // records reaching attribute filtering
  uint64_t results = 0;
};

/// The catalogue.
class SemanticCatalogue {
 public:
  SemanticCatalogue() = default;

  SemanticCatalogue(const SemanticCatalogue&) = delete;
  SemanticCatalogue& operator=(const SemanticCatalogue&) = delete;

  /// Registers a product's metadata. Call Build() after the last Ingest.
  void Ingest(const raster::SceneMetadata& metadata);

  /// Number of ingested product records.
  size_t num_products() const { return products_.size(); }

  /// Adds an extracted-knowledge observation: a feature (IRI) of a class,
  /// with a geometry, observed in `product_id` on `day_of_year`. The
  /// feature becomes queryable through knowledge().
  void AddObservation(const std::string& feature_iri,
                      const std::string& class_iri,
                      const geo::Geometry& geometry,
                      const std::string& product_id, int year,
                      int day_of_year);

  /// Builds the spatial indexes of both layers. Idempotent.
  common::Status Build();

  /// Metadata search. Records are returned in ingest order. Per-call
  /// statistics are written to `stats` when non-null (there is no racy
  /// last-call accessor; concurrent searches each get their own stats).
  std::vector<raster::SceneMetadata> Search(const SearchRequest& request,
                                            SearchStats* stats = nullptr) const;

  /// Semantic count: observations of `class_iri` whose geometry intersects
  /// `area`, optionally restricted to a year ("how many icebergs ... in
  /// 2017"). Requires Build().
  common::Result<uint64_t> CountObservations(
      const std::string& class_iri, const geo::Box& area,
      std::optional<int> year) const;

  /// The day of `year` with the most observations of `class_iri`
  /// intersecting `area` — the "at its maximum extent" part of the
  /// paper's flagship query. NotFound if there are no such observations.
  struct MaxExtent {
    int day_of_year = 0;
    uint64_t observations = 0;
  };
  common::Result<MaxExtent> MaxExtentDay(const std::string& class_iri,
                                         const geo::Box& area,
                                         int year) const;

  /// The knowledge layer, for arbitrary stSPARQL-style queries.
  const strabon::GeoStore& knowledge() const { return knowledge_; }

  /// Analytic scaling model for E13: expected single-query latency at
  /// `num_records`, extrapolated from a measured (n0, t0) point assuming
  /// R-tree O(log n + k) behaviour with constant result size k.
  static double ExtrapolateLatency(double measured_seconds,
                                   uint64_t measured_records,
                                   uint64_t target_records);

  /// Vocabulary used by the knowledge layer.
  static const char* ObservedInPredicate();
  static const char* ObservedYearPredicate();
  static const char* ObservedDayPredicate();

 private:
  std::vector<raster::SceneMetadata> products_;
  geo::RTree product_index_;
  bool built_ = false;
  strabon::GeoStore knowledge_;
};

}  // namespace exearth::catalog

#endif  // EXEARTH_CATALOG_CATALOGUE_H_
