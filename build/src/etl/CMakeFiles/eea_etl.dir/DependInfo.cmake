
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/etl/mapping.cc" "src/etl/CMakeFiles/eea_etl.dir/mapping.cc.o" "gcc" "src/etl/CMakeFiles/eea_etl.dir/mapping.cc.o.d"
  "/root/repo/src/etl/table.cc" "src/etl/CMakeFiles/eea_etl.dir/table.cc.o" "gcc" "src/etl/CMakeFiles/eea_etl.dir/table.cc.o.d"
  "/root/repo/src/etl/training_data.cc" "src/etl/CMakeFiles/eea_etl.dir/training_data.cc.o" "gcc" "src/etl/CMakeFiles/eea_etl.dir/training_data.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eea_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/eea_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/raster/CMakeFiles/eea_raster.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/eea_rdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
