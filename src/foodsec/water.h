// PROMET-substitute water-availability model (Challenge A1, experiment E7).
//
// PROMET itself is closed source; per DESIGN.md §2 we use a standard
// FAO-56-style daily soil-water bucket:
//
//   ET0   : Hargreaves-Samani reference evapotranspiration
//   ETc   : Kc(crop, day) * ET0, with Kc following the crop's phenology
//   S(t+1) = clamp(S(t) + P(t) - ETa(t), 0, capacity)
//   ETa   : ETc limited by available water (stress below 50% depletion)
//
// Outputs are the products the paper names: a high-resolution water
// availability map (mean growing-season soil-water fraction per pixel) and
// an irrigation-requirement map (seasonal deficit in mm).

#ifndef EXEARTH_FOODSEC_WATER_H_
#define EXEARTH_FOODSEC_WATER_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "raster/landcover.h"
#include "raster/raster.h"

namespace exearth::foodsec {

/// One day of (area-wide) weather forcing.
struct WeatherDay {
  double tmin_c = 5.0;
  double tmax_c = 15.0;
  double precip_mm = 0.0;
};

/// Synthesizes a year (365 days) of mid-latitude weather: seasonal
/// temperatures plus stochastic wet days with exponential amounts.
std::vector<WeatherDay> SynthesizeWeather(uint64_t seed);

/// Hargreaves-Samani ET0 (mm/day) for day-of-year `doy` (1-based).
double ReferenceEvapotranspiration(const WeatherDay& day, int doy);

/// Crop coefficient from the crop's phenology: Kc = 0.25 + 0.9 * growth.
double CropCoefficient(raster::CropType crop, int doy);

struct WaterBalanceOptions {
  double soil_capacity_mm = 120.0;  // plant-available water capacity
  /// Spatial variability of capacity (fraction; per-pixel lognormal-ish).
  double capacity_variability = 0.25;
  int season_start_doy = 90;
  int season_end_doy = 270;
  uint64_t seed = 1;
};

/// Products of the water-balance run.
struct WaterProducts {
  /// Mean growing-season soil-water fraction in [0,1], 1 band.
  raster::Raster availability;
  /// Seasonal irrigation requirement in mm (unmet ETc), 1 band.
  raster::Raster irrigation_mm;
};

/// Runs the daily balance for every pixel of `crop_map` over `weather`
/// (365 days). `transform` georeferences the outputs (the "10 m maps").
common::Result<WaterProducts> ComputeWaterProducts(
    const raster::ClassMap& crop_map, const raster::GeoTransform& transform,
    const std::vector<WeatherDay>& weather,
    const WaterBalanceOptions& options);

}  // namespace exearth::foodsec

#endif  // EXEARTH_FOODSEC_WATER_H_
