# Empty dependencies file for bench_e8_ice_mapping.
# This may be replaced when dependencies are built.
