# Empty dependencies file for eea_foodsec.
# This may be replaced when dependencies are built.
