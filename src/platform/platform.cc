#include "platform/platform.h"

#include "common/string_util.h"

namespace exearth::platform {

using common::Status;

ExtremeEarthPlatform::ExtremeEarthPlatform(const PlatformOptions& options)
    : storage_(options.storage),
      namenode_(&storage_),
      cluster_(options.compute_nodes, options.node, options.network) {
  // Archive layout.
  EEA_CHECK_OK(namenode_.Mkdir("/products"));
  EEA_CHECK_OK(namenode_.Mkdir("/products/S1"));
  EEA_CHECK_OK(namenode_.Mkdir("/products/S2"));
  EEA_CHECK_OK(namenode_.Mkdir("/derived"));
}

namespace {
std::string ProductPath(const raster::SceneMetadata& metadata) {
  const char* mission_dir =
      metadata.mission == raster::Mission::kSentinel1 ? "S1" : "S2";
  return common::StrFormat("/products/%s/%s", mission_dir,
                           metadata.product_id.c_str());
}
}  // namespace

Status ExtremeEarthPlatform::RegisterProduct(
    const raster::SceneMetadata& metadata) {
  EEA_RETURN_NOT_OK(
      namenode_.Create(ProductPath(metadata), metadata.size_bytes, ""));
  catalogue_.Ingest(metadata);
  return Status::OK();
}

Status ExtremeEarthPlatform::RegisterProductWithData(
    const raster::SentinelProduct& product) {
  std::string blob = raster::SerializeProduct(product);
  EEA_RETURN_NOT_OK(namenode_.Create(ProductPath(product.metadata),
                                     blob.size(), blob));
  catalogue_.Ingest(product.metadata);
  return Status::OK();
}

common::Result<raster::SentinelProduct> ExtremeEarthPlatform::LoadProduct(
    const std::string& product_id, raster::Mission mission) {
  raster::SceneMetadata key;
  key.product_id = product_id;
  key.mission = mission;
  EEA_ASSIGN_OR_RETURN(std::string blob,
                       namenode_.ReadFile(ProductPath(key)));
  return raster::DeserializeProduct(blob);
}

}  // namespace exearth::platform
