#include "serve/admin_hooks.h"

#include <chrono>

#include "common/string_util.h"
#include "serve/broker.h"
#include "serve/slo.h"

namespace exearth::serve {

using common::StrFormat;

namespace {

int64_t SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string RenderTenantz(QueryBroker* broker, SloTracker* slo,
                          const std::function<int64_t()>& now_us) {
  std::string body = StrFormat("tenants: %zu\n\n", broker->num_tenants());
  body += StrFormat("%-16s %6s %-12s %10s %9s %9s %7s %10s %10s %7s %8s\n",
                    "tenant", "weight", "priority", "quota_rps", "offered",
                    "ok", "errors", "quota_shed", "adm_shed", "cached",
                    "batched");
  for (const TenantStats& s : broker->TenantStatsSnapshot()) {
    body += StrFormat(
        "%-16s %6u %-12s %10.0f %9llu %9llu %7llu %10llu %10llu %7llu "
        "%8llu\n",
        s.name.c_str(), s.weight, common::PriorityToString(s.priority),
        s.quota_rps, static_cast<unsigned long long>(s.offered),
        static_cast<unsigned long long>(s.ok),
        static_cast<unsigned long long>(s.errors),
        static_cast<unsigned long long>(s.quota_shed),
        static_cast<unsigned long long>(s.admission_shed),
        static_cast<unsigned long long>(s.cache_hits),
        static_cast<unsigned long long>(s.batched));
  }
  if (slo != nullptr) {
    body += "\nSLO burn rates (window counts; burn 1.0 = budget consumed "
            "at the sustainable rate)\n";
    body += slo->TableText(now_us());
  }
  if (broker->shutting_down()) body += "\nbroker is SHUTTING DOWN\n";
  return body;
}

}  // namespace

void RegisterServeAdminHooks(obs::AdminServer* admin, QueryBroker* broker,
                             SloTracker* slo,
                             std::function<int64_t()> now_us) {
  if (now_us == nullptr) now_us = SteadyNowUs;

  admin->AddReadinessProbe("serve.broker",
                           [broker] { return broker->CheckReady(); });

  admin->AddStatusLine("serve broker", [broker] {
    return StrFormat("%zu tenant(s), %zu cached entr%s, batching %s%s",
                     broker->num_tenants(), broker->cache_size(),
                     broker->cache_size() == 1 ? "y" : "ies",
                     broker->options().enable_batching ? "on" : "off",
                     broker->shutting_down() ? ", SHUTTING DOWN" : "");
  });

  if (slo != nullptr) {
    admin->AddPrometheusCollector(
        [slo, now_us] { return slo->PrometheusText(now_us()); });
  }

  admin->AddPage("/tenantz", "per-tenant quota/shed/cache/SLO table",
                 [broker, slo, now_us](const obs::HttpRequest&) {
                   return obs::HttpResponse{
                       200, "text/plain; charset=utf-8",
                       RenderTenantz(broker, slo, now_us)};
                 });
}

}  // namespace exearth::serve
