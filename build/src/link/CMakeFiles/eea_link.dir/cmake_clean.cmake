file(REMOVE_RECURSE
  "CMakeFiles/eea_link.dir/entity_resolution.cc.o"
  "CMakeFiles/eea_link.dir/entity_resolution.cc.o.d"
  "CMakeFiles/eea_link.dir/spatial_links.cc.o"
  "CMakeFiles/eea_link.dir/spatial_links.cc.o.d"
  "CMakeFiles/eea_link.dir/temporal_links.cc.o"
  "CMakeFiles/eea_link.dir/temporal_links.cc.o.d"
  "libeea_link.a"
  "libeea_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eea_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
