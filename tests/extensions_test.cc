// Tests for the extension features: N-Triples I/O, geometry
// simplification/hulls, temporal link discovery, raster/product and
// weight serialization, Adam, time-series gap filling, ice drift, and the
// catalogue's maximum-extent query.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "catalog/catalogue.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "foodsec/timeseries.h"
#include "geo/simplify.h"
#include "geo/wkt.h"
#include "link/temporal_links.h"
#include "ml/network.h"
#include "ml/optimizer.h"
#include "ml/trainer.h"
#include "polar/drift.h"
#include "raster/io.h"
#include "rdf/ntriples.h"
#include "strabon/workload.h"

namespace exearth {
namespace {

// --- N-Triples ----------------------------------------------------------

TEST(NTriplesTest, RoundTrip) {
  rdf::TripleStore store;
  store.Add(rdf::Term::Iri("http://x/a"), rdf::Term::Iri("http://x/p"),
            rdf::Term::Iri("http://x/b"));
  store.Add(rdf::Term::Iri("http://x/a"), rdf::Term::Iri("http://x/label"),
            rdf::Term::Literal("line1\nline2 \"quoted\" \\slash"));
  store.Add(rdf::Term::Blank("b0"), rdf::Term::Iri("http://x/v"),
            rdf::Term::Literal("3.5", rdf::vocab::kXsdDouble));
  store.Build();
  std::string text = rdf::SerializeNTriples(store);
  rdf::TripleStore parsed;
  auto stats = rdf::ParseNTriples(text, &parsed);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->triples, 3u);
  parsed.Build();
  EXPECT_EQ(parsed.size(), 3u);
  // Re-serialize: identical canonical text.
  EXPECT_EQ(rdf::SerializeNTriples(parsed), text);
}

TEST(NTriplesTest, ParsesCommentsAndBlankLines) {
  rdf::TripleStore store;
  auto stats = rdf::ParseNTriples(
      "# header comment\n\n<http://a> <http://p> \"v\" .\n", &store);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(stats->triples, 1u);
}

TEST(NTriplesTest, RejectsMalformed) {
  rdf::TripleStore store;
  EXPECT_FALSE(rdf::ParseNTriples("<http://a> <http://p> .\n", &store).ok());
  EXPECT_FALSE(rdf::ParseNTriples("<http://a> <http://p> \"v\"\n", &store).ok());
  EXPECT_FALSE(
      rdf::ParseNTriples("<http://a> \"litpred\" <http://b> .\n", &store)
          .ok());
  EXPECT_FALSE(
      rdf::ParseNTriples("<http://a> <http://p> \"unterminated .\n", &store)
          .ok());
  // Error carries the line number.
  auto bad = rdf::ParseNTriples("<http://a> <http://p> <http://b> .\njunk\n",
                                &store);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 2"), std::string::npos);
}

TEST(NTriplesTest, DatatypedLiteralRoundTrip) {
  rdf::TripleStore store;
  ASSERT_TRUE(rdf::ParseNTriples(
                  "<http://a> <http://p> \"42\"^^<" +
                      std::string(rdf::vocab::kXsdInteger) + "> .\n",
                  &store)
                  .ok());
  store.Build();
  auto matches = store.Match(rdf::IdPattern{});
  ASSERT_EQ(matches.size(), 1u);
  const rdf::Term& o = store.dict().Decode(matches[0].o);
  EXPECT_TRUE(o.IsLiteral());
  EXPECT_EQ(o.datatype, rdf::vocab::kXsdInteger);
}

// --- Simplification / hulls -------------------------------------------------

TEST(SimplifyTest, CollinearPointsCollapse) {
  geo::LineString line;
  for (int i = 0; i <= 10; ++i) {
    line.points.push_back(geo::Point{static_cast<double>(i), 0.0});
  }
  geo::LineString out = geo::Simplify(line, 0.01);
  EXPECT_EQ(out.points.size(), 2u);
  EXPECT_EQ(out.points.front().x, 0);
  EXPECT_EQ(out.points.back().x, 10);
}

TEST(SimplifyTest, KeepsSignificantVertices) {
  geo::LineString line;
  line.points = {{0, 0}, {5, 5}, {10, 0}};  // a peak of height 5
  geo::LineString out = geo::Simplify(line, 1.0);
  EXPECT_EQ(out.points.size(), 3u);
  out = geo::Simplify(line, 10.0);  // tolerance above the peak
  EXPECT_EQ(out.points.size(), 2u);
}

TEST(SimplifyTest, RingPreservesShapeWithinTolerance) {
  common::Rng rng(3);
  geo::Polygon poly = strabon::RandomPolygon(50, 50, 40, 64, &rng);
  geo::Polygon simplified = geo::Simplify(poly, 0.8);
  EXPECT_LT(simplified.outer.points.size(), poly.outer.points.size());
  EXPECT_GE(simplified.outer.points.size(), 3u);
  // Area change bounded (tolerance * perimeter is a crude bound).
  EXPECT_NEAR(simplified.Area(), poly.Area(), 0.15 * poly.Area());
}

TEST(SimplifyTest, DegenerateInputsReturned) {
  geo::LineString two;
  two.points = {{0, 0}, {1, 1}};
  EXPECT_EQ(geo::Simplify(two, 5.0).points.size(), 2u);
  geo::Ring tri;
  tri.points = {{0, 0}, {1, 0}, {0, 1}};
  EXPECT_EQ(geo::Simplify(tri, 100.0).points.size(), 3u);
}

TEST(ConvexHullTest, SquareWithInteriorPoints) {
  std::vector<geo::Point> pts = {{0, 0}, {4, 0}, {4, 4}, {0, 4},
                                 {2, 2}, {1, 3}, {3, 1}};
  geo::Ring hull = geo::ConvexHull(pts);
  EXPECT_EQ(hull.points.size(), 4u);
  EXPECT_DOUBLE_EQ(hull.Area(), 16.0);
  // CCW orientation.
  EXPECT_GT(hull.SignedArea(), 0.0);
}

TEST(ConvexHullTest, CollinearAndTinyInputs) {
  geo::Ring hull =
      geo::ConvexHull({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  EXPECT_LE(hull.points.size(), 2u);  // degenerate: endpoints only
  EXPECT_EQ(geo::ConvexHull({{5, 5}}).points.size(), 1u);
  EXPECT_TRUE(geo::ConvexHull({}).points.empty());
}

TEST(ConvexHullTest, HullContainsAllPoints) {
  common::Rng rng(4);
  std::vector<geo::Point> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back(geo::Point{rng.Gaussian(0, 10), rng.Gaussian(0, 10)});
  }
  geo::Ring hull = geo::ConvexHull(pts);
  for (const geo::Point& p : pts) {
    EXPECT_TRUE(hull.Contains(p));
  }
}

// --- Temporal links ------------------------------------------------------

std::vector<link::Interval> RandomIntervals(int n, uint64_t seed) {
  common::Rng rng(seed);
  std::vector<link::Interval> out;
  for (int i = 0; i < n; ++i) {
    double start = rng.UniformDouble(0, 365);
    out.push_back({start, start + rng.UniformDouble(0, 60)});
  }
  return out;
}

TEST(TemporalLinksTest, EvalRelations) {
  link::Interval a{10, 20};
  EXPECT_TRUE(link::EvalTemporalRelation(a, {25, 30},
                                         link::TemporalRelation::kBefore));
  EXPECT_TRUE(link::EvalTemporalRelation(a, {20, 30},
                                         link::TemporalRelation::kMeets));
  EXPECT_TRUE(link::EvalTemporalRelation(a, {15, 30},
                                         link::TemporalRelation::kOverlaps));
  EXPECT_TRUE(link::EvalTemporalRelation(a, {5, 25},
                                         link::TemporalRelation::kDuring));
  EXPECT_TRUE(link::EvalTemporalRelation(a, {10, 40},
                                         link::TemporalRelation::kStarts));
  EXPECT_TRUE(link::EvalTemporalRelation(a, {0, 20},
                                         link::TemporalRelation::kFinishes));
  EXPECT_TRUE(link::EvalTemporalRelation(a, {10, 20},
                                         link::TemporalRelation::kEquals));
  EXPECT_FALSE(link::EvalTemporalRelation(a, {21, 30},
                                          link::TemporalRelation::kOverlaps));
}

TEST(TemporalLinksTest, IndexedMatchesNestedLoopAllRelations) {
  auto a = RandomIntervals(120, 1);
  auto b = RandomIntervals(150, 2);
  for (auto relation :
       {link::TemporalRelation::kBefore, link::TemporalRelation::kMeets,
        link::TemporalRelation::kOverlaps, link::TemporalRelation::kDuring,
        link::TemporalRelation::kStarts, link::TemporalRelation::kFinishes,
        link::TemporalRelation::kEquals}) {
    link::TemporalLinkOptions opt;
    opt.relation = relation;
    opt.use_index = true;
    auto indexed = link::DiscoverTemporalLinks(a, b, opt);
    opt.use_index = false;
    auto nested = link::DiscoverTemporalLinks(a, b, opt);
    EXPECT_EQ(indexed.links, nested.links)
        << link::TemporalRelationName(relation);
  }
}

TEST(TemporalLinksTest, IndexPrunesCandidates) {
  auto a = RandomIntervals(300, 3);
  auto b = RandomIntervals(300, 4);
  link::TemporalLinkOptions opt;
  opt.relation = link::TemporalRelation::kOverlaps;
  opt.use_index = true;
  auto indexed = link::DiscoverTemporalLinks(a, b, opt);
  EXPECT_LT(indexed.exact_tests, 300u * 300u);
  EXPECT_FALSE(indexed.links.empty());
}

TEST(TemporalLinksTest, EmptyInputs) {
  link::TemporalLinkOptions opt;
  EXPECT_TRUE(link::DiscoverTemporalLinks({}, {}, opt).links.empty());
  auto a = RandomIntervals(5, 9);
  EXPECT_TRUE(link::DiscoverTemporalLinks(a, {}, opt).links.empty());
}

// --- Raster / product serialization ------------------------------------

TEST(RasterIoTest, RasterRoundTrip) {
  raster::Raster r(7, 5, 3, raster::GeoTransform{100, 200, 2.5});
  common::Rng rng(5);
  for (auto& v : r.data()) v = static_cast<float>(rng.NextDouble());
  std::string blob = raster::SerializeRaster(r);
  auto back = raster::DeserializeRaster(blob);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->width(), 7);
  EXPECT_EQ(back->height(), 5);
  EXPECT_EQ(back->bands(), 3);
  EXPECT_DOUBLE_EQ(back->transform().pixel_size, 2.5);
  EXPECT_EQ(back->data(), r.data());
}

TEST(RasterIoTest, ProductRoundTrip) {
  raster::SentinelSimulator::Options opt;
  opt.cloud_probability = 1.0;
  raster::SentinelSimulator sim(opt, 6);
  raster::ClassMap map(16, 16);
  map.Fill(1);
  raster::SentinelProduct p = sim.SimulateS2(map, 123);
  std::string blob = raster::SerializeProduct(p);
  auto back = raster::DeserializeProduct(blob);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->metadata.product_id, p.metadata.product_id);
  EXPECT_EQ(back->metadata.mission, p.metadata.mission);
  EXPECT_EQ(back->metadata.day_of_year, 123);
  EXPECT_EQ(back->raster.data(), p.raster.data());
  EXPECT_EQ(back->cloud_mask.data(), p.cloud_mask.data());
}

TEST(RasterIoTest, RejectsCorruptBlobs) {
  EXPECT_FALSE(raster::DeserializeRaster("garbage").ok());
  EXPECT_FALSE(raster::DeserializeProduct("EEAPxx").ok());
  raster::Raster r(2, 2, 1);
  std::string blob = raster::SerializeRaster(r);
  blob.resize(blob.size() - 1);  // truncate payload
  EXPECT_FALSE(raster::DeserializeRaster(blob).ok());
  blob = raster::SerializeRaster(r);
  blob += 'x';  // trailing byte
  EXPECT_FALSE(raster::DeserializeRaster(blob).ok());
}

// --- Adam + weight serialization ------------------------------------------

TEST(AdamTest, ConvergesOnQuadratic) {
  // Minimize ||p - target||^2 with Adam.
  ml::Tensor p({4});
  ml::Tensor target({4});
  for (int i = 0; i < 4; ++i) target[i] = static_cast<float>(i) - 1.5f;
  ml::AdamOptimizer adam({.learning_rate = 0.05});
  ml::Tensor grad({4});
  for (int step = 0; step < 400; ++step) {
    for (int i = 0; i < 4; ++i) grad[i] = 2.0f * (p[i] - target[i]);
    adam.Step({&p}, {&grad});
  }
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(p[i], target[i], 1e-2);
}

TEST(AdamTest, TrainsClassifier) {
  raster::EurosatOptions opt;
  opt.num_samples = 600;
  opt.patch_size = 4;
  raster::Dataset ds = raster::MakeEurosatLike(opt, 9);
  ds.Standardize();
  ml::Network net = ml::BuildMlp(ds.feature_dim, {24}, 10, 11);
  ml::AdamOptimizer adam({.learning_rate = 2e-3});
  common::Rng rng(1);
  for (int epoch = 0; epoch < 4; ++epoch) {
    ds.Shuffle(&rng);
    for (size_t b = 0; b + 32 <= ds.size(); b += 32) {
      std::vector<int> labels;
      ml::Tensor batch = ml::MakeBatch(ds, b, b + 32, false, &labels);
      net.ZeroGrads();
      ml::Tensor logits = net.Forward(batch, true);
      auto loss = ml::SoftmaxCrossEntropy(logits, labels);
      net.Backward(loss.grad);
      adam.Step(net.Params(), net.Grads());
    }
  }
  auto preds = ml::Predict(&net, ds, false);
  int correct = 0;
  for (size_t i = 0; i < ds.size(); ++i) {
    if (preds[i] == ds.samples[i].label) ++correct;
  }
  EXPECT_GT(static_cast<double>(correct) / ds.size(), 0.7);
}

TEST(WeightsTest, SaveLoadRoundTrip) {
  ml::Network a = ml::BuildCnn(3, 8, 8, 4, 5, 1);
  ml::Network b = ml::BuildCnn(3, 8, 8, 4, 5, 2);  // different init
  std::string blob = ml::SerializeWeights(a);
  ASSERT_TRUE(ml::LoadWeights(blob, &b).ok());
  common::Rng rng(3);
  ml::Tensor x = ml::Tensor::HeNormal({2, 3, 8, 8}, 192, &rng);
  ml::Tensor ya = a.Forward(x, false);
  ml::Tensor yb = b.Forward(x, false);
  for (int64_t i = 0; i < ya.size(); ++i) EXPECT_EQ(ya[i], yb[i]);
}

TEST(WeightsTest, RejectsMismatchedArchitecture) {
  ml::Network a = ml::BuildMlp(10, {8}, 3, 1);
  ml::Network other = ml::BuildMlp(10, {16}, 3, 1);
  std::string blob = ml::SerializeWeights(a);
  EXPECT_FALSE(ml::LoadWeights(blob, &other).ok());
  EXPECT_FALSE(ml::LoadWeights("junk", &a).ok());
  std::string truncated = blob.substr(0, blob.size() / 2);
  EXPECT_FALSE(ml::LoadWeights(truncated, &a).ok());
}

// --- Time-series gap filling -------------------------------------------

TEST(GapFillTest, InteriorGapInterpolated) {
  std::vector<float> v = {1.0f, 0.0f, 0.0f, 4.0f};
  std::vector<bool> valid = {true, false, false, true};
  EXPECT_EQ(foodsec::FillGaps(&v, valid), 2);
  EXPECT_FLOAT_EQ(v[1], 2.0f);
  EXPECT_FLOAT_EQ(v[2], 3.0f);
}

TEST(GapFillTest, EdgeGapsExtend) {
  std::vector<float> v = {0.0f, 5.0f, 0.0f};
  std::vector<bool> valid = {false, true, false};
  EXPECT_EQ(foodsec::FillGaps(&v, valid), 2);
  EXPECT_FLOAT_EQ(v[0], 5.0f);
  EXPECT_FLOAT_EQ(v[2], 5.0f);
}

TEST(GapFillTest, AllInvalidIsNoop) {
  std::vector<float> v = {1.0f, 2.0f};
  std::vector<bool> valid = {false, false};
  EXPECT_EQ(foodsec::FillGaps(&v, valid), 0);
}

TEST(GapFillTest, MovingAverageSmooths) {
  std::vector<float> v = {0, 0, 9, 0, 0};
  auto out = foodsec::MovingAverage(v, 3);
  EXPECT_FLOAT_EQ(out[2], 3.0f);
  EXPECT_FLOAT_EQ(out[0], 0.0f);
  // Window 1: identity.
  EXPECT_EQ(foodsec::MovingAverage(v, 1), v);
}

TEST(GapFillTest, NdviStackFillsCloudyPixels) {
  raster::ClassMap crops(16, 16);
  crops.Fill(static_cast<uint8_t>(raster::CropType::kWheat));
  raster::SentinelSimulator::Options opt;
  opt.cloud_probability = 0.0;
  opt.noise_stddev = 0.0;
  raster::SentinelSimulator sim(opt, 12);
  std::vector<raster::SentinelProduct> scenes;
  for (int day : {100, 140, 180}) {
    scenes.push_back(sim.SimulateCropS2(crops, day));
  }
  // Hand-inject a cloud over the middle scene at one pixel.
  scenes[1].cloud_mask.at(5, 5) = 1;
  scenes[1].raster.Set(7, 5, 5, 0.9f);  // bright cloud garbage in NIR
  auto stack = foodsec::GapFilledNdviStack(scenes, 1);
  ASSERT_TRUE(stack.ok()) << stack.status();
  ASSERT_EQ(stack->size(), 3u);
  // Filled value is between the neighbours, not cloud garbage.
  float before = (*stack)[0].Get(0, 5, 5);
  float filled = (*stack)[1].Get(0, 5, 5);
  float after = (*stack)[2].Get(0, 5, 5);
  EXPECT_GE(filled, std::min(before, after) - 1e-5);
  EXPECT_LE(filled, std::max(before, after) + 1e-5);
}

TEST(GapFillTest, NdviStackValidation) {
  EXPECT_FALSE(foodsec::GapFilledNdviStack({}, 1).ok());
}

// --- Ice drift ------------------------------------------------------------

TEST(DriftTest, RecoversKnownShift) {
  // A textured concentration field shifted by (+2, +1) pixels.
  const int n = 64;
  common::Rng rng(21);
  raster::Raster t0(n, n, 1, raster::GeoTransform{0, 6400, 100.0});
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      t0.Set(0, x, y,
             static_cast<float>(
                 0.5 + 0.3 * std::sin(x * 0.7) * std::cos(y * 0.5) +
                 rng.Gaussian(0, 0.03)));
    }
  }
  raster::Raster t1(n, n, 1, t0.transform());
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      int sx = std::clamp(x - 2, 0, n - 1);
      int sy = std::clamp(y - 1, 0, n - 1);
      t1.Set(0, x, y, t0.Get(0, sx, sy));
    }
  }
  polar::DriftOptions opt;
  opt.block = 8;
  opt.max_shift = 4;
  auto drift = polar::EstimateIceDrift(t0, t1, opt);
  ASSERT_TRUE(drift.ok()) << drift.status();
  ASSERT_GT(drift->size(), 10u);
  int correct = 0;
  for (const auto& v : *drift) {
    // Expected displacement: +2 px east (200 m), +1 px down = -100 m north.
    if (std::abs(v.dx_m - 200.0) < 1e-9 && std::abs(v.dy_m + 100.0) < 1e-9) {
      ++correct;
    }
    EXPECT_GE(v.correlation, 0.5);
  }
  EXPECT_GT(static_cast<double>(correct) / drift->size(), 0.8);
}

TEST(DriftTest, FeaturelessFieldsGiveNoVectors) {
  raster::Raster flat0(32, 32, 1);
  raster::Raster flat1(32, 32, 1);
  flat0.data().assign(flat0.data().size(), 0.8f);
  flat1.data().assign(flat1.data().size(), 0.8f);
  auto drift = polar::EstimateIceDrift(flat0, flat1, polar::DriftOptions{});
  ASSERT_TRUE(drift.ok());
  EXPECT_TRUE(drift->empty());
}

TEST(DriftTest, Validation) {
  raster::Raster a(16, 16, 1);
  raster::Raster b(8, 8, 1);
  EXPECT_FALSE(polar::EstimateIceDrift(a, b, polar::DriftOptions{}).ok());
  raster::Raster two_band(16, 16, 2);
  EXPECT_FALSE(
      polar::EstimateIceDrift(two_band, two_band, polar::DriftOptions{})
          .ok());
}

// --- Catalogue max extent ---------------------------------------------------

TEST(MaxExtentTest, FindsPeakDay) {
  catalog::SemanticCatalogue cat;
  const char* ice = "http://extremeearth.eu/ontology#IceObservation";
  // Day 80: 5 observations; day 50: 2; day 200: 1. Plus one outside area.
  int id = 0;
  auto add = [&](int day, double x) {
    cat.AddObservation(common::StrFormat("http://x/obs/%d", id++), ice,
                       geo::Geometry(geo::Point{x, 10}), "P0", 2017, day);
  };
  for (int i = 0; i < 5; ++i) add(80, 10 + i);
  for (int i = 0; i < 2; ++i) add(50, 20 + i);
  add(200, 30);
  add(80, 9999);  // outside the barrier area
  ASSERT_TRUE(cat.Build().ok());
  geo::Box barrier = geo::Box::Of(0, 0, 100, 100);
  auto peak = cat.MaxExtentDay(ice, barrier, 2017);
  ASSERT_TRUE(peak.ok()) << peak.status();
  EXPECT_EQ(peak->day_of_year, 80);
  EXPECT_EQ(peak->observations, 5u);
  // Wrong year: NotFound.
  EXPECT_TRUE(cat.MaxExtentDay(ice, barrier, 2019).status().IsNotFound());
}

}  // namespace
}  // namespace exearth
