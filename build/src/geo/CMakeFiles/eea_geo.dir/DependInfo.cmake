
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/geometry.cc" "src/geo/CMakeFiles/eea_geo.dir/geometry.cc.o" "gcc" "src/geo/CMakeFiles/eea_geo.dir/geometry.cc.o.d"
  "/root/repo/src/geo/rtree.cc" "src/geo/CMakeFiles/eea_geo.dir/rtree.cc.o" "gcc" "src/geo/CMakeFiles/eea_geo.dir/rtree.cc.o.d"
  "/root/repo/src/geo/simplify.cc" "src/geo/CMakeFiles/eea_geo.dir/simplify.cc.o" "gcc" "src/geo/CMakeFiles/eea_geo.dir/simplify.cc.o.d"
  "/root/repo/src/geo/wkt.cc" "src/geo/CMakeFiles/eea_geo.dir/wkt.cc.o" "gcc" "src/geo/CMakeFiles/eea_geo.dir/wkt.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eea_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
