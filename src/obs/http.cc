#include "obs/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/metrics.h"
#include "common/string_util.h"

namespace exearth::obs {

using common::Status;

namespace {

struct HttpMetrics {
  common::Counter* requests;
  common::Counter* errors;
  common::Counter* rejected;
  common::Gauge* active;

  static const HttpMetrics& Get() {
    static HttpMetrics m = [] {
      auto& reg = common::MetricsRegistry::Default();
      return HttpMetrics{
          reg.GetCounter("obs.http.requests"),
          reg.GetCounter("obs.http.errors"),
          reg.GetCounter("obs.http.rejected"),
          reg.GetGauge("obs.http.active_connections"),
      };
    }();
    return m;
  }
};

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return status >= 500 ? "Internal Server Error" : "Error";
  }
}

// %xx and '+' decoding for paths and query params.
std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      const int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back('%');
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

void SetSocketTimeouts(int fd, int timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool SendAll(int fd, const char* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

void WriteResponse(int fd, const HttpResponse& resp, bool head_only) {
  std::string head = common::StrFormat(
      "HTTP/1.1 %d %s\r\n"
      "Content-Type: %s\r\n"
      "Content-Length: %zu\r\n"
      "Connection: close\r\n"
      "\r\n",
      resp.status, ReasonPhrase(resp.status), resp.content_type.c_str(),
      resp.body.size());
  if (!SendAll(fd, head.data(), head.size())) return;
  if (!head_only && !resp.body.empty()) {
    SendAll(fd, resp.body.data(), resp.body.size());
  }
}

}  // namespace

HttpServer::HttpServer(HttpServerOptions options)
    : options_(std::move(options)) {
  if (options_.num_workers == 0) options_.num_workers = 1;
  if (options_.max_pending == 0) options_.max_pending = 1;
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

Status HttpServer::Start() {
  if (running()) return Status::FailedPrecondition("http: already started");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("http: socket: ") +
                            std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("http: bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable(
        common::StrFormat("http: bind %s:%u: %s",
                          options_.bind_address.c_str(),
                          static_cast<unsigned>(options_.port), err.c_str()));
  }
  if (::listen(listen_fd_, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("http: listen: " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  workers_.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Unblock accept(): shutdown makes a blocked accept return on Linux.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  // Drain anything still queued with a 503.
  std::deque<int> left;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    left.swap(pending_);
  }
  for (int fd : left) {
    WriteResponse(fd, {503, "text/plain; charset=utf-8", "shutting down\n"},
                  false);
    ::close(fd);
  }
}

void HttpServer::AcceptLoop() {
  const HttpMetrics& metrics = HttpMetrics::Get();
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      break;  // listener broken; nothing sane to do
    }
    SetSocketTimeouts(fd, options_.io_timeout_ms);
    bool enqueued = false;
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      if (pending_.size() < options_.max_pending) {
        pending_.push_back(fd);
        enqueued = true;
      }
    }
    if (enqueued) {
      queue_cv_.notify_one();
    } else {
      // Bounded connections: shed at the door rather than queue without
      // limit — the admin plane must not amplify an overload.
      metrics.rejected->Increment();
      WriteResponse(fd, {503, "text/plain; charset=utf-8", "busy\n"}, false);
      ::close(fd);
    }
  }
}

void HttpServer::WorkerLoop() {
  const HttpMetrics& metrics = HttpMetrics::Get();
  for (;;) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !pending_.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (pending_.empty()) return;  // stopping
      fd = pending_.front();
      pending_.pop_front();
    }
    metrics.active->Add(1.0);
    ServeConnection(fd);
    metrics.active->Add(-1.0);
    ::close(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  const HttpMetrics& metrics = HttpMetrics::Get();
  metrics.requests->Increment();
  std::string head;
  head.reserve(512);
  char buf[1024];
  bool complete = false;
  while (head.size() < options_.max_request_bytes) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // timeout, reset or close
    head.append(buf, static_cast<size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos) {
      complete = true;
      break;
    }
  }
  if (!complete) {
    metrics.errors->Increment();
    const int status =
        head.size() >= options_.max_request_bytes ? 431 : 400;
    WriteResponse(fd, {status, "text/plain; charset=utf-8",
                       status == 431 ? "request too large\n"
                                     : "malformed request\n"},
                  false);
    return;
  }
  // Request line: METHOD SP target SP HTTP/1.x
  const size_t eol = head.find_first_of("\r\n");
  const std::string line = head.substr(0, eol);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1 ||
      line.compare(sp2 + 1, 5, "HTTP/") != 0) {
    metrics.errors->Increment();
    WriteResponse(fd, {400, "text/plain; charset=utf-8",
                       "malformed request line\n"},
                  false);
    return;
  }
  HttpRequest req;
  req.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (req.method != "GET" && req.method != "HEAD") {
    metrics.errors->Increment();
    WriteResponse(fd, {405, "text/plain; charset=utf-8",
                       "only GET and HEAD are supported\n"},
                  req.method == "HEAD");
    return;
  }
  const size_t qpos = target.find('?');
  req.path = UrlDecode(qpos == std::string::npos ? target
                                                 : target.substr(0, qpos));
  if (qpos != std::string::npos) {
    for (std::string_view kv :
         // Split keeps empty fields; harmless here.
         [&] {
           std::vector<std::string_view> parts;
           std::string_view q(target);
           q.remove_prefix(qpos + 1);
           while (!q.empty()) {
             const size_t amp = q.find('&');
             parts.push_back(q.substr(0, amp));
             if (amp == std::string_view::npos) break;
             q.remove_prefix(amp + 1);
           }
           return parts;
         }()) {
      const size_t eq = kv.find('=');
      if (eq == std::string_view::npos) {
        req.query[UrlDecode(kv)] = "";
      } else {
        req.query[UrlDecode(kv.substr(0, eq))] = UrlDecode(kv.substr(eq + 1));
      }
    }
  }
  HttpResponse resp;
  auto it = handlers_.find(req.path);
  if (it == handlers_.end()) {
    resp.status = 404;
    resp.body = "not found: " + req.path + "\n";
  } else {
    resp = it->second(req);
  }
  if (resp.status >= 400) metrics.errors->Increment();
  WriteResponse(fd, resp, req.method == "HEAD");
}

}  // namespace exearth::obs
