#include "raster/landcover.h"

#include <cmath>
#include <limits>

#include "common/logging.h"

namespace exearth::raster {

const char* LandCoverClassName(LandCoverClass c) {
  switch (c) {
    case LandCoverClass::kAnnualCrop:
      return "AnnualCrop";
    case LandCoverClass::kForest:
      return "Forest";
    case LandCoverClass::kHerbaceousVegetation:
      return "HerbaceousVegetation";
    case LandCoverClass::kHighway:
      return "Highway";
    case LandCoverClass::kIndustrial:
      return "Industrial";
    case LandCoverClass::kPasture:
      return "Pasture";
    case LandCoverClass::kPermanentCrop:
      return "PermanentCrop";
    case LandCoverClass::kResidential:
      return "Residential";
    case LandCoverClass::kRiver:
      return "River";
    case LandCoverClass::kSeaLake:
      return "SeaLake";
  }
  return "Unknown";
}

const char* CropTypeName(CropType c) {
  switch (c) {
    case CropType::kWheat:
      return "Wheat";
    case CropType::kMaize:
      return "Maize";
    case CropType::kBarley:
      return "Barley";
    case CropType::kRapeseed:
      return "Rapeseed";
    case CropType::kSugarBeet:
      return "SugarBeet";
    case CropType::kPotato:
      return "Potato";
    case CropType::kGrassland:
      return "Grassland";
    case CropType::kFallow:
      return "Fallow";
  }
  return "Unknown";
}

const char* IceClassName(IceClass c) {
  switch (c) {
    case IceClass::kOpenWater:
      return "OpenWater";
    case IceClass::kNewIce:
      return "NewIce";
    case IceClass::kYoungIce:
      return "YoungIce";
    case IceClass::kFirstYearIce:
      return "FirstYearIce";
    case IceClass::kOldIce:
      return "OldIce";
  }
  return "Unknown";
}

int IceClassWmoCode(IceClass c) {
  // Simplified SIGRID-3 stage-of-development codes.
  switch (c) {
    case IceClass::kOpenWater:
      return 1;
    case IceClass::kNewIce:
      return 81;
    case IceClass::kYoungIce:
      return 83;
    case IceClass::kFirstYearIce:
      return 86;
    case IceClass::kOldIce:
      return 95;
  }
  return 0;
}

ClassMap GenerateClassMap(const ClassMapOptions& options, common::Rng* rng) {
  EEA_CHECK(options.num_classes > 0 && options.num_classes <= 256);
  EEA_CHECK(options.num_patches > 0);
  struct Seed {
    double x;
    double y;
    uint8_t cls;
  };
  // Cumulative class prior.
  std::vector<double> cum(options.num_classes);
  {
    double total = 0;
    for (int c = 0; c < options.num_classes; ++c) {
      double w = options.class_weights.empty()
                     ? 1.0
                     : options.class_weights[static_cast<size_t>(c)];
      total += w;
      cum[static_cast<size_t>(c)] = total;
    }
    for (double& v : cum) v /= total;
  }
  auto draw_class = [&]() -> uint8_t {
    double u = rng->NextDouble();
    for (int c = 0; c < options.num_classes; ++c) {
      if (u <= cum[static_cast<size_t>(c)]) return static_cast<uint8_t>(c);
    }
    return static_cast<uint8_t>(options.num_classes - 1);
  };

  std::vector<Seed> seeds;
  seeds.reserve(static_cast<size_t>(options.num_patches));
  for (int i = 0; i < options.num_patches; ++i) {
    seeds.push_back(Seed{rng->UniformDouble(0, options.width),
                         rng->UniformDouble(0, options.height), draw_class()});
  }

  // Coarse spatial bucketing of seeds to avoid O(pixels * seeds).
  const int grid_dim = std::max(
      1, static_cast<int>(std::sqrt(static_cast<double>(options.num_patches))));
  std::vector<std::vector<int>> buckets(
      static_cast<size_t>(grid_dim) * grid_dim);
  auto bucket_of = [&](double x, double y) {
    int bx = std::min(grid_dim - 1,
                      static_cast<int>(x / options.width * grid_dim));
    int by = std::min(grid_dim - 1,
                      static_cast<int>(y / options.height * grid_dim));
    return static_cast<size_t>(by) * grid_dim + bx;
  };
  for (size_t i = 0; i < seeds.size(); ++i) {
    buckets[bucket_of(seeds[i].x, seeds[i].y)].push_back(static_cast<int>(i));
  }

  ClassMap map(options.width, options.height);
  for (int y = 0; y < options.height; ++y) {
    for (int x = 0; x < options.width; ++x) {
      // Search outward ring by ring in the bucket grid until a seed is found,
      // then one extra ring to guarantee correctness near bucket borders.
      double px = x + 0.5;
      double py = y + 0.5;
      int bx = std::min(grid_dim - 1,
                        static_cast<int>(px / options.width * grid_dim));
      int by = std::min(grid_dim - 1,
                        static_cast<int>(py / options.height * grid_dim));
      double best_d2 = std::numeric_limits<double>::max();
      uint8_t best_cls = 0;
      bool found = false;
      int extra = 0;
      for (int radius = 0; radius < grid_dim; ++radius) {
        bool any_in_ring = false;
        for (int dy = -radius; dy <= radius; ++dy) {
          for (int dx = -radius; dx <= radius; ++dx) {
            if (std::max(std::abs(dx), std::abs(dy)) != radius) continue;
            int gx = bx + dx;
            int gy = by + dy;
            if (gx < 0 || gx >= grid_dim || gy < 0 || gy >= grid_dim) continue;
            any_in_ring = true;
            for (int si : buckets[static_cast<size_t>(gy) * grid_dim + gx]) {
              double ddx = seeds[static_cast<size_t>(si)].x - px;
              double ddy = seeds[static_cast<size_t>(si)].y - py;
              double d2 = ddx * ddx + ddy * ddy;
              if (d2 < best_d2) {
                best_d2 = d2;
                best_cls = seeds[static_cast<size_t>(si)].cls;
                found = true;
              }
            }
          }
        }
        if (found) {
          if (++extra >= 2) break;  // one safety ring beyond first hit
        }
        if (!any_in_ring && radius > 0 && found) break;
      }
      map.at(x, y) = best_cls;
    }
  }
  return map;
}

std::vector<int64_t> ClassHistogram(const ClassMap& map, int num_classes) {
  std::vector<int64_t> hist(static_cast<size_t>(num_classes), 0);
  for (uint8_t v : map.data()) {
    if (v < num_classes) ++hist[v];
  }
  return hist;
}

double Agreement(const ClassMap& a, const ClassMap& b) {
  EEA_CHECK(a.width() == b.width() && a.height() == b.height());
  if (a.size() == 0) return 1.0;
  size_t same = 0;
  for (size_t i = 0; i < a.data().size(); ++i) {
    if (a.data()[i] == b.data()[i]) ++same;
  }
  return static_cast<double>(same) / a.size();
}

}  // namespace exearth::raster
