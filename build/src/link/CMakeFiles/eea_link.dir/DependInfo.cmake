
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/link/entity_resolution.cc" "src/link/CMakeFiles/eea_link.dir/entity_resolution.cc.o" "gcc" "src/link/CMakeFiles/eea_link.dir/entity_resolution.cc.o.d"
  "/root/repo/src/link/spatial_links.cc" "src/link/CMakeFiles/eea_link.dir/spatial_links.cc.o" "gcc" "src/link/CMakeFiles/eea_link.dir/spatial_links.cc.o.d"
  "/root/repo/src/link/temporal_links.cc" "src/link/CMakeFiles/eea_link.dir/temporal_links.cc.o" "gcc" "src/link/CMakeFiles/eea_link.dir/temporal_links.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/eea_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/eea_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
