#include <gtest/gtest.h>

#include <set>

#include "common/logging.h"
#include "common/string_util.h"
#include "geo/wkt.h"
#include "strabon/sparql.h"

namespace exearth::strabon {
namespace {

// A small store: 10 stations on a line, each with a type, a temperature
// and a geometry.
class SparqlTest : public testing::Test {
 protected:
  SparqlTest() {
    for (int i = 0; i < 10; ++i) {
      std::string iri = common::StrFormat("http://x/station/%d", i);
      store_.AddFeature(iri,
                        geo::Geometry(geo::Point{i * 10.0, 5.0}));
      store_.triples().Add(
          rdf::Term::Iri(iri), rdf::Term::Iri(rdf::vocab::kRdfType),
          rdf::Term::Iri("http://x/ontology#Station"));
      store_.triples().Add(
          rdf::Term::Iri(iri), rdf::Term::Iri("http://x/ontology#temp"),
          rdf::Term::Literal(std::to_string(i * 5),
                             rdf::vocab::kXsdInteger));
    }
    EEA_CHECK(store_.Build().ok());
  }

  std::string Decode(uint64_t id) {
    return store_.triples().dict().Decode(id).value;
  }

  GeoStore store_;
};

TEST_F(SparqlTest, BasicSelect) {
  auto rows = ExecuteSparql(store_, R"q(
    PREFIX ont: <http://x/ontology#>
    SELECT ?s WHERE { ?s a ont:Station . }
  )q");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), 10u);
  for (const rdf::Binding& b : *rows) {
    EXPECT_EQ(b.size(), 1u);
    EXPECT_TRUE(common::StartsWith(Decode(b.at("s")), "http://x/station/"));
  }
}

TEST_F(SparqlTest, JoinAndNumericFilter) {
  auto rows = ExecuteSparql(store_, R"q(
    PREFIX ont: <http://x/ontology#>
    SELECT ?s ?t WHERE {
      ?s a ont:Station .
      ?s ont:temp ?t .
      FILTER(?t >= 30)
    }
  )q");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), 4u);  // temps 30, 35, 40, 45
}

TEST_F(SparqlTest, StrictComparisons) {
  auto gt = ExecuteSparql(store_,
                          "SELECT ?s WHERE { ?s <http://x/ontology#temp> ?t "
                          ". FILTER(?t > 30) }");
  ASSERT_TRUE(gt.ok()) << gt.status();
  EXPECT_EQ(gt->size(), 3u);
  auto lt = ExecuteSparql(store_,
                          "SELECT ?s WHERE { ?s <http://x/ontology#temp> ?t "
                          ". FILTER(?t < 10) }");
  ASSERT_TRUE(lt.ok());
  EXPECT_EQ(lt->size(), 2u);  // 0 and 5
  auto eq = ExecuteSparql(store_,
                          "SELECT ?s WHERE { ?s <http://x/ontology#temp> ?t "
                          ". FILTER(?t = 25) }");
  ASSERT_TRUE(eq.ok());
  EXPECT_EQ(eq->size(), 1u);
  auto ne = ExecuteSparql(store_,
                          "SELECT ?s WHERE { ?s <http://x/ontology#temp> ?t "
                          ". FILTER(?t != 25) }");
  ASSERT_TRUE(ne.ok());
  EXPECT_EQ(ne->size(), 9u);
}

TEST_F(SparqlTest, SpatialFilterPushdown) {
  // Stations 0..3 lie within x <= 35.
  auto rows = ExecuteSparql(store_, R"q(
    PREFIX ont: <http://x/ontology#>
    SELECT ?s WHERE {
      ?s a ont:Station .
      FILTER(geof:sfIntersects(?s, "POLYGON ((-1 0, 35 0, 35 10, -1 10, -1 0))"))
    }
  )q");
  ASSERT_TRUE(rows.ok()) << rows.status();
  std::set<std::string> names;
  for (const rdf::Binding& b : *rows) names.insert(Decode(b.at("s")));
  EXPECT_EQ(names.size(), 4u);
  EXPECT_TRUE(names.count("http://x/station/0"));
  EXPECT_TRUE(names.count("http://x/station/3"));
}

TEST_F(SparqlTest, StrdfAliasAndLimit) {
  auto rows = ExecuteSparql(store_, R"q(
    SELECT * WHERE {
      ?s <http://x/ontology#temp> ?t .
      FILTER(strdf:intersects(?s, "POLYGON ((-1 -1, 100 -1, 100 10, -1 10, -1 -1))"))
    } LIMIT 3
  )q");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), 3u);
}

TEST_F(SparqlTest, LiteralObjectsAndNumbers) {
  GeoStore store;
  store.triples().Add(rdf::Term::Iri("http://x/a"),
                      rdf::Term::Iri("http://x/name"),
                      rdf::Term::Literal("alpha"));
  store.triples().Add(
      rdf::Term::Iri("http://x/a"), rdf::Term::Iri("http://x/count"),
      rdf::Term::Literal("7", rdf::vocab::kXsdInteger));
  ASSERT_TRUE(store.Build().ok());
  auto by_name = ExecuteSparql(
      store, "SELECT ?s WHERE { ?s <http://x/name> \"alpha\" . }");
  ASSERT_TRUE(by_name.ok()) << by_name.status();
  EXPECT_EQ(by_name->size(), 1u);
  // Bare numbers parse as typed literals.
  auto by_count = ExecuteSparql(
      store, "SELECT ?s WHERE { ?s <http://x/count> 7 . }");
  ASSERT_TRUE(by_count.ok()) << by_count.status();
  EXPECT_EQ(by_count->size(), 1u);
}

TEST_F(SparqlTest, ParseOnlyExposesStructure) {
  auto parsed = ParseSparql(R"q(
    PREFIX ont: <http://x/ontology#>
    SELECT ?s WHERE {
      ?s a ont:Station .
      FILTER(geof:sfIntersects(?s, "POINT (1 2)"))
    } LIMIT 5
  )q");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->query.where.size(), 1u);
  EXPECT_EQ(parsed->query.limit, 5u);
  ASSERT_TRUE(parsed->spatial.has_value());
  EXPECT_EQ(parsed->spatial->variable, "s");
  EXPECT_TRUE(parsed->spatial->geometry.IsPoint());
}

TEST_F(SparqlTest, CommentsIgnored) {
  auto rows = ExecuteSparql(store_, R"q(
    # this query counts stations
    SELECT ?s WHERE {
      ?s a <http://x/ontology#Station> .  # inline comment
    }
  )q");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), 10u);
}

TEST_F(SparqlTest, ParseErrors) {
  EXPECT_FALSE(ParseSparql("").ok());
  EXPECT_FALSE(ParseSparql("SELECT WHERE { ?s ?p ?o . }").ok());
  EXPECT_FALSE(ParseSparql("SELECT ?s { ?s ?p ?o . }").ok());  // no WHERE
  EXPECT_FALSE(ParseSparql("SELECT ?s WHERE { ?s ?p . }").ok());
  EXPECT_FALSE(ParseSparql("SELECT ?s WHERE { }").ok());
  EXPECT_FALSE(ParseSparql("SELECT ?s WHERE { ?s ?p ?o . } LIMIT x").ok());
  EXPECT_FALSE(
      ParseSparql("SELECT ?s WHERE { ?s ont:undeclared ?o . }").ok());
  EXPECT_FALSE(
      ParseSparql("SELECT ?s WHERE { ?s ?p ?o . "
                  "FILTER(geof:sfIntersects(?s, \"NOT WKT\")) }")
          .ok());
  // Errors carry positions.
  auto bad = ParseSparql("SELECT ?s WHERE { ?s ?p ?o . } garbage");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("offset"), std::string::npos);
}

TEST_F(SparqlTest, DatatypedLiteralWithPnameDatatype) {
  auto parsed = ParseSparql(R"q(
    PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
    SELECT ?s WHERE { ?s <http://x/ontology#temp> "25"^^xsd:integer . }
  )q");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  auto rows = ExecuteSparql(store_, R"q(
    PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
    SELECT ?s WHERE { ?s <http://x/ontology#temp> "25"^^xsd:integer . }
  )q");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

}  // namespace
}  // namespace exearth::strabon
