// On-demand elastic processing (Challenge A2: "processing resources will
// need to be on demand and scalable to ensure efficiency" — acquisitions
// arrive in bursts as satellites pass, but capacity is only needed while
// the backlog exists). A discrete-event simulation of a scene-processing
// queue with a reactive autoscaler, comparable against fixed provisioning
// by setting min_nodes == max_nodes.

#ifndef EXEARTH_PLATFORM_AUTOSCALE_H_
#define EXEARTH_PLATFORM_AUTOSCALE_H_

#include <cstdint>

#include "common/result.h"

namespace exearth::platform {

struct AutoscaleOptions {
  /// Mean scene arrivals per simulated hour; arrivals come in satellite-
  /// pass bursts (a pass every `pass_interval_hours` delivers a Poisson
  /// number of scenes at once).
  double scenes_per_hour = 20.0;
  double pass_interval_hours = 1.6;  // ~polar-orbit revisit
  /// Node-hours of processing per scene.
  double hours_per_scene = 0.25;
  int min_nodes = 1;
  int max_nodes = 64;
  /// Scale up when queued scenes exceed `scale_up_backlog` per node;
  /// scale down when a node has been idle for `scale_down_idle_hours`.
  double scale_up_backlog = 2.0;
  double scale_down_idle_hours = 1.0;
  /// Controller evaluation period.
  double control_interval_hours = 0.25;
  double horizon_hours = 48.0;
  uint64_t seed = 1;
};

struct AutoscaleReport {
  uint64_t scenes_processed = 0;
  double mean_latency_hours = 0.0;  // arrival -> completion
  double max_latency_hours = 0.0;
  double node_hours_used = 0.0;     // provisioned node time (the bill)
  int peak_nodes = 0;
  double mean_nodes = 0.0;
  uint64_t max_backlog = 0;
};

/// Runs the simulation. Fixed provisioning: min_nodes == max_nodes.
common::Result<AutoscaleReport> SimulateAutoscaling(
    const AutoscaleOptions& options);

}  // namespace exearth::platform

#endif  // EXEARTH_PLATFORM_AUTOSCALE_H_
