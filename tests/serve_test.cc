// Acceptance properties of the multi-tenant serving layer (serve::):
//
//   * cross-request batching is invisible: a batched SpatialSelect wave
//     returns byte-identical per-request results to unbatched mode, while
//     executing measurably fewer R-tree traversals than requests served;
//   * weighted fairness: a tenant flooding 10x another tenant's offered
//     load cannot push the victim's service position past the
//     deterministic WRR bound (W_total / w_victim) * k + W_total;
//   * quotas and admission shed with ResourceExhausted, tagged with which
//     stage shed (quota vs admission);
//   * the result cache never serves stale reads: a GeoStore ingest (or a
//     federated-epoch bump) invalidates affected entries at next lookup;
//   * the threaded Execute() path — concurrent callers joining in-flight
//     batch groups — agrees with ground truth (this is the suite's tsan
//     target, hence the `concurrency` ctest label).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "fed/federation.h"
#include "geo/geometry.h"
#include "rdf/query.h"
#include "serve/broker.h"
#include "serve/loadgen.h"
#include "strabon/geostore.h"

namespace {

namespace eea = exearth;
using eea::geo::Box;
using eea::geo::Geometry;
using eea::geo::Point;
using eea::serve::ArrivalMode;
using eea::serve::BrokerOptions;
using eea::serve::Offered;
using eea::serve::QueryBroker;
using eea::serve::Request;
using eea::serve::Response;
using eea::serve::ShedStage;
using eea::serve::TenantId;
using eea::serve::TenantOptions;

// A 10x10 grid of points on integer coordinates in [0, 10)^2.
std::unique_ptr<eea::strabon::GeoStore> GridStore() {
  auto store = std::make_unique<eea::strabon::GeoStore>();
  for (int x = 0; x < 10; ++x) {
    for (int y = 0; y < 10; ++y) {
      store->AddFeature(
          "http://x/p" + std::to_string(x) + "_" + std::to_string(y),
          Geometry(Point{static_cast<double>(x), static_cast<double>(y)}));
    }
  }
  EXPECT_TRUE(store->Build().ok());
  return store;
}

TenantOptions Unlimited() {
  TenantOptions t;
  t.quota_rps = 1e9;
  t.quota_burst = 1e6;
  return t;
}

uint64_t Traversals() {
  return eea::common::MetricsRegistry::Default()
      .GetCounter("strabon.geostore.select_traversals")
      ->value();
}

// --- batching ---------------------------------------------------------------

TEST(ServeBatching, BatchedWaveIdenticalToUnbatchedAndFewerTraversals) {
  auto store = GridStore();
  std::vector<Offered> wave;
  // 64 selects over 7 distinct boxes (some identical, some overlapping).
  for (int i = 0; i < 64; ++i) {
    double lo = static_cast<double>(i % 7);
    wave.push_back(
        {0, Request::SpatialSelect(Box{lo, 0.0, lo + 3.0, 9.0})});
  }
  auto run = [&](bool batching, uint64_t* traversals) {
    BrokerOptions opt;
    opt.enable_batching = batching;
    opt.cache_capacity = 0;  // isolate batching: every request executes
    QueryBroker broker(opt);
    broker.set_store(store.get());
    broker.RegisterTenant("a", Unlimited());
    uint64_t before = Traversals();
    auto responses = broker.ExecuteWave(wave, 1000);
    *traversals = Traversals() - before;
    return responses;
  };
  uint64_t batched_traversals = 0, unbatched_traversals = 0;
  auto batched = run(true, &batched_traversals);
  auto unbatched = run(false, &unbatched_traversals);
  ASSERT_EQ(batched.size(), wave.size());
  for (size_t i = 0; i < wave.size(); ++i) {
    ASSERT_TRUE(batched[i].status.ok()) << batched[i].status.ToString();
    ASSERT_TRUE(unbatched[i].status.ok());
    EXPECT_EQ(batched[i].ids, unbatched[i].ids) << "request " << i;
    EXPECT_EQ(batched[i].result_hash, unbatched[i].result_hash);
    EXPECT_GT(batched[i].batch_size, 1u);
  }
  // One shared traversal vs one per request.
  EXPECT_EQ(batched_traversals, 1u);
  EXPECT_EQ(unbatched_traversals, wave.size());
}

TEST(ServeBatching, GeoStoreBatchMatchesPerQuerySelect) {
  auto store = GridStore();
  std::vector<eea::strabon::BatchSelectQuery> queries;
  queries.push_back({Box{0, 0, 2, 2}, eea::strabon::SpatialRelation::kIntersects});
  queries.push_back({Box{5, 5, 9, 9}, eea::strabon::SpatialRelation::kIntersects});
  queries.push_back({Box{0, 0, 2, 2}, eea::strabon::SpatialRelation::kIntersects});
  queries.push_back({Box{-5, -5, -1, -1}, eea::strabon::SpatialRelation::kIntersects});
  auto batch = store->SpatialSelectBatch(queries);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto single = store->SpatialSelect(queries[i].box, queries[i].relation,
                                       /*use_index=*/true);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ((*batch)[i], *single) << "query " << i;
  }
  EXPECT_TRUE((*batch)[3].empty());  // off-world box matches nothing
}

// --- fairness ---------------------------------------------------------------

TEST(ServeFairness, FloodingTenantCannotStarveVictim) {
  auto store = GridStore();
  QueryBroker broker;
  broker.set_store(store.get());
  TenantOptions opts = Unlimited();
  TenantId hog = broker.RegisterTenant("hog", opts);
  TenantId victim = broker.RegisterTenant("victim", opts);
  const uint32_t w_total = 2;  // both weight 1
  // The hog offers 10x the victim's load, all ahead of the victim in
  // arrival order.
  std::vector<Offered> wave;
  for (int i = 0; i < 100; ++i) {
    double lo = static_cast<double>(i % 5);
    wave.push_back({hog, Request::SpatialSelect(Box{lo, 0, lo + 1, 9})});
  }
  for (int i = 0; i < 10; ++i) {
    double lo = static_cast<double>(i % 5);
    wave.push_back({victim, Request::SpatialSelect(Box{lo, 0, lo + 2, 9})});
  }
  auto responses = broker.ExecuteWave(wave, 1000);
  // WRR bound: the victim's k-th request (1-based) is serviced within
  // (W_total / w_victim) * k + W_total slots, no matter what the hog does.
  for (int k = 1; k <= 10; ++k) {
    const Response& r = responses[100 + (k - 1)];
    ASSERT_TRUE(r.status.ok());
    EXPECT_LE(r.service_slot, static_cast<uint64_t>(w_total * k + w_total))
        << "victim request " << k << " starved";
  }
}

TEST(ServeFairness, WeightGrantsProportionalSlots) {
  auto store = GridStore();
  QueryBroker broker;
  broker.set_store(store.get());
  TenantOptions heavy = Unlimited();
  heavy.weight = 3;
  TenantId a = broker.RegisterTenant("heavy", heavy);
  TenantId b = broker.RegisterTenant("light", Unlimited());
  std::vector<Offered> wave;
  for (int i = 0; i < 6; ++i) {
    wave.push_back({a, Request::SpatialSelect(Box{0, 0, 1, 1})});
  }
  for (int i = 0; i < 2; ++i) {
    wave.push_back({b, Request::SpatialSelect(Box{1, 1, 2, 2})});
  }
  auto responses = broker.ExecuteWave(wave, 1000);
  // Cycle 1: heavy x3 (slots 0-2), light x1 (slot 3); cycle 2: heavy x3,
  // light x1.
  EXPECT_EQ(responses[6].service_slot, 3u);  // light's 1st
  EXPECT_EQ(responses[7].service_slot, 7u);  // light's 2nd
}

// --- quota and admission shedding -------------------------------------------

TEST(ServeQuota, OverQuotaTenantShedsOthersUnaffected) {
  auto store = GridStore();
  QueryBroker broker;
  broker.set_store(store.get());
  TenantOptions small;
  small.quota_rps = 1000.0;
  small.quota_burst = 5.0;  // 5 tokens at t=0
  TenantId constrained = broker.RegisterTenant("constrained", small);
  TenantId roomy = broker.RegisterTenant("roomy", Unlimited());
  std::vector<Offered> wave;
  for (int i = 0; i < 12; ++i) {
    wave.push_back({constrained, Request::SpatialSelect(Box{0, 0, 3, 3})});
    wave.push_back({roomy, Request::SpatialSelect(Box{4, 4, 8, 8})});
  }
  auto responses = broker.ExecuteWave(wave, 0);
  int constrained_ok = 0, constrained_shed = 0;
  for (int i = 0; i < 24; ++i) {
    const Response& r = responses[i];
    if (wave[i].tenant == roomy) {
      EXPECT_TRUE(r.status.ok());
      EXPECT_EQ(r.shed, ShedStage::kNone);
      continue;
    }
    if (r.status.ok()) {
      ++constrained_ok;
    } else {
      EXPECT_TRUE(r.status.IsResourceExhausted());
      EXPECT_EQ(r.shed, ShedStage::kQuota);
      ++constrained_shed;
    }
  }
  EXPECT_EQ(constrained_ok, 5);  // exactly the burst allowance
  EXPECT_EQ(constrained_shed, 7);
  // Virtual time moves 10ms: 1000 rps refills 10 tokens.
  auto later = broker.ExecuteWave(
      {{constrained, Request::SpatialSelect(Box{0, 0, 3, 3})}}, 10000);
  EXPECT_TRUE(later[0].status.ok());
}

TEST(ServeAdmission, QueueDepthBoundsAdmittedRequests) {
  auto store = GridStore();
  BrokerOptions opt;
  opt.admission.max_depth = 16;
  opt.cache_capacity = 0;  // admitted requests hold their slot to the end
  QueryBroker broker(opt);
  broker.set_store(store.get());
  TenantId t = broker.RegisterTenant("t", Unlimited());
  std::vector<Offered> wave;
  for (int i = 0; i < 40; ++i) {
    double lo = static_cast<double>(i % 40) * 0.2;
    wave.push_back({t, Request::SpatialSelect(Box{lo, 0, lo + 0.1, 9})});
  }
  auto responses = broker.ExecuteWave(wave, 1000);
  int ok = 0, shed = 0;
  for (const Response& r : responses) {
    if (r.status.ok()) {
      ++ok;
    } else {
      EXPECT_TRUE(r.status.IsResourceExhausted());
      EXPECT_EQ(r.shed, ShedStage::kAdmission);
      ++shed;
    }
  }
  EXPECT_EQ(ok, 16);
  EXPECT_EQ(shed, 24);
}

// --- result cache -----------------------------------------------------------

TEST(ServeCache, HitsSkipExecutionAndIngestInvalidates) {
  auto store = GridStore();
  QueryBroker broker;
  broker.set_store(store.get());
  TenantId t = broker.RegisterTenant("t", Unlimited());
  const Request query = Request::SpatialSelect(Box{0.5, 0.5, 3.5, 3.5});

  auto first = broker.ExecuteWave({{t, query}}, 1000);
  ASSERT_TRUE(first[0].status.ok());
  EXPECT_FALSE(first[0].cache_hit);
  const size_t baseline = first[0].ids.size();
  ASSERT_GT(baseline, 0u);

  uint64_t before = Traversals();
  auto second = broker.ExecuteWave({{t, query}}, 2000);
  ASSERT_TRUE(second[0].status.ok());
  EXPECT_TRUE(second[0].cache_hit);
  EXPECT_EQ(second[0].ids, first[0].ids);
  EXPECT_EQ(Traversals(), before);  // served from cache, no traversal

  // Ingest a feature inside the cached box; the stale entry must not
  // survive the next lookup.
  store->AddFeature("http://x/new", Geometry(Point{1.25, 1.25}));
  ASSERT_TRUE(store->Build().ok());
  auto third = broker.ExecuteWave({{t, query}}, 3000);
  ASSERT_TRUE(third[0].status.ok());
  EXPECT_FALSE(third[0].cache_hit) << "stale read after ingest";
  EXPECT_EQ(third[0].ids.size(), baseline + 1);
}

TEST(ServeCache, TenantsNeverShareEntries) {
  auto store = GridStore();
  QueryBroker broker;
  broker.set_store(store.get());
  TenantId a = broker.RegisterTenant("a", Unlimited());
  TenantId b = broker.RegisterTenant("b", Unlimited());
  const Request query = Request::SpatialSelect(Box{0, 0, 4, 4});
  auto wave = broker.ExecuteWave({{a, query}, {b, query}}, 1000);
  ASSERT_TRUE(wave[0].status.ok());
  ASSERT_TRUE(wave[1].status.ok());
  EXPECT_FALSE(wave[1].cache_hit);  // b cannot hit a's fill
  auto again = broker.ExecuteWave({{a, query}, {b, query}}, 2000);
  EXPECT_TRUE(again[0].cache_hit);
  EXPECT_TRUE(again[1].cache_hit);
}

TEST(ServeCache, FederatedEpochBumpInvalidates) {
  eea::rdf::TripleStore crops;
  crops.Add(eea::rdf::Term::Iri("http://x/f1"),
            eea::rdf::Term::Iri("http://x/cropType"),
            eea::rdf::Term::Literal("rapeseed"));
  eea::fed::Endpoint endpoint("crops", std::move(crops));
  eea::fed::FederationEngine engine;
  engine.Register(&endpoint);

  QueryBroker broker;
  broker.set_federation(&engine);
  TenantId t = broker.RegisterTenant("t", Unlimited());
  eea::rdf::Query q;
  q.where.push_back(eea::rdf::TriplePattern{
      eea::rdf::PatternSlot::Var("f"),
      eea::rdf::PatternSlot::Iri("http://x/cropType"),
      eea::rdf::PatternSlot::Of(eea::rdf::Term::Literal("rapeseed"))});
  const Request query = Request::Federated(q);

  auto first = broker.ExecuteWave({{t, query}}, 1000);
  ASSERT_TRUE(first[0].status.ok()) << first[0].status.ToString();
  ASSERT_EQ(first[0].rows.size(), 1u);
  auto second = broker.ExecuteWave({{t, query}}, 2000);
  EXPECT_TRUE(second[0].cache_hit);

  broker.BumpFederatedEpoch();  // "endpoints ingested new data"
  auto third = broker.ExecuteWave({{t, query}}, 3000);
  ASSERT_TRUE(third[0].status.ok());
  EXPECT_FALSE(third[0].cache_hit);
}

// --- determinism ------------------------------------------------------------

TEST(ServeDeterminism, IdenticalWavesOnFreshBrokersAgree) {
  auto store = GridStore();
  auto build_wave = [] {
    std::vector<Offered> wave;
    for (int i = 0; i < 30; ++i) {
      double lo = static_cast<double>(i % 6);
      wave.push_back({static_cast<TenantId>(i % 3),
                      Request::SpatialSelect(Box{lo, 0, lo + 2, 9})});
    }
    return wave;
  };
  auto run = [&] {
    QueryBroker broker;
    broker.set_store(store.get());
    TenantOptions heavy = Unlimited();
    heavy.weight = 2;
    broker.RegisterTenant("t0", heavy);
    broker.RegisterTenant("t1", Unlimited());
    broker.RegisterTenant("t2", Unlimited());
    std::vector<Response> all;
    for (int w = 0; w < 3; ++w) {
      auto r = broker.ExecuteWave(build_wave(), 1000 * (w + 1));
      all.insert(all.end(), r.begin(), r.end());
    }
    return all;
  };
  auto a = run();
  auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].status.code(), b[i].status.code());
    EXPECT_EQ(a[i].ids, b[i].ids);
    EXPECT_EQ(a[i].result_hash, b[i].result_hash);
    EXPECT_EQ(a[i].service_slot, b[i].service_slot);
    EXPECT_EQ(a[i].cache_hit, b[i].cache_hit);
    EXPECT_EQ(a[i].batch_size, b[i].batch_size);
  }
}

TEST(ServeLoadGen, SameSeedSameCountersDifferentSeedDiverges) {
  auto store = GridStore();
  auto run = [&](uint64_t seed) {
    QueryBroker broker;
    broker.set_store(store.get());
    std::vector<TenantId> ids;
    for (int i = 0; i < 4; ++i) {
      TenantOptions t;
      t.quota_rps = 5000.0;
      t.quota_burst = 20.0;
      ids.push_back(broker.RegisterTenant("t" + std::to_string(i), t));
    }
    eea::serve::LoadGenOptions load;
    load.seed = seed;
    load.mode = ArrivalMode::kClosed;
    load.concurrency = 32;
    load.waves = 10;
    load.world = Box{0, 0, 10, 10};
    load.box_extent = 3.0;
    load.query_pool = 16;
    return eea::serve::RunLoadGen(&broker, ids, load);
  };
  auto a = run(7);
  auto b = run(7);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.quota_shed, b.quota_shed);
  EXPECT_EQ(a.cache_hits, b.cache_hits);
  EXPECT_EQ(a.batched_requests, b.batched_requests);
  EXPECT_EQ(a.result_hash, b.result_hash);
  auto c = run(8);
  EXPECT_NE(a.result_hash, c.result_hash);
}

// --- threaded Execute() path (the tsan target) ------------------------------

TEST(ServeThreaded, ConcurrentExecuteMatchesGroundTruth) {
  auto store = GridStore();
  BrokerOptions opt;
  opt.batch_window_us = 500;
  QueryBroker broker(opt);
  broker.set_store(store.get());
  TenantId t = broker.RegisterTenant("t", Unlimited());

  std::vector<Box> boxes;
  for (int i = 0; i < 4; ++i) {
    double lo = static_cast<double>(i * 2);
    boxes.push_back(Box{lo, 0, lo + 2.5, 9});
  }
  std::vector<std::vector<uint64_t>> truth;
  for (const Box& box : boxes) {
    truth.push_back(*store->SpatialSelect(
        box, eea::strabon::SpatialRelation::kIntersects, true));
  }

  constexpr int kThreads = 8;
  constexpr int kPerThread = 16;
  std::vector<std::thread> workers;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<int> failures(kThreads, 0);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int i = 0; i < kPerThread; ++i) {
        const size_t q = static_cast<size_t>((w + i) % boxes.size());
        Response r =
            broker.Execute(t, Request::SpatialSelect(boxes[q]));
        if (!r.status.ok()) {
          ++failures[w];
        } else if (r.ids != truth[q]) {
          ++mismatches[w];
        }
      }
    });
  }
  for (auto& th : workers) th.join();
  for (int w = 0; w < kThreads; ++w) {
    EXPECT_EQ(failures[w], 0) << "thread " << w;
    EXPECT_EQ(mismatches[w], 0) << "thread " << w;
  }
}

TEST(ServeThreaded, ParallelWaveUnitsMatchSerial) {
  auto store = GridStore();
  std::vector<Offered> wave;
  for (int i = 0; i < 48; ++i) {
    double lo = static_cast<double>(i % 12) * 0.75;
    wave.push_back({0, Request::SpatialSelect(Box{lo, 0, lo + 1.5, 9})});
  }
  auto run = [&](size_t threads) {
    BrokerOptions opt;
    opt.num_threads = threads;
    opt.max_batch = 8;  // force several independent units
    opt.cache_capacity = 0;
    QueryBroker broker(opt);
    broker.set_store(store.get());
    broker.RegisterTenant("t", Unlimited());
    return broker.ExecuteWave(wave, 1000);
  };
  auto serial = run(1);
  auto parallel = run(4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_TRUE(serial[i].status.ok());
    ASSERT_TRUE(parallel[i].status.ok());
    EXPECT_EQ(serial[i].ids, parallel[i].ids);
    EXPECT_EQ(serial[i].service_slot, parallel[i].service_slot);
  }
}

}  // namespace
