# Empty dependencies file for eea_catalog.
# This may be replaced when dependencies are built.
