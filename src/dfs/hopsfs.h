// HopsFS-style filesystem metadata: the namespace lives as rows in the
// partitioned transactional KV store (kv::KvStore standing in for NDB), and
// any number of stateless NameNode front-ends execute operations as
// transactions against it.
//
// Row layout (all values are small encoded structs):
//   i|<parent_id>|<name>  -> inode row (id, type, size, blocks, inline
//                            flag, and — for small files — the payload
//                            itself: the "Size Matters" single-row path)
//   b|<inode_id>|<index>  -> block descriptor + chunk (simulated datanode)
//
// Inode-id keyed parent/name rows give HopsFS's partition-affinity: all
// children of a directory resolve through single-row reads, and most
// operations touch few partitions.

#ifndef EXEARTH_DFS_HOPSFS_H_
#define EXEARTH_DFS_HOPSFS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "dfs/filesystem.h"
#include "kv/kvstore.h"
#include "kv/meta_store.h"

namespace exearth::dfs {

/// Shared metadata state: the metadata store plus the inode-id
/// allocator. One instance per cluster; create any number of NameNode
/// front-ends on it. The store is any kv::MetaStore — the embedded
/// single kv::KvStore (default and durable constructors) or an external
/// sharded/replicated store (repl::ReplicatedKvStore).
class HopsFsCluster {
 public:
  struct Options {
    int kv_partitions = 8;
    /// Files up to this size are stored inline in the metadata store.
    uint64_t inline_threshold_bytes = 64 * 1024;
    /// Simulated block size for the block path.
    uint64_t block_size_bytes = 1 * 1024 * 1024;
    /// Transparent retries on transaction conflicts (total attempts).
    int max_txn_retries = 16;
    /// Conflict-retry backoff: capped exponential with deterministic
    /// seeded jitter (see common::RetryPolicy). Tiny defaults — conflicts
    /// in the in-memory store resolve in microseconds.
    uint64_t retry_initial_backoff_us = 1;
    double retry_backoff_multiplier = 2.0;
    uint64_t retry_max_backoff_us = 1024;
    double retry_jitter = 0.5;
    uint64_t retry_seed = 1;
  };

  explicit HopsFsCluster(const Options& options);

  /// Durable cluster: attaches the metadata store to `pool` + `wal`
  /// (recovering any previous namespace, see kv::KvStore::AttachDurability)
  /// before creating the root inode. The inode-id allocator resumes past
  /// the highest recovered id, so ids never collide across restarts.
  /// `pool` and `wal` must outlive the cluster.
  HopsFsCluster(const Options& options, storage::BufferPool* pool,
                storage::Wal* wal);

  /// Cluster over an external metadata store (not owned; must outlive
  /// the cluster) — e.g. a repl::ReplicatedKvStore. The root inode is
  /// created only on a fresh namespace, and the inode-id allocator
  /// resumes past every recovered id, so a recovered replicated store
  /// works transparently. `id_shards` partitions the inode-id space
  /// into disjoint ranges allocated round-robin (pass the store's shard
  /// count so id allocation scales with the shards; 1 keeps the classic
  /// sequential 2, 3, 4, ... numbering).
  HopsFsCluster(const Options& options, kv::MetaStore* store,
                int id_shards = 1);

  kv::MetaStore& store() { return *meta_; }
  const Options& options() const { return options_; }

  /// Inode ids are allocated from per-shard ranges (shard s owns
  /// [2 + s * 2^40, 2 + (s+1) * 2^40)), round-robin across shards, so
  /// id allocation never serializes on one counter and resumed clusters
  /// can extend each range independently.
  int64_t AllocateInodeId() {
    const size_t shard =
        shard_next_id_.size() == 1
            ? 0
            : id_rr_.fetch_add(1, std::memory_order_relaxed) %
                  shard_next_id_.size();
    return shard_next_id_[shard]->fetch_add(1, std::memory_order_relaxed);
  }

  /// First inode id of an id shard's range (1 is the root, 0 the
  /// virtual parent; ranges start at 2).
  static int64_t IdShardBase(int shard) {
    return 2 + static_cast<int64_t>(shard) * kIdShardRange;
  }
  static constexpr int64_t kIdShardRange = int64_t{1} << 40;

  /// Number of conflict-retries performed across all namenodes.
  uint64_t txn_retries() const {
    return txn_retries_.load(std::memory_order_relaxed);
  }
  void CountRetry() { txn_retries_.fetch_add(1, std::memory_order_relaxed); }

 private:
  /// Sets up `id_shards` range allocators, then advances each past the
  /// highest id already present in its range (recovered namespaces).
  void InitIdAllocator(int id_shards);

  Options options_;
  // Owned backing store for the embedded constructors; null when the
  // cluster runs over an external MetaStore.
  std::unique_ptr<kv::KvStore> owned_store_;
  std::unique_ptr<kv::KvMetaStore> owned_adapter_;
  kv::MetaStore* meta_ = nullptr;
  std::vector<std::unique_ptr<std::atomic<int64_t>>> shard_next_id_;
  std::atomic<uint64_t> id_rr_{0};
  std::atomic<uint64_t> txn_retries_{0};
};

/// A stateless namenode front-end. Thread-compatible: use one per thread
/// (they share the cluster, which is thread-safe).
class HopsFsNameNode : public FileSystem {
 public:
  explicit HopsFsNameNode(HopsFsCluster* cluster) : cluster_(cluster) {}

  common::Status Mkdir(const std::string& path) override;
  common::Status Create(const std::string& path, uint64_t size_bytes,
                        const std::string& data) override;
  common::Result<FileInfo> GetFileInfo(const std::string& path) override;
  common::Result<std::vector<std::string>> List(
      const std::string& path) override;
  common::Status Remove(const std::string& path) override;
  common::Result<std::string> ReadFile(const std::string& path) override;
  /// Rename is O(1) regardless of subtree size: children are keyed by their
  /// parent's inode id, so moving a directory re-links one row (the HopsFS
  /// subtree-operations property).
  common::Status Rename(const std::string& from,
                        const std::string& to) override;
  common::Status RemoveRecursive(const std::string& path) override;
  common::Result<uint64_t> DiskUsage(const std::string& path) override;

  /// Readiness probe for the admin /healthz endpoint: a live metadata
  /// transaction (root listing) against the backing KV store.
  common::Status CheckReady() { return List("/").status(); }

 private:
  // Resolves the parent directory of `path`; returns its inode id and the
  // final path component via `leaf`.
  common::Result<int64_t> ResolveParent(kv::MetaTransaction* txn,
                                        const std::string& path,
                                        std::string* leaf);

  HopsFsCluster* cluster_;
};

}  // namespace exearth::dfs

#endif  // EXEARTH_DFS_HOPSFS_H_
