#include <gtest/gtest.h>

#include <vector>

#include "sim/cluster.h"
#include "sim/event_queue.h"

namespace exearth::sim {
namespace {

Cluster MakeCluster(int nodes) {
  NodeSpec node;
  node.gpus = 1;
  node.gpu.flops = 1e12;
  NetworkSpec net;
  net.latency_s = 1e-4;
  net.bandwidth_bytes_s = 1e9;
  return Cluster(nodes, node, net);
}

TEST(ClusterTest, Basics) {
  Cluster c = MakeCluster(4);
  EXPECT_EQ(c.num_nodes(), 4);
  EXPECT_EQ(c.total_gpus(), 4);
}

TEST(ClusterTest, PointToPoint) {
  Cluster c = MakeCluster(2);
  // 1 GB at 1 GB/s + 100 us latency.
  EXPECT_NEAR(c.PointToPointTime(1000000000ULL), 1.0001, 1e-6);
  EXPECT_NEAR(c.PointToPointTime(0), 1e-4, 1e-12);
}

TEST(ClusterTest, RingAllReduceSingleWorkerFree) {
  Cluster c = MakeCluster(8);
  EXPECT_EQ(c.RingAllReduceTime(1 << 20, 1), 0.0);
}

TEST(ClusterTest, RingAllReduceBandwidthTermSaturates) {
  Cluster c = MakeCluster(64);
  const uint64_t n = 100 * 1000 * 1000;  // 100 MB
  double t8 = c.RingAllReduceTime(n, 8);
  double t64 = c.RingAllReduceTime(n, 64);
  // The bandwidth term approaches 2n/B regardless of p; latency adds a
  // little. Ratio should be close to 1, not 8.
  EXPECT_LT(t64 / t8, 1.3);
  // And both are >= the 2n(p-1)/(pB) lower bound.
  EXPECT_GE(t8, 2.0 * n * 7.0 / (8.0 * 1e9));
}

TEST(ClusterTest, RingAllReduceLatencyGrowsLinearly) {
  Cluster c = MakeCluster(64);
  // Tiny message: latency-dominated, ~2(p-1) alpha.
  double t4 = c.RingAllReduceTime(64, 4);
  double t32 = c.RingAllReduceTime(64, 32);
  EXPECT_NEAR(t32 / t4, 31.0 / 3.0, 0.5);
}

TEST(ClusterTest, ParameterServerCongestsWithWorkers) {
  Cluster c = MakeCluster(32);
  const uint64_t n = 10 * 1000 * 1000;
  double t1s = c.ParameterServerTime(n, 16, 1);
  double t4s = c.ParameterServerTime(n, 16, 4);
  // Sharding over 4 servers divides the bottleneck link load by ~4.
  EXPECT_NEAR(t1s / t4s, 4.0, 0.3);
  // Doubling workers with fixed servers roughly doubles time.
  double w8 = c.ParameterServerTime(n, 8, 2);
  double w16 = c.ParameterServerTime(n, 16, 2);
  EXPECT_NEAR(w16 / w8, 2.0, 0.1);
}

TEST(ClusterTest, AllReduceBeatsParameterServerAtScale) {
  // The published crossover: with many workers and one/few servers, the PS
  // central link congests while the ring stays near-constant.
  Cluster c = MakeCluster(64);
  const uint64_t grads = 25 * 1000 * 1000;  // 25 MB of gradients
  double ring = c.RingAllReduceTime(grads, 32);
  double ps = c.ParameterServerTime(grads, 32, 1);
  EXPECT_LT(ring, ps);
}

TEST(ClusterTest, BroadcastLogRounds) {
  Cluster c = MakeCluster(16);
  EXPECT_EQ(c.BroadcastTime(1000, 1), 0.0);
  double t2 = c.BroadcastTime(1000, 2);
  double t16 = c.BroadcastTime(1000, 16);
  EXPECT_NEAR(t16 / t2, 4.0, 1e-9);  // log2(16)/log2(2)
}

TEST(ClusterTest, GpuComputeTime) {
  Cluster c = MakeCluster(1);
  EXPECT_NEAR(c.GpuComputeTime(2e12), 2.0, 1e-12);
}

// --- EventQueue -------------------------------------------------------------

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(3.0, [&] { order.push_back(3); });
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(2.0, [&] { order.push_back(2); });
  double end = q.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(end, 3.0);
  EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueueTest, FifoAtEqualTimes) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.ScheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  q.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, HandlersCanScheduleMore) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    if (count < 10) q.ScheduleAfter(1.0, tick);
  };
  q.ScheduleAt(0.0, tick);
  double end = q.Run();
  EXPECT_EQ(count, 10);
  EXPECT_DOUBLE_EQ(end, 9.0);
}

TEST(EventQueueTest, RunUntilStopsAndResumes) {
  EventQueue q;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    q.ScheduleAt(t, [&fired, t] { fired.push_back(t); });
  }
  double reached = q.RunUntil(2.5);
  EXPECT_DOUBLE_EQ(reached, 2.5);
  EXPECT_EQ(fired.size(), 2u);
  EXPECT_EQ(q.pending(), 2u);
  q.Run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(EventQueueTest, ScheduleAfterUsesNow) {
  EventQueue q;
  double when = -1;
  q.ScheduleAt(5.0, [&] {
    q.ScheduleAfter(2.0, [&] { when = q.now(); });
  });
  q.Run();
  EXPECT_DOUBLE_EQ(when, 7.0);
}

}  // namespace
}  // namespace exearth::sim
