#!/usr/bin/env python3
"""Validates Prometheus text exposition (format 0.0.4) from stdin or a file.

Checks, in decreasing order of "scrapers actually break on this":

  * every sample line parses as  name[{labels}] value  with a legal
    metric name ([a-zA-Z_:][a-zA-Z0-9_:]*) and a parseable value
    (decimal, NaN, +Inf, -Inf);
  * label syntax: legal label names, double-quoted values, balanced
    braces, backslash escapes limited to \\\\ \\" \\n;
  * at most one # TYPE line per family, with a known type, appearing
    before the family's first sample;
  * no duplicate (name, labels) sample;
  * histogram invariants per family: _bucket series carry an le label,
    cumulative counts are monotone in le order, an le="+Inf" bucket
    exists and equals _count;
  * families named with --require are present with at least one sample.

Exit status 0 when clean, 1 with one "path:line: message" per problem —
shaped for CI (the admin-smoke job pipes `curl /metrics` through this).

Usage:
  check_prometheus.py [file] [--require FAMILY ...]
"""

import argparse
import math
import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# One label: name="value" with the three legal escapes.
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\[\\"n])*)"')
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
# Suffixes that belong to a histogram/summary family base name.
FAMILY_SUFFIXES = ("_bucket", "_sum", "_count")


def parse_value(text):
    if text in ("+Inf", "Inf"):
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        return None


def family_of(name):
    for suffix in FAMILY_SUFFIXES:
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_labels(raw, complain):
    """Parses the inside of {...}; returns a labels dict or None."""
    labels = {}
    pos = 0
    while pos < len(raw):
        m = LABEL_RE.match(raw, pos)
        if m is None:
            complain("bad label syntax at %r" % raw[pos:])
            return None
        name, value = m.group(1), m.group(2)
        if name in labels:
            complain("duplicate label %r" % name)
            return None
        labels[name] = value
        pos = m.end()
        if pos < len(raw):
            if raw[pos] != ",":
                complain("expected ',' between labels at %r" % raw[pos:])
                return None
            pos += 1
    return labels


def main():
    parser = argparse.ArgumentParser(
        description="Prometheus text exposition 0.0.4 checker")
    parser.add_argument("file", nargs="?", default="-",
                        help="exposition file (default: stdin)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="FAMILY",
                        help="fail unless this family has >= 1 sample "
                             "(repeatable; prefix match with a trailing *)")
    args = parser.parse_args()

    if args.file == "-":
        lines = sys.stdin.read().splitlines()
        path = "<stdin>"
    else:
        with open(args.file, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
        path = args.file

    problems = []
    types = {}          # family -> declared type
    sampled = set()     # families with >= 1 sample before their TYPE line
    seen_samples = {}   # (name, frozen labels) -> first line number
    samples = []        # (line_no, name, labels, value)

    for line_no, line in enumerate(lines, 1):
        def complain(msg, line_no=line_no):
            problems.append("%s:%d: %s" % (path, line_no, msg))

        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) < 4:
                    complain("malformed TYPE line")
                    continue
                family, mtype = parts[2], parts[3].strip()
                if not METRIC_NAME_RE.match(family):
                    complain("illegal family name %r in TYPE line" % family)
                if mtype not in TYPES:
                    complain("unknown type %r for %s" % (mtype, family))
                if family in types:
                    complain("duplicate TYPE line for %s" % family)
                if family in sampled:
                    complain("TYPE line for %s after its first sample"
                             % family)
                types[family] = mtype
            continue  # other comments are free-form

        # Sample line: name[{labels}] value [timestamp]
        m = re.match(r"^([^\s{]+)(\{(.*)\})?\s+(\S+)(\s+-?\d+)?\s*$", line)
        if m is None:
            complain("unparseable sample line: %r" % line)
            continue
        name, labels_raw, value_raw = m.group(1), m.group(3), m.group(4)
        if not METRIC_NAME_RE.match(name):
            complain("illegal metric name %r" % name)
            continue
        labels = {}
        if labels_raw is not None:
            labels = parse_labels(labels_raw, complain)
            if labels is None:
                continue
        value = parse_value(value_raw)
        if value is None:
            complain("unparseable value %r for %s" % (value_raw, name))
            continue
        key = (name, tuple(sorted(labels.items())))
        if key in seen_samples:
            complain("duplicate sample for %s (first at line %d)"
                     % (name, seen_samples[key]))
        else:
            seen_samples[key] = line_no
        sampled.add(family_of(name))
        samples.append((line_no, name, labels, value))

    # Histogram invariants, per (family, non-le label set).
    for family, mtype in types.items():
        if mtype != "histogram":
            continue
        series = {}  # non-le labels -> {"buckets": [(le, v, line)], ...}
        for line_no, name, labels, value in samples:
            if family_of(name) != family:
                continue
            rest = tuple(sorted((k, v) for k, v in labels.items()
                                if k != "le"))
            entry = series.setdefault(rest, {"buckets": [], "count": None})
            if name == family + "_bucket":
                if "le" not in labels:
                    problems.append("%s:%d: %s_bucket without le label"
                                    % (path, line_no, family))
                    continue
                le = parse_value(labels["le"])
                if le is None:
                    problems.append("%s:%d: unparseable le=%r"
                                    % (path, line_no, labels["le"]))
                    continue
                entry["buckets"].append((le, value, line_no))
            elif name == family + "_count":
                entry["count"] = (value, line_no)
        for rest, entry in series.items():
            where = ("{%s}" % ",".join("%s=%r" % kv for kv in rest)
                     if rest else "")
            buckets = sorted(entry["buckets"])
            prev = None
            for le, value, line_no in buckets:
                if prev is not None and value < prev:
                    problems.append(
                        "%s:%d: %s_bucket%s not cumulative at le=%g"
                        % (path, line_no, family, where, le))
                prev = value
            if not any(math.isinf(le) and le > 0 for le, _, _ in buckets):
                problems.append("%s: %s%s missing le=\"+Inf\" bucket"
                                % (path, family, where))
            elif entry["count"] is not None:
                inf_v = max(v for le, v, _ in buckets
                            if math.isinf(le) and le > 0)
                if inf_v != entry["count"][0]:
                    problems.append(
                        "%s:%d: %s%s le=\"+Inf\" bucket %g != _count %g"
                        % (path, entry["count"][1], family, where, inf_v,
                           entry["count"][0]))

    for want in args.require:
        if want.endswith("*"):
            hit = any(f.startswith(want[:-1]) for f in sampled)
        else:
            hit = want in sampled
        if not hit:
            problems.append("%s: required family %r has no samples"
                            % (path, want))

    for p in problems:
        print(p, file=sys.stderr)
    if problems:
        print("%s: %d problem(s) in %d sample(s), %d familie(s)"
              % (path, len(problems), len(samples), len(sampled)),
              file=sys.stderr)
        return 1
    print("%s: OK — %d samples across %d families, %d typed"
          % (path, len(samples), len(sampled), len(types)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
