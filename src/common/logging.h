// Minimal leveled logging and CHECK macros.
//
// Logging goes to stderr. The level can be raised globally to silence
// benchmarks; CHECK failures always abort.

#ifndef EXEARTH_COMMON_LOGGING_H_
#define EXEARTH_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace exearth::common {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level actually emitted. Defaults to kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when a log statement is compiled out.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace exearth::common

#define EEA_LOG(level)                                             \
  ::exearth::common::internal_logging::LogMessage(                 \
      ::exearth::common::LogLevel::k##level, __FILE__, __LINE__)   \
      .stream()

#define EEA_CHECK(cond)                                                 \
  if (!(cond))                                                          \
  ::exearth::common::internal_logging::LogMessage(                      \
      ::exearth::common::LogLevel::kError, __FILE__, __LINE__, true)    \
          .stream()                                                     \
      << "Check failed: " #cond " "

#define EEA_CHECK_OK(expr)                                              \
  do {                                                                  \
    ::exearth::common::Status _eea_chk = (expr);                        \
    EEA_CHECK(_eea_chk.ok()) << _eea_chk.ToString();                    \
  } while (false)

#define EEA_DCHECK(cond) EEA_CHECK(cond)

#endif  // EXEARTH_COMMON_LOGGING_H_
