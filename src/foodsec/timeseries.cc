#include "foodsec/timeseries.h"

#include <algorithm>

#include "common/logging.h"

namespace exearth::foodsec {

using common::Result;
using common::Status;

int FillGaps(std::vector<float>* values, const std::vector<bool>& valid) {
  EEA_CHECK(values->size() == valid.size());
  const int n = static_cast<int>(values->size());
  int filled = 0;
  int prev_valid = -1;
  int i = 0;
  while (i < n) {
    if (valid[static_cast<size_t>(i)]) {
      prev_valid = i;
      ++i;
      continue;
    }
    // Find the end of this gap.
    int j = i;
    while (j < n && !valid[static_cast<size_t>(j)]) ++j;
    if (prev_valid < 0 && j >= n) return 0;  // nothing valid at all
    for (int k = i; k < j; ++k) {
      float value;
      if (prev_valid < 0) {
        value = (*values)[static_cast<size_t>(j)];
      } else if (j >= n) {
        value = (*values)[static_cast<size_t>(prev_valid)];
      } else {
        const float a = (*values)[static_cast<size_t>(prev_valid)];
        const float b = (*values)[static_cast<size_t>(j)];
        const float t = static_cast<float>(k - prev_valid) /
                        static_cast<float>(j - prev_valid);
        value = a + t * (b - a);
      }
      (*values)[static_cast<size_t>(k)] = value;
      ++filled;
    }
    i = j;
  }
  return filled;
}

std::vector<float> MovingAverage(const std::vector<float>& values,
                                 int window) {
  if (window <= 1 || values.empty()) return values;
  EEA_CHECK(window % 2 == 1) << "window must be odd";
  const int n = static_cast<int>(values.size());
  const int half = window / 2;
  std::vector<float> out(values.size());
  for (int i = 0; i < n; ++i) {
    const int lo = std::max(0, i - half);
    const int hi = std::min(n - 1, i + half);
    double sum = 0;
    for (int k = lo; k <= hi; ++k) sum += values[static_cast<size_t>(k)];
    out[static_cast<size_t>(i)] =
        static_cast<float>(sum / static_cast<double>(hi - lo + 1));
  }
  return out;
}

Result<std::vector<raster::Raster>> GapFilledNdviStack(
    const std::vector<raster::SentinelProduct>& scenes, int smooth_window) {
  if (scenes.empty()) return Status::InvalidArgument("no scenes");
  const int w = scenes[0].raster.width();
  const int h = scenes[0].raster.height();
  for (const auto& p : scenes) {
    if (p.raster.bands() != raster::kS2Bands) {
      return Status::InvalidArgument("NDVI stack needs 13-band S2 scenes");
    }
    if (p.raster.width() != w || p.raster.height() != h) {
      return Status::InvalidArgument("scenes have mismatched grids");
    }
  }
  if (smooth_window > 1 && smooth_window % 2 == 0) {
    return Status::InvalidArgument("smooth_window must be odd");
  }
  constexpr int kRed = 3;
  constexpr int kNir = 7;
  std::vector<raster::Raster> stack;
  stack.reserve(scenes.size());
  for (const auto& p : scenes) {
    stack.emplace_back(w, h, 1, p.raster.transform());
  }
  std::vector<float> series(scenes.size());
  std::vector<bool> valid(scenes.size());
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      for (size_t t = 0; t < scenes.size(); ++t) {
        const auto& p = scenes[t];
        const bool cloudy =
            !p.cloud_mask.empty() && p.cloud_mask.at(x, y) != 0;
        valid[t] = !cloudy;
        if (cloudy) {
          series[t] = 0.0f;
        } else {
          float red = p.raster.Get(kRed, x, y);
          float nir = p.raster.Get(kNir, x, y);
          float denom = nir + red;
          series[t] = denom == 0.0f ? 0.0f : (nir - red) / denom;
        }
      }
      FillGaps(&series, valid);
      std::vector<float> final_series =
          smooth_window > 1 ? MovingAverage(series, smooth_window) : series;
      for (size_t t = 0; t < scenes.size(); ++t) {
        stack[t].Set(0, x, y, final_series[t]);
      }
    }
  }
  return stack;
}

}  // namespace exearth::foodsec
