// Scale-out distributed deep learning (paper Challenge C1/C5): train the
// EuroSAT-style CNN data-parallel on a simulated GPU cluster, comparing
// ring all-reduce vs parameter-server synchronization and showing the
// large-minibatch recipe (linear LR scaling + warmup), plus a HOPS-style
// parallel hyperparameter search.
//
// Build & run:  ./build/examples/distributed_training

#include <cstdio>

#include "ml/distributed.h"
#include "ml/network.h"
#include "raster/dataset.h"

namespace eea = exearth;

int main() {
  // EuroSAT-shaped dataset (downscaled for a laptop run).
  eea::raster::EurosatOptions data_opt;
  data_opt.num_samples = 4000;
  data_opt.patch_size = 8;
  eea::raster::Dataset dataset = eea::raster::MakeEurosatLike(data_opt, 3);
  dataset.Standardize();
  std::printf("dataset: %zu samples, %d bands, %dx%d patches, %d classes\n",
              dataset.size(), dataset.channels, dataset.patch_height,
              dataset.patch_width, dataset.num_classes);

  // A 32-node GPU cluster (10 TFLOP/s effective per GPU, 10 GbE).
  eea::sim::NodeSpec node;
  node.gpu.flops = 10e12;
  eea::sim::NetworkSpec net;
  eea::sim::Cluster cluster(32, node, net);

  std::printf("\n%-20s %8s %12s %12s %10s\n", "strategy", "workers",
              "epoch sim-s", "comm sim-s", "accuracy");
  for (auto strategy : {eea::ml::SyncStrategy::kRingAllReduce,
                        eea::ml::SyncStrategy::kParameterServer}) {
    for (int workers : {1, 4, 16}) {
      eea::raster::Dataset copy = dataset;
      eea::ml::Network cnn = eea::ml::BuildCnn(13, 8, 8, 8, 10, 11);
      eea::ml::DistributedOptions opt;
      opt.num_workers = workers;
      opt.per_worker_batch = 32;
      opt.strategy = strategy;
      opt.base_lr = 0.02;
      opt.warmup_epochs = 1;
      opt.as_images = true;
      eea::ml::DataParallelTrainer trainer(&cnn, &cluster, opt);
      auto history = trainer.Fit(&copy, 2);
      auto cm = trainer.Evaluate(copy);
      std::printf("%-20s %8d %12.3f %12.3f %10.3f\n",
                  eea::ml::SyncStrategyName(strategy), workers,
                  history.back().sim_seconds(),
                  history.back().sim_comm_seconds, cm.Accuracy());
    }
  }

  // HOPS-style parallel experiments: a small learning-rate sweep.
  std::printf("\nparallel hyperparameter search (HOPS experiments):\n");
  std::vector<eea::ml::Trial> trials;
  for (double lr : {0.001, 0.01, 0.05, 0.2}) {
    trials.push_back(eea::ml::Trial{.learning_rate = lr, .batch_size = 32,
                                    .width = 8});
  }
  auto run_trial = [&](const eea::ml::Trial& t) {
    eea::raster::Dataset copy = dataset;
    eea::ml::Network cnn = eea::ml::BuildCnn(13, 8, 8, t.width, 10, 5);
    eea::ml::DistributedOptions opt;
    opt.num_workers = 4;
    opt.per_worker_batch = t.batch_size;
    opt.base_lr = t.learning_rate;
    opt.linear_scaling = false;
    opt.as_images = true;
    eea::ml::DataParallelTrainer trainer(&cnn, &cluster, opt);
    trainer.Fit(&copy, 1);
    eea::ml::TrialResult result;
    result.trial = t;
    result.accuracy = trainer.Evaluate(copy).Accuracy();
    result.sim_seconds = trainer.total_sim_seconds();
    return result;
  };
  auto search = eea::ml::RunParallelExperiments(trials, 8, run_trial);
  for (const auto& t : search.trials) {
    std::printf("  lr=%.3f -> accuracy %.3f (sim %.2f s)\n",
                t.trial.learning_rate, t.accuracy, t.sim_seconds);
  }
  std::printf("best: lr=%.3f; makespan parallel %.2f s vs serial %.2f s\n",
              search.trials[static_cast<size_t>(search.best_index)]
                  .trial.learning_rate,
              search.parallel_makespan_seconds,
              search.serial_makespan_seconds);
  return 0;
}
