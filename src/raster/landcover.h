// Thematic class nomenclatures and synthetic class-map generation.
//
// Three nomenclatures are used across the stack:
//  * LandCoverClass — the 10 EuroSAT land-use/land-cover classes (C2);
//  * CropType      — crop classes for the Food Security application (A1);
//  * IceClass      — WMO Sea Ice Nomenclature stages of development (A2).
//
// Class maps are generated with a seeded Voronoi tessellation, which yields
// the patchy parcel/floe structure real scenes have — the property that
// matters for classifier training and for field-boundary extraction.

#ifndef EXEARTH_RASTER_LANDCOVER_H_
#define EXEARTH_RASTER_LANDCOVER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "raster/grid.h"

namespace exearth::raster {

/// EuroSAT's 10 land-use / land-cover classes (Helber et al. 2018).
enum class LandCoverClass : uint8_t {
  kAnnualCrop = 0,
  kForest,
  kHerbaceousVegetation,
  kHighway,
  kIndustrial,
  kPasture,
  kPermanentCrop,
  kResidential,
  kRiver,
  kSeaLake,
};
inline constexpr int kNumLandCoverClasses = 10;
const char* LandCoverClassName(LandCoverClass c);

/// Crop types for A1 (field-level classification and Kc coefficients).
enum class CropType : uint8_t {
  kWheat = 0,
  kMaize,
  kBarley,
  kRapeseed,
  kSugarBeet,
  kPotato,
  kGrassland,
  kFallow,
};
inline constexpr int kNumCropTypes = 8;
const char* CropTypeName(CropType c);

/// WMO Sea Ice Nomenclature stage-of-development classes for A2.
enum class IceClass : uint8_t {
  kOpenWater = 0,
  kNewIce,        // < 10 cm
  kYoungIce,      // 10-30 cm
  kFirstYearIce,  // 30-200 cm
  kOldIce,        // survived at least one melt season
};
inline constexpr int kNumIceClasses = 5;
const char* IceClassName(IceClass c);
/// WMO "stage of development" code (SIGRID-3 SA codes, simplified).
int IceClassWmoCode(IceClass c);

/// A class map: per-pixel label grid (values index into one of the
/// nomenclatures above; the map does not know which).
using ClassMap = Grid<uint8_t>;

/// Options for synthetic class-map generation.
struct ClassMapOptions {
  int width = 256;
  int height = 256;
  int num_classes = kNumLandCoverClasses;
  /// Number of Voronoi seed patches; more seeds -> smaller parcels.
  int num_patches = 150;
  /// Optional per-class prior weights (size num_classes). Empty = uniform.
  std::vector<double> class_weights;
};

/// Generates a patchy class map: `num_patches` Voronoi seeds, each assigned
/// a class drawn from the prior; pixels take the class of the nearest seed.
ClassMap GenerateClassMap(const ClassMapOptions& options, common::Rng* rng);

/// Per-class pixel counts; histogram.size() == num_classes.
std::vector<int64_t> ClassHistogram(const ClassMap& map, int num_classes);

/// Fraction of pixels where `a` and `b` agree (maps must have equal size).
double Agreement(const ClassMap& a, const ClassMap& b);

}  // namespace exearth::raster

#endif  // EXEARTH_RASTER_LANDCOVER_H_
