# Empty compiler generated dependencies file for platform_tour.
# This may be replaced when dependencies are built.
