// Fixed-size page primitives shared by the storage managers, the buffer
// pool and the paged consumers (the checkpointed KV store and the on-disk
// frozen R-tree).
//
// Every page is exactly kPageSize (4 KiB) bytes: a 16-byte header — CRC32
// checksum, the page's own id (catches misdirected reads), and the LSN of
// the last logged change — followed by kPagePayloadSize bytes of payload.
// The checksum covers everything after the CRC field, so a torn or
// bit-rotted page fails verification on read instead of silently
// corrupting a recovery.
//
// All multi-byte fields in page headers and page-resident structures are
// encoded little-endian through the Load*/Store* helpers below, never by
// memcpy of in-memory structs: the on-disk format (pinned by the golden
// fixture in tests/storage_recovery_test.cc) must not depend on host
// endianness or struct padding.

#ifndef EXEARTH_STORAGE_PAGE_H_
#define EXEARTH_STORAGE_PAGE_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace exearth::storage {

/// Index of a page inside a storage file. Page 0 is the superblock and is
/// never handed out by AllocatePage.
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0xffffffffu;

inline constexpr size_t kPageSize = 4096;
inline constexpr size_t kPageHeaderSize = 16;
inline constexpr size_t kPagePayloadSize = kPageSize - kPageHeaderSize;

// Page header byte offsets (little-endian fields).
inline constexpr size_t kPageCrcOffset = 0;   // u32, CRC32 of bytes [4, 4096)
inline constexpr size_t kPageIdOffset = 4;    // u32, the page's own id
inline constexpr size_t kPageLsnOffset = 8;   // u64, LSN of last change

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, reflected) over `len` bytes.
/// Crc32("123456789") == 0xCBF43926.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

// --- Little-endian codec helpers --------------------------------------------

inline void StoreU16(char* p, uint16_t v) {
  p[0] = static_cast<char>(v & 0xff);
  p[1] = static_cast<char>((v >> 8) & 0xff);
}
inline void StoreU32(char* p, uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}
inline void StoreU64(char* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}
inline uint16_t LoadU16(const char* p) {
  return static_cast<uint16_t>(static_cast<uint8_t>(p[0]) |
                               (static_cast<uint8_t>(p[1]) << 8));
}
inline uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}
inline uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(p[i]);
  return v;
}
inline void StoreF64(char* p, double v) {
  StoreU64(p, std::bit_cast<uint64_t>(v));
}
inline double LoadF64(const char* p) {
  return std::bit_cast<double>(LoadU64(p));
}

/// Stamps `id` and `lsn` into the header of the page image `page` and
/// computes the checksum over bytes [4, kPageSize).
inline void SealPage(char* page, PageId id, uint64_t lsn) {
  StoreU32(page + kPageIdOffset, id);
  StoreU64(page + kPageLsnOffset, lsn);
  StoreU32(page + kPageCrcOffset,
           Crc32(page + kPageIdOffset, kPageSize - kPageIdOffset));
}

/// True when the checksum of the page image matches and the header's page
/// id equals `expected_id` (a misdirected read fails here, not later).
inline bool VerifyPage(const char* page, PageId expected_id) {
  const uint32_t want = LoadU32(page + kPageCrcOffset);
  const uint32_t got = Crc32(page + kPageIdOffset, kPageSize - kPageIdOffset);
  return want == got && LoadU32(page + kPageIdOffset) == expected_id;
}

/// The LSN stamped into a page image's header.
inline uint64_t PageLsn(const char* page) {
  return LoadU64(page + kPageLsnOffset);
}

}  // namespace exearth::storage

#endif  // EXEARTH_STORAGE_PAGE_H_
