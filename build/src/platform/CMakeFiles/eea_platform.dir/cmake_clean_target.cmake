file(REMOVE_RECURSE
  "libeea_platform.a"
)
