// E9 — multi-core meta-blocking (paper Challenge C3, ref [19]): JedAI's
// meta-blocking prunes the comparison space of big linked-data entity
// resolution. Series:
//   (a) comparisons + wall time: naive all-pairs vs token blocking vs
//       meta-blocking, growing dataset sizes;
//   (b) meta-blocking thread scaling (the "multi-core" in the title);
//   (c) weighting-scheme ablation (CBS vs Jaccard).
// Recall/precision are reported as counters so the speedup is shown not to
// come from dropping matches.

#include <benchmark/benchmark.h>

#include <map>

#include "link/entity_resolution.h"

namespace {

namespace eea = exearth;
using eea::link::BlockingOptions;
using eea::link::ErDataset;
using eea::link::ResolutionResult;

ErDataset& CachedDataset(int records) {
  static std::map<int, ErDataset>* cache = new std::map<int, ErDataset>();
  auto it = cache->find(records);
  if (it == cache->end()) {
    eea::link::ErWorkloadOptions opt;
    opt.num_records = records;
    opt.duplicate_probability = 0.5;
    opt.noise = 0.15;
    opt.seed = 23;
    it = cache->emplace(records, eea::link::MakeDirtyErDataset(opt)).first;
  }
  return it->second;
}

void Report(benchmark::State& state, const ErDataset& ds,
            const ResolutionResult& result) {
  auto metrics = eea::link::ComputePairMetrics(result.matches,
                                               ds.true_matches);
  state.counters["comparisons"] = static_cast<double>(result.comparisons);
  state.counters["recall"] = metrics.recall;
  state.counters["precision"] = metrics.precision;
}

void BM_NaivePairwise(benchmark::State& state) {
  ErDataset& ds = CachedDataset(static_cast<int>(state.range(0)));
  auto match = eea::link::JaccardMatcher(0.45);
  ResolutionResult result;
  for (auto _ : state) {
    result = eea::link::ResolveNaive(ds.entities, match);
    benchmark::DoNotOptimize(result.matches.data());
  }
  Report(state, ds, result);
}

void BM_TokenBlocking(benchmark::State& state) {
  ErDataset& ds = CachedDataset(static_cast<int>(state.range(0)));
  auto match = eea::link::JaccardMatcher(0.45);
  ResolutionResult result;
  for (auto _ : state) {
    result = eea::link::ResolveWithTokenBlocking(ds.entities, match,
                                                 BlockingOptions{});
    benchmark::DoNotOptimize(result.matches.data());
  }
  Report(state, ds, result);
}

void BM_MetaBlocking(benchmark::State& state) {
  ErDataset& ds = CachedDataset(static_cast<int>(state.range(0)));
  const int threads = static_cast<int>(state.range(1));
  const bool jaccard_scheme = state.range(2) != 0;
  auto match = eea::link::JaccardMatcher(0.45);
  BlockingOptions opt;
  opt.num_threads = threads;
  opt.scheme = jaccard_scheme ? eea::link::WeightScheme::kJaccard
                              : eea::link::WeightScheme::kCbs;
  ResolutionResult result;
  for (auto _ : state) {
    result = eea::link::ResolveWithMetaBlocking(ds.entities, match, opt);
    benchmark::DoNotOptimize(result.matches.data());
  }
  Report(state, ds, result);
}

}  // namespace

BENCHMARK(BM_NaivePairwise)
    ->ArgNames({"records"})
    ->Arg(1000)
    ->Arg(3000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_TokenBlocking)
    ->ArgNames({"records"})
    ->Arg(1000)
    ->Arg(3000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_MetaBlocking)
    ->ArgNames({"records", "threads", "jaccard"})
    ->Args({1000, 1, 0})
    ->Args({3000, 1, 0})
    ->Args({10000, 1, 0})
    ->Args({10000, 2, 0})
    ->Args({10000, 4, 0})
    ->Args({10000, 1, 1})
    ->Unit(benchmark::kMillisecond);

// main() comes from bench_main.cc (adds --smoke and the
// metrics-snapshot JSON dump).
