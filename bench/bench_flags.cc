#include "bench_flags.h"

#include <cerrno>
#include <cstdlib>

#include "common/fault.h"
#include "geo/simd.h"

namespace exearth::bench {

namespace {

int g_threads = 0;
uint64_t g_deadline_us = 0;
uint64_t g_seed = 42;
uint64_t g_page_cache_mb = 0;

// Strict integer parse: the whole value must be digits (an optional
// leading '-' is accepted so "-3" reports "out of range", not "not a
// number"). Overflowing values (ERANGE) are rejected rather than
// silently clamped to LONG_MAX/LONG_MIN.
bool ParseInt(const std::string& value, long* out) {
  if (value.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE) return false;
  *out = parsed;
  return true;
}

bool ParseUint64(const std::string& value, unsigned long long* out) {
  if (value.empty() || value[0] == '-') return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long parsed = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE) return false;
  *out = parsed;
  return true;
}

bool ParseDouble(const std::string& value, double* out) {
  if (value.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double parsed = std::strtod(value.c_str(), &end);
  if (end == value.c_str() || *end != '\0' || errno == ERANGE) return false;
  *out = parsed;
  return true;
}

// Splits "--name=value"; returns true if arg is exactly "--name=...".
bool FlagValue(const std::string& arg, const char* name, std::string* value) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

}  // namespace

int ThreadsFlag() { return g_threads; }
void SetThreadsFlag(int n) { g_threads = n; }

uint64_t DeadlineUsFlag() { return g_deadline_us; }
void SetDeadlineUsFlag(uint64_t us) { g_deadline_us = us; }

uint64_t SeedFlag() { return g_seed; }
void SetSeedFlag(uint64_t seed) { g_seed = seed; }

uint64_t PageCacheMbFlag() { return g_page_cache_mb; }
void SetPageCacheMbFlag(uint64_t mb) { g_page_cache_mb = mb; }

std::string BenchUsage(const char* argv0) {
  return std::string("usage: ") + argv0 +
         " [--smoke] [--metrics_out=PATH] [--trace_out=PATH]\n"
         "       [--threads=N] [--slowlog=N] [--slowlog_threshold_us=T]\n"
         "       [--benchmark_* flags passed to google-benchmark]\n"
         "\n"
         "  --smoke                   minimal measurement time, one "
         "repetition\n"
         "  --metrics_out=PATH        metrics snapshot destination\n"
         "  --trace_out=PATH          record spans, write Chrome trace "
         "JSON\n"
         "  --threads=N               override worker threads for "
         "parallel rows (N >= 1)\n"
         "  --slowlog=N               keep the N worst requests (N >= 1)\n"
         "  --slowlog_threshold_us=T  only log requests >= T us (T >= "
         "0)\n"
         "  --fault_spec=SPEC         program the fault injector "
         "(common/fault.h grammar)\n"
         "  --fault_seed=N            injector seed for deterministic "
         "fault sequences (N >= 0)\n"
         "  --deadline_us=N           per-query deadline for rows that "
         "honor it (N >= 1; 0 = off)\n"
         "  --seed=N                  master seed for seeded workload "
         "rows (default 42)\n"
         "  --simd=scalar|avx2        pin the geo batch-kernel variant "
         "(default: CPU dispatch)\n"
         "  --admin_port=N            serve admin endpoints on "
         "127.0.0.1:N during the run (0 = ephemeral)\n"
         "  --metrics_interval_ms=N   append windowed metric snapshots "
         "to <metrics_out>l every N ms\n"
         "  --page_cache_mb=N         buffer-pool size for the storage "
         "rows (MiB, N >= 1; default 4)\n";
}

bool ParseBenchFlags(int argc, char** argv, BenchFlags* flags,
                     std::vector<std::string>* passthrough,
                     std::string* error) {
  passthrough->emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--smoke") {
      flags->smoke = true;
    } else if (FlagValue(arg, "metrics_out", &value)) {
      if (value.empty()) {
        *error = "--metrics_out needs a path";
        return false;
      }
      flags->metrics_out = value;
    } else if (FlagValue(arg, "trace_out", &value)) {
      if (value.empty()) {
        *error = "--trace_out needs a path";
        return false;
      }
      flags->trace_out = value;
    } else if (FlagValue(arg, "threads", &value)) {
      long n = 0;
      if (!ParseInt(value, &n)) {
        *error = "--threads=" + value + ": not an integer";
        return false;
      }
      if (n < 1) {
        *error = "--threads=" + value + ": want N >= 1";
        return false;
      }
      flags->threads = static_cast<int>(n);
    } else if (FlagValue(arg, "slowlog", &value)) {
      long n = 0;
      if (!ParseInt(value, &n)) {
        *error = "--slowlog=" + value + ": not an integer";
        return false;
      }
      if (n < 1) {
        *error = "--slowlog=" + value + ": want N >= 1";
        return false;
      }
      flags->slowlog = static_cast<int>(n);
    } else if (FlagValue(arg, "slowlog_threshold_us", &value)) {
      double t = 0.0;
      if (!ParseDouble(value, &t) || t < 0.0) {
        *error = "--slowlog_threshold_us=" + value + ": want T >= 0";
        return false;
      }
      flags->slowlog_threshold_us = t;
    } else if (FlagValue(arg, "fault_spec", &value)) {
      if (value.empty()) {
        *error = "--fault_spec needs a spec (see common/fault.h)";
        return false;
      }
      // Validate the grammar now, against a scratch injector, so a typo
      // fails at the command line instead of after the benchmark suite
      // has already started.
      common::FaultInjector scratch;
      common::Status parsed = scratch.ProgramSpec(value);
      if (!parsed.ok()) {
        *error = "--fault_spec=" + value + ": " + parsed.message();
        return false;
      }
      flags->fault_spec = value;
    } else if (FlagValue(arg, "fault_seed", &value)) {
      unsigned long long n = 0;
      if (!ParseUint64(value, &n)) {
        *error = "--fault_seed=" + value +
                 ": not an unsigned integer (negative seeds are invalid)";
        return false;
      }
      flags->fault_seed = static_cast<uint64_t>(n);
    } else if (FlagValue(arg, "deadline_us", &value)) {
      unsigned long long n = 0;
      if (!ParseUint64(value, &n) || n == 0) {
        *error = "--deadline_us=" + value + ": want an integer >= 1";
        return false;
      }
      flags->deadline_us = static_cast<uint64_t>(n);
    } else if (FlagValue(arg, "seed", &value)) {
      unsigned long long n = 0;
      if (!ParseUint64(value, &n)) {
        *error = "--seed=" + value +
                 ": not an unsigned integer (negative seeds are invalid)";
        return false;
      }
      flags->seed = static_cast<uint64_t>(n);
    } else if (FlagValue(arg, "simd", &value)) {
      geo::simd::KernelVariant variant;
      if (value == "scalar") {
        variant = geo::simd::KernelVariant::kScalar;
      } else if (value == "avx2") {
        variant = geo::simd::KernelVariant::kAvx2;
      } else {
        *error = "--simd=" + value + ": want scalar or avx2";
        return false;
      }
      if (!geo::simd::VariantAvailable(variant)) {
        *error = "--simd=" + value +
                 ": variant not available in this build/CPU (build with "
                 "-DEXEARTH_SIMD=native or avx2 on x86-64)";
        return false;
      }
      geo::simd::SetVariant(variant);
      flags->simd = value;
    } else if (FlagValue(arg, "admin_port", &value)) {
      long n = 0;
      if (!ParseInt(value, &n) || n < 0 || n > 65535) {
        *error = "--admin_port=" + value + ": want a port in [0, 65535]";
        return false;
      }
      flags->admin_port = static_cast<int>(n);
    } else if (FlagValue(arg, "metrics_interval_ms", &value)) {
      long n = 0;
      if (!ParseInt(value, &n) || n < 1) {
        *error = "--metrics_interval_ms=" + value + ": want N >= 1";
        return false;
      }
      flags->metrics_interval_ms = static_cast<int64_t>(n);
    } else if (FlagValue(arg, "page_cache_mb", &value)) {
      unsigned long long n = 0;
      if (!ParseUint64(value, &n) || n == 0) {
        *error = "--page_cache_mb=" + value + ": want an integer >= 1";
        return false;
      }
      flags->page_cache_mb = static_cast<uint64_t>(n);
    } else if (arg.rfind("--benchmark_", 0) == 0 || arg.rfind("--", 0) != 0) {
      // google-benchmark's own flags (and any non-flag argument) pass
      // through untouched.
      passthrough->push_back(arg);
    } else {
      *error = "unknown flag: " + arg;
      return false;
    }
  }
  SetThreadsFlag(flags->threads);
  SetDeadlineUsFlag(flags->deadline_us);
  SetSeedFlag(flags->seed);
  SetPageCacheMbFlag(flags->page_cache_mb);
  return true;
}

}  // namespace exearth::bench
