file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_multipolygon.dir/bench_e2_multipolygon.cc.o"
  "CMakeFiles/bench_e2_multipolygon.dir/bench_e2_multipolygon.cc.o.d"
  "bench_e2_multipolygon"
  "bench_e2_multipolygon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_multipolygon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
