file(REMOVE_RECURSE
  "CMakeFiles/polar_test.dir/polar_test.cc.o"
  "CMakeFiles/polar_test.dir/polar_test.cc.o.d"
  "polar_test"
  "polar_test.pdb"
  "polar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
