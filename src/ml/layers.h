// Neural-network layers with explicit forward/backward passes.
//
// Conventions: batches are the leading dimension. Dense layers take [N, D];
// convolutional layers take NCHW ([N, C, H, W]). Each layer caches what it
// needs for the backward pass, so a layer instance handles one in-flight
// batch at a time.

#ifndef EXEARTH_ML_LAYERS_H_
#define EXEARTH_ML_LAYERS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "ml/tensor.h"

namespace exearth::ml {

/// Base layer: Forward caches activations, Backward consumes the output
/// gradient and accumulates parameter gradients.
class Layer {
 public:
  virtual ~Layer() = default;

  virtual Tensor Forward(const Tensor& input, bool training) = 0;
  virtual Tensor Backward(const Tensor& grad_output) = 0;

  /// Trainable parameters and their gradient buffers (same order/shapes).
  virtual std::vector<Tensor*> Params() { return {}; }
  virtual std::vector<Tensor*> Grads() { return {}; }

  virtual std::string name() const = 0;

  /// FLOPs for a forward pass of one sample (backward counted as 2x by the
  /// cost model in distributed training).
  virtual double FlopsPerSample() const { return 0.0; }
};

/// Fully connected: y = x W + b, x: [N, in], W: [in, out].
class DenseLayer : public Layer {
 public:
  DenseLayer(int in_features, int out_features, common::Rng* rng);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Tensor*> Params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> Grads() override { return {&dweight_, &dbias_}; }
  std::string name() const override { return "Dense"; }
  double FlopsPerSample() const override {
    return 2.0 * in_features_ * out_features_;
  }

 private:
  int in_features_;
  int out_features_;
  Tensor weight_, bias_, dweight_, dbias_;
  Tensor input_cache_;
};

/// Elementwise max(0, x).
class ReluLayer : public Layer {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "ReLU"; }

 private:
  Tensor input_cache_;
};

/// 2-D convolution, stride 1, symmetric zero padding. Input NCHW.
class Conv2dLayer : public Layer {
 public:
  Conv2dLayer(int in_channels, int out_channels, int kernel, int padding,
              common::Rng* rng);

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::vector<Tensor*> Params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> Grads() override { return {&dweight_, &dbias_}; }
  std::string name() const override { return "Conv2d"; }
  double FlopsPerSample() const override;

 private:
  int in_channels_, out_channels_, kernel_, padding_;
  Tensor weight_;  // [Cout, Cin, k, k]
  Tensor bias_;    // [Cout]
  Tensor dweight_, dbias_;
  Tensor input_cache_;
  int out_h_ = 0, out_w_ = 0;  // set by Forward; used for flops estimate
};

/// 2x2 max pooling, stride 2. Input NCHW with even H and W.
class MaxPool2dLayer : public Layer {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "MaxPool2d"; }

 private:
  Tensor input_cache_;
  std::vector<int> argmax_;  // flat index of each pooled max
  std::vector<int> in_shape_;
};

/// Collapses [N, ...] to [N, D].
class FlattenLayer : public Layer {
 public:
  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "Flatten"; }

 private:
  std::vector<int> in_shape_;
};

/// Inverted dropout: active only in training.
class DropoutLayer : public Layer {
 public:
  DropoutLayer(double rate, uint64_t seed) : rate_(rate), rng_(seed) {}

  Tensor Forward(const Tensor& input, bool training) override;
  Tensor Backward(const Tensor& grad_output) override;
  std::string name() const override { return "Dropout"; }

 private:
  double rate_;
  common::Rng rng_;
  std::vector<float> mask_;
};

}  // namespace exearth::ml

#endif  // EXEARTH_ML_LAYERS_H_
