file(REMOVE_RECURSE
  "CMakeFiles/eea_sim.dir/cluster.cc.o"
  "CMakeFiles/eea_sim.dir/cluster.cc.o.d"
  "CMakeFiles/eea_sim.dir/event_queue.cc.o"
  "CMakeFiles/eea_sim.dir/event_queue.cc.o.d"
  "libeea_sim.a"
  "libeea_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eea_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
