// Write-ahead redo log for the durable KV store (ROADMAP item 1).
//
// The Wal is an append-only file of CRC-framed, LSN-stamped records. A
// transaction appends its Put/Delete records followed by one Commit
// record, then syncs; only after the sync returns is the transaction
// acknowledged. Recovery replays the log in order and surfaces *only*
// transactions whose Commit record survived — a crash mid-append leaves a
// torn tail that Open() detects by CRC and truncates, so an interrupted
// commit vanishes atomically.
//
// Record frame (little-endian):
//   [u32 crc][u32 len][payload: u64 lsn, u32 type, u64 txn_id,
//                      u32 klen, key bytes, u32 vlen, value bytes]
// crc covers [len..payload]; len is the payload length. Types: kPut,
// kDelete (vlen 0), kCommit, kCheckpoint. A kCheckpoint record carries
// the checkpoint LSN in txn_id; replay skips anything at or below it.
//
// File header: "EEAWAL01" magic + u32 format version, validated on Open.
//
// Group fsync: concurrent Sync() callers elect a leader that issues one
// fsync covering every byte appended before it started; followers wait on
// a condition variable until their offset is covered. This batches the
// dominant cost of small transactions.
//
// Checkpointing: after a consumer persists a checkpoint (pages + meta
// flip), Checkpoint(lsn) rewrites the log to contain just a kCheckpoint
// marker, bounding recovery work. The rewrite goes through a temp file +
// rename so a crash during checkpointing leaves either log intact.
//
// Fault points (common/fault.h): `storage.wal.append` tears the record
// being written (half its bytes reach the file) and poisons the Wal;
// `storage.wal.fsync` truncates back to the last synced offset (modeling
// page-cache loss on power failure) and poisons the Wal. A poisoned Wal
// fails all further appends — the process is "crashed" until reopen.

#ifndef EXEARTH_STORAGE_WAL_H_
#define EXEARTH_STORAGE_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace exearth::storage {

inline constexpr uint32_t kWalFormatVersion = 1;

enum class WalRecordType : uint32_t {
  kPut = 1,
  kDelete = 2,
  kCommit = 3,
  kCheckpoint = 4,
};

struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kPut;
  uint64_t txn_id = 0;
  std::string key;
  std::string value;
};

struct WalStats {
  uint64_t records_appended = 0;
  uint64_t syncs = 0;        // fsync system calls issued
  uint64_t sync_requests = 0;  // Sync() calls (>= syncs with group commit)
  uint64_t bytes_appended = 0;
  uint64_t torn_tail_bytes = 0;  // discarded by Open()
};

class Wal {
 public:
  /// Opens (or creates) the log at `path`. An existing log is scanned to
  /// the first torn/corrupt record; the tail from that point is truncated
  /// away and the next LSN continues after the last intact record.
  static common::Result<std::unique_ptr<Wal>> Open(const std::string& path);

  /// Encodes one record as a wire frame exactly as Append writes it —
  /// the unit replication channels ship between replicas.
  static std::string EncodeRecordFrame(const WalRecord& rec);

  /// Scans `frames` (a concatenation of frames, no file header) and
  /// decodes its longest valid prefix into `records` (if non-null).
  /// `*valid_bytes` (if non-null) receives the byte length of that
  /// prefix. Returns OK when the whole buffer decodes cleanly, or the
  /// first frame's decode error otherwise. This is the single frame
  /// scanner: Open()'s torn-tail truncation, Replay(), and replication
  /// followers verifying shipped batches all go through it, so a
  /// follower rejects exactly what a restarted primary would truncate.
  static common::Status ValidatePrefix(std::string_view frames,
                                       size_t* valid_bytes,
                                       std::vector<WalRecord>* records);

  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one record, assigning it the next LSN (returned). Buffered
  /// in the OS until Sync. Fault point `storage.wal.append`.
  common::Result<uint64_t> Append(WalRecordType type, uint64_t txn_id,
                                  const std::string& key,
                                  const std::string& value);

  /// Persists every record appended before this call (group fsync).
  /// Fault point `storage.wal.fsync`.
  common::Status Sync();

  /// Replays all intact records in LSN order. Records with
  /// lsn <= the latest kCheckpoint record's LSN are skipped.
  common::Status Replay(
      const std::function<common::Status(const WalRecord&)>& fn);

  /// Truncates the log to a single kCheckpoint marker carrying
  /// `checkpoint_lsn`. Crash-safe via temp file + rename.
  common::Status Checkpoint(uint64_t checkpoint_lsn);

  uint64_t next_lsn() const;
  uint64_t checkpoint_lsn() const;
  WalStats stats() const;
  const std::string& path() const { return path_; }

 private:
  Wal(std::string path, int fd);

  common::Status ScanExistingLocked();
  common::Status AppendHeaderLocked();

  std::string path_;
  int fd_ = -1;

  mutable std::mutex mu_;
  std::condition_variable sync_cv_;
  uint64_t next_lsn_ = 1;
  uint64_t checkpoint_lsn_ = 0;
  uint64_t appended_off_ = 0;  // file size with every appended record
  uint64_t synced_off_ = 0;    // prefix guaranteed on disk
  bool sync_in_flight_ = false;
  bool poisoned_ = false;  // injected crash: all further IO refused
  WalStats stats_;
};

}  // namespace exearth::storage

#endif  // EXEARTH_STORAGE_WAL_H_
