// Silk-style discovery of spatial relations between two geometry sets
// (Challenge C3, experiment E10): R-tree join vs nested-loop baseline.

#ifndef EXEARTH_LINK_SPATIAL_LINKS_H_
#define EXEARTH_LINK_SPATIAL_LINKS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "geo/geometry.h"

namespace exearth::link {

enum class SpatialLinkRelation {
  kIntersects,
  kContains,       // a contains b
  kWithinDistance, // dist(a, b) <= distance
};

const char* SpatialLinkRelationName(SpatialLinkRelation r);

struct SpatialLinkOptions {
  SpatialLinkRelation relation = SpatialLinkRelation::kIntersects;
  double distance = 0.0;  // for kWithinDistance
  /// Index side B in an R-tree and probe with A (vs full nested loop).
  bool use_index = true;
  /// Probe/scan loop workers; <= 1 runs inline. Results are identical and
  /// deterministically ordered regardless of thread count.
  size_t num_threads = 1;
};

struct SpatialLinkResult {
  /// (index into a, index into b) pairs satisfying the relation.
  std::vector<std::pair<size_t, size_t>> links;
  uint64_t candidate_pairs = 0;     // pairs surviving the blocking step
  uint64_t exact_tests = 0;         // pairs that paid the exact predicate
  /// Indexed-path candidates discarded by the batched envelope screen
  /// (geo::simd kernels, 16 envelopes per call) before the exact test.
  uint64_t envelope_rejects = 0;
};

/// Finds all (a_i, b_j) satisfying the relation. Indexed and nested-loop
/// paths return identical links.
SpatialLinkResult DiscoverSpatialLinks(const std::vector<geo::Geometry>& a,
                                       const std::vector<geo::Geometry>& b,
                                       const SpatialLinkOptions& options);

}  // namespace exearth::link

#endif  // EXEARTH_LINK_SPATIAL_LINKS_H_
