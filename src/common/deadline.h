// Request-scoped deadlines and cooperative cancellation.
//
// Every request entering the system may carry a RequestContext: an
// absolute Deadline plus a CancelToken. The context lives in a
// thread-local (exactly like TraceContext, see common/trace.h) and is
// captured at ThreadPool::Submit and re-installed on the worker, so
// chunked refinement, fan-out calls, and retry loops all observe the
// deadline of the request that spawned them without any plumbing through
// function signatures.
//
// Long-running loops are expected to poll at *chunk* granularity:
//
//   RequestContext ctx = CurrentRequestContext();
//   for (...) {
//     if ((i % kStride) == 0) EEA_RETURN_NOT_OK(ctx.Check("geostore"));
//     ...
//   }
//
// Check() returns Cancelled if the token fired, DeadlineExceeded if the
// deadline passed, OK otherwise. The poll costs one relaxed atomic load
// plus (when a deadline is set) one steady_clock read — cheap enough for
// every-64-items strides, far too expensive for every item.
//
// Deadlines nest: ScopedRequestContext installs the *tighter* of the new
// and enclosing deadline; a scope without its own cancel token inherits
// the enclosing one.

#ifndef EXEARTH_COMMON_DEADLINE_H_
#define EXEARTH_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>

#include "common/status.h"

namespace exearth::common {

/// Absolute point in steady time after which a request is doomed. A
/// default-constructed Deadline is infinite (never expires).
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;

  /// A deadline `us` microseconds from now. Zero or negative values give
  /// an already-expired deadline (useful for tests and for "fail fast").
  static Deadline FromNowUs(int64_t us) {
    return Deadline(Clock::now() + std::chrono::microseconds(us));
  }
  static Deadline Infinite() { return Deadline(); }
  static Deadline At(Clock::time_point tp) { return Deadline(tp); }

  bool is_infinite() const { return !finite_; }
  bool expired() const { return finite_ && Clock::now() >= when_; }

  /// Microseconds until expiry; negative once expired; INT64_MAX when
  /// infinite.
  int64_t remaining_us() const {
    if (!finite_) return std::numeric_limits<int64_t>::max();
    return std::chrono::duration_cast<std::chrono::microseconds>(when_ -
                                                                 Clock::now())
        .count();
  }

  Clock::time_point when() const { return when_; }

  /// The earlier of two deadlines (infinite loses to any finite one).
  static Deadline Min(const Deadline& a, const Deadline& b) {
    if (a.is_infinite()) return b;
    if (b.is_infinite()) return a;
    return Deadline(a.when_ < b.when_ ? a.when_ : b.when_);
  }

 private:
  explicit Deadline(Clock::time_point tp) : finite_(true), when_(tp) {}
  bool finite_ = false;
  Clock::time_point when_{};
};

/// Shared cancellation flag. The source side (CancelSource) flips it; any
/// number of token copies observe it with a relaxed load. Copying a token
/// is a shared_ptr copy; a default-constructed token can never fire.
class CancelToken {
 public:
  CancelToken() = default;

  bool cancelled() const {
    return flag_ && flag_->load(std::memory_order_relaxed);
  }
  /// True when this token is connected to a source (and could fire).
  bool valid() const { return flag_ != nullptr; }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Owner side of a cancellation flag. Thread-safe; Cancel() is sticky.
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }
  CancelToken token() const { return CancelToken(flag_); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// The deadline + cancel token a piece of work runs under. Carried in a
/// thread-local beside TraceContext; captured by ThreadPool::Submit.
struct RequestContext {
  Deadline deadline;
  CancelToken cancel;

  /// OK, or the reason this request must stop: Cancelled wins over
  /// DeadlineExceeded (an explicit caller signal beats the clock).
  /// `who` names the polling subsystem in the error message.
  Status Check(const char* who) const;

  /// True when polling can never fail — lets hot loops skip the poll.
  bool unconstrained() const {
    return deadline.is_infinite() && !cancel.valid();
  }
};

/// The calling thread's current request context (unconstrained when none
/// was installed).
RequestContext CurrentRequestContext();

/// RAII installation of a request context for the current scope.
///
/// Nesting semantics: the installed deadline is the tighter of `ctx`'s
/// and the enclosing scope's — work only gets *more* time-constrained as
/// it flows down the stack. A scope with its own cancel token replaces
/// the enclosing token; one without inherits it. ThreadPool workers adopt
/// the captured context through this same class (the worker's enclosing
/// context is unconstrained, so the merge is a no-op there).
class ScopedRequestContext {
 public:
  explicit ScopedRequestContext(const RequestContext& ctx);
  ScopedRequestContext(const ScopedRequestContext&) = delete;
  ScopedRequestContext& operator=(const ScopedRequestContext&) = delete;
  ~ScopedRequestContext();

 private:
  RequestContext saved_;
};

}  // namespace exearth::common

#endif  // EXEARTH_COMMON_DEADLINE_H_
