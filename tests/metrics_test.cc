#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace exearth::common {
namespace {

// --- Counter / Gauge ---------------------------------------------------

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(GaugeTest, SetAddMax) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.Set(3.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.5);
  g.Add(-1.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
  g.Max(10.0);
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
  g.Max(5.0);  // smaller value does not lower a high-water mark
  EXPECT_DOUBLE_EQ(g.value(), 10.0);
}

// --- Histogram ---------------------------------------------------------

TEST(HistogramTest, EmptyHistogram) {
  Histogram h({1.0, 10.0, 100.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(HistogramTest, SingleSample) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(7.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.sum(), 7.0);
  // All percentiles interpolate within the bucket, clamped to [min, max],
  // so a single observation reports itself exactly.
  EXPECT_DOUBLE_EQ(h.Percentile(0), 7.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 7.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 7.0);
}

TEST(HistogramTest, BucketAssignment) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // bucket 0: (-inf, 1]
  h.Observe(1.0);    // bucket 0: bounds are inclusive upper edges
  h.Observe(5.0);    // bucket 1
  h.Observe(50.0);   // bucket 2
  h.Observe(500.0);  // overflow bucket
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 500.0);
}

TEST(HistogramTest, PercentileInterpolation) {
  Histogram h({10.0, 20.0, 30.0});
  // 10 samples uniformly in (10, 20] -> all in bucket 1. Interpolation
  // runs over [max(bucket_lower, observed_min), bucket_upper] = [11, 20].
  for (int i = 1; i <= 10; ++i) h.Observe(10.0 + i);
  // p50 -> rank 5 of 10: 11 + 5/10 * (20 - 11) = 15.5.
  EXPECT_NEAR(h.Percentile(50), 15.5, 1e-9);
  EXPECT_NEAR(h.Percentile(100), 20.0, 1e-9);
  // p10 -> rank 1: 11 + 1/10 * 9 = 11.9.
  EXPECT_NEAR(h.Percentile(10), 11.9, 1e-9);
}

TEST(HistogramTest, PercentileAcrossBuckets) {
  Histogram h({10.0, 20.0});
  for (int i = 0; i < 9; ++i) h.Observe(5.0);   // bucket 0
  h.Observe(15.0);                              // bucket 1
  // First 9 ranks land in bucket 0; rank 10 (p100) in bucket 1.
  EXPECT_LE(h.Percentile(50), 10.0);
  EXPECT_NEAR(h.Percentile(100), 15.0, 1e-9);
}

TEST(HistogramTest, OverflowBucketClampsToMax) {
  Histogram h({1.0, 2.0});
  h.Observe(1000.0);
  h.Observe(2000.0);
  // Both samples overflow; interpolation runs up to the observed max, not
  // to infinity.
  EXPECT_GE(h.Percentile(99), 2.0);
  EXPECT_LE(h.Percentile(99), 2000.0);
  EXPECT_NEAR(h.Percentile(100), 2000.0, 1e-9);
}

TEST(HistogramTest, ExponentialBounds) {
  auto b = Histogram::ExponentialBounds(1.0, 2.0, 4);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[3], 8.0);
  auto latency = Histogram::DefaultLatencyBoundsUs();
  EXPECT_EQ(latency.size(), 24u);
  EXPECT_DOUBLE_EQ(latency.front(), 1.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h({1.0, 10.0});
  h.Observe(5.0);
  h.Observe(50.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 0.0);
  EXPECT_EQ(h.bucket_count(0), 0u);
  EXPECT_EQ(h.bucket_count(2), 0u);
}

// --- Registry ----------------------------------------------------------

TEST(MetricsRegistryTest, SameNameSamePointer) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("x.count");
  Counter* b = reg.GetCounter("x.count");
  EXPECT_EQ(a, b);
  EXPECT_NE(static_cast<void*>(a), static_cast<void*>(reg.GetGauge("x.count")));
  Histogram* h1 = reg.GetHistogram("x.lat", {1.0, 2.0});
  Histogram* h2 = reg.GetHistogram("x.lat");  // bounds ignored after first
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->bounds().size(), 2u);
}

TEST(MetricsRegistryTest, JsonSnapshot) {
  MetricsRegistry reg;
  reg.GetCounter("requests")->Increment(3);
  reg.GetGauge("depth")->Set(2.0);
  Histogram* h = reg.GetHistogram("lat_us", {1.0, 10.0});
  h->Observe(5.0);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"requests\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"depth\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"lat_us\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"+Inf\""), std::string::npos) << json;
  // Balanced braces/brackets — a cheap well-formedness check.
  int depth = 0;
  for (char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(MetricsRegistryTest, ResetZeroesInPlace) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("n");
  c->Increment(7);
  reg.Reset();
  EXPECT_EQ(c->value(), 0u);          // same pointer, zeroed value
  EXPECT_EQ(reg.GetCounter("n"), c);  // registration survives
}

TEST(MetricsRegistryTest, JsonEscaping) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// --- Concurrency -------------------------------------------------------

TEST(MetricsConcurrencyTest, CounterIncrementsFromThreadPool) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("concurrent");
  constexpr size_t kTasks = 64;
  constexpr uint64_t kPerTask = 1000;
  ThreadPool pool(8);
  pool.ParallelFor(kTasks, [&](size_t) {
    for (uint64_t i = 0; i < kPerTask; ++i) c->Increment();
  });
  EXPECT_EQ(c->value(), kTasks * kPerTask);
}

TEST(MetricsConcurrencyTest, HistogramObservationsFromThreadPool) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("concurrent_lat", {10.0, 100.0, 1000.0});
  constexpr size_t kTasks = 32;
  constexpr int kPerTask = 500;
  ThreadPool pool(8);
  pool.ParallelFor(kTasks, [&](size_t t) {
    for (int i = 0; i < kPerTask; ++i) {
      h->Observe(static_cast<double>((t * 31 + static_cast<size_t>(i)) % 2000));
    }
  });
  EXPECT_EQ(h->count(), kTasks * static_cast<uint64_t>(kPerTask));
  uint64_t bucket_total = 0;
  for (size_t i = 0; i <= h->bounds().size(); ++i) {
    bucket_total += h->bucket_count(i);
  }
  EXPECT_EQ(bucket_total, h->count());
}

TEST(MetricsConcurrencyTest, RegistrationRace) {
  MetricsRegistry reg;
  std::vector<Counter*> seen(16, nullptr);
  ThreadPool pool(8);
  pool.ParallelFor(seen.size(), [&](size_t i) {
    seen[i] = reg.GetCounter("raced");
    seen[i]->Increment();
  });
  for (Counter* c : seen) EXPECT_EQ(c, seen[0]);
  EXPECT_EQ(seen[0]->value(), seen.size());
}

// --- Trace spans -------------------------------------------------------

TEST(TraceTest, NestedSpansAggregateByPath) {
  Tracer& tracer = Tracer::Default();
  tracer.Reset();
  for (int i = 0; i < 3; ++i) {
    TraceSpan outer("trace_test.outer");
    TraceSpan inner("trace_test.inner");
  }
  const std::string json = tracer.ToJson();
  // The inner span nests under the outer, and both executed 3 times.
  const auto outer_pos = json.find("trace_test.outer");
  const auto inner_pos = json.find("trace_test.inner");
  ASSERT_NE(outer_pos, std::string::npos) << json;
  ASSERT_NE(inner_pos, std::string::npos) << json;
  EXPECT_LT(outer_pos, inner_pos);
  EXPECT_NE(json.find("\"count\": 3"), std::string::npos) << json;
}

TEST(TraceTest, SiblingSpansStaySeparate) {
  Tracer& tracer = Tracer::Default();
  tracer.Reset();
  {
    TraceSpan parent("trace_test.parent");
    { TraceSpan a("trace_test.a"); }
    { TraceSpan b("trace_test.b"); }
  }
  const std::string json = tracer.ToJson();
  EXPECT_NE(json.find("trace_test.a"), std::string::npos) << json;
  EXPECT_NE(json.find("trace_test.b"), std::string::npos) << json;
}

TEST(TraceTest, SpansFromPoolThreadsMerge) {
  Tracer& tracer = Tracer::Default();
  tracer.Reset();
  ThreadPool pool(4);
  pool.ParallelFor(16, [&](size_t) { TraceSpan s("trace_test.pooled"); });
  const std::string json = tracer.ToJson();
  EXPECT_NE(json.find("trace_test.pooled"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 16"), std::string::npos) << json;
}

TEST(TraceTest, ScopedLatencyTimerObserves) {
  MetricsRegistry reg;
  Histogram* h = reg.GetHistogram("timer_us");
  { ScopedLatencyTimer t(h); }
  EXPECT_EQ(h->count(), 1u);
  EXPECT_GE(h->min(), 0.0);
}

TEST(TraceTest, RetiredThreadSpansSurviveInExport) {
  Tracer& tracer = Tracer::Default();
  tracer.Reset();
  {
    // Pool workers record spans into their thread-local trees; pool
    // destruction retires those threads, merging the trees into the
    // tracer's retired tree.
    ThreadPool pool(3);
    pool.ParallelFor(12, [&](size_t) { TraceSpan s("trace_test.retired"); });
  }
  const std::string json = tracer.ToJson();
  EXPECT_NE(json.find("trace_test.retired"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 12"), std::string::npos) << json;
}

TEST(TraceTest, RetiredTreesMergeWithLiveOnes) {
  Tracer& tracer = Tracer::Default();
  tracer.Reset();
  {
    ThreadPool pool(2);
    pool.ParallelFor(8, [&](size_t) { TraceSpan s("trace_test.merged"); });
  }
  // 8 retired executions + 4 on the live (main) thread aggregate by path.
  for (int i = 0; i < 4; ++i) {
    TraceSpan s("trace_test.merged");
  }
  const std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"count\": 12"), std::string::npos) << json;
}

TEST(TraceTest, ConcurrentExportWhileRecording) {
  Tracer& tracer = Tracer::Default();
  tracer.Reset();
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([] {
      for (int i = 0; i < 2000; ++i) {
        TraceSpan outer("trace_test.export_outer");
        TraceSpan inner("trace_test.export_inner");
      }
    });
  }
  // Exports race with span creation and thread registration/retirement;
  // every snapshot must stay parseable (balanced braces).
  for (int i = 0; i < 50; ++i) {
    const std::string json = tracer.ToJson();
    ASSERT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
  }
  for (std::thread& w : writers) w.join();
  const std::string json = tracer.ToJson();
  EXPECT_NE(json.find("trace_test.export_outer"), std::string::npos);
  EXPECT_NE(json.find("trace_test.export_inner"), std::string::npos);
}

}  // namespace
}  // namespace exearth::common
