// Strabon-style geospatial RDF store (Challenge C3, experiments E1/E2).
//
// GeoStore wraps a TripleStore and understands GeoSPARQL/stSPARQL geometry
// literals: objects of geo:asWKT typed geo:wktLiteral. BuildSpatialIndex()
// parses every geometry literal once and packs their envelopes into an
// R-tree keyed by the *subject* term id (the feature), enabling pushdown:
//
//   indexed path  : R-tree candidates -> exact geometry test
//   baseline path : full scan of geo:asWKT triples -> parse/test each
//                   (the GraphDB stand-in, see DESIGN.md §2)
//
// Exact predicate evaluation always runs on the parsed geometries, so both
// paths return identical answers; only the work differs.

#ifndef EXEARTH_STRABON_GEOSTORE_H_
#define EXEARTH_STRABON_GEOSTORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geo/geometry.h"
#include "geo/rtree.h"
#include "rdf/query.h"
#include "rdf/triple_store.h"

namespace exearth::strabon {

/// Spatial predicate for selections and joins.
enum class SpatialRelation {
  kIntersects,
  kContains,
  kWithin,
};

/// Per-query execution statistics (for E1/E2 reporting).
struct SpatialQueryStats {
  uint64_t candidates = 0;        // geometries tested exactly
  uint64_t geometry_tests = 0;    // exact predicate evaluations
  uint64_t results = 0;
};

/// A TripleStore with a spatial index over its geometry literals.
class GeoStore {
 public:
  GeoStore() = default;

  GeoStore(const GeoStore&) = delete;
  GeoStore& operator=(const GeoStore&) = delete;
  GeoStore(GeoStore&&) = default;
  GeoStore& operator=(GeoStore&&) = default;

  rdf::TripleStore& triples() { return store_; }
  const rdf::TripleStore& triples() const { return store_; }

  /// Adds a feature: subject IRI with a WKT geometry (emits the
  /// geo:asWKT triple). Additional thematic triples go through triples().
  void AddFeature(const std::string& subject_iri, const geo::Geometry& geom);

  /// Builds the triple indexes, parses all geometry literals and packs the
  /// R-tree. Returns the number of indexed geometries; fails on malformed
  /// WKT.
  common::Result<size_t> Build();

  size_t num_geometries() const { return geometries_.size(); }

  /// Subjects whose geometry satisfies `relation` with the query box
  /// (rectangular spatial selection — the E1 workload). `use_index`
  /// selects pushdown vs full scan; results are identical.
  std::vector<uint64_t> SpatialSelect(const geo::Box& query,
                                      SpatialRelation relation,
                                      bool use_index) const;

  /// Evaluates a BGP and then keeps only bindings where `geo_var`'s
  /// subject geometry intersects `query_box` — with the spatial constraint
  /// pushed into the R-tree when `use_index` (the rewriter of DESIGN.md §6).
  common::Result<std::vector<rdf::Binding>> QueryWithSpatialFilter(
      const rdf::Query& query, const std::string& subject_var,
      const geo::Box& query_box, bool use_index) const;

  /// Spatial join between two feature classes (stSPARQL's
  /// `?a strdf:relation ?b` pattern): all (a, b) subject-id pairs where a
  /// is an instance of `class_a_iri`, b of `class_b_iri`, and a's geometry
  /// stands in `relation` to b's. The indexed path probes the R-tree with
  /// each a-envelope; the baseline nested-loops. Results are identical,
  /// sorted, and exclude a == b.
  std::vector<std::pair<uint64_t, uint64_t>> SpatialJoin(
      const std::string& class_a_iri, const std::string& class_b_iri,
      SpatialRelation relation, bool use_index) const;

  /// The parsed geometry of a subject (nullptr if it has none).
  const geo::Geometry* GeometryOf(uint64_t subject_id) const;

  const SpatialQueryStats& last_stats() const { return stats_; }

 private:
  bool EvalRelation(const geo::Geometry& g, const geo::Box& query,
                    SpatialRelation relation) const;

  rdf::TripleStore store_;
  geo::RTree rtree_;
  std::unordered_map<uint64_t, geo::Geometry> geometries_;  // subject id ->
  bool spatial_built_ = false;
  mutable SpatialQueryStats stats_;
};

}  // namespace exearth::strabon

#endif  // EXEARTH_STRABON_GEOSTORE_H_
