file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_geotriples.dir/bench_e12_geotriples.cc.o"
  "CMakeFiles/bench_e12_geotriples.dir/bench_e12_geotriples.cc.o.d"
  "bench_e12_geotriples"
  "bench_e12_geotriples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_geotriples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
