// Single-node training loop over raster::Dataset (the classifier driver
// used by the applications and as the per-worker step of the distributed
// trainer).

#ifndef EXEARTH_ML_TRAINER_H_
#define EXEARTH_ML_TRAINER_H_

#include <vector>

#include "common/rng.h"
#include "ml/metrics.h"
#include "ml/network.h"
#include "ml/optimizer.h"
#include "raster/dataset.h"

namespace exearth::ml {

/// Copies samples [begin, end) of `ds` into a batch tensor. If `as_images`
/// the result is [N, C, H, W] (requires dataset channel metadata);
/// otherwise [N, feature_dim]. Labels go to `labels`.
Tensor MakeBatch(const raster::Dataset& ds, size_t begin, size_t end,
                 bool as_images, std::vector<int>* labels);

struct TrainOptions {
  int epochs = 5;
  int batch_size = 32;
  bool as_images = false;
  SgdOptimizer::Options sgd;
  uint64_t shuffle_seed = 1;
};

struct EpochStats {
  double mean_loss = 0.0;
  double accuracy = 0.0;
  int steps = 0;
};

/// Drives SGD over a network. The dataset is copied-by-reference; call sites
/// own both network and data.
class Trainer {
 public:
  Trainer(Network* network, const TrainOptions& options);

  /// One pass over `ds` (shuffled); returns training loss/accuracy.
  EpochStats TrainEpoch(raster::Dataset* ds);

  /// Runs `options.epochs` epochs; returns per-epoch stats.
  std::vector<EpochStats> Fit(raster::Dataset* ds);

  /// Inference accuracy and confusion matrix on `ds`.
  ConfusionMatrix Evaluate(const raster::Dataset& ds);

  SgdOptimizer& optimizer() { return optimizer_; }

 private:
  Network* network_;
  TrainOptions options_;
  SgdOptimizer optimizer_;
  common::Rng rng_;
};

/// Predicted class per sample (argmax of logits).
std::vector<int> Predict(Network* network, const raster::Dataset& ds,
                         bool as_images, int batch_size = 256);

}  // namespace exearth::ml

#endif  // EXEARTH_ML_TRAINER_H_
