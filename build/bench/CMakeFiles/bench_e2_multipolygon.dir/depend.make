# Empty dependencies file for bench_e2_multipolygon.
# This may be replaced when dependencies are built.
