// Per-tenant SLO tracking for the serving layer: sliding-window burn
// rates for an availability objective (fraction of requests that
// succeed) and a latency objective (fraction under a threshold).
//
// Burn rate is the standard multi-window alerting quantity: the observed
// bad fraction divided by the error budget (1 - target). Burn 1.0 means
// the tenant is consuming its budget exactly at the sustainable rate;
// 10x means the budget for the whole window is gone in a tenth of it.
//
// Time is caller-supplied microseconds, so the tracker is exact and
// repeatable under the broker's virtual-clock wave API (same waves +
// same timestamps => identical burn rates). Internally each tenant gets
// a ring of per-second buckets covering the window; Record() is O(1).
//
// Outputs:
//   * Publish()        — serve.slo.<tenant>.{availability,latency}_burn
//                        gauges in the process registry
//   * PrometheusText() — a labeled gauge family
//                        serve_slo_burn_rate{tenant="...",slo="..."}
//                        for the admin /metrics collector hook
//   * TableText()      — the /tenantz SLO columns
//
// Thread-safe; one tracker serves all broker threads.

#ifndef EXEARTH_SERVE_SLO_H_
#define EXEARTH_SERVE_SLO_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace exearth::serve {

struct SloTarget {
  /// Success-fraction objective (0.999 = "three nines").
  double availability = 0.999;
  /// A request slower than this counts against the latency objective.
  double latency_threshold_us = 100000.0;
  /// Fraction of requests that must be under the threshold.
  double latency_goal = 0.99;
  /// Sliding evaluation window.
  int64_t window_us = 60'000'000;
};

/// One tenant's burn state at evaluation time.
struct SloBurn {
  std::string tenant;
  uint64_t total = 0;   // requests observed in the window
  uint64_t errors = 0;  // failed requests (sheds included)
  uint64_t slow = 0;    // successful but over the latency threshold
  double availability_burn = 0.0;  // error fraction / (1 - availability)
  double latency_burn = 0.0;       // slow fraction / (1 - latency_goal)
};

class SloTracker {
 public:
  /// `target` applies to every tenant without an explicit override.
  explicit SloTracker(SloTarget target = {});

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  /// Per-tenant objective override; call before traffic for that tenant.
  void SetTarget(const std::string& tenant, SloTarget target);

  /// Accounts one finished (or shed) request. `ok` is the final status,
  /// `latency_us` the observed service latency (ignored when !ok),
  /// `now_us` the caller's clock. Out-of-window timestamps older than
  /// the newest seen second are dropped.
  void Record(const std::string& tenant, bool ok, double latency_us,
              int64_t now_us);

  /// Burn rates over each tenant's window ending at `now_us`, sorted by
  /// tenant name.
  std::vector<SloBurn> Evaluate(int64_t now_us) const;

  /// Writes serve.slo.<tenant>.availability_burn / .latency_burn gauges
  /// into the default MetricsRegistry.
  void Publish(int64_t now_us);

  /// Labeled Prometheus gauge family for the admin /metrics collector:
  ///   serve_slo_burn_rate{tenant="...",slo="availability"|"latency"}
  std::string PrometheusText(int64_t now_us) const;

  /// Fixed-width table (tenant, window counts, burn rates) for /tenantz.
  std::string TableText(int64_t now_us) const;

 private:
  struct Bucket {
    int64_t second = -1;  // absolute second this bucket currently holds
    uint64_t total = 0;
    uint64_t errors = 0;
    uint64_t slow = 0;
  };
  struct Ring {
    SloTarget target;
    std::vector<Bucket> buckets;  // window seconds + 1, indexed sec % size
    int64_t newest_second = -1;
  };

  Ring* RingFor(const std::string& tenant);
  SloBurn EvaluateRing(const std::string& name, const Ring& ring,
                       int64_t now_us) const;

  SloTarget default_target_;
  mutable std::mutex mu_;
  std::map<std::string, Ring> rings_;  // sorted => deterministic output
};

}  // namespace exearth::serve

#endif  // EXEARTH_SERVE_SLO_H_
