file(REMOVE_RECURSE
  "CMakeFiles/eea_ml.dir/distributed.cc.o"
  "CMakeFiles/eea_ml.dir/distributed.cc.o.d"
  "CMakeFiles/eea_ml.dir/layers.cc.o"
  "CMakeFiles/eea_ml.dir/layers.cc.o.d"
  "CMakeFiles/eea_ml.dir/metrics.cc.o"
  "CMakeFiles/eea_ml.dir/metrics.cc.o.d"
  "CMakeFiles/eea_ml.dir/network.cc.o"
  "CMakeFiles/eea_ml.dir/network.cc.o.d"
  "CMakeFiles/eea_ml.dir/optimizer.cc.o"
  "CMakeFiles/eea_ml.dir/optimizer.cc.o.d"
  "CMakeFiles/eea_ml.dir/tensor.cc.o"
  "CMakeFiles/eea_ml.dir/tensor.cc.o.d"
  "CMakeFiles/eea_ml.dir/trainer.cc.o"
  "CMakeFiles/eea_ml.dir/trainer.cc.o.d"
  "libeea_ml.a"
  "libeea_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eea_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
