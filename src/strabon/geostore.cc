#include "strabon/geostore.h"

#include <algorithm>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "geo/wkt.h"

namespace exearth::strabon {

using common::Result;
using common::Status;

namespace {

// Cached metric handles (registration locks; increments are relaxed
// atomics — see common/metrics.h).
struct GeoStoreMetrics {
  common::Counter* queries;
  common::Counter* results;
  common::Counter* index_probes;
  common::Histogram* query_latency_us;
  common::Histogram* probe_latency_us;
  common::Histogram* result_cardinality;

  static const GeoStoreMetrics& Get() {
    static GeoStoreMetrics m = [] {
      auto& reg = common::MetricsRegistry::Default();
      return GeoStoreMetrics{
          reg.GetCounter("strabon.geostore.queries"),
          reg.GetCounter("strabon.geostore.results"),
          reg.GetCounter("strabon.geostore.index_probes"),
          reg.GetHistogram("strabon.geostore.query_latency_us"),
          reg.GetHistogram("strabon.geostore.index_probe_latency_us"),
          reg.GetHistogram(
              "strabon.geostore.result_cardinality",
              common::Histogram::ExponentialBounds(1.0, 4.0, 16)),
      };
    }();
    return m;
  }
};

}  // namespace

void GeoStore::AddFeature(const std::string& subject_iri,
                          const geo::Geometry& geom) {
  store_.Add(rdf::Term::Iri(subject_iri),
             rdf::Term::Iri(rdf::vocab::kAsWkt),
             rdf::Term::Literal(geo::ToWkt(geom), rdf::vocab::kWktLiteral));
}

Result<size_t> GeoStore::Build() {
  store_.Build();
  geometries_.clear();
  auto aswkt = store_.dict().Lookup(rdf::Term::Iri(rdf::vocab::kAsWkt));
  std::vector<geo::RTree::Entry> entries;
  if (aswkt.has_value()) {
    Status parse_error;
    store_.Scan(rdf::IdPattern{std::nullopt, *aswkt, std::nullopt},
                [&](const rdf::TripleId& t) {
                  const rdf::Term& lit = store_.dict().Decode(t.o);
                  auto geom = geo::ParseWkt(lit.value);
                  if (!geom.ok()) {
                    parse_error = geom.status();
                    return false;
                  }
                  geo::Box env = geom->Envelope();
                  entries.push_back(
                      {env, static_cast<int64_t>(t.s)});
                  geometries_.emplace(t.s, std::move(*geom));
                  return true;
                });
    if (!parse_error.ok()) return parse_error;
  }
  rtree_ = geo::RTree::BulkLoad(std::move(entries));
  spatial_built_ = true;
  return geometries_.size();
}

bool GeoStore::EvalRelation(const geo::Geometry& g, const geo::Box& query,
                            SpatialRelation relation) const {
  ++stats_.geometry_tests;
  switch (relation) {
    case SpatialRelation::kIntersects:
      return geo::Intersects(g, query);
    case SpatialRelation::kContains: {
      // Feature contains the query rectangle.
      geo::Polygon rect;
      rect.outer.points = {geo::Point{query.min_x, query.min_y},
                           geo::Point{query.max_x, query.min_y},
                           geo::Point{query.max_x, query.max_y},
                           geo::Point{query.min_x, query.max_y}};
      return geo::Contains(g, geo::Geometry(std::move(rect)));
    }
    case SpatialRelation::kWithin:
      return query.Contains(g.Envelope()) &&
             geo::Intersects(g, query);  // envelope inside box => within
  }
  return false;
}

std::vector<uint64_t> GeoStore::SpatialSelect(const geo::Box& query,
                                              SpatialRelation relation,
                                              bool use_index) const {
  EEA_CHECK(spatial_built_) << "SpatialSelect before Build()";
  const GeoStoreMetrics& metrics = GeoStoreMetrics::Get();
  common::TraceSpan span("strabon.SpatialSelect");
  common::ScopedLatencyTimer query_timer(metrics.query_latency_us);
  metrics.queries->Increment();
  stats_ = SpatialQueryStats{};
  std::vector<uint64_t> out;
  if (use_index) {
    // R-tree candidates, then exact test.
    common::TraceSpan probe_span("index_probe");
    common::ScopedLatencyTimer probe_timer(metrics.probe_latency_us);
    metrics.index_probes->Increment();
    rtree_.Visit(query, [&](const geo::RTree::Entry& e) {
      ++stats_.candidates;
      auto it = geometries_.find(static_cast<uint64_t>(e.id));
      EEA_DCHECK(it != geometries_.end());
      if (EvalRelation(it->second, query, relation)) {
        out.push_back(it->first);
      }
      return true;
    });
  } else {
    // Baseline: test every geometry (full scan, the GraphDB stand-in).
    for (const auto& [subject, geom] : geometries_) {
      ++stats_.candidates;
      if (EvalRelation(geom, query, relation)) {
        out.push_back(subject);
      }
    }
  }
  std::sort(out.begin(), out.end());
  stats_.results = out.size();
  metrics.results->Increment(out.size());
  metrics.result_cardinality->Observe(static_cast<double>(out.size()));
  return out;
}

Result<std::vector<rdf::Binding>> GeoStore::QueryWithSpatialFilter(
    const rdf::Query& query, const std::string& subject_var,
    const geo::Box& query_box, bool use_index) const {
  EEA_CHECK(spatial_built_) << "spatial query before Build()";
  common::TraceSpan span("strabon.QueryWithSpatialFilter");
  common::ScopedLatencyTimer query_timer(
      GeoStoreMetrics::Get().query_latency_us);
  GeoStoreMetrics::Get().queries->Increment();
  rdf::QueryEngine engine(&store_);
  if (use_index) {
    // Pushdown: compute the spatial candidates first, then restrict the
    // BGP results to them (semantically identical to post-filtering).
    std::vector<uint64_t> subjects =
        SpatialSelect(query_box, SpatialRelation::kIntersects, true);
    std::vector<rdf::Binding> out;
    EEA_ASSIGN_OR_RETURN(std::vector<rdf::Binding> rows,
                         engine.Execute(query));
    for (rdf::Binding& b : rows) {
      auto it = b.find(subject_var);
      if (it == b.end()) continue;
      if (std::binary_search(subjects.begin(), subjects.end(), it->second)) {
        out.push_back(std::move(b));
      }
    }
    return out;
  }
  // Baseline: evaluate the BGP, then test each binding's geometry.
  stats_ = SpatialQueryStats{};
  EEA_ASSIGN_OR_RETURN(std::vector<rdf::Binding> rows, engine.Execute(query));
  std::vector<rdf::Binding> out;
  for (rdf::Binding& b : rows) {
    auto it = b.find(subject_var);
    if (it == b.end()) continue;
    const geo::Geometry* g = GeometryOf(it->second);
    if (g == nullptr) continue;
    ++stats_.candidates;
    if (EvalRelation(*g, query_box, SpatialRelation::kIntersects)) {
      out.push_back(std::move(b));
    }
  }
  stats_.results = out.size();
  return out;
}

namespace {

// True when the relation between two concrete geometries holds.
bool EvalGeomRelation(const geo::Geometry& a, const geo::Geometry& b,
                      SpatialRelation relation) {
  switch (relation) {
    case SpatialRelation::kIntersects:
      return geo::Intersects(a, b);
    case SpatialRelation::kContains:
      return geo::Contains(a, b);
    case SpatialRelation::kWithin:
      return geo::Within(a, b);
  }
  return false;
}

}  // namespace

std::vector<std::pair<uint64_t, uint64_t>> GeoStore::SpatialJoin(
    const std::string& class_a_iri, const std::string& class_b_iri,
    SpatialRelation relation, bool use_index) const {
  EEA_CHECK(spatial_built_) << "SpatialJoin before Build()";
  const GeoStoreMetrics& metrics = GeoStoreMetrics::Get();
  common::TraceSpan span("strabon.SpatialJoin");
  common::ScopedLatencyTimer query_timer(metrics.query_latency_us);
  metrics.queries->Increment();
  stats_ = SpatialQueryStats{};
  // Members of a class that carry geometry.
  auto members_of = [&](const std::string& class_iri) {
    std::vector<uint64_t> out;
    auto type_id = store_.dict().Lookup(rdf::Term::Iri(rdf::vocab::kRdfType));
    auto class_id = store_.dict().Lookup(rdf::Term::Iri(class_iri));
    if (!type_id || !class_id) return out;
    store_.Scan(rdf::IdPattern{std::nullopt, *type_id, *class_id},
                [&](const rdf::TripleId& t) {
                  if (geometries_.count(t.s)) out.push_back(t.s);
                  return true;
                });
    std::sort(out.begin(), out.end());
    return out;
  };
  const std::vector<uint64_t> as = members_of(class_a_iri);
  const std::vector<uint64_t> bs = members_of(class_b_iri);
  std::vector<std::pair<uint64_t, uint64_t>> out;
  if (use_index) {
    // Probe the shared R-tree with each a-envelope; restrict hits to B
    // members via binary search.
    for (uint64_t a : as) {
      const geo::Geometry& ga = geometries_.at(a);
      rtree_.Visit(ga.Envelope(), [&](const geo::RTree::Entry& e) {
        const uint64_t b = static_cast<uint64_t>(e.id);
        if (b == a) return true;
        if (!std::binary_search(bs.begin(), bs.end(), b)) return true;
        ++stats_.candidates;
        ++stats_.geometry_tests;
        if (EvalGeomRelation(ga, geometries_.at(b), relation)) {
          out.emplace_back(a, b);
        }
        return true;
      });
    }
  } else {
    for (uint64_t a : as) {
      const geo::Geometry& ga = geometries_.at(a);
      for (uint64_t b : bs) {
        if (a == b) continue;
        ++stats_.candidates;
        ++stats_.geometry_tests;
        if (EvalGeomRelation(ga, geometries_.at(b), relation)) {
          out.emplace_back(a, b);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  stats_.results = out.size();
  metrics.results->Increment(out.size());
  metrics.result_cardinality->Observe(static_cast<double>(out.size()));
  return out;
}

const geo::Geometry* GeoStore::GeometryOf(uint64_t subject_id) const {
  auto it = geometries_.find(subject_id);
  return it == geometries_.end() ? nullptr : &it->second;
}

}  // namespace exearth::strabon
