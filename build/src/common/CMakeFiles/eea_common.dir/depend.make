# Empty dependencies file for eea_common.
# This may be replaced when dependencies are built.
