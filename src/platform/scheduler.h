// Elastic job scheduling on the simulated cluster (Challenge C5): jobs with
// dependencies and compute demands scheduled onto cluster nodes through the
// discrete-event clock; reports per-job times and the makespan.

#ifndef EXEARTH_PLATFORM_SCHEDULER_H_
#define EXEARTH_PLATFORM_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "sim/cluster.h"
#include "sim/event_queue.h"

namespace exearth::platform {

/// A unit of platform work (a processing-chain stage).
struct JobSpec {
  std::string name;
  double compute_seconds = 1.0;  // node-seconds of work
  std::vector<int> dependencies; // indexes of jobs that must finish first
};

struct JobResult {
  std::string name;
  double start_time = 0.0;
  double end_time = 0.0;
  int node = -1;
};

struct ScheduleResult {
  std::vector<JobResult> jobs;
  double makespan_seconds = 0.0;
  /// Mean node busy fraction over the makespan.
  double utilization = 0.0;
};

/// List-schedules the DAG onto `cluster.num_nodes()` nodes (earliest-
/// available node, dependency-respecting). Fails on cyclic or out-of-range
/// dependencies.
common::Result<ScheduleResult> ScheduleJobs(const std::vector<JobSpec>& jobs,
                                            const sim::Cluster& cluster);

}  // namespace exearth::platform

#endif  // EXEARTH_PLATFORM_SCHEDULER_H_
