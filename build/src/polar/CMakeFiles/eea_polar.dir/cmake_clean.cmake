file(REMOVE_RECURSE
  "CMakeFiles/eea_polar.dir/drift.cc.o"
  "CMakeFiles/eea_polar.dir/drift.cc.o.d"
  "CMakeFiles/eea_polar.dir/ice_products.cc.o"
  "CMakeFiles/eea_polar.dir/ice_products.cc.o.d"
  "CMakeFiles/eea_polar.dir/icebergs.cc.o"
  "CMakeFiles/eea_polar.dir/icebergs.cc.o.d"
  "CMakeFiles/eea_polar.dir/pipeline.cc.o"
  "CMakeFiles/eea_polar.dir/pipeline.cc.o.d"
  "libeea_polar.a"
  "libeea_polar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eea_polar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
