// Windowed views over the cumulative MetricsRegistry: "QPS and p99 right
// now", not just "since process start".
//
// Cumulative counters and histograms answer totals; operators watching a
// live system need short-horizon derivatives. A WindowedSampler snapshots
// the registry on a fixed cadence (a background thread, or an injected
// clock in tests) and keeps a bounded ring of samples covering its
// largest window. From consecutive samples it derives, per window (10s
// and 1m by default):
//
//   * counter rates        — (value_now - value_then) / elapsed
//   * histogram rates      — observation count over the window
//   * windowed percentiles — p50/p99 of the *bucket deltas* between the
//     window edges (a true sliding-window distribution, not a decayed
//     approximation of the lifetime histogram)
//
// Derived values are published back into the registry as gauges named
// <metric>.rate10s / <metric>.rate1m / <metric>.p50_10s / ... so every
// exporter (JSON snapshot, Prometheus /metrics) picks them up with no
// extra plumbing. Derived gauges are never themselves sampled (only
// counters and histograms are), so the sampler cannot feed back on
// itself.
//
// Determinism note: windowed gauges are functions of wall-clock sampling
// and are NOT part of any seeded-run deterministic surface; CI gates that
// diff registry snapshots must exclude the derived-gauge suffixes (see
// WindowedSampler::IsDerivedGaugeName).
//
// Thread-safety: Start()/Stop() manage the sampling thread; SampleOnce()
// may be called from any one thread at a time (the background thread, or
// a test driving a fake clock); readers (Rate, HistogramWindow, ToJson)
// are safe concurrently with sampling.

#ifndef EXEARTH_COMMON_WINDOWED_H_
#define EXEARTH_COMMON_WINDOWED_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace exearth::common {

struct WindowedOptions {
  /// Sampling cadence of the background thread (and the spacing tests
  /// should use with a fake clock).
  int64_t sample_period_us = 1'000'000;
  /// Sliding windows to derive, microseconds. Must be non-empty,
  /// ascending. Window label in gauge names: 10s, 1m, 90s, ...
  std::vector<int64_t> windows_us = {10'000'000, 60'000'000};
  /// Publish derived gauges back into the registry (off = query-only).
  bool publish_gauges = true;
  /// When non-empty, the background thread appends one compact JSON line
  /// (see ToJsonLine) to this file after every sample — a poor man's
  /// scrape for long bench runs (bench_main --metrics_interval_ms).
  std::string stream_path;
};

/// Human label for a window ("10s", "1m", "90s").
std::string WindowLabel(int64_t window_us);

/// Interpolated percentile over explicit bucket counts (the windowed
/// sibling of Histogram::Percentile; bounds as in Histogram). Exposed for
/// tests.
double PercentileFromBuckets(const std::vector<double>& bounds,
                             const std::vector<uint64_t>& buckets, double p);

class WindowedSampler {
 public:
  explicit WindowedSampler(MetricsRegistry* registry,
                           WindowedOptions options = {});
  ~WindowedSampler();

  WindowedSampler(const WindowedSampler&) = delete;
  WindowedSampler& operator=(const WindowedSampler&) = delete;

  /// Starts the background sampling thread (steady_clock cadence).
  /// Idempotent.
  void Start();
  /// Stops and joins the thread. Idempotent; called by the destructor.
  void Stop();
  bool running() const;

  /// Takes one sample at (virtual or wall) time `now_us`, updates the
  /// ring and — when publish_gauges — the derived gauges. Samples with
  /// non-increasing timestamps are ignored.
  void SampleOnce(int64_t now_us);

  /// Rate of counter (or histogram observation count) `name` over the
  /// trailing window, events per second. 0 when unknown or when fewer
  /// than two samples cover the window.
  double Rate(const std::string& name, int64_t window_us) const;

  /// Windowed histogram view: observation count/sum and interpolated
  /// percentiles of the observations that landed inside the trailing
  /// window. Returns false when `name` is unknown or no two samples
  /// bracket the window.
  struct WindowView {
    uint64_t count = 0;
    double sum = 0.0;
    double rate = 0.0;  // count per second
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };
  bool HistogramWindow(const std::string& name, int64_t window_us,
                       WindowView* out) const;

  /// One-line JSON of every derived value at the latest sample:
  ///   {"t_us": ..., "rates": {"<name>": {"10s": r, "1m": r}, ...},
  ///    "histograms": {"<name>": {"10s": {"rate": r, "p50": ..,
  ///                                      "p99": ..}, ...}}}
  std::string ToJsonLine() const;

  /// Samples currently retained in the ring.
  size_t num_samples() const;

  /// True for gauge names the sampler publishes (suffix .rateNN /
  /// .p50_NN / .p95_NN / .p99_NN) — CI determinism diffs exclude these.
  static bool IsDerivedGaugeName(const std::string& name);

  const WindowedOptions& options() const { return options_; }

 private:
  struct HistCum {
    uint64_t count = 0;
    double sum = 0.0;
    std::vector<uint64_t> buckets;
  };
  struct Sample {
    int64_t t_us = 0;
    std::map<std::string, uint64_t> counters;
    std::map<std::string, HistCum> hists;
  };

  /// Latest sample and the baseline at or before (latest.t_us -
  /// window_us); false when the ring cannot bracket the window. Caller
  /// holds mu_.
  bool Bracket(int64_t window_us, const Sample** newest,
               const Sample** base) const;

  /// Newest sample at or before `edge`; while the ring is still warming
  /// up (no sample that old yet) the oldest retained sample serves as an
  /// approximate baseline. Caller holds mu_.
  const Sample* BaselineLocked(int64_t edge) const;

  Gauge* DerivedGauge(const std::string& base, const char* kind,
                      int64_t window_us);
  void PublishLocked(const Sample& newest);
  void RunLoop();

  MetricsRegistry* const registry_;
  const WindowedOptions options_;
  // Bounds per histogram name, captured at first sight (histogram bounds
  // are immutable after registration).
  std::map<std::string, std::vector<double>> hist_bounds_;
  std::map<std::string, Gauge*> derived_;

  mutable std::mutex mu_;
  std::deque<Sample> ring_;

  mutable std::mutex run_mu_;
  std::condition_variable run_cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace exearth::common

#endif  // EXEARTH_COMMON_WINDOWED_H_
