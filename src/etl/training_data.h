// Challenge C2 tooling: building very large EO training datasets without
// manual annotation, by (a) deriving weak labels from cartographic/thematic
// vector layers (the OpenStreetMap mechanism) and (b) enlarging datasets by
// simulating additional acquisitions and augmenting patches.

#ifndef EXEARTH_ETL_TRAINING_DATA_H_
#define EXEARTH_ETL_TRAINING_DATA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "geo/geometry.h"
#include "raster/dataset.h"
#include "raster/landcover.h"
#include "raster/raster.h"
#include "raster/sentinel.h"

namespace exearth::etl {

/// A labelled cartographic feature (e.g. an OSM polygon tagged "forest").
struct VectorFeature {
  geo::Geometry geometry;
  uint8_t label = 0;
};

/// A thematic vector layer.
struct VectorLayer {
  std::vector<VectorFeature> features;
};

/// Rasterizes `layer` onto a grid: each pixel takes the label of the first
/// feature containing its center (later features win ties by being checked
/// first when `last_wins`); uncovered pixels get `fill`.
raster::ClassMap RasterizeLabels(const VectorLayer& layer, int width,
                                 int height,
                                 const raster::GeoTransform& transform,
                                 uint8_t fill);

/// Options for dataset enlargement (E6).
struct EnlargeOptions {
  int target_samples = 100000;
  int patch_size = 8;
  int stride = 4;
  /// Acquisition days simulated until the target is reached.
  std::vector<int> days = {60, 120, 180, 240, 300};
  /// Add horizontally/vertically flipped copies of each patch.
  bool augment_flips = true;
  uint64_t seed = 1;
};

/// Builds a large labelled dataset from a label map by simulating scenes at
/// multiple dates (and seeds) and extracting patches, with optional flip
/// augmentation, until `target_samples` is reached (or all material is
/// exhausted — the result reports what was achieved).
common::Result<raster::Dataset> BuildEnlargedDataset(
    const raster::ClassMap& labels, int num_classes,
    const raster::SentinelSimulator::Options& sim_options,
    const EnlargeOptions& options);

/// Flip augmentation on one sample (exposed for tests): mirrors each band's
/// patch horizontally (`horizontal=true`) or vertically.
raster::Sample FlipSample(const raster::Sample& sample, int channels,
                          int height, int width, bool horizontal);

}  // namespace exearth::etl

#endif  // EXEARTH_ETL_TRAINING_DATA_H_
