// E14 — the 5 Vs of Copernicus (paper §1): by end-2016 the Sentinel hub
// generated ~6 TB/day, disseminated ~100 TB/day, and 1 PB of data yields
// ~450 TB of derived information (~45%). Series:
//   (a) the lifecycle simulation at 2016 rates (volumes as counters);
//   (b) velocity stress: arrival-rate multiplier sweep, watching the
//       processing backlog and drain time (the "24/7 fast response" V);
//   (c) event-throughput of the simulator itself (products/s simulated).

#include <benchmark/benchmark.h>

#include "platform/autoscale.h"
#include "platform/ingestion.h"

namespace {

namespace eea = exearth;

void BM_FiveVsDay(benchmark::State& state) {
  const int rate_multiplier = static_cast<int>(state.range(0));
  eea::platform::IngestionOptions opt;
  opt.products_per_day *= rate_multiplier;
  opt.seed = 61;
  eea::platform::IngestionReport report;
  for (auto _ : state) {
    auto r = eea::platform::SimulateIngestion(opt);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    report = *r;
  }
  state.counters["products"] = static_cast<double>(report.products_ingested);
  state.counters["generated_tb_day"] = report.ingested_gb / 1000.0;
  state.counters["disseminated_tb_day"] = report.disseminated_gb / 1000.0;
  state.counters["derived_tb_day"] =
      report.derived_information_gb / 1000.0;
  state.counters["info_ratio"] =
      report.ingested_gb > 0
          ? report.derived_information_gb / report.ingested_gb
          : 0;
  state.counters["max_backlog_gb"] = report.max_processing_backlog_gb;
  state.counters["drain_time_days"] = report.processing_drain_time_days;
  state.counters["sim_products_per_s"] = benchmark::Counter(
      static_cast<double>(report.products_ingested) * state.iterations(),
      benchmark::Counter::kIsRate);
}

// A2's "processing resources on demand and scalable": elastic vs fixed
// provisioning for bursty satellite-pass workloads. Elastic should match
// peak-fixed latency at a fraction of the node-hours, while minimal-fixed
// provisioning backlogs.
void BM_ElasticProvisioning(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));  // 0 elastic, 1 peak
                                                      // fixed, 2 minimal
  eea::platform::AutoscaleOptions opt;
  opt.seed = 71;
  if (mode == 0) {
    opt.min_nodes = 1;
    opt.max_nodes = 32;
  } else if (mode == 1) {
    opt.min_nodes = opt.max_nodes = 16;
  } else {
    opt.min_nodes = opt.max_nodes = 2;
  }
  eea::platform::AutoscaleReport report;
  for (auto _ : state) {
    auto r = eea::platform::SimulateAutoscaling(opt);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    report = *r;
  }
  state.counters["scenes"] = static_cast<double>(report.scenes_processed);
  state.counters["mean_latency_h"] = report.mean_latency_hours;
  state.counters["max_latency_h"] = report.max_latency_hours;
  state.counters["node_hours"] = report.node_hours_used;
  state.counters["peak_nodes"] = report.peak_nodes;
  state.counters["mean_nodes"] = report.mean_nodes;
}

}  // namespace

BENCHMARK(BM_ElasticProvisioning)
    ->ArgNames({"mode"})
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_FiveVsDay)
    ->ArgNames({"rate_x"})
    ->Arg(1)   // 2016 rates: ~6 TB/day in, ~100 TB/day out
    ->Arg(2)   // "will increase as new Sentinels are launched"
    ->Arg(4)
    ->Arg(8)   // saturates the fixed 10 TB/day processing capacity
    ->Unit(benchmark::kMillisecond);

// main() comes from bench_main.cc (adds --smoke and the
// metrics-snapshot JSON dump).
