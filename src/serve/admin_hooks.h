// Glue between the serving layer and the obs::AdminServer: registers the
// serve-specific introspection surface on a generic admin server, so obs
// stays free of serve dependencies while /tenantz & friends exist only
// when a broker does.
//
// Registers:
//   * /tenantz          — per-tenant quota/shed/cache/batch table from
//                         QueryBroker::TenantStatsSnapshot(), plus the
//                         SLO burn table when a tracker is attached
//   * readiness probe   — "serve.broker": QueryBroker::CheckReady(), so
//                         /healthz flips to 503 once BeginShutdown() runs
//   * /metrics collector — the serve_slo_burn_rate{tenant,slo} labeled
//                         family (when a tracker is attached)
//   * status line       — broker tenant/cache/queue summary on /statusz
//
// Call before AdminServer::Start(); `broker` (and `slo`, if given) must
// outlive the admin server.

#ifndef EXEARTH_SERVE_ADMIN_HOOKS_H_
#define EXEARTH_SERVE_ADMIN_HOOKS_H_

#include <cstdint>
#include <functional>

#include "obs/admin.h"

namespace exearth::serve {

class QueryBroker;
class SloTracker;

/// `now_us` is the clock SLO burn rates are evaluated against (pass the
/// broker's virtual clock in deterministic setups); null means
/// steady_clock.
void RegisterServeAdminHooks(obs::AdminServer* admin, QueryBroker* broker,
                             SloTracker* slo = nullptr,
                             std::function<int64_t()> now_us = nullptr);

}  // namespace exearth::serve

#endif  // EXEARTH_SERVE_ADMIN_HOOKS_H_
