#include "common/deadline.h"

namespace exearth::common {

namespace {
thread_local RequestContext g_request_context;
}  // namespace

Status RequestContext::Check(const char* who) const {
  if (cancel.cancelled()) {
    return Status::Cancelled(std::string(who) + ": request cancelled");
  }
  if (deadline.expired()) {
    return Status::DeadlineExceeded(std::string(who) +
                                    ": request deadline exceeded");
  }
  return Status::OK();
}

RequestContext CurrentRequestContext() { return g_request_context; }

ScopedRequestContext::ScopedRequestContext(const RequestContext& ctx)
    : saved_(g_request_context) {
  RequestContext merged = ctx;
  merged.deadline = Deadline::Min(ctx.deadline, saved_.deadline);
  if (!merged.cancel.valid()) merged.cancel = saved_.cancel;
  g_request_context = merged;
}

ScopedRequestContext::~ScopedRequestContext() { g_request_context = saved_; }

}  // namespace exearth::common
