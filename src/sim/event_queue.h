// A minimal discrete-event simulation clock: schedule closures at virtual
// times and run them in order. Used by the platform job scheduler (C5) and
// the 5-Vs ingestion model (E14).

#ifndef EXEARTH_SIM_EVENT_QUEUE_H_
#define EXEARTH_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace exearth::sim {

/// Single-threaded discrete-event executor over virtual time.
class EventQueue {
 public:
  using Handler = std::function<void()>;

  /// Current virtual time in seconds.
  double now() const { return now_; }

  /// Schedules `handler` to run at absolute virtual time `time` (>= now).
  /// Events at equal times run in scheduling order.
  void ScheduleAt(double time, Handler handler);

  /// Schedules `handler` `delay` seconds from now.
  void ScheduleAfter(double delay, Handler handler) {
    ScheduleAt(now_ + delay, std::move(handler));
  }

  /// Runs events until the queue drains; returns the final virtual time.
  double Run();

  /// Runs events with time <= `until`; returns the virtual time reached
  /// (== until if events remain).
  double RunUntil(double until);

  size_t pending() const { return queue_.size(); }
  /// Total number of events executed so far.
  uint64_t executed() const { return executed_; }

 private:
  struct Event {
    double time;
    uint64_t seq;  // tie-break: FIFO at equal times
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace exearth::sim

#endif  // EXEARTH_SIM_EVENT_QUEUE_H_
