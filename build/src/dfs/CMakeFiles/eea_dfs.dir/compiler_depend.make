# Empty compiler generated dependencies file for eea_dfs.
# This may be replaced when dependencies are built.
