// Sequential network container, softmax cross-entropy loss, and the model
// builders used by the experiments (MLP, EuroSAT-style CNN).

#ifndef EXEARTH_ML_NETWORK_H_
#define EXEARTH_ML_NETWORK_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "ml/layers.h"
#include "ml/tensor.h"

namespace exearth::ml {

/// A stack of layers executed in order.
class Network {
 public:
  Network() = default;

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  void Add(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
  }

  Tensor Forward(const Tensor& input, bool training);
  /// Backpropagates from the loss gradient; fills layer gradient buffers.
  void Backward(const Tensor& grad_loss);

  /// All trainable parameter tensors, in layer order.
  std::vector<Tensor*> Params();
  std::vector<Tensor*> Grads();
  void ZeroGrads();

  /// Total number of trainable scalars.
  int64_t NumParams();
  /// Bytes of gradients exchanged per synchronization (float32).
  uint64_t GradientBytes() { return static_cast<uint64_t>(NumParams()) * 4; }
  /// Forward FLOPs for one sample (sum over layers; backward is ~2x).
  double FlopsPerSample() const;

  size_t num_layers() const { return layers_.size(); }
  Layer* layer(size_t i) { return layers_[i].get(); }

  /// Copies all parameters from `other` (must have identical architecture).
  void CopyParamsFrom(Network& other);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Softmax + cross-entropy, numerically stable. `logits` is [N, C].
struct LossResult {
  double loss = 0.0;          // mean over the batch
  Tensor grad;                // d(loss)/d(logits), already averaged
  int correct = 0;            // argmax matches label
};
LossResult SoftmaxCrossEntropy(const Tensor& logits,
                               const std::vector<int>& labels);

/// Softmax probabilities per row (for inference).
Tensor Softmax(const Tensor& logits);

/// Builds an MLP: input_dim -> hidden... -> num_classes with ReLU between.
Network BuildMlp(int input_dim, const std::vector<int>& hidden,
                 int num_classes, uint64_t seed);

/// Serializes all trainable parameters ("EEAW" header + shapes + floats).
/// Load requires an identically-architected network.
std::string SerializeWeights(Network& network);
common::Status LoadWeights(std::string_view bytes, Network* network);

/// Builds the small EuroSAT-style CNN used by C1/E5/E6:
/// conv3x3(C->f) + ReLU + pool + conv3x3(f->2f) + ReLU + pool + dense.
/// `height`/`width` must be divisible by 4.
Network BuildCnn(int channels, int height, int width, int base_filters,
                 int num_classes, uint64_t seed);

}  // namespace exearth::ml

#endif  // EXEARTH_ML_NETWORK_H_
