#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "common/string_util.h"

namespace exearth::common {

namespace {

// Relaxed compare-exchange accumulate for atomic<double> (fetch_add on
// floating atomics is C++20 but not universally lock-free; CAS is).
void AtomicAdd(std::atomic<double>* target, double delta) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (v < cur && !target->compare_exchange_weak(cur, v,
                                                   std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double v) {
  double cur = target->load(std::memory_order_relaxed);
  while (v > cur && !target->compare_exchange_weak(cur, v,
                                                   std::memory_order_relaxed)) {
  }
}

// Formats a double compactly: integers without trailing ".000000".
std::string NumToJson(double v) {
  if (!std::isfinite(v)) return "0";
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    return StrFormat("%lld", static_cast<long long>(v));
  }
  return StrFormat("%.6g", v);
}

}  // namespace

void Gauge::Add(double delta) { AtomicAdd(&value_, delta); }

void Gauge::Max(double v) { AtomicMax(&value_, v); }

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  EEA_CHECK(!bounds_.empty()) << "histogram needs at least one bucket bound";
  for (size_t i = 1; i < bounds_.size(); ++i) {
    EEA_CHECK(bounds_[i] > bounds_[i - 1])
        << "histogram bounds must be strictly increasing";
  }
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

std::vector<double> Histogram::DefaultLatencyBoundsUs() {
  return ExponentialBounds(1.0, 2.0, 24);  // 1us .. ~8.4s
}

std::vector<double> Histogram::ExponentialBounds(double start, double factor,
                                                 size_t count) {
  EEA_CHECK(start > 0 && factor > 1.0 && count > 0);
  std::vector<double> out;
  out.reserve(count);
  double v = start;
  for (size_t i = 0; i < count; ++i) {
    out.push_back(v);
    v *= factor;
  }
  return out;
}

void Histogram::Observe(double value) {
  // First bound >= value; everything above the last bound overflows.
  const size_t idx = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&sum_, value);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

double Histogram::min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::Percentile(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank of the target observation, 1-based; p=0 maps to rank 1.
  const double target = std::max(1.0, p / 100.0 * static_cast<double>(n));
  uint64_t cum = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    const uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    const uint64_t prev = cum;
    cum += in_bucket;
    if (static_cast<double>(cum) >= target) {
      // Interpolate within [lower, upper]. The first bucket starts at the
      // smallest observation; the overflow bucket ends at the largest.
      double lower = i == 0 ? std::min(min(), bounds_[0]) : bounds_[i - 1];
      double upper = i < bounds_.size() ? bounds_[i] : std::max(max(), lower);
      lower = std::max(lower, min());
      upper = std::min(upper, max());
      if (upper <= lower) return upper;
      const double frac =
          (target - static_cast<double>(prev)) / static_cast<double>(in_bucket);
      return lower + frac * (upper - lower);
    }
  }
  return max();
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never freed
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = Histogram::DefaultLatencyBoundsUs();
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSample hs;
    hs.name = name;
    hs.count = h->count();
    hs.sum = h->sum();
    hs.min = h->min();
    hs.max = h->max();
    hs.bounds = h->bounds();
    hs.buckets.reserve(hs.bounds.size() + 1);
    for (size_t i = 0; i <= hs.bounds.size(); ++i) {
      hs.buckets.push_back(h->bucket_count(i));
    }
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    out += StrFormat("%s\n    \"%s\": %llu", first ? "" : ",",
                     JsonEscape(name).c_str(),
                     static_cast<unsigned long long>(c->value()));
    first = false;
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    out += StrFormat("%s\n    \"%s\": %s", first ? "" : ",",
                     JsonEscape(name).c_str(), NumToJson(g->value()).c_str());
    first = false;
  }
  out += first ? "}" : "\n  }";
  out += ",\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    out += StrFormat(
        "%s\n    \"%s\": {\"count\": %llu, \"sum\": %s, \"min\": %s, "
        "\"max\": %s, \"p50\": %s, \"p95\": %s, \"p99\": %s, \"buckets\": [",
        first ? "" : ",", JsonEscape(name).c_str(),
        static_cast<unsigned long long>(h->count()),
        NumToJson(h->sum()).c_str(), NumToJson(h->min()).c_str(),
        NumToJson(h->max()).c_str(), NumToJson(h->Percentile(50)).c_str(),
        NumToJson(h->Percentile(95)).c_str(),
        NumToJson(h->Percentile(99)).c_str());
    const auto& bounds = h->bounds();
    for (size_t i = 0; i <= bounds.size(); ++i) {
      if (i > 0) out += ", ";
      const std::string le =
          i < bounds.size() ? "\"" + NumToJson(bounds[i]) + "\"" : "\"+Inf\"";
      out += StrFormat("{\"le\": %s, \"count\": %llu}", le.c_str(),
                       static_cast<unsigned long long>(h->bucket_count(i)));
    }
    out += "]}";
    first = false;
  }
  out += first ? "}" : "\n  }";
  out += "\n}";
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        // Control bytes must be escaped per RFC 8259; bytes >= 0x7f are
        // escaped too so arbitrary (even invalid-UTF-8) input always
        // yields a parseable ASCII document.
        if (static_cast<unsigned char>(c) < 0x20 ||
            static_cast<unsigned char>(c) >= 0x7f) {
          out += StrFormat("\\u%04x", static_cast<unsigned char>(c));
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace exearth::common
