#include "catalog/catalogue.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.h"
#include "common/string_util.h"

namespace exearth::catalog {

using common::Result;
using common::Status;

namespace {
constexpr char kObservedIn[] = "http://extremeearth.eu/ontology#observedIn";
constexpr char kObservedYear[] =
    "http://extremeearth.eu/ontology#observedYear";
constexpr char kObservedDay[] = "http://extremeearth.eu/ontology#observedDay";
}  // namespace

const char* SemanticCatalogue::ObservedInPredicate() { return kObservedIn; }
const char* SemanticCatalogue::ObservedYearPredicate() {
  return kObservedYear;
}
const char* SemanticCatalogue::ObservedDayPredicate() { return kObservedDay; }

void SemanticCatalogue::Ingest(const raster::SceneMetadata& metadata) {
  products_.push_back(metadata);
  built_ = false;
}

void SemanticCatalogue::AddObservation(const std::string& feature_iri,
                                       const std::string& class_iri,
                                       const geo::Geometry& geometry,
                                       const std::string& product_id,
                                       int year, int day_of_year) {
  knowledge_.AddFeature(feature_iri, geometry);
  rdf::TripleStore& t = knowledge_.triples();
  t.Add(rdf::Term::Iri(feature_iri), rdf::Term::Iri(rdf::vocab::kRdfType),
        rdf::Term::Iri(class_iri));
  t.Add(rdf::Term::Iri(feature_iri), rdf::Term::Iri(kObservedIn),
        rdf::Term::Iri("http://extremeearth.eu/product/" + product_id));
  t.Add(rdf::Term::Iri(feature_iri), rdf::Term::Iri(kObservedYear),
        rdf::Term::Literal(std::to_string(year), rdf::vocab::kXsdInteger));
  t.Add(rdf::Term::Iri(feature_iri), rdf::Term::Iri(kObservedDay),
        rdf::Term::Literal(std::to_string(day_of_year),
                           rdf::vocab::kXsdInteger));
  built_ = false;
}

Status SemanticCatalogue::Build() {
  std::vector<geo::RTree::Entry> entries;
  entries.reserve(products_.size());
  for (size_t i = 0; i < products_.size(); ++i) {
    entries.push_back({products_[i].footprint, static_cast<int64_t>(i)});
  }
  product_index_ = geo::RTree::BulkLoad(std::move(entries));
  auto built = knowledge_.Build();
  if (!built.ok()) return built.status();
  built_ = true;
  return Status::OK();
}

std::vector<raster::SceneMetadata> SemanticCatalogue::Search(
    const SearchRequest& request, SearchStats* stats) const {
  EEA_CHECK(built_) << "Search before Build()";
  SearchStats st;
  std::vector<size_t> candidate_ids;
  if (request.area.has_value()) {
    product_index_.Visit(*request.area, [&](const geo::RTree::Entry& e) {
      candidate_ids.push_back(static_cast<size_t>(e.id));
      return true;
    });
    std::sort(candidate_ids.begin(), candidate_ids.end());
  } else {
    candidate_ids.resize(products_.size());
    for (size_t i = 0; i < products_.size(); ++i) candidate_ids[i] = i;
  }
  std::vector<raster::SceneMetadata> out;
  for (size_t id : candidate_ids) {
    const raster::SceneMetadata& md = products_[id];
    ++st.candidates;
    if (request.year.has_value() && md.year != *request.year) continue;
    if (request.day_from.has_value() && md.day_of_year < *request.day_from)
      continue;
    if (request.day_to.has_value() && md.day_of_year > *request.day_to)
      continue;
    if (request.mission.has_value() && md.mission != *request.mission)
      continue;
    if (request.max_cloud_cover.has_value() &&
        md.cloud_cover > *request.max_cloud_cover)
      continue;
    out.push_back(md);
    if (request.limit > 0 && out.size() >= request.limit) break;
  }
  st.results = out.size();
  if (stats != nullptr) *stats = st;
  return out;
}

Result<uint64_t> SemanticCatalogue::CountObservations(
    const std::string& class_iri, const geo::Box& area,
    std::optional<int> year) const {
  EEA_CHECK(built_) << "CountObservations before Build()";
  rdf::Query q;
  q.where.push_back(rdf::TriplePattern{
      rdf::PatternSlot::Var("f"),
      rdf::PatternSlot::Iri(rdf::vocab::kRdfType),
      rdf::PatternSlot::Iri(class_iri)});
  if (year.has_value()) {
    q.where.push_back(rdf::TriplePattern{
        rdf::PatternSlot::Var("f"), rdf::PatternSlot::Iri(kObservedYear),
        rdf::PatternSlot::Of(rdf::Term::Literal(std::to_string(*year),
                                                rdf::vocab::kXsdInteger))});
  }
  EEA_ASSIGN_OR_RETURN(std::vector<rdf::Binding> rows,
                       knowledge_.QueryWithSpatialFilter(q, "f", area,
                                                         /*use_index=*/true));
  return static_cast<uint64_t>(rows.size());
}

Result<SemanticCatalogue::MaxExtent> SemanticCatalogue::MaxExtentDay(
    const std::string& class_iri, const geo::Box& area, int year) const {
  EEA_CHECK(built_) << "MaxExtentDay before Build()";
  rdf::Query q;
  q.where.push_back(rdf::TriplePattern{
      rdf::PatternSlot::Var("f"),
      rdf::PatternSlot::Iri(rdf::vocab::kRdfType),
      rdf::PatternSlot::Iri(class_iri)});
  q.where.push_back(rdf::TriplePattern{
      rdf::PatternSlot::Var("f"), rdf::PatternSlot::Iri(kObservedYear),
      rdf::PatternSlot::Of(rdf::Term::Literal(std::to_string(year),
                                              rdf::vocab::kXsdInteger))});
  q.where.push_back(rdf::TriplePattern{rdf::PatternSlot::Var("f"),
                                       rdf::PatternSlot::Iri(kObservedDay),
                                       rdf::PatternSlot::Var("day")});
  EEA_ASSIGN_OR_RETURN(std::vector<rdf::Binding> rows,
                       knowledge_.QueryWithSpatialFilter(q, "f", area,
                                                         /*use_index=*/true));
  std::map<int, uint64_t> per_day;
  for (const rdf::Binding& b : rows) {
    auto it = b.find("day");
    if (it == b.end()) continue;
    const rdf::Term& term = knowledge_.triples().dict().Decode(it->second);
    int64_t day = 0;
    if (!common::ParseInt64(term.value, &day)) continue;
    ++per_day[static_cast<int>(day)];
  }
  if (per_day.empty()) {
    return Status::NotFound("no observations of " + class_iri);
  }
  MaxExtent best;
  for (const auto& [day, count] : per_day) {
    if (count > best.observations) {
      best.day_of_year = day;
      best.observations = count;
    }
  }
  return best;
}

double SemanticCatalogue::ExtrapolateLatency(double measured_seconds,
                                             uint64_t measured_records,
                                             uint64_t target_records) {
  EEA_CHECK(measured_records > 1);
  // t(n) = c * log2(n) + k; assume the constant-result term k dominates is
  // false — scale the logarithmic part.
  const double log_measured = std::log2(static_cast<double>(measured_records));
  const double log_target = std::log2(static_cast<double>(target_records));
  return measured_seconds * (log_target / log_measured);
}

}  // namespace exearth::catalog
