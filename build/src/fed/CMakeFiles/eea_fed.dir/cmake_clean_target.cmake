file(REMOVE_RECURSE
  "libeea_fed.a"
)
