// Request-scoped tracing (TraceContext, EventRecorder, TraceRequest) and
// query profiles (QueryProfile, SlowQueryLog).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/query_profile.h"
#include "common/thread_pool.h"
#include "common/trace.h"

namespace {

using exearth::common::CurrentTraceContext;
using exearth::common::EventRecorder;
using exearth::common::OperatorProfile;
using exearth::common::ProfileScope;
using exearth::common::QueryProfile;
using exearth::common::SlowQueryLog;
using exearth::common::SpanEvent;
using exearth::common::ThreadPool;
using exearth::common::TraceRequest;
using exearth::common::TraceSpan;

// Restores a clean recorder around each test that touches it.
class RecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    EventRecorder::Default().Reset();
    EventRecorder::Default().set_enabled(true);
  }
  void TearDown() override {
    EventRecorder::Default().set_enabled(false);
    EventRecorder::Default().Reset();
  }
};

TEST_F(RecorderTest, RequestInstallsAndRemovesContext) {
  EXPECT_FALSE(CurrentTraceContext().active());
  {
    TraceRequest req("test.request");
    EXPECT_TRUE(CurrentTraceContext().active());
    EXPECT_EQ(CurrentTraceContext().trace_id, req.trace_id());
    EXPECT_NE(req.trace_id(), 0u);
  }
  EXPECT_FALSE(CurrentTraceContext().active());
  const std::vector<SpanEvent> events = EventRecorder::Default().Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "test.request");
  EXPECT_EQ(events[0].parent_span_id, 0u);
}

TEST_F(RecorderTest, NestedSpansLinkToParents) {
  uint64_t trace_id = 0;
  {
    TraceRequest req("test.root");
    trace_id = req.trace_id();
    TraceSpan inner("test.inner");
    { TraceSpan leaf("test.leaf"); }
  }
  const std::vector<SpanEvent> events = EventRecorder::Default().Snapshot();
  ASSERT_EQ(events.size(), 3u);
  std::map<std::string, const SpanEvent*> by_name;
  for (const SpanEvent& ev : events) {
    EXPECT_EQ(ev.trace_id, trace_id);
    by_name[ev.name] = &ev;
  }
  EXPECT_EQ(by_name["test.root"]->parent_span_id, 0u);
  EXPECT_EQ(by_name["test.inner"]->parent_span_id,
            by_name["test.root"]->span_id);
  EXPECT_EQ(by_name["test.leaf"]->parent_span_id,
            by_name["test.inner"]->span_id);
}

TEST_F(RecorderTest, NestedRequestJoinsEnclosingTrace) {
  TraceRequest outer("test.outer");
  TraceRequest inner("test.inner_request");
  EXPECT_EQ(inner.trace_id(), outer.trace_id());
  EXPECT_EQ(CurrentTraceContext().trace_id, outer.trace_id());
}

TEST_F(RecorderTest, ThreadPoolTasksAdoptSubmitterContext) {
  uint64_t trace_id = 0;
  {
    ThreadPool pool(2);
    TraceRequest req("test.fanout");
    trace_id = req.trace_id();
    // Two tasks rendezvous before recording, so each provably runs on its
    // own worker thread.
    std::atomic<int> arrived{0};
    auto chunk = [&arrived] {
      arrived.fetch_add(1);
      while (arrived.load() < 2) std::this_thread::yield();
      TraceSpan s("test.chunk");
    };
    auto f1 = pool.Submit(chunk);
    auto f2 = pool.Submit(chunk);
    f1.get();
    f2.get();
  }
  const std::vector<SpanEvent> events = EventRecorder::Default().Snapshot();
  const SpanEvent* root = nullptr;
  size_t chunks = 0;
  std::set<uint32_t> tids;
  for (const SpanEvent& ev : events) {
    EXPECT_EQ(ev.trace_id, trace_id);  // one request, one trace
    if (std::string(ev.name) == "test.fanout") root = &ev;
    if (std::string(ev.name) == "test.chunk") {
      ++chunks;
      tids.insert(ev.tid);
    }
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(chunks, 2u);
  // Worker chunks parent directly under the request root.
  for (const SpanEvent& ev : events) {
    if (std::string(ev.name) == "test.chunk") {
      EXPECT_EQ(ev.parent_span_id, root->span_id);
    }
  }
  EXPECT_EQ(tids.size(), 2u);  // distinct worker threads, distinct rings
}

TEST_F(RecorderTest, NoEventsWithoutActiveRequest) {
  { TraceSpan orphan("test.orphan"); }
  EXPECT_TRUE(EventRecorder::Default().Snapshot().empty());
}

TEST_F(RecorderTest, DisabledRecorderRecordsNothing) {
  EventRecorder::Default().set_enabled(false);
  {
    TraceRequest req("test.disabled");
    EXPECT_EQ(req.trace_id(), 0u);
    TraceSpan s("test.disabled_span");
  }
  EXPECT_TRUE(EventRecorder::Default().Snapshot().empty());
}

TEST_F(RecorderTest, RingOverflowDropsOldestAndCounts) {
  EventRecorder::Default().set_ring_capacity(8);
  const uint64_t dropped_before = EventRecorder::Default().dropped();
  // A fresh thread gets a fresh ring with the small capacity.
  std::thread t([] {
    TraceRequest req("test.overflow_root");
    for (int i = 0; i < 20; ++i) TraceSpan s("test.overflow_span");
  });
  t.join();
  EventRecorder::Default().set_ring_capacity(8192);
  size_t from_thread = 0;
  for (const SpanEvent& ev : EventRecorder::Default().Snapshot()) {
    if (std::string(ev.name).rfind("test.overflow", 0) == 0) ++from_thread;
  }
  EXPECT_EQ(from_thread, 8u);  // 21 recorded, ring kept 8
  EXPECT_EQ(EventRecorder::Default().dropped() - dropped_before, 13u);
}

TEST_F(RecorderTest, ChromeTraceJsonHasRequiredKeys) {
  {
    TraceRequest req("test.chrome");
    TraceSpan s("test.chrome_child");
  }
  const std::string json = EventRecorder::Default().ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": "), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\": "), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"test.chrome\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\": "), std::string::npos);
  EXPECT_NE(json.find("\"parent_span_id\": "), std::string::npos);
  // Balanced braces — cheap well-formedness check without a JSON parser.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST_F(RecorderTest, FlameTreeTextNestsSpans) {
  {
    TraceRequest req("test.flame_root");
    TraceSpan s("test.flame_child");
  }
  const std::string text = EventRecorder::Default().ToFlameTreeText();
  const size_t root_pos = text.find("test.flame_root");
  const size_t child_pos = text.find("test.flame_child");
  ASSERT_NE(root_pos, std::string::npos);
  ASSERT_NE(child_pos, std::string::npos);
  EXPECT_LT(root_pos, child_pos);
  EXPECT_NE(text.find("trace "), std::string::npos);
}

TEST_F(RecorderTest, ResetClearsEvents) {
  { TraceRequest req("test.reset"); }
  EXPECT_FALSE(EventRecorder::Default().Snapshot().empty());
  EventRecorder::Default().Reset();
  EXPECT_TRUE(EventRecorder::Default().Snapshot().empty());
}

TEST_F(RecorderTest, SnapshotWhileRecordingIsSafe) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stop] {
      while (!stop.load()) {
        TraceRequest req("test.concurrent");
        TraceSpan s("test.concurrent_span");
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    const std::vector<SpanEvent> events = EventRecorder::Default().Snapshot();
    for (const SpanEvent& ev : events) {
      ASSERT_NE(ev.name, nullptr);
      ASSERT_LE(ev.start_ns, ev.end_ns);
    }
    (void)EventRecorder::Default().ToChromeTraceJson();
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
}

// --- ProfileScope / QueryProfile / SlowQueryLog ------------------------

TEST(ProfileScopeTest, OutermostScopeIsRoot) {
  ProfileScope outer;
  EXPECT_TRUE(outer.is_root());
  {
    ProfileScope inner;
    EXPECT_FALSE(inner.is_root());
  }
  ProfileScope again;
  EXPECT_FALSE(again.is_root());  // outer is still open
}

QueryProfile MakeProfile(const std::string& name, double total_us) {
  QueryProfile p;
  p.query = name;
  p.trace_id = 7;
  p.total_us = total_us;
  OperatorProfile op;
  op.name = "scan";
  op.wall_us = total_us;
  op.rows_in = 100;
  op.rows_out = 10;
  op.envelope_hits = 3;
  op.chunks = 2;
  op.threads = 2;
  p.operators.push_back(op);
  return p;
}

TEST(QueryProfileTest, ToJsonCarriesOperators) {
  const std::string json = MakeProfile("test.query", 123.5).ToJson();
  EXPECT_NE(json.find("\"query\": \"test.query\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"total_us\": 123.5"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"scan\""), std::string::npos);
  EXPECT_NE(json.find("\"rows_in\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"rows_out\": 10"), std::string::npos);
  EXPECT_NE(json.find("\"envelope_hits\": 3"), std::string::npos);
}

TEST(QueryProfileTest, ToTextListsOperators) {
  const std::string text = MakeProfile("test.query", 123.5).ToText();
  EXPECT_NE(text.find("test.query"), std::string::npos);
  EXPECT_NE(text.find("scan"), std::string::npos);
  EXPECT_NE(text.find("rows=100->10"), std::string::npos);
}

TEST(SlowQueryLogTest, DisabledByDefaultAndDropsBelowThreshold) {
  SlowQueryLog log;
  EXPECT_FALSE(log.enabled());
  log.Configure(4, 100.0);
  EXPECT_TRUE(log.enabled());
  log.Record(MakeProfile("fast", 50.0));   // below threshold
  log.Record(MakeProfile("slow", 150.0));  // admitted
  const std::vector<QueryProfile> got = log.Snapshot();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].query, "slow");
}

TEST(SlowQueryLogTest, KeepsExactlyNWorstSorted) {
  SlowQueryLog log;
  log.Configure(3, 0.0);
  for (double us : {10.0, 50.0, 30.0, 90.0, 20.0, 70.0}) {
    log.Record(MakeProfile("q", us));
  }
  const std::vector<QueryProfile> got = log.Snapshot();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_DOUBLE_EQ(got[0].total_us, 90.0);
  EXPECT_DOUBLE_EQ(got[1].total_us, 70.0);
  EXPECT_DOUBLE_EQ(got[2].total_us, 50.0);
}

TEST(SlowQueryLogTest, ConcurrentRecordsKeepNWorst) {
  SlowQueryLog log;
  log.Configure(5, 0.0);
  ThreadPool pool(4);
  // 4 * 64 distinct totals 1..256; the 5 worst are 252..256.
  pool.ParallelFor(256, [&log](size_t i) {
    log.Record(MakeProfile("q", static_cast<double>(i + 1)));
  });
  const std::vector<QueryProfile> got = log.Snapshot();
  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(got[i].total_us, 256.0 - i);
  }
}

TEST(SlowQueryLogTest, ToJsonIsArrayWorstFirst) {
  SlowQueryLog log;
  log.Configure(2, 0.0);
  log.Record(MakeProfile("small", 10.0));
  log.Record(MakeProfile("big", 99.0));
  const std::string json = log.ToJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_LT(json.find("\"big\""), json.find("\"small\""));
}

TEST(SlowQueryLogTest, ClearKeepsConfiguration) {
  SlowQueryLog log;
  log.Configure(2, 0.0);
  log.Record(MakeProfile("q", 10.0));
  log.Clear();
  EXPECT_TRUE(log.Snapshot().empty());
  EXPECT_TRUE(log.enabled());
  log.Record(MakeProfile("q2", 20.0));
  EXPECT_EQ(log.Snapshot().size(), 1u);
}

TEST(SlowQueryLogTest, DisableStopsRecording) {
  SlowQueryLog log;
  log.Configure(2, 0.0);
  log.Disable();
  log.Record(MakeProfile("q", 10.0));
  EXPECT_FALSE(log.enabled());
  EXPECT_TRUE(log.Snapshot().empty());
}

}  // namespace
