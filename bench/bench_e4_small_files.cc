// E4 — small-file performance ("Size Matters", paper Challenge C5 ref
// [17]): storing small files inline in the NewSQL metadata store beats the
// block path because reads/writes collapse to single-row transactions.
// Sweep: file size x {inline, block} for create+read round trips.
//
// Expected shape: inline wins clearly below the block size and the gap
// narrows (inline becomes impossible) as files grow; the crossover is the
// inline threshold.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>

#include "common/string_util.h"
#include "dfs/hopsfs.h"
#include "sim/cluster.h"

namespace {

using exearth::common::StrFormat;
using exearth::dfs::HopsFsCluster;
using exearth::dfs::HopsFsNameNode;

void BM_SmallFileCreateRead(benchmark::State& state) {
  const size_t file_size = static_cast<size_t>(state.range(0));
  const bool inline_path = state.range(1) != 0;
  HopsFsCluster::Options opt;
  opt.kv_partitions = 8;
  // Inline path: threshold above the file size. Block path: inlining off.
  opt.inline_threshold_bytes = inline_path ? (1 << 20) : 0;
  opt.block_size_bytes = 64 * 1024;  // HDFS-small block for the simulation
  HopsFsCluster cluster(opt);
  HopsFsNameNode nn(&cluster);
  benchmark::DoNotOptimize(nn.Mkdir("/data"));
  const std::string payload(file_size, 'x');
  int i = 0;
  for (auto _ : state) {
    const std::string path = StrFormat("/data/f%d", i++);
    if (!nn.Create(path, payload.size(), payload).ok()) {
      state.SkipWithError("create failed");
      return;
    }
    auto read = nn.ReadFile(path);
    if (!read.ok() || read->size() != file_size) {
      state.SkipWithError("read failed");
      return;
    }
    benchmark::DoNotOptimize(read->data());
  }
  state.counters["file_bytes"] = static_cast<double>(file_size);
  state.counters["kv_rows"] = static_cast<double>(cluster.store().Size());
  // Modeled client-observed read latency on a real deployment: the inline
  // path is one namenode round trip; the block path pays the namenode
  // round trip plus a datanode round trip per block ("Size Matters"'s
  // actual gap — local wall time cannot show network hops).
  const int blocks = static_cast<int>(
      (file_size + opt.block_size_bytes - 1) / opt.block_size_bytes);
  exearth::sim::NetworkSpec net;  // 10 GbE, 50 us
  const double rt_inline =
      net.latency_s + static_cast<double>(file_size) / net.bandwidth_bytes_s;
  const double rt_block =
      net.latency_s +  // namenode lookup
      blocks * net.latency_s +
      static_cast<double>(file_size) / net.bandwidth_bytes_s;
  state.counters["modeled_read_us"] =
      (inline_path ? rt_inline : rt_block) * 1e6;
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(file_size) * 2);
}

}  // namespace

BENCHMARK(BM_SmallFileCreateRead)
    ->ArgNames({"bytes", "inline"})
    ->Args({1 << 10, 1})
    ->Args({1 << 10, 0})
    ->Args({8 << 10, 1})
    ->Args({8 << 10, 0})
    ->Args({64 << 10, 1})
    ->Args({64 << 10, 0})
    ->Args({256 << 10, 1})
    ->Args({256 << 10, 0})
    ->Args({1 << 20, 1})
    ->Args({1 << 20, 0})
    ->Unit(benchmark::kMicrosecond);

// main() comes from bench_main.cc (adds --smoke and the
// metrics-snapshot JSON dump).
