#include "common/logging.h"

#include <atomic>

namespace exearth::common {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kInfo)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  enabled_ = fatal || static_cast<int>(level) >=
                          static_cast<int>(common::GetLogLevel());
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
    std::cerr.flush();
  }
  if (fatal_) std::abort();
}

}  // namespace internal_logging
}  // namespace exearth::common
