#include "geo/wkt.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace exearth::geo {

namespace {

using common::Result;
using common::Status;

// Recursive-descent WKT parser over a string_view cursor.
class WktParser {
 public:
  explicit WktParser(std::string_view text) : text_(text) {}

  Result<Geometry> Parse() {
    SkipSpace();
    std::string tag = ReadWord();
    Geometry out;
    if (tag == "POINT") {
      Point p;
      EEA_RETURN_NOT_OK(ParsePointBody(&p));
      out = Geometry(p);
    } else if (tag == "LINESTRING") {
      LineString ls;
      EEA_RETURN_NOT_OK(ParseCoordList(&ls.points));
      if (ls.points.size() < 2) {
        return Status::InvalidArgument("LINESTRING needs >= 2 points");
      }
      out = Geometry(std::move(ls));
    } else if (tag == "POLYGON") {
      Polygon poly;
      EEA_RETURN_NOT_OK(ParsePolygonBody(&poly));
      out = Geometry(std::move(poly));
    } else if (tag == "MULTIPOLYGON") {
      MultiPolygon mp;
      EEA_RETURN_NOT_OK(Expect('('));
      while (true) {
        Polygon poly;
        EEA_RETURN_NOT_OK(ParsePolygonBody(&poly));
        mp.polygons.push_back(std::move(poly));
        SkipSpace();
        if (!Consume(',')) break;
      }
      EEA_RETURN_NOT_OK(Expect(')'));
      out = Geometry(std::move(mp));
    } else {
      return Status::InvalidArgument("unknown WKT tag: " + tag);
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing characters in WKT");
    }
    return out;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string ReadWord() {
    SkipSpace();
    std::string word;
    while (pos_ < text_.size() &&
           std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
      word += static_cast<char>(
          std::toupper(static_cast<unsigned char>(text_[pos_])));
      ++pos_;
    }
    return word;
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Status::InvalidArgument(std::string("expected '") + c +
                                     "' in WKT");
    }
    return Status::OK();
  }

  Status ParseNumber(double* out) {
    SkipSpace();
    const char* begin = text_.data() + pos_;
    char* end = nullptr;
    double v = std::strtod(begin, &end);
    if (end == begin) return Status::InvalidArgument("expected number in WKT");
    pos_ += static_cast<size_t>(end - begin);
    *out = v;
    return Status::OK();
  }

  Status ParseCoord(Point* p) {
    EEA_RETURN_NOT_OK(ParseNumber(&p->x));
    EEA_RETURN_NOT_OK(ParseNumber(&p->y));
    return Status::OK();
  }

  Status ParsePointBody(Point* p) {
    EEA_RETURN_NOT_OK(Expect('('));
    EEA_RETURN_NOT_OK(ParseCoord(p));
    return Expect(')');
  }

  Status ParseCoordList(std::vector<Point>* pts) {
    EEA_RETURN_NOT_OK(Expect('('));
    while (true) {
      Point p;
      EEA_RETURN_NOT_OK(ParseCoord(&p));
      pts->push_back(p);
      if (!Consume(',')) break;
    }
    return Expect(')');
  }

  Status ParseRing(Ring* ring) {
    std::vector<Point> pts;
    EEA_RETURN_NOT_OK(ParseCoordList(&pts));
    if (pts.size() < 4) {
      return Status::InvalidArgument("polygon ring needs >= 4 points");
    }
    // WKT repeats the first vertex at the end; our Ring is implicitly closed.
    if (!(pts.front() == pts.back())) {
      return Status::InvalidArgument("polygon ring must be closed");
    }
    pts.pop_back();
    ring->points = std::move(pts);
    return Status::OK();
  }

  Status ParsePolygonBody(Polygon* poly) {
    EEA_RETURN_NOT_OK(Expect('('));
    EEA_RETURN_NOT_OK(ParseRing(&poly->outer));
    while (Consume(',')) {
      Ring hole;
      EEA_RETURN_NOT_OK(ParseRing(&hole));
      poly->holes.push_back(std::move(hole));
    }
    return Expect(')');
  }

  std::string_view text_;
  size_t pos_ = 0;
};

void AppendCoord(std::string* out, const Point& p) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f %.6f", p.x, p.y);
  *out += buf;
}

void AppendRing(std::string* out, const Ring& r) {
  *out += '(';
  for (size_t i = 0; i < r.points.size(); ++i) {
    if (i > 0) *out += ", ";
    AppendCoord(out, r.points[i]);
  }
  // Close the ring.
  if (!r.points.empty()) {
    *out += ", ";
    AppendCoord(out, r.points[0]);
  }
  *out += ')';
}

void AppendPolygonBody(std::string* out, const Polygon& poly) {
  *out += '(';
  AppendRing(out, poly.outer);
  for (const Ring& h : poly.holes) {
    *out += ", ";
    AppendRing(out, h);
  }
  *out += ')';
}

}  // namespace

Result<Geometry> ParseWkt(std::string_view wkt) {
  return WktParser(wkt).Parse();
}

std::string ToWkt(const Point& p) {
  std::string out = "POINT (";
  AppendCoord(&out, p);
  out += ')';
  return out;
}

std::string ToWkt(const Box& b) {
  Polygon poly;
  poly.outer.points = {Point{b.min_x, b.min_y}, Point{b.max_x, b.min_y},
                       Point{b.max_x, b.max_y}, Point{b.min_x, b.max_y}};
  return ToWkt(Geometry(std::move(poly)));
}

std::string ToWkt(const Geometry& g) {
  using T = Geometry::Type;
  std::string out;
  switch (g.type()) {
    case T::kPoint:
      return ToWkt(g.AsPoint());
    case T::kLineString: {
      out = "LINESTRING (";
      const auto& pts = g.AsLineString().points;
      for (size_t i = 0; i < pts.size(); ++i) {
        if (i > 0) out += ", ";
        AppendCoord(&out, pts[i]);
      }
      out += ')';
      return out;
    }
    case T::kPolygon: {
      out = "POLYGON ";
      AppendPolygonBody(&out, g.AsPolygon());
      return out;
    }
    case T::kMultiPolygon: {
      out = "MULTIPOLYGON (";
      const auto& polys = g.AsMultiPolygon().polygons;
      for (size_t i = 0; i < polys.size(); ++i) {
        if (i > 0) out += ", ";
        AppendPolygonBody(&out, polys[i]);
      }
      out += ')';
      return out;
    }
  }
  return out;
}

}  // namespace exearth::geo
