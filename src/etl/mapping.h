// GeoTriples-style R2RML/RML mapping engine (Challenge C3, experiment E12):
// declarative term maps turn table rows into RDF triples, with first-class
// handling of WKT geometry columns (emitted as geo:asWKT wktLiterals so the
// output is directly loadable into a strabon::GeoStore).

#ifndef EXEARTH_ETL_MAPPING_H_
#define EXEARTH_ETL_MAPPING_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "etl/table.h"
#include "rdf/triple_store.h"

namespace exearth::etl {

/// How one term of the output triple is produced from a row.
struct TermMap {
  enum class Kind {
    kTemplate,  // "http://x/field/{id}" — {col} placeholders expanded
    kColumn,    // the raw cell value of a column
    kConstant,  // a fixed value
  };
  Kind kind = Kind::kConstant;
  std::string value;  // template string / column name / constant
  rdf::TermType term_type = rdf::TermType::kIri;
  std::string datatype;  // literal datatype IRI (optional)

  static TermMap Template(std::string tmpl,
                          rdf::TermType type = rdf::TermType::kIri) {
    return TermMap{Kind::kTemplate, std::move(tmpl), type, ""};
  }
  static TermMap Column(std::string column, std::string datatype = "") {
    return TermMap{Kind::kColumn, std::move(column), rdf::TermType::kLiteral,
                   std::move(datatype)};
  }
  static TermMap ColumnIri(std::string column) {
    return TermMap{Kind::kColumn, std::move(column), rdf::TermType::kIri, ""};
  }
  static TermMap Constant(std::string iri) {
    return TermMap{Kind::kConstant, std::move(iri), rdf::TermType::kIri, ""};
  }
};

/// predicate -> object production rule.
struct PredicateObjectMap {
  std::string predicate_iri;
  TermMap object;
};

/// One triples map: how a row becomes a subject plus its triples.
struct TriplesMap {
  TermMap subject;           // usually a Template
  std::string subject_class; // optional rdf:type object IRI ("" = none)
  std::vector<PredicateObjectMap> predicate_objects;
  /// Name of a column holding WKT; emitted as geo:asWKT wktLiteral.
  std::string wkt_column;    // "" = no geometry
};

/// Statistics of one Execute call.
struct MappingStats {
  uint64_t rows_processed = 0;
  uint64_t triples_generated = 0;
};

/// Applies `map` to every row of `table`, appending triples to `out`.
/// The caller Build()s the store afterwards. Fails on references to
/// missing columns or malformed templates; WKT well-formedness is
/// validated when `validate_wkt`.
common::Result<MappingStats> ExecuteMapping(const Table& table,
                                            const TriplesMap& map,
                                            rdf::TripleStore* out,
                                            bool validate_wkt = true);

/// Expands "{col}" placeholders in `tmpl` using `row` cells. Exposed for
/// tests.
common::Result<std::string> ExpandTemplate(
    const std::string& tmpl, const Table& table,
    const std::vector<std::string>& row);

}  // namespace exearth::etl

#endif  // EXEARTH_ETL_MAPPING_H_
