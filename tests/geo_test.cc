#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/rng.h"
#include "geo/geometry.h"
#include "geo/rtree.h"
#include "geo/wkt.h"

namespace exearth::geo {
namespace {

Polygon MakeSquare(double x0, double y0, double size) {
  Polygon p;
  p.outer.points = {Point{x0, y0}, Point{x0 + size, y0},
                    Point{x0 + size, y0 + size}, Point{x0, y0 + size}};
  return p;
}

// --- Box -----------------------------------------------------------------

TEST(BoxTest, EmptyByDefault) {
  Box b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.Area(), 0.0);
}

TEST(BoxTest, ExpandToInclude) {
  Box b;
  b.ExpandToInclude(Point{1, 2});
  EXPECT_FALSE(b.empty());
  EXPECT_EQ(b.Area(), 0.0);
  b.ExpandToInclude(Point{3, 5});
  EXPECT_DOUBLE_EQ(b.Area(), 2.0 * 3.0);
}

TEST(BoxTest, ContainsAndIntersects) {
  Box a = Box::Of(0, 0, 10, 10);
  Box b = Box::Of(2, 2, 4, 4);
  Box c = Box::Of(9, 9, 12, 12);
  Box d = Box::Of(11, 11, 12, 12);
  EXPECT_TRUE(a.Contains(b));
  EXPECT_FALSE(b.Contains(a));
  EXPECT_TRUE(a.Intersects(c));
  EXPECT_FALSE(a.Intersects(d));
  EXPECT_TRUE(a.Contains(Point{10, 10}));  // boundary inclusive
  EXPECT_FALSE(a.Contains(Point{10.001, 10}));
}

TEST(BoxTest, TouchingBoxesIntersect) {
  Box a = Box::Of(0, 0, 1, 1);
  Box b = Box::Of(1, 0, 2, 1);
  EXPECT_TRUE(a.Intersects(b));
}

TEST(BoxTest, Distance) {
  Box a = Box::Of(0, 0, 1, 1);
  EXPECT_DOUBLE_EQ(a.Distance(Point{0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(a.Distance(Point{3, 1}), 2.0);
  EXPECT_DOUBLE_EQ(a.Distance(Box::Of(4, 1, 5, 2)), 3.0);
  EXPECT_DOUBLE_EQ(a.Distance(Box::Of(4, 5, 6, 7)), 5.0);  // 3-4-5 triangle
  EXPECT_DOUBLE_EQ(a.Distance(Box::Of(0.5, 0.5, 2, 2)), 0.0);
}

TEST(BoxTest, EnlargementToInclude) {
  Box a = Box::Of(0, 0, 2, 2);
  EXPECT_DOUBLE_EQ(a.EnlargementToInclude(Box::Of(0, 0, 1, 1)), 0.0);
  EXPECT_DOUBLE_EQ(a.EnlargementToInclude(Box::Of(0, 0, 4, 2)), 4.0);
}

TEST(BoxTest, Buffered) {
  Box a = Box::Of(1, 1, 2, 2).Buffered(0.5);
  EXPECT_DOUBLE_EQ(a.min_x, 0.5);
  EXPECT_DOUBLE_EQ(a.max_y, 2.5);
}

// --- Ring / Polygon --------------------------------------------------------

TEST(RingTest, SignedArea) {
  Ring ccw;
  ccw.points = {Point{0, 0}, Point{2, 0}, Point{2, 2}, Point{0, 2}};
  EXPECT_DOUBLE_EQ(ccw.SignedArea(), 4.0);
  Ring cw;
  cw.points = {Point{0, 0}, Point{0, 2}, Point{2, 2}, Point{2, 0}};
  EXPECT_DOUBLE_EQ(cw.SignedArea(), -4.0);
  EXPECT_DOUBLE_EQ(cw.Area(), 4.0);
}

TEST(RingTest, ContainsInteriorBoundaryExterior) {
  Ring r;
  r.points = {Point{0, 0}, Point{4, 0}, Point{4, 4}, Point{0, 4}};
  EXPECT_TRUE(r.Contains(Point{2, 2}));
  EXPECT_TRUE(r.Contains(Point{0, 2}));   // on edge
  EXPECT_TRUE(r.Contains(Point{4, 4}));   // on vertex
  EXPECT_FALSE(r.Contains(Point{5, 2}));
  EXPECT_FALSE(r.Contains(Point{-0.001, 2}));
}

TEST(RingTest, ContainsConcave) {
  // L-shaped ring.
  Ring r;
  r.points = {Point{0, 0}, Point{4, 0}, Point{4, 2}, Point{2, 2},
              Point{2, 4}, Point{0, 4}};
  EXPECT_TRUE(r.Contains(Point{1, 3}));
  EXPECT_TRUE(r.Contains(Point{3, 1}));
  EXPECT_FALSE(r.Contains(Point{3, 3}));  // in the notch
}

TEST(PolygonTest, AreaWithHole) {
  Polygon p = MakeSquare(0, 0, 10);
  Ring hole;
  hole.points = {Point{2, 2}, Point{4, 2}, Point{4, 4}, Point{2, 4}};
  p.holes.push_back(hole);
  EXPECT_DOUBLE_EQ(p.Area(), 100.0 - 4.0);
  EXPECT_EQ(p.NumVertices(), 8u);
}

TEST(PolygonTest, ContainsRespectsHoles) {
  Polygon p = MakeSquare(0, 0, 10);
  Ring hole;
  hole.points = {Point{2, 2}, Point{4, 2}, Point{4, 4}, Point{2, 4}};
  p.holes.push_back(hole);
  EXPECT_TRUE(p.Contains(Point{1, 1}));
  EXPECT_FALSE(p.Contains(Point{3, 3}));  // inside hole
  EXPECT_TRUE(p.Contains(Point{2, 3}));   // on hole boundary
}

TEST(MultiPolygonTest, AreaAndContains) {
  MultiPolygon mp;
  mp.polygons.push_back(MakeSquare(0, 0, 1));
  mp.polygons.push_back(MakeSquare(10, 10, 2));
  EXPECT_DOUBLE_EQ(mp.Area(), 1.0 + 4.0);
  EXPECT_TRUE(mp.Contains(Point{11, 11}));
  EXPECT_FALSE(mp.Contains(Point{5, 5}));
  EXPECT_EQ(mp.NumVertices(), 8u);
  Box env = mp.Envelope();
  EXPECT_DOUBLE_EQ(env.min_x, 0);
  EXPECT_DOUBLE_EQ(env.max_x, 12);
}

// --- Primitives -------------------------------------------------------------

TEST(PrimitivesTest, PointDistance) {
  EXPECT_DOUBLE_EQ(Distance(Point{0, 0}, Point{3, 4}), 5.0);
}

TEST(PrimitivesTest, PointSegmentDistance) {
  EXPECT_DOUBLE_EQ(PointSegmentDistance(Point{0, 1}, Point{-1, 0}, Point{1, 0}),
                   1.0);
  // Beyond the endpoint: distance to the endpoint.
  EXPECT_DOUBLE_EQ(PointSegmentDistance(Point{5, 0}, Point{-1, 0}, Point{1, 0}),
                   4.0);
  // Degenerate segment.
  EXPECT_DOUBLE_EQ(PointSegmentDistance(Point{3, 4}, Point{0, 0}, Point{0, 0}),
                   5.0);
}

TEST(PrimitivesTest, SegmentsIntersect) {
  EXPECT_TRUE(SegmentsIntersect(Point{0, 0}, Point{2, 2}, Point{0, 2},
                                Point{2, 0}));
  EXPECT_FALSE(SegmentsIntersect(Point{0, 0}, Point{1, 1}, Point{2, 2},
                                 Point{3, 3}));
  // Collinear overlapping.
  EXPECT_TRUE(SegmentsIntersect(Point{0, 0}, Point{2, 0}, Point{1, 0},
                                Point{3, 0}));
  // Touching at an endpoint.
  EXPECT_TRUE(SegmentsIntersect(Point{0, 0}, Point{1, 0}, Point{1, 0},
                                Point{2, 5}));
}

// --- Geometry predicates ----------------------------------------------------

TEST(GeometryPredicates, PointInPolygon) {
  Geometry poly(MakeSquare(0, 0, 4));
  Geometry inside(Point{1, 1});
  Geometry outside(Point{9, 9});
  EXPECT_TRUE(Intersects(poly, inside));
  EXPECT_TRUE(Intersects(inside, poly));  // symmetric
  EXPECT_FALSE(Intersects(poly, outside));
  EXPECT_TRUE(Contains(poly, inside));
  EXPECT_TRUE(Within(inside, poly));
  EXPECT_TRUE(Disjoint(poly, outside));
}

TEST(GeometryPredicates, PolygonPolygon) {
  Geometry a(MakeSquare(0, 0, 4));
  Geometry b(MakeSquare(2, 2, 4));   // overlaps a
  Geometry c(MakeSquare(10, 10, 2)); // disjoint
  Geometry d(MakeSquare(1, 1, 1));   // inside a
  EXPECT_TRUE(Intersects(a, b));
  EXPECT_FALSE(Intersects(a, c));
  EXPECT_TRUE(Contains(a, d));
  EXPECT_FALSE(Contains(a, b));
  EXPECT_TRUE(Within(d, a));
}

TEST(GeometryPredicates, NestedPolygonIntersects) {
  // One polygon fully inside another: no edge crossings, still intersects.
  Geometry outer(MakeSquare(0, 0, 10));
  Geometry inner(MakeSquare(4, 4, 1));
  EXPECT_TRUE(Intersects(outer, inner));
  EXPECT_TRUE(Intersects(inner, outer));
}

TEST(GeometryPredicates, HolePreventsContainment) {
  Polygon donut = MakeSquare(0, 0, 10);
  Ring hole;
  hole.points = {Point{3, 3}, Point{7, 3}, Point{7, 7}, Point{3, 7}};
  donut.holes.push_back(hole);
  Geometry a(donut);
  Geometry in_hole(MakeSquare(4, 4, 1));
  EXPECT_FALSE(Contains(a, in_hole));
  Geometry solid_part(MakeSquare(0.5, 0.5, 1));
  EXPECT_TRUE(Contains(a, solid_part));
}

TEST(GeometryPredicates, LineStringPolygon) {
  LineString crossing;
  crossing.points = {Point{-1, 2}, Point{5, 2}};
  LineString outside;
  outside.points = {Point{-5, -5}, Point{-4, -4}};
  Geometry poly(MakeSquare(0, 0, 4));
  EXPECT_TRUE(Intersects(Geometry(crossing), poly));
  EXPECT_FALSE(Intersects(Geometry(outside), poly));
  LineString inside;
  inside.points = {Point{1, 1}, Point{2, 2}};
  EXPECT_TRUE(Contains(poly, Geometry(inside)));
}

TEST(GeometryPredicates, LineStringLineString) {
  LineString a;
  a.points = {Point{0, 0}, Point{4, 4}};
  LineString b;
  b.points = {Point{0, 4}, Point{4, 0}};
  LineString c;
  c.points = {Point{10, 10}, Point{11, 11}};
  EXPECT_TRUE(Intersects(Geometry(a), Geometry(b)));
  EXPECT_FALSE(Intersects(Geometry(a), Geometry(c)));
  EXPECT_DOUBLE_EQ(Distance(Geometry(a), Geometry(b)), 0.0);
}

TEST(GeometryPredicates, MultiPolygonIntersects) {
  MultiPolygon mp;
  mp.polygons.push_back(MakeSquare(0, 0, 1));
  mp.polygons.push_back(MakeSquare(10, 0, 1));
  Geometry gmp(mp);
  EXPECT_TRUE(Intersects(gmp, Geometry(Point{10.5, 0.5})));
  EXPECT_FALSE(Intersects(gmp, Geometry(Point{5, 0.5})));
  EXPECT_TRUE(Intersects(gmp, Geometry(MakeSquare(0.5, 0.5, 10))));
}

TEST(GeometryPredicates, IntersectsBox) {
  Geometry poly(MakeSquare(0, 0, 4));
  EXPECT_TRUE(Intersects(poly, Box::Of(3, 3, 5, 5)));
  EXPECT_FALSE(Intersects(poly, Box::Of(5, 5, 6, 6)));
  // Box fully inside polygon.
  EXPECT_TRUE(Intersects(poly, Box::Of(1, 1, 2, 2)));
  // Polygon fully inside box.
  EXPECT_TRUE(Intersects(poly, Box::Of(-10, -10, 10, 10)));
  Geometry pt(Point{1, 1});
  EXPECT_TRUE(Intersects(pt, Box::Of(0, 0, 2, 2)));
  EXPECT_FALSE(Intersects(pt, Box::Of(2, 2, 3, 3)));
}

TEST(GeometryPredicates, DistancePolygonPolygon) {
  Geometry a(MakeSquare(0, 0, 1));
  Geometry b(MakeSquare(4, 0, 1));
  EXPECT_DOUBLE_EQ(Distance(a, b), 3.0);
  EXPECT_TRUE(WithinDistance(a, b, 3.0));
  EXPECT_FALSE(WithinDistance(a, b, 2.9));
  Geometry c(MakeSquare(0.5, 0.5, 1));
  EXPECT_DOUBLE_EQ(Distance(a, c), 0.0);
}

TEST(GeometryPredicates, DistancePointGeometry) {
  Geometry poly(MakeSquare(0, 0, 2));
  EXPECT_DOUBLE_EQ(Distance(Geometry(Point{5, 0}), poly), 3.0);
  EXPECT_DOUBLE_EQ(Distance(Geometry(Point{1, 1}), poly), 0.0);
  LineString ls;
  ls.points = {Point{0, 10}, Point{10, 10}};
  EXPECT_DOUBLE_EQ(Distance(Geometry(Point{5, 13}), Geometry(ls)), 3.0);
}

TEST(GeometryTest, EnvelopeAndVertices) {
  Geometry p(Point{3, 4});
  EXPECT_TRUE(p.Envelope().Contains(Point{3, 4}));
  EXPECT_EQ(p.NumVertices(), 1u);
  MultiPolygon mp;
  mp.polygons.push_back(MakeSquare(0, 0, 1));
  mp.polygons.push_back(MakeSquare(2, 2, 1));
  Geometry g(mp);
  EXPECT_EQ(g.NumVertices(), 8u);
  EXPECT_DOUBLE_EQ(g.Area(), 2.0);
}

// --- WKT ---------------------------------------------------------------------

TEST(WktTest, ParsePoint) {
  auto r = ParseWkt("POINT (3.5 -2)");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_TRUE(r->IsPoint());
  EXPECT_DOUBLE_EQ(r->AsPoint().x, 3.5);
  EXPECT_DOUBLE_EQ(r->AsPoint().y, -2.0);
}

TEST(WktTest, ParseLineString) {
  auto r = ParseWkt("LINESTRING (0 0, 1 1, 2 0)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->AsLineString().points.size(), 3u);
}

TEST(WktTest, ParsePolygonWithHole) {
  auto r = ParseWkt(
      "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (2 2, 4 2, 4 4, 2 4, 2 2))");
  ASSERT_TRUE(r.ok()) << r.status();
  const Polygon& p = r->AsPolygon();
  EXPECT_EQ(p.outer.points.size(), 4u);  // closing vertex dropped
  ASSERT_EQ(p.holes.size(), 1u);
  EXPECT_DOUBLE_EQ(p.Area(), 96.0);
}

TEST(WktTest, ParseMultiPolygon) {
  auto r = ParseWkt(
      "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((5 5, 6 5, 6 6, 5 6, 5 "
      "5)))");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->AsMultiPolygon().polygons.size(), 2u);
  EXPECT_DOUBLE_EQ(r->Area(), 2.0);
}

TEST(WktTest, CaseInsensitiveTag) {
  EXPECT_TRUE(ParseWkt("point(1 2)").ok());
  EXPECT_TRUE(ParseWkt("Polygon((0 0,1 0,1 1,0 1,0 0))").ok());
}

TEST(WktTest, RejectsMalformed) {
  EXPECT_FALSE(ParseWkt("").ok());
  EXPECT_FALSE(ParseWkt("CIRCLE (0 0, 5)").ok());
  EXPECT_FALSE(ParseWkt("POINT (1)").ok());
  EXPECT_FALSE(ParseWkt("POINT (1 2").ok());
  EXPECT_FALSE(ParseWkt("POINT (1 2) garbage").ok());
  EXPECT_FALSE(ParseWkt("LINESTRING (0 0)").ok());
  // Unclosed ring.
  EXPECT_FALSE(ParseWkt("POLYGON ((0 0, 1 0, 1 1, 0 1))").ok());
  // Too few vertices.
  EXPECT_FALSE(ParseWkt("POLYGON ((0 0, 1 0, 0 0))").ok());
}

TEST(WktTest, RoundTripPolygon) {
  const char* wkt = "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))";
  auto g = ParseWkt(wkt);
  ASSERT_TRUE(g.ok());
  auto g2 = ParseWkt(ToWkt(*g));
  ASSERT_TRUE(g2.ok());
  EXPECT_DOUBLE_EQ(g2->Area(), 100.0);
  EXPECT_EQ(g2->NumVertices(), g->NumVertices());
}

TEST(WktTest, RoundTripMultiPolygon) {
  MultiPolygon mp;
  mp.polygons.push_back(MakeSquare(0, 0, 2));
  mp.polygons.push_back(MakeSquare(5, 5, 3));
  Geometry g(mp);
  auto parsed = ParseWkt(ToWkt(g));
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_DOUBLE_EQ(parsed->Area(), g.Area());
}

TEST(WktTest, ToWktBox) {
  auto g = ParseWkt(ToWkt(Box::Of(0, 0, 2, 3)));
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->Area(), 6.0);
}

// --- RTree ---------------------------------------------------------------

TEST(RTreeTest, EmptyTreeQueries) {
  RTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.Query(Box::Of(0, 0, 1, 1)).empty());
}

TEST(RTreeTest, InsertAndQuery) {
  RTree tree;
  for (int i = 0; i < 100; ++i) {
    double x = static_cast<double>(i % 10);
    double y = static_cast<double>(i / 10);
    tree.Insert(Box::Of(x, y, x + 0.5, y + 0.5), i);
  }
  EXPECT_EQ(tree.size(), 100u);
  auto hits = tree.Query(Box::Of(0, 0, 2.9, 0.9));
  std::set<int64_t> s(hits.begin(), hits.end());
  EXPECT_EQ(s, (std::set<int64_t>{0, 1, 2}));
}

TEST(RTreeTest, QueryMatchesBruteForce) {
  common::Rng rng(42);
  std::vector<RTree::Entry> entries;
  RTree tree;
  for (int i = 0; i < 2000; ++i) {
    double x = rng.UniformDouble(0, 1000);
    double y = rng.UniformDouble(0, 1000);
    double w = rng.UniformDouble(0, 5);
    double h = rng.UniformDouble(0, 5);
    Box b = Box::Of(x, y, x + w, y + h);
    entries.push_back({b, i});
    tree.Insert(b, i);
  }
  for (int q = 0; q < 50; ++q) {
    double x = rng.UniformDouble(0, 950);
    double y = rng.UniformDouble(0, 950);
    Box query = Box::Of(x, y, x + 50, y + 50);
    std::set<int64_t> expected;
    for (const auto& e : entries) {
      if (e.box.Intersects(query)) expected.insert(e.id);
    }
    auto hits = tree.Query(query);
    std::set<int64_t> actual(hits.begin(), hits.end());
    EXPECT_EQ(actual, expected) << "query " << q;
  }
}

TEST(RTreeTest, BulkLoadMatchesBruteForce) {
  common::Rng rng(43);
  std::vector<RTree::Entry> entries;
  for (int i = 0; i < 5000; ++i) {
    double x = rng.UniformDouble(0, 1000);
    double y = rng.UniformDouble(0, 1000);
    entries.push_back({Box::Of(x, y, x + 1, y + 1), i});
  }
  RTree tree = RTree::BulkLoad(entries);
  EXPECT_EQ(tree.size(), 5000u);
  for (int q = 0; q < 30; ++q) {
    double x = rng.UniformDouble(0, 900);
    double y = rng.UniformDouble(0, 900);
    Box query = Box::Of(x, y, x + 100, y + 100);
    std::set<int64_t> expected;
    for (const auto& e : entries) {
      if (e.box.Intersects(query)) expected.insert(e.id);
    }
    auto hits = tree.Query(query);
    std::set<int64_t> actual(hits.begin(), hits.end());
    EXPECT_EQ(actual, expected);
  }
}

TEST(RTreeTest, BulkLoadEmptyAndSingle) {
  RTree empty = RTree::BulkLoad({});
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.Query(Box::Of(0, 0, 1, 1)).empty());
  RTree single = RTree::BulkLoad({{Box::Of(0, 0, 1, 1), 7}});
  auto hits = single.Query(Box::Of(0.5, 0.5, 2, 2));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 7);
}

TEST(RTreeTest, HeightGrowsLogarithmically) {
  common::Rng rng(44);
  std::vector<RTree::Entry> entries;
  for (int i = 0; i < 10000; ++i) {
    double x = rng.UniformDouble(0, 1000);
    double y = rng.UniformDouble(0, 1000);
    entries.push_back({Box::Of(x, y, x, y), i});
  }
  RTree tree = RTree::BulkLoad(entries);
  EXPECT_GE(tree.Height(), 3);
  EXPECT_LE(tree.Height(), 6);
}

TEST(RTreeTest, VisitEarlyStop) {
  RTree tree;
  for (int i = 0; i < 100; ++i) {
    tree.Insert(Box::Of(0, 0, 1, 1), i);
  }
  int count = 0;
  tree.Visit(Box::Of(0, 0, 1, 1), [&](const RTree::Entry&) {
    ++count;
    return count < 5;
  });
  EXPECT_EQ(count, 5);
}

TEST(RTreeTest, QueryTouchesFewNodesOnPointQuery) {
  common::Rng rng(45);
  std::vector<RTree::Entry> entries;
  for (int i = 0; i < 20000; ++i) {
    double x = rng.UniformDouble(0, 1000);
    double y = rng.UniformDouble(0, 1000);
    entries.push_back({Box::Of(x, y, x + 0.1, y + 0.1), i});
  }
  RTree tree = RTree::BulkLoad(entries);
  tree.Query(Box::Of(500, 500, 500.5, 500.5));
  // A point-ish query should touch a tiny fraction of ~1900 nodes.
  EXPECT_LT(tree.last_nodes_visited(), 60u);
}

TEST(RTreeTest, Nearest) {
  RTree tree;
  for (int i = 0; i < 10; ++i) {
    double x = static_cast<double>(i * 10);
    tree.Insert(Box::Of(x, 0, x + 1, 1), i);
  }
  auto nearest = tree.Nearest(Point{0.5, 0.5}, 3);
  ASSERT_EQ(nearest.size(), 3u);
  EXPECT_EQ(nearest[0].id, 0);
  EXPECT_EQ(nearest[1].id, 1);
  EXPECT_EQ(nearest[2].id, 2);
}

TEST(RTreeTest, NearestMoreThanSize) {
  RTree tree;
  tree.Insert(Box::Of(0, 0, 1, 1), 1);
  auto nearest = tree.Nearest(Point{5, 5}, 10);
  EXPECT_EQ(nearest.size(), 1u);
}

TEST(RTreeTest, MoveSemantics) {
  RTree a;
  a.Insert(Box::Of(0, 0, 1, 1), 1);
  RTree b = std::move(a);
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.Query(Box::Of(0, 0, 2, 2)).size(), 1u);
}

TEST(RTreeTest, NearestOnEmptyTree) {
  RTree tree;
  EXPECT_TRUE(tree.Nearest(Point{0, 0}, 5).empty());
  RTree bulk = RTree::BulkLoad({});
  EXPECT_TRUE(bulk.Nearest(Point{3, 3}, 1).empty());
}

TEST(RTreeTest, NearestKLargerThanSize) {
  RTree tree = RTree::BulkLoad({{Box::Of(0, 0, 1, 1), 1},
                                {Box::Of(5, 5, 6, 6), 2},
                                {Box::Of(9, 9, 10, 10), 3}});
  auto nearest = tree.Nearest(Point{0, 0}, 100);
  ASSERT_EQ(nearest.size(), 3u);
  EXPECT_EQ(nearest[0].id, 1);
  EXPECT_EQ(nearest[1].id, 2);
  EXPECT_EQ(nearest[2].id, 3);
}

TEST(RTreeTest, BulkLoadIsFrozenInsertThaws) {
  RTree tree = RTree::BulkLoad({{Box::Of(0, 0, 1, 1), 1}});
  EXPECT_TRUE(tree.frozen());
  tree.Insert(Box::Of(2, 2, 3, 3), 2);
  EXPECT_FALSE(tree.frozen());
  // Unfrozen queries fall back to the pointer tree and stay correct.
  EXPECT_EQ(tree.Query(Box::Of(0, 0, 4, 4)).size(), 2u);
  tree.Freeze();
  EXPECT_TRUE(tree.frozen());
  EXPECT_EQ(tree.Query(Box::Of(0, 0, 4, 4)).size(), 2u);
}

TEST(RTreeTest, FrozenMatchesIncrementalRandomized) {
  common::Rng rng(46);
  std::vector<RTree::Entry> entries;
  RTree incremental;
  for (int i = 0; i < 3000; ++i) {
    double x = rng.UniformDouble(0, 1000);
    double y = rng.UniformDouble(0, 1000);
    double w = rng.UniformDouble(0, 8);
    double h = rng.UniformDouble(0, 8);
    Box b = Box::Of(x, y, x + w, y + h);
    entries.push_back({b, i});
    incremental.Insert(b, i);
  }
  RTree bulk = RTree::BulkLoad(entries);
  ASSERT_TRUE(bulk.frozen());
  ASSERT_FALSE(incremental.frozen());
  for (int q = 0; q < 40; ++q) {
    double x = rng.UniformDouble(0, 950);
    double y = rng.UniformDouble(0, 950);
    Box query = Box::Of(x, y, x + 60, y + 60);
    auto pointer_hits = incremental.Query(query);  // pointer-tree path
    std::set<int64_t> expected(pointer_hits.begin(), pointer_hits.end());
    auto frozen_hits = bulk.Query(query);  // flat-arena path
    EXPECT_EQ(std::set<int64_t>(frozen_hits.begin(), frozen_hits.end()),
              expected)
        << "query " << q;
  }
  // Freezing the incrementally built tree must not change its answers.
  incremental.Freeze();
  for (int q = 0; q < 40; ++q) {
    double x = rng.UniformDouble(0, 950);
    double y = rng.UniformDouble(0, 950);
    Box query = Box::Of(x, y, x + 60, y + 60);
    std::set<int64_t> expected;
    for (const auto& e : entries) {
      if (e.box.Intersects(query)) expected.insert(e.id);
    }
    auto hits = incremental.Query(query);
    EXPECT_EQ(std::set<int64_t>(hits.begin(), hits.end()), expected);
  }
}

TEST(RTreeTest, VisitWithReportsStatsAndStopsEarly) {
  std::vector<RTree::Entry> entries;
  for (int i = 0; i < 1000; ++i) {
    entries.push_back({Box::Of(i, 0, i + 0.5, 1), i});
  }
  RTree tree = RTree::BulkLoad(entries);
  RTree::TraversalStats stats;
  size_t count = 0;
  tree.VisitWith(
      Box::Of(0, 0, 1000, 1), [&](const RTree::Entry&) { return ++count < 7; },
      &stats);
  EXPECT_EQ(count, 7u);
  EXPECT_GT(stats.nodes_visited, 0u);
  // A full traversal visits more nodes than the early-stopped one.
  RTree::TraversalStats full;
  tree.VisitWith(
      Box::Of(0, 0, 1000, 1), [](const RTree::Entry&) { return true; }, &full);
  EXPECT_GT(full.nodes_visited, stats.nodes_visited);
}

}  // namespace
}  // namespace exearth::geo
