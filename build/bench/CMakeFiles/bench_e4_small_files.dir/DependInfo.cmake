
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e4_small_files.cc" "bench/CMakeFiles/bench_e4_small_files.dir/bench_e4_small_files.cc.o" "gcc" "bench/CMakeFiles/bench_e4_small_files.dir/bench_e4_small_files.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dfs/CMakeFiles/eea_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/eea_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/eea_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/eea_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
