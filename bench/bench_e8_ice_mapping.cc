// E8 — high-resolution ice mapping (paper Challenge A2): sea-ice
// concentration and stage-of-development maps at <= 1 km from SAR, with
// product delivery over constrained ship links (PCDSS). Series:
//   (a) end-to-end pipeline time and classification accuracy vs scene
//       size (throughput in km^2/s at 40 m pixels);
//   (b) PCDSS payload size and Iridium transfer time vs chart size — the
//       delivery constraint the paper highlights for polar users.

#include <benchmark/benchmark.h>

#include "polar/pipeline.h"

namespace {

namespace eea = exearth;

void BM_IcePipeline(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  double accuracy = 0;
  double recall = 0;
  size_t pcdss = 0;
  for (auto _ : state) {
    eea::polar::PolarOptions opt;
    opt.width = size;
    opt.height = size;
    opt.ice_patches = size / 8;
    opt.training_samples = 2500;
    opt.epochs = 4;
    opt.chart_cell_pixels = 25;
    opt.injected_icebergs = size / 20;
    opt.seed = 77;
    auto report = eea::polar::RunPolarPipeline(opt, nullptr);
    if (!report.ok()) {
      state.SkipWithError(report.status().ToString().c_str());
      return;
    }
    accuracy = report->ice_accuracy;
    recall = report->iceberg_recall;
    pcdss = report->pcdss_bytes;
  }
  const double km2 = static_cast<double>(size) * size * 40.0 * 40.0 / 1e6;
  state.counters["scene_km2"] = km2;
  state.counters["km2_per_s"] = benchmark::Counter(
      km2 * state.iterations(), benchmark::Counter::kIsRate);
  state.counters["ice_accuracy"] = accuracy;
  state.counters["iceberg_recall"] = recall;
  state.counters["pcdss_bytes"] = static_cast<double>(pcdss);
}

void BM_PcdssEncoding(benchmark::State& state) {
  const int cells = static_cast<int>(state.range(0));
  // A structured chart: ice gradient with embedded leads.
  eea::raster::ClassMap map(cells * 4, cells * 4);
  for (int y = 0; y < map.height(); ++y) {
    for (int x = 0; x < map.width(); ++x) {
      int cls = (x * eea::raster::kNumIceClasses) / map.width();
      if ((x + y) % 17 == 0) cls = 0;  // leads
      map.at(x, y) = static_cast<uint8_t>(cls);
    }
  }
  eea::raster::GeoTransform t{0, 0, 250.0};
  auto chart = eea::polar::MakeIceChart(map, t, 4);
  if (!chart.ok()) {
    state.SkipWithError("chart failed");
    return;
  }
  size_t bytes = 0;
  for (auto _ : state) {
    auto payload = eea::polar::EncodePcdss(*chart);
    bytes = payload.size();
    auto decoded = eea::polar::DecodePcdss(payload);
    if (!decoded.ok()) {
      state.SkipWithError("decode failed");
      return;
    }
    benchmark::DoNotOptimize(decoded->concentration.data().data());
  }
  const double raw_bytes = static_cast<double>(cells) * cells * 5;  // float+cls
  state.counters["chart_cells"] = static_cast<double>(cells) * cells;
  state.counters["payload_bytes"] = static_cast<double>(bytes);
  state.counters["compression_x"] = raw_bytes / static_cast<double>(bytes);
  state.counters["iridium_2400bps_s"] =
      eea::polar::TransferSeconds(bytes, 2400.0);
}

}  // namespace

BENCHMARK(BM_IcePipeline)
    ->ArgNames({"size"})
    ->Arg(100)
    ->Arg(200)
    ->Arg(400)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_PcdssEncoding)
    ->ArgNames({"cells"})
    ->Arg(32)
    ->Arg(128)
    ->Arg(512)
    ->Unit(benchmark::kMicrosecond);

// main() comes from bench_main.cc (adds --smoke and the
// metrics-snapshot JSON dump).
