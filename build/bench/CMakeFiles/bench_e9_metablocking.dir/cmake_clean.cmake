file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_metablocking.dir/bench_e9_metablocking.cc.o"
  "CMakeFiles/bench_e9_metablocking.dir/bench_e9_metablocking.cc.o.d"
  "bench_e9_metablocking"
  "bench_e9_metablocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_metablocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
