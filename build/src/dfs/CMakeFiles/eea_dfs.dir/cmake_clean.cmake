file(REMOVE_RECURSE
  "CMakeFiles/eea_dfs.dir/hdfs_baseline.cc.o"
  "CMakeFiles/eea_dfs.dir/hdfs_baseline.cc.o.d"
  "CMakeFiles/eea_dfs.dir/hopsfs.cc.o"
  "CMakeFiles/eea_dfs.dir/hopsfs.cc.o.d"
  "libeea_dfs.a"
  "libeea_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eea_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
