// AVX2 implementations of the geo::simd batch kernels.
//
// This translation unit is only added to the build when EXEARTH_SIMD is
// native/avx2 on an x86-64 toolchain, and is compiled with
// `-mavx2 -ffp-contract=off`. Byte-identical output versus the scalar
// kernels is a hard requirement (CI diffs result hashes across variants),
// which constrains every lane to mirror the scalar arithmetic exactly:
//
//  * no FMA: -mavx2 alone does not enable FMA3 codegen, every multiply/add
//    here is a distinct exactly-rounded intrinsic, and -ffp-contract=off
//    keeps the compiler from contracting on its own;
//  * _CMP_*_OQ ordered non-signaling predicates: false on NaN, exactly like
//    the scalar `<`/`<=` comparisons they replace;
//  * std::min(a, b) is emulated as _mm256_min_pd(b, a) (both evaluate
//    `b < a ? b : a`, returning `a` on unordered), std::max(a, b) as
//    _mm256_max_pd(b, a), and std::clamp as two compare+blend steps that
//    preserve NaN propagation;
//  * vdivpd / vsqrtpd are IEEE exactly-rounded, so quotient/root lanes
//    equal their scalar counterparts bit for bit;
//  * reductions are restricted to order-independent folds (mask OR,
//    crossing-parity XOR, min over non-negative distances where NaN never
//    wins), so the lane permutation introduced by unpacklo/hi point
//    deinterleaving (i, i+2, i+1, i+3) cannot change the answer;
//  * batch tails and the ring's wrap-around edge run the shared scalar
//    cores from simd_internal.h, not a reimplementation.
//
// Masked-off lanes may divide by zero or overflow to inf/NaN; that is
// IEEE-defined (quiet) arithmetic whose results are discarded by the lane
// masks, and float division is deliberately outside GCC's
// -fsanitize=undefined set.

#include "geo/simd_internal.h"

#if !defined(EXEARTH_HAVE_AVX2)
#error "simd_avx2.cc requires EXEARTH_HAVE_AVX2 (see EXEARTH_SIMD in CMake)"
#endif

#include <immintrin.h>

namespace exearth::geo::simd {

namespace {

/// Deinterleaves 4 consecutive AoS points into x/y vectors. Lane order is
/// (i, i+2, i+1, i+3) — callers must load every related point array through
/// this same helper so lanes stay aligned, and must only reduce lanes with
/// order-independent folds.
inline void Load4Points(const Point* p, __m256d& x, __m256d& y) {
  const __m256d lo = _mm256_loadu_pd(&p[0].x);  // x0 y0 x1 y1
  const __m256d hi = _mm256_loadu_pd(&p[2].x);  // x2 y2 x3 y3
  x = _mm256_unpacklo_pd(lo, hi);               // x0 x2 x1 x3
  y = _mm256_unpackhi_pd(lo, hi);               // y0 y2 y1 y3
}

// --- Envelope predicates ----------------------------------------------------

// Shared shape of the three envelope kernels: hoist the query-empty test
// (scalar `Empty` has identical NaN behavior), evaluate 4 envelopes per
// iteration, finish the remainder on the scalar core.
struct QueryVec {
  __m256d min_x, min_y, max_x, max_y;
  explicit QueryVec(const Box& q)
      : min_x(_mm256_set1_pd(q.min_x)),
        min_y(_mm256_set1_pd(q.min_y)),
        max_x(_mm256_set1_pd(q.max_x)),
        max_y(_mm256_set1_pd(q.max_y)) {}
};

/// All-ones lane mask for envelopes that are non-empty (min <= max on both
/// axes, NaN counting as non-empty exactly like envelope::Empty).
inline __m256d NotEmptyMask(__m256d min_x, __m256d min_y, __m256d max_x,
                            __m256d max_y) {
  const __m256d empty =
      _mm256_or_pd(_mm256_cmp_pd(min_x, max_x, _CMP_GT_OQ),
                   _mm256_cmp_pd(min_y, max_y, _CMP_GT_OQ));
  // andnot(empty, all-ones) == !empty per lane.
  return _mm256_andnot_pd(
      empty, _mm256_castsi256_pd(_mm256_set1_epi64x(-1)));
}

uint64_t EnvelopeIntersectsAvx2(const Box& query, const EnvelopeSpan& env) {
  if (envelope::Empty(query.min_x, query.min_y, query.max_x, query.max_y)) {
    return 0;
  }
  const QueryVec q(query);
  uint64_t mask = 0;
  size_t i = 0;
  for (; i + 4 <= env.size; i += 4) {
    const __m256d emin_x = _mm256_loadu_pd(env.min_x + i);
    const __m256d emin_y = _mm256_loadu_pd(env.min_y + i);
    const __m256d emax_x = _mm256_loadu_pd(env.max_x + i);
    const __m256d emax_y = _mm256_loadu_pd(env.max_y + i);
    __m256d ok = NotEmptyMask(emin_x, emin_y, emax_x, emax_y);
    // b_min <= a_max && b_max >= a_min on both axes (a = query, b = env).
    ok = _mm256_and_pd(ok, _mm256_cmp_pd(emin_x, q.max_x, _CMP_LE_OQ));
    ok = _mm256_and_pd(ok, _mm256_cmp_pd(emax_x, q.min_x, _CMP_GE_OQ));
    ok = _mm256_and_pd(ok, _mm256_cmp_pd(emin_y, q.max_y, _CMP_LE_OQ));
    ok = _mm256_and_pd(ok, _mm256_cmp_pd(emax_y, q.min_y, _CMP_GE_OQ));
    mask |= static_cast<uint64_t>(_mm256_movemask_pd(ok)) << i;
  }
  for (; i < env.size; ++i) {
    if (envelope::Intersects(query.min_x, query.min_y, query.max_x,
                             query.max_y, env.min_x[i], env.min_y[i],
                             env.max_x[i], env.max_y[i])) {
      mask |= uint64_t{1} << i;
    }
  }
  return mask;
}

uint64_t QueryContainsEnvelopeAvx2(const Box& query, const EnvelopeSpan& env) {
  if (envelope::Empty(query.min_x, query.min_y, query.max_x, query.max_y)) {
    return 0;
  }
  const QueryVec q(query);
  uint64_t mask = 0;
  size_t i = 0;
  for (; i + 4 <= env.size; i += 4) {
    const __m256d emin_x = _mm256_loadu_pd(env.min_x + i);
    const __m256d emin_y = _mm256_loadu_pd(env.min_y + i);
    const __m256d emax_x = _mm256_loadu_pd(env.max_x + i);
    const __m256d emax_y = _mm256_loadu_pd(env.max_y + i);
    __m256d ok = NotEmptyMask(emin_x, emin_y, emax_x, emax_y);
    // b_min >= a_min && b_max <= a_max on both axes (a = query, b = env).
    ok = _mm256_and_pd(ok, _mm256_cmp_pd(emin_x, q.min_x, _CMP_GE_OQ));
    ok = _mm256_and_pd(ok, _mm256_cmp_pd(emax_x, q.max_x, _CMP_LE_OQ));
    ok = _mm256_and_pd(ok, _mm256_cmp_pd(emin_y, q.min_y, _CMP_GE_OQ));
    ok = _mm256_and_pd(ok, _mm256_cmp_pd(emax_y, q.max_y, _CMP_LE_OQ));
    mask |= static_cast<uint64_t>(_mm256_movemask_pd(ok)) << i;
  }
  for (; i < env.size; ++i) {
    if (envelope::Contains(query.min_x, query.min_y, query.max_x, query.max_y,
                           env.min_x[i], env.min_y[i], env.max_x[i],
                           env.max_y[i])) {
      mask |= uint64_t{1} << i;
    }
  }
  return mask;
}

uint64_t EnvelopeContainsQueryAvx2(const Box& query, const EnvelopeSpan& env) {
  if (envelope::Empty(query.min_x, query.min_y, query.max_x, query.max_y)) {
    return 0;
  }
  const QueryVec q(query);
  uint64_t mask = 0;
  size_t i = 0;
  for (; i + 4 <= env.size; i += 4) {
    const __m256d emin_x = _mm256_loadu_pd(env.min_x + i);
    const __m256d emin_y = _mm256_loadu_pd(env.min_y + i);
    const __m256d emax_x = _mm256_loadu_pd(env.max_x + i);
    const __m256d emax_y = _mm256_loadu_pd(env.max_y + i);
    __m256d ok = NotEmptyMask(emin_x, emin_y, emax_x, emax_y);
    // b_min >= a_min && b_max <= a_max on both axes (a = env, b = query).
    ok = _mm256_and_pd(ok, _mm256_cmp_pd(emin_x, q.min_x, _CMP_LE_OQ));
    ok = _mm256_and_pd(ok, _mm256_cmp_pd(emax_x, q.max_x, _CMP_GE_OQ));
    ok = _mm256_and_pd(ok, _mm256_cmp_pd(emin_y, q.min_y, _CMP_LE_OQ));
    ok = _mm256_and_pd(ok, _mm256_cmp_pd(emax_y, q.max_y, _CMP_GE_OQ));
    mask |= static_cast<uint64_t>(_mm256_movemask_pd(ok)) << i;
  }
  for (; i < env.size; ++i) {
    if (envelope::Contains(env.min_x[i], env.min_y[i], env.max_x[i],
                           env.max_y[i], query.min_x, query.min_y, query.max_x,
                           query.max_y)) {
      mask |= uint64_t{1} << i;
    }
  }
  return mask;
}

// --- Point in ring ----------------------------------------------------------

bool PointInRingAvx2(const Point* pts, size_t n, const Point& p) {
  if (n < 3) return false;
  bool inside = false;
  // Edge 0 pairs pts[0] with pts[n - 1] (the ring wrap); run it on the
  // scalar core so the vector body only sees the regular a=pts[i],
  // b=pts[i-1] stride.
  if (detail::PointInRingEdges(pts, n, 0, 1, p, inside)) return true;

  const __m256d px = _mm256_set1_pd(p.x);
  const __m256d py = _mm256_set1_pd(p.y);
  const __m256d zero = _mm256_setzero_pd();
  __m256d boundary_acc = zero;  // OR of on-boundary lane masks
  __m256d flip_acc = zero;      // XOR of ray-crossing lane masks

  size_t i = 1;
  for (; i + 4 <= n; i += 4) {
    __m256d ax, ay, bx, by;
    Load4Points(pts + i, ax, ay);      // lane k: a = pts[i + perm(k)]
    Load4Points(pts + i - 1, bx, by);  // lane k: b = pts[i + perm(k) - 1]

    const __m256d bax = _mm256_sub_pd(bx, ax);  // b.x - a.x
    const __m256d bay = _mm256_sub_pd(by, ay);  // b.y - a.y
    const __m256d pax = _mm256_sub_pd(px, ax);  // p.x - a.x
    const __m256d pay = _mm256_sub_pd(py, ay);  // p.y - a.y

    // Sign(Cross(a, b, p)) == 0 holds when cross is neither > 0 nor < 0
    // (which includes NaN, matching the scalar Sign()).
    const __m256d cross =
        _mm256_sub_pd(_mm256_mul_pd(bax, pay), _mm256_mul_pd(bay, pax));
    const __m256d nonzero =
        _mm256_or_pd(_mm256_cmp_pd(cross, zero, _CMP_GT_OQ),
                     _mm256_cmp_pd(cross, zero, _CMP_LT_OQ));

    // OnSegment: min/max emulate std::min(a.x, b.x) / std::max(a.x, b.x)
    // including their unordered-operand behavior.
    const __m256d min_x = _mm256_min_pd(bx, ax);
    const __m256d max_x = _mm256_max_pd(bx, ax);
    const __m256d min_y = _mm256_min_pd(by, ay);
    const __m256d max_y = _mm256_max_pd(by, ay);
    const __m256d on_seg = _mm256_and_pd(
        _mm256_and_pd(_mm256_cmp_pd(min_x, px, _CMP_LE_OQ),
                      _mm256_cmp_pd(px, max_x, _CMP_LE_OQ)),
        _mm256_and_pd(_mm256_cmp_pd(min_y, py, _CMP_LE_OQ),
                      _mm256_cmp_pd(py, max_y, _CMP_LE_OQ)));
    boundary_acc =
        _mm256_or_pd(boundary_acc, _mm256_andnot_pd(nonzero, on_seg));

    // Even-odd ray crossing: (a.y > p.y) != (b.y > p.y) and the ray hits
    // left of the edge/scanline intersection x_int.
    const __m256d crossing =
        _mm256_xor_pd(_mm256_cmp_pd(ay, py, _CMP_GT_OQ),
                      _mm256_cmp_pd(by, py, _CMP_GT_OQ));
    // x_int = a.x + (p.y - a.y) * (b.x - a.x) / (b.y - a.y); lanes without
    // a crossing may divide by zero — discarded by the `crossing` mask.
    const __m256d x_int = _mm256_add_pd(
        ax, _mm256_div_pd(_mm256_mul_pd(pay, bax), _mm256_sub_pd(by, ay)));
    const __m256d flip =
        _mm256_and_pd(crossing, _mm256_cmp_pd(px, x_int, _CMP_LT_OQ));
    flip_acc = _mm256_xor_pd(flip_acc, flip);
  }

  // Crossing parity accumulated per lane, then combined across lanes —
  // XOR is order-independent, so the lane permutation is immaterial.
  if (__builtin_popcount(
          static_cast<unsigned>(_mm256_movemask_pd(flip_acc))) &
      1) {
    inside = !inside;
  }
  // Any boundary lane means the scalar loop would have returned true at
  // that edge (parity is moot once the point sits on the boundary).
  if (_mm256_movemask_pd(boundary_acc) != 0) return true;
  if (detail::PointInRingEdges(pts, n, i, n, p, inside)) return true;
  return inside;
}

// --- Point-to-edges distance ------------------------------------------------

double PointEdgesDistanceAvx2(const Point& p, const Point* pts, size_t n,
                              bool closed) {
  double best = std::numeric_limits<double>::max();
  size_t i = 0;
  if (n >= 2) {
    const __m256d px = _mm256_set1_pd(p.x);
    const __m256d py = _mm256_set1_pd(p.y);
    const __m256d zero = _mm256_setzero_pd();
    const __m256d one = _mm256_set1_pd(1.0);
    __m256d best_acc = _mm256_set1_pd(std::numeric_limits<double>::max());

    // Edges i..i+3 read points up to pts[i + 4]; the last edge index is
    // n - 2, so the vector body needs i + 4 <= n - 1.
    for (; i + 4 < n; i += 4) {
      __m256d ax, ay, bx, by;
      Load4Points(pts + i, ax, ay);      // segment starts
      Load4Points(pts + i + 1, bx, by);  // segment ends

      // PointSegmentDistance, lane for lane.
      const __m256d vx = _mm256_sub_pd(bx, ax);
      const __m256d vy = _mm256_sub_pd(by, ay);
      const __m256d len2 =
          _mm256_add_pd(_mm256_mul_pd(vx, vx), _mm256_mul_pd(vy, vy));
      const __m256d pax = _mm256_sub_pd(px, ax);
      const __m256d pay = _mm256_sub_pd(py, ay);
      __m256d t = _mm256_div_pd(
          _mm256_add_pd(_mm256_mul_pd(pax, vx), _mm256_mul_pd(pay, vy)),
          len2);
      // std::clamp(t, 0, 1): t < 0 -> 0, else 1 < t -> 1, else t (NaN
      // passes through both blends untouched, as in the scalar code).
      t = _mm256_blendv_pd(t, zero, _mm256_cmp_pd(t, zero, _CMP_LT_OQ));
      t = _mm256_blendv_pd(t, one, _mm256_cmp_pd(one, t, _CMP_LT_OQ));
      const __m256d dx =
          _mm256_sub_pd(px, _mm256_add_pd(ax, _mm256_mul_pd(t, vx)));
      const __m256d dy =
          _mm256_sub_pd(py, _mm256_add_pd(ay, _mm256_mul_pd(t, vy)));
      const __m256d dist = _mm256_sqrt_pd(
          _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)));
      // Degenerate segment (len2 == 0): scalar takes Distance(p, a).
      const __m256d dist_deg = _mm256_sqrt_pd(
          _mm256_add_pd(_mm256_mul_pd(pax, pax), _mm256_mul_pd(pay, pay)));
      const __m256d d = _mm256_blendv_pd(
          dist, dist_deg, _mm256_cmp_pd(len2, zero, _CMP_EQ_OQ));
      // std::min(best, d) == _mm256_min_pd(d, best): NaN lanes never win,
      // distances are never -0, so the fold is order-independent.
      best_acc = _mm256_min_pd(d, best_acc);
    }

    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, best_acc);
    for (double lane : lanes) best = std::min(best, lane);
    best = detail::PointEdgesDistanceFold(p, pts, i, n - 1, best);
  }
  if (closed && n > 0) {
    best = std::min(best, PointSegmentDistance(p, pts[n - 1], pts[0]));
  }
  return best;
}

constexpr KernelTable kAvx2Table = {
    "avx2",
    &EnvelopeIntersectsAvx2,
    &QueryContainsEnvelopeAvx2,
    &EnvelopeContainsQueryAvx2,
    &PointInRingAvx2,
    &PointEdgesDistanceAvx2,
};

}  // namespace

namespace detail {
const KernelTable& Avx2Table() { return kAvx2Table; }
}  // namespace detail

}  // namespace exearth::geo::simd
