file(REMOVE_RECURSE
  "CMakeFiles/eea_strabon.dir/geostore.cc.o"
  "CMakeFiles/eea_strabon.dir/geostore.cc.o.d"
  "CMakeFiles/eea_strabon.dir/sparql.cc.o"
  "CMakeFiles/eea_strabon.dir/sparql.cc.o.d"
  "CMakeFiles/eea_strabon.dir/workload.cc.o"
  "CMakeFiles/eea_strabon.dir/workload.cc.o.d"
  "libeea_strabon.a"
  "libeea_strabon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eea_strabon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
