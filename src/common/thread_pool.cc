#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>

#include "common/deadline.h"
#include "common/trace.h"

namespace exearth::common {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  // Capture the submitter's trace and request contexts so the task
  // attaches to the originating request (chunked refinement, fan-out,
  // ...) and observes its deadline/cancellation even though it runs on a
  // pool thread.
  std::packaged_task<void()> task(
      [ctx = CurrentTraceContext(), rctx = CurrentRequestContext(),
       fn = std::move(fn)] {
        ScopedTraceContext adopt(ctx);
        ScopedRequestContext adopt_request(rctx);
        fn();
      });
  std::future<void> fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

Result<std::future<Status>> ThreadPool::TrySubmit(std::function<void()> fn,
                                                  Priority priority) {
  AdmissionController* ctrl = admission_controller();
  if (ctrl != nullptr) {
    EEA_RETURN_NOT_OK(ctrl->TryAdmit(priority));
  }
  auto promise = std::make_shared<std::promise<Status>>();
  std::future<Status> fut = promise->get_future();
  const auto admitted_at = std::chrono::steady_clock::now();
  Submit([ctrl, admitted_at, promise, fn = std::move(fn)] {
    // The slot is held until here so queue depth counts waiting *and*
    // running work; the age check sheds tasks that sat in line too long.
    AdmissionTicket ticket(ctrl);
    Status s = ctrl ? ctrl->StartQueued(admitted_at) : Status::OK();
    if (s.ok()) fn();
    promise->set_value(std::move(s));
  });
  return fut;
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  const size_t workers = std::min(n, threads_.size());
  std::atomic<size_t> next{0};
  std::vector<std::future<void>> futs;
  futs.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    futs.push_back(Submit([&] {
      while (true) {
        size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) break;
        fn(i);
      }
    }));
  }
  for (auto& f : futs) f.get();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

}  // namespace exearth::common
