#include "etl/mapping.h"

#include "common/string_util.h"
#include "geo/wkt.h"

namespace exearth::etl {

using common::Result;
using common::Status;

Result<std::string> ExpandTemplate(const std::string& tmpl,
                                   const Table& table,
                                   const std::vector<std::string>& row) {
  std::string out;
  out.reserve(tmpl.size());
  size_t i = 0;
  while (i < tmpl.size()) {
    if (tmpl[i] == '{') {
      size_t close = tmpl.find('}', i);
      if (close == std::string::npos) {
        return Status::InvalidArgument("unterminated '{' in template: " +
                                       tmpl);
      }
      std::string column = tmpl.substr(i + 1, close - i - 1);
      EEA_ASSIGN_OR_RETURN(int idx, table.ColumnIndex(column));
      out += row[static_cast<size_t>(idx)];
      i = close + 1;
    } else {
      out += tmpl[i];
      ++i;
    }
  }
  return out;
}

namespace {

Result<rdf::Term> ProduceTerm(const TermMap& map, const Table& table,
                              const std::vector<std::string>& row) {
  std::string value;
  switch (map.kind) {
    case TermMap::Kind::kTemplate: {
      EEA_ASSIGN_OR_RETURN(value, ExpandTemplate(map.value, table, row));
      break;
    }
    case TermMap::Kind::kColumn: {
      EEA_ASSIGN_OR_RETURN(int idx, table.ColumnIndex(map.value));
      value = row[static_cast<size_t>(idx)];
      break;
    }
    case TermMap::Kind::kConstant:
      value = map.value;
      break;
  }
  switch (map.term_type) {
    case rdf::TermType::kIri:
      return rdf::Term::Iri(std::move(value));
    case rdf::TermType::kLiteral:
      return rdf::Term::Literal(std::move(value), map.datatype);
    case rdf::TermType::kBlank:
      return rdf::Term::Blank(std::move(value));
  }
  return Status::Internal("unreachable");
}

}  // namespace

Result<MappingStats> ExecuteMapping(const Table& table, const TriplesMap& map,
                                    rdf::TripleStore* out, bool validate_wkt) {
  MappingStats stats;
  int wkt_idx = -1;
  if (!map.wkt_column.empty()) {
    EEA_ASSIGN_OR_RETURN(wkt_idx, table.ColumnIndex(map.wkt_column));
  }
  const rdf::Term type_pred = rdf::Term::Iri(rdf::vocab::kRdfType);
  const rdf::Term wkt_pred = rdf::Term::Iri(rdf::vocab::kAsWkt);
  for (const auto& row : table.rows) {
    EEA_ASSIGN_OR_RETURN(rdf::Term subject,
                         ProduceTerm(map.subject, table, row));
    if (!map.subject_class.empty()) {
      out->Add(subject, type_pred, rdf::Term::Iri(map.subject_class));
      ++stats.triples_generated;
    }
    for (const PredicateObjectMap& pom : map.predicate_objects) {
      EEA_ASSIGN_OR_RETURN(rdf::Term object,
                           ProduceTerm(pom.object, table, row));
      out->Add(subject, rdf::Term::Iri(pom.predicate_iri), object);
      ++stats.triples_generated;
    }
    if (wkt_idx >= 0) {
      const std::string& wkt = row[static_cast<size_t>(wkt_idx)];
      if (validate_wkt) {
        auto parsed = geo::ParseWkt(wkt);
        if (!parsed.ok()) {
          return Status::InvalidArgument(
              common::StrFormat("row %llu: bad WKT: %s",
                                static_cast<unsigned long long>(
                                    stats.rows_processed),
                                parsed.status().message().c_str()));
        }
      }
      out->Add(subject, wkt_pred,
               rdf::Term::Literal(wkt, rdf::vocab::kWktLiteral));
      ++stats.triples_generated;
    }
    ++stats.rows_processed;
  }
  return stats;
}

}  // namespace exearth::etl
