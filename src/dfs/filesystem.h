// Filesystem metadata interface shared by the HopsFS-style implementation
// and the single-namenode (HDFS stand-in) baseline.
//
// Only metadata and the small-file data path are modelled: these are what
// the HopsFS line of work ([9], [13], [17] in the paper) measures.

#ifndef EXEARTH_DFS_FILESYSTEM_H_
#define EXEARTH_DFS_FILESYSTEM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace exearth::dfs {

struct FileInfo {
  int64_t inode_id = 0;
  bool is_directory = false;
  uint64_t size_bytes = 0;
  int num_blocks = 0;
  /// True if the file's data lives inline in the metadata store
  /// (the "Size Matters" small-file optimization).
  bool inline_data = false;
};

/// Metadata operations of a distributed filesystem namespace.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Creates a directory. The parent must exist. AlreadyExists if present.
  virtual common::Status Mkdir(const std::string& path) = 0;

  /// Creates a file of `size_bytes`. If `data` is non-empty it must match
  /// size_bytes and may be stored inline (implementation-dependent).
  virtual common::Status Create(const std::string& path, uint64_t size_bytes,
                                const std::string& data) = 0;

  /// Stat.
  virtual common::Result<FileInfo> GetFileInfo(const std::string& path) = 0;

  /// Child names of a directory.
  virtual common::Result<std::vector<std::string>> List(
      const std::string& path) = 0;

  /// Removes a file or an empty directory.
  virtual common::Status Remove(const std::string& path) = 0;

  /// Reads file contents (works only for files created with data).
  virtual common::Result<std::string> ReadFile(const std::string& path) = 0;

  /// Moves a file or directory (with its whole subtree) to a new absolute
  /// path. The destination must not exist; its parent must.
  virtual common::Status Rename(const std::string& from,
                                const std::string& to) = 0;

  /// Removes a file or a directory including all of its descendants.
  virtual common::Status RemoveRecursive(const std::string& path) = 0;

  /// Total bytes of all files under `path` (0 for an empty directory).
  virtual common::Result<uint64_t> DiskUsage(const std::string& path) = 0;
};

/// Splits a normalized absolute path ("/a/b/c") into components
/// {"a","b","c"}. Returns InvalidArgument for relative/malformed paths.
common::Result<std::vector<std::string>> SplitPath(const std::string& path);

}  // namespace exearth::dfs

#endif  // EXEARTH_DFS_FILESYSTEM_H_
