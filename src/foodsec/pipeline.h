// The A1 end-to-end pipeline: simulate a year of Sentinel-2 over a crop
// region, train a multi-temporal crop classifier, extract field boundaries,
// run the water-balance model, and publish everything as linked data.

#ifndef EXEARTH_FOODSEC_PIPELINE_H_
#define EXEARTH_FOODSEC_PIPELINE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "foodsec/fields.h"
#include "foodsec/water.h"
#include "ml/metrics.h"
#include "ml/network.h"
#include "raster/landcover.h"
#include "raster/sentinel.h"
#include "strabon/geostore.h"

namespace exearth::foodsec {

struct FoodSecurityOptions {
  int width = 128;
  int height = 128;
  double pixel_size = 10.0;  // the paper's 10 m resolution
  int num_parcels = 60;
  std::vector<int> acquisition_days = {100, 140, 180, 220, 260};
  int training_samples = 3000;
  int epochs = 6;
  double learning_rate = 0.05;
  double cloud_probability = 0.2;
  uint64_t seed = 1;
};

struct FoodSecurityReport {
  raster::ClassMap true_crops{0, 0};
  raster::ClassMap predicted_crops{0, 0};
  double crop_accuracy = 0.0;       // per-pixel vs truth
  ml::ConfusionMatrix crop_confusion{raster::kNumCropTypes};
  std::vector<Field> fields;
  WaterProducts water;
  size_t triples_published = 0;
};

/// Runs the full pipeline; `linked_data` receives the published fields
/// (built and queryable on return).
common::Result<FoodSecurityReport> RunFoodSecurityPipeline(
    const FoodSecurityOptions& options, strabon::GeoStore* linked_data);

/// Classifies every pixel of the scene stack with a trained network
/// consuming per-pixel [NDVI, NIR, Red] x dates features (exposed for
/// tests and benches).
raster::ClassMap ClassifyCropPixels(
    const std::vector<raster::SentinelProduct>& scenes, ml::Network* network,
    const std::vector<std::pair<float, float>>& standardization);

}  // namespace exearth::foodsec

#endif  // EXEARTH_FOODSEC_PIPELINE_H_
