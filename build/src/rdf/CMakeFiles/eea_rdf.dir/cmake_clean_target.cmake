file(REMOVE_RECURSE
  "libeea_rdf.a"
)
