#include "serve/loadgen.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"

namespace exearth::serve {

namespace {

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  double rank = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

// Precomputed query shapes: popular ranks repeat, which is what exercises
// the result cache and same-box batch dedup.
struct QueryPool {
  std::vector<Request> requests;

  static QueryPool Build(const LoadGenOptions& opt, common::Rng* rng) {
    QueryPool pool;
    pool.requests.reserve(opt.query_pool);
    const double w = opt.world.max_x - opt.world.min_x;
    const double h = opt.world.max_y - opt.world.min_y;
    for (size_t i = 0; i < opt.query_pool; ++i) {
      double ext_x = rng->UniformDouble(0.1, std::min(opt.box_extent, w));
      double ext_y = rng->UniformDouble(0.1, std::min(opt.box_extent, h));
      double x = rng->UniformDouble(opt.world.min_x, opt.world.max_x - ext_x);
      double y = rng->UniformDouble(opt.world.min_y, opt.world.max_y - ext_y);
      pool.requests.push_back(Request::SpatialSelect(
          geo::Box{x, y, x + ext_x, y + ext_y}));
    }
    return pool;
  }
};

class Generator {
 public:
  Generator(const LoadGenOptions& opt, const std::vector<TenantId>& tenants)
      : opt_(opt), tenants_(tenants), rng_(opt.seed) {
    pool_ = QueryPool::Build(opt_, &rng_);
  }

  Offered NextRequest() {
    Offered o;
    // Zipf skew over the simulated user population; users map to tenants
    // round-robin, so low-rank (popular) users pile onto the first
    // tenants and the tail trickles across the rest.
    uint64_t user = rng_.Zipf(std::max<uint64_t>(opt_.num_users, 1), opt_.zipf_s);
    o.tenant = tenants_[user % tenants_.size()];
    double mix = rng_.NextDouble();
    if (mix < opt_.join_fraction && !opt_.join_classes.empty()) {
      const auto& [a, b] =
          opt_.join_classes[rng_.Uniform(opt_.join_classes.size())];
      o.request = Request::SpatialJoin(a, b);
    } else if (mix < opt_.join_fraction + opt_.fed_fraction &&
               !opt_.fed_queries.empty()) {
      o.request = Request::Federated(
          opt_.fed_queries[rng_.Uniform(opt_.fed_queries.size())]);
    } else {
      size_t idx = static_cast<size_t>(
          rng_.Zipf(pool_.requests.size(), opt_.query_zipf_s));
      o.request = pool_.requests[idx];
    }
    return o;
  }

  double NextInterarrivalUs() {
    return rng_.Exponential(opt_.arrival_rps / 1e6);
  }

 private:
  const LoadGenOptions& opt_;
  const std::vector<TenantId>& tenants_;
  common::Rng rng_;
  QueryPool pool_;
};

}  // namespace

std::string LoadGenReport::Summary() const {
  std::ostringstream os;
  os << "offered=" << offered << " ok=" << ok << " errors=" << errors
     << " shed(quota=" << quota_shed << ",admission=" << admission_shed << ")"
     << " cache_hits=" << cache_hits << " batched=" << batched_requests
     << " waves=" << waves << " vtime_ms=" << virtual_duration_us / 1000
     << " hash=" << result_hash << "\n"
     << "throughput=" << static_cast<uint64_t>(throughput_rps)
     << " req/s  latency_us p50=" << static_cast<uint64_t>(p50_us)
     << " p95=" << static_cast<uint64_t>(p95_us)
     << " p99=" << static_cast<uint64_t>(p99_us)
     << " max=" << static_cast<uint64_t>(max_us);
  return os.str();
}

LoadGenReport RunLoadGen(QueryBroker* broker,
                         const std::vector<TenantId>& tenants,
                         const LoadGenOptions& options) {
  EEA_CHECK(broker != nullptr);
  EEA_CHECK(!tenants.empty()) << "loadgen needs at least one tenant";

  Generator gen(options, tenants);
  LoadGenReport report;
  report.tenants.resize(broker->num_tenants());
  for (size_t i = 0; i < report.tenants.size(); ++i) {
    report.tenants[i].name = broker->tenant_name(static_cast<TenantId>(i));
  }
  std::vector<double> latencies;

  auto run_wave = [&](const std::vector<Offered>& wave, int64_t now_us) {
    std::vector<Response> responses = broker->ExecuteWave(wave, now_us);
    ++report.waves;
    for (size_t i = 0; i < responses.size(); ++i) {
      const Response& r = responses[i];
      TenantLoadStats& ts = report.tenants[wave[i].tenant];
      ++report.offered;
      ++ts.offered;
      if (r.shed == ShedStage::kQuota) {
        ++report.quota_shed;
        ++ts.quota_shed;
      } else if (r.shed == ShedStage::kAdmission) {
        ++report.admission_shed;
        ++ts.admission_shed;
      } else if (!r.status.ok()) {
        ++report.errors;
        ++ts.errors;
      } else {
        ++report.ok;
        ++ts.ok;
        report.result_hash += r.result_hash;  // order-independent sum
        if (r.cache_hit) {
          ++report.cache_hits;
          ++ts.cache_hits;
        }
        if (r.batch_size > 1) {
          ++report.batched_requests;
          ++ts.batched;
        }
        latencies.push_back(r.latency_us);
      }
    }
  };

  common::Stopwatch wall;
  if (options.mode == ArrivalMode::kClosed) {
    std::vector<Offered> wave;
    wave.reserve(options.concurrency);
    for (size_t w = 0; w < options.waves; ++w) {
      wave.clear();
      for (size_t i = 0; i < options.concurrency; ++i) {
        wave.push_back(gen.NextRequest());
      }
      int64_t now_us = static_cast<int64_t>(w + 1) * options.wave_virtual_us;
      run_wave(wave, now_us);
      report.virtual_duration_us = now_us;
    }
  } else {
    // Open loop: Poisson arrivals on the virtual clock; everything that
    // lands inside one tick window is concurrently in flight.
    std::vector<Offered> wave;
    double arrival_us = 0.0;
    size_t generated = 0;
    int64_t tick_end_us = options.tick_us;
    while (generated < options.total_requests) {
      arrival_us += gen.NextInterarrivalUs();
      while (static_cast<int64_t>(arrival_us) >= tick_end_us) {
        if (!wave.empty()) {
          run_wave(wave, tick_end_us);
          wave.clear();
        }
        tick_end_us += options.tick_us;
      }
      wave.push_back(gen.NextRequest());
      ++generated;
    }
    if (!wave.empty()) run_wave(wave, tick_end_us);
    report.virtual_duration_us = tick_end_us;
  }
  double wall_s = static_cast<double>(wall.ElapsedMicros()) / 1e6;

  report.throughput_rps =
      wall_s > 0 ? static_cast<double>(report.ok) / wall_s : 0.0;
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    report.p50_us = Percentile(latencies, 0.50);
    report.p95_us = Percentile(latencies, 0.95);
    report.p99_us = Percentile(latencies, 0.99);
    report.max_us = latencies.back();
    double sum = 0.0;
    for (double v : latencies) sum += v;
    report.mean_us = sum / static_cast<double>(latencies.size());
  }
  return report;
}

}  // namespace exearth::serve
