// Semagrow-style federated SPARQL processing (Challenge C3, experiment
// E11): endpoints with predicate summaries, source selection, per-pattern
// decomposition and cardinality-ordered joins over term-level rows.
//
// Endpoints are autonomous stores with private dictionaries, so federated
// join keys are materialized Terms (exactly the mediator situation
// Semagrow faces); per-endpoint subqueries still run on the endpoint's own
// id-level engine.

#ifndef EXEARTH_FED_FEDERATION_H_
#define EXEARTH_FED_FEDERATION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/query_profile.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "rdf/query.h"
#include "rdf/triple_store.h"

namespace exearth::fed {

/// A federation member: a named store plus its advertised summary.
class Endpoint {
 public:
  Endpoint(std::string name, rdf::TripleStore store);

  const std::string& name() const { return name_; }
  const rdf::TripleStore& store() const { return store_; }

  /// Predicate IRI -> triple count (the Semagrow "summary").
  const std::unordered_map<std::string, uint64_t>& summary() const {
    return summary_;
  }

  /// True if the endpoint advertises `predicate_iri`.
  bool Advertises(const std::string& predicate_iri) const {
    return summary_.count(predicate_iri) > 0;
  }

  /// Executes a single-pattern subquery, returning term-level rows.
  /// Counts one remote call. Safe to call concurrently (the mediator
  /// fans out to endpoints in parallel).
  std::vector<std::map<std::string, rdf::Term>> ExecutePattern(
      const rdf::TriplePattern& pattern) const;

  uint64_t calls_served() const {
    return calls_served_.load(std::memory_order_relaxed);
  }

  /// Stable span name for this endpoint's remote calls ("endpoint:name");
  /// outlives any query, so it is safe as a TraceSpan name.
  const char* trace_label() const { return trace_label_.c_str(); }

 private:
  std::string name_;
  std::string trace_label_;
  rdf::TripleStore store_;
  std::unordered_map<std::string, uint64_t> summary_;
  mutable std::atomic<uint64_t> calls_served_{0};
};

/// A federated solution row: variable -> term.
using FedBinding = std::map<std::string, rdf::Term>;

struct FederationOptions {
  /// Use predicate summaries to skip irrelevant endpoints. Off = broadcast
  /// every pattern to every endpoint (the naive baseline).
  bool source_selection = true;
  /// Order pattern joins by estimated cardinality from the summaries.
  /// Off = execute in query order.
  bool join_reordering = true;
};

struct FederationStats {
  uint64_t subqueries_sent = 0;
  uint64_t endpoints_contacted = 0;  // distinct endpoints with >= 1 call
  uint64_t rows_transferred = 0;     // rows shipped from endpoints
  uint64_t results = 0;
};

/// The mediator.
class FederationEngine {
 public:
  /// Registers an endpoint (not owned).
  void Register(const Endpoint* endpoint);

  size_t num_endpoints() const { return endpoints_.size(); }

  /// A term-level filter over a federated row.
  using FedFilter = std::function<bool(const FedBinding&)>;

  /// Worker threads for the per-pattern endpoint fan-out; n <= 1 calls
  /// endpoints serially. Not safe to call concurrently with Execute.
  void set_num_threads(size_t n);
  size_t num_threads() const { return num_threads_; }

  /// Evaluates a BGP (+projection/limit) across the federation.
  /// `query.filters` (id-level) are ignored — pass term-level filters via
  /// `filters` instead, since ids are endpoint-private. Opens a
  /// common::TraceRequest, so endpoint calls (including those made on
  /// pool workers) trace under one request; a per-join-step operator
  /// breakdown is written to `profile` when non-null and fed to the
  /// SlowQueryLog when that is enabled.
  common::Result<std::vector<FedBinding>> Execute(
      const rdf::Query& query, const FederationOptions& options,
      const std::vector<FedFilter>& filters = {},
      common::QueryProfile* profile = nullptr) const;

  const FederationStats& last_stats() const { return stats_; }

 private:
  /// Endpoints that may contribute to `pattern` under the options.
  std::vector<const Endpoint*> SelectSources(
      const rdf::TriplePattern& pattern,
      const FederationOptions& options) const;

  /// Estimated result size of a pattern across selected sources.
  uint64_t EstimateCardinality(const rdf::TriplePattern& pattern,
                               const FederationOptions& options) const;

  std::vector<const Endpoint*> endpoints_;
  size_t num_threads_ = 1;
  std::unique_ptr<common::ThreadPool> pool_;
  mutable FederationStats stats_;
};

}  // namespace exearth::fed

#endif  // EXEARTH_FED_FEDERATION_H_
