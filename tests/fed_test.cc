#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/query_profile.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "fed/federation.h"
#include "rdf/query.h"

namespace exearth::fed {
namespace {

// Three endpoints mirroring the ExtremeEarth setting: a crop layer, an ice
// layer, and a base layer with labels for both.
class FederationTest : public testing::Test {
 protected:
  FederationTest() {
    rdf::TripleStore crops;
    for (int i = 0; i < 50; ++i) {
      std::string field = common::StrFormat("http://x/field/%d", i);
      crops.Add(rdf::Term::Iri(field), rdf::Term::Iri("http://x/cropType"),
                rdf::Term::Literal(i % 2 == 0 ? "wheat" : "maize"));
    }
    rdf::TripleStore ice;
    for (int i = 0; i < 30; ++i) {
      std::string floe = common::StrFormat("http://x/floe/%d", i);
      ice.Add(rdf::Term::Iri(floe), rdf::Term::Iri("http://x/iceClass"),
              rdf::Term::Literal("FirstYearIce"));
    }
    rdf::TripleStore base;
    for (int i = 0; i < 50; ++i) {
      std::string field = common::StrFormat("http://x/field/%d", i);
      base.Add(rdf::Term::Iri(field), rdf::Term::Iri(rdf::vocab::kLabel),
               rdf::Term::Literal(common::StrFormat("field %d", i)));
    }
    for (int i = 0; i < 30; ++i) {
      std::string floe = common::StrFormat("http://x/floe/%d", i);
      base.Add(rdf::Term::Iri(floe), rdf::Term::Iri(rdf::vocab::kLabel),
               rdf::Term::Literal(common::StrFormat("floe %d", i)));
    }
    crop_endpoint_ = std::make_unique<Endpoint>("crops", std::move(crops));
    ice_endpoint_ = std::make_unique<Endpoint>("ice", std::move(ice));
    base_endpoint_ = std::make_unique<Endpoint>("base", std::move(base));
    engine_.Register(crop_endpoint_.get());
    engine_.Register(ice_endpoint_.get());
    engine_.Register(base_endpoint_.get());
  }

  rdf::Query CropLabelQuery() {
    rdf::Query q;
    q.where.push_back(rdf::TriplePattern{
        rdf::PatternSlot::Var("f"), rdf::PatternSlot::Iri("http://x/cropType"),
        rdf::PatternSlot::Of(rdf::Term::Literal("wheat"))});
    q.where.push_back(rdf::TriplePattern{
        rdf::PatternSlot::Var("f"), rdf::PatternSlot::Iri(rdf::vocab::kLabel),
        rdf::PatternSlot::Var("label")});
    return q;
  }

  std::unique_ptr<Endpoint> crop_endpoint_, ice_endpoint_, base_endpoint_;
  FederationEngine engine_;
};

TEST_F(FederationTest, EndpointSummary) {
  EXPECT_TRUE(crop_endpoint_->Advertises("http://x/cropType"));
  EXPECT_FALSE(crop_endpoint_->Advertises("http://x/iceClass"));
  EXPECT_EQ(crop_endpoint_->summary().at("http://x/cropType"), 50u);
}

TEST_F(FederationTest, CrossEndpointJoin) {
  FederationOptions opt;
  auto rows = engine_.Execute(CropLabelQuery(), opt);
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows->size(), 25u);  // 25 wheat fields, each with a label
  for (const FedBinding& row : *rows) {
    EXPECT_TRUE(row.count("f"));
    EXPECT_TRUE(row.count("label"));
    EXPECT_TRUE(common::StartsWith(row.at("label").value, "field "));
  }
}

TEST_F(FederationTest, SourceSelectionSkipsIrrelevantEndpoints) {
  FederationOptions with;
  with.source_selection = true;
  FederationStats stats_with;
  auto r1 = engine_.Execute(CropLabelQuery(), with, {}, nullptr, &stats_with);
  ASSERT_TRUE(r1.ok());

  FederationOptions without;
  without.source_selection = false;
  FederationStats stats_without;
  auto r2 =
      engine_.Execute(CropLabelQuery(), without, {}, nullptr, &stats_without);
  ASSERT_TRUE(r2.ok());

  EXPECT_EQ(r1->size(), r2->size());
  EXPECT_LT(stats_with.subqueries_sent, stats_without.subqueries_sent);
  EXPECT_LT(stats_with.endpoints_contacted,
            stats_without.endpoints_contacted);
}

TEST_F(FederationTest, JoinReorderingReducesTransfers) {
  // Query order puts the big unselective pattern (labels, 80 rows) first;
  // the optimizer should run the selective crop pattern first instead.
  rdf::Query q;
  q.where.push_back(rdf::TriplePattern{
      rdf::PatternSlot::Var("f"), rdf::PatternSlot::Iri(rdf::vocab::kLabel),
      rdf::PatternSlot::Var("label")});
  q.where.push_back(rdf::TriplePattern{
      rdf::PatternSlot::Var("f"), rdf::PatternSlot::Iri("http://x/cropType"),
      rdf::PatternSlot::Of(rdf::Term::Literal("wheat"))});

  FederationOptions reorder;
  reorder.join_reordering = true;
  FederationStats stats_reordered;
  auto r1 = engine_.Execute(q, reorder, {}, nullptr, &stats_reordered);
  ASSERT_TRUE(r1.ok());

  FederationOptions keep;
  keep.join_reordering = false;
  FederationStats stats_plain;
  auto r2 = engine_.Execute(q, keep, {}, nullptr, &stats_plain);
  ASSERT_TRUE(r2.ok());

  EXPECT_EQ(r1->size(), r2->size());
  EXPECT_LE(stats_reordered.rows_transferred, stats_plain.rows_transferred);
}

TEST_F(FederationTest, TermFilters) {
  FederationOptions opt;
  FederationEngine::FedFilter only_field_2 = [](const FedBinding& row) {
    auto it = row.find("label");
    return it != row.end() && it->second.value == "field 2";
  };
  auto rows = engine_.Execute(CropLabelQuery(), opt, {only_field_2});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST_F(FederationTest, ProjectionAndLimit) {
  rdf::Query q = CropLabelQuery();
  q.select = {"label"};
  q.limit = 5;
  FederationOptions opt;
  auto rows = engine_.Execute(q, opt);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 5u);
  for (const FedBinding& row : *rows) {
    EXPECT_EQ(row.size(), 1u);
    EXPECT_TRUE(row.count("label"));
  }
}

TEST_F(FederationTest, EmptyQueryRejected) {
  FederationOptions opt;
  EXPECT_FALSE(engine_.Execute(rdf::Query{}, opt).ok());
}

TEST_F(FederationTest, NoEndpointsRejected) {
  FederationEngine empty;
  FederationOptions opt;
  EXPECT_FALSE(empty.Execute(CropLabelQuery(), opt).ok());
}

TEST_F(FederationTest, UnknownPredicateYieldsEmpty) {
  rdf::Query q;
  q.where.push_back(rdf::TriplePattern{rdf::PatternSlot::Var("s"),
                                       rdf::PatternSlot::Iri("http://x/nope"),
                                       rdf::PatternSlot::Var("o")});
  FederationOptions opt;
  FederationStats stats;
  auto rows = engine_.Execute(q, opt, {}, nullptr, &stats);
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  // With source selection, nothing advertises the predicate: zero calls.
  EXPECT_EQ(stats.subqueries_sent, 0u);
}

TEST_F(FederationTest, SameResultsRegardlessOfOptimizations) {
  rdf::Query q = CropLabelQuery();
  std::set<std::string> expected;
  for (int combo = 0; combo < 4; ++combo) {
    FederationOptions opt;
    opt.source_selection = combo & 1;
    opt.join_reordering = combo & 2;
    auto rows = engine_.Execute(q, opt);
    ASSERT_TRUE(rows.ok());
    std::set<std::string> got;
    for (const FedBinding& row : *rows) got.insert(row.at("f").value);
    if (expected.empty()) {
      expected = got;
    } else {
      EXPECT_EQ(got, expected) << "combo " << combo;
    }
  }
}

TEST_F(FederationTest, ParallelFanOutMatchesSerial) {
  rdf::Query q = CropLabelQuery();
  FederationOptions opt;
  opt.source_selection = false;  // broadcast: real fan-out to 3 endpoints
  auto serial = engine_.Execute(q, opt);
  ASSERT_TRUE(serial.ok());
  engine_.set_num_threads(3);
  auto parallel = engine_.Execute(q, opt);
  ASSERT_TRUE(parallel.ok());
  engine_.set_num_threads(1);
  EXPECT_EQ(*serial, *parallel);  // deterministic slot-order merge
}

TEST_F(FederationTest, ExecuteFillsQueryProfile) {
  rdf::Query q = CropLabelQuery();
  FederationOptions opt;
  common::QueryProfile profile;
  auto rows = engine_.Execute(q, opt, {}, &profile);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(profile.query, "fed.Execute");
  EXPECT_GT(profile.total_us, 0.0);
  ASSERT_EQ(profile.operators.size(), 2u);  // one join step per pattern
  for (const auto& op : profile.operators) {
    EXPECT_EQ(op.name.rfind("join ", 0), 0u) << op.name;
  }
  // The last join step lands on the final result cardinality.
  EXPECT_EQ(profile.operators.back().rows_out, rows->size());
  // Its subquery count is visible as `chunks`.
  EXPECT_GT(profile.operators.back().chunks, 0u);
}

TEST_F(FederationTest, ProfileRecordsFilterAndProjection) {
  rdf::Query q = CropLabelQuery();
  q.select = {"label"};
  q.limit = 5;
  FederationOptions opt;
  FederationEngine::FedFilter pass = [](const FedBinding&) { return true; };
  common::QueryProfile profile;
  auto rows = engine_.Execute(q, opt, {pass}, &profile);
  ASSERT_TRUE(rows.ok());
  ASSERT_GE(profile.operators.size(), 2u);
  EXPECT_EQ(profile.operators[profile.operators.size() - 2].name, "filter");
  EXPECT_EQ(profile.operators.back().name, "project_limit");
  EXPECT_EQ(profile.operators.back().rows_out, 5u);
}

TEST_F(FederationTest, FederatedRequestTracesAsOneTree) {
  common::EventRecorder& recorder = common::EventRecorder::Default();
  recorder.Reset();
  recorder.set_enabled(true);
  engine_.set_num_threads(2);
  rdf::Query q = CropLabelQuery();
  FederationOptions opt;
  opt.source_selection = false;  // broadcast: every endpoint appears
  common::QueryProfile profile;
  ASSERT_TRUE(engine_.Execute(q, opt, {}, &profile).ok());
  recorder.set_enabled(false);
  engine_.set_num_threads(1);

  const std::vector<common::SpanEvent> events = recorder.Snapshot();
  const common::SpanEvent* root = nullptr;
  for (const auto& ev : events) {
    if (std::string(ev.name) == "fed.Execute") root = &ev;
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent_span_id, 0u);
  EXPECT_EQ(root->trace_id, profile.trace_id);
  std::set<uint64_t> span_ids;
  std::set<std::string> endpoint_spans;
  for (const auto& ev : events) span_ids.insert(ev.span_id);
  for (const auto& ev : events) {
    // Every span belongs to the request's trace and hangs off a recorded
    // parent — endpoint calls made on pool workers included.
    EXPECT_EQ(ev.trace_id, root->trace_id);
    if (&ev != root) EXPECT_TRUE(span_ids.count(ev.parent_span_id));
    const std::string name = ev.name;
    if (name.rfind("endpoint:", 0) == 0) {
      endpoint_spans.insert(name);
      EXPECT_EQ(ev.parent_span_id, root->span_id);
    }
  }
  EXPECT_EQ(endpoint_spans,
            (std::set<std::string>{"endpoint:crops", "endpoint:ice",
                                   "endpoint:base"}));
  recorder.Reset();
}

}  // namespace
}  // namespace exearth::fed
