# Empty compiler generated dependencies file for bench_e4_small_files.
# This may be replaced when dependencies are built.
