file(REMOVE_RECURSE
  "libeea_ml.a"
)
