// JedAI-style entity resolution (Challenge C3, experiment E9): token
// blocking, block purging, and multi-core meta-blocking with CBS/Jaccard
// edge weighting and weighted node pruning, against a naive all-pairs
// baseline.

#ifndef EXEARTH_LINK_ENTITY_RESOLUTION_H_
#define EXEARTH_LINK_ENTITY_RESOLUTION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace exearth::link {

/// An entity profile: a bag of tokens (already normalized).
struct Entity {
  int64_t id = 0;
  std::vector<std::string> tokens;
};

/// A dirty-ER workload: profiles plus ground-truth duplicate pairs
/// (id pairs with a < b).
struct ErDataset {
  std::vector<Entity> entities;
  std::vector<std::pair<int64_t, int64_t>> true_matches;
};

struct ErWorkloadOptions {
  int num_records = 1000;          // distinct real-world things
  double duplicate_probability = 0.5;  // chance a record has a duplicate
  int tokens_per_record = 6;
  int vocabulary = 2000;           // distinct tokens available
  /// Per-token chance that a duplicate's token is replaced by noise.
  double noise = 0.2;
  uint64_t seed = 1;
};

/// Generates a dirty-ER dataset with known ground truth.
ErDataset MakeDirtyErDataset(const ErWorkloadOptions& options);

/// Jaccard similarity of two token bags (as sets).
double Jaccard(const Entity& a, const Entity& b);

/// The match decision used in verification.
using MatchFn = std::function<bool(const Entity&, const Entity&)>;

/// A Jaccard-threshold matcher.
MatchFn JaccardMatcher(double threshold);

struct ResolutionResult {
  std::vector<std::pair<int64_t, int64_t>> matches;  // id pairs, a < b
  uint64_t comparisons = 0;          // match-function invocations
  uint64_t candidate_pairs = 0;      // pairs surviving blocking/pruning
};

/// Quality of found matches vs ground truth.
struct PairMetrics {
  double recall = 0.0;
  double precision = 0.0;
};
PairMetrics ComputePairMetrics(
    const std::vector<std::pair<int64_t, int64_t>>& found,
    const std::vector<std::pair<int64_t, int64_t>>& truth);

/// Baseline: all O(n^2) pairs.
ResolutionResult ResolveNaive(const std::vector<Entity>& entities,
                              const MatchFn& match);

enum class WeightScheme { kCbs, kJaccard };

struct BlockingOptions {
  /// Blocks larger than this are purged (stop-word-like tokens).
  size_t max_block_size = 200;
  WeightScheme scheme = WeightScheme::kCbs;
  /// Threads for the meta-blocking graph phase (1 = sequential).
  int num_threads = 1;
};

/// Token blocking without pruning: compare all distinct pairs co-occurring
/// in at least one (purged) block.
ResolutionResult ResolveWithTokenBlocking(const std::vector<Entity>& entities,
                                          const MatchFn& match,
                                          const BlockingOptions& options);

/// Meta-blocking: build the block graph, weight edges (CBS or Jaccard of
/// block sets), prune per node (keep edges >= the node's mean weight), then
/// verify survivors. Parallelizes over entities with `options.num_threads`.
ResolutionResult ResolveWithMetaBlocking(const std::vector<Entity>& entities,
                                         const MatchFn& match,
                                         const BlockingOptions& options);

}  // namespace exearth::link

#endif  // EXEARTH_LINK_ENTITY_RESOLUTION_H_
