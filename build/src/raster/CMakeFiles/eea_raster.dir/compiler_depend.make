# Empty compiler generated dependencies file for eea_raster.
# This may be replaced when dependencies are built.
