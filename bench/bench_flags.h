// Shared flags for the bench_e* binaries, parsed by bench_main.cc before
// google-benchmark sees argv.
//
//   --threads=N   worker-thread override for the parallel query paths.
//                 Benchmark rows whose `threads` argument is > 1 use this
//                 value instead when set; rows with threads=1 stay
//                 single-threaded so the baseline column survives. Recorded
//                 in the metrics JSON snapshot ("config": {"threads": N}).

#ifndef EXEARTH_BENCH_BENCH_FLAGS_H_
#define EXEARTH_BENCH_BENCH_FLAGS_H_

namespace exearth::bench {

/// Value of --threads, or 0 when the flag was not given.
int ThreadsFlag();
void SetThreadsFlag(int n);

/// The thread count a benchmark row should actually run with: the row's
/// own `threads` argument, overridden by --threads for parallel rows.
inline int EffectiveThreads(int row_threads) {
  return row_threads > 1 && ThreadsFlag() > 0 ? ThreadsFlag() : row_threads;
}

}  // namespace exearth::bench

#endif  // EXEARTH_BENCH_BENCH_FLAGS_H_
