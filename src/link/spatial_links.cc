#include "link/spatial_links.h"

#include <algorithm>

#include "geo/rtree.h"

namespace exearth::link {

const char* SpatialLinkRelationName(SpatialLinkRelation r) {
  switch (r) {
    case SpatialLinkRelation::kIntersects:
      return "intersects";
    case SpatialLinkRelation::kContains:
      return "contains";
    case SpatialLinkRelation::kWithinDistance:
      return "withinDistance";
  }
  return "unknown";
}

namespace {

bool ExactTest(const geo::Geometry& ga, const geo::Geometry& gb,
               const SpatialLinkOptions& options) {
  switch (options.relation) {
    case SpatialLinkRelation::kIntersects:
      return geo::Intersects(ga, gb);
    case SpatialLinkRelation::kContains:
      return geo::Contains(ga, gb);
    case SpatialLinkRelation::kWithinDistance:
      return geo::WithinDistance(ga, gb, options.distance);
  }
  return false;
}

}  // namespace

SpatialLinkResult DiscoverSpatialLinks(const std::vector<geo::Geometry>& a,
                                       const std::vector<geo::Geometry>& b,
                                       const SpatialLinkOptions& options) {
  SpatialLinkResult result;
  if (!options.use_index) {
    for (size_t i = 0; i < a.size(); ++i) {
      for (size_t j = 0; j < b.size(); ++j) {
        ++result.candidate_pairs;
        ++result.exact_tests;
        if (ExactTest(a[i], b[j], options)) {
          result.links.emplace_back(i, j);
        }
      }
    }
    return result;
  }
  // Index side B; probe each A envelope (buffered for distance joins).
  std::vector<geo::RTree::Entry> entries;
  entries.reserve(b.size());
  for (size_t j = 0; j < b.size(); ++j) {
    entries.push_back({b[j].Envelope(), static_cast<int64_t>(j)});
  }
  geo::RTree tree = geo::RTree::BulkLoad(std::move(entries));
  const double margin =
      options.relation == SpatialLinkRelation::kWithinDistance
          ? options.distance
          : 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    geo::Box probe = a[i].Envelope().Buffered(margin);
    tree.Visit(probe, [&](const geo::RTree::Entry& e) {
      ++result.candidate_pairs;
      ++result.exact_tests;
      const size_t j = static_cast<size_t>(e.id);
      if (ExactTest(a[i], b[j], options)) {
        result.links.emplace_back(i, j);
      }
      return true;
    });
  }
  std::sort(result.links.begin(), result.links.end());
  return result;
}

}  // namespace exearth::link
