file(REMOVE_RECURSE
  "libeea_polar.a"
)
