#include "dfs/hdfs_baseline.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace exearth::dfs {

using common::Result;
using common::Status;

SingleNameNodeFs::SingleNameNodeFs() {
  root_.id = 1;
  root_.is_directory = true;
}

SingleNameNodeFs::Node* SingleNameNodeFs::Resolve(
    const std::vector<std::string>& parts) {
  Node* current = &root_;
  for (const std::string& part : parts) {
    if (!current->is_directory) return nullptr;
    auto it = current->children.find(part);
    if (it == current->children.end()) return nullptr;
    current = it->second.get();
  }
  return current;
}

Result<SingleNameNodeFs::Node*> SingleNameNodeFs::ResolveParent(
    const std::string& path, std::string* leaf) {
  EEA_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  if (parts.empty()) {
    return Status::InvalidArgument("operation on root: " + path);
  }
  *leaf = parts.back();
  parts.pop_back();
  Node* parent = Resolve(parts);
  if (parent == nullptr) return Status::NotFound("parent of " + path);
  if (!parent->is_directory) {
    return Status::FailedPrecondition("parent of " + path +
                                      " is not a directory");
  }
  return parent;
}

Status SingleNameNodeFs::Mkdir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string leaf;
  EEA_ASSIGN_OR_RETURN(Node * parent, ResolveParent(path, &leaf));
  if (parent->children.count(leaf)) return Status::AlreadyExists(path);
  auto node = std::make_unique<Node>();
  node->id = next_id_++;
  node->is_directory = true;
  parent->children[leaf] = std::move(node);
  return Status::OK();
}

Status SingleNameNodeFs::Create(const std::string& path, uint64_t size_bytes,
                                const std::string& data) {
  if (!data.empty() && data.size() != size_bytes) {
    return Status::InvalidArgument("data size mismatch");
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::string leaf;
  EEA_ASSIGN_OR_RETURN(Node * parent, ResolveParent(path, &leaf));
  if (parent->children.count(leaf)) return Status::AlreadyExists(path);
  auto node = std::make_unique<Node>();
  node->id = next_id_++;
  node->size = size_bytes;
  node->data = data;
  parent->children[leaf] = std::move(node);
  return Status::OK();
}

Result<FileInfo> SingleNameNodeFs::GetFileInfo(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  EEA_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  Node* node = Resolve(parts);
  if (node == nullptr) return Status::NotFound(path);
  return FileInfo{.inode_id = node->id,
                  .is_directory = node->is_directory,
                  .size_bytes = node->size,
                  .num_blocks = 0,
                  .inline_data = false};
}

Result<std::vector<std::string>> SingleNameNodeFs::List(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  EEA_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  Node* node = Resolve(parts);
  if (node == nullptr) return Status::NotFound(path);
  if (!node->is_directory) {
    return Status::FailedPrecondition(path + " is not a directory");
  }
  std::vector<std::string> names;
  names.reserve(node->children.size());
  for (const auto& [name, child] : node->children) names.push_back(name);
  return names;
}

Status SingleNameNodeFs::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string leaf;
  EEA_ASSIGN_OR_RETURN(Node * parent, ResolveParent(path, &leaf));
  auto it = parent->children.find(leaf);
  if (it == parent->children.end()) return Status::NotFound(path);
  if (it->second->is_directory && !it->second->children.empty()) {
    return Status::FailedPrecondition(path + " is not empty");
  }
  parent->children.erase(it);
  return Status::OK();
}

Result<std::string> SingleNameNodeFs::ReadFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  EEA_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  Node* node = Resolve(parts);
  if (node == nullptr) return Status::NotFound(path);
  if (node->is_directory) {
    return Status::FailedPrecondition(path + " is a directory");
  }
  return node->data;
}


Status SingleNameNodeFs::Rename(const std::string& from,
                                const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string from_leaf;
  EEA_ASSIGN_OR_RETURN(Node * from_parent, ResolveParent(from, &from_leaf));
  std::string to_leaf;
  EEA_ASSIGN_OR_RETURN(Node * to_parent, ResolveParent(to, &to_leaf));
  auto it = from_parent->children.find(from_leaf);
  if (it == from_parent->children.end()) return Status::NotFound(from);
  if (to_parent->children.count(to_leaf)) return Status::AlreadyExists(to);
  if (it->second->is_directory && common::StartsWith(to, from + "/")) {
    return Status::InvalidArgument("cannot move a directory into itself");
  }
  to_parent->children[to_leaf] = std::move(it->second);
  from_parent->children.erase(it);
  return Status::OK();
}

Status SingleNameNodeFs::RemoveRecursive(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string leaf;
  EEA_ASSIGN_OR_RETURN(Node * parent, ResolveParent(path, &leaf));
  auto it = parent->children.find(leaf);
  if (it == parent->children.end()) return Status::NotFound(path);
  parent->children.erase(it);  // unique_ptr tears the subtree down
  return Status::OK();
}

common::Result<uint64_t> SingleNameNodeFs::DiskUsage(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  EEA_ASSIGN_OR_RETURN(std::vector<std::string> parts, SplitPath(path));
  Node* node = Resolve(parts);
  if (node == nullptr) return Status::NotFound(path);
  // Recursive subtree sum (Node is private, so a local lambda).
  auto subtree_bytes = [](const Node& n, const auto& self) -> uint64_t {
    if (!n.is_directory) return n.size;
    uint64_t total = 0;
    for (const auto& [name, child] : n.children) {
      total += self(*child, self);
    }
    return total;
  };
  return subtree_bytes(*node, subtree_bytes);
}

}  // namespace exearth::dfs
