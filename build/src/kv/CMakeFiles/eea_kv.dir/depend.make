# Empty dependencies file for eea_kv.
# This may be replaced when dependencies are built.
