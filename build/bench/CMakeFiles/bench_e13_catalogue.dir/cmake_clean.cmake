file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_catalogue.dir/bench_e13_catalogue.cc.o"
  "CMakeFiles/bench_e13_catalogue.dir/bench_e13_catalogue.cc.o.d"
  "bench_e13_catalogue"
  "bench_e13_catalogue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_catalogue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
