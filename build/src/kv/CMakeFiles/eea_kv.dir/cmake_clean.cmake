file(REMOVE_RECURSE
  "CMakeFiles/eea_kv.dir/kvstore.cc.o"
  "CMakeFiles/eea_kv.dir/kvstore.cc.o.d"
  "libeea_kv.a"
  "libeea_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eea_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
