// E7 — watershed-scale water-availability maps (paper Challenge A1): the
// vision calls for widening processing to whole watersheds, all Copernicus
// inputs, whole-year simulation, at 10 m with crop-specific coefficients.
// Series:
//   (a) full-year daily water balance vs watershed size (pixels) —
//       throughput of the PROMET-substitute model;
//   (b) ablation: crop-specific Kc vs a single generic coefficient — the
//       accuracy benefit the paper attributes to knowing crop types.

#include <benchmark/benchmark.h>

#include <cmath>

#include "common/rng.h"
#include "foodsec/water.h"
#include "raster/landcover.h"

namespace {

namespace eea = exearth;

eea::raster::ClassMap MakeCropMap(int size, uint64_t seed) {
  eea::common::Rng rng(seed);
  eea::raster::ClassMapOptions opt;
  opt.width = size;
  opt.height = size;
  opt.num_classes = eea::raster::kNumCropTypes;
  opt.num_patches = size / 2;
  return eea::raster::GenerateClassMap(opt, &rng);
}

void BM_WaterBalanceYear(benchmark::State& state) {
  const int size = static_cast<int>(state.range(0));
  eea::raster::ClassMap crops = MakeCropMap(size, 17);
  eea::raster::GeoTransform t{500000.0, 4650000.0, 10.0};
  auto weather = eea::foodsec::SynthesizeWeather(4);
  eea::foodsec::WaterBalanceOptions opt;
  double mean_avail = 0;
  for (auto _ : state) {
    auto products = eea::foodsec::ComputeWaterProducts(crops, t, weather, opt);
    if (!products.ok()) {
      state.SkipWithError(products.status().ToString().c_str());
      return;
    }
    mean_avail = products->availability.ComputeStats(0).mean;
    benchmark::DoNotOptimize(products->irrigation_mm.data().data());
  }
  const double pixels = static_cast<double>(size) * size;
  state.counters["pixels"] = pixels;
  state.counters["km2_at_10m"] = pixels * 100.0 / 1e6;
  state.counters["pixel_days_per_s"] = benchmark::Counter(
      pixels * 365.0 * state.iterations(), benchmark::Counter::kIsRate);
  state.counters["mean_availability"] = mean_avail;
}

// Crop-specific vs generic coefficients: RMS difference of the irrigation
// product — the information lost without the C1 crop classification.
void BM_CropSpecificKcAblation(benchmark::State& state) {
  const int size = 96;
  eea::raster::ClassMap crops = MakeCropMap(size, 19);
  eea::raster::ClassMap generic(size, size);
  generic.Fill(static_cast<uint8_t>(eea::raster::CropType::kGrassland));
  eea::raster::GeoTransform t{0, 0, 10.0};
  auto weather = eea::foodsec::SynthesizeWeather(6);
  eea::foodsec::WaterBalanceOptions opt;
  opt.capacity_variability = 0.0;  // isolate the Kc effect
  double rms_mm = 0;
  for (auto _ : state) {
    auto specific = eea::foodsec::ComputeWaterProducts(crops, t, weather, opt);
    auto flat = eea::foodsec::ComputeWaterProducts(generic, t, weather, opt);
    if (!specific.ok() || !flat.ok()) {
      state.SkipWithError("water balance failed");
      return;
    }
    double sum2 = 0;
    const auto& a = specific->irrigation_mm.data();
    const auto& b = flat->irrigation_mm.data();
    for (size_t i = 0; i < a.size(); ++i) {
      double d = a[i] - b[i];
      sum2 += d * d;
    }
    rms_mm = std::sqrt(sum2 / static_cast<double>(a.size()));
  }
  state.counters["irrigation_rms_error_mm"] = rms_mm;
}

}  // namespace

BENCHMARK(BM_WaterBalanceYear)
    ->ArgNames({"size"})
    ->Arg(64)
    ->Arg(128)
    ->Arg(256)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

BENCHMARK(BM_CropSpecificKcAblation)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// main() comes from bench_main.cc (adds --smoke and the
// metrics-snapshot JSON dump).
