file(REMOVE_RECURSE
  "CMakeFiles/eea_platform.dir/autoscale.cc.o"
  "CMakeFiles/eea_platform.dir/autoscale.cc.o.d"
  "CMakeFiles/eea_platform.dir/ingestion.cc.o"
  "CMakeFiles/eea_platform.dir/ingestion.cc.o.d"
  "CMakeFiles/eea_platform.dir/platform.cc.o"
  "CMakeFiles/eea_platform.dir/platform.cc.o.d"
  "CMakeFiles/eea_platform.dir/scheduler.cc.o"
  "CMakeFiles/eea_platform.dir/scheduler.cc.o.d"
  "libeea_platform.a"
  "libeea_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eea_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
