# Empty dependencies file for eea_strabon.
# This may be replaced when dependencies are built.
