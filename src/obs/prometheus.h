// Prometheus text exposition (format version 0.0.4) for the process-wide
// MetricsRegistry — what the admin server's /metrics endpoint returns.
//
// Registry names use dots ("serve.cache.hits"); Prometheus metric names
// must match [a-zA-Z_:][a-zA-Z0-9_:]* — SanitizeMetricName mangles
// illegal characters to '_' (it never rejects, so a hostile registration
// cannot take down the scrape; a collision after mangling drops the
// later family with a warning comment rather than emitting a duplicate).
//
// Counters render as single samples, gauges likewise, histograms in the
// native Prometheus shape: cumulative <name>_bucket{le="..."} samples
// (each bucket includes everything below it, unlike the registry's
// per-bucket counts), a final le="+Inf" bucket equal to <name>_count,
// plus <name>_sum.

#ifndef EXEARTH_OBS_PROMETHEUS_H_
#define EXEARTH_OBS_PROMETHEUS_H_

#include <string>
#include <string_view>

#include "common/metrics.h"

namespace exearth::obs {

/// Mangles `name` into a legal Prometheus metric name: [a-zA-Z_:] for
/// the first char, [a-zA-Z0-9_:] after; every illegal char (dots
/// included) becomes '_', a leading digit gets a '_' prefix, and an
/// empty name becomes "_".
std::string SanitizeMetricName(std::string_view name);

/// Same for label names (':' is not legal in label names).
std::string SanitizeLabelName(std::string_view name);

/// Escapes a label value for `label="..."`: backslash, double quote and
/// newline get backslash escapes; other bytes pass through verbatim.
std::string EscapeLabelValue(std::string_view value);

/// Renders one snapshot as text exposition 0.0.4. Families are emitted
/// in registry (sorted-name) order, each preceded by its # TYPE line.
std::string RenderPrometheus(const common::MetricsRegistry::Snapshot& snap);

/// Convenience: snapshot + render.
std::string RenderPrometheus(const common::MetricsRegistry& registry);

}  // namespace exearth::obs

#endif  // EXEARTH_OBS_PROMETHEUS_H_
