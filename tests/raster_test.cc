#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "common/rng.h"
#include "raster/dataset.h"
#include "raster/grid.h"
#include "raster/landcover.h"
#include "raster/raster.h"
#include "raster/sentinel.h"

namespace exearth::raster {
namespace {

// --- Grid --------------------------------------------------------------

TEST(GridTest, BasicAccess) {
  Grid<int> g(4, 3, 7);
  EXPECT_EQ(g.width(), 4);
  EXPECT_EQ(g.height(), 3);
  EXPECT_EQ(g.size(), 12u);
  EXPECT_EQ(g.at(0, 0), 7);
  g.at(3, 2) = 42;
  EXPECT_EQ(g.at(3, 2), 42);
  EXPECT_TRUE(g.InBounds(3, 2));
  EXPECT_FALSE(g.InBounds(4, 2));
  EXPECT_FALSE(g.InBounds(-1, 0));
}

TEST(GridTest, ClampedAccess) {
  Grid<int> g(2, 2);
  g.at(0, 0) = 1;
  g.at(1, 1) = 4;
  EXPECT_EQ(g.at_clamped(-5, -5), 1);
  EXPECT_EQ(g.at_clamped(10, 10), 4);
}

TEST(GridTest, Fill) {
  Grid<float> g(3, 3);
  g.Fill(2.5f);
  for (float v : g.data()) EXPECT_EQ(v, 2.5f);
}

// --- GeoTransform / Raster -----------------------------------------------

TEST(GeoTransformTest, PixelWorldRoundTrip) {
  GeoTransform t{1000.0, 2000.0, 10.0};
  geo::Point c = t.PixelCenter(0, 0);
  EXPECT_DOUBLE_EQ(c.x, 1005.0);
  EXPECT_DOUBLE_EQ(c.y, 1995.0);
  int x = 0;
  int y = 0;
  t.WorldToPixel(c, &x, &y);
  EXPECT_EQ(x, 0);
  EXPECT_EQ(y, 0);
  t.WorldToPixel(t.PixelCenter(7, 3), &x, &y);
  EXPECT_EQ(x, 7);
  EXPECT_EQ(y, 3);
}

TEST(RasterTest, ConstructionAndAccess) {
  Raster r(8, 4, 3);
  EXPECT_EQ(r.width(), 8);
  EXPECT_EQ(r.height(), 4);
  EXPECT_EQ(r.bands(), 3);
  EXPECT_EQ(r.BandSize(), 32u);
  EXPECT_EQ(r.NumValues(), 96u);
  r.Set(2, 7, 3, 1.5f);
  EXPECT_EQ(r.Get(2, 7, 3), 1.5f);
  EXPECT_EQ(r.Get(0, 7, 3), 0.0f);
}

TEST(RasterTest, Extent) {
  Raster r(10, 5, 1, GeoTransform{100.0, 50.0, 2.0});
  geo::Box e = r.Extent();
  EXPECT_DOUBLE_EQ(e.min_x, 100.0);
  EXPECT_DOUBLE_EQ(e.max_x, 120.0);
  EXPECT_DOUBLE_EQ(e.max_y, 50.0);
  EXPECT_DOUBLE_EQ(e.min_y, 40.0);
}

TEST(RasterTest, Stats) {
  Raster r(2, 2, 1);
  r.Set(0, 0, 0, 1.0f);
  r.Set(0, 1, 0, 2.0f);
  r.Set(0, 0, 1, 3.0f);
  r.Set(0, 1, 1, 4.0f);
  auto stats = r.ComputeStats(0);
  EXPECT_FLOAT_EQ(stats.mean, 2.5f);
  EXPECT_FLOAT_EQ(stats.min, 1.0f);
  EXPECT_FLOAT_EQ(stats.max, 4.0f);
  EXPECT_NEAR(stats.stddev, std::sqrt(1.25), 1e-5);
}

TEST(RasterTest, PixelVector) {
  Raster r(2, 2, 3);
  for (int b = 0; b < 3; ++b) r.Set(b, 1, 0, static_cast<float>(b + 1));
  auto v = r.PixelVector(1, 0);
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 1.0f);
  EXPECT_EQ(v[2], 3.0f);
}

TEST(RasterTest, ExtractPatch) {
  Raster r(10, 10, 2, GeoTransform{0.0, 100.0, 10.0});
  r.Set(1, 5, 5, 9.0f);
  auto patch = r.ExtractPatch(4, 4, 3, 3);
  ASSERT_TRUE(patch.ok());
  EXPECT_EQ(patch->width(), 3);
  EXPECT_EQ(patch->Get(1, 1, 1), 9.0f);
  // Georeferencing shifts with the window.
  EXPECT_DOUBLE_EQ(patch->transform().origin_x, 40.0);
  EXPECT_DOUBLE_EQ(patch->transform().origin_y, 60.0);
}

TEST(RasterTest, ExtractPatchOutOfRange) {
  Raster r(10, 10, 1);
  EXPECT_FALSE(r.ExtractPatch(8, 8, 4, 4).ok());
  EXPECT_FALSE(r.ExtractPatch(-1, 0, 2, 2).ok());
  EXPECT_FALSE(r.ExtractPatch(0, 0, 0, 2).ok());
}

TEST(RasterTest, ResampleNearest) {
  Raster r(4, 4, 1);
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x) r.Set(0, x, y, static_cast<float>(x));
  Raster up = r.ResampleNearest(8, 8);
  EXPECT_EQ(up.width(), 8);
  EXPECT_EQ(up.Get(0, 0, 0), 0.0f);
  EXPECT_EQ(up.Get(0, 7, 7), 3.0f);
  Raster down = r.ResampleNearest(2, 2);
  EXPECT_EQ(down.Get(0, 1, 1), 2.0f);
}

TEST(RasterTest, DownsampleMean) {
  Raster r(4, 4, 1, GeoTransform{0, 0, 10.0});
  for (int y = 0; y < 4; ++y)
    for (int x = 0; x < 4; ++x)
      r.Set(0, x, y, static_cast<float>(y * 4 + x));
  auto d = r.DownsampleMean(2);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->width(), 2);
  // Mean of {0,1,4,5} = 2.5.
  EXPECT_FLOAT_EQ(d->Get(0, 0, 0), 2.5f);
  EXPECT_DOUBLE_EQ(d->transform().pixel_size, 20.0);
  EXPECT_FALSE(r.DownsampleMean(3).ok());
  EXPECT_FALSE(r.DownsampleMean(0).ok());
}

TEST(RasterTest, NormalizedDifference) {
  Raster r(2, 1, 2);
  r.Set(0, 0, 0, 0.8f);  // NIR
  r.Set(1, 0, 0, 0.2f);  // Red
  r.Set(0, 1, 0, 0.0f);
  r.Set(1, 1, 0, 0.0f);
  auto ndvi = NormalizedDifference(r, 0, 1);
  ASSERT_TRUE(ndvi.ok());
  EXPECT_NEAR(ndvi->Get(0, 0, 0), 0.6f, 1e-6);
  EXPECT_EQ(ndvi->Get(0, 1, 0), 0.0f);  // 0/0 guarded
  EXPECT_FALSE(NormalizedDifference(r, 0, 5).ok());
}

// --- Land cover ----------------------------------------------------------

TEST(LandCoverTest, Names) {
  EXPECT_STREQ(LandCoverClassName(LandCoverClass::kSeaLake), "SeaLake");
  EXPECT_STREQ(CropTypeName(CropType::kMaize), "Maize");
  EXPECT_STREQ(IceClassName(IceClass::kOldIce), "OldIce");
}

TEST(LandCoverTest, WmoCodesDistinct) {
  std::set<int> codes;
  for (int i = 0; i < kNumIceClasses; ++i) {
    codes.insert(IceClassWmoCode(static_cast<IceClass>(i)));
  }
  EXPECT_EQ(codes.size(), static_cast<size_t>(kNumIceClasses));
}

TEST(ClassMapTest, GenerateCoversAllPixels) {
  common::Rng rng(1);
  ClassMapOptions opt;
  opt.width = 64;
  opt.height = 48;
  opt.num_classes = 5;
  opt.num_patches = 30;
  ClassMap map = GenerateClassMap(opt, &rng);
  EXPECT_EQ(map.width(), 64);
  EXPECT_EQ(map.height(), 48);
  for (uint8_t v : map.data()) EXPECT_LT(v, 5);
}

TEST(ClassMapTest, Deterministic) {
  ClassMapOptions opt;
  opt.width = 32;
  opt.height = 32;
  opt.num_patches = 10;
  common::Rng a(7);
  common::Rng b(7);
  ClassMap ma = GenerateClassMap(opt, &a);
  ClassMap mb = GenerateClassMap(opt, &b);
  EXPECT_EQ(Agreement(ma, mb), 1.0);
}

TEST(ClassMapTest, MatchesBruteForceVoronoi) {
  // The bucketed nearest-seed search must agree with brute force.
  ClassMapOptions opt;
  opt.width = 40;
  opt.height = 40;
  opt.num_classes = 7;
  opt.num_patches = 25;
  common::Rng rng(99);
  ClassMap map = GenerateClassMap(opt, &rng);
  // Regenerate seeds with an identical Rng to recover them.
  common::Rng rng2(99);
  struct Seed {
    double x, y;
    uint8_t cls;
  };
  std::vector<Seed> seeds;
  for (int i = 0; i < opt.num_patches; ++i) {
    Seed s;
    s.x = rng2.UniformDouble(0, opt.width);
    s.y = rng2.UniformDouble(0, opt.height);
    double u = rng2.NextDouble();
    s.cls = static_cast<uint8_t>(std::min<int>(
        opt.num_classes - 1, static_cast<int>(u * opt.num_classes)));
    seeds.push_back(s);
  }
  int mismatches = 0;
  for (int y = 0; y < opt.height; ++y) {
    for (int x = 0; x < opt.width; ++x) {
      double best = 1e18;
      uint8_t cls = 0;
      for (const Seed& s : seeds) {
        double dx = s.x - (x + 0.5);
        double dy = s.y - (y + 0.5);
        double d2 = dx * dx + dy * dy;
        if (d2 < best) {
          best = d2;
          cls = s.cls;
        }
      }
      if (map.at(x, y) != cls) ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0);
}

TEST(ClassMapTest, WeightsSkewDistribution) {
  ClassMapOptions opt;
  opt.width = 128;
  opt.height = 128;
  opt.num_classes = 3;
  opt.num_patches = 400;
  opt.class_weights = {8.0, 1.0, 1.0};
  common::Rng rng(5);
  ClassMap map = GenerateClassMap(opt, &rng);
  auto hist = ClassHistogram(map, 3);
  EXPECT_GT(hist[0], hist[1] * 2);
  EXPECT_GT(hist[0], hist[2] * 2);
  EXPECT_EQ(std::accumulate(hist.begin(), hist.end(), int64_t{0}),
            128 * 128);
}

// --- Sentinel simulator ----------------------------------------------------

ClassMap UniformMap(int w, int h, uint8_t cls) {
  ClassMap m(w, h);
  m.Fill(cls);
  return m;
}

TEST(SentinelTest, S2SceneShape) {
  SentinelSimulator::Options opt;
  opt.cloud_probability = 0.0;
  SentinelSimulator sim(opt, 42);
  common::Rng rng(2);
  ClassMapOptions mopt;
  mopt.width = 32;
  mopt.height = 32;
  ClassMap map = GenerateClassMap(mopt, &rng);
  SentinelProduct p = sim.SimulateS2(map, 180);
  EXPECT_EQ(p.raster.bands(), kS2Bands);
  EXPECT_EQ(p.raster.width(), 32);
  EXPECT_EQ(p.metadata.mission, Mission::kSentinel2);
  EXPECT_EQ(p.metadata.day_of_year, 180);
  EXPECT_EQ(p.metadata.cloud_cover, 0.0);
  EXPECT_GT(p.metadata.size_bytes, 0u);
  EXPECT_FALSE(p.metadata.product_id.empty());
  // Footprint matches raster extent.
  EXPECT_EQ(p.metadata.footprint.min_x, p.raster.Extent().min_x);
}

TEST(SentinelTest, WaterDarkerThanVegetationInNir) {
  SentinelSimulator::Options opt;
  opt.cloud_probability = 0.0;
  opt.noise_stddev = 0.0;
  SentinelSimulator sim(opt, 1);
  auto forest = UniformMap(8, 8, static_cast<uint8_t>(LandCoverClass::kForest));
  auto water = UniformMap(8, 8, static_cast<uint8_t>(LandCoverClass::kSeaLake));
  auto pf = sim.SimulateS2(forest, 180);
  auto pw = sim.SimulateS2(water, 180);
  // Band 7 is NIR.
  EXPECT_GT(pf.raster.ComputeStats(7).mean, pw.raster.ComputeStats(7).mean);
}

TEST(SentinelTest, SeasonalityChangesCropSignal) {
  SentinelSimulator::Options opt;
  opt.cloud_probability = 0.0;
  opt.noise_stddev = 0.0;
  SentinelSimulator sim(opt, 1);
  auto crop = UniformMap(8, 8, static_cast<uint8_t>(LandCoverClass::kAnnualCrop));
  auto summer = sim.SimulateS2(crop, 200);
  auto winter = sim.SimulateS2(crop, 20);
  EXPECT_GT(summer.raster.ComputeStats(7).mean,
            winter.raster.ComputeStats(7).mean);
}

TEST(SentinelTest, CloudsMaskedAndBright) {
  SentinelSimulator::Options opt;
  opt.cloud_probability = 1.0;
  opt.mean_cloud_fraction = 0.3;
  SentinelSimulator sim(opt, 11);
  auto map = UniformMap(64, 64, static_cast<uint8_t>(LandCoverClass::kForest));
  auto p = sim.SimulateS2(map, 180);
  EXPECT_GT(p.metadata.cloud_cover, 0.0);
  int64_t masked = 0;
  double cloud_sum = 0;
  double clear_sum = 0;
  int64_t clear = 0;
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      if (p.cloud_mask.at(x, y)) {
        ++masked;
        cloud_sum += p.raster.Get(7, x, y);
      } else {
        ++clear;
        clear_sum += p.raster.Get(7, x, y);
      }
    }
  }
  ASSERT_GT(masked, 0);
  ASSERT_GT(clear, 0);
  EXPECT_NEAR(p.metadata.cloud_cover,
              static_cast<double>(masked) / (64.0 * 64.0), 1e-9);
  EXPECT_GT(cloud_sum / masked, clear_sum / clear);
}

TEST(SentinelTest, SarSpeckleHasGammaMoments) {
  SentinelSimulator::Options opt;
  opt.sar_looks = 4;
  SentinelSimulator sim(opt, 3);
  auto map = UniformMap(64, 64, static_cast<uint8_t>(LandCoverClass::kForest));
  auto p = sim.SimulateS1(map, 100);
  EXPECT_EQ(p.raster.bands(), kS1Bands);
  EXPECT_EQ(p.metadata.mission, Mission::kSentinel1);
  auto stats = p.raster.ComputeStats(0);
  auto mean_bs = LandCoverBackscatter(LandCoverClass::kForest)[0];
  EXPECT_NEAR(stats.mean, mean_bs, 0.2 * mean_bs);
  // For L looks the coefficient of variation is 1/sqrt(L) = 0.5.
  EXPECT_NEAR(stats.stddev / stats.mean, 0.5, 0.1);
}

TEST(SentinelTest, IceClassesOrderedByBrightness) {
  SentinelSimulator::Options opt;
  SentinelSimulator sim(opt, 4);
  double prev = -1;
  for (int c = 0; c < kNumIceClasses; ++c) {
    auto map = UniformMap(32, 32, static_cast<uint8_t>(c));
    auto p = sim.SimulateS1Ice(map, 60);
    double mean = p.raster.ComputeStats(0).mean;
    EXPECT_GT(mean, prev) << IceClassName(static_cast<IceClass>(c));
    prev = mean;
  }
}

TEST(SentinelTest, ProductIdsUnique) {
  SentinelSimulator::Options opt;
  SentinelSimulator sim(opt, 5);
  auto map = UniformMap(8, 8, 0);
  auto a = sim.SimulateS2(map, 1);
  auto b = sim.SimulateS2(map, 1);
  EXPECT_NE(a.metadata.product_id, b.metadata.product_id);
}

TEST(SentinelTest, CropPhenologyPeaksDiffer) {
  // Rapeseed peaks well before maize.
  double rapeseed_early = CropPhenology(CropType::kRapeseed, 125);
  double maize_early = CropPhenology(CropType::kMaize, 125);
  EXPECT_GT(rapeseed_early, maize_early);
  double maize_late = CropPhenology(CropType::kMaize, 210);
  double rapeseed_late = CropPhenology(CropType::kRapeseed, 210);
  EXPECT_GT(maize_late, rapeseed_late);
  // Fallow stays low all year.
  EXPECT_LT(CropPhenology(CropType::kFallow, 180), 0.2);
}

// --- Datasets ---------------------------------------------------------------

TEST(DatasetTest, EurosatLikeShape) {
  EurosatOptions opt;
  opt.num_samples = 500;
  opt.patch_size = 4;
  Dataset ds = MakeEurosatLike(opt, 77);
  EXPECT_EQ(ds.size(), 500u);
  EXPECT_EQ(ds.num_classes, 10);
  EXPECT_EQ(ds.feature_dim, 13 * 4 * 4);
  EXPECT_EQ(ds.channels, 13);
  for (const Sample& s : ds.samples) {
    EXPECT_EQ(s.features.size(), static_cast<size_t>(ds.feature_dim));
    EXPECT_GE(s.label, 0);
    EXPECT_LT(s.label, 10);
  }
  // All classes present in 500 draws.
  auto hist = ds.LabelHistogram();
  for (int64_t c : hist) EXPECT_GT(c, 0);
}

TEST(DatasetTest, EurosatLikeDeterministic) {
  EurosatOptions opt;
  opt.num_samples = 20;
  Dataset a = MakeEurosatLike(opt, 5);
  Dataset b = MakeEurosatLike(opt, 5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.samples[i].label, b.samples[i].label);
    EXPECT_EQ(a.samples[i].features, b.samples[i].features);
  }
}

TEST(DatasetTest, ShuffleAndSplit) {
  EurosatOptions opt;
  opt.num_samples = 100;
  opt.patch_size = 2;
  Dataset ds = MakeEurosatLike(opt, 9);
  common::Rng rng(1);
  ds.Shuffle(&rng);
  auto [train, test] = ds.Split(0.8);
  EXPECT_EQ(train.size(), 80u);
  EXPECT_EQ(test.size(), 20u);
  EXPECT_EQ(train.feature_dim, ds.feature_dim);
  EXPECT_EQ(test.num_classes, ds.num_classes);
}

TEST(DatasetTest, StandardizeZeroMeanUnitVar) {
  EurosatOptions opt;
  opt.num_samples = 200;
  opt.patch_size = 2;
  Dataset ds = MakeEurosatLike(opt, 13);
  ds.Standardize();
  // Check a few dimensions.
  for (int d = 0; d < ds.feature_dim; d += 7) {
    double sum = 0;
    double sum2 = 0;
    for (const Sample& s : ds.samples) {
      sum += s.features[static_cast<size_t>(d)];
      sum2 += static_cast<double>(s.features[static_cast<size_t>(d)]) *
              s.features[static_cast<size_t>(d)];
    }
    double mean = sum / ds.size();
    double var = sum2 / ds.size() - mean * mean;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(DatasetTest, ApplyStandardizationUsesTrainStats) {
  EurosatOptions opt;
  opt.num_samples = 100;
  opt.patch_size = 2;
  Dataset ds = MakeEurosatLike(opt, 21);
  auto [train, test] = ds.Split(0.5);
  auto stats = train.Standardize();
  test.ApplyStandardization(stats);
  EXPECT_EQ(test.samples[0].features.size(),
            static_cast<size_t>(test.feature_dim));
}

TEST(DatasetTest, PatchDatasetFromScene) {
  SentinelSimulator::Options opt;
  opt.cloud_probability = 0.0;
  SentinelSimulator sim(opt, 31);
  common::Rng rng(3);
  ClassMapOptions mopt;
  mopt.width = 64;
  mopt.height = 64;
  mopt.num_patches = 20;
  ClassMap map = GenerateClassMap(mopt, &rng);
  auto product = sim.SimulateS2(map, 150);
  auto ds = MakePatchDataset(product, map, kNumLandCoverClasses, 8, 8);
  ASSERT_TRUE(ds.ok()) << ds.status();
  EXPECT_EQ(ds->size(), 64u);  // 8x8 grid of non-overlapping windows
  EXPECT_EQ(ds->feature_dim, 13 * 8 * 8);
}

TEST(DatasetTest, PatchDatasetSkipsClouds) {
  SentinelSimulator::Options opt;
  opt.cloud_probability = 1.0;
  opt.mean_cloud_fraction = 0.5;
  SentinelSimulator sim(opt, 32);
  auto map = UniformMap(64, 64, 0);
  auto product = sim.SimulateS2(map, 150);
  auto clouded = MakePatchDataset(product, map, 10, 8, 8);
  ASSERT_TRUE(clouded.ok());
  EXPECT_LT(clouded->size(), 64u);
}

TEST(DatasetTest, PatchDatasetValidation) {
  SentinelSimulator::Options opt;
  SentinelSimulator sim(opt, 33);
  auto map = UniformMap(16, 16, 0);
  auto product = sim.SimulateS2(map, 1);
  auto wrong_map = UniformMap(8, 8, 0);
  EXPECT_FALSE(MakePatchDataset(product, wrong_map, 10, 4, 4).ok());
  EXPECT_FALSE(MakePatchDataset(product, map, 10, 0, 4).ok());
}

TEST(DatasetTest, CropTimeSeriesSeparatesCrops) {
  SentinelSimulator::Options opt;
  opt.cloud_probability = 0.0;
  opt.noise_stddev = 0.005;
  SentinelSimulator sim(opt, 41);
  // Half wheat, half maize.
  ClassMap crops(16, 16);
  for (int y = 0; y < 16; ++y)
    for (int x = 0; x < 16; ++x)
      crops.at(x, y) = static_cast<uint8_t>(
          x < 8 ? CropType::kWheat : CropType::kMaize);
  std::vector<SentinelProduct> scenes;
  for (int doy : {100, 140, 180, 220, 260}) {
    scenes.push_back(sim.SimulateCropS2(crops, doy));
  }
  auto ds = MakeCropTimeSeriesDataset(scenes, crops, 200, 55);
  ASSERT_TRUE(ds.ok()) << ds.status();
  EXPECT_EQ(ds->feature_dim, 15);
  EXPECT_EQ(ds->num_classes, kNumCropTypes);
  ASSERT_GT(ds->size(), 50u);
  // Mean early-season NDVI (feature 3: date 140's NDVI) should be higher
  // for wheat than maize.
  double wheat_ndvi = 0;
  int wheat_n = 0;
  double maize_ndvi = 0;
  int maize_n = 0;
  for (const Sample& s : ds->samples) {
    if (s.label == static_cast<int>(CropType::kWheat)) {
      wheat_ndvi += s.features[3];
      ++wheat_n;
    } else {
      maize_ndvi += s.features[3];
      ++maize_n;
    }
  }
  ASSERT_GT(wheat_n, 0);
  ASSERT_GT(maize_n, 0);
  EXPECT_GT(wheat_ndvi / wheat_n, maize_ndvi / maize_n);
}

TEST(DatasetTest, CropTimeSeriesValidation) {
  ClassMap crops(8, 8);
  EXPECT_FALSE(MakeCropTimeSeriesDataset({}, crops, 10, 1).ok());
}

TEST(DatasetTest, IceDatasetInDbSpace) {
  SentinelSimulator::Options opt;
  SentinelSimulator sim(opt, 51);
  auto ice = UniformMap(32, 32, static_cast<uint8_t>(IceClass::kOldIce));
  auto scene = sim.SimulateS1Ice(ice, 60);
  auto ds = MakeIceDataset(scene, ice, 4, 4);
  ASSERT_TRUE(ds.ok()) << ds.status();
  EXPECT_EQ(ds->num_classes, kNumIceClasses);
  EXPECT_EQ(ds->feature_dim, 2 * 4 * 4);
  // dB values for old ice VV should be around -8 dB.
  double mean = 0;
  size_t n = 0;
  for (const Sample& s : ds->samples) {
    for (size_t d = 0; d < 16; ++d) {  // first band block = VV
      mean += s.features[d];
      ++n;
    }
  }
  EXPECT_NEAR(mean / n, -8.0, 1.5);
}

TEST(DatasetTest, IceDatasetRejectsS2) {
  SentinelSimulator::Options opt;
  opt.cloud_probability = 0.0;
  SentinelSimulator sim(opt, 52);
  auto map = UniformMap(16, 16, 0);
  auto s2 = sim.SimulateS2(map, 1);
  EXPECT_FALSE(MakeIceDataset(s2, map, 4, 4).ok());
}

}  // namespace
}  // namespace exearth::raster
