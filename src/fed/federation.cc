#include "fed/federation.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <set>
#include <thread>

#include "common/deadline.h"
#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace.h"

namespace exearth::fed {

using common::Result;
using common::Status;

namespace {

// Cached handles for the mediator's fan-out hot path.
struct FedMetrics {
  common::Counter* queries;
  common::Counter* subqueries;
  common::Counter* rows_transferred;
  common::Counter* endpoint_failures;
  common::Counter* endpoint_retries;
  common::Counter* deadline_exceeded;
  common::Counter* breaker_rejects;
  common::Counter* partial_results;
  common::Counter* query_deadline_exceeded;
  common::Counter* query_cancelled;
  common::Counter* shed;
  common::Histogram* query_latency_us;
  common::Histogram* endpoint_call_latency_us;

  static const FedMetrics& Get() {
    static FedMetrics m = [] {
      auto& reg = common::MetricsRegistry::Default();
      return FedMetrics{
          reg.GetCounter("fed.queries"),
          reg.GetCounter("fed.subqueries"),
          reg.GetCounter("fed.rows_transferred"),
          reg.GetCounter("fed.endpoint_failures"),
          reg.GetCounter("fed.endpoint_retries"),
          reg.GetCounter("fed.deadline_exceeded"),
          reg.GetCounter("fed.breaker_rejects"),
          reg.GetCounter("fed.partial_results"),
          reg.GetCounter("fed.query_deadline_exceeded"),
          reg.GetCounter("fed.query_cancelled"),
          reg.GetCounter("fed.shed"),
          reg.GetHistogram("fed.query_latency_us"),
          reg.GetHistogram("fed.endpoint_call_latency_us"),
      };
    }();
    return m;
  }
};

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

uint64_t HashName(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Endpoint::Endpoint(std::string name, rdf::TripleStore store)
    : name_(std::move(name)),
      trace_label_("endpoint:" + name_),
      fault_point_("fed.endpoint.call:" + name_),
      store_(std::move(store)) {
  store_.Build();
  for (const auto& [pred_id, count] : store_.PredicateStats()) {
    const rdf::Term& term = store_.dict().Decode(pred_id);
    summary_[term.value] = count;
  }
}

Endpoint::Endpoint(std::string name)
    : name_(std::move(name)),
      trace_label_("endpoint:" + name_),
      fault_point_("fed.endpoint.call:" + name_) {}

common::Status Endpoint::BeginRemoteCall() const {
  // The fault boundary: programmed rules fire here (error status and/or
  // injected latency), before the endpoint does any work — exactly where
  // a network/endpoint failure would surface.
  EEA_RETURN_NOT_OK(common::fault::MaybeFail(fault_point_.c_str()));
  calls_served_.fetch_add(1, std::memory_order_relaxed);
  return common::Status::OK();
}

Result<std::vector<std::map<std::string, rdf::Term>>> Endpoint::ExecutePattern(
    const rdf::TriplePattern& pattern) const {
  EEA_RETURN_NOT_OK(BeginRemoteCall());
  rdf::QueryEngine engine(&store_);
  rdf::Query q;
  q.where.push_back(pattern);
  auto rows = engine.Execute(q);
  std::vector<std::map<std::string, rdf::Term>> out;
  if (!rows.ok()) return out;
  out.reserve(rows->size());
  for (const rdf::Binding& b : *rows) {
    std::map<std::string, rdf::Term> row;
    for (const auto& [var, id] : b) {
      row.emplace(var, store_.dict().Decode(id));
    }
    out.push_back(std::move(row));
  }
  return out;
}

void FederationEngine::Register(const Endpoint* endpoint) {
  endpoints_.push_back(endpoint);
  breakers_.emplace(endpoint, std::make_unique<common::CircuitBreaker>());
}

common::CircuitBreaker* FederationEngine::breaker(
    const Endpoint* endpoint) const {
  auto it = breakers_.find(endpoint);
  return it == breakers_.end() ? nullptr : it->second.get();
}

void FederationEngine::ConfigureAdmission(common::AdmissionOptions options) {
  admission_ = std::make_unique<common::AdmissionController>("fed", options);
}

void FederationEngine::set_num_threads(size_t n) {
  num_threads_ = std::max<size_t>(1, n);
  if (num_threads_ > 1) {
    if (pool_ == nullptr || pool_->num_threads() != num_threads_) {
      pool_ = std::make_unique<common::ThreadPool>(num_threads_);
    }
  } else {
    pool_.reset();
  }
}

std::vector<const Endpoint*> FederationEngine::SelectSources(
    const rdf::TriplePattern& pattern,
    const FederationOptions& options) const {
  if (!options.source_selection || pattern.p.is_var ||
      !pattern.p.term.IsIri()) {
    return endpoints_;
  }
  std::vector<const Endpoint*> out;
  for (const Endpoint* e : endpoints_) {
    if (e->Advertises(pattern.p.term.value)) out.push_back(e);
  }
  return out;
}

uint64_t FederationEngine::EstimateCardinality(
    const rdf::TriplePattern& pattern,
    const FederationOptions& options) const {
  uint64_t total = 0;
  for (const Endpoint* e : SelectSources(pattern, options)) {
    if (!pattern.p.is_var && pattern.p.term.IsIri()) {
      auto it = e->summary().find(pattern.p.term.value);
      if (it != e->summary().end()) total += it->second;
    } else {
      for (const auto& [pred, count] : e->summary()) total += count;
    }
  }
  // Bound subject/object slots make the pattern more selective; halve the
  // estimate per bound slot (a crude but standard heuristic).
  if (!pattern.s.is_var) total /= 2;
  if (!pattern.o.is_var) total /= 2;
  return total;
}

namespace {

// Variables of a pattern.
std::vector<std::string> PatternVars(const rdf::TriplePattern& p) {
  std::vector<std::string> vars;
  for (const rdf::PatternSlot* slot : {&p.s, &p.p, &p.o}) {
    if (slot->is_var) vars.push_back(slot->var);
  }
  return vars;
}

// Substitutes variables bound in `row` into `pattern` as constants.
rdf::TriplePattern BindPattern(const rdf::TriplePattern& pattern,
                               const FedBinding& row) {
  rdf::TriplePattern out = pattern;
  for (rdf::PatternSlot* slot : {&out.s, &out.p, &out.o}) {
    if (!slot->is_var) continue;
    auto it = row.find(slot->var);
    if (it != row.end()) {
      slot->is_var = false;
      slot->term = it->second;
      slot->var.clear();
    }
  }
  return out;
}

// Key for memoizing identical bound subqueries.
std::string PatternKey(const rdf::TriplePattern& p) {
  auto slot_key = [](const rdf::PatternSlot& s) {
    if (s.is_var) return "?" + s.var;
    return s.term.ToString();
  };
  return slot_key(p.s) + " " + slot_key(p.p) + " " + slot_key(p.o);
}

// Outcome of one endpoint's retried subquery: rows on success, the final
// status on failure, plus the attempt bookkeeping merged into the stats
// after the fan-out joins (workers never touch shared counters).
struct CallOutcome {
  Status status;
  std::vector<FedBinding> rows;
  uint64_t failures = 0;      // failed attempts
  uint64_t retries = 0;       // re-attempts after a failure
  bool breaker_rejected = false;
  /// The *request* died (cancelled / request deadline), as opposed to the
  /// endpoint failing: fatal even under partial_ok — there is no caller
  /// left to hand a partial answer to.
  bool request_aborted = false;
};

}  // namespace

Result<std::vector<FedBinding>> FederationEngine::Execute(
    const rdf::Query& query, const FederationOptions& options,
    const std::vector<FedFilter>& filters, common::QueryProfile* profile,
    FederationStats* stats) const {
  const FedMetrics& metrics = FedMetrics::Get();
  common::TraceRequest req("fed.Execute");
  common::ProfileScope pscope;
  const bool profiling =
      profile != nullptr ||
      (pscope.is_root() && common::SlowQueryLog::Default().enabled());
  const auto query_start = std::chrono::steady_clock::now();
  common::ScopedLatencyTimer query_timer(metrics.query_latency_us);
  metrics.queries->Increment();
  FederationStats st;
  std::set<std::string> degraded;
  auto publish = [&]() {
    st.degraded_sources.assign(degraded.begin(), degraded.end());
    if (stats != nullptr) *stats = st;
  };
  // Profile for queries that end before (or instead of) producing rows:
  // shed at admission, cancelled, or out of deadline. The status lands in
  // the profile and the slow-query log, so overload is visible there.
  auto record_failed_profile = [&](const Status& s) {
    if (!profiling) return;
    common::QueryProfile failed;
    failed.query = "fed.Execute";
    failed.trace_id = req.trace_id();
    failed.total_us = SecondsSince(query_start) * 1e6;
    failed.status = common::StatusCodeToString(s.code());
    if (profile != nullptr) *profile = failed;
    if (pscope.is_root()) {
      common::SlowQueryLog::Default().Record(std::move(failed));
    }
  };
  auto count_abort = [&](const Status& s) {
    if (s.IsCancelled()) {
      metrics.query_cancelled->Increment();
    } else if (s.IsDeadlineExceeded()) {
      metrics.query_deadline_exceeded->Increment();
    }
  };

  // Admission: shed at the door when the mediator's queue is full for
  // this query's priority class — before any endpoint work happens.
  common::AdmissionTicket ticket;
  if (admission_ != nullptr) {
    Status admitted = admission_->TryAdmit(options.priority);
    if (!admitted.ok()) {
      metrics.shed->Increment();
      publish();
      record_failed_profile(admitted);
      return admitted;
    }
    ticket = common::AdmissionTicket(admission_.get());
  }

  const common::RequestContext rctx = common::CurrentRequestContext();
  {
    Status entry = rctx.Check("fed.Execute");
    if (!entry.ok()) {
      count_abort(entry);
      publish();
      record_failed_profile(entry);
      return entry;
    }
  }

  if (query.where.empty()) {
    publish();
    return Status::InvalidArgument("empty basic graph pattern");
  }
  if (endpoints_.empty()) {
    publish();
    return Status::FailedPrecondition("no endpoints registered");
  }
  if (options.breaker_failure_threshold > 0) {
    const common::CircuitBreaker::Options bopt{
        options.breaker_failure_threshold, options.breaker_cooldown_calls};
    for (const auto& [ep, breaker] : breakers_) breaker->Configure(bopt);
  }

  // Join order.
  std::vector<size_t> order(query.where.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (options.join_reordering) {
    // Greedy: smallest-estimate connected pattern next.
    std::vector<uint64_t> est(query.where.size());
    for (size_t i = 0; i < query.where.size(); ++i) {
      est[i] = EstimateCardinality(query.where[i], options);
    }
    std::vector<bool> used(query.where.size(), false);
    std::set<std::string> bound;
    std::vector<size_t> greedy;
    for (size_t step = 0; step < query.where.size(); ++step) {
      size_t best = query.where.size();
      uint64_t best_est = std::numeric_limits<uint64_t>::max();
      bool best_connected = false;
      for (size_t i = 0; i < query.where.size(); ++i) {
        if (used[i]) continue;
        bool connected = step == 0;
        for (const std::string& v : PatternVars(query.where[i])) {
          if (bound.count(v)) connected = true;
        }
        if ((connected && !best_connected) ||
            (connected == best_connected && est[i] < best_est)) {
          best = i;
          best_est = est[i];
          best_connected = connected;
        }
      }
      used[best] = true;
      greedy.push_back(best);
      for (const std::string& v : PatternVars(query.where[best])) {
        bound.insert(v);
      }
    }
    order = std::move(greedy);
  }

  std::set<const Endpoint*> contacted;
  // Memo of bound-pattern results within this query execution. Under
  // partial_ok a memoized entry holds the surviving sources' merge.
  std::unordered_map<std::string, std::vector<FedBinding>> memo;

  // One endpoint subquery with retry/backoff, deadline and breaker.
  // Runs on a pool worker under parallel fan-out; touches only its own
  // CallOutcome (the breaker is internally synchronized). Retry decisions
  // and backoff jitter are deterministic per (endpoint, call number).
  auto call_endpoint = [&](const Endpoint* ep,
                           const rdf::TriplePattern& pattern) -> CallOutcome {
    CallOutcome out;
    common::CircuitBreaker* breaker =
        options.breaker_failure_threshold > 0 ? this->breaker(ep) : nullptr;
    const uint64_t salt = HashName(ep->name());
    for (int attempt = 1; attempt <= options.retry.max_attempts; ++attempt) {
      // Is the request itself still worth working for?
      Status request = rctx.Check("fed.endpoint_call");
      if (!request.ok()) {
        out.status = request;
        out.request_aborted = true;
        break;
      }
      if (breaker != nullptr && !breaker->Allow()) {
        out.status = Status::Unavailable("circuit open: " + ep->name());
        out.breaker_rejected = true;
        metrics.breaker_rejects->Increment();
        break;  // an open breaker fails fast; retrying would burn cooldown
      }
      // Per-endpoint deadline: the configured per-call budget, tightened
      // to whatever remains of the request deadline at this attempt.
      uint64_t effective_deadline_us = options.endpoint_deadline_us;
      if (!rctx.deadline.is_infinite()) {
        const int64_t remaining = rctx.deadline.remaining_us();
        const uint64_t rem =
            remaining > 0 ? static_cast<uint64_t>(remaining) : 1;
        effective_deadline_us = effective_deadline_us == 0
                                    ? rem
                                    : std::min(effective_deadline_us, rem);
      }
      common::TraceSpan call_span(ep->trace_label());
      common::ScopedLatencyTimer call_timer(metrics.endpoint_call_latency_us);
      const auto call_start = std::chrono::steady_clock::now();
      auto r = ep->ExecutePattern(pattern);
      Status s = r.ok() ? Status::OK() : r.status();
      if (s.ok() && effective_deadline_us > 0) {
        const double elapsed_us = SecondsSince(call_start) * 1e6;
        if (elapsed_us > static_cast<double>(effective_deadline_us)) {
          s = Status::DeadlineExceeded(ep->name() + " exceeded " +
                                       std::to_string(effective_deadline_us) +
                                       "us deadline");
          metrics.deadline_exceeded->Increment();
        }
      }
      if (breaker != nullptr) {
        s.ok() ? breaker->RecordSuccess() : breaker->RecordFailure();
      }
      if (s.ok()) {
        out.status = Status::OK();
        out.rows = std::move(*r);
        return out;
      }
      out.status = s;
      ++out.failures;
      metrics.endpoint_failures->Increment();
      // Distinguish "this endpoint blew its per-call budget" from "the
      // request itself is out of time": the latter is fatal even under
      // partial_ok (there is no caller left to hand a partial answer to),
      // and must be flagged on the final attempt too, not just before a
      // retry.
      if (!rctx.deadline.is_infinite() && rctx.deadline.remaining_us() <= 0) {
        out.status = Status::DeadlineExceeded(
            "request deadline exceeded during " + ep->name() + " call");
        out.request_aborted = true;
        break;
      }
      if (attempt < options.retry.max_attempts) {
        uint64_t backoff_us =
            common::BackoffUs(options.retry, attempt, options.retry_seed,
                              salt);
        if (!rctx.deadline.is_infinite()) {
          const int64_t remaining = rctx.deadline.remaining_us();
          if (remaining <= 0) {
            out.status = Status::DeadlineExceeded(
                "request deadline exceeded before retrying " + ep->name());
            out.request_aborted = true;
            break;
          }
          // Never sleep past the request deadline.
          backoff_us =
              std::min(backoff_us, static_cast<uint64_t>(remaining));
        }
        ++out.retries;
        metrics.endpoint_retries->Increment();
        if (backoff_us > 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
        }
      }
    }
    return out;
  };

  Status fetch_error;  // first fatal fan-out error (non-partial mode)
  auto fetch = [&](const rdf::TriplePattern& pattern)
      -> const std::vector<FedBinding>* {
    const std::string key = PatternKey(pattern);
    auto it = memo.find(key);
    if (it != memo.end()) return &it->second;
    const std::vector<const Endpoint*> sources =
        SelectSources(pattern, options);
    // Per-source result slots: the fan-out runs on the pool (one task per
    // endpoint) but the merge below walks slots in SelectSources order, so
    // results are deterministic regardless of completion order.
    std::vector<CallOutcome> slots(sources.size());
    auto call_one = [&](size_t i) {
      slots[i] = call_endpoint(sources[i], pattern);
    };
    if (pool_ != nullptr && sources.size() > 1) {
      std::vector<std::future<void>> pending;
      pending.reserve(sources.size());
      for (size_t i = 0; i < sources.size(); ++i) {
        pending.push_back(pool_->Submit([&call_one, i] { call_one(i); }));
      }
      for (auto& f : pending) f.get();
    } else {
      for (size_t i = 0; i < sources.size(); ++i) call_one(i);
    }
    std::vector<FedBinding> rows;
    for (size_t i = 0; i < sources.size(); ++i) {
      st.endpoint_failures += slots[i].failures;
      st.retries += slots[i].retries;
      if (slots[i].breaker_rejected) ++st.breaker_rejects;
      if (!slots[i].status.ok()) {
        // A dead *request* is fatal even under partial_ok — there is no
        // caller left to hand a partial answer to.
        if (slots[i].request_aborted || !options.partial_ok) {
          fetch_error = slots[i].status;
          return nullptr;
        }
        ++st.endpoints_skipped;
        st.partial = true;
        degraded.insert(sources[i]->name());
        metrics.partial_results->Increment();
        continue;
      }
      ++st.subqueries_sent;
      metrics.subqueries->Increment();
      contacted.insert(sources[i]);
      st.rows_transferred += slots[i].rows.size();
      metrics.rows_transferred->Increment(slots[i].rows.size());
      for (auto& row : slots[i].rows) rows.push_back(std::move(row));
    }
    return &memo.emplace(key, std::move(rows)).first->second;
  };

  common::QueryProfile prof;
  std::vector<FedBinding> current = {FedBinding{}};
  for (size_t oi : order) {
    const rdf::TriplePattern& pattern = query.where[oi];
    // Cooperative cancellation between join steps: a doomed query stops
    // before fanning out the next pattern.
    {
      Status step_check = rctx.Check("fed.Execute");
      if (!step_check.ok()) {
        count_abort(step_check);
        st.endpoints_contacted = contacted.size();
        publish();
        record_failed_profile(step_check);
        return step_check;
      }
    }
    const auto step_start = std::chrono::steady_clock::now();
    const uint64_t subqueries_before = st.subqueries_sent;
    const size_t rows_in = current.size();
    std::vector<FedBinding> next;
    size_t row_index = 0;
    for (const FedBinding& row : current) {
      // Bound subqueries fan out once per input row, so poll the context
      // at row granularity too (each fetch can be a full endpoint round).
      if ((row_index++ % 64) == 0) {
        Status row_check = rctx.Check("fed.Execute");
        if (!row_check.ok()) {
          count_abort(row_check);
          st.endpoints_contacted = contacted.size();
          publish();
          record_failed_profile(row_check);
          return row_check;
        }
      }
      rdf::TriplePattern bound_pattern = BindPattern(pattern, row);
      const std::vector<FedBinding>* fetched = fetch(bound_pattern);
      if (fetched == nullptr) {
        count_abort(fetch_error);
        st.endpoints_contacted = contacted.size();
        publish();
        record_failed_profile(fetch_error);
        return fetch_error;
      }
      for (const FedBinding& fetched_row : *fetched) {
        FedBinding merged = row;
        bool ok = true;
        for (const auto& [var, term] : fetched_row) {
          auto it = merged.find(var);
          if (it == merged.end()) {
            merged.emplace(var, term);
          } else if (!(it->second == term)) {
            ok = false;
            break;
          }
        }
        if (ok) next.push_back(std::move(merged));
      }
    }
    current = std::move(next);
    if (profiling) {
      common::OperatorProfile op;
      op.name = "join " + PatternKey(pattern);
      op.wall_us = SecondsSince(step_start) * 1e6;
      op.rows_in = rows_in;
      op.rows_out = current.size();
      op.chunks = st.subqueries_sent - subqueries_before;
      op.threads = pool_ != nullptr ? num_threads_ : 1;
      prof.operators.push_back(std::move(op));
    }
    if (current.empty()) break;
  }

  // Term-level filters.
  if (!filters.empty()) {
    const auto filter_start = std::chrono::steady_clock::now();
    const size_t rows_in = current.size();
    std::vector<FedBinding> kept;
    for (FedBinding& row : current) {
      bool ok = true;
      for (const FedFilter& f : filters) {
        if (!f(row)) {
          ok = false;
          break;
        }
      }
      if (ok) kept.push_back(std::move(row));
    }
    current = std::move(kept);
    if (profiling) {
      common::OperatorProfile op;
      op.name = "filter";
      op.wall_us = SecondsSince(filter_start) * 1e6;
      op.rows_in = rows_in;
      op.rows_out = current.size();
      prof.operators.push_back(std::move(op));
    }
  }

  const size_t rows_before_project = current.size();
  if (query.limit > 0 && current.size() > query.limit) {
    current.resize(query.limit);
  }
  if (!query.select.empty()) {
    for (FedBinding& row : current) {
      FedBinding projected;
      for (const std::string& v : query.select) {
        auto it = row.find(v);
        if (it != row.end()) projected.insert(*it);
      }
      row = std::move(projected);
    }
  }
  st.endpoints_contacted = contacted.size();
  st.results = current.size();
  publish();
  if (profiling) {
    if (query.limit > 0 || !query.select.empty()) {
      common::OperatorProfile op;
      op.name = "project_limit";
      op.rows_in = rows_before_project;
      op.rows_out = current.size();
      prof.operators.push_back(std::move(op));
    }
    prof.query = "fed.Execute";
    prof.trace_id = req.trace_id();
    prof.total_us = SecondsSince(query_start) * 1e6;
    if (profile != nullptr) *profile = prof;
    if (pscope.is_root()) {
      common::SlowQueryLog::Default().Record(std::move(prof));
    }
  }
  return current;
}

}  // namespace exearth::fed
